// Package cbma is a faithful, simulation-backed reimplementation of CBMA —
// Coded-Backscatter Multiple Access (Mi et al., ICDCS 2019): a system that
// lets many passive backscatter tags transmit concurrently in the same
// band by spreading each tag's bits with a PN code (Gold or 2NC), decoding
// collisions with a correlation receiver, and fighting the CDMA near–far
// problem with impedance-based power control at the tag plus a
// node-selection scheme over the deployment geometry.
//
// The paper's hardware testbed (USRP RIO radios, FPGA-driven PCB tags) is
// replaced by a chip-accurate complex-baseband simulator; DESIGN.md
// documents every substitution. The library exposes:
//
//   - Scenario / NewEngine — waveform-level collision experiments.
//   - SystemConfig / NewSystem — the full closed loop with Algorithm 1
//     power control and §V-C node selection.
//   - Sweep* / UserDetection / WorkingConditions / PowerDifferenceTable /
//     DeploymentStudy — the exact experiment harnesses behind every table
//     and figure in the paper's evaluation (see EXPERIMENTS.md).
//   - TDMA / FSA / QAlgo / FDMA — the baseline MACs CBMA is compared
//     against.
//
// Quickstart:
//
//	scn := cbma.DefaultScenario()
//	scn.NumTags = 4
//	engine, err := cbma.NewEngine(scn)
//	if err != nil { ... }
//	metrics, err := engine.Run()
//	fmt.Println(metrics.FER, metrics.GoodputBps)
package cbma

import (
	"cbma/internal/baseline"
	"cbma/internal/channel"
	"cbma/internal/core"
	"cbma/internal/frame"
	"cbma/internal/geom"
	"cbma/internal/pn"
	"cbma/internal/sim"
)

// Core experiment types, re-exported from the engine.
type (
	// Scenario fully describes one experiment configuration; start from
	// DefaultScenario.
	Scenario = sim.Scenario
	// Engine runs collision rounds for one Scenario.
	Engine = sim.Engine
	// Metrics aggregates a run: FER, PRR, goodput, raw aggregate rate.
	Metrics = sim.Metrics
	// Series and Point carry sweep results (one curve per tag count etc.).
	Series = sim.Series
	Point  = sim.Point
)

// Radio, geometry and framing configuration.
type (
	// ChannelParams is the RF link budget of Eq. 1 plus noise, fading and
	// shadowing models.
	ChannelParams = channel.Params
	// FrameConfig controls link-layer framing (preamble length).
	FrameConfig = frame.Config
	// Deployment places the excitation source, receiver and tags.
	Deployment = geom.Deployment
	// Position is a planar coordinate in meters.
	Position = geom.Point
	// Room is the rectangular deployment area.
	Room = geom.Room
	// Multipath is an optional tapped-delay echo profile.
	Multipath = channel.Multipath
	// Interferer injects external signals (WiFi, Bluetooth) into a run.
	Interferer = channel.Interferer
	// WiFiInterferer and BluetoothInterferer are the Fig. 12 coexistence
	// models.
	WiFiInterferer      = channel.WiFiInterferer
	BluetoothInterferer = channel.BluetoothInterferer
)

// Spreading codes.
type (
	// CodeFamily selects the PN code construction.
	CodeFamily = pn.Family
	// Code is one tag's spreading code; CodeSet a family of them.
	Code    = pn.Code
	CodeSet = pn.Set
)

// Code family constants.
const (
	FamilyGold   = pn.FamilyGold
	Family2NC    = pn.Family2NC
	FamilyWalsh  = pn.FamilyWalsh
	FamilyKasami = pn.FamilyKasami
)

// Closed-loop system (power control + node selection).
type (
	// SystemConfig configures the full CBMA closed loop.
	SystemConfig = core.Config
	// System is a runnable deployment; Report its outcome.
	System = core.System
	Report = core.Report
)

// Baselines.
type (
	// BaselineResult summarizes a baseline MAC run.
	BaselineResult = baseline.Result
	// TDMAConfig, FSAConfig, FDMAConfig and QAlgoConfig parameterize the
	// comparators.
	TDMAConfig  = baseline.TDMAConfig
	FSAConfig   = baseline.FSAConfig
	FDMAConfig  = baseline.FDMAConfig
	QAlgoConfig = baseline.QAlgoConfig
	// SystemSummary is a row of the paper's Table I.
	SystemSummary = baseline.SystemSummary
)

// DefaultScenario returns the paper's canonical configuration: 2 GHz
// carrier, 20 MS/s receiver, 1 Mcps chips, Gold-31 codes, two tags one
// meter from the receiver in the 4 m × 6 m office.
func DefaultScenario() Scenario { return sim.DefaultScenario() }

// DefaultChannel returns the calibrated radio parameters (see
// channel.DefaultParams and DESIGN.md for the calibration rationale).
func DefaultChannel() ChannelParams { return channel.DefaultParams() }

// NewEngine validates a scenario and builds a waveform-level engine.
func NewEngine(scn Scenario) (*Engine, error) { return sim.NewEngine(scn) }

// NewSystem builds the closed-loop CBMA system (power control and optional
// node selection) described by cfg.
func NewSystem(cfg SystemConfig) (*System, error) { return core.New(cfg) }

// NewCodeSet constructs a spreading-code family for n tags. goldDegree
// selects the m-sequence degree for Gold/Kasami (0 ⇒ 5, i.e. 31 chips).
func NewCodeSet(f CodeFamily, n int, goldDegree uint) (*CodeSet, error) {
	return pn.NewSet(f, n, goldDegree)
}

// NewDeployment returns the paper's geometry: excitation source at (−d, 0)
// and receiver at (d, 0) in the default room.
func NewDeployment(d float64) Deployment { return geom.NewDeployment(d) }

// FriisField evaluates the theoretical backscatter signal strength (dBm) of
// Eq. 1 on a grid over the room — the data behind Fig. 5.
func FriisField(p ChannelParams, d Deployment, deltaGamma float64, nx, ny int) ([][]float64, error) {
	return p.FriisField(d, deltaGamma, nx, ny)
}

// TDMA, FSA and FDMA run the baseline MACs (see internal/baseline).
func TDMA(scn Scenario, cfg TDMAConfig) (BaselineResult, error) { return baseline.TDMA(scn, cfg) }

// FSA simulates framed slotted ALOHA for n tags.
func FSA(n int, cfg FSAConfig) (BaselineResult, error) { return baseline.FSA(n, cfg) }

// FDMA simulates frequency-division access for n tags.
func FDMA(n int, cfg FDMAConfig) (BaselineResult, error) { return baseline.FDMA(n, cfg) }

// QAlgo simulates the EPC Gen2-style adaptive framed-ALOHA reader for n
// tags — the industry-standard anti-collision MAC.
func QAlgo(n int, cfg QAlgoConfig) (BaselineResult, error) { return baseline.QAlgo(n, cfg) }

// RunCBMABaseline runs the concurrent system under baseline accounting for
// direct comparison with TDMA/FSA/FDMA.
func RunCBMABaseline(scn Scenario) (BaselineResult, error) { return baseline.CBMA(scn) }

// MeasureSingleTagFER calibrates packet-level baselines from a one-tag
// waveform run.
func MeasureSingleTagFER(scn Scenario) (float64, error) { return baseline.MeasureSingleTagFER(scn) }

// Table1 returns the literature rows of the paper's Table I; CBMARow builds
// the locally measured row.
func Table1() []SystemSummary { return baseline.Table1() }

// CBMARow builds the measured CBMA row for Table I.
func CBMARow(aggregateBps float64, tags int, rangeMeters float64) SystemSummary {
	return baseline.CBMARow(aggregateBps, tags, rangeMeters)
}
