package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestMean(t *testing.T) {
	got, err := Mean([]float64{1, 2, 3, 4})
	if err != nil {
		t.Fatal(err)
	}
	if got != 2.5 {
		t.Errorf("Mean = %v, want 2.5", got)
	}
	if _, err := Mean(nil); err != ErrEmpty {
		t.Errorf("got %v, want ErrEmpty", err)
	}
}

func TestStdDev(t *testing.T) {
	got, err := StdDev([]float64{2, 4, 4, 4, 5, 5, 7, 9})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-2.138089935) > 1e-6 {
		t.Errorf("StdDev = %v", got)
	}
	one, err := StdDev([]float64{42})
	if err != nil || one != 0 {
		t.Errorf("single sample: %v, %v", one, err)
	}
	if _, err := StdDev(nil); err != ErrEmpty {
		t.Errorf("got %v, want ErrEmpty", err)
	}
}

func TestPercentile(t *testing.T) {
	xs := []float64{10, 20, 30, 40}
	tests := []struct {
		p    float64
		want float64
	}{
		{0, 10}, {100, 40}, {50, 25}, {-5, 10}, {200, 40},
	}
	for _, tc := range tests {
		got, err := Percentile(xs, tc.p)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(got-tc.want) > 1e-12 {
			t.Errorf("Percentile(%v) = %v, want %v", tc.p, got, tc.want)
		}
	}
	if _, err := Percentile(nil, 50); err != ErrEmpty {
		t.Errorf("got %v, want ErrEmpty", err)
	}
	single, err := Percentile([]float64{7}, 99)
	if err != nil || single != 7 {
		t.Errorf("single: %v, %v", single, err)
	}
}

func TestPercentileDoesNotMutateInput(t *testing.T) {
	xs := []float64{3, 1, 2}
	if _, err := Percentile(xs, 50); err != nil {
		t.Fatal(err)
	}
	if xs[0] != 3 || xs[1] != 1 || xs[2] != 2 {
		t.Error("input reordered")
	}
}

func TestMedianOddEven(t *testing.T) {
	m, err := Median([]float64{5, 1, 3})
	if err != nil || m != 3 {
		t.Errorf("odd median = %v, %v", m, err)
	}
	m, err = Median([]float64{1, 2, 3, 4})
	if err != nil || m != 2.5 {
		t.Errorf("even median = %v, %v", m, err)
	}
}

func TestCDFBasics(t *testing.T) {
	c, err := NewCDF([]float64{1, 2, 2, 3})
	if err != nil {
		t.Fatal(err)
	}
	tests := []struct {
		x    float64
		want float64
	}{
		{0.5, 0}, {1, 0.25}, {2, 0.75}, {2.5, 0.75}, {3, 1}, {10, 1},
	}
	for _, tc := range tests {
		if got := c.At(tc.x); math.Abs(got-tc.want) > 1e-12 {
			t.Errorf("At(%v) = %v, want %v", tc.x, got, tc.want)
		}
	}
	if _, err := NewCDF(nil); err != ErrEmpty {
		t.Errorf("got %v, want ErrEmpty", err)
	}
}

func TestCDFQuantile(t *testing.T) {
	c, err := NewCDF([]float64{10, 20, 30, 40})
	if err != nil {
		t.Fatal(err)
	}
	tests := []struct {
		q    float64
		want float64
	}{
		{0, 10}, {0.25, 10}, {0.5, 20}, {0.75, 30}, {1, 40}, {2, 40},
	}
	for _, tc := range tests {
		if got := c.Quantile(tc.q); got != tc.want {
			t.Errorf("Quantile(%v) = %v, want %v", tc.q, got, tc.want)
		}
	}
}

func TestCDFPointsMonotone(t *testing.T) {
	r := rand.New(rand.NewSource(9))
	xs := make([]float64, 200)
	for i := range xs {
		xs[i] = math.Round(r.Float64()*10) / 10 // force duplicates
	}
	c, err := NewCDF(xs)
	if err != nil {
		t.Fatal(err)
	}
	px, pp := c.Points()
	if len(px) != len(pp) || len(px) == 0 {
		t.Fatalf("points: %d xs, %d ps", len(px), len(pp))
	}
	for i := 1; i < len(px); i++ {
		if px[i] <= px[i-1] {
			t.Fatalf("x not strictly increasing at %d", i)
		}
		if pp[i] <= pp[i-1] {
			t.Fatalf("p not strictly increasing at %d", i)
		}
	}
	if pp[len(pp)-1] != 1 {
		t.Errorf("last p = %v, want 1", pp[len(pp)-1])
	}
}

func TestCDFAtAgreesWithQuantile(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		xs := make([]float64, 1+r.Intn(50))
		for i := range xs {
			xs[i] = r.NormFloat64()
		}
		c, err := NewCDF(xs)
		if err != nil {
			return false
		}
		for _, q := range []float64{0.1, 0.5, 0.9} {
			if c.At(c.Quantile(q)) < q-1e-12 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestWilsonInterval(t *testing.T) {
	lo, hi, err := WilsonInterval(0, 100)
	if err != nil {
		t.Fatal(err)
	}
	if lo != 0 {
		t.Errorf("k=0 lower bound %v, want 0", lo)
	}
	if hi <= 0 || hi > 0.05 {
		t.Errorf("k=0 n=100 upper bound %v, want small positive", hi)
	}
	lo, hi, err = WilsonInterval(50, 100)
	if err != nil {
		t.Fatal(err)
	}
	if lo >= 0.5 || hi <= 0.5 {
		t.Errorf("k=50 n=100 interval [%v, %v] must bracket 0.5", lo, hi)
	}
	if _, _, err := WilsonInterval(1, 0); err != ErrEmpty {
		t.Errorf("got %v, want ErrEmpty", err)
	}
	// Out-of-range k clamps instead of panicking.
	lo, hi, err = WilsonInterval(200, 100)
	if err != nil || hi != 1 || lo <= 0.9 {
		t.Errorf("clamped interval [%v,%v], err %v", lo, hi, err)
	}
}

func TestWilsonIntervalShrinksWithN(t *testing.T) {
	_, hiSmall, err := WilsonInterval(5, 50)
	if err != nil {
		t.Fatal(err)
	}
	loSmall, _, _ := WilsonInterval(5, 50)
	loBig, hiBig, _ := WilsonInterval(500, 5000)
	if hiBig-loBig >= hiSmall-loSmall {
		t.Error("interval must shrink as n grows at fixed proportion")
	}
}

func TestHistogram(t *testing.T) {
	counts, err := Histogram([]float64{0.1, 0.5, 0.9, -1, 2}, 0, 1, 2)
	if err != nil {
		t.Fatal(err)
	}
	if counts[0] != 2 || counts[1] != 3 { // -1 clamps low, 2 clamps high
		t.Errorf("counts = %v", counts)
	}
	if _, err := Histogram(nil, 0, 1, 2); err != ErrEmpty {
		t.Errorf("got %v, want ErrEmpty", err)
	}
	if _, err := Histogram([]float64{1}, 1, 0, 2); err == nil {
		t.Error("max <= min must fail")
	}
	if _, err := Histogram([]float64{1}, 0, 1, 0); err == nil {
		t.Error("zero bins must fail")
	}
}

func TestRatioOrZero(t *testing.T) {
	if got := RatioOrZero(3, 4); got != 0.75 {
		t.Errorf("got %v", got)
	}
	if got := RatioOrZero(3, 0); got != 0 {
		t.Errorf("zero denominator: %v", got)
	}
}
