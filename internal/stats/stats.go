// Package stats provides the small statistical toolkit the evaluation
// harness uses: means, standard deviations, percentiles, empirical CDFs
// (Fig. 10 of the paper plots CDFs of error rate), histograms and Wilson
// score intervals for the error-rate estimates.
package stats

import (
	"errors"
	"math"
	"sort"
)

// ErrEmpty is returned by estimators that need at least one sample.
var ErrEmpty = errors.New("stats: no samples")

// Mean returns the arithmetic mean of xs.
func Mean(xs []float64) (float64, error) {
	if len(xs) == 0 {
		return 0, ErrEmpty
	}
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs)), nil
}

// StdDev returns the sample standard deviation (n−1 denominator) of xs.
// A single sample has zero deviation by convention.
func StdDev(xs []float64) (float64, error) {
	if len(xs) == 0 {
		return 0, ErrEmpty
	}
	if len(xs) == 1 {
		return 0, nil
	}
	m, err := Mean(xs)
	if err != nil {
		return 0, err
	}
	var s float64
	for _, x := range xs {
		d := x - m
		s += d * d
	}
	return math.Sqrt(s / float64(len(xs)-1)), nil
}

// Percentile returns the p-th percentile (0 ≤ p ≤ 100) of xs using linear
// interpolation between order statistics.
func Percentile(xs []float64, p float64) (float64, error) {
	if len(xs) == 0 {
		return 0, ErrEmpty
	}
	if p < 0 {
		p = 0
	}
	if p > 100 {
		p = 100
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	if len(sorted) == 1 {
		return sorted[0], nil
	}
	rank := p / 100 * float64(len(sorted)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return sorted[lo], nil
	}
	frac := rank - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac, nil
}

// Median returns the 50th percentile.
func Median(xs []float64) (float64, error) { return Percentile(xs, 50) }

// CDF is an empirical cumulative distribution function.
type CDF struct {
	sorted []float64
}

// NewCDF builds an empirical CDF from samples (copied and sorted).
func NewCDF(xs []float64) (*CDF, error) {
	if len(xs) == 0 {
		return nil, ErrEmpty
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	return &CDF{sorted: sorted}, nil
}

// At returns P(X ≤ x).
func (c *CDF) At(x float64) float64 {
	idx := sort.SearchFloat64s(c.sorted, x)
	// Move past equal elements so At is right-continuous (≤, not <).
	for idx < len(c.sorted) && c.sorted[idx] <= x {
		idx++
	}
	return float64(idx) / float64(len(c.sorted))
}

// Quantile returns the smallest sample x with P(X ≤ x) ≥ q, clamping q to
// (0, 1].
func (c *CDF) Quantile(q float64) float64 {
	if q <= 0 {
		return c.sorted[0]
	}
	if q > 1 {
		q = 1
	}
	idx := int(math.Ceil(q*float64(len(c.sorted)))) - 1
	if idx < 0 {
		idx = 0
	}
	return c.sorted[idx]
}

// Points returns the CDF as (x, P(X ≤ x)) pairs at each distinct sample —
// directly plottable, which is how the Fig. 10 series are emitted.
func (c *CDF) Points() (xs, ps []float64) {
	n := len(c.sorted)
	for i := 0; i < n; i++ {
		if i+1 < n && c.sorted[i+1] == c.sorted[i] {
			continue
		}
		xs = append(xs, c.sorted[i])
		ps = append(ps, float64(i+1)/float64(n))
	}
	return xs, ps
}

// WilsonInterval returns the 95% Wilson score confidence interval for a
// binomial proportion with k successes out of n trials. It is well-behaved
// at the extremes (k=0, k=n), where the normal approximation fails — exactly
// the regime of sub-1% frame error rates.
func WilsonInterval(k, n int) (lo, hi float64, err error) {
	if n <= 0 {
		return 0, 0, ErrEmpty
	}
	if k < 0 {
		k = 0
	}
	if k > n {
		k = n
	}
	const z = 1.959963984540054 // 97.5th normal percentile
	p := float64(k) / float64(n)
	nn := float64(n)
	denom := 1 + z*z/nn
	center := (p + z*z/(2*nn)) / denom
	half := z / denom * math.Sqrt(p*(1-p)/nn+z*z/(4*nn*nn))
	lo, hi = center-half, center+half
	if lo < 0 {
		lo = 0
	}
	if hi > 1 {
		hi = 1
	}
	return lo, hi, nil
}

// Histogram counts samples into nbins equal-width bins spanning [min, max].
// Samples outside the range clamp to the edge bins.
func Histogram(xs []float64, min, max float64, nbins int) ([]int, error) {
	if len(xs) == 0 {
		return nil, ErrEmpty
	}
	if nbins <= 0 || max <= min {
		return nil, errors.New("stats: invalid histogram spec")
	}
	counts := make([]int, nbins)
	w := (max - min) / float64(nbins)
	for _, x := range xs {
		i := int((x - min) / w)
		if i < 0 {
			i = 0
		}
		if i >= nbins {
			i = nbins - 1
		}
		counts[i]++
	}
	return counts, nil
}

// RatioOrZero returns num/den, or zero when den is zero — the common "no
// packets were sent" guard in the metric plumbing.
func RatioOrZero(num, den float64) float64 {
	if den == 0 {
		return 0
	}
	return num / den
}
