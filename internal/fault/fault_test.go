package fault

import (
	"math"
	"math/rand"
	"strings"
	"testing"
)

func TestWithDefaultsClampsAndFills(t *testing.T) {
	p := Profile{
		StuckImpedanceProb: -0.5,
		EnergyOutageProb:   1.5,
		AckLossProb:        2,
		AckCorruptProb:     -1,
		ClockDriftChips:    -3,
		ExtraJitterChips:   -1,
		FeedbackRetries:    -2,
		FallbackImpedance:  -4,
	}.WithDefaults()
	if p.StuckImpedanceProb != 0 || p.AckCorruptProb != 0 {
		t.Errorf("negative probabilities not clamped to 0: %+v", p)
	}
	if p.EnergyOutageProb != 1 || p.AckLossProb != 1 {
		t.Errorf("overshooting probabilities not clamped to 1: %+v", p)
	}
	if p.ClockDriftChips != 0 || p.ExtraJitterChips != 0 {
		t.Errorf("negative chip magnitudes not clamped: %+v", p)
	}
	if p.FeedbackRetries != 0 || p.FallbackImpedance != 0 {
		t.Errorf("negative integer knobs not clamped: %+v", p)
	}
	if p.BurstPowerDBm != -60 || p.BurstMeanSec != 200e-6 || p.DeepFadeDB != 20 {
		t.Errorf("magnitude defaults not filled: %+v", p)
	}
	if p.MaxRoundRetries != 2 {
		t.Errorf("MaxRoundRetries default = %d, want 2", p.MaxRoundRetries)
	}
}

func TestEnabled(t *testing.T) {
	if (Profile{}).Enabled() {
		t.Error("zero profile reports Enabled")
	}
	// Magnitude-only defaults (filled by WithDefaults) must not arm the layer.
	if (Profile{}).WithDefaults().Enabled() {
		t.Error("normalized zero profile reports Enabled")
	}
	on := []Profile{
		{StuckImpedanceProb: 0.1},
		{ClockDriftChips: 0.5},
		{ExtraJitterChips: 0.5},
		{EnergyOutageProb: 0.1},
		{AckLossProb: 0.1},
		{AckCorruptProb: 0.1},
		{SpuriousAckProb: 0.1},
		{FeedbackRetries: 1},
		{BurstProb: 0.1},
		{DeepFadeProb: 0.1},
		{PanicProb: 0.1},
		{TransientErrProb: 0.1},
	}
	for i, p := range on {
		if !p.Enabled() {
			t.Errorf("profile %d (%+v) not Enabled", i, p)
		}
	}
}

func TestCountersMergeAnyString(t *testing.T) {
	var c Counters
	if c.Any() {
		t.Error("zero counters report Any")
	}
	c.Merge(Counters{StuckTags: 1, AcksLost: 3, InjectedPanics: 2})
	c.Merge(Counters{AcksLost: 2, TransientErrors: 5})
	want := Counters{StuckTags: 1, AcksLost: 5, InjectedPanics: 2, TransientErrors: 5}
	if c != want {
		t.Errorf("merged counters = %+v, want %+v", c, want)
	}
	if !c.Any() {
		t.Error("non-zero counters report !Any")
	}
	s := c.String()
	for _, frag := range []string{"stuck=1", "acksLost=5", "panics=2", "transients=5"} {
		if !strings.Contains(s, frag) {
			t.Errorf("String() = %q missing %q", s, frag)
		}
	}
}

// TestInjectorDeterministic: same profile, population and seed give identical
// static assignments — the construction draws are pure functions of the setup
// stream.
func TestInjectorDeterministic(t *testing.T) {
	p := Profile{StuckImpedanceProb: 0.4, ClockDriftChips: 1.5}
	a := NewInjector(p, 32, rand.New(rand.NewSource(7)))
	b := NewInjector(p, 32, rand.New(rand.NewSource(7)))
	if a.StuckCount() != b.StuckCount() {
		t.Fatalf("stuck counts differ: %d vs %d", a.StuckCount(), b.StuckCount())
	}
	for id := 0; id < 32; id++ {
		if a.Stuck(id) != b.Stuck(id) || a.DriftChips(id) != b.DriftChips(id) {
			t.Fatalf("tag %d assignments differ", id)
		}
	}
	if a.Stuck(-1) || a.Stuck(32) || a.DriftChips(-1) != 0 || a.DriftChips(32) != 0 {
		t.Error("out-of-range tag ids are not inert")
	}
	for id := 0; id < 32; id++ {
		if d := a.DriftChips(id); math.Abs(d) > p.ClockDriftChips/2 {
			t.Errorf("tag %d drift %.3f exceeds ±%.2f/2", id, d, p.ClockDriftChips)
		}
	}
}

// TestAckFateNested: because AckFate is a single uniform split into ordered
// regions, the set of lost ACKs at a lower loss rate is a subset of the set at
// any higher rate when both draw from the same stream — the property that
// makes FaultSweep curves monotone under common random numbers.
func TestAckFateNested(t *testing.T) {
	const draws = 2000
	lost := func(rate float64) []bool {
		in := NewInjector(Profile{AckLossProb: rate}, 0, rand.New(rand.NewSource(1)))
		rng := rand.New(rand.NewSource(42))
		out := make([]bool, draws)
		for i := range out {
			out[i] = in.AckFate(rng) == AckLost
		}
		return out
	}
	lo, hi := lost(0.2), lost(0.5)
	nLo, nHi := 0, 0
	for i := 0; i < draws; i++ {
		if lo[i] {
			nLo++
			if !hi[i] {
				t.Fatalf("draw %d lost at rate 0.2 but delivered at rate 0.5", i)
			}
		}
		if hi[i] {
			nHi++
		}
	}
	if nLo == 0 || nHi <= nLo {
		t.Fatalf("loss sets not growing: %d at 0.2, %d at 0.5", nLo, nHi)
	}
}

func TestAckFateRegions(t *testing.T) {
	in := NewInjector(Profile{AckLossProb: 0.3, AckCorruptProb: 0.3}, 0, rand.New(rand.NewSource(1)))
	rng := rand.New(rand.NewSource(9))
	seen := map[AckFate]int{}
	for i := 0; i < 3000; i++ {
		seen[in.AckFate(rng)]++
	}
	for _, f := range []AckFate{AckDelivered, AckLost, AckCorrupted} {
		if seen[f] == 0 {
			t.Errorf("fate %d never drawn with 30/30/40 regions", f)
		}
	}
}

func TestExecPlanBounds(t *testing.T) {
	in := NewInjector(Profile{TransientErrProb: 1, MaxRoundRetries: 3, PanicProb: 1}, 0,
		rand.New(rand.NewSource(1)))
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 500; i++ {
		pl := in.ExecPlan(rng)
		if !pl.Panic {
			t.Fatalf("draw %d: no panic at probability 1", i)
		}
		if pl.FailAttempts < 1 || pl.FailAttempts > 4 {
			t.Fatalf("draw %d: FailAttempts %d outside [1, 4]", i, pl.FailAttempts)
		}
	}
	off := NewInjector(Profile{}, 0, rand.New(rand.NewSource(1)))
	if off.ExecFaults() {
		t.Error("zero profile reports ExecFaults")
	}
	if pl := off.ExecPlan(rand.New(rand.NewSource(5))); pl != (ExecPlan{}) {
		t.Errorf("zero profile drew a non-empty plan: %+v", pl)
	}
}

func TestEnergyOutageAndFadeMagnitudes(t *testing.T) {
	in := NewInjector(Profile{EnergyOutageProb: 1, DeepFadeProb: 1, DeepFadeDB: 20}, 0,
		rand.New(rand.NewSource(1)))
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 200; i++ {
		frac, ok := in.EnergyOutage(rng)
		if !ok {
			t.Fatalf("draw %d: no outage at probability 1", i)
		}
		if frac < 0.25 || frac >= 0.95 {
			t.Fatalf("draw %d: outage fraction %.3f outside [0.25, 0.95)", i, frac)
		}
	}
	scale, ok := in.DeepFade(rng)
	if !ok {
		t.Fatal("no fade at probability 1")
	}
	if want := 0.1; math.Abs(scale-want) > 1e-12 {
		t.Errorf("20 dB fade amplitude scale = %g, want %g", scale, want)
	}
	off := NewInjector(Profile{}, 0, rand.New(rand.NewSource(1)))
	if _, ok := off.EnergyOutage(rng); ok {
		t.Error("outage fired on zero profile")
	}
	if scale, _ := off.DeepFade(rng); scale != 1 {
		t.Errorf("zero-profile fade scale = %g, want 1", scale)
	}
}

func TestTransientErrors(t *testing.T) {
	if !IsTransient(ErrTransient) {
		t.Error("ErrTransient not transient")
	}
	if IsTransient(ErrInjectedPanic) {
		t.Error("ErrInjectedPanic reported transient")
	}
}
