package fault

import (
	"errors"
	"math/rand"
)

// Worker-execution faults: the chaos model for the sharded campaign
// coordinator (internal/serve/shard). Where Profile injects faults INSIDE
// a simulation — stuck switches, lost ACKs, energy outages — WorkerProfile
// injects faults AROUND it: the worker process executing a range of
// campaign points crashes partway, stalls silently, or returns a corrupted
// reply. The coordinator must survive all three with bit-identical final
// Metrics, because a faulted worker never commits a wrong result — it
// either commits a correct one or is retried.
//
// Determinism follows the package contract: the fault schedule for a
// dispatch attempt is a pure function of (Seed, shard, attempt), derived
// through a dedicated splitmix64 label chain, so a chaos test replays the
// exact same crash/stall/corruption sequence on every run and at every
// worker count. No global rand, no wall clock.

// Sentinel errors the chaos transport returns so the coordinator (and
// tests) can tell an injected failure from a real one with errors.Is.
var (
	// ErrWorkerCrash marks an injected mid-range worker death; any points
	// delivered before the crash are already committed.
	ErrWorkerCrash = errors.New("fault: injected worker crash")
	// ErrWorkerCorrupt marks an injected reply corruption (the coordinator
	// detects it via its own validation and fails the attempt).
	ErrWorkerCorrupt = errors.New("fault: injected corrupt reply")
)

// WorkerProfile declares per-attempt execution faults for sharded dispatch.
// Probabilities are clamped to [0,1]; the zero value injects nothing.
type WorkerProfile struct {
	// Seed roots the fault schedule. It is independent of scenario seeds:
	// the same campaign can be chaos-tested under many schedules.
	Seed int64
	// CrashProb is the per-attempt probability that the worker dies after
	// delivering a deterministic fraction of its assigned points
	// (WorkerFault.CrashFrac). Delivered points stay committed, so a
	// crashing-every-time worker still makes forward progress unless the
	// drawn fraction is zero.
	CrashProb float64
	// StallProb is the per-attempt probability that the worker goes silent
	// without dying: no results, no heartbeats, until the coordinator's
	// heartbeat timeout cancels the attempt.
	StallProb float64
	// CorruptProb is the per-attempt probability that the worker's first
	// reply is corrupted in flight (an out-of-assignment point index —
	// detectable, like a checksum failure, rather than silently wrong).
	CorruptProb float64
}

// Enabled reports whether the profile can inject anything.
func (p WorkerProfile) Enabled() bool {
	return p.CrashProb > 0 || p.StallProb > 0 || p.CorruptProb > 0
}

// WorkerFault is the resolved plan for one (shard, attempt) pair. At most
// one fault fires per attempt; precedence is stall > crash > corrupt (a
// stalled worker produces nothing, so the other faults are unobservable).
type WorkerFault struct {
	// Stall: produce nothing and block until cancelled.
	Stall bool
	// Crash: deliver CrashFrac of the assignment, then die.
	Crash bool
	// CrashFrac is the fraction of assigned points delivered before the
	// crash, drawn uniformly — including zero, so repeated crashes
	// exercise the coordinator's zero-progress retry cap.
	CrashFrac float64
	// Corrupt: mangle the first reply's point index.
	Corrupt bool
}

// Fires reports whether any fault is planned.
func (f WorkerFault) Fires() bool { return f.Stall || f.Crash || f.Corrupt }

// workerSalt separates the worker-fault label chain from every other
// splitmix64 use in the repo (sim.DeriveSeed uses different salts, so the
// streams cannot collide even under equal seeds).
const workerSalt = 0x9e3779b97f4a7c15

// workerMix is splitmix64's output permutation — the same finalizer the
// sim layer uses for seed derivation, duplicated here because fault must
// not import sim (sim imports fault).
func workerMix(x uint64) uint64 {
	x += workerSalt
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// WorkerInjector derives per-(shard, attempt) fault plans from a profile.
// It is stateless after construction and safe for concurrent use.
type WorkerInjector struct {
	p WorkerProfile
}

// NewWorkerInjector builds an injector, clamping probabilities into [0,1].
func NewWorkerInjector(p WorkerProfile) *WorkerInjector {
	clamp := func(v *float64) {
		if *v < 0 {
			*v = 0
		}
		if *v > 1 {
			*v = 1
		}
	}
	clamp(&p.CrashProb)
	clamp(&p.StallProb)
	clamp(&p.CorruptProb)
	return &WorkerInjector{p: p}
}

// Profile returns the (clamped) profile.
func (in *WorkerInjector) Profile() WorkerProfile { return in.p }

// Plan resolves the fault plan for one dispatch attempt. The draw order is
// fixed (stall, crash, crash fraction, corrupt) and every gate always
// draws, so plans for different (shard, attempt) pairs are independent and
// a plan never changes when an unrelated probability is zeroed out.
func (in *WorkerInjector) Plan(shard, attempt int) WorkerFault {
	seed := workerMix(workerMix(workerMix(uint64(in.p.Seed))^uint64(shard)) ^ uint64(attempt))
	rng := rand.New(rand.NewSource(int64(seed)))
	var f WorkerFault
	stall := rng.Float64() < in.p.StallProb
	crash := rng.Float64() < in.p.CrashProb
	frac := rng.Float64()
	corrupt := rng.Float64() < in.p.CorruptProb
	switch {
	case stall:
		f.Stall = true
	case crash:
		f.Crash = true
		f.CrashFrac = frac
	case corrupt:
		f.Corrupt = true
	}
	return f
}
