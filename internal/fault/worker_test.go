package fault

import "testing"

func TestWorkerInjectorDeterministic(t *testing.T) {
	in := NewWorkerInjector(WorkerProfile{Seed: 7, CrashProb: 0.4, StallProb: 0.2, CorruptProb: 0.3})
	for shard := 0; shard < 8; shard++ {
		for attempt := 0; attempt < 4; attempt++ {
			a := in.Plan(shard, attempt)
			b := NewWorkerInjector(in.Profile()).Plan(shard, attempt)
			if a != b {
				t.Fatalf("plan(%d,%d) not deterministic: %+v vs %+v", shard, attempt, a, b)
			}
		}
	}
}

func TestWorkerInjectorExclusiveFault(t *testing.T) {
	in := NewWorkerInjector(WorkerProfile{Seed: 3, CrashProb: 1, StallProb: 1, CorruptProb: 1})
	for shard := 0; shard < 16; shard++ {
		f := in.Plan(shard, 0)
		n := 0
		if f.Stall {
			n++
		}
		if f.Crash {
			n++
		}
		if f.Corrupt {
			n++
		}
		if n != 1 {
			t.Fatalf("plan(%d,0) fired %d faults, want exactly 1 (stall wins): %+v", shard, n, f)
		}
		if !f.Stall {
			t.Fatalf("plan(%d,0) with all probs 1 should stall (precedence), got %+v", shard, f)
		}
	}
}

func TestWorkerInjectorZeroProfile(t *testing.T) {
	var p WorkerProfile
	if p.Enabled() {
		t.Fatal("zero profile reports Enabled")
	}
	in := NewWorkerInjector(p)
	for shard := 0; shard < 8; shard++ {
		if f := in.Plan(shard, 0); f.Fires() {
			t.Fatalf("zero profile fired: %+v", f)
		}
	}
}

func TestWorkerInjectorClamps(t *testing.T) {
	in := NewWorkerInjector(WorkerProfile{CrashProb: 2, StallProb: -1, CorruptProb: 1.5})
	p := in.Profile()
	if p.CrashProb != 1 || p.StallProb != 0 || p.CorruptProb != 1 {
		t.Fatalf("probabilities not clamped: %+v", p)
	}
}

// TestWorkerInjectorIndependence: zeroing one knob must not change whether
// the other knobs fire for a given (shard, attempt) — gates always draw in
// fixed order from an attempt-local stream.
func TestWorkerInjectorIndependence(t *testing.T) {
	full := NewWorkerInjector(WorkerProfile{Seed: 11, CrashProb: 0.5, StallProb: 0.3, CorruptProb: 0.4})
	noStall := NewWorkerInjector(WorkerProfile{Seed: 11, CrashProb: 0.5, CorruptProb: 0.4})
	for shard := 0; shard < 32; shard++ {
		a, b := full.Plan(shard, 1), noStall.Plan(shard, 1)
		if a.Stall {
			continue // with stall suppressed, a lower-precedence fault may surface
		}
		if a.Crash != b.Crash || a.Corrupt != b.Corrupt || a.CrashFrac != b.CrashFrac {
			t.Fatalf("shard %d: removing StallProb changed other draws: %+v vs %+v", shard, a, b)
		}
	}
}
