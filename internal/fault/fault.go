// Package fault is the deterministic fault-injection layer of the CBMA
// simulator. It models the failure modes Algorithm 1 and node selection
// exist to survive — sloppy tag clocks, stuck SPDT switches, lost ACKs,
// bursty interferers — plus the execution-layer failures (panics, transient
// round errors) a production campaign runner must quarantine rather than die
// from.
//
// Determinism contract: an Injector holds no RNG of its own. Static,
// population-level draws (which tags are stuck, each tag's constant clock
// drift) happen once at construction from the caller-supplied setup
// generator; every per-round decision method takes the caller's *rand.Rand —
// in the engine, a dedicated per-round fault stream from rngstream.go — and
// consumes a number of draws that depends only on the Profile, never on
// simulation outcomes observed by other streams. Fault schedules are
// therefore bit-identical across worker counts, like every other draw of
// the staged round pipeline.
package fault

import (
	"errors"
	"fmt"
	"math"
	"math/rand"

	"cbma/internal/channel"
)

// Errors of the execution fault layer.
var (
	// ErrInjectedPanic is the value an injected round panic carries; the
	// engine's recovery path distinguishes it from organic panics when
	// counting degradation.
	ErrInjectedPanic = errors.New("fault: injected round panic")
	// ErrTransient marks an injected transient round failure — the class of
	// error the engine retries (with capped backoff) before quarantining.
	ErrTransient = errors.New("fault: injected transient round failure")
)

// IsTransient reports whether err is a retryable transient failure.
func IsTransient(err error) bool { return errors.Is(err, ErrTransient) }

// Profile declares the fault intensity at each layer. The zero value injects
// nothing; probabilities are clamped to [0, 1] by WithDefaults. A Profile is
// immutable configuration — scenarios share pointers to it, so mutate copies,
// never a profile already handed to an engine.
type Profile struct {
	// Tag layer — hardware imperfections of the passive tags.

	// StuckImpedanceProb is the per-tag probability (drawn once at engine
	// construction) that the tag's impedance switch is stuck: it powers up
	// in its initial state and ignores every SetImpedance/StepImpedance for
	// the rest of the run, starving Algorithm 1's actuation path.
	StuckImpedanceProb float64
	// ClockDriftChips gives each tag a constant per-tag clock offset drawn
	// uniformly in ±ClockDriftChips/2 (once, at construction) — the cheap
	// oscillator bias on top of Scenario.JitterChips' per-frame jitter.
	ClockDriftChips float64
	// ExtraJitterChips adds uniform per-frame jitter of ±ExtraJitterChips/2
	// on top of the scenario's, modelling degraded clock recovery.
	ExtraJitterChips float64
	// EnergyOutageProb is the per-tag per-round probability that the tag's
	// harvested energy runs out mid-frame: the waveform goes silent after a
	// uniformly drawn fraction of the frame.
	EnergyOutageProb float64

	// Feedback layer — the ACK downlink feeding mac.PowerController.

	// AckLossProb drops each ACK delivery with this probability (on top of
	// Scenario.AckLossProb; this one is counted in Counters.AcksLost).
	AckLossProb float64
	// AckCorruptProb corrupts each surviving ACK so the tag fails to
	// recognize its ID — same starvation as a loss, counted separately.
	AckCorruptProb float64
	// SpuriousAckProb makes each un-ACKed tag falsely hear an ACK with this
	// probability, poisoning the feedback loop in the optimistic direction.
	SpuriousAckProb float64
	// FeedbackRetries bounds the PowerController's re-measurement attempts
	// when a whole batch comes back with zero ACKs (total feedback blackout)
	// before it falls back to a conservative impedance state. Zero disables
	// the timeout path entirely (legacy behaviour: silence reads as
	// universal frame loss).
	FeedbackRetries int
	// FallbackImpedance is the impedance state tags are parked at when
	// feedback retries exhaust. Zero selects each tag's strongest state.
	FallbackImpedance int

	// Channel layer — episodic propagation faults.

	// BurstProb is the per-round probability of one high-power wideband
	// interference burst (channel.BurstInterferer) landing in the round.
	BurstProb float64
	// BurstPowerDBm is the burst power at the receiver (default −60 dBm,
	// comfortably above the thermal floor at the paper's bandwidth).
	BurstPowerDBm float64
	// BurstMeanSec is the mean burst duration (default 200 µs).
	BurstMeanSec float64
	// DeepFadeProb is the per-tag per-round probability of a deep-fade
	// episode attenuating that tag's link by DeepFadeDB.
	DeepFadeProb float64
	// DeepFadeDB is the fade depth in dB (default 20).
	DeepFadeDB float64

	// Execution layer — failures of the campaign runner itself.

	// PanicProb is the per-round probability that executing the round
	// panics; the engine recovers and quarantines the round.
	PanicProb float64
	// TransientErrProb is the per-round probability that the round fails
	// with a retryable transient error on its first attempt(s).
	TransientErrProb float64
	// MaxRoundRetries caps how often a transiently failing round is retried
	// before quarantine. Zero selects 2.
	MaxRoundRetries int
}

// WithDefaults returns p with probabilities clamped to [0, 1] and the
// magnitude defaults filled in.
func (p Profile) WithDefaults() Profile {
	clamp := func(v *float64) {
		if *v < 0 {
			*v = 0
		}
		if *v > 1 {
			*v = 1
		}
	}
	clamp(&p.StuckImpedanceProb)
	clamp(&p.EnergyOutageProb)
	clamp(&p.AckLossProb)
	clamp(&p.AckCorruptProb)
	clamp(&p.SpuriousAckProb)
	clamp(&p.BurstProb)
	clamp(&p.DeepFadeProb)
	clamp(&p.PanicProb)
	clamp(&p.TransientErrProb)
	if p.ClockDriftChips < 0 {
		p.ClockDriftChips = 0
	}
	if p.ExtraJitterChips < 0 {
		p.ExtraJitterChips = 0
	}
	if p.FeedbackRetries < 0 {
		p.FeedbackRetries = 0
	}
	if p.FallbackImpedance < 0 {
		p.FallbackImpedance = 0
	}
	if p.BurstPowerDBm == 0 {
		p.BurstPowerDBm = -60
	}
	if p.BurstMeanSec <= 0 {
		p.BurstMeanSec = 200e-6
	}
	if p.DeepFadeDB <= 0 {
		p.DeepFadeDB = 20
	}
	if p.MaxRoundRetries <= 0 {
		p.MaxRoundRetries = 2
	}
	return p
}

// Enabled reports whether the profile injects anything at all.
func (p Profile) Enabled() bool {
	return p.StuckImpedanceProb > 0 || p.ClockDriftChips > 0 ||
		p.ExtraJitterChips > 0 || p.EnergyOutageProb > 0 ||
		p.AckLossProb > 0 || p.AckCorruptProb > 0 || p.SpuriousAckProb > 0 ||
		p.FeedbackRetries > 0 ||
		p.BurstProb > 0 || p.DeepFadeProb > 0 ||
		p.PanicProb > 0 || p.TransientErrProb > 0
}

// Counters is the degradation ledger of a run: how often each fault fired.
// All fields are integral, so Counters merges associatively like the rest of
// sim.Metrics.
type Counters struct {
	// StuckTags is the number of tags whose switch is stuck (a population
	// property, counted once per run, not per round).
	StuckTags int
	// EnergyOutages counts mid-frame energy losses across tags and rounds.
	EnergyOutages int
	// DeepFades counts per-tag deep-fade episodes; Bursts counts rounds hit
	// by an interference burst.
	DeepFades int
	Bursts    int
	// AcksLost, AcksCorrupted and SpuriousAcks count feedback-layer events.
	AcksLost      int
	AcksCorrupted int
	SpuriousAcks  int
	// InjectedPanics and TransientErrors count execution-layer injections
	// that actually fired (a quarantined round contributes its panic here).
	InjectedPanics  int
	TransientErrors int
}

// Merge adds o into c.
func (c *Counters) Merge(o Counters) {
	c.StuckTags += o.StuckTags
	c.EnergyOutages += o.EnergyOutages
	c.DeepFades += o.DeepFades
	c.Bursts += o.Bursts
	c.AcksLost += o.AcksLost
	c.AcksCorrupted += o.AcksCorrupted
	c.SpuriousAcks += o.SpuriousAcks
	c.InjectedPanics += o.InjectedPanics
	c.TransientErrors += o.TransientErrors
}

// Any reports whether any fault fired.
func (c Counters) Any() bool { return c != Counters{} }

// Total sums the per-event counters — everything except StuckTags, which is
// a population property, not a firing.
func (c Counters) Total() int {
	return c.EnergyOutages + c.DeepFades + c.Bursts +
		c.AcksLost + c.AcksCorrupted + c.SpuriousAcks +
		c.InjectedPanics + c.TransientErrors
}

// Fields returns the nonzero counters keyed by name, shaped for telemetry
// event sinks (obs.Event fields). Nil when nothing fired.
func (c Counters) Fields() map[string]any {
	if !c.Any() {
		return nil
	}
	f := map[string]any{}
	put := func(name string, v int) {
		if v != 0 {
			f[name] = v
		}
	}
	put("stuck_tags", c.StuckTags)
	put("energy_outages", c.EnergyOutages)
	put("deep_fades", c.DeepFades)
	put("bursts", c.Bursts)
	put("acks_lost", c.AcksLost)
	put("acks_corrupted", c.AcksCorrupted)
	put("spurious_acks", c.SpuriousAcks)
	put("injected_panics", c.InjectedPanics)
	put("transient_errors", c.TransientErrors)
	return f
}

// String renders the non-zero counters.
func (c Counters) String() string {
	return fmt.Sprintf(
		"stuck=%d outages=%d fades=%d bursts=%d acksLost=%d acksCorrupt=%d spurious=%d panics=%d transients=%d",
		c.StuckTags, c.EnergyOutages, c.DeepFades, c.Bursts,
		c.AcksLost, c.AcksCorrupted, c.SpuriousAcks,
		c.InjectedPanics, c.TransientErrors)
}

// AckFate is the feedback layer's verdict on one delivered frame's ACK.
type AckFate int

// Ack fates, in draw order.
const (
	// AckDelivered: the tag heard its ACK.
	AckDelivered AckFate = iota
	// AckLost: the downlink dropped the ACK.
	AckLost
	// AckCorrupted: the ACK arrived garbled; the tag cannot recognize it.
	AckCorrupted
)

// ExecPlan is one round's execution-fault schedule, drawn once before the
// attempt loop so retries of the same round cannot re-roll their fate (which
// would make the retry count outcome-dependent and non-reproducible).
type ExecPlan struct {
	// FailAttempts is how many initial attempts fail with ErrTransient.
	FailAttempts int
	// Panic makes the first attempt that clears the transient gate panic.
	Panic bool
}

// Injector evaluates a Profile against a tag population. It is stateless per
// round (all per-round draws come from caller-supplied generators), so a
// single Injector is shared by all of an engine's round workers.
type Injector struct {
	p      Profile
	stuck  []bool
	drift  []float64
	burst  channel.BurstInterferer
	nStuck int
}

// NewInjector draws the static (population-level) fault assignments from
// setupRng and returns the injector. setupRng draws happen in a fixed order —
// per tag: stuck, then drift — so the consumed stream length depends only on
// the profile and tag count.
func NewInjector(p Profile, numTags int, setupRng *rand.Rand) *Injector {
	p = p.WithDefaults()
	in := &Injector{
		p:     p,
		stuck: make([]bool, numTags),
		drift: make([]float64, numTags),
		burst: channel.BurstInterferer{PowerDBm: p.BurstPowerDBm, MeanBurstSec: p.BurstMeanSec},
	}
	for i := 0; i < numTags; i++ {
		if p.StuckImpedanceProb > 0 && setupRng.Float64() < p.StuckImpedanceProb {
			in.stuck[i] = true
			in.nStuck++
		}
		if p.ClockDriftChips > 0 {
			in.drift[i] = p.ClockDriftChips * (setupRng.Float64() - 0.5)
		}
	}
	return in
}

// Profile returns the injector's normalized profile.
func (in *Injector) Profile() Profile { return in.p }

// Stuck reports whether tag id's impedance switch is stuck.
func (in *Injector) Stuck(id int) bool {
	return id >= 0 && id < len(in.stuck) && in.stuck[id]
}

// StuckCount is the number of stuck tags in the population.
func (in *Injector) StuckCount() int { return in.nStuck }

// DriftChips returns tag id's constant clock drift in chips.
func (in *Injector) DriftChips(id int) float64 {
	if id < 0 || id >= len(in.drift) {
		return 0
	}
	return in.drift[id]
}

// TagRoundFaults reports whether buildTransmissions needs per-round tag
// draws (jitter or outage); drift alone needs none.
func (in *Injector) TagRoundFaults() bool {
	return in.p.ExtraJitterChips > 0 || in.p.EnergyOutageProb > 0
}

// ExtraJitter draws one tag's extra per-frame jitter in chips.
func (in *Injector) ExtraJitter(rng *rand.Rand) float64 {
	if in.p.ExtraJitterChips <= 0 {
		return 0
	}
	return in.p.ExtraJitterChips * (rng.Float64() - 0.5)
}

// EnergyOutage draws one tag's mid-frame energy fate: when it fires, the
// returned fraction (uniform in [0.25, 0.95)) is how much of the frame the
// tag manages to transmit before going silent.
func (in *Injector) EnergyOutage(rng *rand.Rand) (float64, bool) {
	if in.p.EnergyOutageProb <= 0 || rng.Float64() >= in.p.EnergyOutageProb {
		return 0, false
	}
	return 0.25 + 0.7*rng.Float64(), true
}

// ChannelRoundFaults reports whether mixChannel needs the per-round channel
// fault stream.
func (in *Injector) ChannelRoundFaults() bool {
	return in.p.DeepFadeProb > 0 || in.p.BurstProb > 0
}

// DeepFade draws one tag's fade episode: when it fires, the returned scale
// is the amplitude attenuation of a DeepFadeDB power fade.
func (in *Injector) DeepFade(rng *rand.Rand) (float64, bool) {
	if in.p.DeepFadeProb <= 0 || rng.Float64() >= in.p.DeepFadeProb {
		return 1, false
	}
	return math.Pow(10, -in.p.DeepFadeDB/20), true
}

// Burst draws whether this round suffers an interference burst.
func (in *Injector) Burst(rng *rand.Rand) bool {
	return in.p.BurstProb > 0 && rng.Float64() < in.p.BurstProb
}

// ApplyBurst injects the burst waveform into the round's receive buffer.
func (in *Injector) ApplyBurst(rng *rand.Rand, samples []complex128, sampleRateHz float64) {
	in.burst.Apply(rng, samples, sampleRateHz)
}

// AckFaults reports whether the feedback layer draws per-ACK fates.
func (in *Injector) AckFaults() bool {
	return in.p.AckLossProb > 0 || in.p.AckCorruptProb > 0
}

// AckFate draws one delivered frame's ACK outcome: one uniform draw split
// into loss, corruption and delivery regions so the consumed stream length
// is one per delivered frame regardless of outcome.
func (in *Injector) AckFate(rng *rand.Rand) AckFate {
	u := rng.Float64()
	if u < in.p.AckLossProb {
		return AckLost
	}
	if u < in.p.AckLossProb+in.p.AckCorruptProb {
		return AckCorrupted
	}
	return AckDelivered
}

// SpuriousAcks reports whether un-ACKed tags draw spurious-ACK fates.
func (in *Injector) SpuriousAcks() bool { return in.p.SpuriousAckProb > 0 }

// SpuriousAck draws whether one un-ACKed tag falsely hears an ACK.
func (in *Injector) SpuriousAck(rng *rand.Rand) bool {
	return rng.Float64() < in.p.SpuriousAckProb
}

// ExecFaults reports whether rounds draw an execution plan at all.
func (in *Injector) ExecFaults() bool {
	return in.p.PanicProb > 0 || in.p.TransientErrProb > 0
}

// ExecPlan draws one round's execution-fault schedule. Draw order is fixed
// (panic, then transient) and each draw happens iff its probability is
// non-zero, so the stream consumption depends only on the profile.
func (in *Injector) ExecPlan(rng *rand.Rand) ExecPlan {
	var pl ExecPlan
	if in.p.PanicProb > 0 && rng.Float64() < in.p.PanicProb {
		pl.Panic = true
	}
	if in.p.TransientErrProb > 0 && rng.Float64() < in.p.TransientErrProb {
		// How many attempts fail is part of the schedule: uniform over
		// [1, MaxRoundRetries+1], so some transient episodes recover within
		// the retry budget and some exhaust it.
		pl.FailAttempts = 1 + rng.Intn(in.p.MaxRoundRetries+1)
	}
	return pl
}

// MaxRoundRetries is the retry cap of the (normalized) profile.
func (in *Injector) MaxRoundRetries() int { return in.p.MaxRoundRetries }
