package mac

import (
	"errors"
	"testing"

	"cbma/internal/tag"
)

// blackout simulates a measurement batch where frames went out but the
// downlink delivered zero ACKs.
func blackout(tags []*tag.Tag, sent int) {
	for _, tg := range tags {
		for k := 0; k < sent; k++ {
			tg.NoteFrameSent()
		}
	}
}

func TestFeedbackBlackoutRetriesThenFallsBack(t *testing.T) {
	tags := makeTags(t, 3)
	pc, err := NewPowerController(PowerControlConfig{FeedbackRetries: 2}, 3)
	if err != nil {
		t.Fatal(err)
	}
	before := make([]tag.ImpedanceState, len(tags))
	for i, tg := range tags {
		before[i] = tg.Impedance()
	}

	// Retries 1 and 2: uncharged, growing backoff, no actuation. The Round
	// calls are sequential, so the expectations must be visited in order
	// (ranging a map here made the test flake on iteration order).
	for retry := 1; retry <= 2; retry++ {
		wantBackoff := retry
		blackout(tags, 10)
		out, err := pc.Round(tags)
		if err != nil {
			t.Fatalf("retry %d: %v", retry, err)
		}
		if !out.FeedbackLost {
			t.Fatalf("retry %d: blackout not flagged", retry)
		}
		if out.RetryBackoff != wantBackoff {
			t.Errorf("retry %d: backoff %d, want %d", retry, out.RetryBackoff, wantBackoff)
		}
		if out.FellBack || len(out.Adjusted) != 0 {
			t.Errorf("retry %d: actuated during re-measurement: %+v", retry, out)
		}
		if pc.RoundsUsed() != 0 {
			t.Errorf("retry %d charged the round budget", retry)
		}
		if s, _ := tags[0].AckWindow(); s != 0 {
			t.Errorf("retry %d: ack window not reset", retry)
		}
	}
	for i, tg := range tags {
		if tg.Impedance() != before[i] {
			t.Errorf("tag %d impedance churned during retries", i)
		}
	}

	// Third blackout: retries exhausted — one budget-charged fallback parking
	// every tag at its strongest state.
	blackout(tags, 10)
	out, err := pc.Round(tags)
	if err != nil {
		t.Fatal(err)
	}
	if !out.FellBack || !out.FeedbackLost {
		t.Fatalf("fallback round outcome: %+v", out)
	}
	if len(out.Adjusted) != len(tags) {
		t.Errorf("fallback adjusted %d tags, want %d", len(out.Adjusted), len(tags))
	}
	if pc.RoundsUsed() != 1 {
		t.Errorf("fallback charged %d rounds, want 1", pc.RoundsUsed())
	}
	for i, tg := range tags {
		if want := tag.ImpedanceState(tg.ImpedanceStates()); tg.Impedance() != want {
			t.Errorf("tag %d parked at %d, want strongest state %d", i, tg.Impedance(), want)
		}
	}

	// Post-fallback blackouts keep charging the budget without churning.
	blackout(tags, 10)
	out, err = pc.Round(tags)
	if err != nil {
		t.Fatal(err)
	}
	if out.FellBack || len(out.Adjusted) != 0 {
		t.Errorf("second fallback fired: %+v", out)
	}
	if pc.RoundsUsed() != 2 {
		t.Errorf("post-fallback blackout charged %d rounds, want 2", pc.RoundsUsed())
	}
}

func TestFeedbackBlackoutRecoveryResetsRetries(t *testing.T) {
	tags := makeTags(t, 2)
	pc, err := NewPowerController(PowerControlConfig{FeedbackRetries: 2}, 2)
	if err != nil {
		t.Fatal(err)
	}
	blackout(tags, 10)
	if out, err := pc.Round(tags); err != nil || out.RetryBackoff != 1 {
		t.Fatalf("first blackout: %+v, %v", out, err)
	}
	// A healthy batch clears the consecutive-retry counter...
	feedAcks(tags, 10, []float64{1, 1})
	if out, err := pc.Round(tags); err != nil || !out.Converged {
		t.Fatalf("healthy round: %+v, %v", out, err)
	}
	// ...so the next blackout restarts the backoff ladder.
	blackout(tags, 10)
	out, err := pc.Round(tags)
	if err != nil {
		t.Fatal(err)
	}
	if out.RetryBackoff != 1 {
		t.Errorf("backoff after recovery = %d, want 1", out.RetryBackoff)
	}
}

func TestRetryBackoffCapped(t *testing.T) {
	want := []int{1, 2, 4, 8, 8, 8}
	for i, w := range want {
		if got := retryBackoff(i + 1); got != w {
			t.Errorf("retryBackoff(%d) = %d, want %d", i+1, got, w)
		}
	}
}

// TestBlackoutLegacyPath: with FeedbackRetries zero the timeout path is
// disabled and silence reads as universal frame loss — every tag steps.
func TestBlackoutLegacyPath(t *testing.T) {
	tags := makeTags(t, 3)
	pc, err := NewPowerController(PowerControlConfig{}, 3)
	if err != nil {
		t.Fatal(err)
	}
	blackout(tags, 10)
	out, err := pc.Round(tags)
	if err != nil {
		t.Fatal(err)
	}
	if out.FeedbackLost || out.RetryBackoff != 0 {
		t.Errorf("timeout path fired with FeedbackRetries=0: %+v", out)
	}
	if len(out.Adjusted) != len(tags) {
		t.Errorf("legacy blackout adjusted %d tags, want all %d", len(out.Adjusted), len(tags))
	}
}

func TestFallbackStateConfigured(t *testing.T) {
	tags := makeTags(t, 2)
	pc, err := NewPowerController(PowerControlConfig{FeedbackRetries: 1, FallbackState: 2}, 2)
	if err != nil {
		t.Fatal(err)
	}
	blackout(tags, 10)
	if _, err := pc.Round(tags); err != nil {
		t.Fatal(err)
	}
	blackout(tags, 10)
	out, err := pc.Round(tags)
	if err != nil {
		t.Fatal(err)
	}
	if !out.FellBack {
		t.Fatalf("no fallback after the single retry: %+v", out)
	}
	for i, tg := range tags {
		if tg.Impedance() != 2 {
			t.Errorf("tag %d parked at %d, want configured state 2", i, tg.Impedance())
		}
	}
}

// TestBlackoutExhaustionTerminates: a permanently dead downlink drains the
// budget through post-fallback blackouts and ends in ErrExhausted.
func TestBlackoutExhaustionTerminates(t *testing.T) {
	tags := makeTags(t, 1) // budget: 3 rounds
	pc, err := NewPowerController(PowerControlConfig{FeedbackRetries: 1}, 1)
	if err != nil {
		t.Fatal(err)
	}
	sawExhausted := false
	for i := 0; i < 10; i++ {
		blackout(tags, 5)
		out, err := pc.Round(tags)
		if out.Exhausted {
			// The round that spends the last budget unit flags Exhausted with
			// a nil error; only a call past that point is a driver bug.
			sawExhausted = true
			if err != nil {
				t.Fatalf("budget-spending round errored: %v", err)
			}
			break
		}
		if err != nil {
			t.Fatal(err)
		}
	}
	if !sawExhausted {
		t.Fatal("dead downlink never exhausted the budget")
	}
	blackout(tags, 5)
	if _, err := pc.Round(tags); !errors.Is(err, ErrExhausted) {
		t.Fatalf("post-exhaustion call returned %v, want ErrExhausted", err)
	}
	if pc.RoundsUsed() != 3 {
		t.Errorf("budget drained to %d rounds, want 3", pc.RoundsUsed())
	}
}
