package mac

import (
	"errors"
	"math"
	"math/rand"
	"testing"

	"cbma/internal/channel"
	"cbma/internal/geom"
	"cbma/internal/pn"
	"cbma/internal/tag"
)

func makeTags(t *testing.T, n int) []*tag.Tag {
	t.Helper()
	set, err := pn.NewGoldSet(5, n)
	if err != nil {
		t.Fatal(err)
	}
	tags := make([]*tag.Tag, n)
	for i := range tags {
		tg, err := tag.New(i, tag.Config{Code: set.Codes[i]}, geom.Point{X: float64(i), Y: 1})
		if err != nil {
			t.Fatal(err)
		}
		tags[i] = tg
	}
	return tags
}

// feedAcks simulates a measurement round: each tag sends `sent` frames and
// hears acks per the provided ratios.
func feedAcks(tags []*tag.Tag, sent int, ratios []float64) {
	for i, tg := range tags {
		for k := 0; k < sent; k++ {
			tg.NoteFrameSent()
			if float64(k) < ratios[i]*float64(sent) {
				tg.NoteAck()
			}
		}
	}
}

func TestNewPowerControllerValidation(t *testing.T) {
	if _, err := NewPowerController(PowerControlConfig{}, 0); !errors.Is(err, ErrNoTags) {
		t.Fatalf("got %v, want ErrNoTags", err)
	}
	pc, err := NewPowerController(PowerControlConfig{}, 5)
	if err != nil {
		t.Fatal(err)
	}
	if pc.maxRounds != 15 { // 3 × numTags per §V-B
		t.Errorf("maxRounds = %d, want 15", pc.maxRounds)
	}
}

func TestRoundConvergedWhenFERLow(t *testing.T) {
	tags := makeTags(t, 3)
	pc, err := NewPowerController(PowerControlConfig{}, 3)
	if err != nil {
		t.Fatal(err)
	}
	feedAcks(tags, 10, []float64{1, 1, 0.9})
	out, err := pc.Round(tags)
	if err != nil {
		t.Fatal(err)
	}
	if !out.Converged {
		t.Errorf("FER %v should converge", out.FER)
	}
	if len(out.Adjusted) != 0 {
		t.Errorf("converged round must not adjust: %v", out.Adjusted)
	}
	if pc.RoundsUsed() != 0 {
		t.Errorf("converged round must not consume budget")
	}
	// ACK windows reset even on convergence.
	if tags[0].AckRatio() != 0 {
		t.Error("ack windows must be reset")
	}
}

func TestRoundStepsOnlyWeakTags(t *testing.T) {
	tags := makeTags(t, 3)
	before := []tag.ImpedanceState{tags[0].Impedance(), tags[1].Impedance(), tags[2].Impedance()}
	pc, err := NewPowerController(PowerControlConfig{}, 3)
	if err != nil {
		t.Fatal(err)
	}
	feedAcks(tags, 10, []float64{1.0, 0.2, 0.4}) // FER = 1−0.533 ≈ 0.47
	out, err := pc.Round(tags)
	if err != nil {
		t.Fatal(err)
	}
	if out.Converged {
		t.Fatal("high FER must not converge")
	}
	if len(out.Adjusted) != 2 || out.Adjusted[0] != 1 || out.Adjusted[1] != 2 {
		t.Errorf("adjusted %v, want [1 2]", out.Adjusted)
	}
	if tags[0].Impedance() != before[0] {
		t.Error("strong tag must keep its impedance")
	}
	if tags[1].Impedance() == before[1] || tags[2].Impedance() == before[2] {
		t.Error("weak tags must step impedance")
	}
	if pc.RoundsUsed() != 1 {
		t.Errorf("rounds used %d", pc.RoundsUsed())
	}
}

func TestRoundBudgetExhaustion(t *testing.T) {
	tags := makeTags(t, 1)
	pc, err := NewPowerController(PowerControlConfig{}, 1) // budget = 3 rounds
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		feedAcks(tags, 10, []float64{0})
		out, err := pc.Round(tags)
		if err != nil {
			t.Fatal(err)
		}
		if out.Converged {
			t.Fatal("must not converge")
		}
		_ = out
	}
	if !pc.Exhausted() {
		t.Fatal("budget must be exhausted after 3 rounds")
	}
	feedAcks(tags, 10, []float64{0})
	out, err := pc.Round(tags)
	if !errors.Is(err, ErrExhausted) {
		t.Fatalf("got %v, want ErrExhausted", err)
	}
	if !out.Exhausted || len(out.Adjusted) != 0 {
		t.Errorf("exhausted controller must stop adjusting: %+v", out)
	}
}

func TestRoundNoTags(t *testing.T) {
	pc, err := NewPowerController(PowerControlConfig{}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := pc.Round(nil); !errors.Is(err, ErrNoTags) {
		t.Fatalf("got %v, want ErrNoTags", err)
	}
}

func TestRoundFERComputation(t *testing.T) {
	tags := makeTags(t, 2)
	pc, err := NewPowerController(PowerControlConfig{FERThreshold: 0.01}, 2)
	if err != nil {
		t.Fatal(err)
	}
	feedAcks(tags, 10, []float64{0.8, 0.6})
	out, err := pc.Round(tags)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(out.FER-0.3) > 1e-9 {
		t.Errorf("FER = %v, want 0.3", out.FER)
	}
}

func TestEqualizePowerShrinksSpread(t *testing.T) {
	params := channel.DefaultParams()
	dep := geom.NewDeployment(0.5)
	tags := makeTags(t, 3)
	// Near, mid and far tags — a classic near-far spread.
	tags[0].MoveTo(geom.Point{X: 0.6, Y: 0.2})
	tags[1].MoveTo(geom.Point{X: 0, Y: 1})
	tags[2].MoveTo(geom.Point{X: -1.5, Y: 1.5})
	before, err := PowerSpread(params, dep, tags)
	if err != nil {
		t.Fatal(err)
	}
	states, err := EqualizePower(params, dep, tags)
	if err != nil {
		t.Fatal(err)
	}
	if len(states) != 3 {
		t.Fatalf("states %v", states)
	}
	after, err := PowerSpread(params, dep, tags)
	if err != nil {
		t.Fatal(err)
	}
	if after >= before {
		t.Errorf("spread did not shrink: before %v, after %v", before, after)
	}
	// The far tag should be at (or near) full reflection; the near tag at a
	// weaker state.
	if states[2] < states[0] {
		t.Errorf("far tag state %d should not be weaker than near tag state %d",
			states[2], states[0])
	}
}

func TestEqualizePowerNoTags(t *testing.T) {
	if _, err := EqualizePower(channel.DefaultParams(), geom.NewDeployment(0.5), nil); !errors.Is(err, ErrNoTags) {
		t.Fatalf("got %v, want ErrNoTags", err)
	}
}

func TestPowerSpreadSingleTag(t *testing.T) {
	params := channel.DefaultParams()
	dep := geom.NewDeployment(0.5)
	tags := makeTags(t, 1)
	s, err := PowerSpread(params, dep, tags)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(s-1) > 1e-12 {
		t.Errorf("single-tag spread %v, want 1", s)
	}
	if _, err := PowerSpread(params, dep, nil); !errors.Is(err, ErrNoTags) {
		t.Fatal("nil tags must fail")
	}
}

func newSelector(t *testing.T, cfg NodeSelectConfig) *NodeSelector {
	t.Helper()
	return NewNodeSelector(cfg, channel.DefaultParams(), geom.NewDeployment(0.5),
		rand.New(rand.NewSource(11)))
}

func TestNodeSelectorDefaults(t *testing.T) {
	ns := newSelector(t, NodeSelectConfig{})
	if ns.cfg.BadAckCutoff != 0.7 {
		t.Errorf("cutoff %v, want 0.7 (§V-C)", ns.cfg.BadAckCutoff)
	}
	if math.Abs(ns.cfg.ExclusionRadius-0.075) > 0.001 {
		t.Errorf("exclusion radius %v, want ≈λ/2 = 0.075 m", ns.cfg.ExclusionRadius)
	}
}

func TestIsBad(t *testing.T) {
	ns := newSelector(t, NodeSelectConfig{})
	tags := makeTags(t, 1)
	feedAcks(tags, 10, []float64{0.5})
	if !ns.IsBad(tags[0]) {
		t.Error("50% ack ratio must be bad at 70% cutoff")
	}
	tags[0].ResetAckWindow()
	feedAcks(tags, 10, []float64{0.9})
	if ns.IsBad(tags[0]) {
		t.Error("90% ack ratio must be good")
	}
}

func TestEligibleFiltersExclusionZoneAndRoom(t *testing.T) {
	ns := newSelector(t, NodeSelectConfig{ExclusionRadius: 0.5})
	active := []geom.Point{{X: 0, Y: 0}}
	candidates := []geom.Point{
		{X: 0.1, Y: 0},   // inside exclusion zone
		{X: 1, Y: 1},     // fine
		{X: 100, Y: 100}, // outside room
	}
	got := ns.Eligible(candidates, active)
	if len(got) != 1 || got[0] != (geom.Point{X: 1, Y: 1}) {
		t.Errorf("eligible = %v", got)
	}
}

func TestReplaceAcceptsBetterPosition(t *testing.T) {
	ns := newSelector(t, NodeSelectConfig{})
	bad := geom.Point{X: -2.9, Y: 1.9} // far corner, weak
	better := geom.Point{X: 0, Y: 0.3} // near the ES–RX axis, strong
	got, accepted, err := ns.Replace(bad, []geom.Point{better}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !accepted || got != better {
		t.Errorf("better candidate must always be accepted: %v %v", got, accepted)
	}
}

func TestReplaceGreedyRejectsWorse(t *testing.T) {
	ns := newSelector(t, NodeSelectConfig{Greedy: true})
	good := geom.Point{X: 0, Y: 0.3}
	worse := geom.Point{X: -2.9, Y: 1.9}
	got, accepted, err := ns.Replace(good, []geom.Point{worse}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if accepted || got != good {
		t.Error("greedy mode must reject a worse candidate")
	}
}

func TestReplaceAnnealingCoolsDown(t *testing.T) {
	ns := newSelector(t, NodeSelectConfig{})
	t0 := ns.Temperature()
	good := geom.Point{X: 0, Y: 0.3}
	worse := geom.Point{X: -2.9, Y: 1.9}
	for i := 0; i < 5; i++ {
		if _, _, err := ns.Replace(good, []geom.Point{worse}, nil); err != nil {
			t.Fatal(err)
		}
	}
	if ns.Temperature() >= t0 {
		t.Error("temperature must decay across proposals")
	}
}

func TestReplaceAnnealingSometimesAcceptsWorseEarly(t *testing.T) {
	// With a hot temperature and a mild loss, some proposals must pass.
	params := channel.DefaultParams()
	dep := geom.NewDeployment(0.5)
	good := geom.Point{X: 0, Y: 0.5}
	slightlyWorse := geom.Point{X: 0, Y: 0.6}
	accepted := 0
	const trials = 200
	for i := 0; i < trials; i++ {
		ns := NewNodeSelector(NodeSelectConfig{InitialTemp: 2}, params, dep,
			rand.New(rand.NewSource(int64(i))))
		_, ok, err := ns.Replace(good, []geom.Point{slightlyWorse}, nil)
		if err != nil {
			t.Fatal(err)
		}
		if ok {
			accepted++
		}
	}
	if accepted == 0 {
		t.Error("hot annealing must occasionally accept mildly worse positions")
	}
	if accepted == trials {
		t.Error("acceptance of worse positions must not be certain")
	}
}

func TestReplaceNoCandidates(t *testing.T) {
	ns := newSelector(t, NodeSelectConfig{})
	if _, _, err := ns.Replace(geom.Point{}, nil, nil); !errors.Is(err, ErrNoCandidates) {
		t.Fatalf("got %v, want ErrNoCandidates", err)
	}
}

func TestGradientMoveClimbsField(t *testing.T) {
	ns := newSelector(t, NodeSelectConfig{})
	p := geom.Point{X: -2.5, Y: 1.8}
	start := ns.Strength(p)
	moved := true
	steps := 0
	for moved && steps < 200 {
		p, moved = ns.GradientMove(p, 0.1)
		steps++
	}
	if ns.Strength(p) <= start {
		t.Error("gradient walk must improve signal strength")
	}
	// The walk converges somewhere near the ES–RX axis where the product of
	// path gains is maximized.
	if math.Abs(p.Y) > 0.5 {
		t.Errorf("converged at %v, expected near the axis", p)
	}
}

func TestGradientMoveStaysInRoom(t *testing.T) {
	ns := newSelector(t, NodeSelectConfig{})
	p := geom.Point{X: -2.95, Y: 1.95}
	for i := 0; i < 100; i++ {
		var moved bool
		p, moved = ns.GradientMove(p, 0.25)
		if !ns.dep.Room.Contains(p) {
			t.Fatalf("left the room at %v", p)
		}
		if !moved {
			break
		}
	}
}
