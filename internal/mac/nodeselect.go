package mac

import (
	"errors"
	"math"
	"math/rand"

	"cbma/internal/channel"
	"cbma/internal/geom"
	"cbma/internal/obs"
	"cbma/internal/tag"
)

// ErrNoCandidates is returned when node selection has no idle tags to draw
// from.
var ErrNoCandidates = errors.New("mac: no candidate positions available")

// NodeSelectConfig parameterizes the §V-C node-selection scheme.
type NodeSelectConfig struct {
	// BadAckCutoff marks a tag "bad" when its ACK ratio stays below this
	// after power control (§V-C: "below 70%"). Zero selects 0.7.
	BadAckCutoff float64
	// ExclusionRadius removes candidates closer than this to any selected
	// tag (§V-C/§VII-C1: tags within half a wavelength interfere). Zero
	// selects λ/2 at 2 GHz ≈ 7.5 cm.
	ExclusionRadius float64
	// InitialTemp and Cooling control the annealing acceptance of worse
	// candidates ("we accept the new tag with a probability less than 1
	// … more unlikely as T increases"). Zero selects 1.0 and 0.85.
	InitialTemp float64
	Cooling     float64
	// Greedy disables the annealing acceptance entirely (ablation 3 in
	// DESIGN.md): only strictly better candidates are taken.
	Greedy bool
	// Obs, when non-nil, receives node-selection telemetry (proposal/move
	// counters and "node_move" events). Strictly observational.
	Obs *obs.Observer
}

func (c NodeSelectConfig) withDefaults() NodeSelectConfig {
	if c.BadAckCutoff == 0 {
		c.BadAckCutoff = 0.7
	}
	if c.ExclusionRadius == 0 {
		c.ExclusionRadius = geom.Wavelength(2e9) / 2
	}
	if c.InitialTemp == 0 {
		c.InitialTemp = 1.0
	}
	if c.Cooling == 0 {
		c.Cooling = 0.85
	}
	return c
}

// NodeSelector replaces under-performing tags with better-placed idle
// candidates, walking the theoretical Friis signal-strength field of Fig. 5.
type NodeSelector struct {
	cfg    NodeSelectConfig
	params channel.Params
	dep    geom.Deployment
	temp   float64
	rng    *rand.Rand
	// Pre-resolved telemetry instruments (no-ops when cfg.Obs is nil).
	o          *obs.Observer
	cProposals *obs.Counter
	cMoves     *obs.Counter
}

// NewNodeSelector builds a selector for the given radio parameters and
// deployment geometry.
func NewNodeSelector(cfg NodeSelectConfig, params channel.Params, dep geom.Deployment, rng *rand.Rand) *NodeSelector {
	c := cfg.withDefaults()
	ns := &NodeSelector{cfg: c, params: params, dep: dep, temp: c.InitialTemp, rng: rng, o: c.Obs}
	ns.cProposals = ns.o.Counter("mac.select.proposals")
	ns.cMoves = ns.o.Counter("mac.select.moves")
	return ns
}

// Strength returns the theoretical received signal strength (watts) of a
// tag at p at full reflection — the field the greedy walk climbs.
func (ns *NodeSelector) Strength(p geom.Point) float64 {
	return ns.params.BackscatterRxPower(ns.dep.ES.Distance(p), p.Distance(ns.dep.RX), 1.0)
}

// IsBad reports whether a tag's ACK ratio marks it for replacement.
func (ns *NodeSelector) IsBad(t *tag.Tag) bool {
	return ns.IsBadRatio(t.AckRatio())
}

// IsBadRatio applies the §V-C cutoff to an externally measured delivery
// ratio — the system layer computes per-tag ratios from run metrics because
// the tags' own ACK windows are reset by the power-control rounds.
func (ns *NodeSelector) IsBadRatio(r float64) bool {
	return r < ns.cfg.BadAckCutoff
}

// Eligible filters candidates that lie inside the room and respect the
// exclusion radius around every active position.
func (ns *NodeSelector) Eligible(candidates, active []geom.Point) []geom.Point {
	var out []geom.Point
	for _, c := range candidates {
		if !ns.dep.Room.Contains(c) {
			continue
		}
		ok := true
		for _, a := range active {
			if c.Distance(a) < ns.cfg.ExclusionRadius {
				ok = false
				break
			}
		}
		if ok {
			out = append(out, c)
		}
	}
	return out
}

// Replace proposes a replacement position for a bad tag at badPos, drawing
// one random eligible candidate (§V-C: "we first randomly select an idle
// tag"). A candidate with higher theoretical strength is always accepted; a
// worse one is accepted with probability exp(−Δ/T) where Δ is the relative
// strength loss, and the temperature decays after every proposal so worse
// moves become unlikely over time. It returns the accepted position and
// true, or badPos and false when the proposal was rejected or no candidate
// exists.
func (ns *NodeSelector) Replace(badPos geom.Point, candidates, active []geom.Point) (geom.Point, bool, error) {
	eligible := ns.Eligible(candidates, active)
	if len(eligible) == 0 {
		return badPos, false, ErrNoCandidates
	}
	cand := eligible[ns.rng.Intn(len(eligible))]
	cur := ns.Strength(badPos)
	next := ns.Strength(cand)
	accept := next >= cur
	improving := accept
	if !accept && !ns.cfg.Greedy {
		// Normalize the loss so the acceptance probability is scale-free.
		delta := (cur - next) / math.Max(cur, 1e-30)
		accept = ns.rng.Float64() < math.Exp(-delta/ns.temp)
	}
	ns.observe(accept, improving, cur, next)
	ns.temp *= ns.cfg.Cooling
	if !accept {
		return badPos, false, nil
	}
	return cand, true, nil
}

// observe records one Replace proposal on the injected observer. Pure
// telemetry — it reads the decision after it is made, never shapes it.
func (ns *NodeSelector) observe(accept, improving bool, cur, next float64) {
	ns.cProposals.Inc()
	if accept {
		ns.cMoves.Inc()
	}
	if !ns.o.EmitsEvents() {
		return
	}
	f := map[string]any{
		"accepted":   accept,
		"strength_w": next,
		"current_w":  cur,
		"temp":       ns.temp,
	}
	if accept && !improving {
		f["annealed"] = true
	}
	ns.o.Emit("node_move", f)
}

// GradientMove climbs the theoretical signal-strength field from p by step
// meters: it evaluates the four axis neighbours and moves to the best
// improving one, staying inside the room (§V-C: "continually moves at the
// direction with increasing received signal strength"). It reports the new
// position and whether any improvement was found.
func (ns *NodeSelector) GradientMove(p geom.Point, step float64) (geom.Point, bool) {
	best := p
	bestS := ns.Strength(p)
	moved := false
	for _, d := range []geom.Point{{X: step}, {X: -step}, {Y: step}, {Y: -step}} {
		q := p.Add(d)
		if !ns.dep.Room.Contains(q) {
			continue
		}
		if s := ns.Strength(q); s > bestS {
			best, bestS = q, s
			moved = true
		}
	}
	return best, moved
}

// Temperature exposes the current annealing temperature for tests and
// diagnostics.
func (ns *NodeSelector) Temperature() float64 { return ns.temp }
