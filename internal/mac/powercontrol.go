// Package mac implements CBMA's control plane: the ACK-feedback power
// control of Algorithm 1 (§V-B) that walks each under-performing tag through
// its antenna impedance states, and the node-selection scheme of §V-C that
// swaps out "bad" tags using the theoretical Friis field with a
// simulated-annealing acceptance rule.
package mac

import (
	"errors"
	"math"

	"cbma/internal/channel"
	"cbma/internal/geom"
	"cbma/internal/obs"
	"cbma/internal/tag"
)

// ErrNoTags is returned when a controller is constructed without tags.
var ErrNoTags = errors.New("mac: at least one tag is required")

// ErrExhausted is returned by Round when it is called after the execution
// budget is already spent: the caller's loop should have stopped on the
// previous outcome's Exhausted flag, so a call in this state is a driver
// bug that used to progress silently (returning an empty outcome that
// looked like a healthy no-adjustment round).
var ErrExhausted = errors.New("mac: power-control round budget exhausted")

// PowerControlConfig parameterizes Algorithm 1.
type PowerControlConfig struct {
	// FERThreshold is the frame-error-rate trigger (Algorithm 1 line 15:
	// "if FER > Threshold"). Zero selects 0.1.
	FERThreshold float64
	// AckCutoff is the per-tag ACK-ratio below which the tag's impedance
	// is stepped (line 17: "if ACKratio_i < 50%"). Zero selects 0.5.
	AckCutoff float64
	// MaxRoundsFactor bounds the loop at factor × numTags rounds (§V-B:
	// "we limit the number of execution cycles to 3 times the number of
	// tags"). Zero selects 3.
	MaxRoundsFactor int
	// FeedbackRetries enables the feedback-timeout path: when a measurement
	// batch yields zero ACKs despite transmissions (a total feedback
	// blackout — downlink dead, not frames failing), the controller asks
	// the caller to re-measure up to FeedbackRetries times (with growing
	// batches, see RoundOutcome.RetryBackoff) instead of reading silence as
	// universal frame loss and churning every tag's impedance. Zero
	// disables the path entirely, preserving the legacy behaviour.
	FeedbackRetries int
	// FallbackState is the impedance state tags are parked at when feedback
	// retries exhaust — a conservative open-loop configuration. Zero
	// selects each tag's strongest state (the power-up default, the setting
	// most likely to be decodable without feedback).
	FallbackState tag.ImpedanceState
	// Obs, when non-nil, receives per-round power-control telemetry
	// (counters and "power_control" events). Strictly observational: the
	// controller's decisions never depend on it.
	Obs *obs.Observer
}

func (c PowerControlConfig) withDefaults() PowerControlConfig {
	if c.FERThreshold == 0 {
		c.FERThreshold = 0.1
	}
	if c.AckCutoff == 0 {
		c.AckCutoff = 0.5
	}
	if c.MaxRoundsFactor == 0 {
		c.MaxRoundsFactor = 3
	}
	if c.FeedbackRetries < 0 {
		c.FeedbackRetries = 0
	}
	return c
}

// PowerController drives Algorithm 1 over measurement rounds. The caller
// transmits a batch of frames per round (feeding each tag's ACK counters)
// and then calls Round; the controller adjusts impedances until the FER
// target is met or the round budget is exhausted.
type PowerController struct {
	cfg       PowerControlConfig
	maxRounds int
	rounds    int
	// retriesUsed counts consecutive feedback-blackout retries; a healthy
	// round resets it. fellBack latches the one-time fallback parking.
	retriesUsed int
	fellBack    bool
	// Pre-resolved telemetry instruments (no-ops when cfg.Obs is nil).
	o         *obs.Observer
	cRounds   *obs.Counter
	cAdjusted *obs.Counter
}

// NewPowerController returns a controller for a population of numTags tags.
func NewPowerController(cfg PowerControlConfig, numTags int) (*PowerController, error) {
	if numTags <= 0 {
		return nil, ErrNoTags
	}
	c := cfg.withDefaults()
	pc := &PowerController{cfg: c, maxRounds: c.MaxRoundsFactor * numTags, o: c.Obs}
	pc.cRounds = pc.o.Counter("mac.pc.rounds")
	pc.cAdjusted = pc.o.Counter("mac.pc.adjustments")
	return pc, nil
}

// RoundsUsed reports how many adjustment rounds have run.
func (pc *PowerController) RoundsUsed() int { return pc.rounds }

// Exhausted reports whether the execution-cycle budget is spent.
func (pc *PowerController) Exhausted() bool { return pc.rounds >= pc.maxRounds }

// RoundOutcome describes one Round invocation.
type RoundOutcome struct {
	// FER is the population frame error rate observed this round
	// (1 − mean ACK ratio, Algorithm 1 line 14).
	FER float64
	// Adjusted lists the IDs of tags whose impedance was stepped.
	Adjusted []int
	// Converged reports that FER met the threshold — power control is done.
	Converged bool
	// Exhausted reports that the round budget ran out.
	Exhausted bool
	// FeedbackLost reports a total feedback blackout this round: frames
	// were transmitted but zero ACKs came back across the whole population.
	// The FER reading is then meaningless (it measures the downlink, not
	// the frames), so the controller did not adjust impedances from it.
	// Only set when PowerControlConfig.FeedbackRetries > 0.
	FeedbackLost bool
	// RetryBackoff, when positive, asks the caller to enlarge the next
	// measurement batch by this many extra batch units before calling Round
	// again — a logical (round-count) backoff: the longer the blackout, the
	// more airtime the next measurement gets to catch a recovering
	// downlink. Capped exponential in the consecutive retry count.
	RetryBackoff int
	// FellBack reports that feedback retries exhausted this round and the
	// population was parked at the conservative fallback impedance.
	FellBack bool
}

// retryBackoff is the capped exponential batch growth of the feedback
// retry path: 1, 2, 4, … extra batches, capped at 8.
func retryBackoff(retry int) int {
	b := 1 << (retry - 1)
	if b > 8 {
		b = 8
	}
	return b
}

// Round executes one pass of Algorithm 1's control loop over the tags'
// current ACK statistics, stepping the impedance of every tag whose ACK
// ratio is below the cutoff. It resets each tag's ACK window afterwards so
// the next measurement round starts clean.
//
// Calling Round with an empty population returns ErrNoTags; calling it
// after a previous outcome already reported Exhausted returns ErrExhausted
// (with the Exhausted flag set) instead of silently progressing.
//
// When FeedbackRetries is configured and the batch shows a total feedback
// blackout, Round follows the timeout path instead of Algorithm 1: up to
// FeedbackRetries re-measurements (not charged against the round budget —
// the controller did not actuate), then a one-time budget-charged fallback
// that parks every tag at the conservative FallbackState. Further blackout
// rounds after the fallback keep charging the budget without churning
// impedances, so a permanently dead downlink terminates through the normal
// exhaustion path.
func (pc *PowerController) Round(tags []*tag.Tag) (RoundOutcome, error) {
	if len(tags) == 0 {
		return RoundOutcome{}, ErrNoTags
	}
	out, err := pc.round(tags)
	pc.observe(out)
	return out, err
}

// observe records the outcome of one controller invocation on the injected
// observer: counters for invocation and adjustment totals, and a
// "power_control" event with the decision flags. Pure telemetry — it reads
// the outcome, never shapes it.
func (pc *PowerController) observe(out RoundOutcome) {
	pc.cRounds.Inc()
	pc.cAdjusted.Add(int64(len(out.Adjusted)))
	if !pc.o.EmitsEvents() {
		return
	}
	f := map[string]any{"fer": out.FER, "adjusted": len(out.Adjusted)}
	if out.Converged {
		f["converged"] = true
	}
	if out.Exhausted {
		f["exhausted"] = true
	}
	if out.FeedbackLost {
		f["feedback_lost"] = true
	}
	if out.RetryBackoff > 0 {
		f["retry_backoff"] = out.RetryBackoff
	}
	if out.FellBack {
		f["fell_back"] = true
	}
	pc.o.Emit("power_control", f)
}

// round is Round's decision body; the public wrapper adds telemetry.
func (pc *PowerController) round(tags []*tag.Tag) (RoundOutcome, error) {
	var out RoundOutcome
	var sum float64
	sent, acked := 0, 0
	for _, t := range tags {
		sum += t.AckRatio()
		s, a := t.AckWindow()
		sent += s
		acked += a
	}
	out.FER = 1 - sum/float64(len(tags))
	if pc.cfg.FeedbackRetries > 0 && sent > 0 && acked == 0 {
		return pc.feedbackTimeout(tags, out)
	}
	pc.retriesUsed = 0
	if out.FER <= pc.cfg.FERThreshold {
		out.Converged = true
		for _, t := range tags {
			t.ResetAckWindow()
		}
		return out, nil
	}
	if pc.Exhausted() {
		out.Exhausted = true
		return out, ErrExhausted
	}
	pc.rounds++
	for _, t := range tags {
		if t.AckRatio() < pc.cfg.AckCutoff {
			t.StepImpedance()
			out.Adjusted = append(out.Adjusted, t.ID())
		}
		t.ResetAckWindow()
	}
	out.Exhausted = pc.Exhausted()
	return out, nil
}

// feedbackTimeout handles a total ACK blackout: bounded re-measurement,
// then the conservative fallback. See Round's doc comment for the contract.
func (pc *PowerController) feedbackTimeout(tags []*tag.Tag, out RoundOutcome) (RoundOutcome, error) {
	out.FeedbackLost = true
	if pc.retriesUsed < pc.cfg.FeedbackRetries {
		pc.retriesUsed++
		out.RetryBackoff = retryBackoff(pc.retriesUsed)
		for _, t := range tags {
			t.ResetAckWindow()
		}
		return out, nil
	}
	if pc.Exhausted() {
		out.Exhausted = true
		return out, ErrExhausted
	}
	pc.rounds++
	if !pc.fellBack {
		pc.fellBack = true
		out.FellBack = true
		for _, t := range tags {
			fb := pc.cfg.FallbackState
			if fb == 0 {
				fb = tag.ImpedanceState(t.ImpedanceStates())
			}
			if err := t.SetImpedance(fb); err != nil {
				return out, err
			}
			out.Adjusted = append(out.Adjusted, t.ID())
		}
	}
	for _, t := range tags {
		t.ResetAckWindow()
	}
	out.Exhausted = pc.Exhausted()
	return out, nil
}

// EqualizePower is the oracle power-control comparator used by ablation
// benches: it directly selects, for each tag, the impedance state whose
// predicted received power (via the Friis model) is closest to the weakest
// tag's strongest achievable level — the "received power from each tag kept
// at the same level" ideal of §III-A. It returns the per-tag chosen states.
func EqualizePower(params channel.Params, dep geom.Deployment, tags []*tag.Tag) ([]tag.ImpedanceState, error) {
	if len(tags) == 0 {
		return nil, ErrNoTags
	}
	// The weakest tag at full reflection defines the common target.
	target := math.Inf(1)
	for _, t := range tags {
		p := params.BackscatterRxPower(
			dep.ES.Distance(t.Position()), t.Position().Distance(dep.RX), 1.0)
		if p < target {
			target = p
		}
	}
	states := make([]tag.ImpedanceState, len(tags))
	for i, t := range tags {
		bestState := tag.ImpedanceState(1)
		bestDiff := math.Inf(1)
		bank := tag.DefaultBank()
		ladder, err := bank.Ladder()
		if err != nil {
			return nil, err
		}
		for s, dg := range ladder {
			p := params.BackscatterRxPower(
				dep.ES.Distance(t.Position()), t.Position().Distance(dep.RX), dg)
			if d := math.Abs(p - target); d < bestDiff {
				bestDiff = d
				bestState = tag.ImpedanceState(s + 1)
			}
		}
		if err := t.SetImpedance(bestState); err != nil {
			return nil, err
		}
		states[i] = bestState
	}
	return states, nil
}

// PowerSpread returns the max/min ratio of predicted received powers across
// tags at their current impedance states — the quantity Table II shows must
// stay small (<10% relative difference) for reliable collision decoding.
func PowerSpread(params channel.Params, dep geom.Deployment, tags []*tag.Tag) (float64, error) {
	if len(tags) == 0 {
		return 0, ErrNoTags
	}
	minP, maxP := math.Inf(1), 0.0
	for _, t := range tags {
		dg, err := t.DeltaGamma()
		if err != nil {
			return 0, err
		}
		p := params.BackscatterRxPower(
			dep.ES.Distance(t.Position()), t.Position().Distance(dep.RX), dg)
		if p < minP {
			minP = p
		}
		if p > maxP {
			maxP = p
		}
	}
	if minP == 0 {
		return math.Inf(1), nil
	}
	return maxP / minP, nil
}
