// Package mac implements CBMA's control plane: the ACK-feedback power
// control of Algorithm 1 (§V-B) that walks each under-performing tag through
// its antenna impedance states, and the node-selection scheme of §V-C that
// swaps out "bad" tags using the theoretical Friis field with a
// simulated-annealing acceptance rule.
package mac

import (
	"errors"
	"math"

	"cbma/internal/channel"
	"cbma/internal/geom"
	"cbma/internal/tag"
)

// ErrNoTags is returned when a controller is constructed without tags.
var ErrNoTags = errors.New("mac: at least one tag is required")

// PowerControlConfig parameterizes Algorithm 1.
type PowerControlConfig struct {
	// FERThreshold is the frame-error-rate trigger (Algorithm 1 line 15:
	// "if FER > Threshold"). Zero selects 0.1.
	FERThreshold float64
	// AckCutoff is the per-tag ACK-ratio below which the tag's impedance
	// is stepped (line 17: "if ACKratio_i < 50%"). Zero selects 0.5.
	AckCutoff float64
	// MaxRoundsFactor bounds the loop at factor × numTags rounds (§V-B:
	// "we limit the number of execution cycles to 3 times the number of
	// tags"). Zero selects 3.
	MaxRoundsFactor int
}

func (c PowerControlConfig) withDefaults() PowerControlConfig {
	if c.FERThreshold == 0 {
		c.FERThreshold = 0.1
	}
	if c.AckCutoff == 0 {
		c.AckCutoff = 0.5
	}
	if c.MaxRoundsFactor == 0 {
		c.MaxRoundsFactor = 3
	}
	return c
}

// PowerController drives Algorithm 1 over measurement rounds. The caller
// transmits a batch of frames per round (feeding each tag's ACK counters)
// and then calls Round; the controller adjusts impedances until the FER
// target is met or the round budget is exhausted.
type PowerController struct {
	cfg       PowerControlConfig
	maxRounds int
	rounds    int
}

// NewPowerController returns a controller for a population of numTags tags.
func NewPowerController(cfg PowerControlConfig, numTags int) (*PowerController, error) {
	if numTags <= 0 {
		return nil, ErrNoTags
	}
	c := cfg.withDefaults()
	return &PowerController{cfg: c, maxRounds: c.MaxRoundsFactor * numTags}, nil
}

// RoundsUsed reports how many adjustment rounds have run.
func (pc *PowerController) RoundsUsed() int { return pc.rounds }

// Exhausted reports whether the execution-cycle budget is spent.
func (pc *PowerController) Exhausted() bool { return pc.rounds >= pc.maxRounds }

// RoundOutcome describes one Round invocation.
type RoundOutcome struct {
	// FER is the population frame error rate observed this round
	// (1 − mean ACK ratio, Algorithm 1 line 14).
	FER float64
	// Adjusted lists the IDs of tags whose impedance was stepped.
	Adjusted []int
	// Converged reports that FER met the threshold — power control is done.
	Converged bool
	// Exhausted reports that the round budget ran out.
	Exhausted bool
}

// Round executes one pass of Algorithm 1's control loop over the tags'
// current ACK statistics, stepping the impedance of every tag whose ACK
// ratio is below the cutoff. It resets each tag's ACK window afterwards so
// the next measurement round starts clean.
func (pc *PowerController) Round(tags []*tag.Tag) (RoundOutcome, error) {
	if len(tags) == 0 {
		return RoundOutcome{}, ErrNoTags
	}
	var out RoundOutcome
	var sum float64
	for _, t := range tags {
		sum += t.AckRatio()
	}
	out.FER = 1 - sum/float64(len(tags))
	if out.FER <= pc.cfg.FERThreshold {
		out.Converged = true
		for _, t := range tags {
			t.ResetAckWindow()
		}
		return out, nil
	}
	if pc.Exhausted() {
		out.Exhausted = true
		return out, nil
	}
	pc.rounds++
	for _, t := range tags {
		if t.AckRatio() < pc.cfg.AckCutoff {
			t.StepImpedance()
			out.Adjusted = append(out.Adjusted, t.ID())
		}
		t.ResetAckWindow()
	}
	out.Exhausted = pc.Exhausted()
	return out, nil
}

// EqualizePower is the oracle power-control comparator used by ablation
// benches: it directly selects, for each tag, the impedance state whose
// predicted received power (via the Friis model) is closest to the weakest
// tag's strongest achievable level — the "received power from each tag kept
// at the same level" ideal of §III-A. It returns the per-tag chosen states.
func EqualizePower(params channel.Params, dep geom.Deployment, tags []*tag.Tag) ([]tag.ImpedanceState, error) {
	if len(tags) == 0 {
		return nil, ErrNoTags
	}
	// The weakest tag at full reflection defines the common target.
	target := math.Inf(1)
	for _, t := range tags {
		p := params.BackscatterRxPower(
			dep.ES.Distance(t.Position()), t.Position().Distance(dep.RX), 1.0)
		if p < target {
			target = p
		}
	}
	states := make([]tag.ImpedanceState, len(tags))
	for i, t := range tags {
		bestState := tag.ImpedanceState(1)
		bestDiff := math.Inf(1)
		bank := tag.DefaultBank()
		ladder, err := bank.Ladder()
		if err != nil {
			return nil, err
		}
		for s, dg := range ladder {
			p := params.BackscatterRxPower(
				dep.ES.Distance(t.Position()), t.Position().Distance(dep.RX), dg)
			if d := math.Abs(p - target); d < bestDiff {
				bestDiff = d
				bestState = tag.ImpedanceState(s + 1)
			}
		}
		if err := t.SetImpedance(bestState); err != nil {
			return nil, err
		}
		states[i] = bestState
	}
	return states, nil
}

// PowerSpread returns the max/min ratio of predicted received powers across
// tags at their current impedance states — the quantity Table II shows must
// stay small (<10% relative difference) for reliable collision decoding.
func PowerSpread(params channel.Params, dep geom.Deployment, tags []*tag.Tag) (float64, error) {
	if len(tags) == 0 {
		return 0, ErrNoTags
	}
	minP, maxP := math.Inf(1), 0.0
	for _, t := range tags {
		dg, err := t.DeltaGamma()
		if err != nil {
			return 0, err
		}
		p := params.BackscatterRxPower(
			dep.ES.Distance(t.Position()), t.Position().Distance(dep.RX), dg)
		if p < minP {
			minP = p
		}
		if p > maxP {
			maxP = p
		}
	}
	if minP == 0 {
		return math.Inf(1), nil
	}
	return maxP / minP, nil
}
