package leaktest

import (
	"strings"
	"testing"
	"time"
)

// The realistic usage: Check at the top, goroutines joined by test end. The
// registered cleanup runs after this body and must stay silent even though
// the goroutine may still be unwinding when it fires.
func TestCheckCleanExit(t *testing.T) {
	Check(t)
	done := make(chan struct{})
	go func() { close(done) }()
	<-done
}

// A goroutine parked forever is reported, with the spawning frame in the
// stack. Exercises the sampler directly so the failure doesn't fail us.
func TestSettleReportsLeak(t *testing.T) {
	before := map[string]bool{}
	for _, g := range live(nil) {
		before[g.id] = true
	}
	block := make(chan struct{})
	go parkForLeak(block)
	// Short grace: the goroutine is parked for good, no need to wait long.
	leaked := settle(100*time.Millisecond, func() []goroutine {
		var l []goroutine
		for _, g := range live(nil) {
			if !before[g.id] {
				l = append(l, g)
			}
		}
		return l
	})
	close(block)
	if len(leaked) != 1 {
		t.Fatalf("got %d leaked goroutines, want 1", len(leaked))
	}
	if !strings.Contains(leaked[0].stack, "parkForLeak") {
		t.Errorf("leak report does not name the parked function:\n%s", leaked[0].stack)
	}
}

func parkForLeak(block chan struct{}) { <-block }

// Ignore patterns exempt matching stacks from the sampler.
func TestIgnorePattern(t *testing.T) {
	block := make(chan struct{})
	defer close(block)
	go parkForIgnore(block)
	deadline := time.Now().Add(time.Second)
	for Count("parkForIgnore") == 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	for _, g := range live([]string{"parkForIgnore"}) {
		if strings.Contains(g.stack, "parkForIgnore") {
			t.Errorf("ignore pattern did not exempt stack:\n%s", g.stack)
		}
	}
}

func parkForIgnore(block chan struct{}) { <-block }

// Count sees a parked goroutine by stack substring and sees it leave.
func TestCount(t *testing.T) {
	block := make(chan struct{})
	go parkForCount(block)
	deadline := time.Now().Add(time.Second)
	for Count("parkForCount") == 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if got := Count("parkForCount"); got != 1 {
		t.Errorf("Count(parkForCount) = %d, want 1", got)
	}
	close(block)
	for Count("parkForCount") != 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if got := Count("parkForCount"); got != 0 {
		t.Errorf("Count(parkForCount) after exit = %d, want 0", got)
	}
}

func parkForCount(block chan struct{}) { <-block }

// The package checks itself: every test above joins its goroutines.
func TestMain(m *testing.M) { Main(m) }
