// Package leaktest is the runtime complement to the golifecycle analyzer: a
// zero-dependency goroutine-leak detector for the long-lived service layers
// (obs, serve/core, serve/batch, cmd/cbmad). The static pass proves every
// goroutine *has* a shutdown path; leaktest proves the Close/drain/cancel
// code actually walks it.
//
// Usage, per test:
//
//	func TestServiceClose(t *testing.T) {
//		leaktest.Check(t)
//		// ... exercise Close/drain/cancel paths ...
//	}
//
// or package-wide, from TestMain:
//
//	func TestMain(m *testing.M) { leaktest.Main(m) }
//
// Check snapshots the live goroutines and registers a cleanup that fails the
// test if goroutines born during the test survive a grace period (goroutines
// legitimately take a moment to unwind after Close returns, so the check
// retries with backoff before declaring a leak). Main runs the package's
// tests and then requires the whole package to have wound down to the
// harness's own goroutines.
//
// The detector reads runtime.Stack directly — no runtime/pprof, no
// goroutine-ID hacks beyond the header parse — and allowlists stacks owned
// by the runtime and the testing package.
package leaktest

import (
	"fmt"
	"os"
	"runtime"
	"strings"
	"testing"
	"time"
)

// DefaultGrace bounds how long a check waits for goroutines to unwind
// before declaring them leaked.
const DefaultGrace = 2 * time.Second

// ignoredStacks match goroutines the harness never charges to the test:
// runtime housekeeping, the testing framework's own machinery, and the
// leaktest snapshot goroutine itself.
var ignoredStacks = []string{
	"testing.Main(",
	"testing.tRunner(",
	"testing.(*T).Run(",
	"testing.(*M).",
	"testing.runTests",
	"testing.runFuzzing",
	"runtime.goexit0",
	"runtime.gcBgMarkWorker",
	"runtime.bgsweep",
	"runtime.bgscavenge",
	"runtime.forcegchelper",
	"runtime.runfinq",
	"runtime.ensureSigM",
	"runtime.ReadTrace",
	"os/signal.signal_recv",
	"os/signal.loop",
	"cbma/internal/leaktest.live(", // the sampling goroutine itself
}

// goroutine is one parsed stack stanza.
type goroutine struct {
	id    string // "goroutine 42" header token, unique for the process lifetime
	stack string
}

// live returns the parsed stacks of every goroutine the harness does not
// ignore.
func live(extraIgnores []string) []goroutine {
	buf := make([]byte, 1<<20)
	for {
		n := runtime.Stack(buf, true)
		if n < len(buf) {
			buf = buf[:n]
			break
		}
		buf = make([]byte, 2*len(buf))
	}
	var out []goroutine
	for _, stanza := range strings.Split(string(buf), "\n\n") {
		stanza = strings.TrimSpace(stanza)
		if stanza == "" || !strings.HasPrefix(stanza, "goroutine ") {
			continue
		}
		if ignored(stanza, extraIgnores) {
			continue
		}
		header, _, _ := strings.Cut(stanza, "\n")
		id := strings.TrimSuffix(header, ":")
		if i := strings.Index(id, " ["); i >= 0 {
			id = id[:i]
		}
		out = append(out, goroutine{id: id, stack: stanza})
	}
	return out
}

func ignored(stack string, extra []string) bool {
	for _, pat := range ignoredStacks {
		if strings.Contains(stack, pat) {
			return true
		}
	}
	for _, pat := range extra {
		if strings.Contains(stack, pat) {
			return true
		}
	}
	return false
}

// Count reports how many live goroutines have substr anywhere in their
// stack — e.g. Count("time.goFunc") counts firing time.AfterFunc callbacks.
func Count(substr string) int {
	n := 0
	for _, g := range live(nil) {
		if strings.Contains(g.stack, substr) {
			n++
		}
	}
	return n
}

// Check snapshots the current goroutines and registers a cleanup failing t
// if goroutines created during the test outlive it (after DefaultGrace of
// retrying). Ignore patterns exempt stacks containing any of the given
// substrings, on top of the built-in runtime/testing allowlist.
func Check(t testing.TB, ignore ...string) {
	t.Helper()
	before := make(map[string]bool)
	for _, g := range live(ignore) {
		before[g.id] = true
	}
	t.Cleanup(func() {
		if t.Failed() {
			return // don't stack leak noise on a test that already failed
		}
		leaked := settle(DefaultGrace, func() []goroutine {
			var l []goroutine
			for _, g := range live(ignore) {
				if !before[g.id] {
					l = append(l, g)
				}
			}
			return l
		})
		for _, g := range leaked {
			t.Errorf("leaked goroutine:\n%s", g.stack)
		}
	})
}

// Main is the TestMain entry point: it runs the package's tests and then
// requires every non-harness goroutine to have exited — the package-wide
// proof that each test's Close/drain paths ran and worked. Ignore patterns
// exempt stacks containing any of the given substrings.
//
//	func TestMain(m *testing.M) { leaktest.Main(m) }
func Main(m *testing.M, ignore ...string) {
	code := m.Run()
	if code == 0 {
		if leaked := settle(DefaultGrace, func() []goroutine { return live(ignore) }); len(leaked) > 0 {
			fmt.Fprintf(os.Stderr, "leaktest: %d goroutine(s) leaked past the package's tests:\n", len(leaked))
			for _, g := range leaked {
				fmt.Fprintf(os.Stderr, "%s\n\n", g.stack)
			}
			code = 1
		}
	}
	os.Exit(code)
}

// settle polls sample until it reports nothing or the grace period runs
// out, backing off between polls: goroutines are entitled to a moment of
// teardown after Close returns, but not to a career.
func settle(grace time.Duration, sample func() []goroutine) []goroutine {
	deadline := time.Now().Add(grace)
	delay := time.Millisecond
	for {
		leaked := sample()
		if len(leaked) == 0 || time.Now().After(deadline) {
			return leaked
		}
		time.Sleep(delay)
		if delay < 100*time.Millisecond {
			delay *= 2
		}
	}
}
