package baseline

import (
	"errors"
	"math"
	"testing"

	"cbma/internal/pn"
	"cbma/internal/sim"
)

func testScenario() sim.Scenario {
	scn := sim.DefaultScenario()
	scn.PayloadBytes = 8
	scn.Packets = 20
	return scn
}

func TestTDMAValidation(t *testing.T) {
	if _, err := TDMA(testScenario(), TDMAConfig{}); !errors.Is(err, ErrBadConfig) {
		t.Fatalf("got %v, want ErrBadConfig", err)
	}
}

func TestTDMADelivers(t *testing.T) {
	scn := testScenario()
	scn.NumTags = 3
	res, err := TDMA(scn, TDMAConfig{Rounds: 5})
	if err != nil {
		t.Fatal(err)
	}
	if res.Scheme != "tdma" {
		t.Errorf("scheme %q", res.Scheme)
	}
	if res.FramesSent != 15 {
		t.Errorf("sent %d, want 15", res.FramesSent)
	}
	// Uncontended slots at 1 m should almost always deliver.
	if res.FER > 0.1 {
		t.Errorf("TDMA FER %v, want near 0 (no collisions)", res.FER)
	}
	if res.GoodputBps <= 0 {
		t.Error("goodput must be positive")
	}
}

func TestCBMABeatsTDMAAtTenTags(t *testing.T) {
	scn := testScenario()
	scn.NumTags = 10
	scn.Family = pn.Family2NC
	scn.Packets = 10
	if testing.Short() {
		scn.Packets = 4
	}
	cb, err := CBMA(scn)
	if err != nil {
		t.Fatal(err)
	}
	td, err := TDMA(scn, TDMAConfig{Rounds: scn.Packets})
	if err != nil {
		t.Fatal(err)
	}
	gain := cb.GoodputBps / td.GoodputBps
	if gain < 5 {
		t.Errorf("CBMA/TDMA goodput gain %.1f×, want ≥5× (paper claims >10×); cbma=%v tdma=%v",
			gain, cb.GoodputBps, td.GoodputBps)
	}
}

func TestFSAEfficiencyCapsNearInverseE(t *testing.T) {
	// With slots == tags, ALOHA throughput peaks at ≈ 1/e per slot.
	const n = 16
	res, err := FSA(n, FSAConfig{FrameSlots: n, Frames: 400, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	perSlot := float64(res.FramesDelivered) / float64(400*n)
	if math.Abs(perSlot-1/math.E) > 0.05 {
		t.Errorf("per-slot success %v, want ≈ 1/e", perSlot)
	}
}

func TestFSAValidation(t *testing.T) {
	if _, err := FSA(0, FSAConfig{FrameSlots: 4, Frames: 1}); !errors.Is(err, ErrBadConfig) {
		t.Fatal("zero tags must fail")
	}
	if _, err := FSA(4, FSAConfig{}); !errors.Is(err, ErrBadConfig) {
		t.Fatal("zero frames/slots must fail")
	}
}

func TestFSASingleTagFERApplies(t *testing.T) {
	res, err := FSA(1, FSAConfig{FrameSlots: 1, Frames: 2000, SingleTagFER: 0.3, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.FER-0.3) > 0.05 {
		t.Errorf("FER %v, want ≈0.3", res.FER)
	}
}

func TestFDMAChannelsParallelize(t *testing.T) {
	one, err := FDMA(8, FDMAConfig{Channels: 1, Frames: 50, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	eight, err := FDMA(8, FDMAConfig{Channels: 8, Frames: 50, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if eight.GoodputBps <= one.GoodputBps {
		t.Errorf("8 channels (%v bps) must beat 1 channel (%v bps)",
			eight.GoodputBps, one.GoodputBps)
	}
	// With 8 channels for 8 tags, goodput should be ≈8× the single channel.
	ratio := eight.GoodputBps / one.GoodputBps
	if ratio < 6 || ratio > 10 {
		t.Errorf("parallelization ratio %v, want ≈8", ratio)
	}
}

func TestFDMAValidation(t *testing.T) {
	if _, err := FDMA(0, FDMAConfig{Channels: 2, Frames: 2}); !errors.Is(err, ErrBadConfig) {
		t.Fatal("zero tags must fail")
	}
}

func TestMeasureSingleTagFER(t *testing.T) {
	scn := testScenario()
	fer, err := MeasureSingleTagFER(scn)
	if err != nil {
		t.Fatal(err)
	}
	if fer < 0 || fer > 0.1 {
		t.Errorf("single-tag FER at 1 m = %v, want near 0", fer)
	}
}

func TestTable1Contents(t *testing.T) {
	rows := Table1()
	if len(rows) != 7 {
		t.Fatalf("%d rows, want 7 (paper Table I)", len(rows))
	}
	byName := map[string]SystemSummary{}
	for _, r := range rows {
		byName[r.Technology] = r
	}
	if byName["Netscatter"].Tags != 256 {
		t.Errorf("Netscatter tags %d, want 256", byName["Netscatter"].Tags)
	}
	if byName["BackFi"].DataRateBps != 5e6 {
		t.Errorf("BackFi rate %v", byName["BackFi"].DataRateBps)
	}
	if byName["PLoRa"].RangeMeters != 1100 {
		t.Errorf("PLoRa range %v", byName["PLoRa"].RangeMeters)
	}
}

func TestCBMARowAndFormat(t *testing.T) {
	row := CBMARow(8e6, 10, 5)
	if row.Tags != 10 || row.DataRateBps != 8e6 {
		t.Errorf("row %+v", row)
	}
	tests := []struct {
		bps  float64
		want string
	}{
		{8e6, "8Mbps"},
		{500e3, "500kbps"},
		{8.7, "8.7bps"},
	}
	for _, tc := range tests {
		if got := FormatRate(tc.bps); got != tc.want {
			t.Errorf("FormatRate(%v) = %q, want %q", tc.bps, got, tc.want)
		}
	}
}
