package baseline

import (
	"fmt"
	"math"
	"math/rand"

	"cbma/internal/sim"
	"cbma/internal/stats"
)

// QAlgoConfig parameterizes the EPC Gen2-style adaptive framed ALOHA
// baseline: the reader adjusts the frame-size exponent Q from the observed
// mix of idle, singleton and collided slots — the industry-standard
// anti-collision MAC CBMA's §I positions itself against (and the concrete
// instance of the "receiver acts as the centralized control node in FSA"
// criticism).
type QAlgoConfig struct {
	// InitialQ is the starting frame exponent (frame size 2^Q). Zero
	// selects 4, the Gen2 default.
	InitialQ int
	// C is the Q-adjustment step (Gen2 recommends 0.1–0.5). Zero selects
	// 0.3.
	C float64
	// Inventories is how many full inventory rounds to run; each round
	// attempts to read every tag once.
	Inventories int
	// SingleTagFER is the failure probability of an uncontended slot.
	SingleTagFER float64
	// SlotSeconds is the duration of a busy slot; idle slots cost a
	// quarter of that (Gen2's short NAK timeout). Zero derives 1.5 ms.
	SlotSeconds float64
	// PayloadBytes sizes goodput accounting. Zero selects 16.
	PayloadBytes int
	// Seed drives the slot lottery.
	Seed int64
	// Rand, when non-nil, supplies the slot lottery directly; otherwise a
	// generator is derived from Seed through sim.DeriveSeed.
	Rand *rand.Rand
}

func (c QAlgoConfig) withDefaults() QAlgoConfig {
	if c.InitialQ == 0 {
		c.InitialQ = 4
	}
	if c.C == 0 {
		c.C = 0.3
	}
	if c.SlotSeconds == 0 {
		c.SlotSeconds = 1.5e-3
	}
	if c.PayloadBytes == 0 {
		c.PayloadBytes = 16
	}
	return c
}

// QAlgo simulates the Gen2 Q algorithm at the packet level: each inventory
// round, unread tags draw uniform slot counters in [0, 2^Q); the reader
// walks the slots, reading singletons, skipping idles quickly, and nudging
// Qfp up on collisions / down on idles. The round ends when every tag has
// been read (or Q stops resolving anything and the round is abandoned).
func QAlgo(n int, cfg QAlgoConfig) (Result, error) {
	if n <= 0 || cfg.Inventories <= 0 {
		return Result{}, fmt.Errorf("%w: tags and inventories must be positive", ErrBadConfig)
	}
	c := cfg.withDefaults()
	rng := c.Rand
	if rng == nil {
		rng = rand.New(rand.NewSource(sim.DeriveSeed(c.Seed, seedQAlgo)))
	}
	var sent, delivered int
	var air float64
	for inv := 0; inv < c.Inventories; inv++ {
		unread := n
		qfp := float64(c.InitialQ)
		// Bound the inventory round so a pathological configuration cannot
		// spin forever: Gen2 readers similarly abandon and re-select.
		for safety := 0; unread > 0 && safety < 64; safety++ {
			q := int(math.Round(qfp))
			if q < 0 {
				q = 0
			}
			if q > 15 {
				q = 15
			}
			frame := 1 << q
			// Occupancy of this frame.
			slots := make([]int, frame)
			for t := 0; t < unread; t++ {
				slots[rng.Intn(frame)]++
			}
			for _, occ := range slots {
				switch {
				case occ == 0:
					air += c.SlotSeconds / 4 // short idle timeout
					qfp = math.Max(0, qfp-c.C)
				case occ == 1:
					air += c.SlotSeconds
					sent++
					if rng.Float64() >= c.SingleTagFER {
						delivered++
						unread--
					}
				default:
					air += c.SlotSeconds
					sent += occ
					qfp = math.Min(15, qfp+c.C)
				}
			}
		}
	}
	return Result{
		Scheme:          "q-algo",
		FramesSent:      sent,
		FramesDelivered: delivered,
		AirtimeSeconds:  air,
		GoodputBps:      stats.RatioOrZero(float64(delivered)*float64(8*c.PayloadBytes), air),
		FER:             1 - stats.RatioOrZero(float64(delivered), float64(sent)),
	}, nil
}
