// Package baseline implements the comparison systems the paper measures
// CBMA against: the single-tag TDMA round-robin that anchors the ">10×
// throughput" headline claim, a framed-slotted-ALOHA MAC (the standard
// backscatter anti-collision scheme the paper's §I criticizes), an FDMA
// model, and the structured contents of Table I (the existing-systems
// summary).
package baseline

import (
	"errors"
	"fmt"
	"math/rand"

	"cbma/internal/sim"
	"cbma/internal/stats"
)

// ErrBadConfig reports invalid baseline parameters.
var ErrBadConfig = errors.New("baseline: invalid configuration")

// Labels for sim.DeriveSeed: the packet-level baselines' slot lotteries.
// Kept clear of internal/sim's sweep labels (1–11), internal/core's
// (201–203) and internal/paperbench's (300s).
const (
	seedFSA   uint64 = 210
	seedFDMA  uint64 = 211
	seedQAlgo uint64 = 212
)

// Result summarizes a baseline MAC run.
type Result struct {
	// Scheme names the MAC ("tdma", "fsa", "fdma", "cbma").
	Scheme string
	// FramesSent / FramesDelivered count link-layer frames.
	FramesSent, FramesDelivered int
	// AirtimeSeconds includes per-slot control overhead.
	AirtimeSeconds float64
	// GoodputBps is delivered payload bits per second across the system.
	GoodputBps float64
	// FER is the frame error rate.
	FER float64
}

// TDMAConfig parameterizes the single-tag round-robin baseline.
type TDMAConfig struct {
	// Rounds is the number of full polling cycles (every tag gets one slot
	// per cycle).
	Rounds int
	// SlotOverheadSec models the polling/guard overhead the reader spends
	// per slot; real RFID-style MACs pay a query/ack exchange. Zero
	// selects 200 µs.
	SlotOverheadSec float64
}

// TDMA runs the single-tag baseline: the same deployment and radio as the
// CBMA scenario, but tags transmit strictly one at a time. Because only one
// tag occupies the channel, there is no multi-access interference — but the
// channel is idle for every other tag, which is exactly the capacity the
// paper's concurrent transmissions reclaim.
func TDMA(scn sim.Scenario, cfg TDMAConfig) (Result, error) {
	if cfg.Rounds <= 0 {
		return Result{}, fmt.Errorf("%w: rounds must be positive", ErrBadConfig)
	}
	if cfg.SlotOverheadSec == 0 {
		cfg.SlotOverheadSec = 200e-6
	}
	scn.Packets = 1 // scheduling is explicit below
	e, err := sim.NewEngine(scn)
	if err != nil {
		return Result{}, err
	}
	var schedule [][]int
	for r := 0; r < cfg.Rounds; r++ {
		for id := 0; id < scn.NumTags; id++ {
			schedule = append(schedule, []int{id})
		}
	}
	m, err := e.RunSchedule(schedule)
	if err != nil {
		return Result{}, err
	}
	slots := float64(len(schedule))
	air := m.AirtimeSeconds + slots*cfg.SlotOverheadSec
	return Result{
		Scheme:          "tdma",
		FramesSent:      m.FramesSent,
		FramesDelivered: m.FramesDelivered,
		AirtimeSeconds:  air,
		GoodputBps:      stats.RatioOrZero(float64(m.FramesDelivered)*float64(8*scn.PayloadBytes), air),
		FER:             m.FER,
	}, nil
}

// CBMA runs the concurrent system under the same accounting as the
// baselines, so results are directly comparable.
func CBMA(scn sim.Scenario) (Result, error) {
	e, err := sim.NewEngine(scn)
	if err != nil {
		return Result{}, err
	}
	m, err := e.Run()
	if err != nil {
		return Result{}, err
	}
	return Result{
		Scheme:          "cbma",
		FramesSent:      m.FramesSent,
		FramesDelivered: m.FramesDelivered,
		AirtimeSeconds:  m.AirtimeSeconds,
		GoodputBps:      m.GoodputBps,
		FER:             m.FER,
	}, nil
}

// FSAConfig parameterizes the framed-slotted-ALOHA baseline.
type FSAConfig struct {
	// FrameSlots is the number of slots per ALOHA frame (the reader
	// broadcasts this; §I notes that need for central coordination).
	FrameSlots int
	// Frames is how many ALOHA frames to simulate.
	Frames int
	// SingleTagFER is the delivery failure probability of an uncontended
	// slot; calibrate it from a single-tag waveform run. Zero means ideal
	// slots.
	SingleTagFER float64
	// SlotSeconds is the slot duration (frame airtime + guard). Zero
	// derives 1.5 ms.
	SlotSeconds float64
	// PayloadBytes sizes the goodput accounting. Zero selects 16.
	PayloadBytes int
	// Seed drives the slot lottery.
	Seed int64
	// Rand, when non-nil, supplies the slot lottery directly (e.g. a
	// stream derived by the enclosing experiment); otherwise a generator is
	// derived from Seed through sim.DeriveSeed.
	Rand *rand.Rand
}

// FSA simulates framed slotted ALOHA at the packet level: each of n tags
// picks a uniform slot per frame; slots with exactly one occupant succeed
// with probability 1−SingleTagFER, contended slots are lost (no capture).
// Backscatter tags cannot carrier-sense (§II-B), which is why ALOHA — not
// CSMA — is the incumbent, and why its efficiency caps near 1/e.
func FSA(n int, cfg FSAConfig) (Result, error) {
	if n <= 0 || cfg.Frames <= 0 || cfg.FrameSlots <= 0 {
		return Result{}, fmt.Errorf("%w: tags, frames and slots must be positive", ErrBadConfig)
	}
	if cfg.SlotSeconds == 0 {
		cfg.SlotSeconds = 1.5e-3
	}
	if cfg.PayloadBytes == 0 {
		cfg.PayloadBytes = 16
	}
	rng := cfg.Rand
	if rng == nil {
		rng = rand.New(rand.NewSource(sim.DeriveSeed(cfg.Seed, seedFSA)))
	}
	var sent, delivered int
	for f := 0; f < cfg.Frames; f++ {
		occupancy := make([]int, cfg.FrameSlots)
		for t := 0; t < n; t++ {
			occupancy[rng.Intn(cfg.FrameSlots)]++
			sent++
		}
		for _, occ := range occupancy {
			if occ == 1 && rng.Float64() >= cfg.SingleTagFER {
				delivered++
			}
		}
	}
	air := float64(cfg.Frames*cfg.FrameSlots) * cfg.SlotSeconds
	return Result{
		Scheme:          "fsa",
		FramesSent:      sent,
		FramesDelivered: delivered,
		AirtimeSeconds:  air,
		GoodputBps:      stats.RatioOrZero(float64(delivered)*float64(8*cfg.PayloadBytes), air),
		FER:             1 - stats.RatioOrZero(float64(delivered), float64(sent)),
	}, nil
}

// FDMAConfig parameterizes the FDMA baseline.
type FDMAConfig struct {
	// Channels is how many orthogonal frequency channels the band divides
	// into; each costs the tag an agile synthesizer (§I: "the cost of the
	// tag is increased").
	Channels int
	// Frames is the number of frames each tag sends.
	Frames int
	// SingleTagFER is the per-channel delivery failure probability.
	SingleTagFER float64
	// FrameSeconds is one frame's airtime per channel. Zero derives 1.3 ms.
	FrameSeconds float64
	// PayloadBytes sizes the goodput accounting. Zero selects 16.
	PayloadBytes int
	// Seed drives channel assignment collisions when tags outnumber
	// channels.
	Seed int64
	// Rand, when non-nil, supplies the slot lottery directly; otherwise a
	// generator is derived from Seed through sim.DeriveSeed.
	Rand *rand.Rand
}

// FDMA models frequency-division access at the packet level: tags are
// assigned channels round-robin; when tags outnumber channels, a channel's
// occupants time-share it. The whole band is consumed regardless of tag
// count — the fixed-spectrum cost §I criticizes.
func FDMA(n int, cfg FDMAConfig) (Result, error) {
	if n <= 0 || cfg.Frames <= 0 || cfg.Channels <= 0 {
		return Result{}, fmt.Errorf("%w: tags, frames and channels must be positive", ErrBadConfig)
	}
	if cfg.FrameSeconds == 0 {
		cfg.FrameSeconds = 1.3e-3
	}
	if cfg.PayloadBytes == 0 {
		cfg.PayloadBytes = 16
	}
	rng := cfg.Rand
	if rng == nil {
		rng = rand.New(rand.NewSource(sim.DeriveSeed(cfg.Seed, seedFDMA)))
	}
	// Tags per channel (round-robin assignment).
	perChannel := make([]int, cfg.Channels)
	for t := 0; t < n; t++ {
		perChannel[t%cfg.Channels]++
	}
	var sent, delivered int
	var air float64
	for _, occ := range perChannel {
		if occ == 0 {
			continue
		}
		// occupants time-share the channel: occ × Frames slots.
		slots := occ * cfg.Frames
		sent += slots
		for s := 0; s < slots; s++ {
			if rng.Float64() >= cfg.SingleTagFER {
				delivered++
			}
		}
	}
	// Channels run in parallel: airtime is the busiest channel's schedule.
	maxOcc := 0
	for _, occ := range perChannel {
		if occ > maxOcc {
			maxOcc = occ
		}
	}
	air = float64(maxOcc*cfg.Frames) * cfg.FrameSeconds
	return Result{
		Scheme:          "fdma",
		FramesSent:      sent,
		FramesDelivered: delivered,
		AirtimeSeconds:  air,
		GoodputBps:      stats.RatioOrZero(float64(delivered)*float64(8*cfg.PayloadBytes), air),
		FER:             1 - stats.RatioOrZero(float64(delivered), float64(sent)),
	}, nil
}

// MeasureSingleTagFER calibrates the packet-level baselines' uncontended
// slot failure probability from a one-tag waveform run of the given
// scenario.
func MeasureSingleTagFER(scn sim.Scenario) (float64, error) {
	scn.NumTags = 1
	scn.Deployment.Tags = nil
	e, err := sim.NewEngine(scn)
	if err != nil {
		return 0, err
	}
	m, err := e.Run()
	if err != nil {
		return 0, err
	}
	return m.FER, nil
}
