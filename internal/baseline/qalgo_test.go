package baseline

import (
	"errors"
	"testing"
)

func TestQAlgoValidation(t *testing.T) {
	if _, err := QAlgo(0, QAlgoConfig{Inventories: 1}); !errors.Is(err, ErrBadConfig) {
		t.Fatal("zero tags must fail")
	}
	if _, err := QAlgo(4, QAlgoConfig{}); !errors.Is(err, ErrBadConfig) {
		t.Fatal("zero inventories must fail")
	}
}

func TestQAlgoReadsEveryTag(t *testing.T) {
	const tags = 50
	res, err := QAlgo(tags, QAlgoConfig{Inventories: 4, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.FramesDelivered != 4*tags {
		t.Errorf("delivered %d, want %d (every tag read each inventory)",
			res.FramesDelivered, 4*tags)
	}
	if res.GoodputBps <= 0 {
		t.Error("goodput must be positive")
	}
}

func TestQAlgoAdaptationBeatsFixedSmallFrame(t *testing.T) {
	// 100 tags crammed into a fixed 16-slot FSA frame collide constantly;
	// the Q algorithm grows its frame and finishes with far less airtime
	// per read.
	const tags = 100
	qres, err := QAlgo(tags, QAlgoConfig{Inventories: 2, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	fres, err := FSA(tags, FSAConfig{FrameSlots: 16, Frames: 200, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	qPerRead := qres.AirtimeSeconds / float64(qres.FramesDelivered)
	fPerRead := fres.AirtimeSeconds / float64(fres.FramesDelivered)
	if qPerRead >= fPerRead {
		t.Errorf("Q algorithm airtime/read %v should beat fixed FSA %v", qPerRead, fPerRead)
	}
}

func TestQAlgoSingleTagFERReducesDelivery(t *testing.T) {
	clean, err := QAlgo(20, QAlgoConfig{Inventories: 2, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	lossy, err := QAlgo(20, QAlgoConfig{Inventories: 2, Seed: 3, SingleTagFER: 0.3})
	if err != nil {
		t.Fatal(err)
	}
	if lossy.FER <= clean.FER {
		t.Errorf("lossy slots must raise FER: %v vs %v", lossy.FER, clean.FER)
	}
	// Retries still eventually read everyone.
	if lossy.FramesDelivered != clean.FramesDelivered {
		t.Errorf("retries should still read all tags: %d vs %d",
			lossy.FramesDelivered, clean.FramesDelivered)
	}
}

func TestQAlgoSafetyBound(t *testing.T) {
	// SingleTagFER = 1 means no read ever succeeds; the safety bound must
	// abandon the inventory instead of spinning forever.
	res, err := QAlgo(5, QAlgoConfig{Inventories: 1, Seed: 4, SingleTagFER: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.FramesDelivered != 0 {
		t.Errorf("delivered %d with FER 1", res.FramesDelivered)
	}
}
