package baseline

import "fmt"

// SystemSummary is one row of the paper's Table I: the landscape of
// existing backscatter systems CBMA is positioned against.
type SystemSummary struct {
	Technology string
	// DataRateBps is the reported per-link data rate.
	DataRateBps float64
	// Tags is the demonstrated concurrent/supported tag count.
	Tags int
	// RangeMeters is the demonstrated communication distance.
	RangeMeters float64
}

// Table1 returns the literature rows of Table I verbatim (these are
// reported numbers from the cited systems, not measurements this simulator
// can regenerate) plus helpers to append the locally measured CBMA row.
func Table1() []SystemSummary {
	return []SystemSummary{
		{Technology: "Ambient Backscatter", DataRateBps: 1e3, Tags: 2, RangeMeters: 1},
		{Technology: "Wi-Fi Backscatter", DataRateBps: 1e3, Tags: 1, RangeMeters: 0.65},
		{Technology: "BackFi", DataRateBps: 5e6, Tags: 1, RangeMeters: 1},
		{Technology: "FM Backscatter", DataRateBps: 3.2e3, Tags: 1, RangeMeters: 18},
		{Technology: "LoRa Backscatter", DataRateBps: 8.7, Tags: 2, RangeMeters: 475},
		{Technology: "PLoRa", DataRateBps: 6.25e3, Tags: 1, RangeMeters: 1100},
		{Technology: "Netscatter", DataRateBps: 500e3, Tags: 256, RangeMeters: 2},
	}
}

// CBMARow builds the CBMA row of Table I from a measured aggregate rate.
func CBMARow(aggregateBps float64, tags int, rangeMeters float64) SystemSummary {
	return SystemSummary{
		Technology:  "CBMA (this work)",
		DataRateBps: aggregateBps,
		Tags:        tags,
		RangeMeters: rangeMeters,
	}
}

// FormatRate renders a data rate the way the paper's table does.
func FormatRate(bps float64) string {
	switch {
	case bps >= 1e6:
		return fmt.Sprintf("%.3gMbps", bps/1e6)
	case bps >= 1e3:
		return fmt.Sprintf("%.3gkbps", bps/1e3)
	default:
		return fmt.Sprintf("%.3gbps", bps)
	}
}
