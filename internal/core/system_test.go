package core

import (
	"errors"
	"reflect"
	"testing"

	"cbma/internal/geom"
	"cbma/internal/sim"
)

func testScenario() sim.Scenario {
	scn := sim.DefaultScenario()
	scn.PayloadBytes = 8
	scn.Packets = 20
	return scn
}

func TestNewValidation(t *testing.T) {
	cfg := Config{Scenario: testScenario(), SelectionRounds: -1}
	if _, err := New(cfg); !errors.Is(err, ErrBadConfig) {
		t.Fatalf("got %v, want ErrBadConfig", err)
	}
	bad := testScenario()
	bad.NumTags = 0
	if _, err := New(Config{Scenario: bad}); err == nil {
		t.Fatal("invalid scenario must fail")
	}
}

func TestRunWithoutSelection(t *testing.T) {
	sys, err := New(Config{Scenario: testScenario()})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := sys.Run()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(rep.Initial, rep.Final) {
		t.Error("without node selection, Initial and Final must match")
	}
	if rep.Replacements != 0 || rep.SelectionRounds != 0 {
		t.Errorf("unexpected selection activity: %+v", rep)
	}
	if len(rep.FinalPositions) != 2 {
		t.Errorf("positions %v", rep.FinalPositions)
	}
}

func TestRunWithSelectionMovesBadTags(t *testing.T) {
	scn := testScenario()
	scn.NumTags = 2
	// Put one tag in a hopeless corner so its ACK ratio stays bad.
	scn.Deployment = geom.NewDeployment(0.5)
	scn.Deployment.Tags = []geom.Point{{X: 0, Y: 0.5}, {X: -2.9, Y: 1.9}}
	scn.Packets = 30
	if testing.Short() {
		scn.Packets = 10
	}
	sys, err := New(Config{Scenario: scn, NodeSelection: true, CandidatePositions: 40})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := sys.Run()
	if err != nil {
		t.Fatal(err)
	}
	if rep.Replacements == 0 {
		t.Fatal("the corner tag should have been replaced")
	}
	if rep.Final.FER > rep.Initial.FER {
		t.Errorf("selection made things worse: initial %v, final %v",
			rep.Initial.FER, rep.Final.FER)
	}
	moved := rep.FinalPositions[1]
	if moved == (geom.Point{X: -2.9, Y: 1.9}) {
		t.Error("bad tag position unchanged")
	}
}

// TestNodeSelectionKeepsConfiguredPositions places tags explicitly with a
// zero room and enables node selection: New used to rebuild the deployment
// from scratch in that case, discarding the configured layout.
func TestNodeSelectionKeepsConfiguredPositions(t *testing.T) {
	positions := []geom.Point{{X: 1.1, Y: 0.4}, {X: 1.6, Y: -0.3}}
	scn := testScenario()
	scn.NumTags = len(positions)
	scn.Deployment = geom.Deployment{Tags: positions} // room left zero
	sys, err := New(Config{Scenario: scn, NodeSelection: true, CandidatePositions: 5})
	if err != nil {
		t.Fatal(err)
	}
	dep := sys.Engine().Scenario().Deployment
	if dep.Room.Width == 0 {
		t.Error("room must be defaulted")
	}
	for i, p := range positions {
		if dep.Tags[i] != p {
			t.Errorf("tag %d moved to %+v during setup, want %+v", i, dep.Tags[i], p)
		}
		if got := sys.Engine().Tags()[i].Position(); got != p {
			t.Errorf("tag %d object placed at %+v, want %+v", i, got, p)
		}
	}
}

func TestRunSelectionStopsWhenAllGood(t *testing.T) {
	scn := testScenario() // easy 1 m line placement: everyone is good
	sys, err := New(Config{Scenario: scn, NodeSelection: true})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := sys.Run()
	if err != nil {
		t.Fatal(err)
	}
	if rep.Replacements != 0 {
		t.Errorf("no tag should be replaced in the easy case: %+v", rep)
	}
}

func TestDeploymentStudyShapes(t *testing.T) {
	scn := testScenario()
	scn.NumTags = 3
	scn.Packets = 16
	groups := 4
	if testing.Short() {
		groups = 2
	}
	none, pc, pcns, err := DeploymentStudy(scn, groups)
	if err != nil {
		t.Fatal(err)
	}
	if len(none) != groups || len(pc) != groups || len(pcns) != groups {
		t.Fatalf("sample counts %d/%d/%d", len(none), len(pc), len(pcns))
	}
	for i := range none {
		for _, v := range []float64{none[i], pc[i], pcns[i]} {
			if v < 0 || v > 1 {
				t.Errorf("group %d FER %v out of range", i, v)
			}
		}
	}
}

func TestDeploymentStudyValidation(t *testing.T) {
	if _, _, _, err := DeploymentStudy(testScenario(), 0); !errors.Is(err, ErrBadConfig) {
		t.Fatalf("got %v, want ErrBadConfig", err)
	}
}

func TestEngineAccessor(t *testing.T) {
	sys, err := New(Config{Scenario: testScenario()})
	if err != nil {
		t.Fatal(err)
	}
	if sys.Engine() == nil {
		t.Fatal("engine accessor returned nil")
	}
	if len(sys.Engine().Tags()) != 2 {
		t.Errorf("tag count %d", len(sys.Engine().Tags()))
	}
}
