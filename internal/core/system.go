// Package core assembles the full closed-loop CBMA system of §V: the
// waveform engine (tags, channel, receiver), the ACK-driven Algorithm 1
// power-control loop, and the §V-C node-selection scheme that re-places
// "bad" tags using the theoretical signal-strength field. This is the
// paper's primary contribution wired together; the public cbma package
// re-exports it.
package core

import (
	"context"
	"errors"
	"fmt"
	"math/rand"

	"cbma/internal/geom"
	"cbma/internal/mac"
	"cbma/internal/sim"
)

// ErrBadConfig reports invalid system configuration.
var ErrBadConfig = errors.New("core: invalid configuration")

// Labels for sim.DeriveSeed: the deployment study's placement stream and
// per-group scenario seeds. Kept clear of internal/sim's sweep labels
// (1–11) and internal/paperbench's (300s).
const (
	seedDeploymentPlacement uint64 = 201
	seedDeploymentGroup     uint64 = 202
	seedNodeSelection       uint64 = 203
)

// Config describes a CBMA deployment run.
type Config struct {
	// Scenario is the radio/deployment/workload description. Its
	// PowerControl flag selects whether Algorithm 1 runs.
	Scenario sim.Scenario
	// NodeSelection enables the §V-C replacement of tags whose ACK ratio
	// stays below the cutoff after power control.
	NodeSelection bool
	// SelectionRounds bounds the replace-and-remeasure iterations. Zero
	// selects 3.
	SelectionRounds int
	// CandidatePositions sizes the pool of idle-tag positions node
	// selection may draw from. Zero selects 3 × NumTags.
	CandidatePositions int
	// NodeSelect tunes the selector (cutoffs, annealing, greedy mode).
	NodeSelect mac.NodeSelectConfig
}

// Report is the outcome of a System run.
type Report struct {
	// Initial is measured before any node selection; Final after the last
	// selection round (they are equal when node selection is off or never
	// triggers).
	Initial, Final sim.Metrics
	// Replacements counts accepted tag re-placements.
	Replacements int
	// SelectionRounds counts executed replace-and-remeasure iterations.
	SelectionRounds int
	// FinalPositions records where the tags ended up.
	FinalPositions []geom.Point
}

// System is a runnable CBMA deployment.
type System struct {
	cfg        Config
	engine     *sim.Engine
	selector   *mac.NodeSelector
	candidates []geom.Point
	rng        *rand.Rand
}

// New validates the configuration and builds the system.
func New(cfg Config) (*System, error) {
	if cfg.SelectionRounds == 0 {
		cfg.SelectionRounds = 3
	}
	if cfg.SelectionRounds < 0 {
		return nil, fmt.Errorf("%w: negative selection rounds", ErrBadConfig)
	}
	if cfg.CandidatePositions == 0 {
		cfg.CandidatePositions = 3 * cfg.Scenario.NumTags
	}
	e, err := sim.NewEngine(cfg.Scenario)
	if err != nil {
		return nil, err
	}
	s := &System{
		cfg:    cfg,
		engine: e,
		rng:    rand.New(rand.NewSource(sim.DeriveSeed(cfg.Scenario.Seed, seedNodeSelection))),
	}
	if cfg.NodeSelection {
		// The engine's validated scenario carries the defaulted deployment
		// with caller-provided tag positions intact; re-deriving it from the
		// raw config here used to replace a configured layout with the stock
		// two-node geometry whenever the room was left zero.
		dep := e.Scenario().Deployment
		if cfg.NodeSelect.Obs == nil {
			// Node selection shares the scenario's observer by default, so a
			// single Scenario.Obs instruments the whole closed loop.
			cfg.NodeSelect.Obs = cfg.Scenario.Obs
		}
		s.selector = mac.NewNodeSelector(cfg.NodeSelect, e.Scenario().Channel, dep, s.rng)
		// Draw the idle-tag candidate pool once; §V-C replaces bad tags
		// with idle tags already present in the environment.
		for i := 0; i < cfg.CandidatePositions; i++ {
			s.candidates = append(s.candidates, dep.Room.RandomPoint(s.rng))
		}
	}
	return s, nil
}

// Engine exposes the underlying engine (tests and the CLI read tag state).
func (s *System) Engine() *sim.Engine { return s.engine }

// Run executes the deployment: measure (with power control if configured),
// then — when node selection is enabled — repeatedly replace
// under-performing tags and re-measure.
func (s *System) Run() (Report, error) {
	return s.RunContext(context.Background()) //cbma:allow ctxflow public convenience entrypoint roots its own context
}

// RunContext is Run with cooperative cancellation. When ctx fires, the
// report built so far is returned together with the context's error: the
// measurement in flight contributes its partial, Interrupted metrics (see
// sim.Engine.RunContext), and no further selection rounds start.
func (s *System) RunContext(ctx context.Context) (Report, error) {
	var rep Report
	m, err := s.engine.RunContext(ctx)
	if err != nil {
		rep.Initial = m
		rep.Final = m
		rep.FinalPositions = s.positions()
		return rep, err
	}
	rep.Initial = m
	rep.Final = m
	if s.selector == nil {
		rep.FinalPositions = s.positions()
		return rep, nil
	}
	for round := 0; round < s.cfg.SelectionRounds; round++ {
		if err := ctx.Err(); err != nil {
			rep.FinalPositions = s.positions()
			return rep, err
		}
		moved, err := s.selectOnce(rep.Final)
		if err != nil {
			return rep, err
		}
		if moved == 0 {
			break
		}
		rep.Replacements += moved
		rep.SelectionRounds++
		m, err := s.engine.RunWithPositionsContext(ctx, s.positions())
		if err != nil {
			rep.FinalPositions = s.positions()
			return rep, err
		}
		rep.Final = m
	}
	rep.FinalPositions = s.positions()
	return rep, nil
}

// selectOnce proposes a replacement for every bad tag — judged by the
// per-tag delivery ratio of the last measurement, since the power-control
// rounds reset the tags' own ACK windows — returning how many moves were
// accepted.
func (s *System) selectOnce(last sim.Metrics) (int, error) {
	tags := s.engine.Tags()
	active := s.positions()
	moved := 0
	for i, tg := range tags {
		if !s.selector.IsBadRatio(last.TagDeliveryRatio(tg.ID())) {
			continue
		}
		others := make([]geom.Point, 0, len(active)-1)
		for j, p := range active {
			if j != i {
				others = append(others, p)
			}
		}
		pos, accepted, err := s.selector.Replace(tg.Position(), s.candidates, others)
		if err != nil {
			if errors.Is(err, mac.ErrNoCandidates) {
				continue // pool exhausted near this tag; keep it
			}
			return moved, err
		}
		if accepted {
			tg.MoveTo(pos)
			active[i] = pos
			moved++
		}
	}
	return moved, nil
}

// positions snapshots the current tag positions.
func (s *System) positions() []geom.Point {
	tags := s.engine.Tags()
	out := make([]geom.Point, len(tags))
	for i, tg := range tags {
		out[i] = tg.Position()
	}
	return out
}

// DeploymentStudy runs the Fig. 10 experiment: `groups` random placements,
// each measured under three configurations — no control, power control, and
// power control plus node selection — returning the per-group FER samples
// for CDF plotting.
func DeploymentStudy(base sim.Scenario, groups int) (none, pc, pcns []float64, err error) {
	if groups <= 0 {
		return nil, nil, nil, fmt.Errorf("%w: groups must be positive", ErrBadConfig)
	}
	rng := rand.New(rand.NewSource(sim.DeriveSeed(base.Seed, seedDeploymentPlacement)))
	minSep := geom.Wavelength(2e9) / 2
	// Deterministic placement draws up front, then independent groups run
	// in parallel (see sim.RunParallel).
	scns := make([]sim.Scenario, groups)
	for g := 0; g < groups; g++ {
		scn := base
		scn.Deployment = geom.NewDeployment(0.5)
		// Table-sized placement region; see sim.randomPlacementScenario.
		scn.Deployment.Room = geom.Room{Width: 2.4, Height: 1.6}
		if err := scn.Deployment.PlaceTagsRandom(rng, scn.NumTags, minSep); err != nil {
			return nil, nil, nil, err
		}
		scn.Seed = sim.DeriveSeed(base.Seed, seedDeploymentGroup, uint64(g))
		scn.RandomInitialImpedance = true
		scns[g] = scn
	}
	none = make([]float64, groups)
	pc = make([]float64, groups)
	pcns = make([]float64, groups)
	runOne := func(scn sim.Scenario, nodeSelection bool) (float64, error) {
		sys, err := New(Config{Scenario: scn, NodeSelection: nodeSelection})
		if err != nil {
			return 0, err
		}
		rep, err := sys.Run()
		if err != nil {
			return 0, err
		}
		return rep.Final.FER, nil
	}
	err = sim.RunParallel(groups, func(g int) error {
		scn := scns[g]
		scn.PowerControl = false
		v, err := runOne(scn, false)
		if err != nil {
			return err
		}
		none[g] = v
		scn.PowerControl = true
		if v, err = runOne(scn, false); err != nil {
			return err
		}
		pc[g] = v
		if v, err = runOne(scn, true); err != nil {
			return err
		}
		pcns[g] = v
		return nil
	})
	if err != nil {
		return nil, nil, nil, err
	}
	return none, pc, pcns, nil
}
