// Package trace implements the paper's §VIII-C trace-driven emulation
// methodology: "even in our emulation tests, we still utilize the real
// trace data delivered by the real field deployment tests, and incorporate
// the real imperfectness, e.g., the timing error, in our emulation tests."
//
// A Trace records, per collision round and per tag, the realized channel
// coefficient and clock offset of a live run. Replaying a trace feeds those
// exact imperfections back into the engine, so experiments become
// deterministic and repeatable across receiver variants — decode the same
// collisions with a different detector, threshold or code family and
// compare like with like. Traces serialize to line-delimited JSON.
package trace

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"io"
)

// Errors returned by the trace reader/player.
var (
	ErrExhausted = errors.New("trace: no more rounds recorded")
	ErrTagCount  = errors.New("trace: recorded tag count does not match")
)

// TagSample is the realized channel and timing of one tag in one round.
type TagSample struct {
	// TagID is the tag's code index.
	TagID int `json:"tag"`
	// GainRe and GainIm are the realized complex channel gain (link budget
	// × fading × shadowing) applied to the tag's unit waveform.
	GainRe float64 `json:"gain_re"`
	GainIm float64 `json:"gain_im"`
	// DelayChips is the tag's realized clock offset in chips relative to
	// the nominal frame start — the "real timing error" the paper's
	// emulation keeps.
	DelayChips float64 `json:"delay_chips"`
	// Impedance is the tag's impedance state during the round.
	Impedance int `json:"z"`
}

// Round is one recorded collision.
type Round struct {
	// Seq numbers rounds from zero.
	Seq int `json:"seq"`
	// Tags holds one sample per transmitting tag.
	Tags []TagSample `json:"tags"`
}

// Trace is an in-memory recording.
type Trace struct {
	// Meta describes the recording scenario (free-form, for humans).
	Meta string `json:"meta,omitempty"`
	// Rounds in capture order.
	Rounds []Round `json:"-"`
}

// Recorder accumulates rounds during a live run.
type Recorder struct {
	trace Trace
}

// NewRecorder returns an empty recorder with the given metadata string.
func NewRecorder(meta string) *Recorder {
	return &Recorder{trace: Trace{Meta: meta}}
}

// Record appends one round.
func (r *Recorder) Record(tags []TagSample) {
	round := Round{Seq: len(r.trace.Rounds), Tags: append([]TagSample(nil), tags...)}
	r.trace.Rounds = append(r.trace.Rounds, round)
}

// Trace returns the recording so far (shared slices; callers must not
// mutate).
func (r *Recorder) Trace() *Trace { return &r.trace }

// Len reports the number of recorded rounds.
func (r *Recorder) Len() int { return len(r.trace.Rounds) }

// header is the first JSON line of a serialized trace.
type header struct {
	Format string `json:"format"`
	Meta   string `json:"meta,omitempty"`
	Rounds int    `json:"rounds"`
}

const formatID = "cbma-trace/1"

// Write serializes the trace as line-delimited JSON: one header line, then
// one line per round.
func (t *Trace) Write(w io.Writer) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	if err := enc.Encode(header{Format: formatID, Meta: t.Meta, Rounds: len(t.Rounds)}); err != nil {
		return fmt.Errorf("trace: writing header: %w", err)
	}
	for i := range t.Rounds {
		if err := enc.Encode(&t.Rounds[i]); err != nil {
			return fmt.Errorf("trace: writing round %d: %w", i, err)
		}
	}
	return bw.Flush()
}

// Read parses a trace previously produced by Write.
func Read(r io.Reader) (*Trace, error) {
	dec := json.NewDecoder(bufio.NewReader(r))
	var h header
	if err := dec.Decode(&h); err != nil {
		return nil, fmt.Errorf("trace: reading header: %w", err)
	}
	if h.Format != formatID {
		return nil, fmt.Errorf("trace: unsupported format %q", h.Format)
	}
	t := &Trace{Meta: h.Meta}
	for i := 0; i < h.Rounds; i++ {
		var round Round
		if err := dec.Decode(&round); err != nil {
			return nil, fmt.Errorf("trace: reading round %d: %w", i, err)
		}
		t.Rounds = append(t.Rounds, round)
	}
	return t, nil
}

// Player replays a trace round by round.
type Player struct {
	trace *Trace
	next  int
}

// NewPlayer wraps a trace for replay.
func NewPlayer(t *Trace) *Player { return &Player{trace: t} }

// Remaining reports how many rounds are left.
func (p *Player) Remaining() int { return len(p.trace.Rounds) - p.next }

// Next returns the next recorded round. It returns ErrExhausted past the
// end.
func (p *Player) Next() (Round, error) {
	if p.next >= len(p.trace.Rounds) {
		return Round{}, ErrExhausted
	}
	r := p.trace.Rounds[p.next]
	p.next++
	return r, nil
}

// Rewind restarts replay from the first round.
func (p *Player) Rewind() { p.next = 0 }

// Sample returns the sample for tagID within a round, if present.
func (r Round) Sample(tagID int) (TagSample, bool) {
	for _, s := range r.Tags {
		if s.TagID == tagID {
			return s, true
		}
	}
	return TagSample{}, false
}
