package trace

import (
	"bytes"
	"errors"
	"math/rand"
	"reflect"
	"strings"
	"testing"
	"testing/quick"
)

func sampleTrace() *Trace {
	rec := NewRecorder("unit test")
	rec.Record([]TagSample{
		{TagID: 0, GainRe: 1e-5, GainIm: -2e-5, DelayChips: 0.1, Impedance: 4},
		{TagID: 1, GainRe: 3e-5, GainIm: 0, DelayChips: -0.05, Impedance: 2},
	})
	rec.Record([]TagSample{
		{TagID: 0, GainRe: 9e-6, GainIm: 1e-6, DelayChips: 0, Impedance: 4},
	})
	return rec.Trace()
}

func TestRecorderAccumulates(t *testing.T) {
	rec := NewRecorder("m")
	if rec.Len() != 0 {
		t.Fatal("fresh recorder must be empty")
	}
	rec.Record([]TagSample{{TagID: 3}})
	rec.Record(nil)
	if rec.Len() != 2 {
		t.Fatalf("len %d", rec.Len())
	}
	tr := rec.Trace()
	if tr.Rounds[0].Seq != 0 || tr.Rounds[1].Seq != 1 {
		t.Errorf("sequence numbers wrong: %+v", tr.Rounds)
	}
	if tr.Meta != "m" {
		t.Errorf("meta %q", tr.Meta)
	}
}

func TestRecordCopiesInput(t *testing.T) {
	rec := NewRecorder("")
	in := []TagSample{{TagID: 7}}
	rec.Record(in)
	in[0].TagID = 99
	if rec.Trace().Rounds[0].Tags[0].TagID != 7 {
		t.Error("Record must copy its input")
	}
}

func TestWriteReadRoundTrip(t *testing.T) {
	tr := sampleTrace()
	var buf bytes.Buffer
	if err := tr.Write(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Meta != tr.Meta {
		t.Errorf("meta %q", back.Meta)
	}
	if !reflect.DeepEqual(back.Rounds, tr.Rounds) {
		t.Errorf("rounds differ:\n%+v\n%+v", back.Rounds, tr.Rounds)
	}
}

func TestWriteReadRoundTripProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		rec := NewRecorder("prop")
		rounds := rng.Intn(20)
		for i := 0; i < rounds; i++ {
			n := rng.Intn(5)
			samples := make([]TagSample, n)
			for j := range samples {
				samples[j] = TagSample{
					TagID:      j,
					GainRe:     rng.NormFloat64(),
					GainIm:     rng.NormFloat64(),
					DelayChips: rng.NormFloat64(),
					Impedance:  1 + rng.Intn(4),
				}
			}
			rec.Record(samples)
		}
		var buf bytes.Buffer
		if err := rec.Trace().Write(&buf); err != nil {
			return false
		}
		back, err := Read(&buf)
		if err != nil {
			return false
		}
		return reflect.DeepEqual(back.Rounds, rec.Trace().Rounds) ||
			(len(back.Rounds) == 0 && rec.Len() == 0)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestReadRejectsBadFormat(t *testing.T) {
	if _, err := Read(strings.NewReader(`{"format":"other/9","rounds":0}` + "\n")); err == nil {
		t.Fatal("wrong format must fail")
	}
	if _, err := Read(strings.NewReader("not json")); err == nil {
		t.Fatal("garbage must fail")
	}
	// Header promising more rounds than present must fail.
	if _, err := Read(strings.NewReader(`{"format":"cbma-trace/1","rounds":2}` + "\n" + `{"seq":0}` + "\n")); err == nil {
		t.Fatal("truncated trace must fail")
	}
}

func TestPlayerSequenceAndRewind(t *testing.T) {
	p := NewPlayer(sampleTrace())
	if p.Remaining() != 2 {
		t.Fatalf("remaining %d", p.Remaining())
	}
	r0, err := p.Next()
	if err != nil {
		t.Fatal(err)
	}
	if r0.Seq != 0 || len(r0.Tags) != 2 {
		t.Errorf("round 0: %+v", r0)
	}
	if _, err := p.Next(); err != nil {
		t.Fatal(err)
	}
	if _, err := p.Next(); !errors.Is(err, ErrExhausted) {
		t.Fatalf("got %v, want ErrExhausted", err)
	}
	p.Rewind()
	if p.Remaining() != 2 {
		t.Error("rewind must restore all rounds")
	}
}

func TestRoundSample(t *testing.T) {
	tr := sampleTrace()
	s, ok := tr.Rounds[0].Sample(1)
	if !ok || s.Impedance != 2 {
		t.Errorf("sample: %+v ok=%v", s, ok)
	}
	if _, ok := tr.Rounds[0].Sample(9); ok {
		t.Error("absent tag must report !ok")
	}
}
