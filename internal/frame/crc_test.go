package frame

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestChecksumKnownVectors(t *testing.T) {
	// CRC-16/CCITT-FALSE reference vectors.
	tests := []struct {
		in   string
		want uint16
	}{
		{"", 0xFFFF},
		{"123456789", 0x29B1},
		{"A", 0xB915},
	}
	for _, tc := range tests {
		if got := Checksum([]byte(tc.in)); got != tc.want {
			t.Errorf("Checksum(%q) = %#04x, want %#04x", tc.in, got, tc.want)
		}
	}
}

func TestChecksumDetectsSingleBitErrors(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	data := make([]byte, 64)
	r.Read(data)
	orig := Checksum(data)
	for byteIdx := range data {
		for bit := 0; bit < 8; bit++ {
			data[byteIdx] ^= 1 << bit
			if Checksum(data) == orig {
				t.Fatalf("single-bit flip at byte %d bit %d undetected", byteIdx, bit)
			}
			data[byteIdx] ^= 1 << bit
		}
	}
}

func TestChecksumDeterministic(t *testing.T) {
	f := func(data []byte) bool {
		return Checksum(data) == Checksum(append([]byte(nil), data...))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestChecksumOrderSensitivity(t *testing.T) {
	a := Checksum([]byte{1, 2})
	b := Checksum([]byte{2, 1})
	if a == b {
		t.Error("CRC must be order sensitive for these inputs")
	}
}
