// Package frame implements CBMA's link-layer framing (§III-A of the paper):
// a known alternating preamble (one byte, 0xAA, extensible from 4 to 64 bits
// for the preamble-length study of Fig. 8(c)), a one-byte length field, up
// to 126 bytes of payload, and a two-byte CRC.
package frame

import (
	"errors"
	"fmt"
)

// MaxPayload is the largest payload the one-byte length field carries
// alongside the CRC (§III-A: "up to 126 bytes of payload data").
const MaxPayload = 126

// DefaultPreambleBits is the paper's one-byte preamble {10101010}.
const DefaultPreambleBits = 8

// Errors returned by the framer.
var (
	ErrPayloadTooLarge = errors.New("frame: payload exceeds 126 bytes")
	ErrBadPreambleLen  = errors.New("frame: preamble length must be 4..64 bits")
	ErrTooShort        = errors.New("frame: bit stream shorter than header")
	ErrPreamble        = errors.New("frame: preamble mismatch")
	ErrCRC             = errors.New("frame: CRC mismatch")
	ErrLength          = errors.New("frame: length field exceeds available bits")
)

// Frame is a decoded CBMA frame.
type Frame struct {
	// Payload is the application data (≤ MaxPayload bytes).
	Payload []byte
}

// Config controls marshalling. The zero value selects the paper's defaults
// via the accessor methods.
type Config struct {
	// PreambleBits is the preamble length in bits (4–64, default 8). The
	// preamble is the alternating pattern 1010… as in the paper.
	PreambleBits int
}

// preambleBits returns the validated preamble length.
func (c Config) preambleBits() (int, error) {
	n := c.PreambleBits
	if n == 0 {
		n = DefaultPreambleBits
	}
	if n < 4 || n > 64 {
		return 0, fmt.Errorf("%w: %d", ErrBadPreambleLen, n)
	}
	return n, nil
}

// Preamble returns the alternating preamble bit pattern (1,0,1,0,…) of the
// configured length, one bit per byte.
func (c Config) Preamble() ([]byte, error) {
	n, err := c.preambleBits()
	if err != nil {
		return nil, err
	}
	out := make([]byte, n)
	for i := range out {
		out[i] = byte((i + 1) % 2) // 1,0,1,0,…
	}
	return out, nil
}

// BitLength returns the total marshalled frame size in bits for a payload of
// p bytes: preamble + 8-bit length + payload + 16-bit CRC.
func (c Config) BitLength(p int) (int, error) {
	n, err := c.preambleBits()
	if err != nil {
		return 0, err
	}
	if p < 0 || p > MaxPayload {
		return 0, ErrPayloadTooLarge
	}
	return n + 8 + 8*p + 16, nil
}

// Marshal encapsulates payload into the on-air bit stream: preamble bits,
// length byte (payload size in bytes), payload bytes MSB-first, and the
// CRC-16/CCITT-FALSE of length+payload.
func Marshal(payload []byte, cfg Config) ([]byte, error) {
	if len(payload) > MaxPayload {
		return nil, fmt.Errorf("%w: %d bytes", ErrPayloadTooLarge, len(payload))
	}
	pre, err := cfg.Preamble()
	if err != nil {
		return nil, err
	}
	body := make([]byte, 0, 1+len(payload))
	body = append(body, byte(len(payload)))
	body = append(body, payload...)
	crc := Checksum(body)
	bits := make([]byte, 0, len(pre)+8*len(body)+16)
	bits = append(bits, pre...)
	bits = appendByteBits(bits, body...)
	bits = appendByteBits(bits, byte(crc>>8), byte(crc))
	return bits, nil
}

// Unmarshal parses a bit stream produced by Marshal (or recovered by the
// receiver's decoder). It verifies the preamble, bounds-checks the length
// field, and checks the CRC. The returned frame's payload is a copy.
func Unmarshal(bits []byte, cfg Config) (Frame, error) {
	pre, err := cfg.Preamble()
	if err != nil {
		return Frame{}, err
	}
	if len(bits) < len(pre)+8+16 {
		return Frame{}, ErrTooShort
	}
	for i, want := range pre {
		if bits[i] != want {
			return Frame{}, fmt.Errorf("%w at bit %d", ErrPreamble, i)
		}
	}
	rest := bits[len(pre):]
	length := int(packByte(rest[:8]))
	if length > MaxPayload {
		return Frame{}, fmt.Errorf("%w: length byte %d", ErrLength, length)
	}
	need := 8 + 8*length + 16
	if len(rest) < need {
		return Frame{}, fmt.Errorf("%w: need %d bits, have %d", ErrLength, need, len(rest))
	}
	body := make([]byte, 1+length)
	for i := range body {
		body[i] = packByte(rest[8*i : 8*i+8])
	}
	wantCRC := uint16(packByte(rest[8*len(body):8*len(body)+8]))<<8 |
		uint16(packByte(rest[8*len(body)+8:8*len(body)+16]))
	if got := Checksum(body); got != wantCRC {
		return Frame{}, fmt.Errorf("%w: got %#04x, want %#04x", ErrCRC, got, wantCRC)
	}
	return Frame{Payload: append([]byte(nil), body[1:]...)}, nil
}

// appendByteBits appends each byte MSB-first as 8 bit values.
func appendByteBits(dst []byte, bs ...byte) []byte {
	for _, b := range bs {
		for i := 7; i >= 0; i-- {
			dst = append(dst, (b>>uint(i))&1)
		}
	}
	return dst
}

// packByte packs 8 bit values (MSB first) into a byte.
func packByte(bits []byte) byte {
	var b byte
	for _, v := range bits[:8] {
		b = b<<1 | (v & 1)
	}
	return b
}

// BytesToBits expands bytes into one-bit-per-byte form, MSB first.
func BytesToBits(bs []byte) []byte {
	return appendByteBits(make([]byte, 0, 8*len(bs)), bs...)
}

// BitsToBytes packs bits (MSB first) into bytes; the bit count must be a
// multiple of eight.
func BitsToBytes(bits []byte) ([]byte, error) {
	if len(bits)%8 != 0 {
		return nil, fmt.Errorf("frame: bit count %d not a multiple of 8", len(bits))
	}
	out := make([]byte, len(bits)/8)
	for i := range out {
		out[i] = packByte(bits[8*i : 8*i+8])
	}
	return out, nil
}
