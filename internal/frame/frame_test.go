package frame

import (
	"bytes"
	"errors"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestMarshalUnmarshalRoundTrip(t *testing.T) {
	payloads := [][]byte{
		nil,
		{},
		{0x00},
		{0xFF},
		[]byte("hello, backscatter"),
		bytes.Repeat([]byte{0xA5}, MaxPayload),
	}
	for _, p := range payloads {
		bits, err := Marshal(p, Config{})
		if err != nil {
			t.Fatalf("Marshal(%d bytes): %v", len(p), err)
		}
		f, err := Unmarshal(bits, Config{})
		if err != nil {
			t.Fatalf("Unmarshal(%d bytes): %v", len(p), err)
		}
		if !bytes.Equal(f.Payload, p) && !(len(p) == 0 && len(f.Payload) == 0) {
			t.Errorf("payload mismatch: got %x, want %x", f.Payload, p)
		}
	}
}

func TestMarshalRoundTripProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := r.Intn(MaxPayload + 1)
		p := make([]byte, n)
		r.Read(p)
		preBits := []int{4, 8, 16, 32, 64}[r.Intn(5)]
		cfg := Config{PreambleBits: preBits}
		bits, err := Marshal(p, cfg)
		if err != nil {
			return false
		}
		got, err := Unmarshal(bits, cfg)
		if err != nil {
			return false
		}
		return bytes.Equal(got.Payload, p)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestMarshalRejectsOversizedPayload(t *testing.T) {
	if _, err := Marshal(make([]byte, MaxPayload+1), Config{}); !errors.Is(err, ErrPayloadTooLarge) {
		t.Fatalf("got %v, want ErrPayloadTooLarge", err)
	}
}

func TestPreamblePattern(t *testing.T) {
	pre, err := Config{}.Preamble()
	if err != nil {
		t.Fatal(err)
	}
	want := []byte{1, 0, 1, 0, 1, 0, 1, 0} // the paper's 0xAA
	if !bytes.Equal(pre, want) {
		t.Errorf("preamble = %v, want %v", pre, want)
	}
}

func TestPreambleLengthValidation(t *testing.T) {
	for _, n := range []int{-1, 1, 2, 3, 65, 100} {
		if _, err := (Config{PreambleBits: n}).Preamble(); !errors.Is(err, ErrBadPreambleLen) {
			t.Errorf("PreambleBits=%d: got %v, want ErrBadPreambleLen", n, err)
		}
	}
	for _, n := range []int{4, 8, 16, 32, 64} {
		pre, err := Config{PreambleBits: n}.Preamble()
		if err != nil {
			t.Errorf("PreambleBits=%d: %v", n, err)
		}
		if len(pre) != n {
			t.Errorf("PreambleBits=%d: got %d bits", n, len(pre))
		}
	}
}

func TestBitLength(t *testing.T) {
	got, err := Config{}.BitLength(10)
	if err != nil {
		t.Fatal(err)
	}
	want := 8 + 8 + 80 + 16
	if got != want {
		t.Errorf("BitLength(10) = %d, want %d", got, want)
	}
	if _, err := (Config{}).BitLength(127); !errors.Is(err, ErrPayloadTooLarge) {
		t.Errorf("got %v, want ErrPayloadTooLarge", err)
	}
	if _, err := (Config{}).BitLength(-1); err == nil {
		t.Error("negative payload must fail")
	}
}

func TestUnmarshalTooShort(t *testing.T) {
	if _, err := Unmarshal(make([]byte, 10), Config{}); !errors.Is(err, ErrTooShort) {
		t.Fatalf("got %v, want ErrTooShort", err)
	}
}

func TestUnmarshalPreambleMismatch(t *testing.T) {
	bits, err := Marshal([]byte{1, 2, 3}, Config{})
	if err != nil {
		t.Fatal(err)
	}
	bits[0] ^= 1
	if _, err := Unmarshal(bits, Config{}); !errors.Is(err, ErrPreamble) {
		t.Fatalf("got %v, want ErrPreamble", err)
	}
}

func TestUnmarshalCRCDetectsBitFlips(t *testing.T) {
	payload := []byte("sensor-reading-42")
	bits, err := Marshal(payload, Config{})
	if err != nil {
		t.Fatal(err)
	}
	// Flip each payload/CRC bit in turn; every single-bit error must be
	// caught (CRC-16 detects all single-bit errors).
	for i := 8 + 8; i < len(bits); i++ {
		corrupted := append([]byte(nil), bits...)
		corrupted[i] ^= 1
		if _, err := Unmarshal(corrupted, Config{}); err == nil {
			t.Fatalf("bit flip at %d went undetected", i)
		}
	}
}

func TestUnmarshalLengthFieldBounds(t *testing.T) {
	bits, err := Marshal([]byte{1}, Config{})
	if err != nil {
		t.Fatal(err)
	}
	// Overwrite the length byte (bits 8..15) with 127 (> MaxPayload).
	for i, v := range []byte{0, 1, 1, 1, 1, 1, 1, 1} {
		bits[8+i] = v
	}
	if _, err := Unmarshal(bits, Config{}); !errors.Is(err, ErrLength) {
		t.Fatalf("got %v, want ErrLength", err)
	}
	// A length claiming more bits than available must also fail cleanly.
	bits2, _ := Marshal([]byte{1}, Config{})
	for i, v := range []byte{0, 1, 1, 1, 1, 1, 1, 0} { // 126
		bits2[8+i] = v
	}
	if _, err := Unmarshal(bits2, Config{}); !errors.Is(err, ErrLength) {
		t.Fatalf("got %v, want ErrLength", err)
	}
}

func TestUnmarshalPayloadIsACopy(t *testing.T) {
	bits, err := Marshal([]byte{9, 9}, Config{})
	if err != nil {
		t.Fatal(err)
	}
	f, err := Unmarshal(bits, Config{})
	if err != nil {
		t.Fatal(err)
	}
	f.Payload[0] = 42
	g, err := Unmarshal(bits, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if g.Payload[0] != 9 {
		t.Error("Unmarshal must return an independent copy")
	}
}

func TestBytesToBitsRoundTrip(t *testing.T) {
	f := func(data []byte) bool {
		bits := BytesToBits(data)
		if len(bits) != 8*len(data) {
			return false
		}
		back, err := BitsToBytes(bits)
		if err != nil {
			return false
		}
		return bytes.Equal(back, data)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestBitsToBytesRejectsRagged(t *testing.T) {
	if _, err := BitsToBytes(make([]byte, 7)); err == nil {
		t.Fatal("want error for non-multiple-of-8 bit count")
	}
}

func TestBytesToBitsMSBFirst(t *testing.T) {
	bits := BytesToBits([]byte{0x80})
	if bits[0] != 1 {
		t.Error("MSB must come first")
	}
	for _, b := range bits[1:] {
		if b != 0 {
			t.Error("low bits of 0x80 must be 0")
		}
	}
}
