package frame

// Checksum computes CRC-16/CCITT-FALSE (polynomial 0x1021, initial value
// 0xFFFF, no reflection, no final XOR) over data — the classic two-byte
// "cyclic redundancy check" field of §III-A. Implemented bitwise from the
// polynomial so the package stays free of table-generation init work.
func Checksum(data []byte) uint16 {
	const poly = 0x1021
	crc := uint16(0xFFFF)
	for _, b := range data {
		crc ^= uint16(b) << 8
		for i := 0; i < 8; i++ {
			if crc&0x8000 != 0 {
				crc = crc<<1 ^ poly
			} else {
				crc <<= 1
			}
		}
	}
	return crc
}
