package pn

import "testing"

func TestPreferredPairsAreThreeValued(t *testing.T) {
	for _, deg := range []uint{5, 6, 7, 9} {
		pa, pb, err := PreferredPair(deg)
		if err != nil {
			t.Fatalf("degree %d: %v", deg, err)
		}
		u, err := MSequence(deg, pa, 1)
		if err != nil {
			t.Fatalf("degree %d seq u: %v", deg, err)
		}
		v, err := MSequence(deg, pb, 1)
		if err != nil {
			t.Fatalf("degree %d seq v: %v", deg, err)
		}
		ok, err := IsThreeValued(u, v, deg)
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			t.Errorf("degree %d: pair is not preferred (cross-correlation not three-valued)", deg)
		}
	}
}

func TestPreferredPairUnknownDegree(t *testing.T) {
	if _, _, err := PreferredPair(8); err == nil {
		t.Fatal("degree 8 (divisible by 4) must have no preferred pair")
	}
}

func TestGoldFamilySizeAndLength(t *testing.T) {
	fam, err := GoldFamily(5)
	if err != nil {
		t.Fatal(err)
	}
	if len(fam) != 33 { // 2^5 + 1
		t.Errorf("family size %d, want 33", len(fam))
	}
	for i, seq := range fam {
		if len(seq) != 31 {
			t.Errorf("member %d length %d, want 31", i, len(seq))
		}
	}
}

func TestGoldFamilyPairwiseCrossCorrelationBound(t *testing.T) {
	// Every pair in a degree-5 Gold family has |cross| ≤ t(5) = 9.
	fam, err := GoldFamily(5)
	if err != nil {
		t.Fatal(err)
	}
	const bound = 9
	for i := 0; i < len(fam); i++ {
		for j := i + 1; j < len(fam); j++ {
			cc, err := PeriodicCrossCorrelation(fam[i], fam[j])
			if err != nil {
				t.Fatal(err)
			}
			for k, v := range cc {
				if v > bound || v < -bound {
					t.Fatalf("pair (%d,%d) lag %d: cross %d exceeds ±%d", i, j, k, v, bound)
				}
			}
		}
	}
}

func TestNewGoldSetBasics(t *testing.T) {
	s, err := NewGoldSet(5, 10)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	if s.ChipLength() != 31 {
		t.Errorf("chip length %d, want 31", s.ChipLength())
	}
	for _, c := range s.Codes {
		// Zero sequence must be the full negation for Gold codes.
		for i := range c.One {
			if c.One[i] == c.Zero[i] {
				t.Fatalf("code %d chip %d: zero is not the negation", c.ID, i)
			}
		}
	}
}

func TestNewGoldSetTooMany(t *testing.T) {
	if _, err := NewGoldSet(5, 100); err == nil {
		t.Fatal("requesting more codes than the family holds must fail")
	}
}

func TestNewGoldSetUnknownDegree(t *testing.T) {
	if _, err := NewGoldSet(8, 4); err == nil {
		t.Fatal("degree without preferred pair must fail")
	}
}

func Test2NCSetStructure(t *testing.T) {
	const n = 5
	s, err := New2NCSet(n)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	if s.ChipLength() != 2*n {
		t.Errorf("chip length %d, want %d", s.ChipLength(), 2*n)
	}
	for i, c := range s.Codes {
		if c.OnesWeight() != 1 {
			t.Errorf("code %d weight %d, want 1", i, c.OnesWeight())
		}
		if c.One[2*i] != 1 {
			t.Errorf("code %d: bit-one chip not at slot position %d", i, 2*i)
		}
		if c.Zero[2*i+1] != 1 {
			t.Errorf("code %d: bit-zero chip not at slot position %d", i, 2*i+1)
		}
	}
}

func Test2NCDisjointSupport(t *testing.T) {
	s, err := New2NCSet(6)
	if err != nil {
		t.Fatal(err)
	}
	// Across users, the union of One and Zero supports must not overlap.
	for i := 0; i < s.Size(); i++ {
		for j := i + 1; j < s.Size(); j++ {
			a, b := s.Codes[i], s.Codes[j]
			for k := 0; k < a.Length(); k++ {
				ai := a.One[k] | a.Zero[k]
				bj := b.One[k] | b.Zero[k]
				if ai == 1 && bj == 1 {
					t.Fatalf("codes %d and %d share chip %d", i, j, k)
				}
			}
		}
	}
}

func Test2NCZeroIsSlotNegationOfOne(t *testing.T) {
	s, err := New2NCSet(4)
	if err != nil {
		t.Fatal(err)
	}
	for i, c := range s.Codes {
		// Within the owner's slot the patterns are [1 0] vs [0 1].
		if c.One[2*i] != 1 || c.One[2*i+1] != 0 ||
			c.Zero[2*i] != 0 || c.Zero[2*i+1] != 1 {
			t.Errorf("code %d slot patterns wrong: one=%v zero=%v", i, c.One, c.Zero)
		}
	}
}

func TestWalshSetOrthogonality(t *testing.T) {
	s, err := NewWalshSet(7)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	// Chip-aligned bipolar cross-correlation at lag 0 must be exactly 0.
	for i := 0; i < s.Size(); i++ {
		bi := bipolar(s.Codes[i].One)
		for j := i + 1; j < s.Size(); j++ {
			bj := bipolar(s.Codes[j].One)
			var dot float64
			for k := range bi {
				dot += bi[k] * bj[k]
			}
			if dot != 0 {
				t.Fatalf("codes %d,%d: lag-0 dot %v, want 0", i, j, dot)
			}
		}
	}
}

func TestWalshSetSkipsConstantRow(t *testing.T) {
	s, err := NewWalshSet(3)
	if err != nil {
		t.Fatal(err)
	}
	for i, c := range s.Codes {
		first := c.One[0]
		constant := true
		for _, b := range c.One {
			if b != first {
				constant = false
				break
			}
		}
		if constant {
			t.Errorf("code %d is constant — row 0 must be skipped", i)
		}
	}
}

func TestKasamiFamilyProperties(t *testing.T) {
	fam, err := KasamiFamily(6)
	if err != nil {
		t.Fatal(err)
	}
	if len(fam) != 8 { // 2^(6/2)
		t.Errorf("family size %d, want 8", len(fam))
	}
	// Small-set Kasami max |cross| is 2^(n/2)+1 = 9 for n=6.
	const bound = 9
	for i := 0; i < len(fam); i++ {
		for j := i + 1; j < len(fam); j++ {
			cc, err := PeriodicCrossCorrelation(fam[i], fam[j])
			if err != nil {
				t.Fatal(err)
			}
			for _, v := range cc {
				if v > bound || v < -bound {
					t.Fatalf("pair (%d,%d): cross %d exceeds ±%d", i, j, v, bound)
				}
			}
		}
	}
}

func TestKasamiOddDegreeRoundsUp(t *testing.T) {
	s, err := NewKasamiSet(5, 4)
	if err != nil {
		t.Fatal(err)
	}
	if s.ChipLength() != 63 { // degree rounded to 6 → 2^6−1
		t.Errorf("chip length %d, want 63", s.ChipLength())
	}
}

func TestKasamiTooMany(t *testing.T) {
	if _, err := NewKasamiSet(6, 100); err == nil {
		t.Fatal("want family-size error")
	}
}

func TestKasamiFamilyOddDegreeRejected(t *testing.T) {
	if _, err := KasamiFamily(5); err == nil {
		t.Fatal("odd degree must be rejected by KasamiFamily")
	}
}

func TestProfileOrdering2NCBeatsGoldAligned(t *testing.T) {
	// The paper's Fig. 9(b) rationale: 2NC codes are "more orthogonal".
	// Chip-aligned, 2NC's disjoint support gives exactly zero leakage while
	// Gold codes leak a fraction of the victim's auto response.
	gold, err := NewGoldSet(5, 5)
	if err != nil {
		t.Fatal(err)
	}
	twoNC, err := New2NCSet(5)
	if err != nil {
		t.Fatal(err)
	}
	pg, err := Profile(gold, 0)
	if err != nil {
		t.Fatal(err)
	}
	p2, err := Profile(twoNC, 0)
	if err != nil {
		t.Fatal(err)
	}
	if p2.MaxCross != 0 {
		t.Errorf("aligned 2NC max cross = %v, want 0", p2.MaxCross)
	}
	if pg.MaxCross <= 0 {
		t.Errorf("aligned Gold max cross = %v, want > 0", pg.MaxCross)
	}
}

func TestProfile2NCDegradesWhenAsync(t *testing.T) {
	// Fully asynchronous, a 2NC interferer can land inside the victim's
	// slot and mimic a full bit — the flip side of sparse codes, and the
	// reason the paper needs its correlation-based detector (§I challenge 1).
	twoNC, err := New2NCSet(5)
	if err != nil {
		t.Fatal(err)
	}
	full, err := Profile(twoNC, -1)
	if err != nil {
		t.Fatal(err)
	}
	if full.MaxCross < 1 {
		t.Errorf("async 2NC max cross = %v, want ≥ 1", full.MaxCross)
	}
}

func TestCrossResponseSelfAlignedIsOne(t *testing.T) {
	s, err := NewGoldSet(5, 3)
	if err != nil {
		t.Fatal(err)
	}
	got, err := CrossResponse(s.Codes[1], s.Codes[1], 0)
	if err != nil {
		t.Fatal(err)
	}
	if got != 1 {
		t.Errorf("self response = %v, want 1", got)
	}
}

func TestCrossResponseLengthMismatch(t *testing.T) {
	g, _ := NewGoldSet(5, 1)
	w, _ := New2NCSet(3)
	if _, err := CrossResponse(g.Codes[0], w.Codes[0], 0); err == nil {
		t.Fatal("length mismatch must fail")
	}
}

func TestProfileGoldBound(t *testing.T) {
	s, err := NewGoldSet(5, 8)
	if err != nil {
		t.Fatal(err)
	}
	p, err := Profile(s, -1)
	if err != nil {
		t.Fatal(err)
	}
	// Unipolar leakage for Gold-31: |2·overlap − weight| / weight with the
	// three-valued overlap set; stays well below 1.
	if p.MaxCross >= 1 {
		t.Errorf("Gold-31 profile max cross %v, want < 1", p.MaxCross)
	}
	if p.MeanCross <= 0 {
		t.Error("mean cross must be positive")
	}
	if p.MaxAutoSidelobe <= 0 {
		t.Error("auto sidelobe must be positive for Gold codes")
	}
}

func TestProfileInvalidSet(t *testing.T) {
	if _, err := Profile(&Set{}, 0); err == nil {
		t.Fatal("profiling an invalid set must fail")
	}
}

func TestBalanceEmpty(t *testing.T) {
	if got := Balance(nil); got != 0 {
		t.Errorf("Balance(nil) = %d", got)
	}
}

func TestRunLengthCountsEmpty(t *testing.T) {
	if got := RunLengthCounts(nil); len(got) != 0 {
		t.Errorf("RunLengthCounts(nil) = %v", got)
	}
}

func TestPeriodicCrossCorrelationMismatch(t *testing.T) {
	if _, err := PeriodicCrossCorrelation([]byte{1}, []byte{1, 0}); err == nil {
		t.Fatal("length mismatch must fail")
	}
}
