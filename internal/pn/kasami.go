package pn

import "fmt"

// KasamiFamily generates the small Kasami set for an even degree n: the
// base m-sequence u plus u ⊕ shift(w, k) where w is u decimated by
// 2^(n/2) + 1 (w has period 2^(n/2) − 1). The set contains 2^(n/2)
// sequences with optimal maximum cross-correlation 2^(n/2) + 1.
func KasamiFamily(degree uint) ([][]byte, error) {
	if degree%2 != 0 {
		return nil, fmt.Errorf("pn: Kasami set requires even degree, got %d", degree)
	}
	poly, err := PrimitivePoly(degree)
	if err != nil {
		return nil, err
	}
	u, err := MSequence(degree, poly, 1)
	if err != nil {
		return nil, err
	}
	half := 1 << (degree / 2)
	w := Decimate(u, half+1)
	fam := make([][]byte, 0, half)
	fam = append(fam, u)
	for k := 0; k < half-1; k++ {
		fam = append(fam, xorSeq(u, cyclicShift(w, k)))
	}
	return fam, nil
}

// NewKasamiSet returns the first n codes of the small Kasami set of the
// given (even) degree, OOK-encoded like the Gold set. Odd degrees are
// rounded up to the next even degree so callers can pass the same default
// degree they use for Gold codes.
func NewKasamiSet(degree uint, n int) (*Set, error) {
	if n <= 0 {
		return nil, ErrBadUserNum
	}
	if degree%2 != 0 {
		degree++
	}
	fam, err := KasamiFamily(degree)
	if err != nil {
		return nil, err
	}
	if n > len(fam) {
		return nil, fmt.Errorf("%w: want %d, Kasami set has %d", ErrFamilySize, n, len(fam))
	}
	codes := make([]Code, n)
	for i := 0; i < n; i++ {
		one := fam[i]
		codes[i] = Code{ID: i, One: one, Zero: negate(one)}
	}
	return &Set{Family: FamilyKasami, Codes: codes}, nil
}
