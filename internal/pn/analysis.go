package pn

import "fmt"

// bipolar maps unipolar chips {0,1} to bipolar values {−1,+1}.
func bipolar(x []byte) []float64 {
	out := make([]float64, len(x))
	for i, b := range x {
		out[i] = 2*float64(b) - 1
	}
	return out
}

// PeriodicCrossCorrelation returns the periodic (circular) cross-correlation
// of two equal-length unipolar sequences in bipolar form at every lag.
// For m-sequences the zero-lag auto value is the period and every other lag
// is −1; for a Gold preferred pair every value lies in {−1, −t, t−2}.
func PeriodicCrossCorrelation(a, b []byte) ([]int, error) {
	if len(a) != len(b) {
		return nil, fmt.Errorf("pn: sequence lengths %d and %d differ", len(a), len(b))
	}
	n := len(a)
	out := make([]int, n)
	for k := 0; k < n; k++ {
		acc := 0
		for i := 0; i < n; i++ {
			j := i + k
			if j >= n {
				j -= n
			}
			if a[i] == b[j] {
				acc++
			} else {
				acc--
			}
		}
		out[k] = acc
	}
	return out, nil
}

// MaxAbsSidelobe returns the largest |autocorrelation| of x in bipolar form
// over all non-zero lags.
func MaxAbsSidelobe(x []byte) (int, error) {
	ac, err := PeriodicCrossCorrelation(x, x)
	if err != nil {
		return 0, err
	}
	var m int
	for _, v := range ac[1:] {
		if v < 0 {
			v = -v
		}
		if v > m {
			m = v
		}
	}
	return m, nil
}

// CrossResponse measures how strongly interferer j's transmitted waveform
// leaks into victim i's bit decision: the cyclic correlation of j's unipolar
// bit-one chip stream (shifted by lag chips) against i's discriminant
// template, normalized by i's own zero-lag response. A value of 0 means
// perfect rejection; ±1 means the interferer looks exactly like the victim's
// own bit. This models OOK backscatter physically: an absorbing tag (chip 0)
// contributes no signal, unlike the ±1 convention of classical CDMA.
func CrossResponse(victim, interferer Code, lag int) (float64, error) {
	if victim.Length() != interferer.Length() {
		return 0, fmt.Errorf("pn: code lengths %d and %d differ",
			victim.Length(), interferer.Length())
	}
	d := victim.Discriminant()
	n := len(d)
	var auto float64
	for m := range d {
		auto += float64(victim.One[m]) * d[m]
	}
	if auto == 0 {
		return 0, fmt.Errorf("pn: victim code %d has zero auto response", victim.ID)
	}
	var acc float64
	for m := 0; m < n; m++ {
		k := m + lag
		k = ((k % n) + n) % n
		acc += float64(interferer.One[k]) * d[m]
	}
	return acc / auto, nil
}

// CorrelationProfile summarizes the pairwise interference-rejection quality
// of a code set as seen by the OOK correlation receiver.
type CorrelationProfile struct {
	// MaxCross is the largest |CrossResponse| between distinct codes over
	// the examined lag window.
	MaxCross float64
	// MeanCross is the mean |CrossResponse| over distinct ordered code
	// pairs and examined lags.
	MeanCross float64
	// MaxAutoSidelobe is the largest bipolar |autocorrelation| at non-zero
	// lag over all codes, divided by the chip length (a frame-sync
	// false-lock risk metric).
	MaxAutoSidelobe float64
}

// Profile computes the correlation profile of a set. maxLag bounds the
// examined relative chip offsets to ±maxLag (0 = chip-aligned only, the
// regime CBMA's preamble synchronization targets); a negative maxLag
// examines every cyclic lag, characterizing fully-asynchronous operation.
func Profile(s *Set, maxLag int) (CorrelationProfile, error) {
	if err := s.Validate(); err != nil {
		return CorrelationProfile{}, err
	}
	n := s.ChipLength()
	lags := []int{0}
	if maxLag < 0 || maxLag >= n/2 {
		lags = lags[:0]
		for k := 0; k < n; k++ {
			lags = append(lags, k)
		}
	} else {
		for k := 1; k <= maxLag; k++ {
			lags = append(lags, k, -k)
		}
	}
	var p CorrelationProfile
	var crossSum float64
	var crossCount int
	for i := range s.Codes {
		side, err := MaxAbsSidelobe(s.Codes[i].One)
		if err != nil {
			return CorrelationProfile{}, err
		}
		if v := float64(side) / float64(n); v > p.MaxAutoSidelobe {
			p.MaxAutoSidelobe = v
		}
		for j := range s.Codes {
			if i == j {
				continue
			}
			for _, lag := range lags {
				r, err := CrossResponse(s.Codes[i], s.Codes[j], lag)
				if err != nil {
					return CorrelationProfile{}, err
				}
				if r < 0 {
					r = -r
				}
				crossSum += r
				crossCount++
				if r > p.MaxCross {
					p.MaxCross = r
				}
			}
		}
	}
	if crossCount > 0 {
		p.MeanCross = crossSum / float64(crossCount)
	}
	return p, nil
}

// Balance returns ones − zeros for a unipolar sequence. An m-sequence of
// period 2^n − 1 has balance exactly +1.
func Balance(x []byte) int {
	var b int
	for _, v := range x {
		if v == 1 {
			b++
		} else {
			b--
		}
	}
	return b
}

// RunLengthCounts returns a histogram of run lengths in x (runs of equal
// consecutive chips, non-circular). m-sequences satisfy the classic run
// property: half the runs have length 1, a quarter length 2, and so on.
func RunLengthCounts(x []byte) map[int]int {
	out := make(map[int]int)
	if len(x) == 0 {
		return out
	}
	run := 1
	for i := 1; i < len(x); i++ {
		if x[i] == x[i-1] {
			run++
			continue
		}
		out[run]++
		run = 1
	}
	out[run]++
	return out
}

// IsThreeValued reports whether every cross-correlation value between the
// two sequences lies in the Gold set {−1, −t, t−2} for t = 2^⌊(deg+2)/2⌋+1,
// the defining property of a preferred pair.
func IsThreeValued(a, b []byte, degree uint) (bool, error) {
	t := 1<<((degree+2)/2) + 1
	cc, err := PeriodicCrossCorrelation(a, b)
	if err != nil {
		return false, err
	}
	for _, v := range cc {
		if v != -1 && v != -t && v != t-2 {
			return false, nil
		}
	}
	return true, nil
}
