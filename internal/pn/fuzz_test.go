package pn_test

import (
	"bytes"
	"testing"

	"cbma/internal/pn"
)

// FuzzGoldBalance drives NewGoldSet with arbitrary (degree, n) pairs and
// checks the structural invariants of every set that constructs: family
// size, chip alphabet, the One/Zero complement encoding, the Gold balance
// bound |Balance| ≤ t(d) = 2^⌊(d+2)/2⌋ + 1, and construction determinism.
// Unsupported degrees and sizes must fail fast with an error instead of
// panicking or allocating a huge family.
func FuzzGoldBalance(f *testing.F) {
	f.Add(uint(5), 8)
	f.Add(uint(6), 16)
	f.Add(uint(7), 3)
	f.Add(uint(9), 40)
	f.Add(uint(4), 1)   // degrees divisible by 4 have no preferred pair
	f.Add(uint(0), 0)   // n <= 0 must error
	f.Add(uint(7), 500) // larger than the degree-7 family
	f.Fuzz(func(t *testing.T, degree uint, n int) {
		set, err := pn.NewGoldSet(degree, n)
		if err != nil {
			if set != nil {
				t.Fatalf("NewGoldSet(%d, %d) returned both a set and %v", degree, n, err)
			}
			return
		}
		if len(set.Codes) != n {
			t.Fatalf("NewGoldSet(%d, %d): got %d codes", degree, n, len(set.Codes))
		}
		period := (1 << degree) - 1
		// t(d) bounds both the three-valued cross-correlation and the
		// balance of the combined family members.
		bound := (1 << ((degree + 2) / 2)) + 1
		for _, c := range set.Codes {
			if len(c.One) != period || len(c.Zero) != period {
				t.Fatalf("degree %d code %d: lengths %d/%d, want %d",
					degree, c.ID, len(c.One), len(c.Zero), period)
			}
			for i := range c.One {
				if c.One[i] > 1 || c.Zero[i] > 1 {
					t.Fatalf("degree %d code %d: non-binary chip at %d", degree, c.ID, i)
				}
				if c.One[i] == c.Zero[i] {
					t.Fatalf("degree %d code %d: Zero is not the complement of One at %d",
						degree, c.ID, i)
				}
			}
			if b := pn.Balance(c.One); b > bound || b < -bound {
				t.Fatalf("degree %d code %d: balance %d exceeds t(d)=%d",
					degree, c.ID, b, bound)
			}
		}
		again, err := pn.NewGoldSet(degree, n)
		if err != nil {
			t.Fatalf("second NewGoldSet(%d, %d) failed: %v", degree, n, err)
		}
		for i := range set.Codes {
			if !bytes.Equal(set.Codes[i].One, again.Codes[i].One) {
				t.Fatalf("degree %d code %d: construction is not deterministic", degree, i)
			}
		}
	})
}
