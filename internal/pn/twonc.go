package pn

// New2NCSet builds the paper's "2NC" code set for n users: each code is
// 2·n chips long and user i owns the two-chip slot {2i, 2i+1}. A data bit
// of one is signalled by the chip pattern [1 0] in the slot and a data bit
// of zero by its negation [0 1] (the paper's footnote 2: "the chip
// representing 0 is the negation of that representing 1"); all chips outside
// the owner's slot are zero, so the codes of different users have disjoint
// support and therefore zero cross-correlation when chip-aligned — the
// "better orthogonality" the paper credits for 2NC's advantage over Gold
// codes in Fig. 9(b).
//
// The construction trades per-bit energy (one active chip out of 2n) for
// that orthogonality, which is the right trade in the interference-limited
// multi-tag regime the paper evaluates. The exact construction in reference
// [9] is not fully specified by the paper, so this disjoint-slot
// interpretation is documented in DESIGN.md as a substitution.
func New2NCSet(n int) (*Set, error) {
	if n <= 0 {
		return nil, ErrBadUserNum
	}
	length := 2 * n
	codes := make([]Code, n)
	for i := 0; i < n; i++ {
		one := make([]byte, length)
		zero := make([]byte, length)
		one[2*i] = 1
		zero[2*i+1] = 1
		codes[i] = Code{ID: i, One: one, Zero: zero}
	}
	return &Set{Family: Family2NC, Codes: codes}, nil
}
