package pn

import (
	"testing"
	"testing/quick"
)

func TestFamilyString(t *testing.T) {
	tests := []struct {
		f    Family
		want string
	}{
		{FamilyGold, "gold"},
		{Family2NC, "2nc"},
		{FamilyWalsh, "walsh"},
		{FamilyKasami, "kasami"},
		{Family(99), "family(99)"},
	}
	for _, tc := range tests {
		if got := tc.f.String(); got != tc.want {
			t.Errorf("%d.String() = %q, want %q", tc.f, got, tc.want)
		}
	}
}

func TestParseFamilyRoundTrip(t *testing.T) {
	for _, f := range []Family{FamilyGold, Family2NC, FamilyWalsh, FamilyKasami} {
		got, err := ParseFamily(f.String())
		if err != nil {
			t.Fatal(err)
		}
		if got != f {
			t.Errorf("ParseFamily(%q) = %v", f.String(), got)
		}
	}
	if _, err := ParseFamily("nope"); err == nil {
		t.Fatal("want error for unknown family")
	}
}

func TestCodeDiscriminant(t *testing.T) {
	c := Code{One: []byte{1, 0, 1}, Zero: []byte{0, 1, 1}}
	d := c.Discriminant()
	want := []float64{1, -1, 0}
	for i := range want {
		if d[i] != want[i] {
			t.Errorf("chip %d = %v, want %v", i, d[i], want[i])
		}
	}
}

func TestCodeOnesWeight(t *testing.T) {
	c := Code{One: []byte{1, 0, 1, 1}}
	if got := c.OnesWeight(); got != 3 {
		t.Errorf("OnesWeight = %d, want 3", got)
	}
}

func TestCodeValidate(t *testing.T) {
	tests := []struct {
		name string
		c    Code
		ok   bool
	}{
		{"valid", Code{One: []byte{1, 0}, Zero: []byte{0, 1}}, true},
		{"empty", Code{}, false},
		{"length mismatch", Code{One: []byte{1}, Zero: []byte{0, 1}}, false},
		{"non-binary", Code{One: []byte{2, 0}, Zero: []byte{0, 1}}, false},
		{"indistinguishable", Code{One: []byte{1, 0}, Zero: []byte{1, 0}}, false},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			err := tc.c.Validate()
			if tc.ok && err != nil {
				t.Errorf("unexpected error: %v", err)
			}
			if !tc.ok && err == nil {
				t.Error("want error")
			}
		})
	}
}

func TestSetValidateDuplicates(t *testing.T) {
	s := &Set{Codes: []Code{
		{ID: 0, One: []byte{1, 0}, Zero: []byte{0, 1}},
		{ID: 1, One: []byte{1, 0}, Zero: []byte{0, 1}},
	}}
	if err := s.Validate(); err == nil {
		t.Fatal("duplicate codes must fail validation")
	}
}

func TestSetValidateEmpty(t *testing.T) {
	if err := (&Set{}).Validate(); err == nil {
		t.Fatal("empty set must fail validation")
	}
}

func TestSetCodeIndexing(t *testing.T) {
	s, err := New2NCSet(3)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Code(-1); err == nil {
		t.Error("negative index must fail")
	}
	if _, err := s.Code(3); err == nil {
		t.Error("out-of-range index must fail")
	}
	c, err := s.Code(2)
	if err != nil {
		t.Fatal(err)
	}
	if c.ID != 2 {
		t.Errorf("ID = %d, want 2", c.ID)
	}
}

func TestNewSetDispatch(t *testing.T) {
	for _, f := range []Family{FamilyGold, Family2NC, FamilyWalsh, FamilyKasami} {
		s, err := NewSet(f, 4, 0)
		if err != nil {
			t.Fatalf("%v: %v", f, err)
		}
		if s.Family != f {
			t.Errorf("family = %v, want %v", s.Family, f)
		}
		if s.Size() != 4 {
			t.Errorf("%v: size %d, want 4", f, s.Size())
		}
		if err := s.Validate(); err != nil {
			t.Errorf("%v: %v", f, err)
		}
	}
	if _, err := NewSet(Family(42), 4, 0); err == nil {
		t.Fatal("unknown family must fail")
	}
	if _, err := NewSet(FamilyGold, 0, 0); err != ErrBadUserNum {
		t.Fatalf("got %v, want ErrBadUserNum", err)
	}
}

func TestChipLengthEmptySet(t *testing.T) {
	if got := (&Set{}).ChipLength(); got != 0 {
		t.Errorf("ChipLength = %d, want 0", got)
	}
}

func TestDiscriminantZeroMeansAgreement(t *testing.T) {
	// Property: discriminant is 0 exactly where One and Zero agree.
	f := func(seed int64) bool {
		n := int(seed%8) + 2
		if n < 2 {
			n = 2
		}
		s, err := New2NCSet(n)
		if err != nil {
			return false
		}
		for _, c := range s.Codes {
			d := c.Discriminant()
			for i := range d {
				agree := c.One[i] == c.Zero[i]
				if agree != (d[i] == 0) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}
