package pn

import "fmt"

// Family enumerates the spreading-code families the simulator supports.
type Family int

// Supported code families. The paper evaluates Gold and 2NC codes
// (Fig. 9(b)); Walsh and Kasami are included as synchronous-CDMA and
// large-family comparison points.
const (
	FamilyGold Family = iota + 1
	Family2NC
	FamilyWalsh
	FamilyKasami
)

// String implements fmt.Stringer.
func (f Family) String() string {
	switch f {
	case FamilyGold:
		return "gold"
	case Family2NC:
		return "2nc"
	case FamilyWalsh:
		return "walsh"
	case FamilyKasami:
		return "kasami"
	default:
		return fmt.Sprintf("family(%d)", int(f))
	}
}

// ParseFamily converts a string (as accepted by the CLI tools) to a Family.
func ParseFamily(s string) (Family, error) {
	switch s {
	case "gold":
		return FamilyGold, nil
	case "2nc":
		return Family2NC, nil
	case "walsh":
		return FamilyWalsh, nil
	case "kasami":
		return FamilyKasami, nil
	default:
		return 0, fmt.Errorf("pn: unknown code family %q", s)
	}
}

// Code is one user's spreading code: the unipolar chip sequences that
// represent a data bit of one and of zero. In CBMA the tag reflects (chip 1)
// or absorbs (chip 0), so both sequences are over {0, 1}. Per the paper's
// modified 2NC construction — and symmetric OOK signalling in general — the
// zero sequence is the chip-wise negation of the one sequence restricted to
// the code's support.
type Code struct {
	// ID is the index of the code within its Set (== tag index).
	ID int
	// One holds the chips transmitted for a data bit of 1.
	One []byte
	// Zero holds the chips transmitted for a data bit of 0.
	Zero []byte
}

// Length returns the number of chips per data bit.
func (c Code) Length() int { return len(c.One) }

// Discriminant returns the bipolar decision template One − Zero as floats:
// +1 where only One has a chip, −1 where only Zero has a chip, 0 where they
// agree. Correlating the received chip-rate envelope against this template
// and thresholding at zero is the paper's decoding rule ("if the correlation
// with the PN sequence representing '1' is higher than that with the PN
// sequence representing '0' …", §III-B).
func (c Code) Discriminant() []float64 {
	out := make([]float64, len(c.One))
	for i := range c.One {
		out[i] = float64(c.One[i]) - float64(c.Zero[i])
	}
	return out
}

// Spread expands frame bits into the on-air chip stream: bit 1 emits the
// One chips, bit 0 the Zero chips. Both the tag's encoder and the
// receiver's interference-cancellation reconstruction use this.
func (c Code) Spread(bits []byte) []byte {
	out := make([]byte, 0, len(bits)*c.Length())
	for _, b := range bits {
		if b == 1 {
			out = append(out, c.One...)
		} else {
			out = append(out, c.Zero...)
		}
	}
	return out
}

// OnesWeight returns how many chips are active (1) in the bit-one sequence —
// the per-bit transmit energy in chip units.
func (c Code) OnesWeight() int {
	var w int
	for _, b := range c.One {
		w += int(b)
	}
	return w
}

// Validate checks structural invariants: equal lengths, binary chips, and a
// non-empty discriminant (the code must be decodable).
func (c Code) Validate() error {
	if len(c.One) == 0 {
		return fmt.Errorf("pn: code %d is empty", c.ID)
	}
	if len(c.One) != len(c.Zero) {
		return fmt.Errorf("pn: code %d one/zero length mismatch (%d vs %d)",
			c.ID, len(c.One), len(c.Zero))
	}
	differ := false
	for i := range c.One {
		if c.One[i] > 1 || c.Zero[i] > 1 {
			return fmt.Errorf("pn: code %d has non-binary chip at %d", c.ID, i)
		}
		if c.One[i] != c.Zero[i] {
			differ = true
		}
	}
	if !differ {
		return fmt.Errorf("pn: code %d cannot distinguish 1 from 0", c.ID)
	}
	return nil
}

// Set is a family of codes handed out to tags.
type Set struct {
	Family Family
	Codes  []Code
}

// Size returns the number of codes in the set.
func (s *Set) Size() int { return len(s.Codes) }

// ChipLength returns the per-bit chip count, or 0 for an empty set.
func (s *Set) ChipLength() int {
	if len(s.Codes) == 0 {
		return 0
	}
	return s.Codes[0].Length()
}

// Code returns the code with the given index.
func (s *Set) Code(i int) (Code, error) {
	if i < 0 || i >= len(s.Codes) {
		return Code{}, fmt.Errorf("pn: code index %d out of range [0,%d)", i, len(s.Codes))
	}
	return s.Codes[i], nil
}

// Validate checks every code in the set plus cross-code invariants (equal
// lengths, unique one-sequences).
func (s *Set) Validate() error {
	if len(s.Codes) == 0 {
		return fmt.Errorf("pn: empty code set")
	}
	want := s.Codes[0].Length()
	seen := make(map[string]int, len(s.Codes))
	for i, c := range s.Codes {
		if err := c.Validate(); err != nil {
			return err
		}
		if c.Length() != want {
			return fmt.Errorf("pn: code %d length %d differs from %d", i, c.Length(), want)
		}
		key := string(c.One)
		if prev, dup := seen[key]; dup {
			return fmt.Errorf("pn: codes %d and %d are identical", prev, i)
		}
		seen[key] = i
	}
	return nil
}

// NewSet constructs a code set of the requested family sized for n users.
// goldDegree selects the m-sequence degree for Gold/Kasami families (0 picks
// a default of 5, i.e. 31-chip codes as in classic short Gold families).
func NewSet(f Family, n int, goldDegree uint) (*Set, error) {
	if n <= 0 {
		return nil, ErrBadUserNum
	}
	if goldDegree == 0 {
		goldDegree = 5
	}
	switch f {
	case FamilyGold:
		return NewGoldSet(goldDegree, n)
	case Family2NC:
		return New2NCSet(n)
	case FamilyWalsh:
		return NewWalshSet(n)
	case FamilyKasami:
		return NewKasamiSet(goldDegree, n)
	default:
		return nil, fmt.Errorf("pn: unknown code family %v", f)
	}
}

// negate returns the chip-wise complement of a unipolar sequence.
func negate(x []byte) []byte {
	out := make([]byte, len(x))
	for i, b := range x {
		out[i] = 1 - b
	}
	return out
}
