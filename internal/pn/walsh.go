package pn

import "math/bits"

// walshChip returns row r, column c of the naturally-ordered Hadamard
// matrix H_{2^k} as a unipolar chip: 0 ⇒ +1 entry, 1 ⇒ −1 entry. The entry
// is (−1)^{popcount(r AND c)}.
func walshChip(r, c int) byte {
	return byte(bits.OnesCount(uint(r&c)) & 1)
}

// NewWalshSet returns n Walsh–Hadamard codes of length 2^k where 2^k is the
// smallest power of two > n. Row 0 (all-equal chips) is skipped because it
// carries no chip transitions and cannot be distinguished from an unmodulated
// carrier. Walsh codes are perfectly orthogonal only when chip-synchronous,
// which makes them the synchronous-CDMA upper bound the asynchrony ablation
// compares against.
func NewWalshSet(n int) (*Set, error) {
	if n <= 0 {
		return nil, ErrBadUserNum
	}
	size := 2
	for size <= n { // need n rows excluding row 0
		size <<= 1
	}
	codes := make([]Code, n)
	for i := 0; i < n; i++ {
		row := i + 1 // skip the constant row
		one := make([]byte, size)
		for c := 0; c < size; c++ {
			// Map Hadamard +1 → chip 1 (reflect), −1 → chip 0 (absorb).
			one[c] = 1 - walshChip(row, c)
		}
		codes[i] = Code{ID: i, One: one, Zero: negate(one)}
	}
	return &Set{Family: FamilyWalsh, Codes: codes}, nil
}
