package pn

import "fmt"

// preferredPair holds the tap masks of a preferred pair of primitive
// polynomials, whose m-sequences combine into a Gold family with three-valued
// cross-correlation {−1, −t(n), t(n)−2} where t(n) = 2^⌊(n+2)/2⌋ + 1.
type preferredPair struct {
	a, b uint32
}

// preferredPairs lists classic preferred pairs (octal 45/75, 103/147,
// 211/217 in the Gold-code literature) translated to the NewLFSR tap-mask
// convention. Degrees divisible by four admit no preferred pairs.
var preferredPairs = map[uint]preferredPair{
	5: {a: 0b101, b: 0b11101},     // x⁵+x²+1  and  x⁵+x⁴+x³+x²+1
	6: {a: 0b11, b: 0b100111},     // x⁶+x+1   and  x⁶+x⁵+x²+x+1
	7: {a: 0b1001, b: 0b1111},     // x⁷+x³+1  and  x⁷+x³+x²+x+1
	9: {a: 0b10001, b: 0b1011001}, // x⁹+x⁴+1 and x⁹+x⁶+x⁴+x³+1 (octal 1021/1131)
}

// PreferredPair returns the tap masks of a known preferred pair for the
// given degree.
func PreferredPair(degree uint) (uint32, uint32, error) {
	p, ok := preferredPairs[degree]
	if !ok {
		return 0, 0, fmt.Errorf("%w (degree %d)", ErrNoPreferred, degree)
	}
	return p.a, p.b, nil
}

// GoldFamily generates the full Gold family of 2^degree + 1 sequences of
// length 2^degree − 1: the two base m-sequences u and v plus u ⊕ shift(v, k)
// for every cyclic shift k.
func GoldFamily(degree uint) ([][]byte, error) {
	pa, pb, err := PreferredPair(degree)
	if err != nil {
		return nil, err
	}
	u, err := MSequence(degree, pa, 1)
	if err != nil {
		return nil, fmt.Errorf("pn: base sequence u: %w", err)
	}
	v, err := MSequence(degree, pb, 1)
	if err != nil {
		return nil, fmt.Errorf("pn: base sequence v: %w", err)
	}
	period := len(u)
	fam := make([][]byte, 0, period+2)
	fam = append(fam, u, v)
	for k := 0; k < period; k++ {
		fam = append(fam, xorSeq(u, cyclicShift(v, k)))
	}
	return fam, nil
}

// NewGoldSet returns the first n codes of the Gold family of the given
// degree, encoded for OOK backscatter: a data bit of one is the code's chip
// sequence, a data bit of zero is its chip-wise negation.
func NewGoldSet(degree uint, n int) (*Set, error) {
	if n <= 0 {
		return nil, ErrBadUserNum
	}
	fam, err := GoldFamily(degree)
	if err != nil {
		return nil, err
	}
	if n > len(fam) {
		return nil, fmt.Errorf("%w: want %d, family has %d", ErrFamilySize, n, len(fam))
	}
	// Skip the two base m-sequences: the combined u⊕shift(v) members have
	// the guaranteed three-valued pairwise cross-correlation among
	// themselves AND with u, v; using only combined members keeps the set
	// homogeneous. Fall back to including the bases for very large n.
	codes := make([]Code, 0, n)
	start := 2
	if n > len(fam)-2 {
		start = 0
	}
	for i := 0; i < n; i++ {
		one := fam[start+i]
		codes = append(codes, Code{ID: i, One: one, Zero: negate(one)})
	}
	return &Set{Family: FamilyGold, Codes: codes}, nil
}
