// Package pn generates and analyzes the pseudo-noise spreading codes used by
// CBMA tags: maximal-length sequences from linear-feedback shift registers,
// Gold code families built from preferred pairs, the paper's "2NC" codes
// (2N chips for N users, with the bit-0 chip being the negation of the bit-1
// chip, per §VII-B footnote 2), plus Walsh–Hadamard and small-set Kasami
// families for comparison.
//
// Codes are represented in unipolar (0/1) chip form because a backscatter
// tag can only reflect (1) or absorb (0); helpers convert to the bipolar
// (±1) discriminant templates the correlation receiver uses.
package pn

import (
	"errors"
	"fmt"
	"math/bits"
)

// Errors returned by the generators.
var (
	ErrBadDegree   = errors.New("pn: unsupported LFSR degree")
	ErrZeroSeed    = errors.New("pn: LFSR seed must be non-zero")
	ErrNotMaximal  = errors.New("pn: polynomial is not primitive (sequence not maximal length)")
	ErrFamilySize  = errors.New("pn: requested more codes than the family contains")
	ErrBadUserNum  = errors.New("pn: number of users must be positive")
	ErrNoPreferred = errors.New("pn: no preferred pair known for this degree")
)

// LFSR is a Fibonacci linear-feedback shift register over GF(2). The zero
// value is not usable; construct with NewLFSR.
//
// The register implements the recurrence a(t+n) = Σ_{k∈taps} a(t+k), whose
// characteristic polynomial is x^n + Σ_{k∈taps} x^k. The tap mask therefore
// covers exponents 0..n−1 (bit 0 is the constant term, which every
// primitive polynomial has) while the leading x^n term is implicit.
type LFSR struct {
	state uint32
	taps  uint32 // bit k set ⇒ recurrence uses a(t+k); characteristic term x^k
	deg   uint
}

// NewLFSR returns an LFSR of the given degree (2..24) with the recurrence
// tap mask poly (bits 0..degree−1; the x^degree term is implicit). seed is
// the initial register fill and must be non-zero.
func NewLFSR(degree uint, poly uint32, seed uint32) (*LFSR, error) {
	if degree < 2 || degree > 24 {
		return nil, fmt.Errorf("%w: %d", ErrBadDegree, degree)
	}
	mask := uint32(1)<<degree - 1
	if seed&mask == 0 {
		return nil, ErrZeroSeed
	}
	return &LFSR{state: seed & mask, taps: poly & mask, deg: degree}, nil
}

// Next advances the register one step and returns the output bit (the bit
// shifted out of position 0).
func (l *LFSR) Next() byte {
	out := byte(l.state & 1)
	fb := bits.OnesCount32(l.state&l.taps) & 1
	l.state >>= 1
	l.state |= uint32(fb) << (l.deg - 1)
	return out
}

// State returns the current register contents (for diagnostics and tests).
func (l *LFSR) State() uint32 { return l.state }

// primitivePolys maps an LFSR degree to the tap mask of a known primitive
// polynomial, in the NewLFSR convention (bit k ⇒ term x^k, leading term
// implicit, bit 0 = constant term).
var primitivePolys = map[uint]uint32{
	2:  0b11,      // x² + x + 1
	3:  0b11,      // x³ + x + 1
	4:  0b11,      // x⁴ + x + 1
	5:  0b101,     // x⁵ + x² + 1
	6:  0b11,      // x⁶ + x + 1
	7:  0b1001,    // x⁷ + x³ + 1
	8:  0b1110001, // x⁸ + x⁶ + x⁵ + x⁴ + 1
	9:  0b100001,  // x⁹ + x⁵ + 1
	10: 0b1001,    // x¹⁰ + x³ + 1
	11: 0b101,     // x¹¹ + x² + 1
}

// PrimitivePoly returns the tap mask of a known primitive polynomial of the
// given degree.
func PrimitivePoly(degree uint) (uint32, error) {
	p, ok := primitivePolys[degree]
	if !ok {
		return 0, fmt.Errorf("%w: %d", ErrBadDegree, degree)
	}
	return p, nil
}

// MSequence generates one period (2^degree − 1 chips) of the maximal-length
// sequence produced by the given polynomial and seed. It verifies maximality
// by checking that the register returns to the seed state after exactly one
// period, returning ErrNotMaximal otherwise.
func MSequence(degree uint, poly uint32, seed uint32) ([]byte, error) {
	l, err := NewLFSR(degree, poly, seed)
	if err != nil {
		return nil, err
	}
	period := 1<<degree - 1
	out := make([]byte, period)
	for i := range out {
		out[i] = l.Next()
	}
	if l.State() != seed&(uint32(1)<<degree-1) {
		return nil, ErrNotMaximal
	}
	return out, nil
}

// cyclicShift returns x rotated left by k positions (chip k becomes chip 0).
func cyclicShift(x []byte, k int) []byte {
	n := len(x)
	if n == 0 {
		return nil
	}
	k = ((k % n) + n) % n
	out := make([]byte, n)
	copy(out, x[k:])
	copy(out[n-k:], x[:k])
	return out
}

// xorSeq returns the element-wise XOR of two equal-length chip sequences.
func xorSeq(a, b []byte) []byte {
	out := make([]byte, len(a))
	for i := range a {
		out[i] = a[i] ^ b[i]
	}
	return out
}

// Decimate returns the sequence x[0], x[q], x[2q], … taken cyclically for
// one period of the source, i.e. len(x) output chips. Kasami-set
// construction decimates an m-sequence by q = 2^(n/2) + 1.
func Decimate(x []byte, q int) []byte {
	n := len(x)
	if n == 0 || q <= 0 {
		return nil
	}
	out := make([]byte, n)
	for i := range out {
		out[i] = x[(i*q)%n]
	}
	return out
}
