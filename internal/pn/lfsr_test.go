package pn

import (
	"testing"
	"testing/quick"
)

func TestNewLFSRRejectsBadDegree(t *testing.T) {
	for _, d := range []uint{0, 1, 25, 100} {
		if _, err := NewLFSR(d, 0b11, 1); err == nil {
			t.Errorf("degree %d: want error", d)
		}
	}
}

func TestNewLFSRRejectsZeroSeed(t *testing.T) {
	if _, err := NewLFSR(5, 0b101, 0); err != ErrZeroSeed {
		t.Fatalf("got %v, want ErrZeroSeed", err)
	}
	// A seed with bits only above the register width is effectively zero.
	if _, err := NewLFSR(5, 0b101, 1<<10); err != ErrZeroSeed {
		t.Fatalf("got %v, want ErrZeroSeed", err)
	}
}

func TestMSequencePeriodAllDegrees(t *testing.T) {
	for deg := uint(2); deg <= 11; deg++ {
		poly, err := PrimitivePoly(deg)
		if err != nil {
			t.Fatalf("degree %d: %v", deg, err)
		}
		seq, err := MSequence(deg, poly, 1)
		if err != nil {
			t.Fatalf("degree %d: %v", deg, err)
		}
		if want := 1<<deg - 1; len(seq) != want {
			t.Errorf("degree %d: length %d, want %d", deg, len(seq), want)
		}
	}
}

func TestMSequenceBalanceProperty(t *testing.T) {
	// An m-sequence has exactly 2^(n-1) ones and 2^(n-1)−1 zeros.
	for deg := uint(3); deg <= 11; deg++ {
		poly, _ := PrimitivePoly(deg)
		seq, err := MSequence(deg, poly, 1)
		if err != nil {
			t.Fatal(err)
		}
		if b := Balance(seq); b != 1 {
			t.Errorf("degree %d: balance %d, want 1", deg, b)
		}
	}
}

func TestMSequenceIdealAutocorrelation(t *testing.T) {
	// Periodic autocorrelation of an m-sequence is −1 at every non-zero lag.
	poly, _ := PrimitivePoly(7)
	seq, err := MSequence(7, poly, 1)
	if err != nil {
		t.Fatal(err)
	}
	ac, err := PeriodicCrossCorrelation(seq, seq)
	if err != nil {
		t.Fatal(err)
	}
	if ac[0] != len(seq) {
		t.Errorf("zero lag %d, want %d", ac[0], len(seq))
	}
	for k, v := range ac[1:] {
		if v != -1 {
			t.Fatalf("lag %d: %d, want -1", k+1, v)
		}
	}
}

func TestMSequenceRunProperty(t *testing.T) {
	// Non-circular run property for degree 5 (period 31): of the 16 runs,
	// 8 have length 1, 4 length 2, 2 length 3, 1 length 4 (zeros),
	// 1 length 5 (ones). Counting non-circularly can split one run, so
	// verify the dominant structure loosely: length-1 runs are the most
	// common and long runs are rare.
	poly, _ := PrimitivePoly(5)
	seq, err := MSequence(5, poly, 1)
	if err != nil {
		t.Fatal(err)
	}
	runs := RunLengthCounts(seq)
	if runs[1] < runs[2] || runs[2] < runs[3] {
		t.Errorf("run histogram not geometric-ish: %v", runs)
	}
}

func TestMSequenceNonMaximalPolyRejected(t *testing.T) {
	// x⁴ + x² + 1 = (x²+x+1)² is not primitive — taps {2,0}.
	if _, err := MSequence(4, 0b101, 1); err != ErrNotMaximal {
		t.Fatalf("got %v, want ErrNotMaximal", err)
	}
}

func TestMSequenceSeedInvariance(t *testing.T) {
	// Different seeds produce cyclic shifts of the same sequence.
	poly, _ := PrimitivePoly(5)
	a, err := MSequence(5, poly, 1)
	if err != nil {
		t.Fatal(err)
	}
	b, err := MSequence(5, poly, 0b10110)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for k := 0; k < len(a); k++ {
		if string(cyclicShift(a, k)) == string(b) {
			found = true
			break
		}
	}
	if !found {
		t.Error("seeded sequence is not a cyclic shift of the canonical one")
	}
}

func TestPrimitivePolyUnknownDegree(t *testing.T) {
	if _, err := PrimitivePoly(12); err == nil {
		t.Fatal("want error for unlisted degree")
	}
}

func TestCyclicShiftProperties(t *testing.T) {
	f := func(seed int64) bool {
		x := []byte{1, 0, 1, 1, 0, 0, 1}
		k := int(seed%100+100) % 100
		shifted := cyclicShift(x, k)
		back := cyclicShift(shifted, len(x)-k%len(x))
		return string(back) == string(x)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
	if got := cyclicShift(nil, 3); got != nil {
		t.Error("shift of empty sequence must be nil")
	}
	// Negative shifts wrap.
	x := []byte{1, 2, 3}
	if got := cyclicShift(x, -1); got[0] != 3 {
		t.Errorf("negative shift: %v", got)
	}
}

func TestXorSeqSelfIsZero(t *testing.T) {
	x := []byte{1, 0, 1, 1}
	z := xorSeq(x, x)
	for i, b := range z {
		if b != 0 {
			t.Fatalf("chip %d = %d, want 0", i, b)
		}
	}
}

func TestDecimate(t *testing.T) {
	x := []byte{0, 1, 2, 3, 4, 5, 6}
	got := Decimate(x, 2)
	want := []byte{0, 2, 4, 6, 1, 3, 5}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("chip %d = %d, want %d", i, got[i], want[i])
		}
	}
	if Decimate(nil, 2) != nil {
		t.Error("empty input must return nil")
	}
	if Decimate(x, 0) != nil {
		t.Error("non-positive step must return nil")
	}
}

func TestLFSRDeterminism(t *testing.T) {
	mk := func() *LFSR {
		l, err := NewLFSR(7, 0b1001, 0x55)
		if err != nil {
			t.Fatal(err)
		}
		return l
	}
	a, b := mk(), mk()
	for i := 0; i < 500; i++ {
		if a.Next() != b.Next() {
			t.Fatalf("divergence at step %d", i)
		}
	}
}
