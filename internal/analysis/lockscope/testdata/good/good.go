// Package good holds the accepted locking patterns: short pure critical
// sections, non-blocking selects under a lock, early conditional unlocks,
// blocking work moved outside the held region, per-literal analysis, and a
// reviewed suppression.
package good

import (
	"sync"
	"time"
)

type hub struct {
	mu     sync.Mutex
	rw     sync.RWMutex
	subs   map[chan int]struct{}
	closed bool
}

// pureSection: map surgery under the lock is fine.
func (h *hub) pureSection(ch chan int) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.subs == nil {
		h.subs = make(map[chan int]struct{})
	}
	h.subs[ch] = struct{}{}
}

// nonBlockingFanout: the Broadcaster pattern — sends under the lock are
// guarded by a default case, so a slow consumer is dropped, not waited on.
func (h *hub) nonBlockingFanout(v int) {
	h.mu.Lock()
	defer h.mu.Unlock()
	for ch := range h.subs {
		select {
		case ch <- v:
		default:
			delete(h.subs, ch)
			close(ch)
		}
	}
}

// earlyUnlock: conditional release ends the critical section; the receive
// after it runs unlocked.
func (h *hub) earlyUnlock(in chan int) int {
	h.mu.Lock()
	if h.closed {
		h.mu.Unlock()
		return 0
	}
	h.mu.Unlock()
	return <-in
}

// readThenBlock: the blocking wait happens after the read lock is dropped.
func (h *hub) readThenBlock(done chan struct{}) int {
	h.rw.RLock()
	n := len(h.subs)
	h.rw.RUnlock()
	<-done
	return n
}

// literalScope: the goroutine's own blocking receive is not charged to the
// spawner's critical section.
func (h *hub) literalScope(in chan int) {
	h.mu.Lock()
	defer h.mu.Unlock()
	go func() {
		<-in
	}()
}

// suppressed: a reviewed waiver keeps a deliberate sleep-under-lock.
func (h *hub) suppressed() {
	h.mu.Lock()
	defer h.mu.Unlock()
	time.Sleep(time.Millisecond) //cbma:allow lockscope fixture demonstrates the suppression directive
}
