// Package bad exercises every lockscope finding: locks held across channel
// operations, blocking selects, sleeps, WaitGroup waits, I/O and callbacks,
// plus a Lock with no release at all.
package bad

import (
	"fmt"
	"io"
	"sync"
	"time"
)

type hub struct {
	mu   sync.Mutex
	rw   sync.RWMutex
	subs []chan int
	out  io.Writer
	hook func()
	wg   sync.WaitGroup
}

func (h *hub) sendHeld(v int) {
	h.mu.Lock()
	defer h.mu.Unlock()
	for _, ch := range h.subs {
		ch <- v // want "channel send while holding h.mu"
	}
}

func (h *hub) recvHeld(in chan int) int {
	h.mu.Lock()
	v := <-in // want "channel receive while holding h.mu"
	h.mu.Unlock()
	return v
}

func (h *hub) selectHeld(in chan int) {
	h.mu.Lock()
	defer h.mu.Unlock()
	select { // want "blocking select while holding h.mu"
	case v := <-in:
		_ = v
	case h.subs[0] <- 1:
	}
}

func (h *hub) sleepHeld() {
	h.mu.Lock()
	time.Sleep(time.Millisecond) // want "call to time.Sleep while holding h.mu"
	h.mu.Unlock()
}

func (h *hub) waitHeld() {
	h.rw.RLock()
	defer h.rw.RUnlock()
	h.wg.Wait() // want "call to \\(\\*sync.WaitGroup\\).Wait while holding h.rw"
}

func (h *hub) printHeld() {
	h.mu.Lock()
	defer h.mu.Unlock()
	fmt.Fprintf(h.out, "held\n") // want "I/O via fmt.Fprintf while holding h.mu"
}

func (h *hub) writeHeld(p []byte) {
	h.mu.Lock()
	defer h.mu.Unlock()
	_, _ = h.out.Write(p) // want "interface I/O call Write while holding h.mu"
}

func (h *hub) callbackHeld() {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.hook() // want "call through function value hook while holding h.mu"
}

// lockNoUnlock locks on behalf of its caller — the *Locked convention is
// the other way around, so this is a finding.
func (h *hub) lockNoUnlock() { // helper-locks are rule 1 findings
	h.mu.Lock() // want "locked without a matching or deferred unlock"
	h.subs = nil
}
