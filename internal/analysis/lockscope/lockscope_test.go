package lockscope_test

import (
	"testing"

	"cbma/internal/analysis/analysistest"
	"cbma/internal/analysis/lockscope"
)

func TestBadFixture(t *testing.T) {
	analysistest.Run(t, "testdata/bad", lockscope.Analyzer)
}

func TestGoodFixture(t *testing.T) {
	analysistest.Run(t, "testdata/good", lockscope.Analyzer)
}
