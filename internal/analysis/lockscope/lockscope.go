// Package lockscope enforces lock discipline in the long-lived packages:
// a sync.Mutex/RWMutex critical section must be short and non-blocking,
// because everything the service layer does — batch intake, broadcaster
// fan-out, cache probes — serializes behind these locks.
//
// Two rules, both per function body (literals analyzed separately):
//
//  1. Every Lock/RLock must have a matching Unlock/RUnlock on the same
//     receiver later in the function, or a deferred one. A Lock whose
//     release lives in a different function (or nowhere) is reported.
//  2. While a lock is held — from the Lock call to its matching plain
//     unlock, or to the end of the function for a deferred unlock — no
//     blocking operation may appear: channel sends/receives, selects
//     without a default, time.Sleep, (*sync.WaitGroup).Wait, direct I/O
//     (fmt.Fprint* or interface-method Read/Write/Flush/ReadFrom/WriteTo),
//     and calls through function-typed values (user callbacks the lock
//     holder cannot vouch for). Channel operations inside a select that
//     has a default case are non-blocking and pass.
//
// The analysis is lexical, not path-sensitive: a conditional early unlock
// ends the tracked region at its position (under-approximating the held
// range on other paths), and a helper that locks on behalf of its caller
// (the *Locked convention is the reverse: callers hold, helpers don't)
// is rule 1's finding unless waivered. Nested function literals are
// skipped — they do not run under the enclosing critical section.
package lockscope

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"cbma/internal/analysis/framework"
)

// Analyzer is the lockscope check.
var Analyzer = &framework.Analyzer{
	Name: "lockscope",
	Doc:  "no mutex held across blocking operations; every Lock needs a matching or deferred Unlock",
	Run:  run,
}

// scope is the service layer's concurrency surface. Packages outside the
// cbma module (fixtures) are always in scope.
var scope = []string{
	"cbma/internal/obs",
	"cbma/internal/serve",
	"cbma/cmd/cbmad",
}

func inScope(path string) bool {
	if !strings.HasPrefix(path, "cbma") {
		return true // analyzer fixtures
	}
	for _, p := range scope {
		if path == p || strings.HasPrefix(path, p+"/") {
			return true
		}
	}
	return false
}

// lockKind distinguishes the write and read halves of an RWMutex (and the
// single pair of a plain Mutex).
type lockKind int

const (
	writeLock lockKind = iota
	readLock
)

// lockEvent is one Lock/Unlock-family call found in a function body.
type lockEvent struct {
	pos      token.Pos
	recv     string // receiver expression, rendered (e.g. "s.mu")
	kind     lockKind
	acquire  bool
	deferred bool
}

func run(pass *framework.Pass) error {
	if !inScope(pass.Pkg.Path()) {
		return nil
	}
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkBody(pass, fd.Body)
			// Function literals get their own independent analysis.
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				if lit, ok := n.(*ast.FuncLit); ok {
					checkBody(pass, lit.Body)
				}
				return true
			})
		}
	}
	return nil
}

// checkBody applies both rules to one function body, ignoring nested
// literals (they execute under their own stack, not this critical section).
func checkBody(pass *framework.Pass, body *ast.BlockStmt) {
	events := collectLockEvents(pass, body)
	if len(events) == 0 {
		return
	}
	for _, ev := range events {
		if !ev.acquire || ev.deferred {
			continue
		}
		end, ok := matchRelease(events, ev, body.End())
		if !ok {
			pass.Reportf(ev.pos, "%s locked without a matching or deferred unlock in this function (helpers locking for their caller are reported; restructure or waive)", ev.recv)
			continue
		}
		reportBlocking(pass, body, ev, end)
	}
}

// collectLockEvents finds every (R)Lock/(R)Unlock call directly in the body.
func collectLockEvents(pass *framework.Pass, body *ast.BlockStmt) []lockEvent {
	// Defer calls are recorded once, as deferred events — not again when the
	// walk reaches the call node itself.
	deferCalls := map[*ast.CallExpr]bool{}
	walkShallow(body, func(n ast.Node) {
		if d, ok := n.(*ast.DeferStmt); ok {
			deferCalls[d.Call] = true
		}
	})
	var events []lockEvent
	walkShallow(body, func(n ast.Node) {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return
		}
		deferred := deferCalls[call]
		sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
		if !ok {
			return
		}
		fn, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
		if !ok {
			return
		}
		var kind lockKind
		var acquire bool
		switch fn.FullName() {
		case "(*sync.Mutex).Lock", "(*sync.RWMutex).Lock":
			kind, acquire = writeLock, true
		case "(*sync.Mutex).Unlock", "(*sync.RWMutex).Unlock":
			kind, acquire = writeLock, false
		case "(*sync.RWMutex).RLock":
			kind, acquire = readLock, true
		case "(*sync.RWMutex).RUnlock":
			kind, acquire = readLock, false
		default:
			return
		}
		events = append(events, lockEvent{
			pos:      call.Pos(),
			recv:     types.ExprString(sel.X),
			kind:     kind,
			acquire:  acquire,
			deferred: deferred,
		})
	})
	return events
}

// matchRelease finds where the critical section opened by acq ends: the
// first plain matching unlock after it, or bodyEnd when a deferred unlock
// exists. Reports ok=false when neither does.
func matchRelease(events []lockEvent, acq lockEvent, bodyEnd token.Pos) (token.Pos, bool) {
	for _, ev := range events {
		if !ev.acquire && !ev.deferred && ev.kind == acq.kind && ev.recv == acq.recv && ev.pos > acq.pos {
			return ev.pos, true
		}
	}
	for _, ev := range events {
		if !ev.acquire && ev.deferred && ev.kind == acq.kind && ev.recv == acq.recv {
			return bodyEnd, true
		}
	}
	return token.NoPos, false
}

// reportBlocking scans the held region for blocking operations. A select
// with a default case is non-blocking by construction, so it and its comm
// clauses are exempted up front; its case bodies still run under the lock
// and stay in the scan.
func reportBlocking(pass *framework.Pass, body *ast.BlockStmt, acq lockEvent, end token.Pos) {
	exempt := map[ast.Node]bool{}
	walkShallow(body, func(n ast.Node) {
		sel, ok := n.(*ast.SelectStmt)
		if !ok {
			return
		}
		hasDefault := false
		for _, clause := range sel.Body.List {
			if cc, ok := clause.(*ast.CommClause); ok && cc.Comm == nil {
				hasDefault = true
			}
		}
		if hasDefault {
			exempt[sel] = true
		}
		// Comm clauses never report on their own: a blocking select is one
		// finding at the select, and a defaulted select's comms don't block.
		for _, clause := range sel.Body.List {
			cc, ok := clause.(*ast.CommClause)
			if !ok || cc.Comm == nil {
				continue
			}
			switch comm := cc.Comm.(type) {
			case *ast.SendStmt:
				exempt[comm] = true
			case *ast.ExprStmt:
				if u, ok := comm.X.(*ast.UnaryExpr); ok {
					exempt[u] = true
				}
			case *ast.AssignStmt:
				for _, rhs := range comm.Rhs {
					if u, ok := rhs.(*ast.UnaryExpr); ok {
						exempt[u] = true
					}
				}
			}
		}
	})
	walkShallow(body, func(n ast.Node) {
		if n.Pos() <= acq.pos || n.Pos() >= end || exempt[n] {
			return
		}
		switch n := n.(type) {
		case *ast.SelectStmt:
			pass.Reportf(n.Pos(), "blocking select while holding %s (locked at %s)", acq.recv, pass.Fset.Position(acq.pos))
		case *ast.SendStmt:
			pass.Reportf(n.Pos(), "channel send while holding %s (locked at %s)", acq.recv, pass.Fset.Position(acq.pos))
		case *ast.UnaryExpr:
			if n.Op == token.ARROW {
				pass.Reportf(n.Pos(), "channel receive while holding %s (locked at %s)", acq.recv, pass.Fset.Position(acq.pos))
			}
		case *ast.CallExpr:
			if why := blockingCall(pass, n); why != "" {
				pass.Reportf(n.Pos(), "%s while holding %s (locked at %s)", why, acq.recv, pass.Fset.Position(acq.pos))
			}
		}
	})
}

// blockingCall classifies a call as blocking, returning a description or "".
func blockingCall(pass *framework.Pass, call *ast.CallExpr) string {
	fun := ast.Unparen(call.Fun)
	var id *ast.Ident
	switch fun := fun.(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return ""
	}
	switch obj := pass.TypesInfo.Uses[id].(type) {
	case *types.Func:
		full := obj.FullName()
		switch full {
		case "time.Sleep", "(*sync.WaitGroup).Wait":
			// sync.Cond.Wait is deliberately absent: it *requires* the lock
			// and releases it internally.
			return "call to " + full
		}
		if obj.Pkg() != nil && obj.Pkg().Path() == "fmt" && strings.HasPrefix(obj.Name(), "Fprint") {
			return "I/O via fmt." + obj.Name()
		}
		// Interface-method I/O: the receiver's concrete behavior is unknown,
		// so a Read/Write under a lock is a blocking hazard.
		if sig, ok := obj.Type().(*types.Signature); ok && sig.Recv() != nil {
			if types.IsInterface(sig.Recv().Type()) {
				switch obj.Name() {
				case "Read", "Write", "ReadFrom", "WriteTo", "Flush":
					return "interface I/O call " + obj.Name()
				}
			}
		}
	case *types.Var:
		// A call through a function value: a callback the critical section
		// cannot vouch for.
		if _, ok := obj.Type().Underlying().(*types.Signature); ok {
			return "call through function value " + id.Name
		}
	}
	return ""
}

// walkShallow visits every node in the body except nested function literals.
func walkShallow(body *ast.BlockStmt, f func(ast.Node)) {
	ast.Inspect(body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		if n != nil {
			f(n)
		}
		return true
	})
}
