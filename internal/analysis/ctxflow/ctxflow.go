// Package ctxflow enforces context-propagation discipline: cancellation
// must flow from the daemon's shutdown path through every layer down to the
// engine, with no gaps where a fresh root context silently detaches a
// subtree from its caller's lifetime.
//
// Three rules over the sim/service scope:
//
//  1. No context.Background()/context.TODO() calls outside package main and
//     test files. Legitimate roots — public non-context convenience
//     entrypoints, a daemon-lifetime base context — carry a reviewed
//     `//cbma:allow ctxflow <reason>` waiver, which is exactly the audit
//     trail the rule exists to produce.
//  2. A function that accepts a context.Context must thread it: calling a
//     blocking sibling `X()` when `XContext(ctx, ...)` exists on the same
//     receiver or in the same package drops the caller's cancellation on
//     the floor and is reported.
//  3. No context.Context stored in a struct field (contexts are call-scoped
//     by contract; a stored one outlives its request unnoticed). The
//     audited seams — batch.Job's queued-submission context, the daemon's
//     base context — carry waivers.
package ctxflow

import (
	"go/ast"
	"go/types"
	"strings"

	"cbma/internal/analysis/framework"
)

// Analyzer is the ctxflow check.
var Analyzer = &framework.Analyzer{
	Name: "ctxflow",
	Doc:  "context.Context must thread through, not restart at Background/TODO or hide in struct fields",
	Run:  run,
}

// scope covers every layer cancellation flows through: engine, campaign,
// telemetry, service, batcher, daemon. Packages outside the cbma module
// (fixtures) are always in scope.
var scope = []string{
	"cbma/internal/sim",
	"cbma/internal/core",
	"cbma/internal/obs",
	"cbma/internal/serve",
	"cbma/cmd/cbmad",
}

func inScope(path string) bool {
	if !strings.HasPrefix(path, "cbma") {
		return true // analyzer fixtures
	}
	for _, p := range scope {
		if path == p || strings.HasPrefix(path, p+"/") {
			return true
		}
	}
	return false
}

func run(pass *framework.Pass) error {
	if !inScope(pass.Pkg.Path()) {
		return nil
	}
	isMain := pass.Pkg.Name() == "main"
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				if !isMain {
					checkRootCall(pass, n)
				}
			case *ast.FuncDecl:
				if ctxParam(pass, n) != nil {
					checkThreading(pass, n)
				}
			case *ast.StructType:
				checkStoredContext(pass, n)
			}
			return true
		})
	}
	return nil
}

// checkRootCall flags context.Background()/TODO() outside main.
func checkRootCall(pass *framework.Pass, call *ast.CallExpr) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return
	}
	fn, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
	if !ok {
		return
	}
	switch fn.FullName() {
	case "context.Background", "context.TODO":
		pass.Reportf(call.Pos(),
			"context.%s() starts a fresh root outside main: thread the caller's ctx, or waive the root with //cbma:allow ctxflow <reason>",
			fn.Name())
	}
}

// ctxParam returns the declared context.Context parameter identifier, if
// the function takes one.
func ctxParam(pass *framework.Pass, fd *ast.FuncDecl) *ast.Ident {
	if fd.Type.Params == nil {
		return nil
	}
	for _, field := range fd.Type.Params.List {
		if t := pass.TypesInfo.TypeOf(field.Type); t != nil && isContextType(t) {
			if len(field.Names) > 0 {
				return field.Names[0]
			}
		}
	}
	return nil
}

func isContextType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "context" && obj.Name() == "Context"
}

// checkThreading reports calls to X() inside a ctx-carrying function when a
// sibling XContext exists: the ctx-less variant discards cancellation.
func checkThreading(pass *framework.Pass, fd *ast.FuncDecl) {
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		var id *ast.Ident
		switch fun := ast.Unparen(call.Fun).(type) {
		case *ast.Ident:
			id = fun
		case *ast.SelectorExpr:
			id = fun.Sel
		default:
			return true
		}
		fn, ok := pass.TypesInfo.Uses[id].(*types.Func)
		if !ok || strings.HasSuffix(fn.Name(), "Context") {
			return true
		}
		// Does the callee already take a ctx? Then threading is the callee's
		// argument, checked by rule 1 at any Background() passed in.
		if sig, ok := fn.Type().(*types.Signature); ok && sigTakesContext(sig) {
			return true
		}
		if sibling := contextSibling(fn); sibling != "" {
			pass.Reportf(call.Pos(),
				"%s drops this function's ctx: call %s with it instead", fn.Name(), sibling)
		}
		return true
	})
}

func sigTakesContext(sig *types.Signature) bool {
	params := sig.Params()
	return params != nil && params.Len() > 0 && isContextType(params.At(0).Type())
}

// contextSibling finds an XContext companion of fn — on the same receiver's
// method set for methods, in the declaring package's scope for functions —
// whose first parameter is a context.Context.
func contextSibling(fn *types.Func) string {
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return ""
	}
	want := fn.Name() + "Context"
	if recv := sig.Recv(); recv != nil {
		t := recv.Type()
		if ptr, ok := t.(*types.Pointer); ok {
			t = ptr.Elem()
		}
		named, ok := t.(*types.Named)
		if !ok {
			return ""
		}
		for i := 0; i < named.NumMethods(); i++ {
			m := named.Method(i)
			if m.Name() == want && sigTakesContext(m.Type().(*types.Signature)) {
				return want
			}
		}
		return ""
	}
	if fn.Pkg() == nil {
		return ""
	}
	if obj, ok := fn.Pkg().Scope().Lookup(want).(*types.Func); ok {
		if sigTakesContext(obj.Type().(*types.Signature)) {
			return want
		}
	}
	return ""
}

// checkStoredContext flags context.Context struct fields.
func checkStoredContext(pass *framework.Pass, st *ast.StructType) {
	for _, field := range st.Fields.List {
		if t := pass.TypesInfo.TypeOf(field.Type); t != nil && isContextType(t) {
			pass.Reportf(field.Pos(),
				"context.Context stored in a struct outlives its caller: pass it per call, or waive the audited seam with //cbma:allow ctxflow <reason>")
		}
	}
}
