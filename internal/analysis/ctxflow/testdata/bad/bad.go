// Package bad exercises every ctxflow finding: fresh roots outside main,
// a ctx-carrying function calling the ctx-less sibling, and contexts
// stored in struct fields.
package bad

import "context"

// freshRoots mints new root contexts in library code.
func freshRoots() {
	ctx := context.Background() // want "context.Background\\(\\) starts a fresh root outside main"
	_ = ctx
	_ = context.TODO() // want "context.TODO\\(\\) starts a fresh root outside main"
}

// Fetch is the ctx-less convenience form.
func Fetch() int { return 1 }

// FetchContext is the cancellable form every ctx holder should call.
func FetchContext(ctx context.Context) int {
	<-ctx.Done()
	return 1
}

// dropsCtx holds a ctx but calls the sibling that cannot observe it.
func dropsCtx(ctx context.Context) int {
	return Fetch() // want "Fetch drops this function's ctx: call FetchContext with it instead"
}

type store struct{}

// Get is the ctx-less method form.
func (s *store) Get() int { return 1 }

// GetContext is the cancellable method form.
func (s *store) GetContext(ctx context.Context) int {
	<-ctx.Done()
	return 1
}

// dropsCtxMethod does the same through a method receiver.
func dropsCtxMethod(ctx context.Context, s *store) int {
	return s.Get() // want "Get drops this function's ctx: call GetContext with it instead"
}

// holder parks a request context in a field, detaching it from any call.
type holder struct {
	ctx context.Context // want "context.Context stored in a struct outlives its caller"
}
