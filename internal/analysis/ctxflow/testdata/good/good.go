// Package good holds the accepted context-flow patterns: threading the
// caller's ctx, calling the Context sibling, waivered roots and seams,
// and ctx-less calls when no cancellable sibling exists.
package good

import "context"

// Fetch / FetchContext form the convenience pair.
func Fetch() int {
	//cbma:allow ctxflow public convenience entrypoint roots its own context
	return FetchContext(context.Background())
}

// FetchContext is the cancellable form.
func FetchContext(ctx context.Context) int {
	<-ctx.Done()
	return 1
}

// threads passes its ctx into the Context sibling.
func threads(ctx context.Context) int {
	return FetchContext(ctx)
}

// plain has no Context sibling, so a ctx holder may call it freely.
func plain() int { return 2 }

func callsPlain(ctx context.Context) int {
	_ = ctx
	return plain()
}

// waivedRoot documents a deliberate detach.
func waivedRoot() context.Context {
	return context.Background() //cbma:allow ctxflow daemon-lifetime base context, reviewed
}

// seam is an audited stored-context seam.
type seam struct {
	ctx context.Context //cbma:allow ctxflow queued-submission seam, consumed once by the worker
}
