package ctxflow_test

import (
	"testing"

	"cbma/internal/analysis/analysistest"
	"cbma/internal/analysis/ctxflow"
)

func TestBadFixture(t *testing.T) {
	analysistest.Run(t, "testdata/bad", ctxflow.Analyzer)
}

func TestGoodFixture(t *testing.T) {
	analysistest.Run(t, "testdata/good", ctxflow.Analyzer)
}
