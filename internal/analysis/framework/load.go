package framework

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"sort"
	"strconv"
)

// The loader typechecks the target packages and their whole dependency
// closure from source, using only the standard library: `go list -deps
// -json` supplies the platform-filtered file lists in dependency order, and
// go/types checks each package against the packages checked before it.
// Dependency packages are checked with IgnoreFuncBodies (their exported API
// is all the target packages need), so the cost stays close to a plain
// build. This replaces golang.org/x/tools/go/packages, which the module
// deliberately does not depend on.

// Program is a loaded and typechecked set of packages.
type Program struct {
	Fset *token.FileSet
	// Roots are the pattern-matched packages, in `go list` order; analyzers
	// run over these only.
	Roots []*PackageInfo
	// decls indexes every parsed function declaration of the program
	// (dependencies included) by its type-checker object.
	decls map[*types.Func]*ast.FuncDecl
}

// PackageInfo is one typechecked package with its syntax.
type PackageInfo struct {
	Path  string
	Types *types.Package
	Info  *types.Info
	Files []*ast.File
}

// FuncDecl resolves a function object to its declaration, or nil.
func (p *Program) FuncDecl(fn *types.Func) *ast.FuncDecl { return p.decls[fn] }

// Run executes the analyzers over every root package and returns all
// surviving diagnostics sorted by position.
func (p *Program) Run(analyzers []*Analyzer) ([]Diagnostic, error) {
	var out []Diagnostic
	for _, pkg := range p.Roots {
		ds, err := runAnalyzers(analyzers, p.Fset, pkg.Files, pkg.Types, pkg.Info, p.FuncDecl)
		if err != nil {
			return nil, err
		}
		out = append(out, ds...)
	}
	sortDiagnostics(out)
	return out, nil
}

// listedPackage is the subset of `go list -json` output the loader uses.
type listedPackage struct {
	ImportPath string
	Dir        string
	Standard   bool
	DepOnly    bool
	GoFiles    []string
	CgoFiles   []string
	Error      *struct{ Err string }
}

// goList runs `go list -deps -json` in dir over the patterns and returns the
// packages in dependency order (dependencies before dependents).
func goList(dir string, patterns []string) ([]*listedPackage, error) {
	args := append([]string{"list", "-deps", "-json"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	// Cgo-free file lists: the typechecker cannot process import "C"
	// packages, and no package of this module needs them.
	cmd.Env = append(os.Environ(), "CGO_ENABLED=0")
	var stdout, stderr bytes.Buffer
	cmd.Stdout = &stdout
	cmd.Stderr = &stderr
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("go list %v: %w\n%s", patterns, err, stderr.String())
	}
	var pkgs []*listedPackage
	dec := json.NewDecoder(&stdout)
	for {
		var p listedPackage
		if err := dec.Decode(&p); err != nil {
			if errors.Is(err, io.EOF) {
				break
			}
			return nil, fmt.Errorf("decoding go list output: %w", err)
		}
		pkgs = append(pkgs, &p)
	}
	return pkgs, nil
}

// loader typechecks listed packages in order, acting as its own
// types.Importer backed by the packages already checked.
type loader struct {
	fset  *token.FileSet
	pkgs  map[string]*types.Package
	decls map[*types.Func]*ast.FuncDecl
}

func newLoader() *loader {
	return &loader{
		fset:  token.NewFileSet(),
		pkgs:  make(map[string]*types.Package),
		decls: make(map[*types.Func]*ast.FuncDecl),
	}
}

// Import implements types.Importer over the already-checked packages.
func (l *loader) Import(path string) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if p, ok := l.pkgs[path]; ok {
		return p, nil
	}
	// Standard-library vendored dependencies (net/http → crypto/tls →
	// golang.org/x/crypto/…) are listed by `go list` under a vendor/ prefix
	// but imported by their unvendored path.
	if p, ok := l.pkgs["vendor/"+path]; ok {
		return p, nil
	}
	return nil, fmt.Errorf("package %q not loaded (dependency order violated?)", path)
}

func (l *loader) parseFiles(dir string, names []string) ([]*ast.File, error) {
	files := make([]*ast.File, 0, len(names))
	for _, name := range names {
		f, err := parser.ParseFile(l.fset, filepath.Join(dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	return files, nil
}

// check typechecks one package from its parsed files. When full is false,
// function bodies are skipped (sufficient for dependencies).
func (l *loader) check(path string, files []*ast.File, full bool) (*types.Package, *types.Info, error) {
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	conf := types.Config{
		Importer:         l,
		IgnoreFuncBodies: !full,
		Sizes:            types.SizesFor("gc", runtime.GOARCH),
	}
	pkg, err := conf.Check(path, l.fset, files, info)
	if err != nil {
		return nil, nil, fmt.Errorf("typechecking %s: %w", path, err)
	}
	l.pkgs[path] = pkg
	l.indexDecls(files, info)
	return pkg, info, nil
}

// indexDecls records every function declaration's object → syntax mapping.
func (l *loader) indexDecls(files []*ast.File, info *types.Info) {
	for _, f := range files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok {
				continue
			}
			if fn, ok := info.Defs[fd.Name].(*types.Func); ok {
				l.decls[fn] = fd
			}
		}
	}
}

// Load typechecks the packages matched by the patterns (plus their
// dependency closure) under dir, which must lie inside a module.
func Load(dir string, patterns ...string) (*Program, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	listed, err := goList(dir, patterns)
	if err != nil {
		return nil, err
	}
	l := newLoader()
	prog := &Program{Fset: l.fset}
	for _, lp := range listed {
		if lp.Error != nil {
			return nil, fmt.Errorf("go list: %s: %s", lp.ImportPath, lp.Error.Err)
		}
		if lp.ImportPath == "unsafe" {
			continue
		}
		if len(lp.CgoFiles) > 0 {
			return nil, fmt.Errorf("package %s requires cgo, which the loader does not support", lp.ImportPath)
		}
		if len(lp.GoFiles) == 0 {
			continue
		}
		files, err := l.parseFiles(lp.Dir, lp.GoFiles)
		if err != nil {
			return nil, err
		}
		full := !lp.DepOnly
		pkg, info, err := l.check(lp.ImportPath, files, full)
		if err != nil {
			return nil, err
		}
		if !lp.DepOnly {
			prog.Roots = append(prog.Roots, &PackageInfo{
				Path:  lp.ImportPath,
				Types: pkg,
				Info:  info,
				Files: files,
			})
		}
	}
	prog.decls = l.decls
	return prog, nil
}

// LoadDir typechecks a single directory of Go files as one package whose
// import path is the directory's base name, resolving its (standard-library)
// imports through `go list`. The fixture runner uses it to check analyzer
// testdata that is not part of any module.
func LoadDir(dir string) (*Program, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range entries {
		if !e.IsDir() && filepath.Ext(e.Name()) == ".go" {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	if len(names) == 0 {
		return nil, fmt.Errorf("no Go files in %s", dir)
	}
	l := newLoader()
	files, err := l.parseFiles(dir, names)
	if err != nil {
		return nil, err
	}
	// Resolve the fixture's imports (standard library only) through go list
	// so their platform-filtered sources typecheck in dependency order.
	var imports []string
	seen := map[string]bool{}
	for _, f := range files {
		for _, imp := range f.Imports {
			path, err := strconv.Unquote(imp.Path.Value)
			if err != nil {
				return nil, err
			}
			if !seen[path] {
				seen[path] = true
				imports = append(imports, path)
			}
		}
	}
	sort.Strings(imports)
	if len(imports) > 0 {
		listed, err := goList(dir, imports)
		if err != nil {
			return nil, err
		}
		for _, lp := range listed {
			if !lp.Standard {
				return nil, fmt.Errorf("fixture %s imports non-standard package %s", dir, lp.ImportPath)
			}
			if lp.ImportPath == "unsafe" || len(lp.GoFiles) == 0 {
				continue
			}
			depFiles, err := l.parseFiles(lp.Dir, lp.GoFiles)
			if err != nil {
				return nil, err
			}
			if _, _, err := l.check(lp.ImportPath, depFiles, false); err != nil {
				return nil, err
			}
		}
	}
	path := filepath.Base(dir)
	pkg, info, err := l.check(path, files, true)
	if err != nil {
		return nil, err
	}
	return &Program{
		Fset:  l.fset,
		Roots: []*PackageInfo{{Path: path, Types: pkg, Info: info, Files: files}},
		decls: l.decls,
	}, nil
}
