// Package framework is a dependency-free skeleton of the golang.org/x/tools
// go/analysis vocabulary — Analyzer, Pass, Diagnostic — plus the program
// loader and fixture runner the cbmalint suite is built on. The real
// go/analysis module is deliberately not used: the simulator's module has no
// external dependencies, and the analyzers only need the subset implemented
// here (per-package syntax + full type information, diagnostics with
// positions, and an inline suppression mechanism).
//
// Suppression: a finding is silenced by the directive comment
//
//	//cbma:allow <analyzer> <reason>
//
// placed on the offending line or the line directly above it. The reason is
// mandatory by convention (reviewers should see why the invariant is waived)
// but not enforced.
package framework

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
	"sort"
	"strings"
)

// Analyzer describes one static check, mirroring go/analysis.Analyzer.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and in //cbma:allow
	// directives.
	Name string
	// Doc is a one-paragraph description of what the analyzer enforces.
	Doc string
	// Run inspects one package through the Pass and reports findings.
	Run func(*Pass) error
}

// Pass carries one package's syntax and type information to an analyzer,
// mirroring go/analysis.Pass.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info
	// FuncDecl resolves a function object — possibly from another package of
	// the loaded program — to its declaration syntax, or nil when the
	// function's source was not loaded. Analyzers use it to read the callee's
	// doc comment (e.g. inplacealias checks for documented aliasing support).
	FuncDecl func(fn *types.Func) *ast.FuncDecl

	report func(Diagnostic)
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.report(Diagnostic{
		Analyzer: p.Analyzer.Name,
		Pos:      p.Fset.Position(pos),
		Message:  fmt.Sprintf(format, args...),
	})
}

// Diagnostic is one reported finding.
type Diagnostic struct {
	Analyzer string
	Pos      token.Position
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s: %s", d.Pos, d.Analyzer, d.Message)
}

// allowRe matches the suppression directive. Directive comments have no
// space after //, matching the Go toolchain's //go: convention.
var allowRe = regexp.MustCompile(`^//cbma:allow\s+([A-Za-z0-9_]+)`)

// allowIndex records, per file and line, which analyzers are suppressed.
type allowKey struct {
	file     string
	line     int
	analyzer string
}

// buildAllowIndex scans every comment of the files for //cbma:allow
// directives.
func buildAllowIndex(fset *token.FileSet, files []*ast.File) map[allowKey]bool {
	idx := make(map[allowKey]bool)
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := allowRe.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				pos := fset.Position(c.Pos())
				idx[allowKey{pos.Filename, pos.Line, m[1]}] = true
			}
		}
	}
	return idx
}

// runAnalyzers executes the analyzers over one package and returns the
// surviving (non-suppressed) diagnostics, sorted by position.
func runAnalyzers(analyzers []*Analyzer, fset *token.FileSet, files []*ast.File,
	pkg *types.Package, info *types.Info, funcDecl func(*types.Func) *ast.FuncDecl) ([]Diagnostic, error) {

	allow := buildAllowIndex(fset, files)
	var out []Diagnostic
	for _, a := range analyzers {
		pass := &Pass{
			Analyzer:  a,
			Fset:      fset,
			Files:     files,
			Pkg:       pkg,
			TypesInfo: info,
			FuncDecl:  funcDecl,
			report: func(d Diagnostic) {
				if allow[allowKey{d.Pos.Filename, d.Pos.Line, d.Analyzer}] ||
					allow[allowKey{d.Pos.Filename, d.Pos.Line - 1, d.Analyzer}] {
					return
				}
				out = append(out, d)
			},
		}
		if err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("%s: %s: %w", a.Name, pkg.Path(), err)
		}
	}
	sortDiagnostics(out)
	return out, nil
}

func sortDiagnostics(ds []Diagnostic) {
	sort.Slice(ds, func(i, j int) bool {
		a, b := ds[i], ds[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
}

// HasDirective reports whether the doc comment group contains the given
// directive (e.g. "cbma:hotpath"), optionally followed by a note.
func HasDirective(doc *ast.CommentGroup, directive string) bool {
	if doc == nil {
		return false
	}
	for _, c := range doc.List {
		text := strings.TrimPrefix(c.Text, "//")
		if text == directive || strings.HasPrefix(text, directive+" ") {
			return true
		}
	}
	return false
}
