// Package good uses DeriveSeed the way the rngstream design intends:
// one distinct constant purpose per call site, with forwarding wrappers
// passing the responsibility to their callers.
package good

// Fixture seed purposes, one per derivation site.
const (
	purposeGeom  uint64 = 1
	purposeFade  uint64 = 2
	purposeRound uint64 = 3
)

// DeriveSeed mirrors the rngstream derivation shape.
func DeriveSeed(seed int64, labels ...uint64) int64 {
	for _, l := range labels {
		seed ^= int64(l * 0x9e3779b97f4a7c15)
	}
	return seed
}

func distinct(seed int64) (int64, int64) {
	return DeriveSeed(seed, purposeGeom), DeriveSeed(seed, purposeFade)
}

// sweepSeed forwards its purpose; its callers own distinctness.
func sweepSeed(seed int64, purpose uint64) int64 {
	return DeriveSeed(seed, purpose)
}

// forward forwards a whole label slice received as a parameter.
func forward(seed int64, labels ...uint64) int64 {
	return DeriveSeed(seed, labels...)
}

func perRound(seed int64, round uint64) int64 {
	// Trailing labels may vary; only the leading purpose must be constant.
	return DeriveSeed(seed, purposeRound, round)
}

func suppressedDuplicate(seed int64) int64 {
	//cbma:allow rngpurpose fixture demonstrates the suppression directive
	return DeriveSeed(seed, purposeGeom)
}
