package bad

var sink int64

func duplicated(seed int64) {
	a := DeriveSeed(seed, purposeChannel)
	b := DeriveSeed(seed, purposeChannel) // want "already used"
	sink = a + b
}

func missing(seed int64) int64 {
	return DeriveSeed(seed) // want "without a purpose label"
}

func computed(seed int64, round uint64) int64 {
	label := round + 7
	return DeriveSeed(seed, label) // want "non-constant DeriveSeed purpose"
}

func computedSlice(seed int64) int64 {
	labels := []uint64{3, 4}
	return DeriveSeed(seed, labels...) // want "computed label slice"
}

func escaped(seed int64) int64 {
	return streamSeed(seed, purposeNoise) // want "streamSeed is internal"
}
