// Package bad exercises the rngpurpose findings. It declares local stubs
// with the rngstream API shapes (fixtures cannot import cbma packages).
package bad

// Fixture seed purposes.
const (
	purposeChannel uint64 = 1
	purposeNoise   uint64 = 2
)

// DeriveSeed mirrors the rngstream derivation shape.
func DeriveSeed(seed int64, labels ...uint64) int64 {
	for _, l := range labels {
		seed ^= int64(l * 0x9e3779b97f4a7c15)
	}
	return seed
}

// streamSeed mirrors the internal stream-tree mixer; rngpurpose confines it
// to this file.
func streamSeed(seed int64, labels ...uint64) int64 {
	return DeriveSeed(seed, labels...) // forwarding a parameter slice is fine
}

func sameFileCall(seed int64) int64 {
	return streamSeed(seed, purposeChannel) // declaring file: allowed
}
