package rngpurpose_test

import (
	"testing"

	"cbma/internal/analysis/analysistest"
	"cbma/internal/analysis/rngpurpose"
)

func TestBadFixture(t *testing.T) {
	analysistest.Run(t, "testdata/bad", rngpurpose.Analyzer)
}

func TestGoodFixture(t *testing.T) {
	analysistest.Run(t, "testdata/good", rngpurpose.Analyzer)
}
