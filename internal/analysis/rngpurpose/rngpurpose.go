// Package rngpurpose enforces the seed-derivation hygiene of the rngstream
// design (internal/sim/rngstream.go): every DeriveSeed call site must carry
// a distinct, constant purpose label as its first label argument, so that no
// two derivations off the same base seed can ever collide and correlate
// supposedly independent streams. Forwarding the purpose through a function
// parameter is allowed (the responsibility moves to the callers);
// arbitrary computed purposes are not. streamSeed, the internal stream-tree
// mixer, must not leak outside its declaring file.
package rngpurpose

import (
	"go/ast"
	"go/types"

	"cbma/internal/analysis/framework"
)

// Analyzer is the rngpurpose check.
var Analyzer = &framework.Analyzer{
	Name: "rngpurpose",
	Doc:  "require distinct constant purpose labels at DeriveSeed call sites",
	Run:  run,
}

func run(pass *framework.Pass) error {
	// Position of the first call using each constant purpose value, keyed by
	// the callee's package so distinct DeriveSeed implementations (e.g. the
	// fixture's own stub) do not interfere.
	seen := map[string]string{}
	for _, file := range pass.Files {
		// FuncDecls cannot nest in Go, so the enclosing function of any call
		// is simply the top-level declaration it appears under (package-level
		// initializer expressions have none).
		for _, decl := range file.Decls {
			fd, _ := decl.(*ast.FuncDecl)
			ast.Inspect(decl, func(n ast.Node) bool {
				if call, ok := n.(*ast.CallExpr); ok {
					checkCall(pass, call, fd, file, seen)
				}
				return true
			})
		}
	}
	return nil
}

func calleeFunc(pass *framework.Pass, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil
	}
	fn, _ := pass.TypesInfo.Uses[id].(*types.Func)
	return fn
}

func checkCall(pass *framework.Pass, call *ast.CallExpr, enclosing *ast.FuncDecl, file *ast.File, seen map[string]string) {
	fn := calleeFunc(pass, call)
	if fn == nil {
		return
	}
	switch fn.Name() {
	case "DeriveSeed":
		checkDerive(pass, call, fn, enclosing, seen)
	case "streamSeed":
		checkStreamSeed(pass, call, fn, file)
	}
}

// checkStreamSeed confines the internal mixer to its declaring file: every
// other caller must go through the roundStreams tree (or DeriveSeed), which
// is what guarantees phase/round/stream separation.
func checkStreamSeed(pass *framework.Pass, call *ast.CallExpr, fn *types.Func, file *ast.File) {
	decl := pass.FuncDecl(fn)
	if decl == nil {
		return // declared outside the loaded program; nothing to confine
	}
	declFile := pass.Fset.Position(decl.Pos()).Filename
	callFile := pass.Fset.Position(call.Pos()).Filename
	if declFile != callFile {
		pass.Reportf(call.Pos(),
			"streamSeed is internal to the stream tree: derive round streams via roundStreams.rng or seeds via DeriveSeed")
	}
}

// checkDerive validates one DeriveSeed(seed, labels...) call.
func checkDerive(pass *framework.Pass, call *ast.CallExpr, fn *types.Func, enclosing *ast.FuncDecl, seen map[string]string) {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || !sig.Variadic() || sig.Params().Len() != 2 {
		return // not the DeriveSeed(seed int64, labels ...uint64) shape
	}
	if call.Ellipsis.IsValid() {
		// DeriveSeed(seed, labels...) — a forwarding wrapper. The slice must
		// itself be a parameter of the enclosing function, so the purpose
		// discipline transfers to the wrapper's callers.
		if len(call.Args) == 2 && isParam(pass, call.Args[1], enclosing) {
			return
		}
		pass.Reportf(call.Pos(),
			"DeriveSeed with a computed label slice: purposes must be constants (or forwarded parameters)")
		return
	}
	if len(call.Args) < 2 {
		pass.Reportf(call.Pos(),
			"DeriveSeed without a purpose label re-mixes the bare seed; add a distinct constant label")
		return
	}
	purpose := call.Args[1]
	tv, ok := pass.TypesInfo.Types[purpose]
	if !ok {
		return
	}
	if tv.Value != nil {
		key := fn.Pkg().Path() + "|" + tv.Value.ExactString()
		pos := pass.Fset.Position(call.Pos()).String()
		if prev, dup := seen[key]; dup {
			pass.Reportf(purpose.Pos(),
				"purpose %s already used at %s: duplicated purposes correlate derived seed streams",
				tv.Value, prev)
		} else {
			seen[key] = pos
		}
		return
	}
	if isParam(pass, purpose, enclosing) {
		return // forwarded purpose; callers supply the constant
	}
	pass.Reportf(purpose.Pos(),
		"non-constant DeriveSeed purpose: use a distinct named constant (or forward a parameter)")
}

// isParam reports whether expr is a plain identifier naming a parameter of
// the enclosing function.
func isParam(pass *framework.Pass, expr ast.Expr, enclosing *ast.FuncDecl) bool {
	if enclosing == nil {
		return false
	}
	id, ok := ast.Unparen(expr).(*ast.Ident)
	if !ok {
		return false
	}
	obj := pass.TypesInfo.Uses[id]
	if obj == nil {
		return false
	}
	if enclosing.Type.Params == nil {
		return false
	}
	for _, field := range enclosing.Type.Params.List {
		for _, name := range field.Names {
			if pass.TypesInfo.Defs[name] == obj {
				return true
			}
		}
	}
	return false
}
