// Package bad exercises every nodeterm finding: global math/rand draws,
// wall-clock reads, and map ranges feeding observable output.
package bad

import (
	"fmt"
	"math/rand"
	"time"
)

// Metrics mirrors the simulator's per-round metrics aggregate.
type Metrics struct {
	Decoded int
}

func globalDraws() (int, float64) {
	a := rand.Int()     // want "global math/rand draw Int"
	b := rand.Float64() // want "global math/rand draw Float64"
	return a, b
}

func wallClock() time.Time {
	t := time.Now()              // want "wall-clock dependency time.Now"
	time.Sleep(time.Millisecond) // want "wall-clock dependency time.Sleep"
	return t
}

func printRange(m map[int]string) {
	for k, v := range m { // want "map iteration order feeds printed output"
		fmt.Println(k, v)
	}
}

func metricsRange(counts map[int]int, agg *Metrics) {
	for _, n := range counts { // want "map iteration order feeds a Metrics value"
		agg.Decoded += n
	}
}
