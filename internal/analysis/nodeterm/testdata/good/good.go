// Package good holds code every nodeterm rule accepts: injected
// generators, explicit constructors, sorted map iteration, and a reviewed
// suppression.
package good

import (
	"fmt"
	"math/rand"
	"sort"
)

// Metrics mirrors the simulator's per-round metrics aggregate.
type Metrics struct {
	Decoded int
}

func injected(r *rand.Rand) float64 {
	return r.Float64() // method on an injected generator, not global state
}

func constructors(seed int64) *rand.Rand {
	return rand.New(rand.NewSource(seed)) // constructing is allowed, drawing is not
}

func sortedRange(m map[int]string) {
	keys := make([]int, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	for _, k := range keys {
		fmt.Println(k, m[k])
	}
}

func localAggregate(counts map[int]int) int {
	total := 0
	for _, n := range counts { // order-insensitive reduction: no sink
		total += n
	}
	return total
}

func suppressed() int {
	//cbma:allow nodeterm fixture demonstrates the suppression directive
	return rand.Int()
}
