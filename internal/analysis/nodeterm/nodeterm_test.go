package nodeterm_test

import (
	"testing"

	"cbma/internal/analysis/analysistest"
	"cbma/internal/analysis/nodeterm"
)

func TestBadFixture(t *testing.T) {
	analysistest.Run(t, "testdata/bad", nodeterm.Analyzer)
}

func TestGoodFixture(t *testing.T) {
	analysistest.Run(t, "testdata/good", nodeterm.Analyzer)
}
