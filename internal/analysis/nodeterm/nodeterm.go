// Package nodeterm forbids the nondeterminism sources that would break the
// simulator's bit-identical-across-workers guarantee (DESIGN.md, "Execution
// model"): draws from the global math/rand source, wall-clock reads, and
// map-range iteration that feeds Metrics, report, or trace output. RNG must
// arrive as an injected *rand.Rand or an rngstream derivation; map iteration
// that influences results must walk a sorted copy.
package nodeterm

import (
	"go/ast"
	"go/types"
	"strings"

	"cbma/internal/analysis/framework"
)

// Analyzer is the nodeterm check.
var Analyzer = &framework.Analyzer{
	Name: "nodeterm",
	Doc:  "forbid global rand draws, wall-clock reads and result-feeding map ranges in sim packages",
	Run:  run,
}

// scope lists the package path prefixes the determinism rules apply to: the
// whole round pipeline and every layer it draws randomness through. The
// exemptions are deliberate and documented (DESIGN.md): cmd/* binaries may
// read the wall clock to report elapsed time, the public root package only
// wraps internal/sim, internal/report is a pure formatting layer over
// already-computed results, and internal/paperbench drives experiments whose
// determinism the sim layer already owns. Packages outside the cbma module
// (the analyzer's own test fixtures) are always in scope.
var scope = []string{
	"cbma/internal/sim",
	"cbma/internal/fault",
	"cbma/internal/rx",
	"cbma/internal/channel",
	"cbma/internal/mac",
	"cbma/internal/baseline",
	"cbma/internal/core",
	"cbma/internal/geom",
	"cbma/internal/tag",
	"cbma/internal/dsp",
	"cbma/internal/frame",
	"cbma/internal/pn",
	"cbma/internal/stats",
	"cbma/internal/trace",
	"cbma/internal/obs",
}

func inScope(path string) bool {
	if !strings.HasPrefix(path, "cbma") {
		return true // analyzer fixtures
	}
	for _, p := range scope {
		if path == p || strings.HasPrefix(path, p+"/") {
			return true
		}
	}
	return false
}

// randConstructors are the math/rand package-level functions that build a
// generator from an explicit seed rather than drawing from the global
// source; constructing is allowed, drawing is not.
var randConstructors = map[string]bool{
	"New":       true,
	"NewSource": true,
	"NewZipf":   true,
	// math/rand/v2 constructors.
	"NewPCG":     true,
	"NewChaCha8": true,
}

// clockFuncs are the time package functions that read or depend on the wall
// clock (or the runtime timer); any of them makes a sim-path result depend
// on execution timing.
var clockFuncs = map[string]bool{
	"Now":       true,
	"Since":     true,
	"Until":     true,
	"Tick":      true,
	"After":     true,
	"AfterFunc": true,
	"NewTimer":  true,
	"NewTicker": true,
	"Sleep":     true,
}

func run(pass *framework.Pass) error {
	if !inScope(pass.Pkg.Path()) {
		return nil
	}
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				checkCall(pass, n)
			case *ast.RangeStmt:
				checkMapRange(pass, n)
			}
			return true
		})
	}
	return nil
}

// callee resolves the called package-level function or method, or nil.
func callee(pass *framework.Pass, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil
	}
	fn, _ := pass.TypesInfo.Uses[id].(*types.Func)
	return fn
}

func checkCall(pass *framework.Pass, call *ast.CallExpr) {
	fn := callee(pass, call)
	if fn == nil || fn.Pkg() == nil {
		return
	}
	// Methods (e.g. (*rand.Rand).Float64) are fine: the receiver carries an
	// injected generator. Only package-level functions are global state.
	if fn.Type().(*types.Signature).Recv() != nil {
		return
	}
	switch fn.Pkg().Path() {
	case "math/rand", "math/rand/v2":
		if !randConstructors[fn.Name()] {
			pass.Reportf(call.Pos(),
				"global math/rand draw %s: sim paths must use an injected *rand.Rand (see internal/sim/rngstream.go)",
				fn.Name())
		}
	case "time":
		if clockFuncs[fn.Name()] {
			pass.Reportf(call.Pos(),
				"wall-clock dependency time.%s: sim results must not depend on execution timing (cmd/ binaries are exempt)",
				fn.Name())
		}
	}
}

// checkMapRange flags `for … range m` over a map when the loop body feeds
// simulation output: a Metrics value, the report/trace layers, or direct
// printing. Map iteration order is randomized per run, so any of these makes
// the output order (or content) nondeterministic; iterate a sorted key slice
// instead.
func checkMapRange(pass *framework.Pass, rng *ast.RangeStmt) {
	tv, ok := pass.TypesInfo.Types[rng.X]
	if !ok {
		return
	}
	if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
		return
	}
	if sink := outputSink(pass, rng.Body); sink != "" {
		pass.Reportf(rng.Pos(),
			"map iteration order feeds %s; iterate a sorted copy of the keys instead", sink)
	}
}

// outputSink scans a map-range body for writes that make iteration order
// observable in results, returning a description of the first sink found.
func outputSink(pass *framework.Pass, body *ast.BlockStmt) string {
	var sink string
	ast.Inspect(body, func(n ast.Node) bool {
		if sink != "" {
			return false
		}
		switch n := n.(type) {
		case *ast.CallExpr:
			fn := callee(pass, n)
			if fn == nil || fn.Pkg() == nil {
				return true
			}
			path := fn.Pkg().Path()
			switch {
			case path == "cbma/internal/report" || strings.HasSuffix(path, "/report"):
				sink = "report output"
			case path == "cbma/internal/trace" || strings.HasSuffix(path, "/trace"):
				sink = "trace output"
			case path == "fmt" && strings.HasPrefix(fn.Name(), "Print"),
				path == "fmt" && strings.HasPrefix(fn.Name(), "Fprint"):
				sink = "printed output"
			}
			// Mutating a Metrics value inside the loop also orders results;
			// caught by the assignment cases below.
		case *ast.AssignStmt:
			for _, lhs := range n.Lhs {
				if touchesMetrics(pass, lhs) {
					sink = "a Metrics value"
					return false
				}
			}
		case *ast.IncDecStmt:
			if touchesMetrics(pass, n.X) {
				sink = "a Metrics value"
				return false
			}
		}
		return true
	})
	return sink
}

// touchesMetrics reports whether expr reads or writes (a field, element or
// copy of) a type named Metrics.
func touchesMetrics(pass *framework.Pass, expr ast.Expr) bool {
	found := false
	ast.Inspect(expr, func(n ast.Node) bool {
		e, ok := n.(ast.Expr)
		if !ok || found {
			return !found
		}
		tv, ok := pass.TypesInfo.Types[e]
		if !ok {
			return true
		}
		if isMetrics(tv.Type) {
			found = true
			return false
		}
		return true
	})
	return found
}

func isMetrics(t types.Type) bool {
	for {
		switch tt := t.(type) {
		case *types.Pointer:
			t = tt.Elem()
		case *types.Slice:
			t = tt.Elem()
		case *types.Named:
			return tt.Obj().Name() == "Metrics"
		default:
			return false
		}
	}
}
