// Package analysistest runs analyzers over golden fixture directories,
// mirroring golang.org/x/tools/go/analysis/analysistest: each fixture file
// annotates the lines where diagnostics are expected with
//
//	code() // want "regexp" "another regexp"
//
// and Run fails the test for every expected-but-missing and every
// unexpected diagnostic. Fixture directories are plain (non-module)
// packages that may import only the standard library; the //cbma:allow
// suppression machinery is active, so fixtures can also assert that a
// suppressed finding stays silent by simply carrying no want comment.
package analysistest

import (
	"fmt"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"cbma/internal/analysis/framework"
)

// expectation is one compiled want pattern awaiting a diagnostic.
type expectation struct {
	re      *regexp.Regexp
	raw     string
	matched bool
}

type lineKey struct {
	file string
	line int
}

var wantRe = regexp.MustCompile(`//\s*want\s+(".*)$`)

// Run loads the fixture directory as one package and checks the analyzers'
// diagnostics against its want comments.
func Run(t *testing.T, dir string, analyzers ...*framework.Analyzer) {
	t.Helper()
	prog, err := framework.LoadDir(dir)
	if err != nil {
		t.Fatalf("loading fixture %s: %v", dir, err)
	}
	diags, err := prog.Run(analyzers)
	if err != nil {
		t.Fatalf("running analyzers over %s: %v", dir, err)
	}

	want := map[lineKey][]*expectation{}
	for _, f := range prog.Roots[0].Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := wantRe.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				pats, err := parsePatterns(m[1])
				if err != nil {
					t.Fatalf("%s: bad want comment %q: %v", prog.Fset.Position(c.Pos()), c.Text, err)
				}
				pos := prog.Fset.Position(c.Pos())
				k := lineKey{pos.Filename, pos.Line}
				for _, p := range pats {
					re, err := regexp.Compile(p)
					if err != nil {
						t.Fatalf("%s: bad want pattern %q: %v", pos, p, err)
					}
					want[k] = append(want[k], &expectation{re: re, raw: p})
				}
			}
		}
	}

	for _, d := range diags {
		exps := want[lineKey{d.Pos.Filename, d.Pos.Line}]
		matched := false
		for _, e := range exps {
			if !e.matched && e.re.MatchString(d.Message) {
				e.matched = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("unexpected diagnostic: %s", d)
		}
	}
	for k, exps := range want {
		for _, e := range exps {
			if !e.matched {
				t.Errorf("%s:%d: no diagnostic matching %q", k.file, k.line, e.raw)
			}
		}
	}
}

// parsePatterns splits the tail of a want comment into its quoted regexps.
func parsePatterns(s string) ([]string, error) {
	var pats []string
	for {
		s = strings.TrimSpace(s)
		if s == "" {
			return pats, nil
		}
		q, err := strconv.QuotedPrefix(s)
		if err != nil {
			return nil, fmt.Errorf("expected quoted pattern at %q", s)
		}
		p, err := strconv.Unquote(q)
		if err != nil {
			return nil, err
		}
		pats = append(pats, p)
		s = s[len(q):]
	}
}
