package timerguard_test

import (
	"testing"

	"cbma/internal/analysis/analysistest"
	"cbma/internal/analysis/timerguard"
)

func TestBadFixture(t *testing.T) {
	analysistest.Run(t, "testdata/bad", timerguard.Analyzer)
}

func TestGoodFixture(t *testing.T) {
	analysistest.Run(t, "testdata/good", timerguard.Analyzer)
}
