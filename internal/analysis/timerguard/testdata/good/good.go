// Package good holds the accepted timer patterns: deferred Stops, a field
// stopped by the type's Close, ownership transfer by return, one-shot
// time.After outside loops, and a reviewed waiver.
package good

import "time"

type poller struct {
	timer  *time.Timer
	ticker *time.Ticker
}

func localStopped(d time.Duration) {
	t := time.NewTimer(d)
	defer t.Stop()
	<-t.C
}

func tickerLoop(d time.Duration, done chan struct{}) {
	tk := time.NewTicker(d)
	defer tk.Stop()
	for {
		select {
		case <-tk.C:
		case <-done:
			return
		}
	}
}

// arm binds the field; Close (below) is the package-wide Stop that
// timerguard requires.
func (p *poller) arm(d time.Duration) {
	p.timer = time.AfterFunc(d, func() {})
	p.ticker = time.NewTicker(d)
}

func (p *poller) Close() {
	if p.timer != nil {
		p.timer.Stop()
	}
	p.ticker.Stop()
}

// handoff transfers ownership to the caller.
func handoff(d time.Duration) *time.Timer {
	return time.NewTimer(d)
}

// oneShot is a single bounded wait, not a per-iteration arm.
func oneShot(work chan int, d time.Duration) int {
	select {
	case v := <-work:
		return v
	case <-time.After(d):
		return 0
	}
}

// waived keeps a deliberate looped time.After under review.
func waived(work chan int, d time.Duration) {
	for range work {
		<-time.After(d) //cbma:allow timerguard fixture demonstrates the suppression directive
	}
}

// The shard coordinator's heartbeat-monitor idiom (internal/serve/shard):
// one timer owned by a single goroutine, re-armed with the
// stop-drain-reset dance on every beat so a stale expiry never fires.
func monitorReset(timeout time.Duration, beats, done chan struct{}) {
	t := time.NewTimer(timeout)
	defer t.Stop()
	for {
		select {
		case <-beats:
			if !t.Stop() {
				<-t.C
			}
			t.Reset(timeout)
		case <-t.C:
			return
		case <-done:
			return
		}
	}
}
