// Package bad exercises every timerguard finding: discarded handles,
// never-stopped locals and fields, handle-less creations, time.Tick, and
// time.After armed per loop iteration.
package bad

import "time"

type poller struct {
	timer *time.Timer
}

func discarded(d time.Duration) {
	time.NewTicker(d)    // want "timer created and discarded: keep the handle"
	_ = time.NewTimer(d) // want "timer created and discarded: keep the handle"
}

func localNeverStopped(d time.Duration) {
	t := time.NewTimer(d) // want "timer bound to t is never stopped"
	<-t.C
}

func (p *poller) fieldNeverStopped(d time.Duration) {
	p.timer = time.AfterFunc(d, func() {}) // want "timer bound to p.timer is never stopped"
}

func noHandle(d time.Duration) <-chan time.Time {
	return time.NewTimer(d).C // want "timer created without a bindable handle"
}

func ticks(d time.Duration) {
	for range time.Tick(d) { // want "time.Tick leaks its ticker by design"
	}
}

func afterLoop(work chan int, d time.Duration) {
	for {
		select {
		case v := <-work:
			_ = v
		case <-time.After(d): // want "time.After in a loop arms an unstoppable timer per iteration"
			return
		}
	}
}
