// Package timerguard enforces timer hygiene in library code: every
// time.Timer/Ticker the repo creates must be stoppable, and the
// leak-by-construction helpers are banned outright.
//
// Rules (package main is exempt — a daemon's process-lifetime timers die
// with it):
//
//  1. time.NewTimer/NewTicker/AfterFunc with a discarded result is
//     reported: nothing can ever Stop it.
//  2. A timer assigned to a local or a struct field must have a reachable
//     `.Stop()` on that variable or field somewhere in the package. The
//     match is by types.Object identity — field Stops count for every
//     instance — so this is a "provably never stopped" check, not a
//     path-sensitive one.
//  3. Returning a freshly created timer transfers ownership to the caller
//     and passes.
//  4. time.Tick is always reported (the runtime never reclaims its ticker).
//  5. time.After inside a for/range loop is reported: each iteration arms
//     a new timer that survives until it fires, unbounded under load.
package timerguard

import (
	"go/ast"
	"go/types"
	"strings"

	"cbma/internal/analysis/framework"
)

// Analyzer is the timerguard check.
var Analyzer = &framework.Analyzer{
	Name: "timerguard",
	Doc:  "timers and tickers in library code need a reachable Stop; time.Tick and looped time.After are banned",
	Run:  run,
}

// scope: all library packages of the module — notably the shard
// coordinator (cbma/internal/serve/shard), whose heartbeat monitor and
// backoff sleeps are exactly the leak-prone timer patterns this check
// exists for. Packages outside the cbma module (fixtures) are always in
// scope.
var scope = []string{
	"cbma/internal",
}

func inScope(path string) bool {
	if !strings.HasPrefix(path, "cbma") {
		return true // analyzer fixtures
	}
	for _, p := range scope {
		if path == p || strings.HasPrefix(path, p+"/") {
			return true
		}
	}
	return false
}

func run(pass *framework.Pass) error {
	if !inScope(pass.Pkg.Path()) || pass.Pkg.Name() == "main" {
		return nil
	}
	stopped := collectStopped(pass)
	for _, file := range pass.Files {
		checkFile(pass, file, stopped)
	}
	return nil
}

// creationKind classifies a call as one of the timer-creating helpers.
func creationKind(pass *framework.Pass, call *ast.CallExpr) string {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return ""
	}
	fn, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
	if !ok {
		return ""
	}
	switch fn.FullName() {
	case "time.NewTimer", "time.NewTicker", "time.AfterFunc", "time.Tick", "time.After":
		return fn.Name()
	}
	return ""
}

// collectStopped gathers the types.Object of every variable or field that
// has a .Stop() called on it anywhere in the package (defers included —
// a defer is a CallExpr too).
func collectStopped(pass *framework.Pass) map[types.Object]bool {
	stopped := map[types.Object]bool{}
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
			if !ok || sel.Sel.Name != "Stop" {
				return true
			}
			fn, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
			if !ok {
				return true
			}
			switch fn.FullName() {
			case "(*time.Timer).Stop", "(*time.Ticker).Stop":
				if obj := terminalObj(pass, sel.X); obj != nil {
					stopped[obj] = true
				}
			}
			return true
		})
	}
	return stopped
}

// terminalObj resolves the variable or field an expression names: `t` →
// t's object, `p.timer` (any receiver depth) → the timer field's object.
func terminalObj(pass *framework.Pass, expr ast.Expr) types.Object {
	switch e := ast.Unparen(expr).(type) {
	case *ast.Ident:
		if obj := pass.TypesInfo.Uses[e]; obj != nil {
			return obj
		}
		return pass.TypesInfo.Defs[e]
	case *ast.SelectorExpr:
		return pass.TypesInfo.Uses[e.Sel]
	}
	return nil
}

// checkFile walks one file, tracking loop depth for the time.After rule and
// consuming creation calls at their binding site (assignment, declaration,
// return, composite literal) so the fallback pass only sees orphans.
func checkFile(pass *framework.Pass, file *ast.File, stopped map[types.Object]bool) {
	handled := map[*ast.CallExpr]bool{}
	loopDepth := 0

	var walk func(ast.Node)
	walk = func(n ast.Node) {
		ast.Inspect(n, func(m ast.Node) bool {
			if m == n {
				return true
			}
			switch m := m.(type) {
			case *ast.ForStmt, *ast.RangeStmt:
				loopDepth++
				walk(m)
				loopDepth--
				return false
			case *ast.ExprStmt:
				if call, ok := m.X.(*ast.CallExpr); ok {
					switch creationKind(pass, call) {
					case "NewTimer", "NewTicker", "AfterFunc":
						handled[call] = true
						pass.Reportf(call.Pos(), "timer created and discarded: keep the handle so it can be stopped")
					}
				}
			case *ast.AssignStmt:
				for i, rhs := range m.Rhs {
					call, ok := ast.Unparen(rhs).(*ast.CallExpr)
					if !ok || i >= len(m.Lhs) {
						continue
					}
					switch creationKind(pass, call) {
					case "NewTimer", "NewTicker", "AfterFunc":
						handled[call] = true
						checkBinding(pass, m.Lhs[i], call, stopped)
					}
				}
			case *ast.ValueSpec:
				for i, v := range m.Values {
					call, ok := ast.Unparen(v).(*ast.CallExpr)
					if !ok || i >= len(m.Names) {
						continue
					}
					switch creationKind(pass, call) {
					case "NewTimer", "NewTicker", "AfterFunc":
						handled[call] = true
						checkBinding(pass, m.Names[i], call, stopped)
					}
				}
			case *ast.ReturnStmt:
				for _, res := range m.Results {
					if call, ok := ast.Unparen(res).(*ast.CallExpr); ok {
						switch creationKind(pass, call) {
						case "NewTimer", "NewTicker", "AfterFunc":
							handled[call] = true // ownership transferred to the caller
						}
					}
				}
			case *ast.KeyValueExpr:
				call, ok := ast.Unparen(m.Value).(*ast.CallExpr)
				if !ok {
					break
				}
				switch creationKind(pass, call) {
				case "NewTimer", "NewTicker", "AfterFunc":
					handled[call] = true
					if key, ok := m.Key.(*ast.Ident); ok {
						checkObj(pass, pass.TypesInfo.Uses[key], key.Name, call, stopped)
					}
				}
			case *ast.CallExpr:
				switch creationKind(pass, m) {
				case "Tick":
					handled[m] = true
					pass.Reportf(m.Pos(), "time.Tick leaks its ticker by design: use time.NewTicker and Stop it")
				case "After":
					handled[m] = true
					if loopDepth > 0 {
						pass.Reportf(m.Pos(), "time.After in a loop arms an unstoppable timer per iteration: hoist a NewTimer and Reset it")
					}
				}
			}
			return true
		})
	}
	walk(file)

	// Fallback: a creation call in any other position (a bare argument, a
	// channel send) has no bindable handle.
	ast.Inspect(file, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || handled[call] {
			return true
		}
		switch creationKind(pass, call) {
		case "NewTimer", "NewTicker", "AfterFunc":
			pass.Reportf(call.Pos(), "timer created without a bindable handle: assign it so it can be stopped")
		}
		return true
	})
}

// checkBinding resolves an assignment target and requires a package-wide
// Stop on its object.
func checkBinding(pass *framework.Pass, lhs ast.Expr, call *ast.CallExpr, stopped map[types.Object]bool) {
	obj := terminalObj(pass, lhs)
	checkObj(pass, obj, types.ExprString(lhs), call, stopped)
}

func checkObj(pass *framework.Pass, obj types.Object, name string, call *ast.CallExpr, stopped map[types.Object]bool) {
	if obj == nil {
		// Blank identifier or unresolvable target: nothing can Stop it.
		pass.Reportf(call.Pos(), "timer created and discarded: keep the handle so it can be stopped")
		return
	}
	if !stopped[obj] {
		pass.Reportf(call.Pos(), "timer bound to %s is never stopped: add a Stop on every exit path", name)
	}
}
