// Package inplacealias guards the dsp/tag scratch-buffer convention: the
// `*Into` and `*InPlace` functions write results through caller-provided
// destination slices, and most of them read their sources while writing.
// Passing the same slice as both a source and the destination silently
// corrupts the computation (the kernel reads values it has already
// overwritten), so calls handing one slice to two distinct slice parameters
// are flagged — unless the callee's doc comment explicitly documents
// aliasing support (contains the word "alias").
package inplacealias

import (
	"go/ast"
	"go/types"
	"regexp"
	"strings"

	"cbma/internal/analysis/framework"
)

// Analyzer is the inplacealias check.
var Analyzer = &framework.Analyzer{
	Name: "inplacealias",
	Doc:  "forbid passing one slice as both source and destination of *Into/*InPlace calls",
	Run:  run,
}

var aliasDoc = regexp.MustCompile(`(?i)\balias`)

func run(pass *framework.Pass) error {
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			if call, ok := n.(*ast.CallExpr); ok {
				checkCall(pass, call)
			}
			return true
		})
	}
	return nil
}

func checkCall(pass *framework.Pass, call *ast.CallExpr) {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return
	}
	fn, _ := pass.TypesInfo.Uses[id].(*types.Func)
	if fn == nil {
		return
	}
	name := fn.Name()
	if !strings.HasSuffix(name, "Into") && !strings.HasSuffix(name, "InPlace") {
		return
	}
	if decl := pass.FuncDecl(fn); decl != nil && decl.Doc != nil && aliasDoc.MatchString(decl.Doc.Text()) {
		return // aliasing is part of the documented contract
	}
	// Collect the canonical text of every slice-typed argument; a repeat
	// means one slice serves two roles in the same call.
	seen := map[string]int{} // canonical arg text -> first argument index
	for i, arg := range call.Args {
		tv, ok := pass.TypesInfo.Types[arg]
		if !ok || tv.Type == nil {
			continue
		}
		if _, isSlice := tv.Type.Underlying().(*types.Slice); !isSlice {
			continue
		}
		key := types.ExprString(ast.Unparen(arg))
		if first, dup := seen[key]; dup {
			pass.Reportf(arg.Pos(),
				"%s receives %s as both argument %d and argument %d: %s does not document aliasing support, so the overlapping read/write corrupts the result",
				name, key, first+1, i+1, name)
			continue
		}
		seen[key] = i
	}
}
