// Package bad exercises the inplacealias findings: one slice handed to two
// slice parameters of an Into/InPlace callee that does not document
// aliasing support.
package bad

// ScaleInto writes k*src through dst; dst and src must not overlap.
func ScaleInto(dst, src []float64, k float64) {
	for i, v := range src {
		dst[i] = v * k
	}
}

// Filter is a stateful kernel with an Into method.
type Filter struct{ taps []float64 }

// ApplyInto convolves src with the taps into dst.
func (f *Filter) ApplyInto(dst, src []float64) {
	for i := range src {
		dst[i] = src[i] * f.taps[0]
	}
}

func aliased(buf []float64, f *Filter) {
	ScaleInto(buf, buf, 2)         // want "both argument 1 and argument 2"
	f.ApplyInto(buf, buf)          // want "both argument 1 and argument 2"
	ScaleInto(buf[:4], buf[:4], 2) // want "both argument 1 and argument 2"
}
