// Package good holds Into/InPlace calls inplacealias accepts: distinct
// buffers, a callee that documents aliasing support, and a reviewed
// suppression.
package good

// ScaleInto writes k*src through dst; dst and src must not overlap.
func ScaleInto(dst, src []float64, k float64) {
	for i, v := range src {
		dst[i] = v * k
	}
}

// AccumulateInto adds src into dst element-wise. Aliasing dst and src is
// supported: each element is read before it is written.
func AccumulateInto(dst, src []float64) {
	for i, v := range src {
		dst[i] += v
	}
}

func distinctBuffers(dst, src []float64) {
	ScaleInto(dst, src, 2)
}

func documentedAlias(buf []float64) {
	AccumulateInto(buf, buf)
}

func suppressed(buf []float64) {
	//cbma:allow inplacealias fixture demonstrates the suppression directive
	ScaleInto(buf, buf, 2)
}
