package inplacealias_test

import (
	"testing"

	"cbma/internal/analysis/analysistest"
	"cbma/internal/analysis/inplacealias"
)

func TestBadFixture(t *testing.T) {
	analysistest.Run(t, "testdata/bad", inplacealias.Analyzer)
}

func TestGoodFixture(t *testing.T) {
	analysistest.Run(t, "testdata/good", inplacealias.Analyzer)
}
