// Package analysis assembles the cbmalint suite: the repo-specific static
// checks that turn the simulator's reproducibility and concurrency
// conventions — injected RNG streams, distinct seed-derivation purposes,
// allocation-free hot paths, alias-safe Into/InPlace calls, provable
// goroutine shutdown, short non-blocking critical sections, threaded
// contexts, stoppable timers — into CI-enforced rules. See DESIGN.md,
// "Determinism invariants & lint rules" and "Concurrency invariants".
package analysis

import (
	"cbma/internal/analysis/ctxflow"
	"cbma/internal/analysis/framework"
	"cbma/internal/analysis/golifecycle"
	"cbma/internal/analysis/hotalloc"
	"cbma/internal/analysis/inplacealias"
	"cbma/internal/analysis/lockscope"
	"cbma/internal/analysis/nodeterm"
	"cbma/internal/analysis/obsclock"
	"cbma/internal/analysis/rngpurpose"
	"cbma/internal/analysis/timerguard"
)

// Suite returns the analyzers cbmalint runs, in reporting order.
func Suite() []*framework.Analyzer {
	return []*framework.Analyzer{
		nodeterm.Analyzer,
		obsclock.Analyzer,
		rngpurpose.Analyzer,
		hotalloc.Analyzer,
		inplacealias.Analyzer,
		golifecycle.Analyzer,
		lockscope.Analyzer,
		ctxflow.Analyzer,
		timerguard.Analyzer,
	}
}
