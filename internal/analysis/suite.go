// Package analysis assembles the cbmalint suite: the repo-specific static
// checks that turn the simulator's reproducibility conventions — injected
// RNG streams, distinct seed-derivation purposes, allocation-free hot
// paths, alias-safe Into/InPlace calls — into CI-enforced rules. See
// DESIGN.md, "Determinism invariants & lint rules".
package analysis

import (
	"cbma/internal/analysis/framework"
	"cbma/internal/analysis/hotalloc"
	"cbma/internal/analysis/inplacealias"
	"cbma/internal/analysis/nodeterm"
	"cbma/internal/analysis/obsclock"
	"cbma/internal/analysis/rngpurpose"
)

// Suite returns the analyzers cbmalint runs, in reporting order.
func Suite() []*framework.Analyzer {
	return []*framework.Analyzer{
		nodeterm.Analyzer,
		obsclock.Analyzer,
		rngpurpose.Analyzer,
		hotalloc.Analyzer,
		inplacealias.Analyzer,
	}
}
