package hotalloc_test

import (
	"testing"

	"cbma/internal/analysis/analysistest"
	"cbma/internal/analysis/hotalloc"
)

func TestBadFixture(t *testing.T) {
	analysistest.Run(t, "testdata/bad", hotalloc.Analyzer)
}

func TestGoodFixture(t *testing.T) {
	analysistest.Run(t, "testdata/good", hotalloc.Analyzer)
}
