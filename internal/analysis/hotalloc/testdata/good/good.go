// Package good holds hot-path code hotalloc accepts: capacity-guarded
// growth, cold error exits, unannotated helpers and a reviewed suppression.
package good

import "fmt"

// grow follows the Into convention: allocation only behind a cap guard,
// so steady-state calls reuse the buffer.
//
//cbma:hotpath
func grow(dst []float64, n int) []float64 {
	if cap(dst) < n {
		dst = make([]float64, n)
	}
	dst = dst[:n]
	return dst
}

// coldError boxes values only on its failing exit, which returns.
//
//cbma:hotpath
func coldError(xs []float64) (float64, error) {
	if len(xs) == 0 {
		return 0, fmt.Errorf("empty input for window %d", 0)
	}
	total := 0.0
	for _, v := range xs {
		total += v
	}
	return total, nil
}

// unannotated helpers may allocate freely.
func unannotated(n int) []float64 {
	return make([]float64, n)
}

// table keeps one deliberate allocation under a reviewed waiver.
//
//cbma:hotpath
func table(n int) []int {
	//cbma:allow hotalloc fixture demonstrates the suppression directive
	return make([]int, n)
}
