// Package bad exercises the hotalloc findings: unguarded allocation,
// closures and interface boxing inside //cbma:hotpath functions.
package bad

func sink(v any) { _ = v }

// process is an annotated hot kernel with unguarded allocations.
//
//cbma:hotpath
func process(dst, src []float64) []float64 {
	tmp := make([]float64, len(src)) // want "make in hot path"
	for i, v := range src {
		tmp[i] = v * 2
	}
	dst = append(dst, tmp...) // want "append in hot path"
	return dst
}

// closure builds its kernel per call.
//
//cbma:hotpath
func closure(xs []float64) float64 {
	f := func(v float64) float64 { return v * v } // want "closure in hot path"
	total := 0.0
	for _, v := range xs {
		total += f(v)
	}
	return total
}

// boxes leaks concrete values through interfaces.
//
//cbma:hotpath
func boxes(x int) any {
	var out any
	out = x // want "stored into interface"
	sink(x) // want "converted to interface"
	return out
}
