// Package hotalloc enforces the allocation discipline of functions marked
// with the `//cbma:hotpath` doc directive — the per-round stage pipeline,
// the dsp correlation kernels and the tag waveform synthesis, which run for
// every collision round of every sweep point. Inside a hot function the
// analyzer flags, intraprocedurally:
//
//   - make calls and appends, unless capacity-guarded (inside an
//     `if cap(…) < n` block — the grow-on-demand Into convention) or on a
//     cold path (an if-block that returns, i.e. an error exit);
//   - function literals (closure environments allocate);
//   - implicit conversions of concrete values to interface parameters or
//     variables (the boxed value escapes), again excluding cold paths.
//
// Allocation moved behind a call into an unannotated helper is out of the
// analyzer's intraprocedural scope by design: the convention is that hot
// bodies stay visibly allocation-free and cold helpers are explicit,
// reviewable exceptions.
package hotalloc

import (
	"go/ast"
	"go/types"

	"cbma/internal/analysis/framework"
)

// Analyzer is the hotalloc check.
var Analyzer = &framework.Analyzer{
	Name: "hotalloc",
	Doc:  "forbid per-call allocation in //cbma:hotpath functions (use the grow-guarded Into convention)",
	Run:  run,
}

// Directive marks a function as a hot path.
const Directive = "cbma:hotpath"

func run(pass *framework.Pass) error {
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if !framework.HasDirective(fd.Doc, Directive) {
				continue
			}
			checkHotFunc(pass, fd)
		}
	}
	return nil
}

// checkHotFunc walks the body keeping the enclosing-node path so each
// finding can consult its ancestors for capacity guards and cold exits.
func checkHotFunc(pass *framework.Pass, fd *ast.FuncDecl) {
	var path []ast.Node
	var walk func(n ast.Node)
	walk = func(n ast.Node) {
		if n == nil {
			return
		}
		path = append(path, n)
		defer func() { path = path[:len(path)-1] }()

		switch n := n.(type) {
		case *ast.FuncLit:
			pass.Reportf(n.Pos(), "closure in hot path allocates its environment; hoist it or pass state explicitly")
			// Do not descend: the closure body executes elsewhere.
			return
		case *ast.CallExpr:
			checkHotCall(pass, n, path)
		case *ast.AssignStmt:
			checkInterfaceAssign(pass, n, path)
		}
		children(n, walk)
	}
	walk(fd.Body)
}

// children visits the direct child nodes of n.
func children(n ast.Node, f func(ast.Node)) {
	first := true
	ast.Inspect(n, func(c ast.Node) bool {
		if first {
			first = false
			return true
		}
		if c != nil {
			f(c)
		}
		return false
	})
}

func checkHotCall(pass *framework.Pass, call *ast.CallExpr, path []ast.Node) {
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if b, ok := pass.TypesInfo.Uses[id].(*types.Builtin); ok {
			switch b.Name() {
			case "make", "new":
				if !capGuarded(pass, path) && !coldPath(path) {
					pass.Reportf(call.Pos(),
						"%s in hot path: reuse caller scratch, or guard growth with `if cap(…) < n` (Into convention)", b.Name())
				}
			case "append":
				if !capGuarded(pass, path) && !coldPath(path) {
					pass.Reportf(call.Pos(),
						"append in hot path grows per call: accumulate into capacity-guarded scratch instead")
				}
			}
			return
		}
	}
	if coldPath(path) {
		return
	}
	checkInterfaceArgs(pass, call)
}

// checkInterfaceArgs flags concrete arguments passed to interface
// parameters: the conversion boxes the value, which escapes to the heap.
func checkInterfaceArgs(pass *framework.Pass, call *ast.CallExpr) {
	tv, ok := pass.TypesInfo.Types[call.Fun]
	if !ok {
		return
	}
	sig, ok := tv.Type.Underlying().(*types.Signature)
	if !ok {
		return
	}
	if call.Ellipsis.IsValid() {
		return // forwarding an existing slice; no per-element boxing here
	}
	params := sig.Params()
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case sig.Variadic() && i >= params.Len()-1:
			pt = params.At(params.Len() - 1).Type().(*types.Slice).Elem()
		case i < params.Len():
			pt = params.At(i).Type()
		default:
			continue
		}
		if !types.IsInterface(pt) {
			continue
		}
		at, ok := pass.TypesInfo.Types[arg]
		if !ok || at.Type == nil {
			continue
		}
		if types.IsInterface(at.Type.Underlying()) || isNil(at.Type) {
			continue
		}
		pass.Reportf(arg.Pos(),
			"concrete %s converted to interface %s in hot path: the boxed value allocates",
			at.Type, pt)
	}
}

// checkInterfaceAssign flags assignments of concrete values into
// interface-typed destinations.
func checkInterfaceAssign(pass *framework.Pass, as *ast.AssignStmt, path []ast.Node) {
	if coldPath(path) {
		return
	}
	if len(as.Lhs) != len(as.Rhs) {
		return // tuple assignment: conversions happen at the call, not here
	}
	for i, lhs := range as.Lhs {
		lt, ok := pass.TypesInfo.Types[lhs]
		if !ok || lt.Type == nil || !types.IsInterface(lt.Type.Underlying()) {
			continue
		}
		rt, ok := pass.TypesInfo.Types[as.Rhs[i]]
		if !ok || rt.Type == nil {
			continue
		}
		if types.IsInterface(rt.Type.Underlying()) || isNil(rt.Type) {
			continue
		}
		pass.Reportf(as.Rhs[i].Pos(),
			"concrete %s stored into interface %s in hot path: the boxed value allocates",
			rt.Type, lt.Type)
	}
}

func isNil(t types.Type) bool {
	b, ok := t.(*types.Basic)
	return ok && b.Kind() == types.UntypedNil
}

// capGuarded reports whether the node path runs through an if-statement
// whose condition consults cap(…) — the grow-on-demand idiom
// `if cap(dst) < n { dst = make(…) }`, which amortizes to zero allocations
// in steady state.
func capGuarded(pass *framework.Pass, path []ast.Node) bool {
	for i := len(path) - 1; i >= 0; i-- {
		ifs, ok := path[i].(*ast.IfStmt)
		if !ok {
			continue
		}
		usesCap := false
		ast.Inspect(ifs.Cond, func(n ast.Node) bool {
			if call, ok := n.(*ast.CallExpr); ok {
				if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
					if b, ok := pass.TypesInfo.Uses[id].(*types.Builtin); ok && b.Name() == "cap" {
						usesCap = true
						return false
					}
				}
			}
			return true
		})
		if usesCap {
			return true
		}
	}
	return false
}

// coldPath reports whether the node path runs through an if-statement whose
// taken block returns — the early-exit (error) shape. Allocations on such
// branches (wrapping an error, snapshotting failure context) happen at most
// once per failing call and are not steady-state garbage.
func coldPath(path []ast.Node) bool {
	for i := len(path) - 1; i > 0; i-- {
		block, ok := path[i].(*ast.BlockStmt)
		if !ok {
			continue
		}
		if _, ok := path[i-1].(*ast.IfStmt); !ok {
			continue
		}
		returns := false
		ast.Inspect(block, func(n ast.Node) bool {
			if _, ok := n.(*ast.ReturnStmt); ok {
				returns = true
				return false
			}
			if _, ok := n.(*ast.FuncLit); ok {
				return false
			}
			return true
		})
		if returns {
			return true
		}
	}
	return false
}
