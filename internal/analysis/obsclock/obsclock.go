// Package obsclock closes the loophole nodeterm's call-site check leaves
// open: nodeterm flags `time.Now()` as a call, but `f := time.Now; f()`
// smuggles the wall clock past it as a value. This analyzer flags any
// reference to a time-package clock function in non-call position —
// assignment, argument, struct literal field, return value — inside the
// determinism scope plus the telemetry layer itself. Telemetry must receive
// time through an injected obs.Clock; the single sanctioned capture lives in
// obs.SystemClock and carries a reviewed //cbma:allow obsclock directive.
package obsclock

import (
	"go/ast"
	"go/types"
	"strings"

	"cbma/internal/analysis/framework"
)

// Analyzer is the obsclock check.
var Analyzer = &framework.Analyzer{
	Name: "obsclock",
	Doc:  "forbid capturing time-package clock functions as values; inject an obs.Clock instead",
	Run:  run,
}

// scope is nodeterm's determinism scope plus the telemetry-bearing layers:
// cbma/internal/obs may *hold* a clock but must receive it injected, so
// even there a raw time.Now capture is a finding; the shard coordinator and
// the cbmaobs analyzer time distributed work exclusively through injected
// clocks (or, for cbmaobs, not at all — it reads event timestamps). cmd/*
// binaries other than cbmaobs stay exempt — they are where the injection
// happens. Packages outside the cbma module (the analyzer's own test
// fixtures) are always in scope.
var scope = []string{
	"cbma/internal/serve/shard",
	"cbma/cmd/cbmaobs",
	"cbma/internal/sim",
	"cbma/internal/fault",
	"cbma/internal/rx",
	"cbma/internal/channel",
	"cbma/internal/mac",
	"cbma/internal/baseline",
	"cbma/internal/core",
	"cbma/internal/geom",
	"cbma/internal/tag",
	"cbma/internal/dsp",
	"cbma/internal/frame",
	"cbma/internal/pn",
	"cbma/internal/stats",
	"cbma/internal/trace",
	"cbma/internal/obs",
}

func inScope(path string) bool {
	if !strings.HasPrefix(path, "cbma") {
		return true // analyzer fixtures
	}
	for _, p := range scope {
		if path == p || strings.HasPrefix(path, p+"/") {
			return true
		}
	}
	return false
}

// clockFuncs are the time-package functions whose value captures the wall
// clock (or the runtime timer) — the same set nodeterm forbids calling.
var clockFuncs = map[string]bool{
	"Now":       true,
	"Since":     true,
	"Until":     true,
	"Tick":      true,
	"After":     true,
	"AfterFunc": true,
	"NewTimer":  true,
	"NewTicker": true,
	"Sleep":     true,
}

func run(pass *framework.Pass) error {
	if !inScope(pass.Pkg.Path()) {
		return nil
	}
	for _, file := range pass.Files {
		// First pass: remember every identifier that is the callee of a call
		// expression — direct calls are nodeterm's findings, not ours.
		callees := map[*ast.Ident]bool{}
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			switch fun := ast.Unparen(call.Fun).(type) {
			case *ast.Ident:
				callees[fun] = true
			case *ast.SelectorExpr:
				callees[fun.Sel] = true
			}
			return true
		})
		// Second pass: any remaining use of a clock function is a value
		// capture.
		ast.Inspect(file, func(n ast.Node) bool {
			id, ok := n.(*ast.Ident)
			if !ok || callees[id] {
				return true
			}
			fn, ok := pass.TypesInfo.Uses[id].(*types.Func)
			if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "time" {
				return true
			}
			// Method values (t.Sub, t.Add) are pure arithmetic on an existing
			// Time; only package-level clock reads are the hazard.
			if fn.Type().(*types.Signature).Recv() != nil {
				return true
			}
			if !clockFuncs[fn.Name()] {
				return true
			}
			pass.Reportf(id.Pos(),
				"time.%s captured as a value: telemetry must receive time through an injected obs.Clock (see internal/obs/clock.go)",
				fn.Name())
			return true
		})
	}
	return nil
}
