package obsclock_test

import (
	"testing"

	"cbma/internal/analysis/analysistest"
	"cbma/internal/analysis/obsclock"
)

func TestBadFixture(t *testing.T) {
	analysistest.Run(t, "testdata/bad", obsclock.Analyzer)
}

func TestGoodFixture(t *testing.T) {
	analysistest.Run(t, "testdata/good", obsclock.Analyzer)
}
