// Package bad exercises every obsclock finding: time-package clock
// functions captured as values — assigned, passed as arguments, stored in
// struct fields, or returned — all of which smuggle the wall clock past
// nodeterm's call-site check.
package bad

import "time"

func assigned() time.Time {
	f := time.Now // want "time.Now captured as a value"
	return f()
}

func passed(measure func(time.Time) time.Duration) time.Duration {
	return measure(time.Time{})
}

func caller() time.Duration {
	return passed(time.Since) // want "time.Since captured as a value"
}

type timers struct {
	sleep func(time.Duration)
	tick  func(time.Duration) <-chan time.Time
}

func stored() timers {
	return timers{
		sleep: time.Sleep, // want "time.Sleep captured as a value"
		tick:  time.Tick,  // want "time.Tick captured as a value"
	}
}

func returned() func() time.Time {
	return time.Now // want "time.Now captured as a value"
}
