// Package good holds code obsclock accepts: injected clock values, method
// values on existing Times, non-clock time functions as values, and a
// reviewed suppression. Direct clock calls are nodeterm's findings, not
// obsclock's, so they pass here too.
package good

import "time"

// Clock mirrors the telemetry layer's injected clock type.
type Clock func() time.Time

type observer struct {
	clock Clock
}

// inject receives the clock as a value from the caller — the sanctioned
// pattern: the capture happened at the composition root, not here.
func inject(c Clock) observer {
	return observer{clock: c}
}

func (o observer) elapsed(start time.Time) time.Duration {
	return o.clock().Sub(start)
}

func methodValue(t time.Time) func(time.Time) time.Duration {
	return t.Sub // method value on an existing Time: arithmetic, not a clock read
}

func nonClock() func(sec int64, nsec int64) time.Time {
	return time.Unix // pure constructor, no wall-clock dependency
}

func directCall() time.Time {
	return time.Now() // direct call: nodeterm's finding, not obsclock's
}

func suppressed() Clock {
	return time.Now //cbma:allow obsclock fixture demonstrates the suppression directive
}
