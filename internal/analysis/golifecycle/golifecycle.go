// Package golifecycle enforces goroutine-lifecycle discipline in the
// long-lived packages (obs, serve/..., cmd/cbmad): a daemon restarts rarely,
// so a goroutine with no shutdown path is a leak that compounds for the
// process lifetime. Every `go` statement must carry a provable way to end:
//
//   - WaitGroup pairing: the goroutine body (or the called function's body)
//     calls (*sync.WaitGroup).Done — the launcher's Add/Wait bounds it;
//   - waiting is bounded: the body calls (*sync.WaitGroup).Wait and returns;
//   - channel-drain loop: the body ranges over a channel, ending at close;
//   - cancellation select/receive: the body receives from ctx.Done() or
//     from a shutdown-named channel (done/stop/quit/exit/close*/shutdown);
//   - an explicit fire-and-forget waiver: `//cbma:fireforget <reason>` on
//     the go statement's line or the line above. The reason is mandatory —
//     a reviewer must see why the goroutine is allowed to outlive its
//     spawner (e.g. a process-lifetime debug listener).
//
// The proof is syntactic and one call deep (`go s.run()` is resolved to
// run's body when its source is loaded); a goroutine whose shutdown path
// lives deeper must be restructured or waivered. The runtime complement is
// internal/leaktest, which verifies at test end that the paths actually run.
package golifecycle

import (
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
	"strings"

	"cbma/internal/analysis/framework"
)

// Analyzer is the golifecycle check.
var Analyzer = &framework.Analyzer{
	Name: "golifecycle",
	Doc:  "goroutines in long-lived packages must have a provable shutdown path or a //cbma:fireforget waiver",
	Run:  run,
}

// scope is the long-lived concurrency surface: the telemetry layer, the
// campaign service layers — including the sharded coordinator/worker
// layer (cbma/internal/serve/shard), whose dispatch, heartbeat-monitor
// and single-writer goroutines this check polices via the serve prefix —
// and the daemon. The simulation packages are deliberately out of scope —
// their worker goroutines are short-lived, WaitGroup-joined within a
// single Run call, and already policed by the determinism analyzers.
// Packages outside the cbma module (the analyzer's own fixtures) are
// always in scope.
var scope = []string{
	"cbma/internal/obs",
	"cbma/internal/serve",
	"cbma/cmd/cbmad",
}

func inScope(path string) bool {
	if !strings.HasPrefix(path, "cbma") {
		return true // analyzer fixtures
	}
	for _, p := range scope {
		if path == p || strings.HasPrefix(path, p+"/") {
			return true
		}
	}
	return false
}

// fireforgetRe matches the waiver directive; the capture is the reason.
var fireforgetRe = regexp.MustCompile(`^//cbma:fireforget\s*(.*)$`)

// shutdownName matches channel identifiers that conventionally signal
// termination.
var shutdownName = regexp.MustCompile(`(?i)^(done|stop|stopped|quit|exit|closing|closed|shutdown)$`)

func run(pass *framework.Pass) error {
	if !inScope(pass.Pkg.Path()) {
		return nil
	}
	for _, file := range pass.Files {
		waivers := fireforgetIndex(pass.Fset, file)
		ast.Inspect(file, func(n ast.Node) bool {
			gs, ok := n.(*ast.GoStmt)
			if !ok {
				return true
			}
			pos := pass.Fset.Position(gs.Pos())
			if reason, ok := waiverFor(waivers, pos.Line); ok {
				if reason == "" {
					pass.Reportf(gs.Pos(), "//cbma:fireforget waiver needs a reason: say why this goroutine may outlive its spawner")
				}
				return true
			}
			body := goroutineBody(pass, gs.Call)
			if body == nil {
				pass.Reportf(gs.Pos(), "goroutine calls a function whose body is not loadable; cannot prove a shutdown path (restructure, or waive with //cbma:fireforget <reason>)")
				return true
			}
			if !hasShutdownPath(pass, body) {
				pass.Reportf(gs.Pos(), "goroutine has no provable shutdown path: pair it with a WaitGroup Add/Done, select on ctx.Done() or a done channel, range over a closing channel, or waive with //cbma:fireforget <reason>")
			}
			return true
		})
	}
	return nil
}

// fireforgetIndex records, per line, the reason of any //cbma:fireforget
// directive in the file.
func fireforgetIndex(fset *token.FileSet, file *ast.File) map[int]string {
	idx := map[int]string{}
	for _, cg := range file.Comments {
		for _, c := range cg.List {
			m := fireforgetRe.FindStringSubmatch(c.Text)
			if m == nil {
				continue
			}
			idx[fset.Position(c.Pos()).Line] = strings.TrimSpace(m[1])
		}
	}
	return idx
}

// waiverFor checks the go statement's line and the line above.
func waiverFor(idx map[int]string, line int) (string, bool) {
	if r, ok := idx[line]; ok {
		return r, true
	}
	r, ok := idx[line-1]
	return r, ok
}

// goroutineBody resolves the body the goroutine will execute: a literal's
// own body, or — one call deep — the declaration of the named function or
// method being started.
func goroutineBody(pass *framework.Pass, call *ast.CallExpr) *ast.BlockStmt {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.FuncLit:
		return fun.Body
	case *ast.Ident:
		if fn, ok := pass.TypesInfo.Uses[fun].(*types.Func); ok {
			if decl := pass.FuncDecl(fn); decl != nil {
				return decl.Body
			}
		}
	case *ast.SelectorExpr:
		if fn, ok := pass.TypesInfo.Uses[fun.Sel].(*types.Func); ok {
			if decl := pass.FuncDecl(fn); decl != nil {
				return decl.Body
			}
		}
	}
	return nil
}

// hasShutdownPath reports whether the body contains any of the accepted
// termination constructs. Nested function literals are included: a
// `defer func() { wg.Done() }()` counts.
func hasShutdownPath(pass *framework.Pass, body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		switch n := n.(type) {
		case *ast.CallExpr:
			switch methodFullName(pass, n) {
			case "(*sync.WaitGroup).Done", "(*sync.WaitGroup).Wait":
				found = true
			}
		case *ast.RangeStmt:
			if t := pass.TypesInfo.TypeOf(n.X); t != nil {
				if _, ok := t.Underlying().(*types.Chan); ok {
					found = true
				}
			}
		case *ast.UnaryExpr:
			if n.Op == token.ARROW && isShutdownChan(pass, n.X) {
				found = true
			}
		}
		return !found
	})
	return found
}

// methodFullName returns the type-checker full name of a call's callee
// ("(*sync.WaitGroup).Done"), or "".
func methodFullName(pass *framework.Pass, call *ast.CallExpr) string {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return ""
	}
	if fn, ok := pass.TypesInfo.Uses[id].(*types.Func); ok {
		return fn.FullName()
	}
	return ""
}

// isShutdownChan reports whether the received-from expression is a
// cancellation signal: ctx.Done() (any context.Context), or a channel whose
// terminal identifier is shutdown-named.
func isShutdownChan(pass *framework.Pass, x ast.Expr) bool {
	switch x := ast.Unparen(x).(type) {
	case *ast.CallExpr:
		// (context.Context).Done() or a same-shaped Done() accessor.
		if name := methodFullName(pass, x); strings.HasSuffix(name, ".Done") {
			return true
		}
	case *ast.Ident:
		return shutdownName.MatchString(x.Name)
	case *ast.SelectorExpr:
		return shutdownName.MatchString(x.Sel.Name)
	}
	return false
}
