// Package good holds the accepted goroutine-lifecycle patterns: WaitGroup
// pairing, channel-drain loops, cancellation selects, done-channel receives,
// WaitGroup-bounded closers, and a reasoned fireforget waiver.
package good

import (
	"context"
	"sync"
)

type pump struct {
	events chan int
	wg     sync.WaitGroup
	stop   chan struct{}
}

// run drains its channel: the goroutine ends when the producer closes it.
func (p *pump) run() {
	for range p.events {
	}
}

func drainLoop(p *pump) {
	go p.run()
}

func waitGroupPaired(p *pump, work func()) {
	p.wg.Add(1)
	go func() {
		defer p.wg.Done()
		work()
	}()
}

func cancellationSelect(ctx context.Context, in chan int, sink func(int)) {
	go func() {
		for {
			select {
			case v := <-in:
				sink(v)
			case <-ctx.Done():
				return
			}
		}
	}()
}

func doneChannelReceive(p *pump, work func()) {
	go func() {
		work()
		<-p.stop
	}()
}

// The closer pattern: the goroutine's lifetime is bounded by the WaitGroup
// it waits on.
func waitBoundedCloser(p *pump) chan struct{} {
	done := make(chan struct{})
	go func() {
		p.wg.Wait()
		close(done)
	}()
	return done
}

func reasonedWaiver(serve func() error) {
	//cbma:fireforget fixture: debug listener serves for the process lifetime by design
	go func() {
		_ = serve()
	}()
}

// The generic framework suppression works too.
func frameworkWaiver(spin func()) {
	go spin() //cbma:allow golifecycle fixture demonstrates the generic suppression
}

// The shard worker's output pattern (internal/serve/shard): every write
// funnels through one goroutine draining a closing channel, so no lock
// ever spans the I/O; the owner closes lines and receives the final error.
func singleWriterDrain(write func(int) error) (chan<- int, <-chan error) {
	lines := make(chan int)
	werr := make(chan error, 1)
	go func() {
		var err error
		for l := range lines {
			if err == nil {
				err = write(l)
			}
		}
		werr <- err
	}()
	return lines, werr
}

// The shard worker's liveness pattern: a WaitGroup-tracked heartbeat
// goroutine stopped by a done channel.
func heartbeatLoop(beat func(), done chan struct{}, wg *sync.WaitGroup) {
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-done:
				return
			default:
				beat()
			}
		}
	}()
}
