// Package bad exercises every golifecycle finding: goroutines with no
// provable shutdown path, unresolvable goroutine bodies, and a fireforget
// waiver that forgot its reason.
package bad

import "sync"

type worker struct {
	jobs chan int
	mu   sync.Mutex
}

// spin loops forever with no cancellation signal: the canonical leak.
func (w *worker) spin() {
	for {
		w.mu.Lock()
		w.mu.Unlock()
	}
}

func leakLoop() {
	w := &worker{jobs: make(chan int)}
	go w.spin() // want "no provable shutdown path"
}

func leakLiteral(out chan<- int) {
	go func() { // want "no provable shutdown path"
		for i := 0; ; i++ {
			out <- i
		}
	}()
}

// A receive from a non-shutdown-named work channel proves nothing: the
// producer may never close it.
func leakWorkChannel(in chan int, sink func(int)) {
	go func() { // want "no provable shutdown path"
		for {
			v := <-in
			sink(v)
		}
	}()
}

// A goroutine body behind a function value cannot be inspected at all.
func leakCallback(callback func()) {
	go callback() // want "cannot prove a shutdown path"
}

func missingReason() {
	//cbma:fireforget
	go func() { // want "waiver needs a reason"
		select {}
	}()
}
