package golifecycle_test

import (
	"testing"

	"cbma/internal/analysis/analysistest"
	"cbma/internal/analysis/golifecycle"
)

func TestBadFixture(t *testing.T) {
	analysistest.Run(t, "testdata/bad", golifecycle.Analyzer)
}

func TestGoodFixture(t *testing.T) {
	analysistest.Run(t, "testdata/good", golifecycle.Analyzer)
}
