package sim

import (
	"context"
	"fmt"

	"cbma/internal/fault"
)

// FaultSweep measures error rate versus fault intensity: for each rate the
// mod callback sets one knob of the fault profile, and the scenario runs as
// one campaign point. The curve is the robustness analogue of the paper's
// Fig. 8 micro benchmarks — how gracefully CBMA degrades as a failure mode
// intensifies.
//
// Every point runs under the SAME derived seed (common random numbers):
// payloads, channel draws and the underlying fault-stream uniforms are
// shared across points, so the only cross-point difference is the profile's
// thresholds. For single-draw fault decisions (e.g. the per-ACK fate draw)
// the fault sets are then nested — a fault that fires at 10% also fires at
// 20% — which is what makes the degradation curves smooth and monotone at
// modest packet counts instead of drowning in sampling noise.
//
// The base scenario's fault profile (if any) supplies the knobs mod does
// not touch; base.Fault itself is never mutated.
//
// Cancellation returns the series built from the points finished so far
// (unfinished points hold the zero Metrics) together with the context's
// error, so an interrupted sweep still flushes its partial curve.
func FaultSweep(ctx context.Context, base Scenario, name string, rates []float64, mod func(*fault.Profile, float64)) (Series, error) {
	points := FaultSweepPoints(base, rates, mod)
	ms, err := RunCampaignContext(ctx, points, CampaignOpts{What: fmt.Sprintf("fault sweep: %s", name)})
	return FaultSweepSeries(name, rates, ms), err
}

// FaultSweepPoints builds the campaign points a FaultSweep runs — one
// scenario per rate, all under the same derived seed (common random
// numbers; see FaultSweep). Exported so callers that execute campaigns
// through another engine (the sharded coordinator, the daemon) run the
// exact same points the in-process sweep would, keeping results
// bit-identical across execution paths.
func FaultSweepPoints(base Scenario, rates []float64, mod func(*fault.Profile, float64)) []Scenario {
	points := make([]Scenario, 0, len(rates))
	for _, r := range rates {
		scn := base
		scn.Deployment.Tags = nil
		scn.Seed = DeriveSeed(base.Seed, seedFaultSweep)
		var p fault.Profile
		if base.Fault != nil {
			p = *base.Fault
		}
		mod(&p, r)
		prof := p
		scn.Fault = &prof
		points = append(points, scn)
	}
	return points
}

// FaultSweepSeries assembles a sweep's Series from the campaign metrics,
// tolerating a short ms (an interrupted campaign flushes the points
// finished so far; unfinished ones hold the zero Metrics).
func FaultSweepSeries(name string, rates []float64, ms []Metrics) Series {
	s := Series{Name: name}
	for i, r := range rates {
		if i >= len(ms) {
			break
		}
		s.Points = append(s.Points, Point{X: r, Metrics: ms[i]})
	}
	return s
}

// FaultSweepAckLoss sweeps the feedback ACK-loss probability — the
// headline robustness curve: error rate versus downlink loss rate. ACK loss
// only bites through the Algorithm 1 feedback loop, so a meaningful curve
// needs base.PowerControl (and typically RandomInitialImpedance, so the
// controller has boot states to repair); without power control the curve is
// flat by construction.
func FaultSweepAckLoss(ctx context.Context, base Scenario, rates []float64) (Series, error) {
	return FaultSweep(ctx, base, "ack loss", rates, func(p *fault.Profile, r float64) {
		p.AckLossProb = r
	})
}

// FaultSweepEnergyOutage sweeps the per-tag mid-frame energy-outage
// probability — the physical-layer degradation curve: outages truncate
// frames, so the error rate climbs directly with the rate.
func FaultSweepEnergyOutage(ctx context.Context, base Scenario, rates []float64) (Series, error) {
	return FaultSweep(ctx, base, "energy outage", rates, func(p *fault.Profile, r float64) {
		p.EnergyOutageProb = r
	})
}
