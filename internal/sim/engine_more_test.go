package sim

import (
	"errors"
	"testing"

	"cbma/internal/pn"
	"cbma/internal/tag"
)

func TestRunScheduleTDMAStyle(t *testing.T) {
	scn := fastScenario()
	scn.NumTags = 3
	scn.Packets = 1
	e, err := NewEngine(scn)
	if err != nil {
		t.Fatal(err)
	}
	m, err := e.RunSchedule([][]int{{0}, {1}, {2}, {0}})
	if err != nil {
		t.Fatal(err)
	}
	if m.FramesSent != 4 {
		t.Errorf("sent %d, want 4", m.FramesSent)
	}
	if m.PerTagSent[0] != 2 || m.PerTagSent[1] != 1 || m.PerTagSent[2] != 1 {
		t.Errorf("per-tag sent %v", m.PerTagSent)
	}
	// Uncontended slots at 1 m deliver.
	if m.FER > 0.5 {
		t.Errorf("FER %v", m.FER)
	}
}

func TestRunScheduleRejectsBadIDs(t *testing.T) {
	scn := fastScenario()
	scn.Packets = 1
	e, err := NewEngine(scn)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.RunSchedule([][]int{{5}}); err == nil {
		t.Fatal("out-of-range tag ID must fail")
	}
	if _, err := e.RunSchedule([][]int{{}}); !errors.Is(err, ErrBadTagCount) {
		t.Fatalf("empty round: got %v, want ErrBadTagCount", err)
	}
}

func TestImpedanceStatesOverride(t *testing.T) {
	scn := fastScenario()
	scn.Packets = 1
	scn.ImpedanceStates = 8
	e, err := NewEngine(scn)
	if err != nil {
		t.Fatal(err)
	}
	// Tags must accept all 8 states of the synthetic ladder.
	tg := e.Tags()[0]
	if err := tg.SetImpedance(8); err != nil {
		t.Errorf("state 8 must be valid with an 8-state bank: %v", err)
	}
	if err := tg.SetImpedance(9); err == nil {
		t.Error("state 9 must be rejected")
	}
	scn.ImpedanceStates = -1
	if _, err := NewEngine(scn); err == nil {
		t.Error("negative state count must fail")
	}
}

func TestRandomInitialImpedanceVariesStates(t *testing.T) {
	scn := fastScenario()
	scn.NumTags = 10
	scn.Deployment.Tags = nil
	scn.Packets = 1
	scn.RandomInitialImpedance = true
	e, err := NewEngine(scn)
	if err != nil {
		t.Fatal(err)
	}
	seen := map[tag.ImpedanceState]bool{}
	for _, tg := range e.Tags() {
		seen[tg.Impedance()] = true
	}
	if len(seen) < 2 {
		t.Errorf("10 random boots landed in %d distinct states", len(seen))
	}
}

func TestStaticChannelFreezesOutcomePattern(t *testing.T) {
	// Under a static channel, a tag either always or never delivers at a
	// given placement (no per-frame fading flips) as long as MAI is absent.
	scn := fastScenario()
	scn.NumTags = 1
	scn.Packets = packets(t, 30)
	scn.StaticChannel = true
	scn.TagLineDistance = 1
	e, err := NewEngine(scn)
	if err != nil {
		t.Fatal(err)
	}
	m, err := e.Run()
	if err != nil {
		t.Fatal(err)
	}
	if m.FramesDelivered != m.FramesSent && m.FramesDelivered != 0 {
		t.Errorf("static single-tag channel delivered %d of %d — expected all or nothing",
			m.FramesDelivered, m.FramesSent)
	}
}

func TestSICScenarioFlagReachesReceiver(t *testing.T) {
	scn := fastScenario()
	scn.Packets = 1
	scn.SIC = true
	e, err := NewEngine(scn)
	if err != nil {
		t.Fatal(err)
	}
	if !e.Receiver().Config().SIC {
		t.Error("SIC flag not propagated to receiver config")
	}
}

func TestRunParallelCoversAllIndices(t *testing.T) {
	hits := make([]int, 100)
	err := RunParallel(100, func(i int) error {
		hits[i]++
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, h := range hits {
		if h != 1 {
			t.Fatalf("index %d hit %d times", i, h)
		}
	}
}

func TestRunParallelPropagatesError(t *testing.T) {
	sentinel := errors.New("boom")
	err := RunParallel(10, func(i int) error {
		if i == 7 {
			return sentinel
		}
		return nil
	})
	if !errors.Is(err, sentinel) {
		t.Fatalf("got %v, want sentinel", err)
	}
}

func TestRunParallelZeroTasks(t *testing.T) {
	if err := RunParallel(0, func(int) error { return nil }); err != nil {
		t.Fatal(err)
	}
}

func TestAllFamiliesStillRunWithSIC(t *testing.T) {
	for _, fam := range []pn.Family{pn.FamilyGold, pn.Family2NC} {
		scn := fastScenario()
		scn.Family = fam
		scn.SIC = true
		scn.Packets = packets(t, 16)
		e, err := NewEngine(scn)
		if err != nil {
			t.Fatalf("%v: %v", fam, err)
		}
		m, err := e.Run()
		if err != nil {
			t.Fatalf("%v: %v", fam, err)
		}
		if m.FER > 0.3 {
			t.Errorf("%v with SIC: FER %v", fam, m.FER)
		}
	}
}
