package sim

import "math/rand"

// This file implements the deterministic per-round RNG stream tree: every
// random draw of a collision round comes from a named sub-stream whose seed
// is derived from (Scenario.Seed, run sequence, phase, round index, stream
// name) through a splitmix64-style mixer. Any round's randomness is thereby
// reconstructible without executing the rounds before it — the property
// that lets steady-state rounds run on parallel workers while producing
// bit-identical Metrics to the serial loop (see DESIGN.md, "Execution
// model").

// StreamID names one independent randomness stream within a round.
type StreamID uint64

// The streams of one collision round. Draws within a stream happen in tag
// (or frame) order; draws across streams are independent, so the stage
// pipeline may consume them in any order without changing outcomes.
const (
	// StreamPayload feeds the per-tag payload bytes.
	StreamPayload StreamID = iota
	// StreamJitter feeds the per-tag clock jitter draws.
	StreamJitter
	// StreamFading feeds shadowing and Rician fading (the link draws).
	StreamFading
	// StreamCFO feeds the per-tag carrier-frequency-offset draws.
	StreamCFO
	// StreamNoise feeds the receiver AWGN.
	StreamNoise
	// StreamAckLoss feeds the ACK downlink loss draws.
	StreamAckLoss
	// StreamExcitation feeds the intermittent (OFDM) excitation gate.
	StreamExcitation
	// StreamMultipath feeds the multipath tap realization.
	StreamMultipath
	// StreamInterference feeds the external interferers (WiFi, Bluetooth).
	StreamInterference
	// StreamSetup feeds one-time engine construction draws (random initial
	// impedance states); static-channel fading uses StreamFading under
	// phaseSetup.
	StreamSetup
	// StreamFaultTag feeds the tag-layer fault draws: the one-time stuck
	// and drift assignments (under phaseSetup) and the per-round extra
	// jitter / energy-outage draws (internal/fault).
	StreamFaultTag
	// StreamFaultChannel feeds the channel-layer fault draws (deep fades,
	// interference bursts).
	StreamFaultChannel
	// StreamFaultAck feeds the feedback-layer fault draws (ACK loss,
	// corruption, spurious ACKs).
	StreamFaultAck
	// StreamFaultExec feeds the execution-layer fault plan (injected panics
	// and transient failures) — drawn once per round, before the attempt
	// loop, so retries cannot re-roll their fate.
	StreamFaultExec
	numStreams
)

// Phases partition the round index space so rounds of different execution
// phases can never share a stream seed.
const (
	// phaseSteady covers the parallelizable steady-state collision rounds;
	// the round index is the packet number.
	phaseSteady uint64 = iota
	// phaseAdhoc covers serially executed rounds with a true sequential
	// dependency or external driver: the Algorithm 1 exploration batches,
	// RunSchedule entries and UserDetection trials. The round index is a
	// monotonic per-engine counter.
	phaseAdhoc
	// phaseSetup covers engine-construction draws (round index 0).
	phaseSetup
)

// Distinct salts keep DeriveSeed's label space and the internal stream
// seeds from aliasing each other (fractional bits of sqrt(2) and sqrt(3)).
const (
	deriveSalt uint64 = 0x6a09e667f3bcc908
	streamSalt uint64 = 0xbb67ae8584caa73b
)

// splitmix64 is the finalizing mixer of Steele et al.'s SplitMix64
// generator: a bijection on uint64 with full avalanche, which makes
// iterated mixing of structured inputs (small indices, reused labels)
// collision-resistant in practice.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// mix64 folds the labels into h, one avalanche round per label so label
// position matters: mix64(h, a, b) != mix64(h, b, a).
func mix64(h uint64, labels ...uint64) uint64 {
	for _, l := range labels {
		h = splitmix64(h ^ splitmix64(l))
	}
	return h
}

// DeriveSeed deterministically derives a child scenario seed from a base
// seed and a sequence of labels (sweep identifier, point index, tag
// count, …). It replaces the additive base.Seed+i+n*1000 arithmetic the
// sweep harnesses used, which collided across sweeps and across
// (point, tag-count) pairs; distinct label sequences give independent
// seeds.
func DeriveSeed(seed int64, labels ...uint64) int64 {
	return int64(mix64(splitmix64(uint64(seed))^deriveSalt, labels...))
}

// streamSeed derives the seed of one named stream of one round.
func streamSeed(seed int64, runSeq, phase, round uint64, id StreamID) int64 {
	return int64(mix64(splitmix64(uint64(seed))^streamSalt, runSeq, phase, round, uint64(id)))
}

// roundStreams lazily materializes the named RNG streams of one round.
// A roundStreams value belongs to a single goroutine (the worker executing
// the round).
type roundStreams struct {
	seed   int64
	runSeq uint64
	phase  uint64
	round  uint64
	rngs   [numStreams]*rand.Rand
}

// newRoundStreams prepares the stream tree node for one round. runSeq
// distinguishes repeated Run/RunSchedule calls on the same engine (each
// placement of a deployment study must see fresh randomness); phase and
// round locate the round within the run.
func newRoundStreams(seed int64, runSeq, phase, round uint64) *roundStreams {
	return &roundStreams{seed: seed, runSeq: runSeq, phase: phase, round: round}
}

// rng returns the round's generator for the given stream, creating it on
// first use.
func (rs *roundStreams) rng(id StreamID) *rand.Rand {
	if rs.rngs[id] == nil {
		rs.rngs[id] = rand.New(rand.NewSource(streamSeed(rs.seed, rs.runSeq, rs.phase, rs.round, id)))
	}
	return rs.rngs[id]
}
