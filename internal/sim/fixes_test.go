package sim

import (
	"errors"
	"sync/atomic"
	"testing"

	"cbma/internal/geom"
)

// TestRunParallelShortCircuits poisons every invocation and requires the
// dispatcher to stop handing out indices once the first error lands:
// in-flight work drains, but nowhere near the full index range may run.
func TestRunParallelShortCircuits(t *testing.T) {
	const n = 10000
	sentinel := errors.New("poison")
	var ran int64
	err := RunParallel(n, func(i int) error {
		atomic.AddInt64(&ran, 1)
		return sentinel
	})
	if !errors.Is(err, sentinel) {
		t.Fatalf("got %v, want the poisoned error", err)
	}
	if got := atomic.LoadInt64(&ran); got >= n/2 {
		t.Fatalf("dispatch continued after the error: %d of %d indices ran", got, n)
	}
}

// TestScenarioKeepsConfiguredTagPositions places tags explicitly while
// leaving the room zero (the "default room, my layout" configuration) and
// requires validation to default only the missing geometry instead of
// replacing the whole deployment.
func TestScenarioKeepsConfiguredTagPositions(t *testing.T) {
	positions := []geom.Point{{X: 1.25, Y: 0.75}, {X: 1.5, Y: -0.5}, {X: 2.0, Y: 0.25}}
	scn := DefaultScenario()
	scn.NumTags = len(positions)
	scn.Deployment = geom.Deployment{Tags: positions} // room and ES/RX left zero
	e, err := NewEngine(scn)
	if err != nil {
		t.Fatal(err)
	}
	got := e.Scenario().Deployment
	if got.Room.Width == 0 {
		t.Error("room must still be defaulted")
	}
	if len(got.Tags) != len(positions) {
		t.Fatalf("tag count changed: %d, want %d", len(got.Tags), len(positions))
	}
	for i, p := range positions {
		if got.Tags[i] != p {
			t.Errorf("tag %d moved to %+v, want %+v", i, got.Tags[i], p)
		}
		if e.Tags()[i].Position() != p {
			t.Errorf("tag %d object placed at %+v, want %+v", i, e.Tags()[i].Position(), p)
		}
	}
}

// TestScenarioDefaultsWholeDeploymentWhenEmpty pins the pre-existing
// behaviour for a fully zero deployment: default room, default ES/RX, line
// placement for the tags.
func TestScenarioDefaultsWholeDeploymentWhenEmpty(t *testing.T) {
	scn := DefaultScenario()
	scn.Deployment = geom.Deployment{}
	e, err := NewEngine(scn)
	if err != nil {
		t.Fatal(err)
	}
	dep := e.Scenario().Deployment
	def := geom.NewDeployment(0.5)
	if dep.Room != def.Room {
		t.Errorf("room = %+v, want default %+v", dep.Room, def.Room)
	}
	if len(dep.Tags) != scn.NumTags {
		t.Errorf("line placement produced %d tags, want %d", len(dep.Tags), scn.NumTags)
	}
}
