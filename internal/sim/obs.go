package sim

import "cbma/internal/obs"

// engineObs caches the engine's telemetry instruments: registry lookups take
// a mutex, so they happen once at engine construction and the round hot path
// touches only pre-resolved atomics. The zero value (nil observer) turns
// every operation into a no-op — the pipeline carries no telemetry branches.
type engineObs struct {
	o *obs.Observer
	// Stage timing of the round pipeline (executeRound).
	build, mix, decode *obs.Histogram
	// Round lifecycle counters (commitRound).
	executed    *obs.Counter
	quarantined *obs.Counter
	retries     *obs.Counter
	faults      *obs.Counter
}

// newEngineObs resolves the engine's instruments against o's registry.
func newEngineObs(o *obs.Observer) engineObs {
	return engineObs{
		o:           o,
		build:       o.Histogram("sim.stage.build_ns"),
		mix:         o.Histogram("sim.stage.mix_ns"),
		decode:      o.Histogram("sim.stage.decode_ns"),
		executed:    o.Counter("sim.rounds.executed"),
		quarantined: o.Counter("sim.rounds.quarantined"),
		retries:     o.Counter("sim.rounds.retries"),
		faults:      o.Counter("sim.faults.fired"),
	}
}

// record accounts one committed round and, when a sink is attached, emits
// its lifecycle (and fault) events. Called only from Engine.commitRound,
// which runs in round order on a single goroutine even under parallel
// execution — so the round event stream is ordered like the serial run's.
func (eo *engineObs) record(round uint64, res roundResult) {
	if eo.o == nil {
		return
	}
	if res.quarantined {
		eo.quarantined.Inc()
	} else {
		eo.executed.Inc()
	}
	if res.retries > 0 {
		eo.retries.Add(int64(res.retries))
	}
	if n := res.faults.Total(); n > 0 {
		eo.faults.Add(int64(n))
	}
	if !eo.o.EmitsEvents() {
		return
	}
	f := map[string]any{
		"round":     round,
		"sent":      res.sent,
		"delivered": res.delivered,
		"acked":     len(res.acked),
	}
	if res.quarantined {
		f["quarantined"] = true
	}
	if res.retries > 0 {
		f["retries"] = res.retries
	}
	eo.o.Emit("round", f)
	if ff := res.faults.Fields(); ff != nil {
		ff["round"] = round
		eo.o.Emit("faults_fired", ff)
	}
}
