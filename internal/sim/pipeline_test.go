package sim

import (
	"math/rand"
	"reflect"
	"testing"

	"cbma/internal/channel"
	"cbma/internal/fault"
	"cbma/internal/trace"
)

// workerScenarios are the bit-reproducibility fixtures: the plain engine,
// the SIC receiver under CFO, power control with a lossy ACK downlink, a
// static channel with external interference, and a run with every fault
// layer armed — together they exercise every RNG stream of the round
// pipeline, including the fault streams and the quarantine/retry paths.
func workerScenarios(t *testing.T) map[string]Scenario {
	t.Helper()
	plain := fastScenario()
	plain.NumTags = 3
	plain.Packets = packets(t, 24)

	sic := fastScenario()
	sic.NumTags = 4
	sic.Packets = packets(t, 24)
	sic.SIC = true
	sic.CFOppm = 0.1
	sic.PhaseTracking = true

	pc := fastScenario()
	pc.NumTags = 3
	pc.Packets = packets(t, 24)
	pc.PowerControl = true
	pc.RandomInitialImpedance = true
	pc.AckLossProb = 0.2

	static := fastScenario()
	static.NumTags = 3
	static.Packets = packets(t, 24)
	static.StaticChannel = true
	static.Interferers = []channel.Interferer{
		&channel.WiFiInterferer{PowerDBm: static.Channel.NoiseFloorDBm + 10},
	}
	static.OFDMExcitation = true

	faulted := fastScenario()
	faulted.NumTags = 3
	faulted.Packets = packets(t, 24)
	faulted.PowerControl = true
	faulted.RandomInitialImpedance = true
	faulted.Fault = &fault.Profile{
		StuckImpedanceProb: 0.3,
		ClockDriftChips:    0.2,
		ExtraJitterChips:   0.2,
		EnergyOutageProb:   0.1,
		AckLossProb:        0.2,
		AckCorruptProb:     0.1,
		SpuriousAckProb:    0.05,
		FeedbackRetries:    2,
		BurstProb:          0.1,
		DeepFadeProb:       0.1,
		PanicProb:          0.05,
		TransientErrProb:   0.1,
	}

	return map[string]Scenario{
		"plain":        plain,
		"sic+cfo":      sic,
		"powercontrol": pc,
		"static+intf":  static,
		"faulted":      faulted,
	}
}

// TestRunWorkerEquivalence is the refactor's hard invariant: for a fixed
// seed, Engine.Run returns bit-identical Metrics regardless of the worker
// count.
func TestRunWorkerEquivalence(t *testing.T) {
	for name, scn := range workerScenarios(t) {
		t.Run(name, func(t *testing.T) {
			var results []Metrics
			for _, workers := range []int{1, 4, 7} {
				s := scn
				s.Workers = workers
				e, err := NewEngine(s)
				if err != nil {
					t.Fatal(err)
				}
				m, err := e.Run()
				if err != nil {
					t.Fatal(err)
				}
				results = append(results, m)
			}
			for i := 1; i < len(results); i++ {
				if !reflect.DeepEqual(results[0], results[i]) {
					t.Errorf("metrics diverge between 1 worker and %d workers:\n  W=1: %+v\n  W=n: %+v",
						[]int{1, 4, 7}[i], results[0], results[i])
				}
			}
		})
	}
}

// TestCampaignWorkerEquivalence extends the invariant to RunCampaign: the
// worker budget must never change results, only wall-clock.
func TestCampaignWorkerEquivalence(t *testing.T) {
	base := fastScenario()
	base.Packets = packets(t, 16)
	var points []Scenario
	for i := 0; i < 4; i++ {
		scn := base
		scn.NumTags = 2 + i%2
		scn.Seed = DeriveSeed(base.Seed, 9999, uint64(i))
		points = append(points, scn)
	}
	serial, err := RunCampaign(points, CampaignOpts{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	wide, err := RunCampaign(points, CampaignOpts{Workers: 8})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(serial, wide) {
		t.Errorf("campaign results depend on worker budget:\n  W=1: %+v\n  W=8: %+v", serial, wide)
	}
}

// randomPartial builds a plausible per-round Metrics partial.
func randomPartial(rng *rand.Rand, numTags int) Metrics {
	m := Metrics{
		NumTags:         numTags,
		FramesSent:      numTags,
		AirtimeSamples:  int64(10000 + rng.Intn(5000)),
		PerTagSent:      make([]int, numTags),
		PerTagDelivered: make([]int, numTags),
	}
	for id := 0; id < numTags; id++ {
		m.PerTagSent[id] = 1
		if rng.Intn(2) == 0 {
			m.PerTagDelivered[id] = 1
			m.FramesDelivered++
		}
		if rng.Intn(2) == 0 {
			m.FramesDetected++
		}
	}
	if rng.Intn(8) == 0 {
		m.FalseFrames++
	}
	return m
}

// TestMetricsMergeProperties checks that merging per-round partials in any
// order or partition equals serial accumulation, and that finalize is
// idempotent on the merged result.
func TestMetricsMergeProperties(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	const numTags, rounds = 5, 40
	partials := make([]Metrics, rounds)
	for i := range partials {
		partials[i] = randomPartial(rng, numTags)
	}

	var serial Metrics
	for _, p := range partials {
		serial.Merge(p)
	}

	// Any order: merge a shuffled copy.
	var shuffled Metrics
	for _, i := range rng.Perm(rounds) {
		shuffled.Merge(partials[i])
	}
	if !reflect.DeepEqual(serial, shuffled) {
		t.Errorf("shuffled merge differs from serial:\n  serial:   %+v\n  shuffled: %+v", serial, shuffled)
	}

	// Any partition: merge chunks into sub-aggregates, then merge those.
	for _, chunk := range []int{1, 3, 7, rounds} {
		var parted Metrics
		for lo := 0; lo < rounds; lo += chunk {
			hi := lo + chunk
			if hi > rounds {
				hi = rounds
			}
			var sub Metrics
			for _, p := range partials[lo:hi] {
				sub.Merge(p)
			}
			parted.Merge(sub)
		}
		if !reflect.DeepEqual(serial, parted) {
			t.Errorf("chunk-%d partition merge differs from serial", chunk)
		}
	}

	// Ragged per-tag slices grow to the widest input.
	var ragged Metrics
	ragged.Merge(Metrics{PerTagSent: []int{1}, PerTagDelivered: []int{1}})
	ragged.Merge(Metrics{PerTagSent: []int{0, 2, 3}, PerTagDelivered: []int{0, 1, 0}})
	if want := []int{1, 2, 3}; !reflect.DeepEqual(ragged.PerTagSent, want) {
		t.Errorf("ragged PerTagSent = %v, want %v", ragged.PerTagSent, want)
	}

	// finalize idempotence: deriving rates twice changes nothing, and
	// AirtimeSeconds comes out of the integral sample count.
	scn := DefaultScenario()
	once := serial
	once.finalize(scn)
	twice := once
	twice.finalize(scn)
	if !reflect.DeepEqual(once, twice) {
		t.Errorf("finalize is not idempotent:\n  once:  %+v\n  twice: %+v", once, twice)
	}
	if want := float64(serial.AirtimeSamples) / scn.SampleRateHz; once.AirtimeSeconds != want {
		t.Errorf("AirtimeSeconds = %v, want %v from %d samples", once.AirtimeSeconds, want, serial.AirtimeSamples)
	}
}

// TestTraceRecordParallel guards the recorder against out-of-order round
// completion: a W>1 run must record the identical trace, in Seq order, as
// the serial run, and the trace must replay serially.
func TestTraceRecordParallel(t *testing.T) {
	scn := fastScenario()
	scn.NumTags = 3
	scn.Packets = packets(t, 24)

	record := func(workers int) *trace.Trace {
		s := scn
		s.Workers = workers
		e, err := NewEngine(s)
		if err != nil {
			t.Fatal(err)
		}
		rec := trace.NewRecorder("parallel capture")
		e.RecordTo(rec)
		if _, err := e.Run(); err != nil {
			t.Fatal(err)
		}
		return rec.Trace()
	}
	serial := record(1)
	parallel := record(4)

	if len(parallel.Rounds) != scn.Packets {
		t.Fatalf("recorded %d rounds, want %d", len(parallel.Rounds), scn.Packets)
	}
	for i, r := range parallel.Rounds {
		if r.Seq != i {
			t.Fatalf("round %d recorded with Seq %d — rounds committed out of order", i, r.Seq)
		}
	}
	if !reflect.DeepEqual(serial, parallel) {
		t.Errorf("parallel run recorded a different trace than the serial run")
	}

	// The recorded rounds replay: each consumes one entry in Seq order
	// (replay forces the serial path even with Workers set).
	replay := scn
	replay.Workers = 4
	e, err := NewEngine(replay)
	if err != nil {
		t.Fatal(err)
	}
	player := trace.NewPlayer(parallel)
	e.ReplayFrom(player)
	if _, err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if player.Remaining() != 0 {
		t.Errorf("replay left %d rounds unconsumed", player.Remaining())
	}
}

// TestDeriveSeedCollisionFree checks the property the sweep harnesses rely
// on: distinct label tuples give distinct seeds. The additive arithmetic it
// replaced collided within this exact grid (point i, tag count n with
// i+1000n aliasing across pairs).
func TestDeriveSeedCollisionFree(t *testing.T) {
	seen := map[int64][]uint64{}
	for sweep := uint64(1); sweep <= 12; sweep++ {
		for i := uint64(0); i < 50; i++ {
			for n := uint64(0); n < 12; n++ {
				s := DeriveSeed(1, sweep, i, n)
				if prev, dup := seen[s]; dup {
					t.Fatalf("seed collision: labels (%d,%d,%d) and %v both give %d", sweep, i, n, prev, s)
				}
				seen[s] = []uint64{sweep, i, n}
			}
		}
	}

	// The legacy arithmetic collides on this same grid — the reason it had
	// to go.
	old := func(seed int64, i, n int64) int64 { return seed + i + n*1000 }
	if old(1, 1000, 1) != old(1, 0, 2) {
		t.Fatal("expected the legacy arithmetic to collide on (1000,1) vs (0,2)")
	}

	// Label order matters: (a,b) and (b,a) must not alias.
	if DeriveSeed(1, 2, 3) == DeriveSeed(1, 3, 2) {
		t.Error("DeriveSeed is label-order-insensitive")
	}
	// Base seed matters.
	if DeriveSeed(1, 2, 3) == DeriveSeed(2, 2, 3) {
		t.Error("DeriveSeed ignores the base seed")
	}
}

// TestStreamSeedsDistinct checks the per-round stream tree: every
// (runSeq, phase, round, stream) node draws from its own generator seed.
func TestStreamSeedsDistinct(t *testing.T) {
	type node struct {
		runSeq, phase, round uint64
		id                   StreamID
	}
	seen := map[int64]node{}
	for runSeq := uint64(0); runSeq < 3; runSeq++ {
		for phase := uint64(0); phase < 3; phase++ {
			for round := uint64(0); round < 64; round++ {
				for id := StreamID(0); id < numStreams; id++ {
					s := streamSeed(1, runSeq, phase, round, id)
					if prev, dup := seen[s]; dup {
						t.Fatalf("stream seed collision: %+v and %+v both give %d",
							node{runSeq, phase, round, id}, prev, s)
					}
					seen[s] = node{runSeq, phase, round, id}
				}
			}
		}
	}
}

// TestRunWithPositionsResetsPowerControl: each placement must start the
// Algorithm 1 exploration with a full round budget. With a fully lossy ACK
// downlink the loop can never converge, so every run must burn the whole
// 3×N budget; before the fix the controller carried the spent budget into
// the next placement, which then gave up after a single round.
func TestRunWithPositionsResetsPowerControl(t *testing.T) {
	scn := fastScenario()
	scn.NumTags = 3
	scn.Packets = packets(t, 8)
	scn.PacketsPerRound = 2
	scn.PowerControl = true
	scn.RandomInitialImpedance = true
	scn.AckLossProb = 1

	e, err := NewEngine(scn)
	if err != nil {
		t.Fatal(err)
	}
	positions := e.Scenario().Deployment.Tags[:scn.NumTags]
	wantRounds := 3 * scn.NumTags
	for run := 0; run < 2; run++ {
		m, err := e.RunWithPositions(positions)
		if err != nil {
			t.Fatal(err)
		}
		if m.PowerControlRounds != wantRounds {
			t.Errorf("placement %d used %d power-control rounds, want the full %d budget",
				run, m.PowerControlRounds, wantRounds)
		}
		if m.PowerControlConverged {
			t.Errorf("placement %d converged with a fully lossy ACK downlink", run)
		}
	}
}

// TestRepeatedRunsDrawFreshRandomness: two Run calls on one engine must not
// replay the same per-round streams (runSeq separates them); two engines
// with the same scenario must reproduce each other exactly.
func TestRepeatedRunsDrawFreshRandomness(t *testing.T) {
	scn := fastScenario()
	scn.NumTags = 3
	scn.Packets = packets(t, 24)

	e, err := NewEngine(scn)
	if err != nil {
		t.Fatal(err)
	}
	rec1 := trace.NewRecorder("run 1")
	e.RecordTo(rec1)
	m1, err := e.Run()
	if err != nil {
		t.Fatal(err)
	}
	rec2 := trace.NewRecorder("run 2")
	e.RecordTo(rec2)
	if _, err := e.Run(); err != nil {
		t.Fatal(err)
	}
	e.RecordTo(nil)
	// Same engine, consecutive runs: fresh randomness. The recorded
	// channel realizations (continuous fading draws) coincide only if the
	// second run replayed the first's streams — i.e. runSeq was not mixed
	// into the stream seeds.
	if reflect.DeepEqual(rec1.Trace().Rounds, rec2.Trace().Rounds) {
		t.Errorf("second Run drew the first run's channel realizations — runSeq not mixed into stream seeds")
	}

	// Fresh engine, same scenario: bit-identical first run.
	f, err := NewEngine(scn)
	if err != nil {
		t.Fatal(err)
	}
	m3, err := f.Run()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(m1, m3) {
		t.Errorf("fresh engine did not reproduce the first run:\n  m1: %+v\n  m3: %+v", m1, m3)
	}
}
