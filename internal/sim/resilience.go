package sim

import (
	"errors"
	"fmt"
	"runtime/debug"

	"cbma/internal/fault"
	"cbma/internal/rx"
	"cbma/internal/tag"
)

// This file is the resilient round runner: every collision round — serial,
// parallel or adhoc — executes through resilientRound, which recovers
// panics into quarantined rounds and retries injected transient failures
// with a bounded attempt budget, so a single bad round degrades a campaign
// instead of killing it. Backoff is logical, not wall-clock: the retry
// budget is a fixed attempt count and the power controller's feedback
// backoff grows measurement batches — the simulator never sleeps, keeping
// runs deterministic and instant regardless of fault rates.

// RoundPanicError wraps a panic recovered while executing one round. It is
// never returned to callers — the round is quarantined instead — but it is
// the internal carrier between the recovery point and the quarantine
// accounting, and tests assert on it.
type RoundPanicError struct {
	// Round is the panicking round's index within its phase.
	Round uint64
	// Value is the recovered panic value; Stack the goroutine stack at
	// recovery time.
	Value any
	Stack []byte
	// Injected reports the panic was planted by the fault layer (the value
	// is fault.ErrInjectedPanic) rather than organic.
	Injected bool
}

// Error implements error.
func (e *RoundPanicError) Error() string {
	return fmt.Sprintf("sim: round %d panicked: %v", e.Round, e.Value)
}

// resilientRound executes one round with panic recovery and transient-retry
// handling. The execution-fault plan is drawn once, before the attempt
// loop, so a retry cannot re-roll the round's fate; each attempt rebuilds
// the round's stream node from scratch, so a successful retry is
// bit-identical to an undisturbed first attempt. A round that panics (or
// exhausts its transient retries) is returned as a quarantined roundResult
// with a nil error; only genuine configuration errors propagate.
func (e *Engine) resilientRound(active []*tag.Tag, rs *roundStreams, rb *roundBuffers, recv *rx.Receiver) (roundResult, error) {
	var plan fault.ExecPlan
	maxRetries := 0
	if e.inj != nil {
		if e.inj.ExecFaults() {
			plan = e.inj.ExecPlan(rs.rng(StreamFaultExec))
		}
		maxRetries = e.inj.MaxRoundRetries()
	}
	transients := 0
	for attempt := 0; ; attempt++ {
		// Fresh stream node per attempt: lazily created streams inside a
		// partially executed attempt must not leak consumed draws into the
		// retry.
		ars := newRoundStreams(rs.seed, rs.runSeq, rs.phase, rs.round)
		res, err := e.attemptRound(active, ars, rb, recv, plan, attempt)
		if err == nil {
			res.retries = attempt
			res.faults.TransientErrors += transients
			return res, nil
		}
		if pe, ok := err.(*RoundPanicError); ok {
			// A panic means the round's state is suspect and — being
			// deterministic — a retry would panic again. Quarantine.
			// The quarantine event fires here, at the failure site, so its
			// timestamp reflects when the round actually died; under parallel
			// execution these events interleave across rounds (the ordered
			// lifecycle record is commitRound's "round" event stream).
			if e.eobs.o.EmitsEvents() {
				e.eobs.o.Emit("round_quarantined", map[string]any{
					"round": rs.round, "attempt": attempt, "injected": pe.Injected,
				})
			}
			q := roundResult{quarantined: true, retries: attempt}
			q.faults.TransientErrors = transients
			if pe.Injected {
				q.faults.InjectedPanics = 1
			}
			return q, nil
		}
		if fault.IsTransient(err) {
			transients++
			if attempt < maxRetries {
				if e.eobs.o.EmitsEvents() {
					e.eobs.o.Emit("round_retry", map[string]any{
						"round": rs.round, "attempt": attempt,
					})
				}
				continue
			}
			if e.eobs.o.EmitsEvents() {
				e.eobs.o.Emit("round_quarantined", map[string]any{
					"round": rs.round, "attempt": attempt, "transient": true,
				})
			}
			q := roundResult{quarantined: true, retries: attempt}
			q.faults.TransientErrors = transients
			return q, nil
		}
		return res, err
	}
}

// attemptRound is one guarded attempt: the injected execution faults fire
// first (transient failures gate the attempt, then a planned panic goes
// through the real panic/recover machinery so the recovery path is
// genuinely exercised), then the round pipeline runs under recover.
func (e *Engine) attemptRound(active []*tag.Tag, rs *roundStreams, rb *roundBuffers, recv *rx.Receiver, plan fault.ExecPlan, attempt int) (res roundResult, err error) {
	defer func() {
		if r := recover(); r != nil {
			perr, isErr := r.(error)
			err = &RoundPanicError{
				Round:    rs.round,
				Value:    r,
				Stack:    debug.Stack(),
				Injected: isErr && errors.Is(perr, fault.ErrInjectedPanic),
			}
		}
	}()
	if attempt < plan.FailAttempts {
		return res, fmt.Errorf("%w (attempt %d)", fault.ErrTransient, attempt)
	}
	if plan.Panic {
		panic(fault.ErrInjectedPanic)
	}
	return e.executeRound(active, rs, rb, recv)
}
