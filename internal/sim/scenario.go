// Package sim is the CBMA waveform-level simulation engine: it composes an
// excitation source, N backscatter tags, the RF channel and the receiver
// into chip-accurate collision experiments, and exposes the metric loops
// behind every table and figure of the paper's evaluation (see DESIGN.md's
// per-experiment index).
package sim

import (
	"errors"
	"fmt"
	"math"

	"cbma/internal/channel"
	"cbma/internal/fault"
	"cbma/internal/frame"
	"cbma/internal/geom"
	"cbma/internal/obs"
	"cbma/internal/pn"
)

// Defaults mirroring the paper's implementation (§VI, §VII).
const (
	// DefaultSampleRateHz is the receiver sampling rate f_s.
	DefaultSampleRateHz = 20e6
	// DefaultChipRateHz is the on-air OOK symbol rate (the paper's 1 µs
	// symbol time → 1 Mbps "bit rate" in its terminology).
	DefaultChipRateHz = 1e6
	// MaxSamplesPerChip caps oversampling so low-bitrate sweeps stay
	// tractable; beyond ~8 samples per chip the decoder gains nothing.
	MaxSamplesPerChip = 8
)

// Errors returned by scenario validation.
var (
	ErrBadTagCount = errors.New("sim: tag count must be positive")
	ErrBadPackets  = errors.New("sim: packet count must be positive")
	ErrNoPositions = errors.New("sim: deployment has fewer tag positions than tags")
)

// Scenario fully describes one experiment configuration. The zero value is
// not runnable; start from DefaultScenario.
type Scenario struct {
	// Seed drives every random draw; equal seeds give identical runs.
	Seed int64
	// NumTags is the number of concurrently transmitting tags.
	NumTags int
	// Family selects the spreading-code family; GoldDegree sizes Gold and
	// Kasami families.
	Family     pn.Family
	GoldDegree uint
	// PayloadBytes is the per-frame payload size.
	PayloadBytes int
	// Packets is the number of collision rounds to simulate.
	Packets int
	// ChipRateHz is the OOK symbol rate; SampleRateHz the receiver rate.
	ChipRateHz   float64
	SampleRateHz float64
	// Frame configures framing (preamble length for Fig. 8(c)).
	Frame frame.Config
	// Channel holds the radio parameters (Tx power for Fig. 8(b)).
	Channel channel.Params
	// Deployment fixes ES, RX and tag positions. Leave Tags empty to have
	// Run place them on the canonical measurement line.
	Deployment geom.Deployment
	// TagLineDistance places tags (when Deployment.Tags is empty) on a
	// vertical line this far from the receiver, matching the Fig. 8(a)
	// distance sweep. Zero selects 1 m.
	TagLineDistance float64
	// JitterChips is the per-frame uniform clock jitter of each tag in
	// chips (±JitterChips/2). Zero selects 0.4 — sub-chip skew of
	// excitation-synchronized hardware.
	JitterChips float64
	// ExtraDelayChips optionally delays individual tags by fixed chip
	// counts (Fig. 11 asynchrony study). Indexed by tag; missing entries
	// mean zero.
	ExtraDelayChips []float64
	// Interferers inject external signals (Fig. 12 WiFi/Bluetooth cases).
	Interferers []channel.Interferer
	// OFDMExcitation gates tag reflections with an intermittent excitation
	// envelope (Fig. 12 case iv).
	OFDMExcitation bool
	// Multipath optionally applies a tapped-delay echo profile.
	Multipath *channel.Multipath
	// DetectThreshold and SearchChips override receiver defaults when
	// non-zero.
	DetectThreshold float64
	SearchChips     int
	// SIC enables the receiver's successive-interference-cancellation
	// stage (see rx.Config.SIC). Off by default: the paper's plain
	// correlation receiver is the system under study.
	SIC bool
	// PowerControl enables the Algorithm 1 loop; PacketsPerRound sets the
	// measurement batch between adjustment rounds (zero selects 20).
	PowerControl    bool
	PacketsPerRound int
	// Oracle power control (EqualizePower) replaces the feedback loop —
	// used by ablations. Ignored unless PowerControl is set.
	OraclePowerControl bool
	// CFOppm draws each tag a carrier-frequency offset uniformly in
	// ±CFOppm parts-per-million of the carrier, modelling the cheap tag
	// oscillators the paper's §VIII discussion worries about. The offset
	// rotates the tag's baseband phase across the frame; see
	// Scenario.PhaseTracking for the receiver-side answer.
	CFOppm float64
	// PhaseTracking enables the receiver's decision-directed phase
	// tracking (rx.Config.PhaseTracking) — the extension that restores
	// coherent decoding under CFO.
	PhaseTracking bool
	// AckLossProb drops each ACK delivery to the tag with this
	// probability, modelling an unreliable downlink. It starves the
	// Algorithm 1 feedback loop without changing receiver-side metrics.
	AckLossProb float64
	// StaticChannel freezes each tag's fading/shadowing coefficient for
	// the whole run instead of redrawing it per frame — the model of a
	// stationary bench measurement (the paper's Fig. 7 table), used by the
	// user-detection micro benchmark. Dynamic per-frame block fading (the
	// default) models people and objects moving through the office.
	StaticChannel bool
	// ImpedanceStates overrides the tag impedance bank with a synthetic
	// uniform ladder of this many states (tag.UniformBank) — the
	// granularity ablation. Zero keeps the paper's four-component bank.
	ImpedanceStates int
	// RandomInitialImpedance powers each tag up in a uniformly random
	// impedance state instead of full reflection, modelling hardware whose
	// switch state at boot is arbitrary. This is the regime where the
	// ACK-driven Algorithm 1 has something to fix — §V-B's "we have to
	// increase the power" presumes tags are not already at their best
	// state — and it is enabled for both arms of the Fig. 9(c) and
	// Fig. 10 comparisons.
	RandomInitialImpedance bool
	// Workers sets how many goroutines execute the steady-state collision
	// rounds. Zero or one selects the serial path. Any value produces
	// bit-identical Metrics — rounds draw from per-round RNG streams and
	// commit in round order — so Workers is purely a wall-clock knob.
	Workers int
	// ReferenceSync forces the receiver's pre-optimization timing
	// acquisition (rx.Config.ReferenceSync): streaming energy detection and
	// the exhaustive alignment scan. The sync equivalence tests run every
	// scenario through both paths and require bit-identical Metrics, which
	// is the guarantee that lets the fast path be the default.
	ReferenceSync bool
	// Fault, when non-nil, enables the deterministic fault-injection layer
	// (internal/fault): stuck impedance switches, clock drift, mid-frame
	// energy outages, ACK loss/corruption, interference bursts, deep fades
	// and injected execution failures, all drawn from dedicated per-round
	// RNG streams so schedules are bit-identical for any worker count. The
	// profile is shared by value-copied scenarios and must not be mutated
	// after the scenario is handed to an engine. A fault profile also
	// enables the receiver's re-sync fallback (rx.Config.ResyncFallback)
	// and, when FeedbackRetries is set, the power controller's
	// feedback-timeout path.
	Fault *fault.Profile
	// Obs, when non-nil, attaches the telemetry layer (internal/obs): stage
	// and receiver-phase timing spans, round/fault/power-control events and
	// campaign progress. Telemetry is strictly observational — the engine
	// never consults it for control flow, it consumes no simulation
	// randomness, and it reads time only through its own injected clock — so
	// Metrics are bit-identical with Obs nil or set, at any worker count
	// (TestRunObsEquivalence). One observer may be shared by every scenario
	// of a campaign; all its instruments are concurrency-safe.
	Obs *obs.Observer
}

// DefaultScenario returns a runnable baseline: 2 tags with Gold-31 codes on
// the paper's canonical geometry.
func DefaultScenario() Scenario {
	return Scenario{
		Seed:            1,
		NumTags:         2,
		Family:          pn.FamilyGold,
		GoldDegree:      5,
		PayloadBytes:    16,
		Packets:         100,
		ChipRateHz:      DefaultChipRateHz,
		SampleRateHz:    DefaultSampleRateHz,
		Channel:         channel.DefaultParams(),
		Deployment:      geom.NewDeployment(0.5),
		TagLineDistance: 1.0,
		JitterChips:     0.4,
		PacketsPerRound: 20,
	}
}

// SamplesPerChip derives the oversampling factor from the rates, clamped to
// [1, MaxSamplesPerChip]. The clamp's lower edge is where the paper's
// Fig. 9(a) "too few sampling points" degradation comes from.
func (s Scenario) SamplesPerChip() int {
	if s.ChipRateHz <= 0 || s.SampleRateHz <= 0 {
		return 4
	}
	spc := int(math.Round(s.SampleRateHz / s.ChipRateHz))
	if spc < 1 {
		spc = 1
	}
	if spc > MaxSamplesPerChip {
		spc = MaxSamplesPerChip
	}
	return spc
}

// validate normalizes the scenario and reports configuration errors.
func (s *Scenario) validate() error {
	if s.NumTags <= 0 {
		return ErrBadTagCount
	}
	if s.Packets <= 0 {
		return ErrBadPackets
	}
	if s.PayloadBytes <= 0 {
		s.PayloadBytes = 16
	}
	if s.PayloadBytes > frame.MaxPayload {
		return fmt.Errorf("sim: payload %d exceeds %d", s.PayloadBytes, frame.MaxPayload)
	}
	if s.Family == 0 {
		s.Family = pn.FamilyGold
	}
	if s.GoldDegree == 0 {
		s.GoldDegree = 5
	}
	if s.ChipRateHz <= 0 {
		s.ChipRateHz = DefaultChipRateHz
	}
	if s.SampleRateHz <= 0 {
		s.SampleRateHz = DefaultSampleRateHz
	}
	if s.TagLineDistance == 0 {
		s.TagLineDistance = 1
	}
	if s.PacketsPerRound <= 0 {
		s.PacketsPerRound = 20
	}
	if s.Workers < 0 {
		return fmt.Errorf("sim: workers must be non-negative, got %d", s.Workers)
	}
	if s.ImpedanceStates < 0 {
		return fmt.Errorf("sim: impedance states must be non-negative, got %d", s.ImpedanceStates)
	}
	if s.Channel.CarrierHz == 0 {
		s.Channel = channel.DefaultParams()
	}
	if s.Deployment.Room.Width == 0 {
		// Default only the missing geometry. Replacing the whole Deployment
		// here used to discard caller-provided tag positions (and ES/RX
		// placements) whenever the room was left zero — the common way to
		// say "default room, my layout".
		def := geom.NewDeployment(0.5)
		s.Deployment.Room = def.Room
		if s.Deployment.ES == (geom.Point{}) && s.Deployment.RX == (geom.Point{}) {
			s.Deployment.ES = def.ES
			s.Deployment.RX = def.RX
		}
	}
	if len(s.Deployment.Tags) == 0 {
		// Canonical micro-benchmark geometry (§VII-B "impact of distance"):
		// tags on a vertical line TagLineDistance from the receiver, spread
		// over 40 cm (shrinking with range so very close measurements do
		// not manufacture a geometric near-far spread), with the excitation
		// source moved to keep the paper's fixed 50 cm ES-to-tag spacing.
		tagX := s.Deployment.RX.X - s.TagLineDistance
		span := 0.4
		if lim := 2 * s.TagLineDistance; lim < span {
			span = lim
		}
		s.Deployment.PlaceTagsLine(s.NumTags, tagX, span)
		s.Deployment.ES = geom.Point{X: tagX - 0.5}
	}
	if len(s.Deployment.Tags) < s.NumTags {
		return fmt.Errorf("%w: %d < %d", ErrNoPositions, len(s.Deployment.Tags), s.NumTags)
	}
	return nil
}
