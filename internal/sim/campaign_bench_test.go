package sim

import (
	"fmt"
	"testing"
)

// fig8aQuickPoints is the paperbench Quick fig8a-equivalent workload: the
// Fig. 8(a) distance × tag-count grid at the smoke-run packet budget. The
// benchmark runs the identical scenario list at different worker budgets;
// results are bit-identical (TestCampaignWorkerEquivalence), so the only
// thing the budget buys is wall-clock.
func fig8aQuickPoints() []Scenario {
	base := DefaultScenario()
	base.Packets = 30
	base.PayloadBytes = 8
	distances := []float64{0.1, 0.5, 1.0, 1.5, 2.0, 2.5, 3.0, 3.5, 4.0}
	tagCounts := []int{2, 3, 4}
	var points []Scenario
	for _, n := range tagCounts {
		for i, d := range distances {
			scn := base
			scn.NumTags = n
			scn.TagLineDistance = d
			scn.Deployment.Tags = nil
			scn.Seed = DeriveSeed(base.Seed, seedSweepDistance, uint64(i), uint64(n))
			points = append(points, scn)
		}
	}
	return points
}

// BenchmarkCampaignFig8a measures the fig8a-quick campaign at 1 and 4
// workers: the parallel-round acceptance target is ≥2× at 4 workers.
func BenchmarkCampaignFig8a(b *testing.B) {
	for _, workers := range []int{1, 4} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			points := fig8aQuickPoints()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := RunCampaign(points, CampaignOpts{Workers: workers}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkRoundsSingleEngine isolates the per-engine round parallelism:
// one scenario, rounds fanned across Engine workers.
func BenchmarkRoundsSingleEngine(b *testing.B) {
	for _, workers := range []int{1, 4} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			scn := DefaultScenario()
			scn.NumTags = 4
			scn.Packets = 100
			scn.PayloadBytes = 8
			scn.Workers = workers
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				e, err := NewEngine(scn)
				if err != nil {
					b.Fatal(err)
				}
				if _, err := e.Run(); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
