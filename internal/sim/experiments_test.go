package sim

import (
	"testing"

	"cbma/internal/pn"
)

func TestSweepDistanceShape(t *testing.T) {
	scn := fastScenario()
	scn.Packets = packets(t, 60)
	series, err := SweepDistance(scn, []float64{1, 4}, []int{2, 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(series) != 2 {
		t.Fatalf("%d series", len(series))
	}
	for _, s := range series {
		if len(s.Points) != 2 {
			t.Fatalf("series %q has %d points", s.Name, len(s.Points))
		}
		if s.Points[1].Metrics.FER < s.Points[0].Metrics.FER {
			t.Errorf("series %q: FER at 4 m (%v) below 1 m (%v)",
				s.Name, s.Points[1].Metrics.FER, s.Points[0].Metrics.FER)
		}
	}
}

func TestSweepTxPowerShape(t *testing.T) {
	scn := fastScenario()
	scn.Packets = packets(t, 60)
	scn.TagLineDistance = 3
	series, err := SweepTxPower(scn, []float64{-5, 20}, []int{2})
	if err != nil {
		t.Fatal(err)
	}
	pts := series[0].Points
	if pts[0].Metrics.FER <= pts[1].Metrics.FER {
		t.Errorf("FER at -5 dBm (%v) must exceed 20 dBm (%v)",
			pts[0].Metrics.FER, pts[1].Metrics.FER)
	}
}

func TestSweepPreambleShape(t *testing.T) {
	// Note: unlike the paper's envelope receiver, this coherent receiver's
	// detection is limited by per-sample SNR (a scale-free normalized
	// correlation), not by integration length, so preamble length buys
	// little — EXPERIMENTS.md discusses the divergence from Fig. 8(c).
	// The sweep must still run and longer preambles must not make
	// detection meaningfully worse.
	scn := fastScenario()
	scn.Packets = packets(t, 60)
	scn.NumTags = 4
	scn.TagLineDistance = 3.5
	series, err := SweepPreamble(scn, []int{4, 64}, []int{4})
	if err != nil {
		t.Fatal(err)
	}
	pts := series[0].Points
	if pts[1].Metrics.DetectionFER > pts[0].Metrics.DetectionFER+0.1 {
		t.Errorf("64-bit preamble detection FER (%v) much worse than 4-bit (%v)",
			pts[1].Metrics.DetectionFER, pts[0].Metrics.DetectionFER)
	}
}

func TestSweepBitrateRuns(t *testing.T) {
	scn := fastScenario()
	scn.Packets = packets(t, 40)
	series, err := SweepBitrate(scn, []float64{1e6, 20e6}, []int{2})
	if err != nil {
		t.Fatal(err)
	}
	pts := series[0].Points
	// At 20 Mcps the receiver has 1 sample per chip — decidedly worse.
	if pts[1].Metrics.FER <= pts[0].Metrics.FER && pts[1].Metrics.FER < 0.01 {
		t.Errorf("sampling-starved FER (%v) suspiciously low vs well-sampled (%v)",
			pts[1].Metrics.FER, pts[0].Metrics.FER)
	}
}

func TestSweepCodesOrdering(t *testing.T) {
	scn := fastScenario()
	scn.Packets = packets(t, 80)
	series, err := SweepCodes(scn, []int{5})
	if err != nil {
		t.Fatal(err)
	}
	var gold, twoNC float64
	for _, s := range series {
		if s.Name == pn.FamilyGold.String() {
			gold = s.Points[0].Metrics.FER
		}
		if s.Name == pn.Family2NC.String() {
			twoNC = s.Points[0].Metrics.FER
		}
	}
	if twoNC > gold+0.02 {
		t.Errorf("2NC FER (%v) should not exceed Gold (%v) at 5 tags — Fig. 9(b)", twoNC, gold)
	}
}

func TestUserDetectionAccuracy(t *testing.T) {
	scn := fastScenario()
	trials := packets(t, 60)
	res, err := UserDetection(scn, 10, trials)
	if err != nil {
		t.Fatal(err)
	}
	if res.Trials != trials {
		t.Fatalf("trials %d", res.Trials)
	}
	if res.Accuracy < 0.9 {
		t.Errorf("10-tag user detection accuracy %v, paper reports 99.9%%", res.Accuracy)
	}
}

func TestSweepAsyncShape(t *testing.T) {
	scn := fastScenario()
	scn.Packets = packets(t, 80)
	s, err := SweepAsync(scn, []float64{0, 2.5})
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Points) != 2 {
		t.Fatalf("%d points", len(s.Points))
	}
	sync := s.Points[0].Metrics.FER
	async := s.Points[1].Metrics.FER
	if async < sync {
		t.Errorf("delayed FER (%v) must not beat synchronized FER (%v) — Fig. 11", async, sync)
	}
}

func TestWorkingConditionsOrdering(t *testing.T) {
	scn := fastScenario()
	scn.Packets = packets(t, 60)
	pts, err := WorkingConditions(scn)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 4 {
		t.Fatalf("%d conditions", len(pts))
	}
	byLabel := map[string]float64{}
	for _, p := range pts {
		byLabel[p.Label] = p.Metrics.PRR
	}
	if byLabel[CondOFDM] >= byLabel[CondClean] {
		t.Errorf("OFDM excitation PRR (%v) must drop well below clean (%v) — Fig. 12",
			byLabel[CondOFDM], byLabel[CondClean])
	}
	if byLabel[CondWiFi] > byLabel[CondClean]+0.05 {
		t.Errorf("WiFi-interference PRR (%v) cannot beat clean (%v)",
			byLabel[CondWiFi], byLabel[CondClean])
	}
}

func TestPowerDifferenceTableShape(t *testing.T) {
	scn := fastScenario()
	scn.Packets = packets(t, 40)
	rows, err := PowerDifferenceTable(scn, 8)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 8 {
		t.Fatalf("%d rows", len(rows))
	}
	// Aggregate check: small-difference pairs must have a lower mean error
	// rate than large-difference pairs (Table II's conclusion).
	var loSum, hiSum float64
	var loN, hiN int
	for _, r := range rows {
		if r.Difference < 0.5 {
			loSum += r.ErrorRate
			loN++
		} else {
			hiSum += r.ErrorRate
			hiN++
		}
		if r.Difference < 0 || r.Difference > 1 {
			t.Errorf("difference %v out of [0,1]", r.Difference)
		}
	}
	if loN > 0 && hiN > 0 && loSum/float64(loN) > hiSum/float64(hiN) {
		t.Errorf("balanced pairs (mean FER %v over %d) should beat imbalanced (%v over %d)",
			loSum/float64(loN), loN, hiSum/float64(hiN), hiN)
	}
}

func TestSweepPowerControlRuns(t *testing.T) {
	scn := fastScenario()
	scn.Packets = packets(t, 40)
	series, err := SweepPowerControl(scn, []int{3}, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(series) != 2 {
		t.Fatalf("%d series", len(series))
	}
	for _, s := range series {
		if len(s.Points) != 1 {
			t.Fatalf("series %q: %d points", s.Name, len(s.Points))
		}
		if f := s.Points[0].Metrics.FER; f < 0 || f > 1 {
			t.Errorf("series %q FER %v out of range", s.Name, f)
		}
	}
}
