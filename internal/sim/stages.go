package sim

import (
	"bytes"
	"fmt"
	"math"
	"math/rand"

	"cbma/internal/channel"
	"cbma/internal/dsp"
	"cbma/internal/fault"
	"cbma/internal/rx"
	"cbma/internal/tag"
	"cbma/internal/trace"
)

// This file is the staged round pipeline. One collision round runs as three
// stages with isolated state:
//
//	buildTransmissions  tags + RNG streams -> delayed per-tag waveforms
//	mixChannel          waveforms + links  -> one received I/Q buffer
//	decodeAndAck        receiver + payload matching -> roundResult
//
// The first two stages are pure with respect to engine state: they read the
// scenario and tag configuration and write only into the caller's
// roundBuffers scratch. decodeAndAck needs a receiver (workers own clones)
// but also mutates nothing on the engine; the only engine-state mutations
// of a round — tag ACK counters and trace recording — are deferred to
// Engine.commitRound so parallel workers can execute rounds out of order
// while feedback and recording stay in round order.

// roundBuffers is one worker's reusable scratch: one payload and waveform
// buffer per active-tag slot, the placement bookkeeping slices, and the
// mixing buffer the waveforms accumulate into. The mixing buffer alone is
// tens of thousands of samples; reusing it (and the per-slot waveform
// buffers) removes the dominant per-round allocations.
type roundBuffers struct {
	payloads [][]byte
	waves    [][]complex128
	offsets  []int
	delays   []float64
	gains    []complex128
	mix      []complex128
}

// grow sizes the per-slot scratch for n active tags, retaining previously
// allocated storage.
func (rb *roundBuffers) grow(n int) {
	if cap(rb.payloads) < n {
		payloads := make([][]byte, n)
		copy(payloads, rb.payloads)
		rb.payloads = payloads
		waves := make([][]complex128, n)
		copy(waves, rb.waves)
		rb.waves = waves
		rb.offsets = make([]int, n)
		rb.delays = make([]float64, n)
		rb.gains = make([]complex128, n)
	}
	rb.payloads = rb.payloads[:n]
	rb.waves = rb.waves[:n]
	rb.offsets = rb.offsets[:n]
	rb.delays = rb.delays[:n]
	rb.gains = rb.gains[:n]
}

// mixFor returns a zeroed mixing buffer of length n, reusing capacity.
func (rb *roundBuffers) mixFor(n int) []complex128 {
	if cap(rb.mix) < n {
		rb.mix = make([]complex128, n)
	}
	rb.mix = rb.mix[:n]
	for i := range rb.mix {
		rb.mix[i] = 0
	}
	return rb.mix
}

// transmissionSet is the output of buildTransmissions: the active tags'
// delayed waveforms and placement, backed by roundBuffers storage.
type transmissionSet struct {
	active   []*tag.Tag
	payloads [][]byte
	waves    [][]complex128
	// offsets holds the integer sample placement of each waveform relative
	// to the nominal frame start; delays the raw (fractional) per-tag delay
	// in samples before re-referencing, kept for trace recording.
	offsets []int
	delays  []float64
	// maxEnd is the last occupied sample index relative to the lead region.
	maxEnd int
}

// roundResult captures one collision round.
type roundResult struct {
	sent         int // frames transmitted (== active tags)
	delivered    int // frames decoded with correct payload and CRC
	falsePos     int // decoded-OK frames whose payload did not match
	samples      int // buffer length, for airtime accounting
	frames       []rx.DecodedFrame
	sentIDs      []int
	deliveredIDs []int
	detectedIDs  []int
	// acked indexes into the round's active slice: tags whose ACK survived
	// the downlink loss draw. Applied to tag state by Engine.commitRound.
	acked []int
	// recorded carries the round's trace samples when recording is on.
	recorded []trace.TagSample
	// quarantined marks a round abandoned by the resilient runner (panic or
	// exhausted transient retries): it contributes degradation accounting
	// but no frame counters or tag feedback. retries counts the attempts
	// beyond the first; faults the injected faults that fired.
	quarantined bool
	retries     int
	faults      fault.Counters
}

// resilience converts only the round's degradation accounting into a
// Metrics partial — what the exploration (adhoc) rounds contribute, since
// their frame counters are warm-up, not measurement.
func (r roundResult) resilience() Metrics {
	m := Metrics{RoundRetries: r.retries, Faults: r.faults}
	if r.quarantined {
		m.RoundsQuarantined = 1
	} else {
		m.RoundsExecuted = 1
	}
	return m
}

// metrics converts the round's counters into a mergeable Metrics partial
// (see Metrics.Merge); numTags sizes the per-tag slices. A quarantined
// round carries only its degradation accounting.
func (r roundResult) metrics(numTags int) Metrics {
	m := r.resilience()
	m.NumTags = numTags
	if r.quarantined {
		return m
	}
	m.FramesSent = r.sent
	m.FramesDetected = len(r.detectedIDs)
	m.FramesDelivered = r.delivered
	m.FalseFrames = r.falsePos
	m.AirtimeSamples = int64(r.samples)
	m.PerTagSent = make([]int, numTags)
	m.PerTagDelivered = make([]int, numTags)
	for _, id := range r.sentIDs {
		if id >= 0 && id < numTags {
			m.PerTagSent[id]++
		}
	}
	for _, id := range r.deliveredIDs {
		if id >= 0 && id < numTags {
			m.PerTagDelivered[id]++
		}
	}
	return m
}

// executeRound runs the full stage pipeline for one round using the given
// RNG streams, scratch and receiver. It does not mutate engine or tag
// state; callers must follow up with Engine.commitRound.
//
//cbma:hotpath
func (e *Engine) executeRound(active []*tag.Tag, rs *roundStreams, rb *roundBuffers, recv *rx.Receiver) (roundResult, error) {
	var res roundResult
	if len(active) == 0 {
		return res, ErrBadTagCount
	}
	// Trace replay substitutes the recorded delays before waveform
	// placement and the recorded gains during mixing. The player is
	// stateful and ordered, so replay runs only on the serial path (see
	// Engine.workerCount).
	var replay *trace.Round
	if e.player != nil {
		r, err := e.player.Next()
		if err != nil {
			return res, fmt.Errorf("sim: replaying round: %w", err)
		}
		replay = &r
	}
	// Stage spans are obs.Span values on the observer's injected clock:
	// allocation-free (hotpath-compatible) and invisible to the result path.
	var fc fault.Counters
	sp := e.eobs.o.Start(e.eobs.build)
	tx, err := e.buildTransmissions(active, rs, rb, replay, &fc)
	sp.End()
	if err != nil {
		return res, err
	}
	sp = e.eobs.o.Start(e.eobs.mix)
	buf, recorded, err := e.mixChannel(tx, rs, rb, replay, &fc)
	sp.End()
	if err != nil {
		return res, err
	}
	sp = e.eobs.o.Start(e.eobs.decode)
	res, err = e.decodeAndAck(recv, buf, tx, rs, &fc)
	sp.End()
	res.recorded = recorded
	res.faults = fc
	return res, err
}

// buildTransmissions is the pure transmit stage: it draws each active
// tag's clock jitter and payload, synthesizes the spread waveform, applies
// the fractional-sample delay and (when configured) the per-tag CFO phase
// ramp. All storage comes from rb.
//
//cbma:hotpath
func (e *Engine) buildTransmissions(active []*tag.Tag, rs *roundStreams, rb *roundBuffers, replay *trace.Round, fc *fault.Counters) (transmissionSet, error) {
	spc := e.scn.SamplesPerChip()
	rb.grow(len(active))
	tx := transmissionSet{
		active:   active,
		payloads: rb.payloads,
		waves:    rb.waves,
		offsets:  rb.offsets,
		delays:   rb.delays,
	}
	minDelay := math.Inf(1)
	jitter := rs.rng(StreamJitter)
	// Tag-layer fault draws (extra jitter, energy outages) come from the
	// round's dedicated fault stream, in tag order: jitter draws in this
	// loop, outage draws in the waveform loop below.
	var ftag *rand.Rand
	if e.inj != nil && e.inj.TagRoundFaults() {
		ftag = rs.rng(StreamFaultTag)
	}
	for i, tg := range active {
		// Per-tag clock offset: fixed extra delay (Fig. 11) plus uniform
		// jitter, in (fractional) samples.
		delayChips := e.scn.JitterChips * (jitter.Float64() - 0.5)
		if tg.ID() < len(e.scn.ExtraDelayChips) {
			delayChips += e.scn.ExtraDelayChips[tg.ID()]
		}
		if e.inj != nil {
			delayChips += e.inj.DriftChips(tg.ID())
			if ftag != nil {
				delayChips += e.inj.ExtraJitter(ftag)
			}
		}
		tx.delays[i] = delayChips * float64(spc)
		if tx.delays[i] < minDelay {
			minDelay = tx.delays[i]
		}
	}
	if replay != nil {
		minDelay = math.Inf(1)
		for i, tg := range active {
			s, ok := replay.Sample(tg.ID())
			if !ok {
				return tx, fmt.Errorf("sim: %w: tag %d absent in round %d",
					trace.ErrTagCount, tg.ID(), replay.Seq)
			}
			tx.delays[i] = s.DelayChips * float64(spc)
			if tx.delays[i] < minDelay {
				minDelay = tx.delays[i]
			}
		}
	}
	payload := rs.rng(StreamPayload)
	var cfo *roundStreams
	if e.scn.CFOppm != 0 {
		cfo = rs
	}
	for i, tg := range active {
		if cap(tx.payloads[i]) < e.scn.PayloadBytes {
			tx.payloads[i] = make([]byte, e.scn.PayloadBytes)
		}
		p := tx.payloads[i][:e.scn.PayloadBytes]
		payload.Read(p)
		tx.payloads[i] = p
		w, err := tg.WaveformInto(tx.waves[i], p)
		if err != nil {
			return tx, err
		}
		// Re-reference delays to the earliest tag so none is clamped, then
		// split into an integer placement offset and a fractional-sample
		// delay. The fractional part is what starves the decoder at low
		// oversampling (Fig. 9(a)): at one sample per chip a 0.2-chip skew
		// cannot be re-aligned.
		d := tx.delays[i] - minDelay
		off := int(d)
		if frac := d - float64(off); frac > 1e-9 {
			dsp.FractionalDelayInPlace(w, frac)
		}
		if cfo != nil {
			// Per-frame CFO draw: a uniform offset of ±CFOppm of the
			// carrier, as a per-sample baseband phase ramp.
			dfHz := e.scn.Channel.CarrierHz * e.scn.CFOppm / 1e6 * (2*cfo.rng(StreamCFO).Float64() - 1)
			step := 2 * math.Pi * dfHz / e.scn.SampleRateHz
			rot := complex(math.Cos(step), math.Sin(step))
			phasor := complex(1, 0)
			for k := range w {
				w[k] *= phasor
				phasor *= rot
			}
		}
		if ftag != nil {
			// Mid-frame energy outage: the harvested supply dies after a
			// drawn fraction of the frame and the reflection goes silent.
			if frac, hit := e.inj.EnergyOutage(ftag); hit {
				cut := int(frac * float64(len(w)))
				for k := cut; k < len(w); k++ {
					w[k] = 0
				}
				fc.EnergyOutages++
			}
		}
		tx.waves[i] = w
		tx.offsets[i] = off
		if end := e.leadSamples + off + len(w); end > tx.maxEnd {
			tx.maxEnd = end
		}
	}
	// Keep the shared slices in sync with any growth WaveformInto caused.
	rb.payloads = tx.payloads
	rb.waves = tx.waves
	return tx, nil
}

// mixChannel is the pure channel stage: it realizes each tag's link,
// accumulates the gained waveforms into one I/Q buffer, and applies the
// shared channel effects (excitation gating, multipath, interference,
// AWGN). It returns the received buffer and, when recording is enabled,
// the round's trace samples.
//
//cbma:hotpath
func (e *Engine) mixChannel(tx transmissionSet, rs *roundStreams, rb *roundBuffers, replay *trace.Round, fc *fault.Counters) ([]complex128, []trace.TagSample, error) {
	spc := e.scn.SamplesPerChip()
	tail := 2 * e.set.ChipLength() * spc
	buf := rb.mixFor(tx.maxEnd + tail)

	// Optional intermittent (OFDM) excitation gate, shared by all tags:
	// they all reflect the same exciter.
	var gate []float64
	if e.scn.OFDMExcitation {
		gate = channel.ExcitationGate(rs.rng(StreamExcitation), len(buf), e.scn.SampleRateHz, 2e-3, 1e-3)
	}

	// Channel-layer fault draws (deep fades in tag order, then the burst)
	// come from the round's dedicated fault stream.
	var fch *rand.Rand
	if e.inj != nil && e.inj.ChannelRoundFaults() {
		fch = rs.rng(StreamFaultChannel)
	}

	for i, tg := range tx.active {
		dg, err := tg.DeltaGamma()
		if err != nil {
			return nil, nil, err
		}
		var link channel.Link
		switch {
		case replay != nil:
			s, _ := replay.Sample(tg.ID())
			link = channel.Link{Gain: complex(s.GainRe, s.GainIm)}
		case e.scn.StaticChannel:
			link = e.scn.Channel.LinkWithFading(
				e.scn.Deployment.ES, tg.Position(), e.scn.Deployment.RX, dg,
				e.staticFading[tg.ID()])
		default:
			link = e.scn.Channel.DrawLink(
				e.scn.Deployment.ES, tg.Position(), e.scn.Deployment.RX, dg, rs.rng(StreamFading))
		}
		if fch != nil {
			if scale, hit := e.inj.DeepFade(fch); hit {
				link.Gain *= complex(scale, 0)
				fc.DeepFades++
			}
		}
		rb.gains[i] = link.Gain
		base := e.leadSamples + tx.offsets[i]
		for k, v := range tx.waves[i] {
			s := v * link.Gain
			if gate != nil {
				s *= complex(gate[base+k], 0)
			}
			buf[base+k] += s
		}
	}

	if e.scn.Multipath != nil {
		buf = e.scn.Multipath.Apply(rs.rng(StreamMultipath), buf, e.scn.SampleRateHz)
	}
	for _, intf := range e.scn.Interferers {
		intf.Apply(rs.rng(StreamInterference), buf, e.scn.SampleRateHz)
	}
	if fch != nil && e.inj.Burst(fch) {
		e.inj.ApplyBurst(fch, buf, e.scn.SampleRateHz)
		fc.Bursts++
	}
	channel.AWGN(rs.rng(StreamNoise), buf, e.scn.Channel.NoiseFloorW())
	var recorded []trace.TagSample
	if e.recorder != nil {
		recorded = traceSamples(tx, rb.gains, spc)
	}
	return buf, recorded, nil
}

// traceSamples snapshots the round's per-tag channel draws for the
// recorder, off the hot path (it runs only when recording is on). It
// allocates a fresh slice per round deliberately: parallel execution
// buffers whole roundResults until the in-order commit, so recorded
// samples must not alias reusable worker scratch.
func traceSamples(tx transmissionSet, gains []complex128, spc int) []trace.TagSample {
	samples := make([]trace.TagSample, len(tx.active))
	for i, tg := range tx.active {
		samples[i] = trace.TagSample{
			TagID:      tg.ID(),
			GainRe:     real(gains[i]),
			GainIm:     imag(gains[i]),
			DelayChips: tx.delays[i] / float64(spc),
			Impedance:  int(tg.Impedance()),
		}
	}
	return samples
}

// decodeAndAck is the receive stage: it runs the receiver over the mixed
// buffer, verifies payloads against the transmissions, and draws the ACK
// downlink losses. The resulting ACKs are reported in roundResult.acked
// rather than applied, keeping the stage free of tag mutation.
func (e *Engine) decodeAndAck(recv *rx.Receiver, buf []complex128, tx transmissionSet, rs *roundStreams, fc *fault.Counters) (roundResult, error) {
	var res roundResult
	// The engine is also the reader: it triggered the tags, so it knows
	// the nominal reply start (rx.ReceiveAt's timing reference).
	out, err := recv.ReceiveAt(buf, e.leadSamples)
	if err != nil {
		return res, err
	}
	res.sent = len(tx.active)
	res.samples = len(buf)
	res.frames = out.Frames
	for _, f := range out.Frames {
		for _, tg := range tx.active {
			if tg.ID() == f.TagID {
				res.detectedIDs = append(res.detectedIDs, f.TagID)
				break
			}
		}
	}
	for _, tg := range tx.active {
		res.sentIDs = append(res.sentIDs, tg.ID())
	}
	for _, f := range out.Frames {
		if !f.OK {
			continue
		}
		idx := -1
		for i, tg := range tx.active {
			if tg.ID() == f.TagID {
				idx = i
				break
			}
		}
		if idx < 0 {
			res.falsePos++
			continue
		}
		if bytes.Equal(f.Payload, tx.payloads[idx]) {
			res.delivered++
			res.deliveredIDs = append(res.deliveredIDs, tx.active[idx].ID())
			// The ACK downlink may itself be lossy (Scenario.AckLossProb);
			// receiver-side delivery metrics are unaffected, only the
			// tag's feedback loop is starved. The fault layer's feedback
			// faults (loss, corruption) ride on top, drawn per delivered
			// frame in frame order from the dedicated fault stream.
			if e.scn.AckLossProb <= 0 || rs.rng(StreamAckLoss).Float64() >= e.scn.AckLossProb {
				heard := true
				if e.inj != nil && e.inj.AckFaults() {
					switch e.inj.AckFate(rs.rng(StreamFaultAck)) {
					case fault.AckLost:
						heard = false
						fc.AcksLost++
					case fault.AckCorrupted:
						heard = false
						fc.AcksCorrupted++
					}
				}
				if heard {
					res.acked = append(res.acked, idx)
				}
			}
		} else {
			res.falsePos++
		}
	}
	// Spurious ACKs: each tag that did not hear a (real) ACK this round may
	// falsely detect one, poisoning the feedback loop in the optimistic
	// direction. Drawn in active order after the per-frame fates, so the
	// fault stream's consumption is position-independent.
	if e.inj != nil && e.inj.SpuriousAcks() {
		srng := rs.rng(StreamFaultAck)
		heard := make([]bool, len(tx.active))
		for _, idx := range res.acked {
			heard[idx] = true
		}
		for idx := range tx.active {
			if !heard[idx] && e.inj.SpuriousAck(srng) {
				res.acked = append(res.acked, idx)
				fc.SpuriousAcks++
			}
		}
	}
	return res, nil
}

// commitRound applies the round's engine-state mutations — the tags' MAC
// counters and trace recording. Under parallel execution it is called in
// round order by the coordinating goroutine, so tag feedback and recorded
// traces are identical to the serial loop's. A quarantined round commits no
// tag feedback (its frames never aired) but still records an empty trace
// round so the trace's Seq numbering stays aligned with the round index.
func (e *Engine) commitRound(active []*tag.Tag, res roundResult) {
	if !res.quarantined {
		for _, tg := range active {
			tg.NoteFrameSent()
		}
		for _, idx := range res.acked {
			active[idx].NoteAck()
		}
	}
	if e.recorder != nil {
		e.recorder.Record(res.recorded)
	}
	round := e.committed
	e.committed++
	e.eobs.record(round, res)
}
