package sim

import (
	"errors"
	"math"
	"reflect"
	"testing"

	"cbma/internal/frame"
	"cbma/internal/geom"
	"cbma/internal/pn"
)

// fastScenario returns a scenario small enough for unit tests.
func fastScenario() Scenario {
	scn := DefaultScenario()
	scn.PayloadBytes = 8
	scn.Packets = 30
	return scn
}

func packets(t *testing.T, full int) int {
	t.Helper()
	if testing.Short() {
		return full / 4
	}
	return full
}

func TestScenarioValidation(t *testing.T) {
	tests := []struct {
		name string
		mod  func(*Scenario)
		want error
	}{
		{"zero tags", func(s *Scenario) { s.NumTags = 0 }, ErrBadTagCount},
		{"zero packets", func(s *Scenario) { s.Packets = 0 }, ErrBadPackets},
		{"oversized payload", func(s *Scenario) { s.PayloadBytes = 200 }, nil},
		{"too few positions", func(s *Scenario) {
			s.Deployment.Tags = []geom.Point{{X: 1}}
			s.NumTags = 3
		}, ErrNoPositions},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			scn := fastScenario()
			tc.mod(&scn)
			_, err := NewEngine(scn)
			if err == nil {
				t.Fatal("want error")
			}
			if tc.want != nil && !errors.Is(err, tc.want) {
				t.Fatalf("got %v, want %v", err, tc.want)
			}
		})
	}
}

func TestSamplesPerChipClamping(t *testing.T) {
	tests := []struct {
		chip, sample float64
		want         int
	}{
		{1e6, 20e6, MaxSamplesPerChip}, // 20 clamps to cap
		{5e6, 20e6, 4},
		{20e6, 20e6, 1},
		{40e6, 20e6, 1}, // sub-sample clamps up to 1
		{0, 0, 4},       // defaults
	}
	for _, tc := range tests {
		scn := Scenario{ChipRateHz: tc.chip, SampleRateHz: tc.sample}
		if got := scn.SamplesPerChip(); got != tc.want {
			t.Errorf("chip=%v fs=%v: spc %d, want %d", tc.chip, tc.sample, got, tc.want)
		}
	}
}

func TestEngineDeterminism(t *testing.T) {
	scn := fastScenario()
	scn.NumTags = 3
	run := func() Metrics {
		e, err := NewEngine(scn)
		if err != nil {
			t.Fatal(err)
		}
		m, err := e.Run()
		if err != nil {
			t.Fatal(err)
		}
		return m
	}
	a, b := run(), run()
	if !reflect.DeepEqual(a, b) {
		t.Errorf("same seed must give identical metrics:\n%+v\n%+v", a, b)
	}
}

func TestEngineSeedChangesOutcome(t *testing.T) {
	scn := fastScenario()
	scn.NumTags = 4
	scn.TagLineDistance = 3.5
	e1, err := NewEngine(scn)
	if err != nil {
		t.Fatal(err)
	}
	m1, err := e1.Run()
	if err != nil {
		t.Fatal(err)
	}
	scn.Seed = 999
	e2, err := NewEngine(scn)
	if err != nil {
		t.Fatal(err)
	}
	m2, err := e2.Run()
	if err != nil {
		t.Fatal(err)
	}
	if m1.FramesDelivered == m2.FramesDelivered && m1.AirtimeSeconds == m2.AirtimeSeconds {
		t.Log("outcomes identical across seeds — suspicious but possible; check airtime variance")
	}
}

func TestTwoTagsEasyCaseDelivers(t *testing.T) {
	scn := fastScenario()
	scn.Packets = packets(t, 60)
	e, err := NewEngine(scn)
	if err != nil {
		t.Fatal(err)
	}
	m, err := e.Run()
	if err != nil {
		t.Fatal(err)
	}
	if m.FramesSent != 2*scn.Packets {
		t.Errorf("sent %d, want %d", m.FramesSent, 2*scn.Packets)
	}
	if m.FER > 0.1 {
		t.Errorf("FER %v too high for 2 tags at 1 m", m.FER)
	}
	if m.GoodputBps <= 0 || m.RawAggregateBps <= 0 {
		t.Errorf("rates must be positive: %+v", m)
	}
}

func TestFERIncreasesWithDistance(t *testing.T) {
	scn := fastScenario()
	scn.NumTags = 2
	scn.Packets = packets(t, 80)
	run := func(d float64) float64 {
		s := scn
		s.TagLineDistance = d
		s.Deployment.Tags = nil
		m, err := runScenario(s, "distance test")
		if err != nil {
			t.Fatal(err)
		}
		return m.FER
	}
	near, far := run(1.0), run(4.0)
	if far <= near {
		t.Errorf("FER at 4 m (%v) must exceed FER at 1 m (%v) — Fig. 8(a) shape", far, near)
	}
}

func TestFERDropsWithTxPower(t *testing.T) {
	scn := fastScenario()
	scn.NumTags = 3
	scn.TagLineDistance = 3
	scn.Packets = packets(t, 80)
	run := func(p float64) float64 {
		s := scn
		s.Deployment.Tags = nil
		s.Channel.TxPowerDBm = p
		m, err := runScenario(s, "power test")
		if err != nil {
			t.Fatal(err)
		}
		return m.FER
	}
	weak, strong := run(-5), run(20)
	if weak <= strong {
		t.Errorf("FER at -5 dBm (%v) must exceed FER at 20 dBm (%v) — Fig. 8(b) shape", weak, strong)
	}
	if weak < 0.5 {
		t.Errorf("at -5 dBm the backscatter should be buried in noise (FER %v)", weak)
	}
}

func TestRunWithPositions(t *testing.T) {
	scn := fastScenario()
	scn.Packets = packets(t, 20)
	e, err := NewEngine(scn)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.RunWithPositions([]geom.Point{{X: 1}}); !errors.Is(err, ErrNoPositions) {
		t.Fatalf("got %v, want ErrNoPositions", err)
	}
	m, err := e.RunWithPositions([]geom.Point{{X: 0, Y: 0.5}, {X: 0, Y: -0.5}})
	if err != nil {
		t.Fatal(err)
	}
	if m.FramesSent == 0 {
		t.Error("no frames sent after re-homing")
	}
	if e.Tags()[0].Position() != (geom.Point{X: 0, Y: 0.5}) {
		t.Error("tag not moved")
	}
}

func TestPowerControlLoopRuns(t *testing.T) {
	scn := fastScenario()
	scn.NumTags = 3
	scn.Packets = packets(t, 60)
	scn.PowerControl = true
	scn.PacketsPerRound = 10
	e, err := NewEngine(scn)
	if err != nil {
		t.Fatal(err)
	}
	m, err := e.Run()
	if err != nil {
		t.Fatal(err)
	}
	if m.PowerControlRounds == 0 {
		t.Error("power control loop never ran")
	}
}

func TestOraclePowerControlEqualizesStates(t *testing.T) {
	scn := fastScenario()
	scn.NumTags = 2
	scn.Packets = 5
	scn.PowerControl = true
	scn.OraclePowerControl = true
	// One near, one far tag: oracle must pick different impedance states.
	scn.Deployment = geom.NewDeployment(0.5)
	scn.Deployment.Tags = []geom.Point{{X: 0.3, Y: 0.2}, {X: -2.5, Y: 1.5}}
	e, err := NewEngine(scn)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.Run(); err != nil {
		t.Fatal(err)
	}
	near := e.Tags()[0].Impedance()
	far := e.Tags()[1].Impedance()
	if near >= far {
		t.Errorf("near tag state %d should be weaker than far tag state %d", near, far)
	}
}

func TestMetricsFinalize(t *testing.T) {
	m := Metrics{NumTags: 4, FramesSent: 100, FramesDelivered: 90, AirtimeSeconds: 2}
	scn := Scenario{PayloadBytes: 10, ChipRateHz: 1e6}
	m.finalize(scn)
	if math.Abs(m.FER-0.1) > 1e-12 {
		t.Errorf("FER = %v", m.FER)
	}
	if m.PRR != 0.9 {
		t.Errorf("PRR = %v", m.PRR)
	}
	if want := 90.0 * 80 / 2; m.GoodputBps != want {
		t.Errorf("goodput %v, want %v", m.GoodputBps, want)
	}
	if want := 4 * 1e6 * 0.9; m.RawAggregateBps != want {
		t.Errorf("raw %v, want %v", m.RawAggregateBps, want)
	}
}

func TestMetricsZeroDivision(t *testing.T) {
	var m Metrics
	m.finalize(Scenario{})
	if m.FER != 1 || m.GoodputBps != 0 {
		t.Errorf("zero-run metrics: %+v", m)
	}
}

func TestMetricsString(t *testing.T) {
	m := Metrics{NumTags: 2, FramesSent: 10, FramesDelivered: 9, FER: 0.1}
	if s := m.String(); s == "" {
		t.Error("empty String()")
	}
}

func TestFrameConfigPropagates(t *testing.T) {
	scn := fastScenario()
	scn.Frame = frame.Config{PreambleBits: 16}
	scn.Packets = packets(t, 20)
	e, err := NewEngine(scn)
	if err != nil {
		t.Fatal(err)
	}
	m, err := e.Run()
	if err != nil {
		t.Fatal(err)
	}
	if m.FER > 0.2 {
		t.Errorf("16-bit preamble 2-tag FER %v", m.FER)
	}
}

func TestAllFamiliesRun(t *testing.T) {
	for _, fam := range []pn.Family{pn.FamilyGold, pn.Family2NC, pn.FamilyWalsh, pn.FamilyKasami} {
		scn := fastScenario()
		scn.Family = fam
		scn.Packets = packets(t, 20)
		e, err := NewEngine(scn)
		if err != nil {
			t.Fatalf("%v: %v", fam, err)
		}
		m, err := e.Run()
		if err != nil {
			t.Fatalf("%v: %v", fam, err)
		}
		if m.FER > 0.5 {
			t.Errorf("%v: FER %v suspiciously high for the easy 2-tag case", fam, m.FER)
		}
	}
}
