package sim

import (
	"errors"
	"fmt"
	"math"
	"math/rand"

	"cbma/internal/channel"
	"cbma/internal/dsp"
	"cbma/internal/frame"
	"cbma/internal/geom"
	"cbma/internal/pn"
	"cbma/internal/rx"
	"cbma/internal/tag"
)

// Point is one sweep sample: an X coordinate (distance, power, …) and the
// metrics measured there.
type Point struct {
	X       float64
	Label   string
	Metrics Metrics
}

// Series is a named curve, e.g. "3 tags" in Fig. 8(a).
type Series struct {
	Name   string
	Points []Point
}

// Sweep identity labels for DeriveSeed. Each harness derives its per-point
// seeds as DeriveSeed(base.Seed, label, point coordinates…), which replaces
// the additive base.Seed+i+n*1000 arithmetic: that collided across
// (point, tag-count) pairs within a sweep and across different sweeps run
// off the same base seed, silently correlating supposedly independent
// measurements.
const (
	seedSweepDistance uint64 = iota + 1
	seedSweepTxPower
	seedSweepPreamble
	seedSweepBitrate
	seedSweepCodes
	seedSweepPowerControl
	seedSweepPowerControlPlacement
	seedSweepAsync
	seedWorkingConditions
	seedPowerDiff
	seedPowerDiffPlacement
	seedFaultSweep
)

// runScenario runs one scenario through the campaign entry, wrapping errors
// with the sweep context.
func runScenario(scn Scenario, what string) (Metrics, error) {
	ms, err := RunCampaign([]Scenario{scn}, CampaignOpts{What: what})
	if err != nil {
		return Metrics{}, err
	}
	return ms[0], nil
}

// sweepGrid runs the tagCounts × xs grid of a micro-benchmark sweep as one
// campaign: every grid cell becomes a scenario up front (seeded from the
// sweep label and cell coordinates), RunCampaign executes them across the
// worker budget, and the results are folded back into one Series per tag
// count.
func sweepGrid(base Scenario, label uint64, what string, xs []float64, tagCounts []int, mod func(*Scenario, float64)) ([]Series, error) {
	points := make([]Scenario, 0, len(tagCounts)*len(xs))
	for _, n := range tagCounts {
		for i, x := range xs {
			scn := base
			scn.NumTags = n
			scn.Deployment.Tags = nil
			scn.Seed = DeriveSeed(base.Seed, label, uint64(i), uint64(n))
			mod(&scn, x)
			points = append(points, scn)
		}
	}
	ms, err := RunCampaign(points, CampaignOpts{What: what})
	if err != nil {
		return nil, err
	}
	out := make([]Series, 0, len(tagCounts))
	k := 0
	for _, n := range tagCounts {
		s := Series{Name: fmt.Sprintf("%d tags", n)}
		for _, x := range xs {
			s.Points = append(s.Points, Point{X: x, Metrics: ms[k]})
			k++
		}
		out = append(out, s)
	}
	return out, nil
}

// SweepDistance reproduces Fig. 8(a): frame error rate versus tag-to-RX
// distance (meters) for each tag count, ES-to-tag spacing fixed at 50 cm.
func SweepDistance(base Scenario, distances []float64, tagCounts []int) ([]Series, error) {
	return sweepGrid(base, seedSweepDistance, "distance sweep", distances, tagCounts,
		func(s *Scenario, d float64) { s.TagLineDistance = d })
}

// SweepTxPower reproduces Fig. 8(b): frame error rate versus excitation
// transmit power (dBm) for each tag count.
func SweepTxPower(base Scenario, powersDBm []float64, tagCounts []int) ([]Series, error) {
	return sweepGrid(base, seedSweepTxPower, "tx power sweep", powersDBm, tagCounts,
		func(s *Scenario, p float64) { s.Channel.TxPowerDBm = p })
}

// SweepPreamble reproduces Fig. 8(c): frame error rate versus preamble
// length (bits) for each tag count.
func SweepPreamble(base Scenario, preambleBits []int, tagCounts []int) ([]Series, error) {
	xs := make([]float64, len(preambleBits))
	for i, b := range preambleBits {
		xs[i] = float64(b)
	}
	return sweepGrid(base, seedSweepPreamble, "preamble sweep", xs, tagCounts,
		func(s *Scenario, bits float64) { s.Frame = frame.Config{PreambleBits: int(bits)} })
}

// SweepBitrate reproduces Fig. 9(a): frame error rate versus the tag's
// on-air bit rate (the OOK symbol rate, bps). The receiver sample rate is
// fixed, so high rates starve the decoder of samples per chip — the paper's
// "too few sampling points" regime.
func SweepBitrate(base Scenario, ratesHz []float64, tagCounts []int) ([]Series, error) {
	return sweepGrid(base, seedSweepBitrate, "bitrate sweep", ratesHz, tagCounts,
		func(s *Scenario, r float64) { s.ChipRateHz = r })
}

// SweepCodes reproduces Fig. 9(b): error rate versus concurrent tag count
// for Gold versus 2NC codes. Both families run each point with the same
// derived seed — the comparison is paired, so the curves differ only in the
// code family.
func SweepCodes(base Scenario, tagCounts []int) ([]Series, error) {
	families := []pn.Family{pn.Family2NC, pn.FamilyGold}
	points := make([]Scenario, 0, len(families)*len(tagCounts))
	for _, fam := range families {
		for i, n := range tagCounts {
			scn := base
			scn.NumTags = n
			scn.Deployment.Tags = nil
			scn.Family = fam
			scn.Seed = DeriveSeed(base.Seed, seedSweepCodes, uint64(i))
			points = append(points, scn)
		}
	}
	ms, err := RunCampaign(points, CampaignOpts{What: "code family sweep"})
	if err != nil {
		return nil, err
	}
	out := make([]Series, 0, len(families))
	k := 0
	for _, fam := range families {
		s := Series{Name: fam.String()}
		for _, n := range tagCounts {
			s.Points = append(s.Points, Point{X: float64(n), Metrics: ms[k]})
			k++
		}
		out = append(out, s)
	}
	return out, nil
}

// randomPlacementScenario clones base with a fresh random tag placement
// (minimum separation λ/2) — the macro-benchmark setup of §VII-C. Tags are
// drawn from a table-sized region around the radios, matching the paper's
// Fig. 7 setup where "the excitation source, the tags and the receiver are
// placed on a table": a full-room draw would make most links noise-limited
// and mask the near-far effects under study.
func randomPlacementScenario(base Scenario, n int, rng *rand.Rand) (Scenario, error) {
	scn := base
	scn.NumTags = n
	scn.Deployment = geom.NewDeployment(0.5)
	scn.Deployment.Room = geom.Room{Width: 2.4, Height: 1.6}
	minSep := geom.Wavelength(scn.Channel.CarrierHz) / 2
	if scn.Channel.CarrierHz == 0 {
		minSep = geom.Wavelength(2e9) / 2
	}
	if err := scn.Deployment.PlaceTagsRandom(rng, n, minSep); err != nil {
		return scn, err
	}
	return scn, nil
}

// SweepPowerControl reproduces Fig. 9(c): mean error rate versus tag count
// with and without the Algorithm 1 power-control loop, averaged over
// `groups` random placements per point (paper: 50 groups). Placements are
// drawn deterministically up front; both arms of each group then run as one
// campaign, sharing seed and placement so the comparison is paired.
func SweepPowerControl(base Scenario, tagCounts []int, groups int) ([]Series, error) {
	withPC := Series{Name: "with power control"}
	withoutPC := Series{Name: "without power control"}
	rng := rand.New(rand.NewSource(DeriveSeed(base.Seed, seedSweepPowerControlPlacement)))
	for _, n := range tagCounts {
		// Two scenarios per group: arm off at 2g, arm on at 2g+1.
		points := make([]Scenario, 0, 2*groups)
		for g := 0; g < groups; g++ {
			scn, err := randomPlacementScenario(base, n, rng)
			if err != nil {
				return nil, err
			}
			scn.Seed = DeriveSeed(base.Seed, seedSweepPowerControl, uint64(g), uint64(n))
			// Both arms boot tags in arbitrary impedance states — the
			// regime Algorithm 1 is designed to repair (see Scenario doc).
			scn.RandomInitialImpedance = true
			scn.PowerControl = false
			points = append(points, scn)
			scn.PowerControl = true
			points = append(points, scn)
		}
		ms, err := RunCampaign(points, CampaignOpts{What: fmt.Sprintf("power control sweep, %d tags", n)})
		if err != nil {
			return nil, err
		}
		var sumNo, sumPC float64
		for g := 0; g < groups; g++ {
			sumNo += ms[2*g].FER
			sumPC += ms[2*g+1].FER
		}
		withPC.Points = append(withPC.Points, Point{
			X: float64(n), Metrics: Metrics{NumTags: n, FER: sumPC / float64(groups)}})
		withoutPC.Points = append(withoutPC.Points, Point{
			X: float64(n), Metrics: Metrics{NumTags: n, FER: sumNo / float64(groups)}})
	}
	return []Series{withPC, withoutPC}, nil
}

// UserDetectionResult summarizes the §VII-B2 user-detection experiment.
type UserDetectionResult struct {
	Trials   int
	Correct  int // trials where the detected set exactly matched the active set
	Accuracy float64
}

// UserDetection reproduces §VII-B2: a group of groupSize tags, a random
// subset active per trial; the receiver must report exactly the active
// subset. The paper measures 99.9% accuracy over 1000 trials with 10 tags.
func UserDetection(base Scenario, groupSize, trials int) (UserDetectionResult, error) {
	scn := base
	scn.NumTags = groupSize
	scn.Deployment.Tags = nil
	scn.Packets = 1
	// The detection experiment runs with the SIC stage (see rx.receiveSIC
	// for why the plain threshold detector cannot reach the paper's 99.9%
	// in this simulator's fading) and on a static bench channel — the
	// stationary table setup the paper measured on. Both choices are
	// documented in EXPERIMENTS.md.
	scn.SIC = true
	scn.StaticChannel = true
	e, err := NewEngine(scn)
	if err != nil {
		return UserDetectionResult{}, err
	}
	// The subset draws are auxiliary randomness, not a scenario seed — no
	// collision risk — so the historical constant stays.
	rng := rand.New(rand.NewSource(base.Seed + 4242))
	res := UserDetectionResult{Trials: trials}
	for t := 0; t < trials; t++ {
		// Random non-empty active subset.
		var active []int
		for i := 0; i < groupSize; i++ {
			if rng.Float64() < 0.5 {
				active = append(active, i)
			}
		}
		if len(active) == 0 {
			active = append(active, rng.Intn(groupSize))
		}
		sub := make([]*tag.Tag, 0, len(active))
		for _, id := range active {
			sub = append(sub, e.tags[id])
		}
		r, err := e.runRound(sub)
		if err != nil {
			return res, err
		}
		// The detected set is the receiver's actionable output: the
		// CRC-verified senders that would be ACKed. (The paper's 99.9%
		// statistic is a pre-decode correlation test; across receiver
		// architectures the verified-sender set is the comparable,
		// functional notion — see EXPERIMENTS.md.)
		detected := map[int]bool{}
		for _, f := range r.frames {
			if !f.OK || errors.Is(f.Err, rx.ErrGhost) {
				continue
			}
			detected[f.TagID] = true
		}
		ok := len(detected) == len(active)
		for _, id := range active {
			if !detected[id] {
				ok = false
			}
		}
		if ok {
			res.Correct++
		}
	}
	res.Accuracy = float64(res.Correct) / float64(res.Trials)
	return res, nil
}

// SweepAsync reproduces Fig. 11: two tags, tag 1 delayed by a growing number
// of chips relative to tag 0; error rate versus delay. Gold codes and a
// widened per-user search window are used so delayed frames remain
// discoverable, as in the paper's correlation-based detector.
func SweepAsync(base Scenario, delaysChips []float64) (Series, error) {
	s := Series{Name: "2 tags, tag-2 delayed"}
	points := make([]Scenario, 0, len(delaysChips))
	for i, d := range delaysChips {
		scn := base
		scn.NumTags = 2
		scn.Family = pn.FamilyGold
		scn.Deployment.Tags = nil
		scn.ExtraDelayChips = []float64{0, d}
		scn.SearchChips = int(math.Ceil(math.Abs(d))) + 2
		scn.JitterChips = 0.1
		scn.Seed = DeriveSeed(base.Seed, seedSweepAsync, uint64(i))
		points = append(points, scn)
	}
	ms, err := RunCampaign(points, CampaignOpts{What: "async sweep"})
	if err != nil {
		return s, err
	}
	for i, d := range delaysChips {
		s.Points = append(s.Points, Point{X: d, Metrics: ms[i]})
	}
	return s, nil
}

// Condition labels for WorkingConditions (Fig. 12).
const (
	CondClean     = "no interference"
	CondWiFi      = "wifi interference"
	CondBluetooth = "bluetooth interference"
	CondOFDM      = "ofdm excitation"
)

// WorkingConditions reproduces Fig. 12: correct packet reception rate under
// the four §VII-C3 conditions. Interference power sits a few dB above the
// backscatter signal, as coexisting radios would.
func WorkingConditions(base Scenario) ([]Point, error) {
	interfDBm := base.Channel.NoiseFloorDBm + 14
	cases := []struct {
		label string
		mod   func(*Scenario)
	}{
		{CondClean, func(*Scenario) {}},
		{CondWiFi, func(s *Scenario) {
			s.Interferers = []channel.Interferer{&channel.WiFiInterferer{PowerDBm: interfDBm}}
		}},
		{CondBluetooth, func(s *Scenario) {
			s.Interferers = []channel.Interferer{&channel.BluetoothInterferer{PowerDBm: interfDBm}}
		}},
		{CondOFDM, func(s *Scenario) { s.OFDMExcitation = true }},
	}
	points := make([]Scenario, 0, len(cases))
	for i, c := range cases {
		scn := base
		scn.Deployment.Tags = nil
		scn.Seed = DeriveSeed(base.Seed, seedWorkingConditions, uint64(i))
		c.mod(&scn)
		points = append(points, scn)
	}
	ms, err := RunCampaign(points, CampaignOpts{What: "working conditions"})
	if err != nil {
		return nil, err
	}
	out := make([]Point, 0, len(cases))
	for i, c := range cases {
		out = append(out, Point{X: float64(i), Label: c.label, Metrics: ms[i]})
	}
	return out, nil
}

// PowerDiffRow is one row of Table II: a two-tag collision case with the
// per-tag SNRs, their relative power difference and the measured error rate.
type PowerDiffRow struct {
	Case       string
	SNR1, SNR2 float64 // dB
	Difference float64 // |P1−P2| / max(P1,P2)
	ErrorRate  float64
}

// PowerDifferenceTable reproduces Table II: pairs of tags at random
// positions, reporting how the error rate tracks the received-power
// difference. The paper's observation — error rates an order of magnitude
// lower when the difference is under 10% — is the motivation for power
// control.
func PowerDifferenceTable(base Scenario, pairs int) ([]PowerDiffRow, error) {
	rng := rand.New(rand.NewSource(DeriveSeed(base.Seed, seedPowerDiffPlacement)))
	points := make([]Scenario, 0, pairs)
	for p := 0; p < pairs; p++ {
		// The paper's benchmark (Fig. 3) places the pair near the ES–RX
		// axis, keeping every link interference-limited; a full-room draw
		// would mix in noise-limited outliers that mask the
		// power-difference effect under study.
		scn := base
		scn.NumTags = 2
		scn.Deployment = geom.NewDeployment(0.5)
		scn.Deployment.Room = geom.Room{Width: 2.4, Height: 1.6}
		minSep := geom.Wavelength(2e9) / 2
		if err := scn.Deployment.PlaceTagsRandom(rng, 2, minSep); err != nil {
			return nil, err
		}
		scn.Seed = DeriveSeed(base.Seed, seedPowerDiff, uint64(p))
		points = append(points, scn)
	}
	ms, err := RunCampaign(points, CampaignOpts{What: "power difference table"})
	if err != nil {
		return nil, err
	}
	var out []PowerDiffRow
	for p := 0; p < pairs; p++ {
		scn := points[p]
		// Mean received powers via the link budget at full reflection.
		p1 := scn.Channel.BackscatterRxPower(
			scn.Deployment.ES.Distance(scn.Deployment.Tags[0]),
			scn.Deployment.Tags[0].Distance(scn.Deployment.RX), 1)
		p2 := scn.Channel.BackscatterRxPower(
			scn.Deployment.ES.Distance(scn.Deployment.Tags[1]),
			scn.Deployment.Tags[1].Distance(scn.Deployment.RX), 1)
		noise := scn.Channel.NoiseFloorW()
		maxP := math.Max(p1, p2)
		out = append(out, PowerDiffRow{
			Case:       fmt.Sprintf("%d", p+1),
			SNR1:       dsp.DB(p1 / noise),
			SNR2:       dsp.DB(p2 / noise),
			Difference: (maxP - math.Min(p1, p2)) / maxP,
			ErrorRate:  ms[p].FER,
		})
	}
	return out, nil
}
