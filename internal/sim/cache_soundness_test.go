package sim

import (
	"context"
	"encoding/json"
	"testing"

	"cbma/internal/fault"
)

// metricsJSON renders Metrics the way every serving and caching layer
// transports them. Comparing the encodings (rather than reflect.DeepEqual)
// asserts exactly the contract a cache relies on: the bytes a client
// receives are identical run to run. encoding/json emits the shortest
// float representation that round-trips exactly, so byte equality here is
// bit equality of the values.
func metricsJSON(t *testing.T, ms []Metrics) string {
	t.Helper()
	b, err := json.Marshal(ms)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

// TestRunCampaignRepeatDeterminism is the soundness premise of the result
// cache: re-running RunCampaignContext with the same scenarios must yield
// bit-identical Metrics, including under an active fault profile and at a
// different worker budget. If this ever fails, serving a cached result for
// an equal Scenario.Hash would be wrong — so it is pinned here, next to
// the hash.
func TestRunCampaignRepeatDeterminism(t *testing.T) {
	clean := DefaultScenario()
	clean.Packets = 30

	faulted := DefaultScenario()
	faulted.Packets = 30
	faulted.PowerControl = true
	faulted.RandomInitialImpedance = true
	faulted.Fault = &fault.Profile{
		AckLossProb:      0.2,
		EnergyOutageProb: 0.1,
		PanicProb:        0.1,
		TransientErrProb: 0.1,
		MaxRoundRetries:  2,
	}

	cases := map[string]Scenario{"clean": clean, "faulted": faulted}
	for name, scn := range cases {
		t.Run(name, func(t *testing.T) {
			points := []Scenario{scn}
			first, err := RunCampaignContext(context.Background(), points, CampaignOpts{Workers: 2})
			if err != nil {
				t.Fatal(err)
			}
			ref := metricsJSON(t, first)
			for run, workers := range []int{1, 3} {
				again, err := RunCampaignContext(context.Background(), points, CampaignOpts{Workers: workers})
				if err != nil {
					t.Fatal(err)
				}
				if got := metricsJSON(t, again); got != ref {
					t.Errorf("run %d (workers=%d): metrics differ from first run\n got %s\nwant %s", run, workers, got, ref)
				}
			}
		})
	}
}
