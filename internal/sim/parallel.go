package sim

import (
	"runtime"
	"sync"
)

// RunParallel executes fn(0) … fn(n−1) across up to GOMAXPROCS worker
// goroutines and returns the first error encountered (all scheduled work
// still completes — engines are cheap to finish and results land in
// caller-owned, index-disjoint slots). Each invocation must be independent:
// engines, tags and RNGs are single-goroutine objects, so every fn(i) must
// build its own.
func RunParallel(n int, fn func(i int) error) error {
	workers := runtime.GOMAXPROCS(0)
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			if err := fn(i); err != nil {
				return err
			}
		}
		return nil
	}
	var (
		wg       sync.WaitGroup
		mu       sync.Mutex
		firstErr error
	)
	next := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				if err := fn(i); err != nil {
					mu.Lock()
					if firstErr == nil {
						firstErr = err
					}
					mu.Unlock()
				}
			}
		}()
	}
	for i := 0; i < n; i++ {
		next <- i
	}
	close(next)
	wg.Wait()
	return firstErr
}
