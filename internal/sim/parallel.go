package sim

import (
	"context"
	"runtime"
	"sync"
)

// RunParallel executes fn(0) … fn(n−1) across up to GOMAXPROCS worker
// goroutines and returns the first error encountered. Dispatch stops as
// soon as any invocation fails: indices not yet handed to a worker are
// never run, while invocations already in flight drain to completion
// (engines are cheap to finish and results land in caller-owned,
// index-disjoint slots). Callers therefore must not assume fn ran for
// every index when an error is returned. Each invocation must be
// independent: engines, tags and RNGs are single-goroutine objects, so
// every fn(i) must build its own.
func RunParallel(n int, fn func(i int) error) error {
	return runParallel(runtime.GOMAXPROCS(0), n, fn)
}

// runParallel is RunParallel with an explicit worker budget (RunCampaign
// splits its budget between points and per-engine round workers).
func runParallel(workers, n int, fn func(i int) error) error {
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			if err := fn(i); err != nil {
				return err
			}
		}
		return nil
	}
	var (
		wg       sync.WaitGroup
		mu       sync.Mutex
		firstErr error
	)
	next := make(chan int)
	stop := make(chan struct{})
	var stopOnce sync.Once
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				if err := fn(i); err != nil {
					mu.Lock()
					if firstErr == nil {
						firstErr = err
					}
					mu.Unlock()
					stopOnce.Do(func() { close(stop) })
				}
			}
		}()
	}
dispatch:
	for i := 0; i < n; i++ {
		select {
		case next <- i:
		case <-stop:
			break dispatch
		}
	}
	close(next)
	wg.Wait()
	return firstErr
}

// runParallelCtx executes fn(0) … fn(n−1) across up to workers goroutines
// for functions that report failures out-of-band (into caller-owned,
// index-disjoint slots). Unlike runParallel, individual failures never stop
// dispatch — every index runs — so a campaign's healthy points complete
// around its broken ones. Cancellation is the only early exit: once
// ctx.Err() is non-nil, undispatched indices are skipped (their slots stay
// untouched) while in-flight invocations drain to completion.
func runParallelCtx(ctx context.Context, workers, n int, fn func(i int)) {
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			if ctx.Err() != nil {
				return
			}
			fn(i)
		}
		return
	}
	var wg sync.WaitGroup
	next := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				if ctx.Err() != nil {
					continue // drain the channel without starting new points
				}
				fn(i)
			}
		}()
	}
	for i := 0; i < n; i++ {
		if ctx.Err() != nil {
			break
		}
		next <- i
	}
	close(next)
	wg.Wait()
}
