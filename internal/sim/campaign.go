package sim

import (
	"fmt"
	"runtime"
)

// CampaignOpts configures RunCampaign.
type CampaignOpts struct {
	// Workers is the total goroutine budget, shared between concurrently
	// executing points and each engine's steady-state round workers. Zero
	// selects GOMAXPROCS.
	Workers int
	// What labels campaign errors with the harness's purpose (e.g.
	// "distance sweep").
	What string
}

// RunCampaign builds one engine per scenario and runs them all, returning
// the metrics indexed like points. It is the single execution entry behind
// runScenario, the sweep harnesses and the paperbench per-point loops: the
// worker budget is split so points run concurrently first, and — when the
// budget exceeds the point count — the surplus parallelizes each point's
// steady-state rounds (Scenario.Workers). A point with Workers already set
// keeps its own value. Results are independent of the budget: each point's
// metrics depend only on its scenario (see DeriveSeed for per-point seeds),
// and rounds are bit-reproducible for any worker count.
func RunCampaign(points []Scenario, opts CampaignOpts) ([]Metrics, error) {
	if len(points) == 0 {
		return nil, nil
	}
	what := opts.What
	if what == "" {
		what = "campaign"
	}
	budget := opts.Workers
	if budget <= 0 {
		budget = runtime.GOMAXPROCS(0)
	}
	pointWorkers := budget
	if pointWorkers > len(points) {
		pointWorkers = len(points)
	}
	perEngine := budget / pointWorkers
	if perEngine < 1 {
		perEngine = 1
	}
	out := make([]Metrics, len(points))
	err := runParallel(pointWorkers, len(points), func(i int) error {
		scn := points[i]
		if scn.Workers == 0 {
			scn.Workers = perEngine
		}
		e, err := NewEngine(scn)
		if err != nil {
			return fmt.Errorf("sim: %s: point %d: %w", what, i, err)
		}
		m, err := e.Run()
		if err != nil {
			return fmt.Errorf("sim: %s: point %d: %w", what, i, err)
		}
		out[i] = m
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}
