package sim

import (
	"context"
	"errors"
	"fmt"
	"runtime"

	"cbma/internal/obs"
)

// CampaignOpts configures RunCampaign.
type CampaignOpts struct {
	// Workers is the total goroutine budget, shared between concurrently
	// executing points and each engine's steady-state round workers. Zero
	// selects GOMAXPROCS.
	Workers int
	// What labels campaign errors with the harness's purpose (e.g.
	// "distance sweep").
	What string
	// Obs, when non-nil, times campaign points, drives the live progress
	// line, and is attached to every point scenario that does not already
	// carry its own observer. Telemetry never changes results (see
	// Scenario.Obs). When nil, the first point's Scenario.Obs (if any) still
	// receives the campaign-level progress and events.
	Obs *obs.Observer
}

// PointError records one failed campaign point, preserving which point and
// which harness produced it. Unwrap exposes the underlying cause for
// errors.Is/As.
type PointError struct {
	// What is the campaign label (CampaignOpts.What); Point the failing
	// scenario's index within the campaign.
	What  string
	Point int
	// Err is the underlying failure — an engine configuration error or a
	// recovered point-level panic.
	Err error
}

// Error implements error.
func (e *PointError) Error() string {
	return fmt.Sprintf("sim: %s: point %d: %v", e.What, e.Point, e.Err)
}

// Unwrap exposes the cause.
func (e *PointError) Unwrap() error { return e.Err }

// CampaignError aggregates every failed point of a campaign. RunCampaign
// returns it alongside the partial metrics slice: healthy points keep their
// results, failed ones hold the zero Metrics. Unwrap returns the per-point
// errors so errors.Is/As see through the aggregate.
type CampaignError struct {
	Points []*PointError
}

// Error reports the first failure and the overall count.
func (e *CampaignError) Error() string {
	if len(e.Points) == 1 {
		return e.Points[0].Error()
	}
	return fmt.Sprintf("%v (and %d more failed points)", e.Points[0], len(e.Points)-1)
}

// Unwrap implements the multi-error unwrapping contract of errors.Is/As.
func (e *CampaignError) Unwrap() []error {
	out := make([]error, len(e.Points))
	for i, pe := range e.Points {
		out[i] = pe
	}
	return out
}

// RunCampaign builds one engine per scenario and runs them all, returning
// the metrics indexed like points. It is the single execution entry behind
// runScenario, the sweep harnesses and the paperbench per-point loops: the
// worker budget is split so points run concurrently first, and — when the
// budget exceeds the point count — the surplus parallelizes each point's
// steady-state rounds (Scenario.Workers). A point with Workers already set
// keeps its own value. Results are independent of the budget: each point's
// metrics depend only on its scenario (see DeriveSeed for per-point seeds),
// and rounds are bit-reproducible for any worker count.
func RunCampaign(points []Scenario, opts CampaignOpts) ([]Metrics, error) {
	return RunCampaignContext(context.Background(), points, opts) //cbma:allow ctxflow public convenience entrypoint roots its own context
}

// RunCampaignContext is RunCampaign with cooperative cancellation and
// resilient point execution. Every point runs regardless of other points'
// failures — a broken scenario degrades the campaign instead of discarding
// the healthy points' work — and a point that fails (including by panic)
// leaves the zero Metrics in its slot and contributes a PointError to the
// returned *CampaignError. Cancellation stops dispatching new points;
// points already running return their partial, Interrupted metrics, and the
// context's error is returned (point failures, if any also occurred, take
// precedence so they are not masked).
func RunCampaignContext(ctx context.Context, points []Scenario, opts CampaignOpts) ([]Metrics, error) {
	if len(points) == 0 {
		return nil, nil
	}
	what := opts.What
	if what == "" {
		what = "campaign"
	}
	budget := opts.Workers
	if budget <= 0 {
		budget = runtime.GOMAXPROCS(0)
	}
	pointWorkers := budget
	if pointWorkers > len(points) {
		pointWorkers = len(points)
	}
	perEngine := budget / pointWorkers
	if perEngine < 1 {
		perEngine = 1
	}
	o := opts.Obs
	if o == nil {
		// Library sweeps that set Scenario.Obs (rather than CampaignOpts.Obs)
		// still get campaign-level progress and events.
		o = points[0].Obs
	}
	o.CampaignStart(what, len(points))
	pointHist := o.Histogram("campaign.point_ns")
	out := make([]Metrics, len(points))
	perr := make([]*PointError, len(points))
	runParallelCtx(ctx, pointWorkers, len(points), func(i int) {
		sp := o.Start(pointHist)
		perr[i] = runCampaignPoint(ctx, what, i, points[i], perEngine, opts.Obs, out)
		ns := sp.End()
		if o.EmitsEvents() {
			f := map[string]any{"what": what, "point": i}
			if ns > 0 {
				f["ns"] = ns
			}
			if perr[i] != nil {
				f["failed"] = true
			}
			o.Emit("point", f)
		}
		o.CampaignPoint()
	})
	o.CampaignEnd(what)
	var failed []*PointError
	for _, pe := range perr {
		if pe != nil {
			failed = append(failed, pe)
		}
	}
	if len(failed) > 0 {
		return out, &CampaignError{Points: failed}
	}
	if err := ctx.Err(); err != nil {
		return out, err
	}
	return out, nil
}

// runCampaignPoint executes one campaign point, converting configuration
// errors and point-level panics into a PointError. A cancelled point is not
// a failure: its partial metrics (already marked Interrupted by RunContext)
// land in out and the cancellation is reported campaign-wide instead.
func runCampaignPoint(ctx context.Context, what string, i int, scn Scenario, perEngine int, o *obs.Observer, out []Metrics) (pe *PointError) {
	defer func() {
		if r := recover(); r != nil {
			pe = &PointError{What: what, Point: i, Err: fmt.Errorf("panic: %v", r)}
		}
	}()
	if scn.Workers == 0 {
		scn.Workers = perEngine
	}
	if scn.Obs == nil {
		scn.Obs = o
	}
	e, err := NewEngine(scn)
	if err != nil {
		return &PointError{What: what, Point: i, Err: err}
	}
	m, err := e.RunContext(ctx)
	if err != nil {
		if ctx.Err() != nil && errors.Is(err, ctx.Err()) {
			out[i] = m
			return nil
		}
		return &PointError{What: what, Point: i, Err: err}
	}
	out[i] = m
	return nil
}
