package sim

import (
	"fmt"

	"cbma/internal/stats"
)

// Metrics aggregates one scenario run.
type Metrics struct {
	// NumTags is the concurrent tag count of the run.
	NumTags int
	// FramesSent counts transmitted frames across all tags; FramesDetected
	// those whose sender was found by user detection (regardless of CRC);
	// FramesDelivered those decoded with valid CRC and matching payload.
	FramesSent      int
	FramesDetected  int
	FramesDelivered int
	// FalseFrames counts CRC-valid decodes whose payload did not match any
	// transmission — misattributions, which a deployed system would ACK
	// incorrectly.
	FalseFrames int
	// AirtimeSeconds is the simulated on-air time.
	AirtimeSeconds float64
	// PowerControlRounds counts Algorithm 1 adjustment rounds executed;
	// PowerControlConverged reports whether the FER target was met.
	PowerControlRounds    int
	PowerControlConverged bool
	// PerTagSent and PerTagDelivered count frames per tag ID — the
	// delivery ratios node selection uses to mark "bad" tags.
	PerTagSent      []int
	PerTagDelivered []int

	// Derived (filled by finalize):

	// FER is the paper's error metric: missing frames over transmitted
	// frames (§IV: "the number of missing packets over the total number of
	// transmitted packets").
	FER float64
	// PRR is the complementary packet reception rate.
	PRR float64
	// DetectionFER is the frame-detection error rate — the metric of the
	// §VII-B1 micro benchmarks (Fig. 8, Fig. 9(a)): the fraction of
	// transmitted frames whose sender was never detected, independent of
	// whether the payload then survived the CRC.
	DetectionFER float64
	// GoodputBps is decoded payload bits per second of airtime across the
	// whole tag population.
	GoodputBps float64
	// RawAggregateBps is the population's on-air OOK symbol rate — the
	// "multi-tag bit rate" headline metric of the paper (N tags × chip
	// rate), before despreading.
	RawAggregateBps float64
}

// TagDeliveryRatio returns delivered/sent for one tag, or zero before any
// frame was attributed to it.
func (m Metrics) TagDeliveryRatio(id int) float64 {
	if id < 0 || id >= len(m.PerTagSent) || m.PerTagSent[id] == 0 {
		return 0
	}
	return float64(m.PerTagDelivered[id]) / float64(m.PerTagSent[id])
}

// finalize derives the rate metrics from the counters.
func (m *Metrics) finalize(scn Scenario) {
	m.FER = 1 - stats.RatioOrZero(float64(m.FramesDelivered), float64(m.FramesSent))
	m.PRR = 1 - m.FER
	m.DetectionFER = 1 - stats.RatioOrZero(float64(m.FramesDetected), float64(m.FramesSent))
	payloadBits := float64(8 * scn.PayloadBytes)
	m.GoodputBps = stats.RatioOrZero(float64(m.FramesDelivered)*payloadBits, m.AirtimeSeconds)
	m.RawAggregateBps = float64(m.NumTags) * scn.ChipRateHz * m.PRR
}

// String renders a one-line summary.
func (m Metrics) String() string {
	return fmt.Sprintf("tags=%d sent=%d delivered=%d FER=%.4f goodput=%.0f bps raw=%.0f bps",
		m.NumTags, m.FramesSent, m.FramesDelivered, m.FER, m.GoodputBps, m.RawAggregateBps)
}
