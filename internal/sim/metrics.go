package sim

import (
	"fmt"

	"cbma/internal/fault"
	"cbma/internal/stats"
)

// Metrics aggregates one scenario run.
type Metrics struct {
	// NumTags is the concurrent tag count of the run.
	NumTags int
	// FramesSent counts transmitted frames across all tags; FramesDetected
	// those whose sender was found by user detection (regardless of CRC);
	// FramesDelivered those decoded with valid CRC and matching payload.
	FramesSent      int
	FramesDetected  int
	FramesDelivered int
	// FalseFrames counts CRC-valid decodes whose payload did not match any
	// transmission — misattributions, which a deployed system would ACK
	// incorrectly.
	FalseFrames int
	// AirtimeSamples is the simulated on-air time in receiver samples.
	// Integral so merging round partials is exact under any grouping —
	// float-second accumulation is not associative, and the W=1≡W=N
	// reproducibility contract needs bit-equal results.
	AirtimeSamples int64
	// AirtimeSeconds is the simulated on-air time, derived from
	// AirtimeSamples by finalize (callers constructing Metrics directly may
	// also set it themselves).
	AirtimeSeconds float64
	// airtimeDirect accumulates merged-in airtime that was never backed by
	// samples (partials from direct-construction callers). Keeping it apart
	// from AirtimeSeconds makes finalize the single source of truth for the
	// exported field: finalized partials merge by their integral samples
	// alone, so re-finalizing a merged value can never double-count.
	airtimeDirect float64
	// PowerControlRounds counts Algorithm 1 adjustment rounds executed;
	// PowerControlConverged reports whether the FER target was met.
	PowerControlRounds    int
	PowerControlConverged bool
	// PowerControlRetries counts feedback-blackout re-measurements the
	// controller requested (mac.RoundOutcome.FeedbackLost with a retry);
	// PowerControlFellBack reports the conservative fallback-impedance
	// parking was taken after retries exhausted.
	PowerControlRetries  int
	PowerControlFellBack bool
	// Degradation accounting of the resilient runner. RoundsPlanned counts
	// rounds the run intended to execute (steady-state packets plus
	// adjustment batches); RoundsExecuted those that completed;
	// RoundsQuarantined those abandoned after a panic or after transient
	// retries exhausted. RoundRetries counts retry attempts across all
	// rounds. On an uninterrupted run,
	// RoundsExecuted + RoundsQuarantined == RoundsPlanned.
	RoundsPlanned     int
	RoundsExecuted    int
	RoundsQuarantined int
	RoundRetries      int
	// Interrupted reports the run was cut short by context cancellation;
	// the counters then cover only the rounds committed before the cut.
	Interrupted bool
	// Faults counts how often each injected fault fired (zero value when
	// the scenario has no fault profile).
	Faults fault.Counters
	// PerTagSent and PerTagDelivered count frames per tag ID — the
	// delivery ratios node selection uses to mark "bad" tags.
	PerTagSent      []int
	PerTagDelivered []int

	// Derived (filled by finalize):

	// FER is the paper's error metric: missing frames over transmitted
	// frames (§IV: "the number of missing packets over the total number of
	// transmitted packets").
	FER float64
	// PRR is the complementary packet reception rate.
	PRR float64
	// DetectionFER is the frame-detection error rate — the metric of the
	// §VII-B1 micro benchmarks (Fig. 8, Fig. 9(a)): the fraction of
	// transmitted frames whose sender was never detected, independent of
	// whether the payload then survived the CRC.
	DetectionFER float64
	// GoodputBps is decoded payload bits per second of airtime across the
	// whole tag population.
	GoodputBps float64
	// RawAggregateBps is the population's on-air OOK symbol rate — the
	// "multi-tag bit rate" headline metric of the paper (N tags × chip
	// rate), before despreading.
	RawAggregateBps float64
}

// TagDeliveryRatio returns delivered/sent for one tag, or zero before any
// frame was attributed to it.
func (m Metrics) TagDeliveryRatio(id int) float64 {
	if id < 0 || id >= len(m.PerTagSent) || m.PerTagSent[id] == 0 {
		return 0
	}
	return float64(m.PerTagDelivered[id]) / float64(m.PerTagSent[id])
}

// Merge folds another Metrics value — typically a per-round partial built
// by roundResult.metrics — into m. Every counter is integral, so merging is
// associative and commutative over any partition of the rounds: serial
// accumulation and any parallel merge order produce identical values. The
// derived rate fields are not merged; call finalize on the result.
func (m *Metrics) Merge(o Metrics) {
	if m.NumTags == 0 {
		m.NumTags = o.NumTags
	}
	m.FramesSent += o.FramesSent
	m.FramesDetected += o.FramesDetected
	m.FramesDelivered += o.FramesDelivered
	m.FalseFrames += o.FalseFrames
	// Airtime merges through the integral samples; AirtimeSeconds is derived
	// by finalize. A partial carrying seconds without samples (direct
	// construction) folds into the hidden accumulator instead, so merging
	// already-finalized partials cannot double-count their airtime.
	m.AirtimeSamples += o.AirtimeSamples
	m.airtimeDirect += o.airtimeDirect
	if o.AirtimeSamples == 0 {
		m.airtimeDirect += o.AirtimeSeconds
	}
	m.PowerControlRounds += o.PowerControlRounds
	m.PowerControlConverged = m.PowerControlConverged || o.PowerControlConverged
	m.PowerControlRetries += o.PowerControlRetries
	m.PowerControlFellBack = m.PowerControlFellBack || o.PowerControlFellBack
	m.RoundsPlanned += o.RoundsPlanned
	m.RoundsExecuted += o.RoundsExecuted
	m.RoundsQuarantined += o.RoundsQuarantined
	m.RoundRetries += o.RoundRetries
	m.Interrupted = m.Interrupted || o.Interrupted
	m.Faults.Merge(o.Faults)
	m.PerTagSent = mergeCounts(m.PerTagSent, o.PerTagSent)
	m.PerTagDelivered = mergeCounts(m.PerTagDelivered, o.PerTagDelivered)
}

// mergeCounts adds src into dst elementwise, growing dst as needed.
func mergeCounts(dst, src []int) []int {
	if len(src) > len(dst) {
		grown := make([]int, len(src))
		copy(grown, dst)
		dst = grown
	}
	for i, v := range src {
		dst[i] += v
	}
	return dst
}

// finalize derives the rate metrics from the counters. It is idempotent:
// AirtimeSeconds is recomputed from the samples (plus any sample-free direct
// airtime merged in), never accumulated.
func (m *Metrics) finalize(scn Scenario) {
	if m.AirtimeSamples == 0 && m.airtimeDirect == 0 {
		// Direct-construction callers set AirtimeSeconds themselves; honor it
		// when nothing else contributed airtime.
		m.airtimeDirect = m.AirtimeSeconds
	}
	m.AirtimeSeconds = m.airtimeDirect
	if m.AirtimeSamples > 0 && scn.SampleRateHz > 0 {
		m.AirtimeSeconds += float64(m.AirtimeSamples) / scn.SampleRateHz
	}
	m.FER = 1 - stats.RatioOrZero(float64(m.FramesDelivered), float64(m.FramesSent))
	m.PRR = 1 - m.FER
	m.DetectionFER = 1 - stats.RatioOrZero(float64(m.FramesDetected), float64(m.FramesSent))
	payloadBits := float64(8 * scn.PayloadBytes)
	m.GoodputBps = stats.RatioOrZero(float64(m.FramesDelivered)*payloadBits, m.AirtimeSeconds)
	m.RawAggregateBps = float64(m.NumTags) * scn.ChipRateHz * m.PRR
}

// String renders a one-line summary; degraded runs append their
// quarantine/interruption accounting.
func (m Metrics) String() string {
	s := fmt.Sprintf("tags=%d sent=%d delivered=%d FER=%.4f goodput=%.0f bps raw=%.0f bps",
		m.NumTags, m.FramesSent, m.FramesDelivered, m.FER, m.GoodputBps, m.RawAggregateBps)
	if m.DetectionFER > 0 || m.FalseFrames > 0 {
		s += fmt.Sprintf(" detFER=%.4f false=%d", m.DetectionFER, m.FalseFrames)
	}
	if m.RoundsQuarantined > 0 || m.RoundRetries > 0 {
		s += fmt.Sprintf(" quarantined=%d/%d retries=%d",
			m.RoundsQuarantined, m.RoundsPlanned, m.RoundRetries)
	}
	if m.Interrupted {
		s += " (interrupted)"
	}
	return s
}
