package sim

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"

	"cbma/internal/channel"
	"cbma/internal/fault"
	"cbma/internal/geom"
)

// scenarioHashSchema versions the canonical serialization below. Bump it
// whenever hashDoc changes shape or a field changes meaning: every cached
// result and manifest pinned under the old schema then stops matching
// instead of silently colliding with the new one.
const scenarioHashSchema = "cbma/scenario/v1"

// hashDoc is the canonical serialization of a Scenario for hashing. It
// mirrors every result-relevant field of the normalized (validated)
// scenario with explicit, stable JSON names, so the digest is pinned by the
// golden tests rather than by Go field order or struct tags drifting.
//
// Deliberately excluded, because they are proven result-neutral:
//
//   - Workers — rounds draw from per-round RNG streams and commit in round
//     order, so Metrics are bit-identical at any worker count
//     (TestRunWorkerEquivalence).
//   - Obs — telemetry is strictly observational (TestRunObsEquivalence).
//
// ReferenceSync IS included even though the sync-equivalence suite proves
// the two receiver paths bit-identical: the knob exists to debug exactly
// the situation where that proof has been broken, and a cache must never
// answer a reference-path request with a fast-path result while someone is
// chasing such a break.
type hashDoc struct {
	Schema          string             `json:"schema"`
	Seed            int64              `json:"seed"`
	NumTags         int                `json:"num_tags"`
	Family          string             `json:"family"`
	GoldDegree      uint               `json:"gold_degree"`
	PayloadBytes    int                `json:"payload_bytes"`
	Packets         int                `json:"packets"`
	ChipRateHz      float64            `json:"chip_rate_hz"`
	SampleRateHz    float64            `json:"sample_rate_hz"`
	PreambleBits    int                `json:"preamble_bits"`
	Channel         channel.Params     `json:"channel"`
	Deployment      geom.Deployment    `json:"deployment"`
	TagLineDistance float64            `json:"tag_line_distance"`
	JitterChips     float64            `json:"jitter_chips"`
	ExtraDelayChips []float64          `json:"extra_delay_chips,omitempty"`
	Interferers     []string           `json:"interferers,omitempty"`
	OFDMExcitation  bool               `json:"ofdm_excitation"`
	Multipath       *channel.Multipath `json:"multipath,omitempty"`
	DetectThreshold float64            `json:"detect_threshold"`
	SearchChips     int                `json:"search_chips"`
	SIC             bool               `json:"sic"`
	PowerControl    bool               `json:"power_control"`
	PacketsPerRound int                `json:"packets_per_round"`
	OraclePower     bool               `json:"oracle_power_control"`
	CFOppm          float64            `json:"cfo_ppm"`
	PhaseTracking   bool               `json:"phase_tracking"`
	AckLossProb     float64            `json:"ack_loss_prob"`
	StaticChannel   bool               `json:"static_channel"`
	ImpedanceStates int                `json:"impedance_states"`
	RandomInitImp   bool               `json:"random_initial_impedance"`
	ReferenceSync   bool               `json:"reference_sync"`
	Fault           *fault.Profile     `json:"fault,omitempty"`
}

// Hash returns the canonical content hash of the scenario — the identity
// under which results may be cached and manifests pinned. Two scenarios
// with equal hashes produce bit-identical Metrics: the hash covers every
// result-relevant field of the NORMALIZED scenario (defaults applied, tags
// placed — so "payload 0" and "payload 16" hash equally, as they run
// equally), and the determinism contract (DeriveSeed per-point seeds,
// worker-count-invariant rounds) supplies the converse. The serialization
// is stable and golden-tested; see hashDoc for the exact field set and the
// documented exclusions.
//
// The digest is the hex SHA-256 of the schema-prefixed canonical JSON —
// filename-safe, so content-addressed stores use it directly.
func (s Scenario) Hash() (string, error) {
	norm := s
	norm.Obs = nil
	norm.Workers = 0
	if err := norm.validate(); err != nil {
		return "", fmt.Errorf("sim: hash: %w", err)
	}
	doc := hashDoc{
		Schema:          scenarioHashSchema,
		Seed:            norm.Seed,
		NumTags:         norm.NumTags,
		Family:          norm.Family.String(),
		GoldDegree:      norm.GoldDegree,
		PayloadBytes:    norm.PayloadBytes,
		Packets:         norm.Packets,
		ChipRateHz:      norm.ChipRateHz,
		SampleRateHz:    norm.SampleRateHz,
		PreambleBits:    norm.Frame.PreambleBits,
		Channel:         norm.Channel,
		Deployment:      norm.Deployment,
		TagLineDistance: norm.TagLineDistance,
		JitterChips:     norm.JitterChips,
		OFDMExcitation:  norm.OFDMExcitation,
		Multipath:       norm.Multipath,
		DetectThreshold: norm.DetectThreshold,
		SearchChips:     norm.SearchChips,
		SIC:             norm.SIC,
		PowerControl:    norm.PowerControl,
		PacketsPerRound: norm.PacketsPerRound,
		OraclePower:     norm.OraclePowerControl,
		CFOppm:          norm.CFOppm,
		PhaseTracking:   norm.PhaseTracking,
		AckLossProb:     norm.AckLossProb,
		StaticChannel:   norm.StaticChannel,
		ImpedanceStates: norm.ImpedanceStates,
		RandomInitImp:   norm.RandomInitialImpedance,
		ReferenceSync:   norm.ReferenceSync,
		Fault:           norm.Fault,
	}
	if len(norm.ExtraDelayChips) > 0 {
		doc.ExtraDelayChips = norm.ExtraDelayChips
	}
	// Interferers are interface values; their JSON encoding alone would
	// lose the concrete type (WiFi and Bluetooth interferers at the same
	// power must not collide). Render each as type+fields instead.
	for _, it := range norm.Interferers {
		doc.Interferers = append(doc.Interferers, fmt.Sprintf("%T%+v", it, it))
	}
	b, err := json.Marshal(doc)
	if err != nil {
		return "", fmt.Errorf("sim: hash: %w", err)
	}
	sum := sha256.Sum256(b)
	return hex.EncodeToString(sum[:]), nil
}
