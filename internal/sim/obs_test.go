package sim

import (
	"bytes"
	"reflect"
	"strings"
	"testing"
	"time"

	"cbma/internal/obs"
)

// testObserver builds an observer with a deterministic clock and a buffered
// JSONL sink, returning the sink's buffer for post-run assertions.
func testObserver() (*obs.Observer, *obs.Sink, *bytes.Buffer) {
	var buf bytes.Buffer
	sink := obs.NewSink(&buf, 1<<16)
	o := obs.New(obs.Config{
		Clock: obs.StepClock(time.Unix(0, 0), time.Microsecond),
		Sink:  sink,
	})
	return o, sink, &buf
}

// TestRunObsEquivalence is the telemetry layer's hard invariant: attaching an
// Observer — spans, counters and a live event sink — changes nothing about a
// run's Metrics, at any worker count, including under the full fault
// profile's quarantine and retry paths.
func TestRunObsEquivalence(t *testing.T) {
	for name, scn := range workerScenarios(t) {
		t.Run(name, func(t *testing.T) {
			bare := scn
			bare.Workers = 1
			e, err := NewEngine(bare)
			if err != nil {
				t.Fatal(err)
			}
			baseline, err := e.Run()
			if err != nil {
				t.Fatal(err)
			}
			for _, workers := range []int{1, 4, 7} {
				s := scn
				s.Workers = workers
				o, sink, _ := testObserver()
				s.Obs = o
				e, err := NewEngine(s)
				if err != nil {
					t.Fatal(err)
				}
				m, err := e.Run()
				if err != nil {
					t.Fatal(err)
				}
				if !reflect.DeepEqual(baseline, m) {
					t.Errorf("metrics with telemetry (W=%d) diverge from bare run:\n  bare: %+v\n  obs:  %+v",
						workers, baseline, m)
				}
				// The instrumentation must actually have been live, or the
				// equivalence above proves nothing.
				if got := o.Counter("sim.rounds.executed").Value(); got != int64(m.RoundsExecuted) {
					t.Errorf("W=%d: sim.rounds.executed = %d, want %d", workers, got, m.RoundsExecuted)
				}
				if err := sink.Close(); err != nil {
					t.Fatal(err)
				}
				if sink.Written() == 0 {
					t.Errorf("W=%d: no events written", workers)
				}
			}
		})
	}
}

// TestCampaignObsEquivalence extends the invariant to RunCampaign and checks
// the campaign-level event record: attaching a campaign observer leaves every
// point's Metrics untouched while the sink sees the campaign lifecycle and
// one point event per scenario.
func TestCampaignObsEquivalence(t *testing.T) {
	base := fastScenario()
	base.Packets = packets(t, 16)
	var points []Scenario
	for i := 0; i < 4; i++ {
		scn := base
		scn.NumTags = 2 + i%2
		scn.Seed = DeriveSeed(base.Seed, 9998, uint64(i))
		points = append(points, scn)
	}
	bare, err := RunCampaign(points, CampaignOpts{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	o, sink, buf := testObserver()
	observed, err := RunCampaign(points, CampaignOpts{Workers: 8, What: "obs equivalence", Obs: o})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(bare, observed) {
		t.Errorf("campaign metrics with telemetry diverge:\n  bare: %+v\n  obs:  %+v", bare, observed)
	}
	if err := sink.Close(); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{`"campaign_start"`, `"campaign_end"`} {
		if !strings.Contains(out, want) {
			t.Errorf("event log missing %s", want)
		}
	}
	if got := strings.Count(out, `"type":"point"`); got != len(points) {
		t.Errorf("event log has %d point events, want %d", got, len(points))
	}
	if got := o.Histogram("campaign.point_ns").Count(); got != int64(len(points)) {
		t.Errorf("campaign.point_ns count = %d, want %d", got, len(points))
	}
}

// TestMergeFinalizedPartialsAirtime is the regression test for the airtime
// double-count: merging already-finalized partials (each carrying a nonzero
// AirtimeSeconds derived from its samples) and finalizing the aggregate must
// equal finalizing the serial merge of the raw partials — the sample count
// must not be converted to seconds twice. It also pins finalize idempotence.
func TestMergeFinalizedPartialsAirtime(t *testing.T) {
	scn := fastScenario()
	partial := func(samples int64) Metrics {
		return Metrics{
			NumTags:        2,
			FramesSent:     2,
			AirtimeSamples: samples,
		}
	}
	raws := []Metrics{partial(40000), partial(25000), partial(35000)}

	var serial Metrics
	for _, p := range raws {
		serial.Merge(p)
	}
	serial.finalize(scn)

	var merged Metrics
	for _, p := range raws {
		fin := p
		fin.finalize(scn)
		if fin.AirtimeSeconds <= 0 {
			t.Fatalf("finalized partial has no airtime: %+v", fin)
		}
		merged.Merge(fin)
	}
	merged.finalize(scn)

	if merged.AirtimeSeconds != serial.AirtimeSeconds {
		t.Errorf("airtime double-counted when merging finalized partials: got %v, want %v",
			merged.AirtimeSeconds, serial.AirtimeSeconds)
	}
	again := merged
	again.finalize(scn)
	if again.AirtimeSeconds != merged.AirtimeSeconds {
		t.Errorf("finalize is not idempotent: %v then %v", merged.AirtimeSeconds, again.AirtimeSeconds)
	}

	// Directly-constructed aggregates (tests, external callers) that carry
	// only AirtimeSeconds keep it through finalize.
	direct := Metrics{AirtimeSeconds: 1.5}
	direct.finalize(scn)
	if direct.AirtimeSeconds != 1.5 {
		t.Errorf("direct AirtimeSeconds not preserved: got %v", direct.AirtimeSeconds)
	}
}
