package sim

import "testing"

func TestCFOBreaksCoherentDecodingWithoutTracking(t *testing.T) {
	scn := fastScenario()
	scn.NumTags = 2
	scn.Packets = packets(t, 60)
	scn.CFOppm = 0.5 // 1 kHz at 2 GHz — several phase rotations per frame

	e, err := NewEngine(scn)
	if err != nil {
		t.Fatal(err)
	}
	m, err := e.Run()
	if err != nil {
		t.Fatal(err)
	}
	if m.FER < 0.3 {
		t.Errorf("0.5 ppm CFO without tracking should be destructive, FER %v", m.FER)
	}
}

func TestPhaseTrackingRestoresDecodingUnderCFO(t *testing.T) {
	scn := fastScenario()
	scn.NumTags = 2
	scn.Packets = packets(t, 60)
	scn.CFOppm = 0.5
	scn.PhaseTracking = true

	e, err := NewEngine(scn)
	if err != nil {
		t.Fatal(err)
	}
	m, err := e.Run()
	if err != nil {
		t.Fatal(err)
	}
	if m.FER > 0.1 {
		t.Errorf("phase tracking should restore decoding under CFO, FER %v", m.FER)
	}
}

func TestPhaseTrackingHarmlessWithoutCFO(t *testing.T) {
	scn := fastScenario()
	scn.Packets = packets(t, 60)
	scn.PhaseTracking = true
	e, err := NewEngine(scn)
	if err != nil {
		t.Fatal(err)
	}
	m, err := e.Run()
	if err != nil {
		t.Fatal(err)
	}
	if m.FER > 0.1 {
		t.Errorf("tracking on a static channel must stay clean, FER %v", m.FER)
	}
}

func TestAckLossStarvesPowerControlFeedback(t *testing.T) {
	scn := fastScenario()
	scn.NumTags = 2
	scn.Packets = packets(t, 40)
	scn.AckLossProb = 1.0 // downlink dead: every frame looks unacked
	scn.PowerControl = true
	scn.PacketsPerRound = 10

	e, err := NewEngine(scn)
	if err != nil {
		t.Fatal(err)
	}
	m, err := e.Run()
	if err != nil {
		t.Fatal(err)
	}
	// With no ACKs ever heard, Algorithm 1 sees FER 1 at every round and
	// burns its full budget (3 × numTags rounds) without converging.
	if m.PowerControlConverged {
		t.Error("a dead ACK downlink cannot converge")
	}
	if m.PowerControlRounds != 6 {
		t.Errorf("rounds %d, want the full 3×2 budget", m.PowerControlRounds)
	}
	// Receiver-side delivery is unaffected by downlink loss.
	if m.FER > 0.1 {
		t.Errorf("delivery must not depend on the ACK downlink, FER %v", m.FER)
	}
}

func TestAckLossZeroMatchesBaseline(t *testing.T) {
	run := func(loss float64) Metrics {
		scn := fastScenario()
		scn.Packets = packets(t, 20)
		scn.AckLossProb = loss
		e, err := NewEngine(scn)
		if err != nil {
			t.Fatal(err)
		}
		m, err := e.Run()
		if err != nil {
			t.Fatal(err)
		}
		return m
	}
	a, b := run(0), run(0)
	if a.FramesDelivered != b.FramesDelivered {
		t.Error("zero loss must be deterministic across runs")
	}
}
