package sim

import (
	"reflect"
	"testing"
)

// TestRunSyncEquivalence is the campaign-level half of the fast-sync
// guarantee: for every pipeline fixture — including the faulted profile,
// whose outages drive the receiver through the re-sync fallback — the
// optimized sync path (prefix-sum detection, windowed envelope,
// coarse-to-fine alignment) produces Metrics bit-identical to the
// pre-optimization reference, at any worker count.
func TestRunSyncEquivalence(t *testing.T) {
	for name, scn := range workerScenarios(t) {
		t.Run(name, func(t *testing.T) {
			ref := scn
			ref.ReferenceSync = true
			ref.Workers = 1
			e, err := NewEngine(ref)
			if err != nil {
				t.Fatal(err)
			}
			baseline, err := e.Run()
			if err != nil {
				t.Fatal(err)
			}
			for _, workers := range []int{1, 4, 7} {
				s := scn
				s.ReferenceSync = false
				s.Workers = workers
				e, err := NewEngine(s)
				if err != nil {
					t.Fatal(err)
				}
				m, err := e.Run()
				if err != nil {
					t.Fatal(err)
				}
				if !reflect.DeepEqual(baseline, m) {
					t.Errorf("fast sync metrics (W=%d) diverge from reference sync:\n  ref:  %+v\n  fast: %+v",
						workers, baseline, m)
				}
			}
		})
	}
}

// TestCampaignSyncEquivalence extends the invariant to RunCampaign: a
// four-point sweep run with the reference sync path equals the same sweep
// on the fast path, point for point.
func TestCampaignSyncEquivalence(t *testing.T) {
	base := fastScenario()
	base.Packets = packets(t, 16)
	var ref, fast []Scenario
	for i := 0; i < 4; i++ {
		scn := base
		scn.NumTags = 2 + i%2
		scn.Seed = DeriveSeed(base.Seed, 9997, uint64(i))
		scn.ReferenceSync = true
		ref = append(ref, scn)
		scn.ReferenceSync = false
		fast = append(fast, scn)
	}
	want, err := RunCampaign(ref, CampaignOpts{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	got, err := RunCampaign(fast, CampaignOpts{Workers: 8})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(want, got) {
		t.Errorf("campaign metrics diverge between sync paths:\n  ref:  %+v\n  fast: %+v", want, got)
	}
}
