package sim

import (
	"context"
	"errors"
	"reflect"
	"sync"
	"testing"
	"time"

	"cbma/internal/fault"
)

// faultScenario is the chaos fixture: a small run with an execution-fault
// profile layered on top of fastScenario.
func faultScenario(t *testing.T, p fault.Profile) Scenario {
	t.Helper()
	scn := fastScenario()
	scn.NumTags = 3
	scn.Packets = packets(t, 24)
	scn.Fault = &p
	return scn
}

// TestChaosRunQuarantinesPanics is the headline resilience invariant: a run
// whose rounds panic (by injection) completes without error, quarantines
// exactly the panicking rounds, and accounts for every planned round.
func TestChaosRunQuarantinesPanics(t *testing.T) {
	scn := faultScenario(t, fault.Profile{PanicProb: 0.5})
	for _, workers := range []int{1, 4} {
		s := scn
		s.Workers = workers
		e, err := NewEngine(s)
		if err != nil {
			t.Fatal(err)
		}
		m, err := e.Run()
		if err != nil {
			t.Fatalf("W=%d: chaos run must not error: %v", workers, err)
		}
		if m.RoundsQuarantined == 0 {
			t.Fatalf("W=%d: no rounds quarantined at 50%% panic probability", workers)
		}
		if m.RoundsExecuted+m.RoundsQuarantined != m.RoundsPlanned {
			t.Errorf("W=%d: executed %d + quarantined %d != planned %d",
				workers, m.RoundsExecuted, m.RoundsQuarantined, m.RoundsPlanned)
		}
		if m.Faults.InjectedPanics != m.RoundsQuarantined {
			t.Errorf("W=%d: %d injected panics but %d quarantined rounds",
				workers, m.Faults.InjectedPanics, m.RoundsQuarantined)
		}
		if m.Interrupted {
			t.Errorf("W=%d: uninterrupted run marked Interrupted", workers)
		}
		// Quarantined rounds contribute no frames; executed ones all do.
		if m.FramesSent != m.RoundsExecuted*s.NumTags {
			t.Errorf("W=%d: %d frames sent from %d executed rounds of %d tags",
				workers, m.FramesSent, m.RoundsExecuted, s.NumTags)
		}
	}
}

// TestTransientRetryRecovers: transient round failures retry within the
// attempt budget; episodes that outlast it quarantine. Every planned round
// is accounted for either way, and retries are visible in the metrics.
func TestTransientRetryRecovers(t *testing.T) {
	scn := faultScenario(t, fault.Profile{TransientErrProb: 1, MaxRoundRetries: 3})
	e, err := NewEngine(scn)
	if err != nil {
		t.Fatal(err)
	}
	m, err := e.Run()
	if err != nil {
		t.Fatalf("transient failures must not error the run: %v", err)
	}
	if m.RoundRetries == 0 {
		t.Fatal("no retries recorded with every round transiently failing")
	}
	if m.Faults.TransientErrors == 0 {
		t.Fatal("no transient errors counted")
	}
	if m.RoundsExecuted == 0 {
		t.Fatal("no round recovered within a 3-retry budget")
	}
	if m.RoundsExecuted+m.RoundsQuarantined != m.RoundsPlanned {
		t.Errorf("executed %d + quarantined %d != planned %d",
			m.RoundsExecuted, m.RoundsQuarantined, m.RoundsPlanned)
	}
}

// TestRetriedRoundsReproduce: a round that recovers after transient retries
// must be bit-identical to the same round executed without execution faults
// — each retry rebuilds the round's streams from scratch. Rounds whose
// episode outlasts the budget quarantine instead (FailAttempts can draw
// MaxRoundRetries+1 by design); those are skipped but must be a minority.
func TestRetriedRoundsReproduce(t *testing.T) {
	scn := fastScenario()
	scn.NumTags = 3
	scn.Packets = packets(t, 16)
	eClean, err := NewEngine(scn)
	if err != nil {
		t.Fatal(err)
	}
	faulted := scn
	faulted.Fault = &fault.Profile{TransientErrProb: 1, MaxRoundRetries: 3}
	eFault, err := NewEngine(faulted)
	if err != nil {
		t.Fatal(err)
	}

	recovered := 0
	for p := 0; p < scn.Packets; p++ {
		cs := newRoundStreams(scn.Seed, 0, phaseSteady, uint64(p))
		cres, err := eClean.resilientRound(eClean.tags, cs, &eClean.round, eClean.recv)
		if err != nil {
			t.Fatal(err)
		}
		fs := newRoundStreams(scn.Seed, 0, phaseSteady, uint64(p))
		fres, err := eFault.resilientRound(eFault.tags, fs, &eFault.round, eFault.recv)
		if err != nil {
			t.Fatal(err)
		}
		if fres.quarantined {
			continue
		}
		if fres.retries == 0 {
			t.Fatalf("round %d: no transient failure at probability 1", p)
		}
		recovered++
		if cres.sent != fres.sent || cres.delivered != fres.delivered ||
			!reflect.DeepEqual(cres.deliveredIDs, fres.deliveredIDs) ||
			!reflect.DeepEqual(cres.detectedIDs, fres.detectedIDs) {
			t.Errorf("round %d: retried result diverged from clean result:\n  clean:   sent=%d delivered=%d ids=%v\n  retried: sent=%d delivered=%d ids=%v",
				p, cres.sent, cres.delivered, cres.deliveredIDs,
				fres.sent, fres.delivered, fres.deliveredIDs)
		}
	}
	// FailAttempts is uniform over [1, 4] against a 4-attempt budget, so
	// 3 of 4 rounds recover in expectation.
	if recovered < scn.Packets/2 {
		t.Fatalf("only %d of %d rounds recovered within the retry budget", recovered, scn.Packets)
	}
}

// TestRunContextAlreadyCancelled: a cancelled context stops the run before
// any round and returns Interrupted partial metrics with the context error.
func TestRunContextAlreadyCancelled(t *testing.T) {
	scn := fastScenario()
	scn.Packets = 8
	e, err := NewEngine(scn)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	m, err := e.RunContext(ctx)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("got %v, want context.Canceled", err)
	}
	if !m.Interrupted {
		t.Error("partial metrics not marked Interrupted")
	}
	if m.RoundsExecuted != 0 || m.FramesSent != 0 {
		t.Errorf("cancelled-before-start run executed rounds: %+v", m)
	}
}

// countdownCtx is a context whose Err() flips to Canceled after a fixed
// number of calls — a deterministic mid-run cancellation without timers.
type countdownCtx struct {
	mu    sync.Mutex
	calls int
	after int
}

func (c *countdownCtx) Deadline() (time.Time, bool) { return time.Time{}, false }
func (c *countdownCtx) Done() <-chan struct{}       { return nil }
func (c *countdownCtx) Value(any) any               { return nil }
func (c *countdownCtx) Err() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.calls++
	if c.calls > c.after {
		return context.Canceled
	}
	return nil
}

// TestRunContextMidRunCancel: cancellation mid-steady-state returns the
// prefix of committed rounds, finalized and marked Interrupted.
func TestRunContextMidRunCancel(t *testing.T) {
	scn := fastScenario()
	scn.NumTags = 2
	scn.Packets = 16
	e, err := NewEngine(scn)
	if err != nil {
		t.Fatal(err)
	}
	ctx := &countdownCtx{after: 6}
	m, err := e.RunContext(ctx)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("got %v, want context.Canceled", err)
	}
	if !m.Interrupted {
		t.Error("partial metrics not marked Interrupted")
	}
	if m.RoundsExecuted == 0 || m.RoundsExecuted >= scn.Packets {
		t.Fatalf("mid-run cancel executed %d of %d rounds", m.RoundsExecuted, scn.Packets)
	}
	if m.RoundsPlanned != scn.Packets {
		t.Errorf("planned %d, want %d", m.RoundsPlanned, scn.Packets)
	}

	// The committed rounds are a prefix of the uninterrupted run: the first
	// RoundsExecuted rounds' frame counters must match.
	full, err := NewEngine(scn)
	if err != nil {
		t.Fatal(err)
	}
	var prefix Metrics
	prefix.NumTags = scn.NumTags
	for p := 0; p < m.RoundsExecuted; p++ {
		rs := newRoundStreams(scn.Seed, 0, phaseSteady, uint64(p))
		res, err := full.resilientRound(full.tags, rs, &full.round, full.recv)
		if err != nil {
			t.Fatal(err)
		}
		full.commitRound(full.tags, res)
		prefix.Merge(res.metrics(len(full.tags)))
	}
	if prefix.FramesSent != m.FramesSent || prefix.FramesDelivered != m.FramesDelivered {
		t.Errorf("interrupted metrics are not a prefix of the full run:\n  interrupted: %+v\n  prefix:      %+v",
			m, prefix)
	}
}

// TestCampaignPointFailureIsolation: one broken scenario must not discard
// the other points' results; the aggregate error names the broken point and
// unwraps to its cause.
func TestCampaignPointFailureIsolation(t *testing.T) {
	good := fastScenario()
	good.Packets = packets(t, 8)
	bad := good
	bad.NumTags = 0
	ms, err := RunCampaign([]Scenario{good, bad, good}, CampaignOpts{Workers: 1, What: "isolation test"})
	var ce *CampaignError
	if !errors.As(err, &ce) {
		t.Fatalf("got %v, want *CampaignError", err)
	}
	if len(ce.Points) != 1 || ce.Points[0].Point != 1 {
		t.Fatalf("campaign error %v, want exactly point 1", ce)
	}
	if !errors.Is(err, ErrBadTagCount) {
		t.Errorf("campaign error does not unwrap to ErrBadTagCount: %v", err)
	}
	if ms[0].FramesSent == 0 || ms[2].FramesSent == 0 {
		t.Error("healthy points lost their metrics to the broken one")
	}
	if ms[1].FramesSent != 0 {
		t.Errorf("broken point has metrics: %+v", ms[1])
	}
}

// TestCampaignContextCancelled: a cancelled context stops the campaign and
// returns the context error with whatever points finished.
func TestCampaignContextCancelled(t *testing.T) {
	scn := fastScenario()
	scn.Packets = 4
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	ms, err := RunCampaignContext(ctx, []Scenario{scn, scn}, CampaignOpts{Workers: 1})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("got %v, want context.Canceled", err)
	}
	if len(ms) != 2 {
		t.Fatalf("partial slice has %d slots, want 2", len(ms))
	}
}

// TestFaultSweepAckLossMonotone is the acceptance curve: error rate versus
// feedback ACK-loss rate degrades gracefully and (within a sampling
// tolerance) monotonically, thanks to the sweep's common-random-numbers
// seeding.
func TestFaultSweepAckLossMonotone(t *testing.T) {
	base := fastScenario()
	base.NumTags = 3
	base.Packets = packets(t, 24)
	base.PacketsPerRound = 4
	base.PowerControl = true
	base.RandomInitialImpedance = true
	rates := []float64{0, 0.1, 0.2, 0.3, 0.4, 0.5}
	s, err := FaultSweepAckLoss(context.Background(), base, rates)
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Points) != len(rates) {
		t.Fatalf("%d points, want %d", len(s.Points), len(rates))
	}
	const tol = 0.12
	for i := 1; i < len(s.Points); i++ {
		lo, hi := s.Points[i-1], s.Points[i]
		if hi.Metrics.FER < lo.Metrics.FER-tol {
			t.Errorf("FER not monotone: %.3f at rate %.2f but %.3f at rate %.2f",
				lo.Metrics.FER, lo.X, hi.Metrics.FER, hi.X)
		}
	}
	first, last := s.Points[0].Metrics.FER, s.Points[len(s.Points)-1].Metrics.FER
	if last < first {
		t.Errorf("degradation curve ends below its start: %.3f → %.3f", first, last)
	}
	if last >= 1 {
		t.Errorf("degradation is not graceful: FER hit %.3f at 50%% ACK loss", last)
	}
	for _, pt := range s.Points[1:] {
		if pt.Metrics.Faults.AcksLost == 0 {
			t.Errorf("rate %.2f lost no ACKs — fault layer not wired", pt.X)
		}
	}
}

// TestStuckTagsReported: the static stuck-switch draw lands in the metrics
// and freezes the affected tags.
func TestStuckTagsReported(t *testing.T) {
	scn := faultScenario(t, fault.Profile{StuckImpedanceProb: 1})
	e, err := NewEngine(scn)
	if err != nil {
		t.Fatal(err)
	}
	m, err := e.Run()
	if err != nil {
		t.Fatal(err)
	}
	if m.Faults.StuckTags != scn.NumTags {
		t.Errorf("%d stuck tags reported, want %d", m.Faults.StuckTags, scn.NumTags)
	}
	for _, tg := range e.Tags() {
		if !tg.Stuck() {
			t.Errorf("tag %d not stuck at probability 1", tg.ID())
		}
	}
}

// TestFaultFreeProfileReproducesBaseline: arming the fault layer with an
// all-zero profile must not change a run — the injector stays nil and the
// legacy stream draws are untouched.
func TestFaultFreeProfileReproducesBaseline(t *testing.T) {
	clean := fastScenario()
	clean.NumTags = 3
	clean.Packets = packets(t, 16)
	armed := clean
	armed.Fault = &fault.Profile{}

	eClean, err := NewEngine(clean)
	if err != nil {
		t.Fatal(err)
	}
	mClean, err := eClean.Run()
	if err != nil {
		t.Fatal(err)
	}
	eArmed, err := NewEngine(armed)
	if err != nil {
		t.Fatal(err)
	}
	mArmed, err := eArmed.Run()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(mClean, mArmed) {
		t.Errorf("zero fault profile changed the run:\n  clean: %+v\n  armed: %+v", mClean, mArmed)
	}
}
