package sim

import (
	"bytes"
	"fmt"
	"math"
	"math/rand"

	"cbma/internal/dsp"

	"cbma/internal/channel"
	"cbma/internal/geom"
	"cbma/internal/mac"
	"cbma/internal/pn"
	"cbma/internal/rx"
	"cbma/internal/tag"
	"cbma/internal/trace"
)

// Engine runs collision rounds for one scenario. Construct with NewEngine;
// an Engine is single-goroutine (the rng and tag state are unsynchronized).
type Engine struct {
	scn  Scenario
	rng  *rand.Rand
	set  *pn.Set
	tags []*tag.Tag
	recv *rx.Receiver
	pc   *mac.PowerController
	// leadSamples is the noise-only region before the nominal frame start.
	leadSamples int
	// staticFading caches per-tag channel coefficients when the scenario
	// freezes the channel (Scenario.StaticChannel).
	staticFading []complex128
	// recorder and player implement the paper's §VIII-C trace-driven
	// emulation (see RecordTo / ReplayFrom).
	recorder *trace.Recorder
	player   *trace.Player
	// round holds the per-round buffers reused across rounds. runRound is
	// the simulator's hot loop and the mixing buffer alone is tens of
	// thousands of samples; reusing it (and the per-slot waveform buffers)
	// removes the dominant per-round allocations.
	round roundBuffers
}

// roundBuffers is runRound's reusable scratch: one payload and waveform
// buffer per active-tag slot, the placement bookkeeping slices, and the
// mixing buffer the waveforms accumulate into.
type roundBuffers struct {
	payloads [][]byte
	waves    [][]complex128
	offsets  []int
	delays   []float64
	mix      []complex128
}

// grow sizes the per-slot scratch for n active tags, retaining previously
// allocated storage.
func (rb *roundBuffers) grow(n int) {
	if cap(rb.payloads) < n {
		payloads := make([][]byte, n)
		copy(payloads, rb.payloads)
		rb.payloads = payloads
		waves := make([][]complex128, n)
		copy(waves, rb.waves)
		rb.waves = waves
		rb.offsets = make([]int, n)
		rb.delays = make([]float64, n)
	}
	rb.payloads = rb.payloads[:n]
	rb.waves = rb.waves[:n]
	rb.offsets = rb.offsets[:n]
	rb.delays = rb.delays[:n]
}

// mixFor returns a zeroed mixing buffer of length n, reusing capacity.
func (rb *roundBuffers) mixFor(n int) []complex128 {
	if cap(rb.mix) < n {
		rb.mix = make([]complex128, n)
	}
	rb.mix = rb.mix[:n]
	for i := range rb.mix {
		rb.mix[i] = 0
	}
	return rb.mix
}

// NewEngine validates the scenario and builds the tag population and
// receiver.
func NewEngine(scn Scenario) (*Engine, error) {
	if err := scn.validate(); err != nil {
		return nil, err
	}
	set, err := pn.NewSet(scn.Family, scn.NumTags, scn.GoldDegree)
	if err != nil {
		return nil, fmt.Errorf("sim: building code set: %w", err)
	}
	spc := scn.SamplesPerChip()
	e := &Engine{
		scn: scn,
		rng: rand.New(rand.NewSource(scn.Seed)),
		set: set,
	}
	var bank tag.Bank
	if scn.ImpedanceStates > 0 {
		bank, err = tag.UniformBank(scn.ImpedanceStates)
		if err != nil {
			return nil, fmt.Errorf("sim: impedance bank: %w", err)
		}
	}
	for i := 0; i < scn.NumTags; i++ {
		tg, err := tag.New(i, tag.Config{
			Code:           set.Codes[i],
			SamplesPerChip: spc,
			Frame:          scn.Frame,
			Bank:           bank,
		}, scn.Deployment.Tags[i])
		if err != nil {
			return nil, fmt.Errorf("sim: tag %d: %w", i, err)
		}
		e.tags = append(e.tags, tg)
	}
	e.recv, err = rx.New(rx.Config{
		Codes:           set,
		SamplesPerChip:  spc,
		Frame:           scn.Frame,
		DetectThreshold: scn.DetectThreshold,
		SearchChips:     scn.SearchChips,
		NoiseFloorW:     scn.Channel.NoiseFloorW(),
		SIC:             scn.SIC,
		PhaseTracking:   scn.PhaseTracking,
	})
	if err != nil {
		return nil, fmt.Errorf("sim: receiver: %w", err)
	}
	if scn.PowerControl && !scn.OraclePowerControl {
		e.pc, err = mac.NewPowerController(mac.PowerControlConfig{}, scn.NumTags)
		if err != nil {
			return nil, err
		}
	}
	if scn.RandomInitialImpedance {
		states := tag.NumImpedanceStates
		if scn.ImpedanceStates > 0 {
			states = scn.ImpedanceStates
		}
		for _, tg := range e.tags {
			state := tag.ImpedanceState(1 + e.rng.Intn(states))
			if err := tg.SetImpedance(state); err != nil {
				return nil, err
			}
		}
	}
	// Noise lead: several bit durations so the energy detector has a
	// reference and the noise estimator a quiet region.
	e.leadSamples = 6 * set.ChipLength() * spc
	if e.leadSamples < 256 {
		e.leadSamples = 256
	}
	return e, nil
}

// Tags exposes the tag population (the macro experiments adjust positions
// and impedances between rounds).
func (e *Engine) Tags() []*tag.Tag { return e.tags }

// RecordTo captures every subsequent round's realized channel gains and
// clock offsets into rec — the paper's §VIII-C "real trace data … real
// imperfectness" emulation input. Pass nil to stop recording.
func (e *Engine) RecordTo(rec *trace.Recorder) { e.recorder = rec }

// ReplayFrom replays recorded rounds instead of drawing fresh channel and
// timing randomness: each round consumes one trace entry, reproducing the
// exact collisions of the recorded run (payloads and receiver noise are
// still drawn fresh — the trace captures the channel, not the data). Run
// fails with trace.ErrExhausted when the trace is shorter than the
// scenario's packet count. Pass nil to return to live channel draws.
//
// Replay is physical-layer replay: recorded gains already embed the
// impedance states in force during capture, so power-control adjustments
// have no effect while replaying.
func (e *Engine) ReplayFrom(p *trace.Player) { e.player = p }

// Receiver exposes the receiver, mainly for tests.
func (e *Engine) Receiver() *rx.Receiver { return e.recv }

// Scenario returns the engine's scenario after validation and defaulting —
// the authoritative geometry and configuration the rounds actually run
// with. Callers needing the deployment (e.g. node selection) should read it
// from here rather than re-defaulting the original input.
func (e *Engine) Scenario() Scenario { return e.scn }

// roundResult captures one collision round.
type roundResult struct {
	sent         int // frames transmitted (== active tags)
	delivered    int // frames decoded with correct payload and CRC
	falsePos     int // decoded-OK frames whose payload did not match
	samples      int // buffer length, for airtime accounting
	frames       []rx.DecodedFrame
	globalStart  int
	detected     bool
	coarse       int
	sentIDs      []int
	deliveredIDs []int
	detectedIDs  []int
}

// runRound simulates one collision: every tag transmits one frame
// simultaneously; the receiver decodes; tags hear ACKs.
func (e *Engine) runRound(active []*tag.Tag) (roundResult, error) {
	var res roundResult
	if len(active) == 0 {
		return res, ErrBadTagCount
	}
	spc := e.scn.SamplesPerChip()
	chipsPerFrame := 0

	e.round.grow(len(active))
	payloads := e.round.payloads
	waves := e.round.waves
	offsets := e.round.offsets
	delays := e.round.delays
	minDelay := math.Inf(1)
	for i, tg := range active {
		// Per-tag clock offset: fixed extra delay (Fig. 11) plus uniform
		// jitter, in (fractional) samples.
		delayChips := e.scn.JitterChips * (e.rng.Float64() - 0.5)
		if tg.ID() < len(e.scn.ExtraDelayChips) {
			delayChips += e.scn.ExtraDelayChips[tg.ID()]
		}
		delays[i] = delayChips * float64(spc)
		if delays[i] < minDelay {
			minDelay = delays[i]
		}
	}
	// Trace replay substitutes the recorded delays before waveform
	// placement and the recorded gains afterwards.
	var replayRound trace.Round
	if e.player != nil {
		var err error
		replayRound, err = e.player.Next()
		if err != nil {
			return res, fmt.Errorf("sim: replaying round: %w", err)
		}
		minDelay = math.Inf(1)
		for i, tg := range active {
			s, ok := replayRound.Sample(tg.ID())
			if !ok {
				return res, fmt.Errorf("sim: %w: tag %d absent in round %d",
					trace.ErrTagCount, tg.ID(), replayRound.Seq)
			}
			delays[i] = s.DelayChips * float64(spc)
			if delays[i] < minDelay {
				minDelay = delays[i]
			}
		}
	}
	maxEnd := 0
	for i, tg := range active {
		if cap(payloads[i]) < e.scn.PayloadBytes {
			payloads[i] = make([]byte, e.scn.PayloadBytes)
		}
		p := payloads[i][:e.scn.PayloadBytes]
		e.rng.Read(p)
		payloads[i] = p
		w, err := tg.WaveformInto(waves[i], p)
		if err != nil {
			return res, err
		}
		// Re-reference delays to the earliest tag so none is clamped, then
		// split into an integer placement offset and a fractional-sample
		// delay. The fractional part is what starves the decoder at low
		// oversampling (Fig. 9(a)): at one sample per chip a 0.2-chip skew
		// cannot be re-aligned.
		d := delays[i] - minDelay
		off := int(d)
		if frac := d - float64(off); frac > 1e-9 {
			dsp.FractionalDelayInPlace(w, frac)
		}
		waves[i] = w
		offsets[i] = off
		if end := e.leadSamples + off + len(w); end > maxEnd {
			maxEnd = end
		}
		if c := len(w) / spc; c > chipsPerFrame {
			chipsPerFrame = c
		}
	}
	tail := 2 * e.set.ChipLength() * spc
	buf := e.round.mixFor(maxEnd + tail)

	// Optional intermittent (OFDM) excitation gate, shared by all tags:
	// they all reflect the same exciter.
	var gate []float64
	if e.scn.OFDMExcitation {
		gate = channel.ExcitationGate(e.rng, len(buf), e.scn.SampleRateHz, 2e-3, 1e-3)
	}

	var recorded []trace.TagSample
	for i, tg := range active {
		dg, err := tg.DeltaGamma()
		if err != nil {
			return res, err
		}
		var link channel.Link
		if e.player != nil {
			s, _ := replayRound.Sample(tg.ID())
			link = channel.Link{Gain: complex(s.GainRe, s.GainIm)}
		} else if e.scn.StaticChannel {
			if e.staticFading == nil {
				e.staticFading = make([]complex128, len(e.tags))
				for j := range e.staticFading {
					e.staticFading[j] = e.scn.Channel.DrawFading(e.rng)
				}
			}
			link = e.scn.Channel.LinkWithFading(
				e.scn.Deployment.ES, tg.Position(), e.scn.Deployment.RX, dg,
				e.staticFading[tg.ID()])
		} else {
			link = e.scn.Channel.DrawLink(e.scn.Deployment.ES, tg.Position(), e.scn.Deployment.RX, dg, e.rng)
		}
		if e.scn.CFOppm != 0 {
			// Per-frame CFO draw: a uniform offset of ±CFOppm of the
			// carrier, as a per-sample baseband phase ramp.
			dfHz := e.scn.Channel.CarrierHz * e.scn.CFOppm / 1e6 * (2*e.rng.Float64() - 1)
			step := 2 * math.Pi * dfHz / e.scn.SampleRateHz
			rot := complex(math.Cos(step), math.Sin(step))
			phasor := complex(1, 0)
			w := waves[i]
			for k := range w {
				w[k] *= phasor
				phasor *= rot
			}
		}
		if e.recorder != nil {
			recorded = append(recorded, trace.TagSample{
				TagID:      tg.ID(),
				GainRe:     real(link.Gain),
				GainIm:     imag(link.Gain),
				DelayChips: delays[i] / float64(spc),
				Impedance:  int(tg.Impedance()),
			})
		}
		base := e.leadSamples + offsets[i]
		for k, v := range waves[i] {
			s := v * link.Gain
			if gate != nil {
				s *= complex(gate[base+k], 0)
			}
			buf[base+k] += s
		}
		tg.NoteFrameSent()
		res.sentIDs = append(res.sentIDs, tg.ID())
	}

	if e.scn.Multipath != nil {
		buf = e.scn.Multipath.Apply(e.rng, buf, e.scn.SampleRateHz)
	}
	for _, intf := range e.scn.Interferers {
		intf.Apply(e.rng, buf, e.scn.SampleRateHz)
	}
	channel.AWGN(e.rng, buf, e.scn.Channel.NoiseFloorW())
	if e.recorder != nil {
		e.recorder.Record(recorded)
	}

	// The engine is also the reader: it triggered the tags, so it knows
	// the nominal reply start (rx.ReceiveAt's timing reference).
	out, err := e.recv.ReceiveAt(buf, e.leadSamples)
	if err != nil {
		return res, err
	}
	res.sent = len(active)
	res.samples = len(buf)
	res.frames = out.Frames
	for _, f := range out.Frames {
		for _, tg := range active {
			if tg.ID() == f.TagID {
				res.detectedIDs = append(res.detectedIDs, f.TagID)
				break
			}
		}
	}
	res.globalStart = out.GlobalStart
	res.detected = out.FrameDetected
	res.coarse = out.CoarseStart
	for _, f := range out.Frames {
		if !f.OK {
			continue
		}
		idx := -1
		for i, tg := range active {
			if tg.ID() == f.TagID {
				idx = i
				break
			}
		}
		if idx < 0 {
			res.falsePos++
			continue
		}
		if bytes.Equal(f.Payload, payloads[idx]) {
			res.delivered++
			res.deliveredIDs = append(res.deliveredIDs, active[idx].ID())
			// The ACK downlink may itself be lossy (Scenario.AckLossProb);
			// receiver-side delivery metrics are unaffected, only the
			// tag's feedback loop is starved.
			if e.scn.AckLossProb <= 0 || e.rng.Float64() >= e.scn.AckLossProb {
				active[idx].NoteAck()
			}
		} else {
			res.falsePos++
		}
	}
	return res, nil
}

// Run executes the scenario. With power control enabled, the Algorithm 1
// loop first runs as an exploration phase — measurement batches of
// PacketsPerRound frames, impedance adjustments in between, bounded by the
// 3×N-round budget — after which the best configuration seen is restored
// (the hardware analogue: the controller stops cycling once the FER target
// is met, so the system sits in the best state it found). The returned
// metrics then cover Packets steady-state collision rounds.
func (e *Engine) Run() (Metrics, error) {
	if e.scn.PowerControl && e.scn.OraclePowerControl {
		if _, err := mac.EqualizePower(e.scn.Channel, e.scn.Deployment, e.tags); err != nil {
			return Metrics{}, err
		}
	}
	var m Metrics
	m.NumTags = e.scn.NumTags
	m.PerTagSent = make([]int, len(e.tags))
	m.PerTagDelivered = make([]int, len(e.tags))
	if e.pc != nil {
		rounds, converged, err := e.explorePowerControl()
		if err != nil {
			return m, err
		}
		m.PowerControlRounds = rounds
		m.PowerControlConverged = converged
	}
	for p := 0; p < e.scn.Packets; p++ {
		r, err := e.runRound(e.tags)
		if err != nil {
			return m, err
		}
		m.FramesSent += r.sent
		m.FramesDelivered += r.delivered
		m.FalseFrames += r.falsePos
		m.AirtimeSeconds += float64(r.samples) / e.scn.SampleRateHz
		accumulatePerTag(&m, r)
	}
	m.finalize(e.scn)
	return m, nil
}

// explorePowerControl drives Algorithm 1 to convergence or budget
// exhaustion, then restores the impedance configuration with the lowest
// observed batch FER.
func (e *Engine) explorePowerControl() (rounds int, converged bool, err error) {
	snapshot := func() []tag.ImpedanceState {
		out := make([]tag.ImpedanceState, len(e.tags))
		for i, tg := range e.tags {
			out[i] = tg.Impedance()
		}
		return out
	}
	restore := func(states []tag.ImpedanceState) error {
		for i, tg := range e.tags {
			if err := tg.SetImpedance(states[i]); err != nil {
				return err
			}
		}
		return nil
	}
	bestFER := math.Inf(1)
	bestStates := snapshot()
	for {
		batchStates := snapshot()
		for p := 0; p < e.scn.PacketsPerRound; p++ {
			if _, err := e.runRound(e.tags); err != nil {
				return rounds, false, err
			}
		}
		out, err := e.pc.Round(e.tags)
		if err != nil {
			return rounds, false, err
		}
		rounds++
		if out.FER < bestFER {
			bestFER = out.FER
			bestStates = batchStates
		}
		if out.Converged {
			return rounds, true, restore(bestStates)
		}
		if out.Exhausted {
			return rounds, false, restore(bestStates)
		}
	}
}

// RunWithPositions re-homes the tag population to the given positions and
// runs — the macro deployment experiments sweep many random placements.
func (e *Engine) RunWithPositions(positions []geom.Point) (Metrics, error) {
	if len(positions) < len(e.tags) {
		return Metrics{}, ErrNoPositions
	}
	for i, tg := range e.tags {
		tg.MoveTo(positions[i])
		tg.ResetAckWindow()
	}
	return e.Run()
}

// RunSchedule runs one collision round per schedule entry, with only the
// listed tag IDs transmitting in that round — the primitive beneath the
// TDMA baseline (one ID per entry) and the user-detection experiment
// (random subsets). Invalid IDs are rejected.
func (e *Engine) RunSchedule(schedule [][]int) (Metrics, error) {
	var m Metrics
	m.NumTags = e.scn.NumTags
	m.PerTagSent = make([]int, len(e.tags))
	m.PerTagDelivered = make([]int, len(e.tags))
	for _, ids := range schedule {
		active := make([]*tag.Tag, 0, len(ids))
		for _, id := range ids {
			if id < 0 || id >= len(e.tags) {
				return m, fmt.Errorf("sim: schedule references tag %d of %d", id, len(e.tags))
			}
			active = append(active, e.tags[id])
		}
		r, err := e.runRound(active)
		if err != nil {
			return m, err
		}
		m.FramesSent += r.sent
		m.FramesDelivered += r.delivered
		m.FalseFrames += r.falsePos
		m.AirtimeSeconds += float64(r.samples) / e.scn.SampleRateHz
		accumulatePerTag(&m, r)
	}
	m.finalize(e.scn)
	return m, nil
}

// accumulatePerTag folds one round's per-tag counters into the metrics.
func accumulatePerTag(m *Metrics, r roundResult) {
	m.FramesDetected += len(r.detectedIDs)
	for _, id := range r.sentIDs {
		if id >= 0 && id < len(m.PerTagSent) {
			m.PerTagSent[id]++
		}
	}
	for _, id := range r.deliveredIDs {
		if id >= 0 && id < len(m.PerTagDelivered) {
			m.PerTagDelivered[id]++
		}
	}
}
