package sim

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sync"
	"sync/atomic"

	"cbma/internal/fault"
	"cbma/internal/geom"
	"cbma/internal/mac"
	"cbma/internal/pn"
	"cbma/internal/rx"
	"cbma/internal/tag"
	"cbma/internal/trace"
)

// Engine runs collision rounds for one scenario. Construct with NewEngine.
// An Engine's exported methods are single-goroutine; Scenario.Workers
// controls the internal parallelism of the steady-state rounds (see
// DESIGN.md, "Execution model"). Every random draw comes from the named
// per-round streams of rngstream.go, so the metrics of a run depend only on
// (Scenario.Seed, run sequence), never on the worker count.
type Engine struct {
	scn  Scenario
	set  *pn.Set
	tags []*tag.Tag
	recv *rx.Receiver
	pc   *mac.PowerController
	// leadSamples is the noise-only region before the nominal frame start.
	leadSamples int
	// staticFading caches per-tag channel coefficients when the scenario
	// freezes the channel (Scenario.StaticChannel). Drawn once at
	// construction (phaseSetup) so steady-state rounds stay read-only.
	staticFading []complex128
	// inj evaluates the scenario's fault profile; nil when no faults are
	// injected. The injector is stateless per round (all per-round draws
	// come from the round's own streams), so round workers share it.
	inj *fault.Injector
	// recorder and player implement the paper's §VIII-C trace-driven
	// emulation (see RecordTo / ReplayFrom).
	recorder *trace.Recorder
	player   *trace.Player
	// round is the serial path's scratch; parallel workers own clones.
	round roundBuffers
	// runSeq distinguishes repeated Run/RunSchedule calls on one engine in
	// the stream derivation, so every placement of a deployment study sees
	// fresh randomness; adhocRound is the monotonic index of the serially
	// executed (phaseAdhoc) rounds.
	runSeq     uint64
	adhocRound uint64
	// eobs holds the pre-resolved telemetry instruments (no-ops when
	// Scenario.Obs is nil); committed numbers the commit-order round events.
	eobs      engineObs
	committed uint64
}

// NewEngine validates the scenario and builds the tag population and
// receiver.
func NewEngine(scn Scenario) (*Engine, error) {
	if err := scn.validate(); err != nil {
		return nil, err
	}
	set, err := pn.NewSet(scn.Family, scn.NumTags, scn.GoldDegree)
	if err != nil {
		return nil, fmt.Errorf("sim: building code set: %w", err)
	}
	spc := scn.SamplesPerChip()
	e := &Engine{
		scn:  scn,
		set:  set,
		eobs: newEngineObs(scn.Obs),
	}
	// Normalize the fault profile once; a nil or all-zero profile leaves
	// every fault path (injector, rx fallback) disabled so the run is
	// bit-identical to an unfaulted one.
	var fprof fault.Profile
	faultsOn := false
	if scn.Fault != nil {
		fprof = scn.Fault.WithDefaults()
		faultsOn = fprof.Enabled()
	}
	var bank tag.Bank
	if scn.ImpedanceStates > 0 {
		bank, err = tag.UniformBank(scn.ImpedanceStates)
		if err != nil {
			return nil, fmt.Errorf("sim: impedance bank: %w", err)
		}
	}
	for i := 0; i < scn.NumTags; i++ {
		tg, err := tag.New(i, tag.Config{
			Code:           set.Codes[i],
			SamplesPerChip: spc,
			Frame:          scn.Frame,
			Bank:           bank,
		}, scn.Deployment.Tags[i])
		if err != nil {
			return nil, fmt.Errorf("sim: tag %d: %w", i, err)
		}
		e.tags = append(e.tags, tg)
	}
	e.recv, err = rx.New(rx.Config{
		Codes:           set,
		SamplesPerChip:  spc,
		Frame:           scn.Frame,
		DetectThreshold: scn.DetectThreshold,
		SearchChips:     scn.SearchChips,
		NoiseFloorW:     scn.Channel.NoiseFloorW(),
		SIC:             scn.SIC,
		PhaseTracking:   scn.PhaseTracking,
		Obs:             scn.Obs,
		ReferenceSync:   scn.ReferenceSync,
		// Under injected clock faults the energy edge can smear past the
		// sync stage's tolerance; the reader-timed fallback keeps such
		// rounds decodable instead of silently empty.
		ResyncFallback: faultsOn,
	})
	if err != nil {
		return nil, fmt.Errorf("sim: receiver: %w", err)
	}
	if scn.PowerControl && !scn.OraclePowerControl {
		e.pc, err = mac.NewPowerController(e.powerControlConfig(), scn.NumTags)
		if err != nil {
			return nil, err
		}
	}
	// Construction-time draws come from the phaseSetup stream node.
	setup := newRoundStreams(scn.Seed, 0, phaseSetup, 0)
	if scn.RandomInitialImpedance {
		states := tag.NumImpedanceStates
		if scn.ImpedanceStates > 0 {
			states = scn.ImpedanceStates
		}
		rng := setup.rng(StreamSetup)
		for _, tg := range e.tags {
			state := tag.ImpedanceState(1 + rng.Intn(states))
			if err := tg.SetImpedance(state); err != nil {
				return nil, err
			}
		}
	}
	if scn.StaticChannel {
		rng := setup.rng(StreamFading)
		e.staticFading = make([]complex128, len(e.tags))
		for j := range e.staticFading {
			e.staticFading[j] = scn.Channel.DrawFading(rng)
		}
	}
	if faultsOn {
		// Static fault assignments draw from their own setup stream so the
		// legacy StreamSetup/StreamFading sequences are undisturbed and a
		// fault-free profile reproduces the unfaulted run exactly.
		e.inj = fault.NewInjector(fprof, scn.NumTags, setup.rng(StreamFaultTag))
		// Stuck switches freeze AFTER the initial impedance draw: the tag
		// powers up wherever it powers up and stays there.
		for _, tg := range e.tags {
			if e.inj.Stuck(tg.ID()) {
				tg.SetStuck(true)
			}
		}
	}
	// Noise lead: several bit durations so the energy detector has a
	// reference and the noise estimator a quiet region.
	e.leadSamples = 6 * set.ChipLength() * spc
	if e.leadSamples < 256 {
		e.leadSamples = 256
	}
	return e, nil
}

// Tags exposes the tag population (the macro experiments adjust positions
// and impedances between rounds).
func (e *Engine) Tags() []*tag.Tag { return e.tags }

// RecordTo captures every subsequent round's realized channel gains and
// clock offsets into rec — the paper's §VIII-C "real trace data … real
// imperfectness" emulation input. Pass nil to stop recording. Recording
// works under parallel execution too: rounds commit in round order, so the
// trace's Seq numbering matches the serial run's.
func (e *Engine) RecordTo(rec *trace.Recorder) { e.recorder = rec }

// ReplayFrom replays recorded rounds instead of drawing fresh channel and
// timing randomness: each round consumes one trace entry, reproducing the
// exact collisions of the recorded run (payloads and receiver noise are
// still drawn fresh — the trace captures the channel, not the data). Run
// fails with trace.ErrExhausted when the trace is shorter than the
// scenario's packet count. Pass nil to return to live channel draws.
//
// Replay is physical-layer replay: recorded gains already embed the
// impedance states in force during capture, so power-control adjustments
// have no effect while replaying. A player forces serial execution
// regardless of Scenario.Workers — the trace is an ordered stream.
func (e *Engine) ReplayFrom(p *trace.Player) { e.player = p }

// Receiver exposes the receiver, mainly for tests.
func (e *Engine) Receiver() *rx.Receiver { return e.recv }

// Scenario returns the engine's scenario after validation and defaulting —
// the authoritative geometry and configuration the rounds actually run
// with. Callers needing the deployment (e.g. node selection) should read it
// from here rather than re-defaulting the original input.
func (e *Engine) Scenario() Scenario { return e.scn }

// powerControlConfig builds the controller configuration, wiring the fault
// profile's feedback-timeout parameters in when a profile is present (the
// timeout path stays off otherwise — silence then reads as universal frame
// loss, the legacy Algorithm 1 behaviour).
func (e *Engine) powerControlConfig() mac.PowerControlConfig {
	cfg := mac.PowerControlConfig{Obs: e.scn.Obs}
	if e.scn.Fault != nil {
		p := e.scn.Fault.WithDefaults()
		cfg.FeedbackRetries = p.FeedbackRetries
		cfg.FallbackState = tag.ImpedanceState(p.FallbackImpedance)
	}
	return cfg
}

// runRound simulates one collision round on the serial (phaseAdhoc) path:
// every listed tag transmits one frame simultaneously; the receiver
// decodes; tags hear ACKs. The Algorithm 1 exploration batches,
// RunSchedule entries and the user-detection trials run through here — each
// consumes the next adhoc round's stream node. Rounds run through the
// resilient runner: a panicking or transiently failing round comes back
// quarantined, not as an error.
func (e *Engine) runRound(active []*tag.Tag) (roundResult, error) {
	rs := newRoundStreams(e.scn.Seed, e.runSeq, phaseAdhoc, e.adhocRound)
	e.adhocRound++
	res, err := e.resilientRound(active, rs, &e.round, e.recv)
	if err != nil {
		return res, err
	}
	e.commitRound(active, res)
	return res, nil
}

// Run executes the scenario. With power control enabled, the Algorithm 1
// loop first runs as an exploration phase — measurement batches of
// PacketsPerRound frames, impedance adjustments in between, bounded by the
// 3×N-round budget — after which the best configuration seen is restored
// (the hardware analogue: the controller stops cycling once the FER target
// is met, so the system sits in the best state it found). The returned
// metrics then cover Packets steady-state collision rounds, executed on
// Scenario.Workers goroutines; the result is bit-identical for any worker
// count.
func (e *Engine) Run() (Metrics, error) {
	return e.RunContext(context.Background()) //cbma:allow ctxflow public convenience entrypoint roots its own context
}

// RunContext is Run with cooperative cancellation: the engine checks ctx
// between rounds (and between exploration batches) and, when it fires,
// returns the metrics of every round committed so far — finalized, with
// Metrics.Interrupted set — together with the context's error. Partial
// results are deterministic up to the cancellation point: the committed
// rounds are a prefix of the full run's.
func (e *Engine) RunContext(ctx context.Context) (Metrics, error) {
	seq := e.runSeq
	e.runSeq++
	if e.scn.PowerControl && e.scn.OraclePowerControl {
		if _, err := mac.EqualizePower(e.scn.Channel, e.scn.Deployment, e.tags); err != nil {
			return Metrics{}, err
		}
	}
	var m Metrics
	m.NumTags = e.scn.NumTags
	m.PerTagSent = make([]int, len(e.tags))
	m.PerTagDelivered = make([]int, len(e.tags))
	if e.inj != nil {
		m.Faults.StuckTags = e.inj.StuckCount()
	}
	if e.pc != nil {
		st, err := e.explorePowerControl(ctx)
		m.PowerControlRounds = st.rounds
		m.PowerControlConverged = st.converged
		m.PowerControlRetries = st.feedbackRetries
		m.PowerControlFellBack = st.fellBack
		m.Merge(st.resil)
		if err != nil {
			return e.finishRun(ctx, m, err)
		}
	}
	if err := e.runSteadyState(ctx, &m, seq); err != nil {
		return e.finishRun(ctx, m, err)
	}
	m.finalize(e.scn)
	return m, nil
}

// finishRun classifies a run-ending error: cancellation finalizes the
// partial metrics and marks them Interrupted (they are a valid, if
// truncated, measurement); configuration errors return the metrics as-is.
func (e *Engine) finishRun(ctx context.Context, m Metrics, err error) (Metrics, error) {
	if ctx.Err() != nil && errors.Is(err, ctx.Err()) {
		m.Interrupted = true
		m.finalize(e.scn)
	}
	return m, err
}

// workerCount resolves the steady-state worker count: Scenario.Workers,
// forced to 1 while a trace player is attached (replay is ordered).
func (e *Engine) workerCount() int {
	if e.player != nil {
		return 1
	}
	if e.scn.Workers > 1 {
		return e.scn.Workers
	}
	return 1
}

// runSteadyState executes the Packets steady-state collision rounds and
// merges them into m. Steady-state rounds have no feedback dependency on
// each other — the impedance configuration is frozen, tag ACK counters only
// feed Algorithm 1 which has already finished — and each round's randomness
// is a pure function of its index, so rounds may execute on workers in any
// order. Both paths commit and merge strictly in round order, which is what
// makes W=1 and W=N bit-identical.
func (e *Engine) runSteadyState(ctx context.Context, m *Metrics, seq uint64) error {
	packets := e.scn.Packets
	m.RoundsPlanned += packets
	workers := e.workerCount()
	if workers > packets {
		workers = packets
	}
	if workers <= 1 {
		for p := 0; p < packets; p++ {
			if err := ctx.Err(); err != nil {
				return err
			}
			rs := newRoundStreams(e.scn.Seed, seq, phaseSteady, uint64(p))
			res, err := e.resilientRound(e.tags, rs, &e.round, e.recv)
			if err != nil {
				return err
			}
			e.commitRound(e.tags, res)
			m.Merge(res.metrics(len(e.tags)))
		}
		return nil
	}
	return e.runSteadyParallel(ctx, m, seq, packets, workers)
}

// runSteadyParallel fans the steady-state rounds out to workers goroutines,
// each owning a cloned receiver and private scratch. Rounds are claimed off
// an atomic counter, executed out of order, then committed and merged in
// round order by the coordinator. Errors do not short-circuit — a failing
// round is a configuration bug, not a steady-state event — so every round's
// slot is filled and the first error by round index is the one reported,
// same as the serial loop. Cancellation stops workers from taking new
// claims; the coordinator then commits only the contiguous prefix of
// completed rounds, so an interrupted run's metrics are a prefix of the
// full run's (rounds finished beyond the first gap are discarded).
func (e *Engine) runSteadyParallel(ctx context.Context, m *Metrics, seq uint64, packets, workers int) error {
	results := make([]roundResult, packets)
	errs := make([]error, packets)
	done := make([]bool, packets)
	var next atomic.Int64
	next.Store(-1)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			recv := e.recv.Clone()
			var rb roundBuffers
			for {
				p := int(next.Add(1))
				if p >= packets {
					return
				}
				if ctx.Err() != nil {
					return
				}
				rs := newRoundStreams(e.scn.Seed, seq, phaseSteady, uint64(p))
				results[p], errs[p] = e.resilientRound(e.tags, rs, &rb, recv)
				done[p] = true
			}
		}()
	}
	wg.Wait()
	for p := 0; p < packets; p++ {
		if !done[p] {
			break
		}
		if errs[p] != nil {
			return errs[p]
		}
		e.commitRound(e.tags, results[p])
		m.Merge(results[p].metrics(len(e.tags)))
	}
	if err := ctx.Err(); err != nil {
		return err
	}
	return nil
}

// pcStats summarizes the exploration phase for RunContext.
type pcStats struct {
	rounds          int
	converged       bool
	feedbackRetries int
	fellBack        bool
	// resil carries the exploration rounds' degradation accounting (their
	// frame counters stay out of the run metrics — exploration is warm-up).
	resil Metrics
}

// explorePowerControl drives Algorithm 1 to convergence or budget
// exhaustion, then restores the impedance configuration with the lowest
// observed batch FER. The loop is inherently serial: each batch's outcome
// feeds the next impedance adjustment.
//
// Feedback-timeout handling (only armed when the fault profile sets
// FeedbackRetries): a batch with zero ACKs across the population makes the
// controller request a re-measurement instead of adjusting; the requested
// backoff scales the next batch (more airtime for a recovering downlink) —
// a logical backoff in measurement rounds, never a wall-clock sleep.
// Blackout FER readings are garbage (they measure the downlink), so they
// are excluded from best-configuration tracking, and the final restore
// keeps the controller's conservative fallback parking whenever no valid
// measurement was ever observed.
func (e *Engine) explorePowerControl(ctx context.Context) (pcStats, error) {
	var st pcStats
	snapshot := func() []tag.ImpedanceState {
		out := make([]tag.ImpedanceState, len(e.tags))
		for i, tg := range e.tags {
			out[i] = tg.Impedance()
		}
		return out
	}
	restore := func(states []tag.ImpedanceState) error {
		for i, tg := range e.tags {
			if err := tg.SetImpedance(states[i]); err != nil {
				return err
			}
		}
		return nil
	}
	bestFER := math.Inf(1)
	bestStates := snapshot()
	restoreBest := func() error {
		if math.IsInf(bestFER, 1) {
			return nil
		}
		return restore(bestStates)
	}
	batchScale := 1
	for {
		if err := ctx.Err(); err != nil {
			return st, err
		}
		batchStates := snapshot()
		batch := e.scn.PacketsPerRound * batchScale
		st.resil.RoundsPlanned += batch
		for p := 0; p < batch; p++ {
			res, err := e.runRound(e.tags)
			if err != nil {
				return st, err
			}
			st.resil.Merge(res.resilience())
		}
		before := e.pc.RoundsUsed()
		out, err := e.pc.Round(e.tags)
		if err != nil {
			return st, err
		}
		// st.rounds preserves the legacy meaning — budget-charged controller
		// rounds plus the final convergence check — while excluding the
		// uncharged blackout re-measurements.
		if e.pc.RoundsUsed() > before || !out.FeedbackLost {
			st.rounds++
		}
		batchScale = 1
		if out.FeedbackLost {
			if out.RetryBackoff > 0 {
				st.feedbackRetries++
				batchScale = 1 + out.RetryBackoff
			}
			if out.FellBack {
				st.fellBack = true
			}
			if out.Exhausted {
				return st, restoreBest()
			}
			continue
		}
		if out.FER < bestFER {
			bestFER = out.FER
			bestStates = batchStates
		}
		if out.Converged {
			st.converged = true
			return st, restoreBest()
		}
		if out.Exhausted {
			return st, restoreBest()
		}
	}
}

// RunWithPositions re-homes the tag population to the given positions and
// runs — the macro deployment experiments sweep many random placements.
// Tag ACK windows and the Algorithm 1 controller are both reset, so every
// placement starts exploration with a full round budget; previously the
// controller carried the spent budget (and adjustment history) of earlier
// placements into later ones.
func (e *Engine) RunWithPositions(positions []geom.Point) (Metrics, error) {
	return e.RunWithPositionsContext(context.Background(), positions) //cbma:allow ctxflow public convenience entrypoint roots its own context
}

// RunWithPositionsContext is RunWithPositions with cooperative cancellation
// (see RunContext for the partial-result contract).
func (e *Engine) RunWithPositionsContext(ctx context.Context, positions []geom.Point) (Metrics, error) {
	if len(positions) < len(e.tags) {
		return Metrics{}, ErrNoPositions
	}
	for i, tg := range e.tags {
		tg.MoveTo(positions[i])
		tg.ResetAckWindow()
	}
	if e.scn.PowerControl && !e.scn.OraclePowerControl {
		pc, err := mac.NewPowerController(e.powerControlConfig(), e.scn.NumTags)
		if err != nil {
			return Metrics{}, err
		}
		e.pc = pc
	}
	return e.RunContext(ctx)
}

// RunSchedule runs one collision round per schedule entry, with only the
// listed tag IDs transmitting in that round — the primitive beneath the
// TDMA baseline (one ID per entry) and the user-detection experiment
// (random subsets). Invalid IDs are rejected. Entries run serially
// (phaseAdhoc): the active set changes per round.
func (e *Engine) RunSchedule(schedule [][]int) (Metrics, error) {
	var m Metrics
	m.NumTags = e.scn.NumTags
	m.PerTagSent = make([]int, len(e.tags))
	m.PerTagDelivered = make([]int, len(e.tags))
	m.RoundsPlanned = len(schedule)
	for _, ids := range schedule {
		active := make([]*tag.Tag, 0, len(ids))
		for _, id := range ids {
			if id < 0 || id >= len(e.tags) {
				return m, fmt.Errorf("sim: schedule references tag %d of %d", id, len(e.tags))
			}
			active = append(active, e.tags[id])
		}
		r, err := e.runRound(active)
		if err != nil {
			return m, err
		}
		m.Merge(r.metrics(len(e.tags)))
	}
	m.finalize(e.scn)
	return m, nil
}
