package sim

import (
	"bytes"
	"errors"
	"testing"

	"cbma/internal/trace"
)

func TestTraceRecordReplayReproducesRun(t *testing.T) {
	scn := fastScenario()
	scn.NumTags = 3
	scn.Packets = packets(t, 30)

	// Live run, recorded.
	live, err := NewEngine(scn)
	if err != nil {
		t.Fatal(err)
	}
	rec := trace.NewRecorder("test capture")
	live.RecordTo(rec)
	mLive, err := live.Run()
	if err != nil {
		t.Fatal(err)
	}
	if rec.Len() != scn.Packets {
		t.Fatalf("recorded %d rounds, want %d", rec.Len(), scn.Packets)
	}

	// Serialize and reload, as a field capture would be.
	var buf bytes.Buffer
	if err := rec.Trace().Write(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := trace.Read(&buf)
	if err != nil {
		t.Fatal(err)
	}

	// Replay into a fresh engine with the same receiver: the realized
	// channel is identical, so delivery statistics must match the live run
	// exactly (payloads differ, but success depends only on the channel).
	replayEngine, err := NewEngine(scn)
	if err != nil {
		t.Fatal(err)
	}
	replayEngine.ReplayFrom(trace.NewPlayer(loaded))
	mReplay, err := replayEngine.Run()
	if err != nil {
		t.Fatal(err)
	}
	// The trace pins the channel and timing; payloads and receiver noise
	// are redrawn, so outcomes match statistically, not bit-exactly.
	diff := mLive.FramesDelivered - mReplay.FramesDelivered
	if diff < 0 {
		diff = -diff
	}
	if diff > 2 {
		t.Errorf("replay delivered %d, live delivered %d — same channel should give near-identical delivery",
			mReplay.FramesDelivered, mLive.FramesDelivered)
	}
}

func TestTraceReplayAcrossReceiverVariants(t *testing.T) {
	// The point of trace-driven emulation: decode the SAME collisions with
	// a different receiver. The SIC variant must do at least as well on
	// the recorded near-far rounds.
	scn := fastScenario()
	scn.NumTags = 5
	scn.Packets = packets(t, 30)
	scn.TagLineDistance = 2.5

	live, err := NewEngine(scn)
	if err != nil {
		t.Fatal(err)
	}
	rec := trace.NewRecorder("variant comparison")
	live.RecordTo(rec)
	mPlain, err := live.Run()
	if err != nil {
		t.Fatal(err)
	}

	sicScn := scn
	sicScn.SIC = true
	sicEngine, err := NewEngine(sicScn)
	if err != nil {
		t.Fatal(err)
	}
	sicEngine.ReplayFrom(trace.NewPlayer(rec.Trace()))
	mSIC, err := sicEngine.Run()
	if err != nil {
		t.Fatal(err)
	}
	if mSIC.FramesDelivered < mPlain.FramesDelivered {
		t.Errorf("SIC on identical collisions delivered %d < plain %d",
			mSIC.FramesDelivered, mPlain.FramesDelivered)
	}
}

func TestTraceReplayExhaustion(t *testing.T) {
	scn := fastScenario()
	scn.Packets = 5
	live, err := NewEngine(scn)
	if err != nil {
		t.Fatal(err)
	}
	rec := trace.NewRecorder("")
	live.RecordTo(rec)
	if _, err := live.Run(); err != nil {
		t.Fatal(err)
	}

	long := scn
	long.Packets = 10 // more than recorded
	replayEngine, err := NewEngine(long)
	if err != nil {
		t.Fatal(err)
	}
	replayEngine.ReplayFrom(trace.NewPlayer(rec.Trace()))
	if _, err := replayEngine.Run(); !errors.Is(err, trace.ErrExhausted) {
		t.Fatalf("got %v, want ErrExhausted", err)
	}
}

func TestTraceReplayTagMismatch(t *testing.T) {
	scn := fastScenario()
	scn.Packets = 3
	live, err := NewEngine(scn) // 2 tags recorded
	if err != nil {
		t.Fatal(err)
	}
	rec := trace.NewRecorder("")
	live.RecordTo(rec)
	if _, err := live.Run(); err != nil {
		t.Fatal(err)
	}

	bigger := scn
	bigger.NumTags = 3
	bigger.Deployment.Tags = nil
	replayEngine, err := NewEngine(bigger)
	if err != nil {
		t.Fatal(err)
	}
	replayEngine.ReplayFrom(trace.NewPlayer(rec.Trace()))
	if _, err := replayEngine.Run(); !errors.Is(err, trace.ErrTagCount) {
		t.Fatalf("got %v, want ErrTagCount", err)
	}
}
