package sim

import (
	"testing"

	"cbma/internal/channel"
	"cbma/internal/fault"
	"cbma/internal/obs"
	"cbma/internal/pn"
)

// Golden digests for the canonical scenario serialization. These pin the
// hash across refactors: any change to hashDoc's shape, field names, the
// normalization rules or the schema constant shows up here first, and a
// deliberate change must bump scenarioHashSchema (old cache entries and
// manifests then stop matching instead of colliding). The values are the
// cache keys of every store built on Scenario.Hash, so a silent drift
// would invalidate (or worse, alias) production caches.
func TestScenarioHashGolden(t *testing.T) {
	variant := DefaultScenario()
	variant.NumTags = 4
	variant.Family = pn.Family2NC
	variant.TagLineDistance = 2.5
	variant.PowerControl = true
	variant.RandomInitialImpedance = true

	faulted := DefaultScenario()
	faulted.Fault = &fault.Profile{AckLossProb: 0.2, PanicProb: 0.05, MaxRoundRetries: 2}

	cases := []struct {
		name string
		scn  Scenario
		want string
	}{
		{"default", DefaultScenario(), "a8ecc22eeadef9ef5eb1ad3efb724301b0094f7e3df444ff442c0de81fefc8a3"},
		{"variant", variant, "b76a8a86624593993f09c7e8de8e3c94dce331298ab9adce211a02dbd7e96e72"},
		{"faulted", faulted, "a65d006a77c153921a97f117b8fc9d48d3ab894f2ada87922221a7c9cd191613"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got, err := tc.scn.Hash()
			if err != nil {
				t.Fatal(err)
			}
			if got != tc.want {
				t.Errorf("hash = %s, want %s (a deliberate serialization change must bump scenarioHashSchema and these goldens)", got, tc.want)
			}
		})
	}
}

// The hash must ignore the documented result-neutral knobs and the
// normalization-only differences: two scenarios that run identically must
// share a cache slot.
func TestScenarioHashNeutralFields(t *testing.T) {
	base := DefaultScenario()
	want, err := base.Hash()
	if err != nil {
		t.Fatal(err)
	}

	neutral := map[string]func(*Scenario){
		"workers":           func(s *Scenario) { s.Workers = 7 },
		"obs":               func(s *Scenario) { s.Obs = obs.New(obs.Config{}) },
		"defaulted payload": func(s *Scenario) { s.PayloadBytes = 0 }, // validate restores 16
		"defaulted rates":   func(s *Scenario) { s.ChipRateHz, s.SampleRateHz = 0, 0 },
	}
	for name, mod := range neutral {
		scn := base
		mod(&scn)
		got, err := scn.Hash()
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Errorf("%s: hash changed (%s != %s), want result-neutral", name, got, want)
		}
	}
}

// Every result-relevant change must move the digest — including changes
// that plain JSON of the Scenario would conflate, like two interferer
// types with identical fields (interface encoding drops the type name).
func TestScenarioHashSensitivity(t *testing.T) {
	base := DefaultScenario()
	baseHash, err := base.Hash()
	if err != nil {
		t.Fatal(err)
	}

	mods := map[string]func(*Scenario){
		"seed":     func(s *Scenario) { s.Seed = 2 },
		"tags":     func(s *Scenario) { s.NumTags = 3 },
		"family":   func(s *Scenario) { s.Family = pn.FamilyWalsh },
		"packets":  func(s *Scenario) { s.Packets = 101 },
		"distance": func(s *Scenario) { s.TagLineDistance = 2 },
		"sic":      func(s *Scenario) { s.SIC = true },
		"refsync":  func(s *Scenario) { s.ReferenceSync = true },
		"fault":    func(s *Scenario) { s.Fault = &fault.Profile{EnergyOutageProb: 0.1} },
		"wifi": func(s *Scenario) {
			s.Interferers = []channel.Interferer{&channel.WiFiInterferer{PowerDBm: -50}}
		},
		"bluetooth": func(s *Scenario) {
			s.Interferers = []channel.Interferer{&channel.BluetoothInterferer{PowerDBm: -50}}
		},
		"extra-delay": func(s *Scenario) { s.ExtraDelayChips = []float64{0, 1} },
		"multipath":   func(s *Scenario) { mp := channel.DefaultMultipath(); s.Multipath = &mp },
	}
	seen := map[string]string{baseHash: "base"}
	for name, mod := range mods {
		scn := base
		mod(&scn)
		h, err := scn.Hash()
		if err != nil {
			t.Fatal(err)
		}
		if prev, dup := seen[h]; dup {
			t.Errorf("%s: hash collides with %q", name, prev)
		}
		seen[h] = name
	}
}

// An unrunnable scenario must refuse to hash rather than produce a key a
// store could be polluted under.
func TestScenarioHashInvalid(t *testing.T) {
	scn := DefaultScenario()
	scn.NumTags = 0
	if _, err := scn.Hash(); err == nil {
		t.Fatal("Hash() of an invalid scenario succeeded, want error")
	}
}
