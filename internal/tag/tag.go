package tag

import (
	"errors"
	"fmt"

	"cbma/internal/frame"
	"cbma/internal/geom"
	"cbma/internal/pn"
)

// Errors returned by the tag pipeline.
var (
	ErrBadSamplesPerChip = errors.New("tag: samples per chip must be >= 1")
	ErrNilCode           = errors.New("tag: spreading code is required")
)

// Config holds the static configuration of a tag.
type Config struct {
	// Code is the tag's PN spreading code.
	Code pn.Code
	// SamplesPerChip is the receiver-rate oversampling of each chip.
	SamplesPerChip int
	// Frame configures link-layer framing (preamble length etc.).
	Frame frame.Config
	// Bank is the antenna impedance bank; zero value selects DefaultBank.
	Bank Bank
}

// withDefaults validates cfg and fills defaults.
func (c Config) withDefaults() (Config, error) {
	if err := c.Code.Validate(); err != nil {
		return c, fmt.Errorf("%w: %v", ErrNilCode, err)
	}
	if c.SamplesPerChip == 0 {
		c.SamplesPerChip = 4
	}
	if c.SamplesPerChip < 1 {
		return c, ErrBadSamplesPerChip
	}
	if len(c.Bank.Loads) == 0 {
		c.Bank = DefaultBank()
	}
	return c, nil
}

// Tag is one backscatter node. It is not safe for concurrent use; the
// simulation engine owns each tag on a single goroutine.
type Tag struct {
	id  int
	cfg Config
	pos geom.Point
	z   ImpedanceState
	// stuck marks a failed SPDT switch (fault injection): the tag stays in
	// its current state and silently ignores impedance commands, which is
	// exactly what the hardware does — the controller cannot observe the
	// failure except through the feedback loop.
	stuck bool
	// Counters for the MAC layer's ACK bookkeeping.
	framesSent int
	acksHeard  int
}

// New constructs a tag with the given identifier, configuration and
// position. Tags power up in the strongest impedance state, matching the
// prototype's default of maximum reflection.
func New(id int, cfg Config, pos geom.Point) (*Tag, error) {
	c, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	return &Tag{id: id, cfg: c, pos: pos, z: ImpedanceState(c.Bank.States())}, nil
}

// ID returns the tag identifier (also its code index).
func (t *Tag) ID() int { return t.id }

// Position returns the tag's location.
func (t *Tag) Position() geom.Point { return t.pos }

// MoveTo relocates the tag — used by the node-selection scheme when a "bad"
// tag must be re-placed (§V-C).
func (t *Tag) MoveTo(p geom.Point) { t.pos = p }

// Code returns the tag's spreading code.
func (t *Tag) Code() pn.Code { return t.cfg.Code }

// Impedance returns the current impedance state.
func (t *Tag) Impedance() ImpedanceState { return t.z }

// SetImpedance selects an impedance state. A stuck switch (SetStuck)
// silently ignores the command — the caller has no way to sense the failed
// actuator, matching the hardware.
func (t *Tag) SetImpedance(z ImpedanceState) error {
	if z < 1 || int(z) > t.cfg.Bank.States() {
		return fmt.Errorf("%w: %d", ErrBadImpedance, z)
	}
	if t.stuck {
		return nil
	}
	t.z = z
	return nil
}

// StepImpedance advances the impedance state cyclically — lines 18–22 of
// the paper's Algorithm 1: "if Z == Z_max { Z ← 1 } else { Z ← Z + 1 }".
// A stuck switch does not move.
func (t *Tag) StepImpedance() {
	if t.stuck {
		return
	}
	if int(t.z) >= t.cfg.Bank.States() {
		t.z = 1
		return
	}
	t.z++
}

// SetStuck freezes (or releases) the impedance switch in its current state —
// the fault layer's stuck-SPDT model.
func (t *Tag) SetStuck(stuck bool) { t.stuck = stuck }

// Stuck reports whether the impedance switch is stuck.
func (t *Tag) Stuck() bool { return t.stuck }

// ImpedanceStates returns the size of the tag's impedance bank (state
// indices run 1..ImpedanceStates, strongest last).
func (t *Tag) ImpedanceStates() int { return t.cfg.Bank.States() }

// DeltaGamma returns the tag's current backscatter coefficient |ΔΓ|.
func (t *Tag) DeltaGamma() (float64, error) {
	return t.cfg.Bank.DeltaGamma(t.z)
}

// EncodeFrame runs the §III-A transmit pipeline up to the chip level:
// framing (preamble, length, payload, CRC) followed by PN spreading, where
// each data bit of one emits the code's One chips and each zero bit the
// Zero chips.
func (t *Tag) EncodeFrame(payload []byte) ([]byte, error) {
	bits, err := frame.Marshal(payload, t.cfg.Frame)
	if err != nil {
		return nil, fmt.Errorf("tag %d: %w", t.id, err)
	}
	return SpreadBits(bits, t.cfg.Code), nil
}

// Waveform produces the tag's baseband OOK envelope for one frame at the
// receiver sampling rate: the chip stream of EncodeFrame upsampled by
// SamplesPerChip, as unit-amplitude samples. The channel layer scales it by
// the realized link gain (which includes |ΔΓ| via Eq. 1); the square-wave
// subcarrier itself needs no explicit samples at this abstraction because
// the receiver is tuned to the shifted frequency f_c − Δf, where the
// reflected first harmonic appears as this envelope (see squarewave.go for
// the harmonic analysis justifying the approximation).
func (t *Tag) Waveform(payload []byte) ([]complex128, error) {
	return t.WaveformInto(nil, payload)
}

// WaveformInto is Waveform writing into dst (grown as needed) so the
// simulation loop can reuse one sample buffer per tag slot across rounds;
// it returns the filled slice.
//
//cbma:hotpath
func (t *Tag) WaveformInto(dst []complex128, payload []byte) ([]complex128, error) {
	chips, err := t.EncodeFrame(payload)
	if err != nil {
		return nil, err
	}
	spc := t.cfg.SamplesPerChip
	n := len(chips) * spc
	if cap(dst) < n {
		dst = make([]complex128, n)
	}
	dst = dst[:n]
	for i, c := range chips {
		v := complex(float64(c), 0)
		base := i * spc
		for k := 0; k < spc; k++ {
			dst[base+k] = v
		}
	}
	return dst, nil
}

// FrameChips returns the number of chips in a frame carrying p payload
// bytes.
func (t *Tag) FrameChips(p int) (int, error) {
	bits, err := t.cfg.Frame.BitLength(p)
	if err != nil {
		return 0, err
	}
	return bits * t.cfg.Code.Length(), nil
}

// NoteFrameSent and NoteAck feed the MAC layer's ACK-ratio statistics
// (Algorithm 1 lines 5–13).
func (t *Tag) NoteFrameSent() { t.framesSent++ }

// NoteAck records a received acknowledgement for this tag.
func (t *Tag) NoteAck() { t.acksHeard++ }

// AckRatio returns acksHeard/framesSent for the current measurement window,
// or zero before any frame was sent.
func (t *Tag) AckRatio() float64 {
	if t.framesSent == 0 {
		return 0
	}
	return float64(t.acksHeard) / float64(t.framesSent)
}

// AckWindow exposes the raw counters of the current measurement window —
// the controller's feedback-blackout detection needs the absolute counts,
// not just the ratio (zero ACKs over 100 frames and zero frames sent are
// very different situations).
func (t *Tag) AckWindow() (sent, acked int) { return t.framesSent, t.acksHeard }

// ResetAckWindow clears the ACK statistics for the next measurement round.
func (t *Tag) ResetAckWindow() { t.framesSent, t.acksHeard = 0, 0 }

// SpreadBits expands frame bits into the on-air chip stream using code:
// bit 1 → code.One, bit 0 → code.Zero. It is a thin alias over
// pn.Code.Spread kept for readability at the tag's call sites.
func SpreadBits(bits []byte, code pn.Code) []byte {
	return code.Spread(bits)
}
