// Package tag models the CBMA backscatter tag: the four-state antenna
// impedance bank behind the paper's power-control scheme (§V-B, §VI), the
// square-wave subcarrier modulator (Eq. 2–3), and the framing → PN encoding
// → OOK pipeline of §III-A. A tag has no RF front end and no ADC; everything
// it does reduces to choosing when, and through which load, to reflect the
// excitation signal.
package tag

import (
	"errors"
	"fmt"
	"math"
	"math/cmplx"
)

// ImpedanceState selects one of the tag's reflection loads. States start at
// one; the zero value is invalid so an unset state is caught early.
type ImpedanceState int

// NumImpedanceStates is the size of the hardware bank: the paper's PCB
// routes the SPDT switch among four components (§VI).
const NumImpedanceStates = 4

// ErrBadImpedance is returned for out-of-range impedance states.
var ErrBadImpedance = errors.New("tag: impedance state out of range")

// Bank is the antenna load bank. The paper's components are a 3 pF
// capacitor, a 1 pF capacitor, an open circuit and a 2 nH inductor
// (HMC190B SPDT, §VI). A purely reactive load always reflects with |Γ| = 1,
// which would make every state equally strong; what differentiates the
// states in practice is the loss in each branch — component ESR plus switch
// on-resistance — so the bank models each load as reactance + series
// resistance. The default resistances are chosen to give a monotone
// |ΔΓ| ladder spanning ≈5 dB of backscatter power, which is what the
// power-control loop climbs. DESIGN.md records this as the hardware
// substitution for the PCB measurements.
type Bank struct {
	// AntennaOhms is the antenna impedance the loads terminate (50 Ω).
	AntennaOhms complex128
	// Loads holds the reflection-state load impedances, ordered from the
	// weakest backscatter state (index 0 = state 1) to the strongest.
	Loads []complex128
}

// DefaultBank returns the four-state bank at the paper's 2 GHz carrier.
func DefaultBank() Bank {
	const (
		freq = 2e9
		w    = 2 * math.Pi * freq
	)
	capZ := func(farads, esr float64) complex128 {
		return complex(esr, -1/(w*farads))
	}
	indZ := func(henries, esr float64) complex128 {
		return complex(esr, w*henries)
	}
	return Bank{
		AntennaOhms: 50,
		Loads: []complex128{
			capZ(1e-12, 94),         // state 1: 1 pF, lossiest branch → |ΔΓ| ≈ 0.55
			capZ(3e-12, 13.8),       // state 2: 3 pF → ≈ 0.65
			indZ(2e-9, 9),           // state 3: 2 nH → ≈ 0.75
			complex(math.Inf(1), 0), // state 4: open → |Γ| = 1, strongest
		},
	}
}

// Gamma returns the reflection coefficient Γ = (Z_L − Z_a*) / (Z_L + Z_a)
// of the load selected by state.
func (b Bank) Gamma(state ImpedanceState) (complex128, error) {
	if state < 1 || int(state) > len(b.Loads) {
		return 0, fmt.Errorf("%w: %d (bank has %d)", ErrBadImpedance, state, len(b.Loads))
	}
	zl := b.Loads[state-1]
	if cmplx.IsInf(zl) {
		return 1, nil // open circuit reflects everything
	}
	za := b.AntennaOhms
	return (zl - cmplx.Conj(za)) / (zl + za), nil
}

// DeltaGamma returns |ΔΓ| for the OOK toggle between the selected reflect
// state and the matched absorb state (Γ = 0), i.e. |Γ_state − 0|. This is
// the backscatter coefficient that enters Eq. 1's |ΔΓ|²/4 term.
func (b Bank) DeltaGamma(state ImpedanceState) (float64, error) {
	g, err := b.Gamma(state)
	if err != nil {
		return 0, err
	}
	return cmplx.Abs(g), nil
}

// States returns the number of selectable impedance states.
func (b Bank) States() int { return len(b.Loads) }

// Ladder returns |ΔΓ| for every state in order — the power-control
// staircase. It is primarily a diagnostic/reporting helper.
func (b Bank) Ladder() ([]float64, error) {
	out := make([]float64, len(b.Loads))
	for i := range b.Loads {
		dg, err := b.DeltaGamma(ImpedanceState(i + 1))
		if err != nil {
			return nil, err
		}
		out[i] = dg
	}
	return out, nil
}

// UniformBank builds a synthetic bank with n states whose |ΔΓ| values are
// evenly spaced in (0, 1] — used by the impedance-granularity ablation
// (DESIGN.md ablation 2) to compare 2-, 4- and 8-state hardware.
func UniformBank(n int) (Bank, error) {
	if n < 1 {
		return Bank{}, fmt.Errorf("%w: need at least one state", ErrBadImpedance)
	}
	loads := make([]complex128, n)
	for i := range loads {
		target := float64(i+1) / float64(n) // |Γ| for state i+1
		// Solve a purely resistive load for the target |Γ|:
		// Γ = (R−50)/(R+50) → R = 50(1−|Γ|)/(1+|Γ|) (reflective branch).
		r := 50 * (1 - target) / (1 + target)
		loads[i] = complex(r, 0)
	}
	// A resistive load below 50 Ω gives Γ negative-real with |Γ| = target.
	return Bank{AntennaOhms: 50, Loads: loads}, nil
}
