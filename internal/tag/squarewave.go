package tag

import "math"

// SquareWave evaluates the ±1 square wave of frequency f (Hz) at time t
// (seconds), the signal the FPGA drives into the SPDT switch to shift the
// backscatter by Δf (§VI).
func SquareWave(f, t float64) float64 {
	if math.Sin(2*math.Pi*f*t) >= 0 {
		return 1
	}
	return -1
}

// SquareWaveFourier evaluates the paper's Eq. 2 truncation of the square
// wave: (4/π) Σ_{n odd ≤ maxHarmonic} (1/n)·sin(2πnft).
func SquareWaveFourier(f, t float64, maxHarmonic int) float64 {
	var acc float64
	for n := 1; n <= maxHarmonic; n += 2 {
		acc += math.Sin(2*math.Pi*float64(n)*f*t) / float64(n)
	}
	return 4 / math.Pi * acc
}

// HarmonicPowerDB returns the power of the n-th square-wave harmonic
// relative to the fundamental, in dB. The paper's §VI notes the third and
// fifth harmonics sit ≈9.5 dB and ≈14 dB below the first — the reason a
// square-wave-driven switch is an acceptable substitute for a sine mixer.
func HarmonicPowerDB(n int) float64 {
	if n < 1 || n%2 == 0 {
		return math.Inf(-1) // even harmonics are absent
	}
	return -20 * math.Log10(float64(n))
}

// FundamentalAmplitude is the amplitude of the square wave's first harmonic
// (4/π), the factor by which the effective backscatter tone is stronger
// than a unit sine — folded into the link-budget α in the simulator.
const FundamentalAmplitude = 4 / math.Pi
