package tag

import (
	"errors"
	"math"
	"testing"

	"cbma/internal/dsp"
	"cbma/internal/frame"
	"cbma/internal/geom"
	"cbma/internal/pn"
)

func testCode(t *testing.T) pn.Code {
	t.Helper()
	s, err := pn.NewGoldSet(5, 2)
	if err != nil {
		t.Fatal(err)
	}
	return s.Codes[0]
}

func newTestTag(t *testing.T) *Tag {
	t.Helper()
	tg, err := New(0, Config{Code: testCode(t), SamplesPerChip: 2}, geom.Point{Y: 1})
	if err != nil {
		t.Fatal(err)
	}
	return tg
}

func TestDefaultBankLadderMonotone(t *testing.T) {
	b := DefaultBank()
	if b.States() != NumImpedanceStates {
		t.Fatalf("states = %d, want %d", b.States(), NumImpedanceStates)
	}
	ladder, err := b.Ladder()
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(ladder); i++ {
		if ladder[i] <= ladder[i-1] {
			t.Errorf("ladder not strictly increasing at %d: %v", i, ladder)
		}
	}
	// Strongest state is the open circuit with |Γ| = 1.
	if math.Abs(ladder[len(ladder)-1]-1) > 1e-12 {
		t.Errorf("open state |ΔΓ| = %v, want 1", ladder[len(ladder)-1])
	}
	// The ladder must span a useful power-control range (≥ 4 dB), enough to
	// correct the >50% power differences of Table II.
	span := dsp.DB(ladder[len(ladder)-1] * ladder[len(ladder)-1] /
		(ladder[0] * ladder[0]))
	if span < 4 {
		t.Errorf("power-control span %.1f dB, want ≥ 4 dB (ladder %v)", span, ladder)
	}
}

func TestBankGammaBounds(t *testing.T) {
	b := DefaultBank()
	for s := 1; s <= b.States(); s++ {
		g, err := b.Gamma(ImpedanceState(s))
		if err != nil {
			t.Fatal(err)
		}
		if mag := real(g)*real(g) + imag(g)*imag(g); mag > 1+1e-12 {
			t.Errorf("state %d: |Γ|² = %v > 1 (passive load cannot amplify)", s, mag)
		}
	}
}

func TestBankGammaOutOfRange(t *testing.T) {
	b := DefaultBank()
	for _, s := range []ImpedanceState{0, -1, 5} {
		if _, err := b.Gamma(s); !errors.Is(err, ErrBadImpedance) {
			t.Errorf("state %d: got %v, want ErrBadImpedance", s, err)
		}
	}
}

func TestUniformBankSpacing(t *testing.T) {
	b, err := UniformBank(8)
	if err != nil {
		t.Fatal(err)
	}
	ladder, err := b.Ladder()
	if err != nil {
		t.Fatal(err)
	}
	for i, dg := range ladder {
		want := float64(i+1) / 8
		if math.Abs(dg-want) > 1e-9 {
			t.Errorf("state %d |ΔΓ| = %v, want %v", i+1, dg, want)
		}
	}
	if _, err := UniformBank(0); err == nil {
		t.Error("zero states must fail")
	}
}

func TestSquareWaveHarmonics(t *testing.T) {
	// Paper §VI: third harmonic ≈9.5 dB and fifth ≈14 dB below fundamental.
	if got := HarmonicPowerDB(3); math.Abs(got-(-9.54)) > 0.05 {
		t.Errorf("3rd harmonic %v dB, want ≈ -9.54", got)
	}
	if got := HarmonicPowerDB(5); math.Abs(got-(-13.98)) > 0.05 {
		t.Errorf("5th harmonic %v dB, want ≈ -13.98", got)
	}
	if !math.IsInf(HarmonicPowerDB(2), -1) || !math.IsInf(HarmonicPowerDB(0), -1) {
		t.Error("even/zero harmonics must be -Inf")
	}
}

func TestSquareWaveFourierConverges(t *testing.T) {
	// With many harmonics the Fourier series approaches ±1 away from edges.
	const f = 1.0
	for _, x := range []float64{0.1, 0.2, 0.35} {
		got := SquareWaveFourier(f, x, 199)
		want := SquareWave(f, x)
		if math.Abs(got-want) > 0.05 {
			t.Errorf("t=%v: fourier %v, square %v", x, got, want)
		}
	}
}

func TestSquareWaveSign(t *testing.T) {
	if SquareWave(1, 0.25) != 1 || SquareWave(1, 0.75) != -1 {
		t.Error("square wave sign wrong")
	}
}

func TestNewTagDefaults(t *testing.T) {
	tg := newTestTag(t)
	if tg.ID() != 0 {
		t.Errorf("ID = %d", tg.ID())
	}
	// Powers up at the strongest state.
	if tg.Impedance() != ImpedanceState(NumImpedanceStates) {
		t.Errorf("initial impedance %d, want %d", tg.Impedance(), NumImpedanceStates)
	}
	if tg.Position().Y != 1 {
		t.Errorf("position %v", tg.Position())
	}
}

func TestNewTagValidation(t *testing.T) {
	if _, err := New(0, Config{}, geom.Point{}); err == nil {
		t.Error("missing code must fail")
	}
	if _, err := New(0, Config{Code: testCode(t), SamplesPerChip: -1}, geom.Point{}); !errors.Is(err, ErrBadSamplesPerChip) {
		t.Error("negative samples per chip must fail")
	}
}

func TestStepImpedanceCyclesLikeAlgorithm1(t *testing.T) {
	tg := newTestTag(t)
	// Starts at 4 (max) → wraps to 1, then 2, 3, 4, 1 …
	want := []ImpedanceState{1, 2, 3, 4, 1}
	for i, w := range want {
		tg.StepImpedance()
		if tg.Impedance() != w {
			t.Fatalf("step %d: state %d, want %d", i, tg.Impedance(), w)
		}
	}
}

func TestSetImpedanceValidation(t *testing.T) {
	tg := newTestTag(t)
	if err := tg.SetImpedance(2); err != nil {
		t.Fatal(err)
	}
	if tg.Impedance() != 2 {
		t.Errorf("state %d", tg.Impedance())
	}
	if err := tg.SetImpedance(0); !errors.Is(err, ErrBadImpedance) {
		t.Error("state 0 must fail")
	}
	if err := tg.SetImpedance(9); !errors.Is(err, ErrBadImpedance) {
		t.Error("state 9 must fail")
	}
}

func TestDeltaGammaTracksImpedance(t *testing.T) {
	tg := newTestTag(t)
	var prev float64
	for s := 1; s <= NumImpedanceStates; s++ {
		if err := tg.SetImpedance(ImpedanceState(s)); err != nil {
			t.Fatal(err)
		}
		dg, err := tg.DeltaGamma()
		if err != nil {
			t.Fatal(err)
		}
		if dg <= prev {
			t.Errorf("state %d |ΔΓ| %v not above previous %v", s, dg, prev)
		}
		prev = dg
	}
}

func TestEncodeFrameStructure(t *testing.T) {
	tg := newTestTag(t)
	payload := []byte{0xDE, 0xAD}
	chips, err := tg.EncodeFrame(payload)
	if err != nil {
		t.Fatal(err)
	}
	bits, err := (frame.Config{}).BitLength(len(payload))
	if err != nil {
		t.Fatal(err)
	}
	if len(chips) != bits*tg.Code().Length() {
		t.Errorf("chips %d, want %d", len(chips), bits*tg.Code().Length())
	}
	// First bit of the preamble is 1 → first chips must equal code.One.
	for i, c := range tg.Code().One {
		if chips[i] != c {
			t.Fatalf("chip %d = %d, want code.One (%d)", i, chips[i], c)
		}
	}
	// Second bit (0) → next chips are code.Zero.
	l := tg.Code().Length()
	for i, c := range tg.Code().Zero {
		if chips[l+i] != c {
			t.Fatalf("chip %d = %d, want code.Zero (%d)", l+i, chips[l+i], c)
		}
	}
}

func TestEncodeFrameOversized(t *testing.T) {
	tg := newTestTag(t)
	if _, err := tg.EncodeFrame(make([]byte, frame.MaxPayload+1)); err == nil {
		t.Error("oversized payload must fail")
	}
}

func TestWaveformUpsampling(t *testing.T) {
	tg := newTestTag(t)
	payload := []byte{0x42}
	chips, err := tg.EncodeFrame(payload)
	if err != nil {
		t.Fatal(err)
	}
	wave, err := tg.Waveform(payload)
	if err != nil {
		t.Fatal(err)
	}
	if len(wave) != 2*len(chips) { // SamplesPerChip = 2
		t.Fatalf("wave %d samples, want %d", len(wave), 2*len(chips))
	}
	for i, c := range chips {
		want := complex(float64(c), 0)
		if wave[2*i] != want || wave[2*i+1] != want {
			t.Fatalf("chip %d not held for 2 samples", i)
		}
	}
}

func TestFrameChips(t *testing.T) {
	tg := newTestTag(t)
	got, err := tg.FrameChips(10)
	if err != nil {
		t.Fatal(err)
	}
	want := (8 + 8 + 80 + 16) * 31
	if got != want {
		t.Errorf("FrameChips(10) = %d, want %d", got, want)
	}
	if _, err := tg.FrameChips(4000); err == nil {
		t.Error("oversized payload must fail")
	}
}

func TestAckBookkeeping(t *testing.T) {
	tg := newTestTag(t)
	if tg.AckRatio() != 0 {
		t.Error("ratio before any frame must be 0")
	}
	for i := 0; i < 4; i++ {
		tg.NoteFrameSent()
	}
	tg.NoteAck()
	tg.NoteAck()
	tg.NoteAck()
	if got := tg.AckRatio(); got != 0.75 {
		t.Errorf("AckRatio = %v, want 0.75", got)
	}
	tg.ResetAckWindow()
	if tg.AckRatio() != 0 {
		t.Error("ratio after reset must be 0")
	}
}

func TestMoveTo(t *testing.T) {
	tg := newTestTag(t)
	tg.MoveTo(geom.Point{X: 2, Y: -1})
	if tg.Position() != (geom.Point{X: 2, Y: -1}) {
		t.Errorf("position %v", tg.Position())
	}
}

func TestSpreadBitsRoundStructure(t *testing.T) {
	code := pn.Code{ID: 0, One: []byte{1, 0}, Zero: []byte{0, 1}}
	got := SpreadBits([]byte{1, 0, 1}, code)
	want := []byte{1, 0, 0, 1, 1, 0}
	if len(got) != len(want) {
		t.Fatalf("len %d", len(got))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("chip %d = %d, want %d", i, got[i], want[i])
		}
	}
}
