package tag

import (
	"errors"
	"testing"
)

// TestStuckSwitchFreezesImpedance: the fault layer's stuck-SPDT model — a
// stuck switch silently ignores actuation (the hardware has no way to report
// the failure) but still rejects out-of-range commands, and releasing it
// restores actuation.
func TestStuckSwitchFreezesImpedance(t *testing.T) {
	tg := newTestTag(t)
	if err := tg.SetImpedance(2); err != nil {
		t.Fatal(err)
	}
	tg.SetStuck(true)
	if !tg.Stuck() {
		t.Fatal("SetStuck(true) did not stick")
	}
	if err := tg.SetImpedance(3); err != nil {
		t.Fatalf("stuck SetImpedance must fail silently, got %v", err)
	}
	tg.StepImpedance()
	if tg.Impedance() != 2 {
		t.Fatalf("stuck switch moved to state %d", tg.Impedance())
	}
	// Invalid commands still validate — stuckness hides actuation failures,
	// not protocol errors.
	if err := tg.SetImpedance(ImpedanceState(tg.ImpedanceStates() + 1)); !errors.Is(err, ErrBadImpedance) {
		t.Fatalf("stuck switch swallowed an invalid state: %v", err)
	}
	tg.SetStuck(false)
	tg.StepImpedance()
	if tg.Impedance() != 3 {
		t.Fatalf("released switch stepped to %d, want 3", tg.Impedance())
	}
}
