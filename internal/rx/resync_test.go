package rx

import (
	"bytes"
	"math"
	"math/rand"
	"testing"

	"cbma/internal/channel"
)

// newDeafReceiver builds a receiver whose energy detector can never fire
// (an absurd threshold), isolating the ResyncFallback path.
func newDeafReceiver(t *testing.T, n int, fallback bool) *Receiver {
	t.Helper()
	r, err := New(Config{
		Codes:           goldSet(t, n),
		SamplesPerChip:  testSPC,
		NoiseFloorW:     testNoise,
		SearchChips:     1,
		SyncThresholdDB: 200, // energy edge never clears this
		ResyncFallback:  fallback,
	})
	if err != nil {
		t.Fatal(err)
	}
	return r
}

// TestResyncFallbackRecoversFrame: with the energy detector blinded, the
// reader-timed fallback still decodes a healthy frame anchored at the
// nominal reply start, and flags the result as re-synced (FrameDetected
// stays false — the detector did not fire).
func TestResyncFallbackRecoversFrame(t *testing.T) {
	set := goldSet(t, 2)
	payload := []byte("resync payload")
	lead := 40 * testSPC
	buf := buildScenario(t, set, [][]byte{payload}, []complex128{amp(15)}, []int{0}, lead, 200)

	deaf := newDeafReceiver(t, 2, false)
	res, err := deaf.ReceiveAt(buf, lead)
	if err != nil {
		t.Fatal(err)
	}
	if res.FrameDetected || res.Resynced || len(res.Frames) != 0 {
		t.Fatalf("blinded receiver without fallback decoded anyway: %+v", res)
	}

	rescue := newDeafReceiver(t, 2, true)
	res, err = rescue.ReceiveAt(buf, lead)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Resynced {
		t.Fatal("fallback receiver did not report Resynced")
	}
	if res.FrameDetected {
		t.Error("Resynced result claims the energy detector fired")
	}
	if len(res.Frames) != 1 || !res.Frames[0].OK {
		t.Fatalf("fallback decode failed: %+v", res.Frames)
	}
	if !bytes.Equal(res.Frames[0].Payload, payload) {
		t.Errorf("payload %q, want %q", res.Frames[0].Payload, payload)
	}
}

// TestResyncRequiresNominalStart: the fallback only engages when the caller
// supplies an in-range timing hint — Receive (no hint) and out-of-range
// hints behave like the legacy no-detection path.
func TestResyncRequiresNominalStart(t *testing.T) {
	r := newDeafReceiver(t, 2, true)
	rng := rand.New(rand.NewSource(3))
	buf := channel.NoiseVector(rng, 8000, testNoise)

	res, err := r.Receive(buf)
	if err != nil {
		t.Fatal(err)
	}
	if res.Resynced {
		t.Error("fallback fired without a timing hint")
	}
	for _, bad := range []int{-1, len(buf), len(buf) + 40} {
		res, err := r.ReceiveAt(buf, bad)
		if err != nil {
			t.Fatal(err)
		}
		if res.Resynced {
			t.Errorf("fallback fired at out-of-range nominal start %d", bad)
		}
	}
}

// TestResyncNoiseOnlyStaysQuiet: the fallback anchors the decode attempt but
// must not conjure frames out of pure noise.
func TestResyncNoiseOnlyStaysQuiet(t *testing.T) {
	r := newDeafReceiver(t, 2, true)
	rng := rand.New(rand.NewSource(9))
	buf := channel.NoiseVector(rng, 20000, testNoise)
	res, err := r.ReceiveAt(buf, 500)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Resynced {
		t.Fatal("noise-only fallback not flagged Resynced")
	}
	for _, f := range res.Frames {
		if f.OK {
			t.Errorf("decoded a CRC-valid frame from noise: %+v", f)
		}
	}
}

// TestResyncPreservesHealthyPath: when the detector does fire, the fallback
// must change nothing — same frames as a fallback-free receiver.
func TestResyncPreservesHealthyPath(t *testing.T) {
	set := goldSet(t, 2)
	payload := []byte("healthy frame!")
	lead := 40 * testSPC
	buf := buildScenario(t, set, [][]byte{payload}, []complex128{amp(15)}, []int{0}, lead, 200)

	plain := newTestReceiver(t, set)
	cfgFB := plain.Config()
	cfgFB.ResyncFallback = true
	withFB, err := New(cfgFB)
	if err != nil {
		t.Fatal(err)
	}
	a, err := plain.ReceiveAt(buf, lead)
	if err != nil {
		t.Fatal(err)
	}
	b, err := withFB.ReceiveAt(buf, lead)
	if err != nil {
		t.Fatal(err)
	}
	if b.Resynced {
		t.Error("fallback fired on a detectable frame")
	}
	if !b.FrameDetected || len(a.Frames) != len(b.Frames) {
		t.Fatalf("healthy path diverged: %+v vs %+v", a, b)
	}
	for i := range a.Frames {
		if a.Frames[i].TagID != b.Frames[i].TagID || a.Frames[i].OK != b.Frames[i].OK ||
			a.Frames[i].Lag != b.Frames[i].Lag ||
			math.Abs(a.Frames[i].Corr-b.Frames[i].Corr) > 1e-12 {
			t.Errorf("frame %d diverged: %+v vs %+v", i, a.Frames[i], b.Frames[i])
		}
	}
}
