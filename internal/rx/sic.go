package rx

import (
	"errors"
	"math"

	"cbma/internal/frame"
)

// ErrGhost marks a CRC-valid decode suppressed as a correlation ghost: its
// payload is byte-identical to a stronger user's frame. In high SNR a
// correlation receiver decodes a *copy* of a strong transmission on any
// code with non-zero cross-correlation — the bit decisions track the
// interferer's bits exactly, so even the CRC validates. Ghost frames are
// returned with OK=false and this error so callers can observe them.
var ErrGhost = errors.New("rx: duplicate-payload correlation ghost suppressed")

// receiveSIC is the successive-interference-cancellation receive path
// (Config.SIC): users are detected and decoded strongest-first; after every
// verified frame the amplitudes of all accepted users are re-estimated by a
// joint least-squares fit and subtracted from the original buffer, so each
// detection pass sees only the not-yet-decoded users plus noise. A final
// pass suppresses payload ghosts (see ErrGhost).
//
// The paper's threshold detector reports 99.9% user-detection accuracy on
// its testbed; in this simulator's richer fading the deterministic
// preamble-on-preamble leakage between Gold codes makes a single threshold
// insufficient, so the user-detection experiment enables this stage — the
// standard software-radio technique for separating colliding RFID
// transmissions (the paper's own references [29], [30]). The FER and
// power-control experiments leave it off to preserve the paper's plain
// §III-B receiver, whose near-far weakness is exactly what Algorithm 1
// addresses; the detector ablation bench quantifies the difference.
func (r *Receiver) receiveSIC(samples []complex128, res *Result, env []float64, globalStart int) {
	noiseW := res.NoiseW
	if cap(r.sicWork) < len(samples) {
		r.sicWork = make([]complex128, len(samples))
	}
	work := r.sicWork[:len(samples)]
	copy(work, samples)
	if cap(r.sicEnv) < len(env) {
		r.sicEnv = make([]float64, len(env))
	}
	envWork := r.sicEnv[:len(env)]
	copy(envWork, env)

	var accepted []sicUser

	// remaining holds the not-yet-decoded code IDs in ascending order, so
	// detection ties break deterministically toward the lowest ID.
	remaining := make([]int, 0, r.cfg.Codes.Size())
	for id := range r.cfg.Codes.Codes {
		remaining = append(remaining, id)
	}
	for len(remaining) > 0 {
		bestID, bestDet, found := r.detectBest(remaining, envWork, work, globalStart, noiseW)
		if !found {
			break
		}
		for j, id := range remaining {
			if id == bestID {
				remaining = append(remaining[:j], remaining[j+1:]...)
				break
			}
		}
		f := r.decodeUser(work, bestID, bestDet.lag, bestDet.phasor)
		f.Corr = bestDet.corr
		res.Frames = append(res.Frames, f)
		if !f.OK {
			continue // cannot reconstruct an unverified frame
		}
		bits, err := frame.Marshal(f.Payload, r.cfg.Frame)
		if err != nil {
			continue // cannot happen for a CRC-verified payload; fail open
		}
		accepted = append(accepted, sicUser{
			id:    bestID,
			lag:   f.Lag,
			chips: r.cfg.Codes.Codes[bestID].Spread(bits),
		})
		// Joint LS re-fit of every accepted amplitude against the original
		// buffer, then rebuild the working residual. Per-user scalar fits
		// leave 10–30% residuals when supports overlap; the joint solve
		// drives the residual to the noise floor.
		amps, ok := r.jointAmplitudes(samples, accepted)
		if !ok {
			continue
		}
		copy(work, samples)
		spc := r.cfg.SamplesPerChip
		for u := range accepted {
			subtractWaveform(work, accepted[u].lag, accepted[u].chips, spc, amps[u])
		}
		for i := range work {
			re, im := real(work[i]), imag(work[i])
			envWork[i] = math.Sqrt(re*re + im*im)
		}
	}
	suppressGhosts(res.Frames)
}

// sicUser is one accepted (CRC-verified) transmission being cancelled.
type sicUser struct {
	id, lag int
	chips   []byte
}

// jointAmplitudes solves the least-squares system G·â = b where
// G[i][j] = Σ_t w_i(t)·w_j(t) counts overlapping active samples and
// b[i] = Σ_t x(t)·w_i(t), for the unit 0/1 waveforms of the accepted users.
func (r *Receiver) jointAmplitudes(x []complex128, users []sicUser) ([]complex128, bool) {
	k := len(users)
	spc := r.cfg.SamplesPerChip
	// Materialize per-user active-sample ranges lazily via chip walks.
	g := make([][]float64, k)
	b := make([]complex128, k)
	for i := range g {
		g[i] = make([]float64, k)
	}
	// onAt reports whether user u is reflecting at absolute sample t.
	onAt := func(u int, t int) bool {
		rel := t - users[u].lag
		if rel < 0 {
			return false
		}
		c := rel / spc
		if c >= len(users[u].chips) {
			return false
		}
		return users[u].chips[c] == 1
	}
	for i := 0; i < k; i++ {
		ui := users[i]
		for c, chip := range ui.chips {
			if chip == 0 {
				continue
			}
			base := ui.lag + c*spc
			for s := 0; s < spc; s++ {
				t := base + s
				if t < 0 || t >= len(x) {
					continue
				}
				b[i] += x[t]
				g[i][i]++
				for j := i + 1; j < k; j++ {
					if onAt(j, t) {
						g[i][j]++
						g[j][i]++
					}
				}
			}
		}
	}
	amps, ok := solveComplex(g, b)
	return amps, ok
}

// solveComplex solves the real-symmetric system G·a = b with complex b by
// Gaussian elimination with partial pivoting. It reports false for a
// (near-)singular system.
func solveComplex(g [][]float64, b []complex128) ([]complex128, bool) {
	k := len(g)
	// Work on copies.
	m := make([][]float64, k)
	for i := range m {
		m[i] = append([]float64(nil), g[i]...)
	}
	rhs := append([]complex128(nil), b...)
	for col := 0; col < k; col++ {
		// Pivot.
		pivot := col
		for row := col + 1; row < k; row++ {
			if math.Abs(m[row][col]) > math.Abs(m[pivot][col]) {
				pivot = row
			}
		}
		if math.Abs(m[pivot][col]) < 1e-12 {
			return nil, false
		}
		m[col], m[pivot] = m[pivot], m[col]
		rhs[col], rhs[pivot] = rhs[pivot], rhs[col]
		inv := 1 / m[col][col]
		for row := col + 1; row < k; row++ {
			f := m[row][col] * inv
			if f == 0 {
				continue
			}
			for c := col; c < k; c++ {
				m[row][c] -= f * m[col][c]
			}
			rhs[row] -= complex(f, 0) * rhs[col]
		}
	}
	out := make([]complex128, k)
	for row := k - 1; row >= 0; row-- {
		acc := rhs[row]
		for c := row + 1; c < k; c++ {
			acc -= complex(m[row][c], 0) * out[c]
		}
		out[row] = acc / complex(m[row][row], 0)
	}
	return out, true
}

// subtractWaveform removes amp × the unit chip waveform from work.
func subtractWaveform(work []complex128, lag int, chips []byte, spc int, amp complex128) {
	for c, chip := range chips {
		if chip == 0 {
			continue
		}
		base := lag + c*spc
		for s := 0; s < spc; s++ {
			t := base + s
			if t < 0 || t >= len(work) {
				continue
			}
			work[t] -= amp
		}
	}
}

// suppressGhosts marks CRC-valid frames whose payload duplicates a
// stronger frame's payload (see ErrGhost). Random payloads collide with
// negligible probability, so an exact duplicate is a correlation ghost.
func suppressGhosts(frames []DecodedFrame) {
	best := make(map[string]int) // payload → index of strongest frame
	for i, f := range frames {
		if !f.OK {
			continue
		}
		key := string(f.Payload)
		j, seen := best[key]
		if !seen {
			best[key] = i
			continue
		}
		if f.Corr > frames[j].Corr {
			frames[j].OK = false
			frames[j].Err = ErrGhost
			best[key] = i
		} else {
			frames[i].OK = false
			frames[i].Err = ErrGhost
		}
	}
}
