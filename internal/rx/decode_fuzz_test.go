package rx_test

import (
	"testing"

	"cbma/internal/geom"
	"cbma/internal/pn"
	"cbma/internal/rx"
	"cbma/internal/tag"
)

// FuzzDecodeFrame feeds the full receive chain — energy sync, per-user
// detection, despreading, frame decode — arbitrary I/Q buffers (bytes decoded
// as interleaved int8 I/Q samples) and timing hints, asserting the receiver
// never panics, keeps every reported index inside the buffer, and is
// deterministic call-over-call. The corpus seeds one genuine tag waveform so
// the fuzzer starts from a decodable frame and mutates toward the CRC/parse
// edges rather than wandering in pure noise.
func FuzzDecodeFrame(f *testing.F) {
	f.Add(make([]byte, 512), -1, false)
	f.Add(genuineFrameBytes(f), 128, false)
	f.Add(genuineFrameBytes(f), 0, true)
	f.Add([]byte{1, 2, 3}, 7, true)
	f.Add([]byte{}, 0, false)

	f.Fuzz(func(t *testing.T, raw []byte, nominalStart int, resync bool) {
		if len(raw) > 1<<15 {
			raw = raw[:1<<15]
		}
		set, err := pn.NewGoldSet(5, 2)
		if err != nil {
			t.Fatal(err)
		}
		r, err := rx.New(rx.Config{
			Codes:          set,
			SamplesPerChip: 2,
			NoiseFloorW:    1e-10,
			SearchChips:    1,
			ResyncFallback: resync,
		})
		if err != nil {
			t.Fatal(err)
		}
		samples := make([]complex128, len(raw)/2)
		for i := range samples {
			samples[i] = complex(float64(int8(raw[2*i]))/128, float64(int8(raw[2*i+1]))/128)
		}
		res, err := r.ReceiveAt(samples, nominalStart)
		if err != nil {
			if len(samples) == 0 {
				return // empty input is the one contracted error
			}
			t.Fatalf("ReceiveAt(len=%d, nominal=%d): %v", len(samples), nominalStart, err)
		}
		if res.Resynced && !resync {
			t.Fatal("Resynced reported with the fallback disabled")
		}
		for _, fr := range res.Frames {
			if fr.TagID < 0 || fr.TagID >= 2 {
				t.Fatalf("frame TagID %d outside code set", fr.TagID)
			}
			if fr.Lag < 0 || fr.Lag >= len(samples) {
				t.Fatalf("frame lag %d outside buffer of %d samples", fr.Lag, len(samples))
			}
		}
		res2, err := r.ReceiveAt(samples, nominalStart)
		if err != nil {
			t.Fatalf("second ReceiveAt errored: %v", err)
		}
		if len(res2.Frames) != len(res.Frames) || res2.Resynced != res.Resynced ||
			res2.GlobalStart != res.GlobalStart {
			t.Fatalf("receive is not deterministic: %+v then %+v", res, res2)
		}
		for i := range res.Frames {
			a, b := res.Frames[i], res2.Frames[i]
			if a.TagID != b.TagID || a.OK != b.OK || a.Lag != b.Lag || a.Corr != b.Corr {
				t.Fatalf("frame %d not deterministic: %+v then %+v", i, a, b)
			}
		}
	})
}

// genuineFrameBytes renders one real tag frame (40-chip lead, SNR well above
// the floor) into the fuzzer's int8 I/Q byte encoding.
func genuineFrameBytes(f *testing.F) []byte {
	f.Helper()
	set, err := pn.NewGoldSet(5, 2)
	if err != nil {
		f.Fatal(err)
	}
	tg, err := tag.New(0, tag.Config{Code: set.Codes[0], SamplesPerChip: 2}, geom.Point{Y: 1})
	if err != nil {
		f.Fatal(err)
	}
	w, err := tg.Waveform([]byte("fuzz seed!"))
	if err != nil {
		f.Fatal(err)
	}
	lead := 80
	buf := make([]byte, 2*(lead+len(w)+100))
	for i, v := range w {
		buf[2*(lead+i)] = byte(int8(real(v) * 100))
		buf[2*(lead+i)+1] = byte(int8(imag(v) * 100))
	}
	return buf
}
