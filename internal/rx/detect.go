package rx

import (
	"math"
	"math/cmplx"
	"sync"
	"sync/atomic"

	"cbma/internal/dsp"
)

// detection is the outcome of the per-user preamble search.
type detection struct {
	lag    int        // frame start in samples
	corr   float64    // normalized envelope correlation at lag
	phasor complex128 // unit phasor of the user's channel (preamble phase)
}

// complexRealDot computes Σ x[i]·t[i] for complex samples against a real
// template — the correlation primitive of the coherent bit decisions.
func complexRealDot(x []complex128, t []float64) complex128 {
	var re, im float64
	for i, v := range t {
		re += real(x[i]) * v
		im += imag(x[i]) * v
	}
	return complex(re, im)
}

// sweep holds the precomputed per-code correlation rows of one detection
// window, produced by the frequency-domain filter bank when the window is
// large enough for the FFT to pay (see Receiver.buildSweep). rows are
// read-only once built, so the worker pool shares them freely.
type sweep struct {
	lo, count int
	// coh[id][k] is the coherent preamble correlation of code id at lag
	// lo+k; env[id][k] the envelope correlation (filled for sparse codes
	// only — dense codes never consult it).
	coh [][]complex128
	env [][]float64
}

// buildSweep evaluates the shared detection window around globalStart for
// every code through the filter bank, or returns nil when the bank's cost
// model keeps the direct per-lag loops (small windows — the default
// configuration — stay bit-identical with the naive scan). The returned
// sweep aliases receiver scratch: it is valid until the next buildSweep
// call and must not outlive it.
func (r *Receiver) buildSweep(env []float64, x []complex128, globalStart int) *sweep {
	lo, hi, ok := r.searchWindow(globalStart, len(x))
	if !ok {
		return nil
	}
	count := hi - lo + 1
	n := r.cfg.Codes.Size()
	if !r.bank.ShouldUseFFT(count, n, true) {
		return nil
	}
	r.cohRows = growComplexRows(r.cohRows, n, count)
	if err := r.bank.CorrelateAll(x, lo, count, nil, r.cohRows); err != nil {
		r.noteFFTFallback("sweep", err)
		return nil
	}
	sw := &sweep{lo: lo, count: count, coh: r.cohRows}
	if r.anySparse {
		var sparseIDs []int
		for id, sp := range r.sparse {
			if sp {
				sparseIDs = append(sparseIDs, id)
			}
		}
		r.envRows = growFloatRows(r.envRows, n, count)
		rows := make([][]float64, len(sparseIDs))
		sw.env = make([][]float64, n)
		for j, id := range sparseIDs {
			rows[j] = r.envRows[id]
			sw.env[id] = r.envRows[id]
		}
		if err := r.bank.CorrelateRealAll(env, lo, count, sparseIDs, rows); err != nil {
			r.noteFFTFallback("sweep_env", err)
			return nil
		}
	}
	return sw
}

// searchWindow is the per-user timing window around the global alignment,
// shared by every code (equal template lengths make lo/hi code-independent).
func (r *Receiver) searchWindow(globalStart, n int) (lo, hi int, ok bool) {
	tmplLen := len(r.preambleTmpl[0])
	slack := r.cfg.SearchChips * r.cfg.SamplesPerChip
	lo = globalStart - slack
	if lo < 0 {
		lo = 0
	}
	hi = globalStart + slack
	if hi+tmplLen > n {
		hi = n - tmplLen
	}
	if hi < lo {
		return 0, 0, false
	}
	return lo, hi, true
}

func growFloatRows(rows [][]float64, n, count int) [][]float64 {
	if len(rows) < n {
		rows = append(rows, make([][]float64, n-len(rows))...)
	}
	for i := 0; i < n; i++ {
		if cap(rows[i]) < count {
			rows[i] = make([]float64, count)
		}
		rows[i] = rows[i][:count]
	}
	return rows
}

func growComplexRows(rows [][]complex128, n, count int) [][]complex128 {
	if len(rows) < n {
		rows = append(rows, make([][]complex128, n-len(rows))...)
	}
	for i := 0; i < n; i++ {
		if cap(rows[i]) < count {
			rows[i] = make([]complex128, count)
		}
		rows[i] = rows[i][:count]
	}
	return rows
}

// globalAlign estimates the fine frame start common to the colliding tags by
// maximizing the summed positive-polarity preamble correlation across every
// code in the deployment over the energy detector's uncertainty window.
//
// Alignment and user detection run on the magnitude envelope — exactly the
// P(t) = √(I²+Q²) statistic the paper's receiver computes — rather than on
// the complex baseband, for two reasons. First, the envelope has no phase
// ambiguity, so the alternating 1010… preamble keeps its polarity: a
// one-bit-shifted (inverted) alignment correlates negatively and is
// rejected, where a coherent magnitude metric could not tell it apart from a
// π-rotated channel. Second, a single shared alignment is essential for
// shift-structured code families: 2NC codes are cyclic shifts of one
// another, so tag j's entire waveform equals tag i's shifted by 2(j−i)
// chips, and a per-user search wide enough to absorb the energy detector's
// back-dating would lock code i onto tag j's frame. Because CBMA tags are
// frame-synchronized by the shared excitation source to within a fraction
// of a chip (the damage beyond that is what Fig. 11 measures), every active
// user peaks at nearly the same lag — and the summed metric peaks where all
// of them agree, while any shift-impostor alignment only ever matches a
// subset.
//
// The search runs at half-chip stride and then refines to sample resolution
// around the winner. When the window × code-count product is large enough,
// the per-code correlations come from the frequency-domain filter bank —
// one shared FFT of the envelope window against every code's precomputed
// preamble spectrum — instead of per-lag dot products; the scan pattern is
// unchanged, so the two paths agree to floating-point rounding and the
// direct path stays bit-identical with the original receiver.
//
// The correlation score is weighted by a soft prior centered on the
// refined energy-rise edge (refineEdge). The edge is the one *absolute*
// timing anchor the physics provides: for a shift-structured family with a
// single active tag the correlation landscape is perfectly periodic (one
// code matches at every slot shift), and without the edge prior the
// alignment — and therefore the tag's identity — would be picked uniformly
// at random among the shifts. The prior is gentle enough (half weight at
// four chips) that a genuine multi-tag correlation peak still dominates
// when the edge estimate is noisy.
func (r *Receiver) globalAlign(env []float64, power []float64, coarse int, noiseW float64, nominalStart int) (int, bool) {
	tmplLen := len(r.preambleTmpl[0])
	slack := r.cfg.SamplesPerChip * 2
	lo := coarse - slack
	if lo < 0 {
		lo = 0
	}
	hi := coarse + r.shortWindow() + slack
	if hi+tmplLen > len(env) {
		hi = len(env) - tmplLen
	}
	if hi < lo {
		return 0, false
	}
	stride := r.cfg.SamplesPerChip / 2
	if stride < 1 {
		stride = 1
	}
	edge := nominalStart
	if edge < 0 {
		edge = r.refineEdge(power, coarse, noiseW)
	}
	prior := func(lag int) float64 {
		d := float64(lag-edge) / float64(4*r.cfg.SamplesPerChip)
		return 1 / (1 + d*d)
	}
	count := hi - lo + 1
	// corrAt(id, lag) is the envelope-preamble correlation; the fast path
	// precomputes every (code, lag) cell through the bank's shared FFT.
	corrAt := func(id, lag int) float64 {
		c, err := dsp.DotReal(env[lag:lag+tmplLen], r.preambleTmpl[id])
		if err != nil {
			return math.Inf(-1)
		}
		return c
	}
	if r.bank.ShouldUseFFT(count, len(r.preambleTmpl), false) {
		r.alignRows = growFloatRows(r.alignRows, len(r.preambleTmpl), count)
		if err := r.bank.CorrelateRealAll(env, lo, count, nil, r.alignRows); err == nil {
			rows := r.alignRows
			corrAt = func(id, lag int) float64 { return rows[id][lag-lo] }
		} else {
			r.noteFFTFallback("align", err)
		}
	}
	score := func(lag int) float64 {
		var sum float64
		for id := range r.preambleTmpl {
			c := corrAt(id, lag)
			if math.IsInf(c, -1) {
				return 0
			}
			if c > 0 { // only positive polarity is a valid preamble
				sum += c * c
			}
		}
		return sum * prior(lag)
	}
	bestLag, bestScore := lo, -1.0
	for lag := lo; lag <= hi; lag += stride {
		if s := score(lag); s > bestScore {
			bestLag, bestScore = lag, s
		}
	}
	// Refine to sample resolution around the strided winner.
	rlo, rhi := bestLag-stride+1, bestLag+stride-1
	if rlo < lo {
		rlo = lo
	}
	if rhi > hi {
		rhi = hi
	}
	for lag := rlo; lag <= rhi; lag++ {
		if s := score(lag); s > bestScore {
			bestLag, bestScore = lag, s
		}
	}
	return bestLag, bestScore > 0
}

// refineEdge locates the frame's energy-rise edge to within a chip or two:
// the first sample at or after the (back-dated) coarse start whose local
// 8-sample mean power clears the noise estimate by 3 dB. It falls back to
// the coarse start when nothing clears the bar (very low SNR).
func (r *Receiver) refineEdge(power []float64, coarse int, noiseW float64) int {
	// A 16-sample window at 3× the noise floor keeps the false-fire
	// probability per position below 1e-6 (Chernoff), so the edge cannot
	// anchor on a noise fluctuation ahead of the frame.
	const win = 16
	lo := coarse - r.cfg.SamplesPerChip
	if lo < 0 {
		lo = 0
	}
	hi := coarse + r.shortWindow() + 2*r.cfg.SamplesPerChip
	if hi+win > len(power) {
		hi = len(power) - win
	}
	if noiseW <= 0 || hi < lo {
		return coarse
	}
	thresh := 3 * noiseW * win
	for j := lo; j <= hi; j++ {
		var acc float64
		for k := 0; k < win; k++ {
			acc += power[j+k]
		}
		if acc <= thresh {
			continue
		}
		// The window triggers as soon as it overlaps the frame, up to
		// win−1 samples early; locate the first individual sample that
		// clears the floor decisively to pin the edge within ~a sample.
		for k := 0; k < win; k++ {
			if power[j+k] > 6*noiseW {
				return j + k
			}
		}
		return j + win/2
	}
	return coarse
}

// detectUser implements §III-B user detection for one code: it slides the
// code's preamble discriminant template over the complex baseband within
// ±SearchChips chips of the global alignment and reports the best normalized
// correlation magnitude. When sw is non-nil the per-lag correlations come
// from the precomputed frequency-domain sweep; the detection statistics at
// the chosen lag are always recomputed with the direct dot product, so the
// reported corr/phasor/CFAR values are path-independent.
//
// The per-user metric is coherent — |Σ x·tmpl| normalized by the window and
// template energies — because the envelope correlation dilutes as 1/√N with
// N concurrent tags and stops separating present from absent users beyond
// two or three tags, while the coherent matched filter keeps its margin.
// The coherent magnitude cannot tell an inverted (one-bit-shifted) preamble
// from a π-rotated channel, but the narrow window around the
// envelope-anchored global alignment never reaches a one-bit shift, so the
// ambiguity is structurally excluded. The window also stays inside the
// cyclic-ambiguity distance of shift-structured families like 2NC (see
// globalAlign) while tolerating the sub-chip clock skew the
// correlation-based detector is built for.
//
// Lag choice and detection value use different statistics because their
// failure modes differ, and the right lag statistic depends on the code's
// structure — this is matched detection, not a tuning hack:
//
//   - Sparse PPM-style codes (2NC: one active chip per bit value) choose
//     the lag by maximum positive envelope correlation. Envelope
//     contributions add without phase cancellation, so the true alignment
//     beats the ±1 chip offsets where the window mixes the tag's own
//     inverted chips with a neighbour's chips — offsets that can win a
//     phase-blind magnitude contest under fading.
//   - Dense balanced codes (Gold, Kasami, Walsh: ~half the chips active)
//     choose the lag by maximum coherent correlation magnitude. Their
//     envelope statistic breaks under near-far — a weak tag's envelope
//     contribution scales with the cosine of its phase offset from the
//     dominant tag and can legitimately go negative — while their
//     autocorrelation rejects ±1 chip offsets on its own.
//
// The detection test at the chosen lag always uses the coherent normalized
// correlation |Σ x·tmpl| / (‖x_win‖·‖tmpl‖), because the envelope value
// dilutes against N concurrent tags and stops separating present from
// absent users, while the coherent matched filter keeps its margin.
//
// On success the detection carries the user's channel phasor — the phase of
// the complex correlation at the chosen lag — as the reference the coherent
// bit decisions project onto. For a sparse code, the residual self-impostor
// (an exactly inverted decode at ±1 chip) is detected and undone by
// decodeUser's preamble-inversion repair.
func (r *Receiver) detectUser(sw *sweep, env []float64, x []complex128, id, globalStart int, noiseW float64) (detection, bool) {
	tmpl := r.preambleTmpl[id]
	lo, hi, ok := r.searchWindow(globalStart, len(x))
	if !ok {
		return detection{}, false
	}
	var tmplEnergy float64
	for _, v := range tmpl {
		tmplEnergy += v * v
	}
	if tmplEnergy == 0 {
		return detection{}, false
	}
	bestLag := -1
	if sw != nil {
		bestLag = r.pickLagFromSweep(sw, id)
	} else if r.sparse[id] {
		bestEnv := 0.0
		cohLag, cohBest := -1, -1.0
		for lag := lo; lag <= hi; lag++ {
			e, err := dsp.DotReal(env[lag:lag+len(tmpl)], tmpl)
			if err != nil {
				return detection{}, false
			}
			if e > bestEnv {
				bestLag, bestEnv = lag, e
			}
			dot := complexRealDot(x[lag:lag+len(tmpl)], tmpl)
			if m := real(dot)*real(dot) + imag(dot)*imag(dot); m > cohBest {
				cohLag, cohBest = lag, m
			}
		}
		if bestLag < 0 {
			bestLag = cohLag // no positive envelope peak: fall back to coherent
		}
	} else {
		cohBest := -1.0
		for lag := lo; lag <= hi; lag++ {
			dot := complexRealDot(x[lag:lag+len(tmpl)], tmpl)
			if m := real(dot)*real(dot) + imag(dot)*imag(dot); m > cohBest {
				bestLag, cohBest = lag, m
			}
		}
	}
	if bestLag < 0 {
		return detection{}, false
	}
	dot := complexRealDot(x[bestLag:bestLag+len(tmpl)], tmpl)
	winE := energyOf(x[bestLag : bestLag+len(tmpl)])
	if winE == 0 {
		return detection{}, false
	}
	mag2 := real(dot)*real(dot) + imag(dot)*imag(dot)
	corr := math.Sqrt(mag2 / (winE * tmplEnergy))
	if corr < r.cfg.DetectThreshold {
		return detection{}, false
	}
	// CFAR test: the matched-filter output must clear the noise floor by
	// the configured deflection. This is the length-sensitive half of
	// detection — integrating a longer preamble buys SNR — while the
	// normalized-correlation test above is the MAI-robust, scale-free
	// half (see Config.CFARThreshold).
	if noiseW > 0 && mag2 < r.cfg.CFARThreshold*noiseW*tmplEnergy {
		return detection{}, false
	}
	best := detection{lag: bestLag, corr: corr, phasor: 1}
	if abs := cmplx.Abs(dot); abs > 0 {
		best.phasor = dot / complex(abs, 0)
	}
	return best, true
}

// pickLagFromSweep reproduces detectUser's lag choice from precomputed
// rows: maximum positive envelope correlation for sparse codes (falling
// back to the coherent peak), maximum coherent magnitude for dense ones.
func (r *Receiver) pickLagFromSweep(sw *sweep, id int) int {
	coh := sw.coh[id]
	bestLag := -1
	if r.sparse[id] && sw.env != nil && sw.env[id] != nil {
		bestEnv := 0.0
		cohLag, cohBest := -1, -1.0
		envRow := sw.env[id]
		for k := 0; k < sw.count; k++ {
			if e := envRow[k]; e > bestEnv {
				bestLag, bestEnv = sw.lo+k, e
			}
			dot := coh[k]
			if m := real(dot)*real(dot) + imag(dot)*imag(dot); m > cohBest {
				cohLag, cohBest = sw.lo+k, m
			}
		}
		if bestLag < 0 {
			bestLag = cohLag
		}
		return bestLag
	}
	cohBest := -1.0
	for k := 0; k < sw.count; k++ {
		dot := coh[k]
		if m := real(dot)*real(dot) + imag(dot)*imag(dot); m > cohBest {
			bestLag, cohBest = sw.lo+k, m
		}
	}
	return bestLag
}

// detectAndDecodeAll runs per-code detection and decoding over the buffer,
// fanning the codes out across Config.Workers goroutines when configured.
// The pool lives entirely within this call — workers only read the shared
// buffer, sweep rows and templates, and write code-indexed slots — so
// Receive stays sequential-safe for callers. Frames return in code order,
// matching the serial path.
func (r *Receiver) detectAndDecodeAll(env []float64, x []complex128, globalStart int, noiseW float64) []DecodedFrame {
	n := r.cfg.Codes.Size()
	sw := r.buildSweep(env, x, globalStart)
	workers := r.workerCount(n)
	if workers <= 1 {
		var frames []DecodedFrame
		for id := 0; id < n; id++ {
			detSp := r.obs.Start(r.hDetect)
			det, ok := r.detectUser(sw, env, x, id, globalStart, noiseW)
			detSp.End()
			if !ok {
				continue
			}
			decSp := r.obs.Start(r.hDecode)
			f := r.decodeUser(x, id, det.lag, det.phasor)
			decSp.End()
			f.Corr = det.corr
			frames = append(frames, f)
		}
		return frames
	}
	type slot struct {
		f  DecodedFrame
		ok bool
	}
	slots := make([]slot, n)
	var next int64 = -1
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				id := int(atomic.AddInt64(&next, 1))
				if id >= n {
					return
				}
				detSp := r.obs.Start(r.hDetect)
				det, ok := r.detectUser(sw, env, x, id, globalStart, noiseW)
				detSp.End()
				if !ok {
					continue
				}
				decSp := r.obs.Start(r.hDecode)
				f := r.decodeUser(x, id, det.lag, det.phasor)
				decSp.End()
				f.Corr = det.corr
				slots[id] = slot{f: f, ok: true}
			}
		}()
	}
	wg.Wait()
	var frames []DecodedFrame
	for id := 0; id < n; id++ {
		if slots[id].ok {
			frames = append(frames, slots[id].f)
		}
	}
	return frames
}

// detectBest scans the given codes and returns the one with the strongest
// detection — the SIC ordering primitive — fanning out across the worker
// pool when configured. Ties break toward the lowest code ID in both paths.
func (r *Receiver) detectBest(ids []int, env []float64, x []complex128, globalStart int, noiseW float64) (int, detection, bool) {
	sw := r.buildSweep(env, x, globalStart)
	workers := r.workerCount(len(ids))
	if workers <= 1 {
		bestID := -1
		var bestDet detection
		for _, id := range ids {
			det, ok := r.detectUser(sw, env, x, id, globalStart, noiseW)
			if !ok {
				continue
			}
			if bestID < 0 || det.corr > bestDet.corr {
				bestID, bestDet = id, det
			}
		}
		return bestID, bestDet, bestID >= 0
	}
	type slot struct {
		det detection
		ok  bool
	}
	slots := make([]slot, len(ids))
	var next int64 = -1
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				j := int(atomic.AddInt64(&next, 1))
				if j >= len(ids) {
					return
				}
				det, ok := r.detectUser(sw, env, x, ids[j], globalStart, noiseW)
				slots[j] = slot{det: det, ok: ok}
			}
		}()
	}
	wg.Wait()
	bestID := -1
	var bestDet detection
	for j, id := range ids {
		if !slots[j].ok {
			continue
		}
		if bestID < 0 || slots[j].det.corr > bestDet.corr {
			bestID, bestDet = id, slots[j].det
		}
	}
	return bestID, bestDet, bestID >= 0
}

// noteFFTFallback records a filter-bank error that silently dropped an
// alignment or detection sweep to the direct per-lag loops. The results are
// unaffected — the direct path computes the same correlations — but the
// cost regresses to the O(lags×codes) product the bank exists to avoid, so
// the fallback must be visible in the run manifest (counter) and event log
// rather than only as unexplained wall time.
func (r *Receiver) noteFFTFallback(where string, err error) {
	r.cFFTFallback.Inc()
	if r.obs.EmitsEvents() {
		r.obs.Emit("rx_fft_fallback", map[string]any{"where": where, "error": err.Error()})
	}
}

// workerCount bounds the per-call worker pool by the configured fan-out and
// the number of codes to scan.
func (r *Receiver) workerCount(n int) int {
	w := r.cfg.Workers
	if w > n {
		w = n
	}
	return w
}

// energyOf returns Σ|x[i]|².
func energyOf(x []complex128) float64 {
	var acc float64
	for _, v := range x {
		acc += real(v)*real(v) + imag(v)*imag(v)
	}
	return acc
}
