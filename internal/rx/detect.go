package rx

import (
	"math"
	"math/cmplx"

	"cbma/internal/dsp"
)

// detection is the outcome of the per-user preamble search.
type detection struct {
	lag    int        // frame start in samples
	corr   float64    // normalized envelope correlation at lag
	phasor complex128 // unit phasor of the user's channel (preamble phase)
}

// complexRealDot computes Σ x[i]·t[i] for complex samples against a real
// template — the correlation primitive of the coherent bit decisions.
func complexRealDot(x []complex128, t []float64) complex128 {
	var re, im float64
	for i, v := range t {
		re += real(x[i]) * v
		im += imag(x[i]) * v
	}
	return complex(re, im)
}

// globalAlign estimates the fine frame start common to the colliding tags by
// maximizing the summed positive-polarity preamble correlation across every
// code in the deployment over the energy detector's uncertainty window.
//
// Alignment and user detection run on the magnitude envelope — exactly the
// P(t) = √(I²+Q²) statistic the paper's receiver computes — rather than on
// the complex baseband, for two reasons. First, the envelope has no phase
// ambiguity, so the alternating 1010… preamble keeps its polarity: a
// one-bit-shifted (inverted) alignment correlates negatively and is
// rejected, where a coherent magnitude metric could not tell it apart from a
// π-rotated channel. Second, a single shared alignment is essential for
// shift-structured code families: 2NC codes are cyclic shifts of one
// another, so tag j's entire waveform equals tag i's shifted by 2(j−i)
// chips, and a per-user search wide enough to absorb the energy detector's
// back-dating would lock code i onto tag j's frame. Because CBMA tags are
// frame-synchronized by the shared excitation source to within a fraction
// of a chip (the damage beyond that is what Fig. 11 measures), every active
// user peaks at nearly the same lag — and the summed metric peaks where all
// of them agree, while any shift-impostor alignment only ever matches a
// subset.
//
// The search runs at half-chip stride and then refines to sample resolution
// around the winner.
//
// The correlation score is weighted by a soft prior centered on the
// refined energy-rise edge (refineEdge). The edge is the one *absolute*
// timing anchor the physics provides: for a shift-structured family with a
// single active tag the correlation landscape is perfectly periodic (one
// code matches at every slot shift), and without the edge prior the
// alignment — and therefore the tag's identity — would be picked uniformly
// at random among the shifts. The prior is gentle enough (half weight at
// four chips) that a genuine multi-tag correlation peak still dominates
// when the edge estimate is noisy.
func (r *Receiver) globalAlign(env []float64, power []float64, coarse int, noiseW float64, nominalStart int) (int, bool) {
	tmplLen := len(r.preambleTmpl[0])
	slack := r.cfg.SamplesPerChip * 2
	lo := coarse - slack
	if lo < 0 {
		lo = 0
	}
	hi := coarse + r.shortWindow() + slack
	if hi+tmplLen > len(env) {
		hi = len(env) - tmplLen
	}
	if hi < lo {
		return 0, false
	}
	stride := r.cfg.SamplesPerChip / 2
	if stride < 1 {
		stride = 1
	}
	edge := nominalStart
	if edge < 0 {
		edge = r.refineEdge(power, coarse, noiseW)
	}
	prior := func(lag int) float64 {
		d := float64(lag-edge) / float64(4*r.cfg.SamplesPerChip)
		return 1 / (1 + d*d)
	}
	score := func(lag int) float64 {
		var sum float64
		for id := range r.preambleTmpl {
			c, err := dsp.DotReal(env[lag:lag+tmplLen], r.preambleTmpl[id])
			if err != nil {
				return 0
			}
			if c > 0 { // only positive polarity is a valid preamble
				sum += c * c
			}
		}
		return sum * prior(lag)
	}
	bestLag, bestScore := lo, -1.0
	for lag := lo; lag <= hi; lag += stride {
		if s := score(lag); s > bestScore {
			bestLag, bestScore = lag, s
		}
	}
	// Refine to sample resolution around the strided winner.
	rlo, rhi := bestLag-stride+1, bestLag+stride-1
	if rlo < lo {
		rlo = lo
	}
	if rhi > hi {
		rhi = hi
	}
	for lag := rlo; lag <= rhi; lag++ {
		if s := score(lag); s > bestScore {
			bestLag, bestScore = lag, s
		}
	}
	return bestLag, bestScore > 0
}

// refineEdge locates the frame's energy-rise edge to within a chip or two:
// the first sample at or after the (back-dated) coarse start whose local
// 8-sample mean power clears the noise estimate by 3 dB. It falls back to
// the coarse start when nothing clears the bar (very low SNR).
func (r *Receiver) refineEdge(power []float64, coarse int, noiseW float64) int {
	// A 16-sample window at 3× the noise floor keeps the false-fire
	// probability per position below 1e-6 (Chernoff), so the edge cannot
	// anchor on a noise fluctuation ahead of the frame.
	const win = 16
	lo := coarse - r.cfg.SamplesPerChip
	if lo < 0 {
		lo = 0
	}
	hi := coarse + r.shortWindow() + 2*r.cfg.SamplesPerChip
	if hi+win > len(power) {
		hi = len(power) - win
	}
	if noiseW <= 0 || hi < lo {
		return coarse
	}
	thresh := 3 * noiseW * win
	for j := lo; j <= hi; j++ {
		var acc float64
		for k := 0; k < win; k++ {
			acc += power[j+k]
		}
		if acc <= thresh {
			continue
		}
		// The window triggers as soon as it overlaps the frame, up to
		// win−1 samples early; locate the first individual sample that
		// clears the floor decisively to pin the edge within ~a sample.
		for k := 0; k < win; k++ {
			if power[j+k] > 6*noiseW {
				return j + k
			}
		}
		return j + win/2
	}
	return coarse
}

// detectUser implements §III-B user detection for one code: it slides the
// code's preamble discriminant template over the complex baseband within
// ±SearchChips chips of the global alignment and reports the best normalized
// correlation magnitude.
//
// The per-user metric is coherent — |Σ x·tmpl| normalized by the window and
// template energies — because the envelope correlation dilutes as 1/√N with
// N concurrent tags and stops separating present from absent users beyond
// two or three tags, while the coherent matched filter keeps its margin.
// The coherent magnitude cannot tell an inverted (one-bit-shifted) preamble
// from a π-rotated channel, but the narrow window around the
// envelope-anchored global alignment never reaches a one-bit shift, so the
// ambiguity is structurally excluded. The window also stays inside the
// cyclic-ambiguity distance of shift-structured families like 2NC (see
// globalAlign) while tolerating the sub-chip clock skew the
// correlation-based detector is built for.
//
// Lag choice and detection value use different statistics because their
// failure modes differ, and the right lag statistic depends on the code's
// structure — this is matched detection, not a tuning hack:
//
//   - Sparse PPM-style codes (2NC: one active chip per bit value) choose
//     the lag by maximum positive envelope correlation. Envelope
//     contributions add without phase cancellation, so the true alignment
//     beats the ±1 chip offsets where the window mixes the tag's own
//     inverted chips with a neighbour's chips — offsets that can win a
//     phase-blind magnitude contest under fading.
//   - Dense balanced codes (Gold, Kasami, Walsh: ~half the chips active)
//     choose the lag by maximum coherent correlation magnitude. Their
//     envelope statistic breaks under near-far — a weak tag's envelope
//     contribution scales with the cosine of its phase offset from the
//     dominant tag and can legitimately go negative — while their
//     autocorrelation rejects ±1 chip offsets on its own.
//
// The detection test at the chosen lag always uses the coherent normalized
// correlation |Σ x·tmpl| / (‖x_win‖·‖tmpl‖), because the envelope value
// dilutes against N concurrent tags and stops separating present from
// absent users, while the coherent matched filter keeps its margin.
//
// On success the detection carries the user's channel phasor — the phase of
// the complex correlation at the chosen lag — as the reference the coherent
// bit decisions project onto. For a sparse code, the residual self-impostor
// (an exactly inverted decode at ±1 chip) is detected and undone by
// decodeUser's preamble-inversion repair.
func (r *Receiver) detectUser(env []float64, x []complex128, id, globalStart int, noiseW float64) (detection, bool) {
	tmpl := r.preambleTmpl[id]
	slack := r.cfg.SearchChips * r.cfg.SamplesPerChip
	lo := globalStart - slack
	if lo < 0 {
		lo = 0
	}
	hi := globalStart + slack
	if hi+len(tmpl) > len(x) {
		hi = len(x) - len(tmpl)
	}
	if hi < lo {
		return detection{}, false
	}
	var tmplEnergy float64
	for _, v := range tmpl {
		tmplEnergy += v * v
	}
	if tmplEnergy == 0 {
		return detection{}, false
	}
	bestLag := -1
	if r.sparse[id] {
		bestEnv := 0.0
		cohLag, cohBest := -1, -1.0
		for lag := lo; lag <= hi; lag++ {
			e, err := dsp.DotReal(env[lag:lag+len(tmpl)], tmpl)
			if err != nil {
				return detection{}, false
			}
			if e > bestEnv {
				bestLag, bestEnv = lag, e
			}
			dot := complexRealDot(x[lag:lag+len(tmpl)], tmpl)
			if m := real(dot)*real(dot) + imag(dot)*imag(dot); m > cohBest {
				cohLag, cohBest = lag, m
			}
		}
		if bestLag < 0 {
			bestLag = cohLag // no positive envelope peak: fall back to coherent
		}
	} else {
		cohBest := -1.0
		for lag := lo; lag <= hi; lag++ {
			dot := complexRealDot(x[lag:lag+len(tmpl)], tmpl)
			if m := real(dot)*real(dot) + imag(dot)*imag(dot); m > cohBest {
				bestLag, cohBest = lag, m
			}
		}
	}
	if bestLag < 0 {
		return detection{}, false
	}
	dot := complexRealDot(x[bestLag:bestLag+len(tmpl)], tmpl)
	winE := energyOf(x[bestLag : bestLag+len(tmpl)])
	if winE == 0 {
		return detection{}, false
	}
	mag2 := real(dot)*real(dot) + imag(dot)*imag(dot)
	corr := math.Sqrt(mag2 / (winE * tmplEnergy))
	if corr < r.cfg.DetectThreshold {
		return detection{}, false
	}
	// CFAR test: the matched-filter output must clear the noise floor by
	// the configured deflection. This is the length-sensitive half of
	// detection — integrating a longer preamble buys SNR — while the
	// normalized-correlation test above is the MAI-robust, scale-free
	// half (see Config.CFARThreshold).
	if noiseW > 0 && mag2 < r.cfg.CFARThreshold*noiseW*tmplEnergy {
		return detection{}, false
	}
	best := detection{lag: bestLag, corr: corr, phasor: 1}
	if abs := cmplx.Abs(dot); abs > 0 {
		best.phasor = dot / complex(abs, 0)
	}
	return best, true
}

// energyOf returns Σ|x[i]|².
func energyOf(x []complex128) float64 {
	var acc float64
	for _, v := range x {
		acc += real(v)*real(v) + imag(v)*imag(v)
	}
	return acc
}
