package rx

import (
	"cbma/internal/dsp"
)

// EnergyDetect implements the paper's frame synchronization (§III-B): the
// received power sequence is smoothed by a moving-average filter and a
// comparator flags a new frame when the short-term power — averaged over
// shortWindow samples — exceeds the long-term filtered level by
// thresholdDB. The long-term average is frozen once the comparator fires so
// the frame's own energy cannot raise the reference.
//
// shortWindow trades false alarms against start accuracy: the mean of k
// noise-power samples exceeds twice its expectation with probability
// ≈exp(−0.31·k), so a window under ~50 samples false-fires on long noise
// buffers. The receiver therefore uses one bit duration (floored at 64
// samples) and compensates the resulting start uncertainty by widening the
// per-user preamble search (detect.go).
//
// The returned start back-dates the fire index by the short window length;
// the true frame start lies within [start, start+shortWindow].
func EnergyDetect(power []float64, longWindow int, thresholdDB float64, shortWindow int) (start int, found bool) {
	if len(power) == 0 {
		return 0, false
	}
	if longWindow < 2 {
		longWindow = 2
	}
	if shortWindow < 1 {
		shortWindow = 1
	}
	factor := dsp.FromDB(thresholdDB)
	long := dsp.NewMovingAverager(longWindow)
	short := dsp.NewMovingAverager(shortWindow)
	// The long-term reference is fed through a delay line one short-window
	// long. Without it, the reference absorbs the frame's own energy while
	// the short window is still filling, and for short spreading codes the
	// short/long ratio tops out at exactly the comparator threshold —
	// detection becomes a coin flip. Delayed, the reference stays
	// noise-only until after the comparator has fired.
	delay := make([]float64, shortWindow)
	var longVal float64
	// Warm both averages on the initial samples so the comparator has a
	// reference; the simulator always provides a noise-only lead.
	warmup := shortWindow
	if warmup > len(power) {
		warmup = len(power)
	}
	for i := 0; i < warmup; i++ {
		longVal = long.Push(power[i])
		short.Push(power[i])
		delay[i%shortWindow] = power[i]
	}
	for i := warmup; i < len(power); i++ {
		s := short.Push(power[i])
		if longVal > 0 && s > factor*longVal {
			start = i - shortWindow + 1
			if start < 0 {
				start = 0
			}
			return start, true
		}
		longVal = long.Push(delay[i%shortWindow])
		delay[i%shortWindow] = power[i]
	}
	return 0, false
}
