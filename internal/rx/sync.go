package rx

import (
	"cbma/internal/dsp"
)

// EnergyDetect implements the paper's frame synchronization (§III-B): the
// received power sequence is smoothed by a moving-average filter and a
// comparator flags a new frame when the short-term power — averaged over
// shortWindow samples — exceeds the long-term filtered level by
// thresholdDB. The long-term average is frozen once the comparator fires so
// the frame's own energy cannot raise the reference.
//
// shortWindow trades false alarms against start accuracy: the mean of k
// noise-power samples exceeds twice its expectation with probability
// ≈exp(−0.31·k), so a window under ~50 samples false-fires on long noise
// buffers. The receiver therefore uses one bit duration (floored at 64
// samples) and compensates the resulting start uncertainty by widening the
// per-user preamble search (detect.go).
//
// The returned start back-dates the fire index by the short window length;
// the true frame start lies within [start, start+shortWindow].
func EnergyDetect(power []float64, longWindow int, thresholdDB float64, shortWindow int) (start int, found bool) {
	if len(power) == 0 {
		return 0, false
	}
	if longWindow < 2 {
		longWindow = 2
	}
	if shortWindow < 1 {
		shortWindow = 1
	}
	factor := dsp.FromDB(thresholdDB)
	long := dsp.NewMovingAverager(longWindow)
	short := dsp.NewMovingAverager(shortWindow)
	// The long-term reference is fed through a delay line one short-window
	// long. Without it, the reference absorbs the frame's own energy while
	// the short window is still filling, and for short spreading codes the
	// short/long ratio tops out at exactly the comparator threshold —
	// detection becomes a coin flip. Delayed, the reference stays
	// noise-only until after the comparator has fired.
	delay := make([]float64, shortWindow)
	var longVal float64
	// Warm both averages on the initial samples so the comparator has a
	// reference; the simulator always provides a noise-only lead.
	warmup := shortWindow
	if warmup > len(power) {
		warmup = len(power)
	}
	for i := 0; i < warmup; i++ {
		longVal = long.Push(power[i])
		short.Push(power[i])
		delay[i%shortWindow] = power[i]
	}
	for i := warmup; i < len(power); i++ {
		s := short.Push(power[i])
		if longVal > 0 && s > factor*longVal {
			return backdateStart(i, shortWindow), true
		}
		longVal = long.Push(delay[i%shortWindow])
		delay[i%shortWindow] = power[i]
	}
	return 0, false
}

// backdateStart back-dates the comparator's fire index by the short window
// length, clamping at the buffer head: a fire within the first window
// back-dates to the buffer start rather than a negative index.
func backdateStart(fire, shortWindow int) int {
	start := fire - shortWindow + 1
	if start < 0 {
		return 0
	}
	return start
}

// energyDetectPrefix reproduces EnergyDetect's comparator from the power
// prefix-sum array (prefix = dsp.PrefixSumInto(_, power)) in O(1) work per
// position instead of two moving-average pushes per sample — the receiver's
// default sync path. Undetected buffers, where the comparator scans every
// sample, drop from the round's dominant cost to a single pass.
//
// The reference detector's state at check index i is fully determined by
// prefix sums: the short-term mean is the last shortWindow samples, and the
// long-term reference — whose delay line re-pushes the warmup samples, so
// its push sequence is power[0:sw] ++ power[0:i−sw] — is the mean of the
// last min(i, longWindow) entries of that sequence. The three cases below
// are that tail straddling (or not) the warmup/replay seam. Window means
// differ from the streaming accumulator only in floating-point association
// order; decisions are identical on every covered scenario (see
// TestSyncEquivalence*) and exactly identical on integer-valued power
// (FuzzFrameSync asserts agreement).
//
//cbma:hotpath
func energyDetectPrefix(prefix []float64, longWindow int, thresholdDB float64, shortWindow int) (start int, found bool) {
	n := len(prefix) - 1
	if n <= 0 {
		return 0, false
	}
	if longWindow < 2 {
		longWindow = 2
	}
	if shortWindow < 1 {
		shortWindow = 1
	}
	if n <= shortWindow {
		return 0, false // warmup consumes the whole buffer
	}
	factor := dsp.FromDB(thresholdDB)
	sw, lw := shortWindow, longWindow
	for i := sw; i < n; i++ {
		s := (prefix[i+1] - prefix[i+1-sw]) / float64(sw)
		r := i - sw // samples replayed through the delay line
		var longVal float64
		switch {
		case r >= lw:
			longVal = (prefix[r] - prefix[r-lw]) / float64(lw)
		case i < lw:
			// Ring not yet full: every push so far contributes.
			longVal = (prefix[sw] + prefix[r]) / float64(i)
		default:
			// Tail of the warmup block plus all replayed samples.
			k := lw - r
			longVal = (prefix[sw] - prefix[sw-k] + prefix[r]) / float64(lw)
		}
		if longVal > 0 && s > factor*longVal {
			return backdateStart(i, sw), true
		}
	}
	return 0, false
}
