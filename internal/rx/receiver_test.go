package rx

import (
	"bytes"
	"errors"
	"math"
	"math/rand"
	"testing"

	"cbma/internal/channel"
	"cbma/internal/dsp"
	"cbma/internal/frame"
	"cbma/internal/geom"
	"cbma/internal/pn"
	"cbma/internal/tag"
)

const (
	testSPC   = 4
	testNoise = 1e-10 // watts per sample
)

// buildScenario synthesizes a received buffer containing one frame per
// payload entry, each from a distinct tag, with the given per-tag amplitude
// gains and sample offsets, over a noise floor.
func buildScenario(t testing.TB, set *pn.Set, payloads [][]byte, gains []complex128, offsets []int, leadSamples, tailSamples int) []complex128 {
	t.Helper()
	rng := rand.New(rand.NewSource(77))
	var maxEnd int
	waves := make([][]complex128, len(payloads))
	for i, p := range payloads {
		tg, err := tag.New(i, tag.Config{Code: set.Codes[i], SamplesPerChip: testSPC}, geom.Point{})
		if err != nil {
			t.Fatal(err)
		}
		w, err := tg.Waveform(p)
		if err != nil {
			t.Fatal(err)
		}
		waves[i] = w
		if end := leadSamples + offsets[i] + len(w); end > maxEnd {
			maxEnd = end
		}
	}
	buf := make([]complex128, maxEnd+tailSamples)
	for i, w := range waves {
		base := leadSamples + offsets[i]
		for k, v := range w {
			buf[base+k] += v * gains[i]
		}
	}
	channel.AWGN(rng, buf, testNoise)
	return buf
}

func newTestReceiver(t *testing.T, set *pn.Set) *Receiver {
	t.Helper()
	r, err := New(Config{
		Codes:          set,
		SamplesPerChip: testSPC,
		NoiseFloorW:    testNoise,
		SearchChips:    1,
	})
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func goldSet(t *testing.T, n int) *pn.Set {
	t.Helper()
	s, err := pn.NewGoldSet(5, n)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func amp(snrDB float64) complex128 {
	return complex(math.Sqrt(testNoise*dsp.FromDB(snrDB)), 0)
}

func TestNewConfigValidation(t *testing.T) {
	if _, err := New(Config{}); !errors.Is(err, ErrNoCodes) {
		t.Fatalf("got %v, want ErrNoCodes", err)
	}
	set := goldSet(t, 2)
	if _, err := New(Config{Codes: set, SamplesPerChip: -2}); err == nil {
		t.Fatal("negative spc must fail")
	}
	if _, err := New(Config{Codes: set, Frame: frame.Config{PreambleBits: 3}}); err == nil {
		t.Fatal("bad preamble config must fail")
	}
	r, err := New(Config{Codes: set})
	if err != nil {
		t.Fatal(err)
	}
	cfg := r.Config()
	if cfg.SamplesPerChip != 4 || cfg.SyncThresholdDB != 3 || cfg.DetectThreshold != 0.15 {
		t.Errorf("defaults not applied: %+v", cfg)
	}
}

func TestReceiveEmptyBuffer(t *testing.T) {
	r := newTestReceiver(t, goldSet(t, 2))
	if _, err := r.Receive(nil); err == nil {
		t.Fatal("empty buffer must error")
	}
}

func TestReceiveNoiseOnlyNoDetection(t *testing.T) {
	r := newTestReceiver(t, goldSet(t, 2))
	rng := rand.New(rand.NewSource(1))
	buf := channel.NoiseVector(rng, 20000, testNoise)
	res, err := r.Receive(buf)
	if err != nil {
		t.Fatal(err)
	}
	if res.FrameDetected {
		t.Error("noise-only buffer must not trigger frame detection")
	}
	if len(res.Frames) != 0 {
		t.Errorf("decoded %d frames from noise", len(res.Frames))
	}
}

func TestReceiveSingleTag(t *testing.T) {
	set := goldSet(t, 2)
	payload := []byte("hello tag zero")
	lead := 40 * testSPC
	buf := buildScenario(t, set, [][]byte{payload}, []complex128{amp(15)}, []int{0}, lead, 200)
	r := newTestReceiver(t, set)
	res, err := r.Receive(buf)
	if err != nil {
		t.Fatal(err)
	}
	if !res.FrameDetected {
		t.Fatal("frame not detected")
	}
	if len(res.Frames) != 1 {
		t.Fatalf("detected %d users, want 1", len(res.Frames))
	}
	f := res.Frames[0]
	if f.TagID != 0 {
		t.Errorf("TagID = %d", f.TagID)
	}
	if !f.OK {
		t.Fatalf("decode failed: %v", f.Err)
	}
	if !bytes.Equal(f.Payload, payload) {
		t.Errorf("payload %q, want %q", f.Payload, payload)
	}
	if f.Corr < 0.5 {
		t.Errorf("preamble correlation %v suspiciously low", f.Corr)
	}
	// The user's refined lag must be near the true frame start.
	if d := f.Lag - lead; d < -testSPC || d > testSPC {
		t.Errorf("lag %d, true start %d", f.Lag, lead)
	}
}

func TestReceiveTwoConcurrentTags(t *testing.T) {
	set := goldSet(t, 2)
	p0 := []byte("tag-zero-data")
	p1 := []byte("tag-one-data!")
	lead := 40 * testSPC
	buf := buildScenario(t, set,
		[][]byte{p0, p1},
		[]complex128{amp(15), amp(14) * complex(0, 1)}, // different phases
		[]int{0, 2}, // slight asynchrony
		lead, 200)
	r := newTestReceiver(t, set)
	res, err := r.Receive(buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Frames) != 2 {
		t.Fatalf("detected %d users, want 2", len(res.Frames))
	}
	got := map[int][]byte{}
	for _, f := range res.Frames {
		if !f.OK {
			t.Fatalf("tag %d decode failed: %v", f.TagID, f.Err)
		}
		got[f.TagID] = f.Payload
	}
	if !bytes.Equal(got[0], p0) || !bytes.Equal(got[1], p1) {
		t.Errorf("payloads: %q / %q", got[0], got[1])
	}
}

func TestReceive2NCFiveTags(t *testing.T) {
	set, err := pn.New2NCSet(5)
	if err != nil {
		t.Fatal(err)
	}
	payloads := make([][]byte, 5)
	gains := make([]complex128, 5)
	offsets := make([]int, 5)
	for i := range payloads {
		payloads[i] = []byte{byte(i), byte(i * 3), 0xAB}
		gains[i] = amp(16) * complex(math.Cos(float64(i)), math.Sin(float64(i)))
	}
	lead := 30 * testSPC
	buf := buildScenario(t, set, payloads, gains, offsets, lead, 200)
	r := newTestReceiver(t, set)
	res, err := r.Receive(buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Frames) != 5 {
		t.Fatalf("detected %d users, want 5", len(res.Frames))
	}
	for _, f := range res.Frames {
		if !f.OK {
			t.Errorf("tag %d failed: %v", f.TagID, f.Err)
			continue
		}
		if !bytes.Equal(f.Payload, payloads[f.TagID]) {
			t.Errorf("tag %d payload %x", f.TagID, f.Payload)
		}
	}
}

func TestReceiveOnlyActiveUsersDetected(t *testing.T) {
	set := goldSet(t, 4)
	payloads := [][]byte{[]byte("only-tag-2")}
	// Build a scenario where only code 2 transmits.
	rng := rand.New(rand.NewSource(99))
	tg, err := tag.New(2, tag.Config{Code: set.Codes[2], SamplesPerChip: testSPC}, geom.Point{})
	if err != nil {
		t.Fatal(err)
	}
	w, err := tg.Waveform(payloads[0])
	if err != nil {
		t.Fatal(err)
	}
	lead := 40 * testSPC
	buf := make([]complex128, lead+len(w)+200)
	for k, v := range w {
		buf[lead+k] += v * amp(15)
	}
	channel.AWGN(rng, buf, testNoise)

	r := newTestReceiver(t, set)
	res, err := r.Receive(buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Frames) != 1 || res.Frames[0].TagID != 2 {
		ids := []int{}
		for _, f := range res.Frames {
			ids = append(ids, f.TagID)
		}
		t.Fatalf("detected users %v, want [2]", ids)
	}
	if !res.Frames[0].OK {
		t.Errorf("decode failed: %v", res.Frames[0].Err)
	}
}

func TestReceiveTruncatedFrame(t *testing.T) {
	set := goldSet(t, 1)
	payload := bytes.Repeat([]byte{0x5A}, 30)
	lead := 40 * testSPC
	buf := buildScenario(t, set, [][]byte{payload}, []complex128{amp(15)}, []int{0}, lead, 200)
	// Chop the buffer in the middle of the payload.
	buf = buf[:lead+len(buf[lead:])/2]
	r := newTestReceiver(t, set)
	res, err := r.Receive(buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Frames) == 1 {
		f := res.Frames[0]
		if f.OK {
			t.Error("truncated frame must not pass CRC")
		}
		if f.Err == nil {
			t.Error("truncated frame must carry an error")
		}
	}
}

func TestAckIDs(t *testing.T) {
	res := Result{Frames: []DecodedFrame{
		{TagID: 0, OK: true},
		{TagID: 1, OK: false},
		{TagID: 3, OK: true},
	}}
	ids := res.AckIDs()
	if len(ids) != 2 || ids[0] != 0 || ids[1] != 3 {
		t.Errorf("AckIDs = %v, want [0 3]", ids)
	}
	if got := (Result{}).AckIDs(); got != nil {
		t.Errorf("empty result AckIDs = %v", got)
	}
}

func TestReceiveSNREstimatePlausible(t *testing.T) {
	set := goldSet(t, 1)
	lead := 60 * testSPC
	buf := buildScenario(t, set, [][]byte{[]byte("snr-check")}, []complex128{amp(20)}, []int{0}, lead, 100)
	r := newTestReceiver(t, set)
	res, err := r.Receive(buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Frames) != 1 {
		t.Fatal("no frame")
	}
	snr := res.Frames[0].SNRdB
	if snr < 10 || snr > 30 {
		t.Errorf("SNR estimate %v dB, want near 20", snr)
	}
	if res.NoiseW <= 0 {
		t.Error("noise estimate must be positive")
	}
}

func TestEnergyDetectFiresNearStart(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	const lead = 2000
	power := make([]float64, 6000)
	for i := range power {
		power[i] = testNoise * (0.5 + rng.Float64())
	}
	for i := lead; i < len(power); i++ {
		power[i] += testNoise * 20
	}
	const short = 64
	start, found := EnergyDetect(power, 500, 3, short)
	if !found {
		t.Fatal("not detected")
	}
	// True start must lie within [start, start+short].
	if lead < start || lead > start+short {
		t.Errorf("start %d does not bracket true start %d", start, lead)
	}
}

func TestEnergyDetectQuietBuffer(t *testing.T) {
	power := make([]float64, 1000)
	for i := range power {
		power[i] = testNoise
	}
	if _, found := EnergyDetect(power, 100, 3, 64); found {
		t.Error("constant power must not trigger")
	}
	if _, found := EnergyDetect(nil, 100, 3, 64); found {
		t.Error("empty input must not trigger")
	}
}

func TestEnergyDetectParameterClamps(t *testing.T) {
	power := make([]float64, 100)
	for i := 50; i < 100; i++ {
		power[i] = 1
	}
	for i := 0; i < 50; i++ {
		power[i] = 1e-6
	}
	if _, found := EnergyDetect(power, 0, 3, 0); !found {
		t.Error("clamped parameters must still detect the step")
	}
}
