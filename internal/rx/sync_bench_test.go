package rx

import (
	"math"
	"math/rand"
	"testing"

	"cbma/internal/channel"
	"cbma/internal/dsp"
	"cbma/internal/pn"
)

// benchDetectBuffer is a long noise-only power buffer: the worst case for
// the detector, which must scan every comparator position without ever
// firing. Window sizes match the fig8a quick campaign (31-chip Gold codes
// at 4 samples/chip: short 124, long 496).
func benchDetectBuffer(b *testing.B, n int) []float64 {
	b.Helper()
	rng := rand.New(rand.NewSource(3))
	power := make([]float64, n)
	for i := range power {
		power[i] = testNoise * (0.5 + rng.Float64())
	}
	return power
}

func BenchmarkEnergyDetect(b *testing.B) {
	power := benchDetectBuffer(b, 16384)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, found := EnergyDetect(power, 496, 3, 124); found {
			b.Fatal("noise-only buffer must not detect")
		}
	}
}

func BenchmarkEnergyDetectPrefix(b *testing.B) {
	power := benchDetectBuffer(b, 16384)
	var prefix []float64
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// The prefix sum is rebuilt every round in the receiver too, so it
		// belongs inside the measured region.
		prefix = dsp.PrefixSumInto(prefix, power)
		if _, found := energyDetectPrefix(prefix, 496, 3, 124); found {
			b.Fatal("noise-only buffer must not detect")
		}
	}
}

// benchAlignState precomputes everything receive() hands the alignment
// stage on the 10-tag gold31 collision: the power and envelope vectors,
// the prefix sums, the coarse detector start and the noise estimate.
func benchAlignState(b *testing.B) (r *Receiver, env, power []float64, coarse int, noiseW float64) {
	b.Helper()
	set, err := pn.NewGoldSet(5, 10)
	if err != nil {
		b.Fatal(err)
	}
	r, err = New(Config{Codes: set, SamplesPerChip: testSPC, NoiseFloorW: testNoise, SearchChips: 1})
	if err != nil {
		b.Fatal(err)
	}
	payloads := make([][]byte, 10)
	gains := make([]complex128, 10)
	offsets := []int{0, 1, -2, 3, 0, -1, 2, 0, 1, -3}
	for i := range payloads {
		payloads[i] = []byte{byte(i), 0xA5, byte(3 * i), 0x0F}
		phi := 2 * math.Pi * float64(i) / 11
		gains[i] = amp(14+float64(i)) * complex(math.Cos(phi), math.Sin(phi))
	}
	sig := buildScenario(b, set, payloads, gains, offsets, 60*testSPC, 300)

	power = dsp.MagSquaredInto(nil, sig)
	env = dsp.MagnitudeInto(nil, sig)
	r.powerPrefix = dsp.PrefixSumInto(r.powerPrefix, power)
	coarse, found := EnergyDetect(power, r.cfg.SyncWindow, r.cfg.SyncThresholdDB, r.shortWindow())
	if !found {
		b.Fatal("benchmark scenario must be detectable")
	}
	noiseW = r.noiseEstimate(power, coarse)
	return r, env, power, coarse, noiseW
}

func BenchmarkGlobalAlign(b *testing.B) {
	r, env, power, coarse, noiseW := benchAlignState(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok := r.globalAlign(env, power, coarse, noiseW, -1); !ok {
			b.Fatal("alignment must succeed")
		}
	}
}

func BenchmarkGlobalAlignCoarseFine(b *testing.B) {
	r, env, power, coarse, noiseW := benchAlignState(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok := r.alignCoarseFine(env, power, coarse, noiseW, -1); !ok {
			b.Fatal("alignment must succeed")
		}
	}
}

// BenchmarkReceiveFastVsReference reports the end-to-end receiver cost of
// both sync paths on the same buffer, so the committed BENCH numbers have a
// package-local cross-check.
func BenchmarkReceiveFastVsReference(b *testing.B) {
	for _, ref := range []bool{false, true} {
		name := "fast"
		if ref {
			name = "reference"
		}
		b.Run(name, func(b *testing.B) {
			set, err := pn.NewGoldSet(5, 10)
			if err != nil {
				b.Fatal(err)
			}
			r, err := New(Config{
				Codes: set, SamplesPerChip: testSPC, NoiseFloorW: testNoise,
				SearchChips: 1, ReferenceSync: ref,
			})
			if err != nil {
				b.Fatal(err)
			}
			payloads := make([][]byte, 10)
			gains := make([]complex128, 10)
			for i := range payloads {
				payloads[i] = []byte{byte(i), 0x5A}
				gains[i] = amp(16)
			}
			sig := buildScenario(b, set, payloads, gains, make([]int, 10), 60*testSPC, 200)
			rng := rand.New(rand.NewSource(9))
			noise := channel.NoiseVector(rng, len(sig), testNoise)
			for i := range sig {
				sig[i] += noise[i]
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := r.Receive(sig); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
