package rx

import (
	"bytes"
	"math"
	"math/rand"
	"strings"
	"testing"
	"time"

	"cbma/internal/channel"
	"cbma/internal/dsp"
	"cbma/internal/obs"
	"cbma/internal/pn"
)

func TestBackdateStartClamp(t *testing.T) {
	tests := []struct {
		fire, sw, want int
	}{
		{fire: 100, sw: 64, want: 37},
		{fire: 63, sw: 64, want: 0}, // exactly at the clamp boundary
		{fire: 10, sw: 64, want: 0}, // back-date would be negative
		{fire: 0, sw: 1, want: 0},   // degenerate window
		{fire: 5, sw: 5, want: 1},   // first post-warmup fire index
	}
	for _, tc := range tests {
		if got := backdateStart(tc.fire, tc.sw); got != tc.want {
			t.Errorf("backdateStart(%d, %d) = %d, want %d", tc.fire, tc.sw, tc.want, got)
		}
	}
}

// TestEnergyDetectFiresFirstPostWarmupSample pins the earliest possible
// detection: a power step landing exactly on the first comparator check
// (index shortWindow) fires immediately, and the back-dated start is 1 —
// the detector can never report the unreachable negative-start region.
func TestEnergyDetectFiresFirstPostWarmupSample(t *testing.T) {
	const sw, lw = 8, 32
	power := make([]float64, 4*sw)
	for i := range power {
		power[i] = 1
	}
	for i := sw; i < len(power); i++ {
		power[i] = 100 // step exactly at the first post-warmup sample
	}
	start, found := EnergyDetect(power, lw, 3, sw)
	if !found || start != 1 {
		t.Fatalf("EnergyDetect = (%d, %v), want (1, true)", start, found)
	}
	pstart, pfound := energyDetectPrefix(dsp.PrefixSumInto(nil, power), lw, 3, sw)
	if pstart != start || pfound != found {
		t.Fatalf("prefix detector = (%d, %v), reference = (%d, %v)", pstart, pfound, start, found)
	}
}

// TestEnergyDetectPrefixShortBuffer mirrors TestEnergyDetectShorterThanWarmup
// for the prefix-sum detector, including the buffer-equals-window edge where
// warmup consumes every sample.
func TestEnergyDetectPrefixShortBuffer(t *testing.T) {
	for _, n := range []int{0, 1, 5, 32, 63, 64} {
		power := make([]float64, n)
		for i := range power {
			power[i] = 1
		}
		p := dsp.PrefixSumInto(nil, power)
		if _, found := energyDetectPrefix(p, 100, 3, 64); found {
			t.Errorf("len %d buffer shorter than the warmup window must not detect", n)
		}
		if _, found := EnergyDetect(power, 100, 3, 64); found {
			t.Errorf("len %d: reference detector disagrees", n)
		}
	}
}

// TestEnergyDetectPrefixMatchesReference sweeps window geometries — long
// window larger than the buffer, short window larger than the long one,
// steps at various positions, quiet buffers — and requires the prefix-sum
// detector to reproduce the reference decisions on every one.
func TestEnergyDetectPrefixMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	type geom struct{ n, lw, sw int }
	geoms := []geom{
		{n: 2000, lw: 496, sw: 124},
		{n: 2000, lw: 16, sw: 124}, // short window dwarfs the long one
		{n: 2000, lw: 4096, sw: 64},
		{n: 300, lw: 2, sw: 1},
		{n: 65, lw: 7, sw: 64},
		{n: 500, lw: 0, sw: 0}, // both clamped to minimums
	}
	for gi, g := range geoms {
		for trial := 0; trial < 40; trial++ {
			power := make([]float64, g.n)
			for i := range power {
				power[i] = testNoise * (0.5 + rng.Float64())
			}
			if trial%4 != 0 { // every 4th buffer stays noise-only
				at := rng.Intn(g.n)
				for i := at; i < g.n; i++ {
					power[i] += testNoise * (20 + 10*rng.Float64())
				}
			}
			start, found := EnergyDetect(power, g.lw, 3, g.sw)
			p := dsp.PrefixSumInto(nil, power)
			pstart, pfound := energyDetectPrefix(p, g.lw, 3, g.sw)
			if start != pstart || found != pfound {
				t.Fatalf("geom %d trial %d: reference (%d,%v) vs prefix (%d,%v)",
					gi, trial, start, found, pstart, pfound)
			}
		}
	}
}

// syncPair builds reference- and fast-path receivers over the same config.
func syncPair(t *testing.T, cfg Config) (ref, fast *Receiver) {
	t.Helper()
	refCfg := cfg
	refCfg.ReferenceSync = true
	ref, err := New(refCfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.ReferenceSync = false
	fast, err = New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return ref, fast
}

// TestSyncEquivalenceReceive is the receiver-level half of the tentpole
// guarantee: the fast sync path (prefix-sum detection, windowed envelope,
// coarse-to-fine alignment) and the reference path produce deeply equal
// Results — every field, including float statistics — across dense Gold
// collisions (direct and FFT alignment regimes), sparse 2NC sets, SIC,
// timing hints and noise-only buffers, with scratch reuse across calls.
func TestSyncEquivalenceReceive(t *testing.T) {
	gold31 := goldSet(t, 10)
	gold127 := gold127Set(t, 4)
	twonc, err := pn.New2NCSet(4)
	if err != nil {
		t.Fatal(err)
	}
	mkPayloads := func(n, l int) [][]byte {
		ps := make([][]byte, n)
		for i := range ps {
			p := make([]byte, l)
			for k := range p {
				p[k] = byte(31*i + 7*k + 5)
			}
			ps[i] = p
		}
		return ps
	}
	phased := func(n int, base float64) []complex128 {
		gs := make([]complex128, n)
		for i := range gs {
			phi := 2 * math.Pi * float64(i) / float64(n+1)
			gs[i] = amp(base+float64(i)) * complex(math.Cos(phi), math.Sin(phi))
		}
		return gs
	}
	lead := 60 * testSPC

	cases := []struct {
		name    string
		set     *pn.Set
		cfg     Config
		buf     []complex128
		nominal int // -1 → Receive
	}{}
	add := func(name string, set *pn.Set, cfg Config, buf []complex128, nominal int) {
		cases = append(cases, struct {
			name    string
			set     *pn.Set
			cfg     Config
			buf     []complex128
			nominal int
		}{name, set, cfg, buf, nominal})
	}

	base := func(set *pn.Set) Config {
		return Config{Codes: set, SamplesPerChip: testSPC, NoiseFloorW: testNoise, SearchChips: 1}
	}

	offs := []int{0, 1, -2, 3, 0, -1, 2, 0, 1, -3}
	add("gold31 10-tag collision", gold31, base(gold31),
		buildScenario(t, gold31, mkPayloads(10, 6), phased(10, 14), offs[:10], lead, 300), -1)
	add("gold31 hinted", gold31, base(gold31),
		buildScenario(t, gold31, mkPayloads(6, 4), phased(6, 16), offs[:6], lead, 200), lead)
	add("gold127 fft-align regime", gold127, base(gold127),
		buildScenario(t, gold127, mkPayloads(4, 5), phased(4, 18), offs[:4], lead, 250), -1)
	add("2nc sparse shift-structured", twonc, base(twonc),
		buildScenario(t, twonc, mkPayloads(4, 3), phased(4, 18), []int{0, 0, 0, 0}, lead, 200), lead)
	sicCfg := base(gold31)
	sicCfg.SIC = true
	add("sic near-far", gold31, sicCfg,
		buildScenario(t, gold31, mkPayloads(6, 4), phased(6, 12), offs[:6], lead, 250), -1)
	rng := rand.New(rand.NewSource(5))
	add("noise only", gold31, base(gold31), channel.NoiseVector(rng, 20000, testNoise), -1)
	full := buildScenario(t, gold31, mkPayloads(3, 8), phased(3, 17), offs[:3], lead, 0)
	add("truncated mid-frame", gold31, base(gold31), full[:len(full)-len(full)/3], -1)
	deafCfg := base(gold31)
	deafCfg.SyncThresholdDB = 200
	deafCfg.ResyncFallback = true
	add("deaf resync fallback", gold31, deafCfg,
		buildScenario(t, gold31, mkPayloads(3, 5), phased(3, 16), offs[:3], lead, 200), lead)

	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			ref, fast := syncPair(t, tc.cfg)
			recv := func(r *Receiver) Result {
				var res Result
				var err error
				if tc.nominal >= 0 {
					res, err = r.ReceiveAt(tc.buf, tc.nominal)
				} else {
					res, err = r.Receive(tc.buf)
				}
				if err != nil {
					t.Fatal(err)
				}
				return res
			}
			want := recv(ref)
			got := recv(fast)
			sameResult(t, tc.name, want, got)
			// Scratch reuse must not leak state between calls on either path.
			sameResult(t, tc.name+" ref rerun", want, recv(ref))
			sameResult(t, tc.name+" fast rerun", got, recv(fast))
			// Clones (the parallel-worker path) share templates and bank
			// spectra but must reproduce the original exactly.
			sameResult(t, tc.name+" fast clone", got, recv(fast.Clone()))
		})
	}
}

// TestFFTFallbackInstrumented forces the alignment sweep's filter-bank call
// to fail (a bank with more templates than the receiver has row scratch) and
// checks the previously silent direct-path fallback now shows up as a
// counter increment and a JSONL event — while still decoding identically to
// a healthy receiver.
func TestFFTFallbackInstrumented(t *testing.T) {
	const nTags = 4
	set := gold127Set(t, nTags)
	cfg := Config{
		Codes:          set,
		SamplesPerChip: testSPC,
		NoiseFloorW:    testNoise,
		SearchChips:    1,
		ReferenceSync:  true, // the reference alignment is the bank consumer
	}
	healthy, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	alignCount := healthy.shortWindow() + 4*testSPC + 1
	if !healthy.bank.ShouldUseFFT(alignCount, nTags, false) {
		t.Fatal("alignment window no longer clears the FFT cutover; pick a longer code")
	}

	var buf bytes.Buffer
	sink := obs.NewSink(&buf, 1<<16)
	o := obs.New(obs.Config{Clock: obs.StepClock(time.Unix(0, 0), time.Microsecond), Sink: sink})
	cfg.Obs = o
	broken, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// One extra template: CorrelateRealAll(ids=nil) then needs more rows
	// than the receiver grew, which errors after the cutover check.
	tmpls := make([][]float64, 0, nTags+1)
	tmpls = append(tmpls, broken.preambleTmpl...)
	tmpls = append(tmpls, broken.preambleTmpl[0])
	bank, err := dsp.NewFilterBank(tmpls)
	if err != nil {
		t.Fatal(err)
	}
	broken.bank = bank

	payloads := make([][]byte, nTags)
	gains := make([]complex128, nTags)
	offsets := make([]int, nTags)
	for i := range payloads {
		payloads[i] = []byte{byte(i), 0x5A, byte(7 * i)}
		gains[i] = amp(18)
	}
	lead := 60 * testSPC
	sig := buildScenario(t, set, payloads, gains, offsets, lead, 200)

	want, err := healthy.Receive(sig)
	if err != nil {
		t.Fatal(err)
	}
	got, err := broken.Receive(sig)
	if err != nil {
		t.Fatal(err)
	}
	sameResult(t, "fallback decode", want, got)
	if n := o.Counter("rx.fft_fallbacks").Value(); n < 1 {
		t.Errorf("rx.fft_fallbacks = %d, want >= 1", n)
	}
	if err := sink.Close(); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, `"rx_fft_fallback"`) || !strings.Contains(out, `"where":"align"`) {
		t.Errorf("event log missing rx_fft_fallback/align event:\n%s", out)
	}
}
