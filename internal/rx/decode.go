package rx

import (
	"fmt"
	"math"

	"cbma/internal/frame"
)

// decodeUser recovers one user's frame starting at lag: §III-B decoding,
// done coherently. Each bit correlates the complex baseband window of one
// bit period with the user's discriminant template and projects the result
// onto the channel phase estimated from the preamble (phasor) — equivalent
// to comparing the correlation against the PN sequence representing '1'
// with that representing '0', but with multi-access interference combining
// linearly so phase diversity averages it down. The header (preamble +
// length byte) is decoded first so the total frame extent is known, then
// payload and CRC follow and frame.Unmarshal validates the result.
func (r *Receiver) decodeUser(x []complex128, id, lag int, phasor complex128) DecodedFrame {
	out := DecodedFrame{TagID: id, Lag: lag}
	tmpl := r.bitTmpl[id]
	bitLen := len(tmpl)
	pr, pi := real(phasor), imag(phasor)

	pre, err := r.cfg.Frame.Preamble()
	if err != nil {
		out.Err = err
		return out
	}
	headerBits := len(pre) + 8

	// Decision-directed phase tracking (Config.PhaseTracking): after each
	// decision the phasor estimate is steered toward the observed
	// correlation (negated for a zero bit), with a first-order loop gain
	// small enough to average over multi-access interference yet fast
	// enough to follow tens-of-ppm oscillator offsets across a frame.
	const trackGain = 0.15
	track := func(dot complex128, bit byte) {
		if !r.cfg.PhaseTracking {
			return
		}
		if bit == 0 {
			dot = -dot
		}
		mag := math.Hypot(real(dot), imag(dot))
		if mag == 0 {
			return
		}
		nr := (1-trackGain)*pr + trackGain*real(dot)/mag
		ni := (1-trackGain)*pi + trackGain*imag(dot)/mag
		norm := math.Hypot(nr, ni)
		if norm == 0 {
			return
		}
		pr, pi = nr/norm, ni/norm
	}

	bits := make([]byte, 0, headerBits+16)
	readBit := func(k int) (byte, error) {
		startIdx := lag + k*bitLen
		endIdx := startIdx + bitLen
		if startIdx < 0 || endIdx > len(x) {
			return 0, fmt.Errorf("%w: bit %d needs samples [%d,%d)", ErrShortRead, k, startIdx, endIdx)
		}
		dot := complexRealDot(x[startIdx:endIdx], tmpl)
		// Project onto the channel phase: Re(conj(phasor)·dot).
		var bit byte
		if real(dot)*pr+imag(dot)*pi > 0 {
			bit = 1
		}
		track(dot, bit)
		return bit, nil
	}

	for k := 0; k < headerBits; k++ {
		b, err := readBit(k)
		if err != nil {
			out.Err = err
			return out
		}
		bits = append(bits, b)
	}
	// Resolve the self-impostor inversion (see detectUser): a detection one
	// chip off on a PPM-style code decodes the exact bit-inverse of the true
	// frame. If the header preamble is the exact inverse of the expected
	// pattern, flip every decision; any other misalignment still fails the
	// preamble or CRC check below.
	invert := byte(0)
	inverted := true
	for i, want := range pre {
		if bits[i] != 1-want {
			inverted = false
			break
		}
	}
	if inverted {
		invert = 1
		for i := range bits {
			bits[i] ^= 1
		}
	}
	// Parse the length byte (bits headerBits-8 .. headerBits).
	var length int
	for _, b := range bits[len(pre):] {
		length = length<<1 | int(b)
	}
	if length > frame.MaxPayload {
		out.Err = fmt.Errorf("%w: decoded length %d", frame.ErrLength, length)
		return out
	}
	total := headerBits + 8*length + 16
	for k := headerBits; k < total; k++ {
		b, err := readBit(k)
		if err != nil {
			out.Err = err
			return out
		}
		bits = append(bits, b^invert)
	}
	f, err := frame.Unmarshal(bits, r.cfg.Frame)
	if err != nil {
		out.Err = err
		return out
	}
	out.OK = true
	out.Payload = f.Payload
	return out
}
