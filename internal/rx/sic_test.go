package rx

import (
	"bytes"
	"errors"
	"math"
	"math/cmplx"
	"math/rand"
	"testing"

	"cbma/internal/channel"
	"cbma/internal/geom"
	"cbma/internal/pn"
	"cbma/internal/tag"
)

func TestSolveComplexKnownSystem(t *testing.T) {
	// [2 1; 1 3]·a = [5+1i; 10-2i] → a = [1+1i, 3-1i]
	g := [][]float64{{2, 1}, {1, 3}}
	b := []complex128{5 + 1i, 10 - 2i}
	a, ok := solveComplex(g, b)
	if !ok {
		t.Fatal("solver failed")
	}
	want := []complex128{1 + 1i, 3 - 1i}
	for i := range want {
		if cmplx.Abs(a[i]-want[i]) > 1e-9 {
			t.Errorf("a[%d] = %v, want %v", i, a[i], want[i])
		}
	}
}

func TestSolveComplexSingular(t *testing.T) {
	g := [][]float64{{1, 1}, {1, 1}}
	b := []complex128{1, 1}
	if _, ok := solveComplex(g, b); ok {
		t.Fatal("singular system must report failure")
	}
}

func TestSolveComplexIdentity(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	const k = 5
	g := make([][]float64, k)
	b := make([]complex128, k)
	for i := range g {
		g[i] = make([]float64, k)
		g[i][i] = 1
		b[i] = complex(rng.NormFloat64(), rng.NormFloat64())
	}
	a, ok := solveComplex(g, b)
	if !ok {
		t.Fatal("identity solve failed")
	}
	for i := range b {
		if a[i] != b[i] {
			t.Errorf("a[%d] = %v, want %v", i, a[i], b[i])
		}
	}
}

func TestSuppressGhosts(t *testing.T) {
	frames := []DecodedFrame{
		{TagID: 0, OK: true, Corr: 0.5, Payload: []byte("abc")},
		{TagID: 1, OK: true, Corr: 0.2, Payload: []byte("abc")}, // ghost of 0
		{TagID: 2, OK: true, Corr: 0.4, Payload: []byte("xyz")},
		{TagID: 3, OK: false, Corr: 0.9, Payload: []byte("abc")}, // already failed
	}
	suppressGhosts(frames)
	if !frames[0].OK {
		t.Error("strongest duplicate must survive")
	}
	if frames[1].OK || !errors.Is(frames[1].Err, ErrGhost) {
		t.Errorf("weaker duplicate must be ghost-suppressed: %+v", frames[1])
	}
	if !frames[2].OK {
		t.Error("unique payload must survive")
	}
	if errors.Is(frames[3].Err, ErrGhost) {
		t.Error("already-failed frames are not ghost candidates")
	}
}

func TestSuppressGhostsKeepsLaterStronger(t *testing.T) {
	frames := []DecodedFrame{
		{TagID: 0, OK: true, Corr: 0.2, Payload: []byte("p")},
		{TagID: 1, OK: true, Corr: 0.6, Payload: []byte("p")},
	}
	suppressGhosts(frames)
	if frames[0].OK || !frames[1].OK {
		t.Errorf("the stronger (later) frame must win: %+v", frames)
	}
}

// buildTenTagBuffer synthesizes a collision of the given active Gold tags.
func buildTenTagBuffer(t *testing.T, set *pn.Set, active []int, rng *rand.Rand, spc int, noise float64) ([]complex128, map[int][]byte, int) {
	t.Helper()
	const lead = 2000
	payloads := map[int][]byte{}
	var buf []complex128
	for _, id := range active {
		tg, err := tag.New(id, tag.Config{Code: set.Codes[id], SamplesPerChip: spc}, geom.Point{})
		if err != nil {
			t.Fatal(err)
		}
		p := make([]byte, 10)
		rng.Read(p)
		payloads[id] = p
		w, err := tg.Waveform(p)
		if err != nil {
			t.Fatal(err)
		}
		if buf == nil {
			buf = make([]complex128, lead+len(w)+300)
		}
		phase := rng.Float64() * 2 * math.Pi
		amp := complex(math.Sqrt(noise*200), 0) * cmplx.Exp(complex(0, phase))
		for k, v := range w {
			buf[lead+k] += v * amp
		}
	}
	channel.AWGN(rng, buf, noise)
	return buf, payloads, lead
}

func TestSICDecodesAllActiveExactly(t *testing.T) {
	set, err := pn.NewGoldSet(5, 10)
	if err != nil {
		t.Fatal(err)
	}
	const spc = 4
	const noise = 1e-10
	r, err := New(Config{Codes: set, SamplesPerChip: spc, NoiseFloorW: noise, SIC: true})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(3))
	const trials = 10
	exact := 0
	for trial := 0; trial < trials; trial++ {
		var active []int
		for i := 0; i < 10; i++ {
			if rng.Float64() < 0.5 {
				active = append(active, i)
			}
		}
		if len(active) == 0 {
			active = []int{trial % 10}
		}
		buf, payloads, lead := buildTenTagBuffer(t, set, active, rng, spc, noise)
		res, err := r.ReceiveAt(buf, lead)
		if err != nil {
			t.Fatal(err)
		}
		got := map[int][]byte{}
		for _, f := range res.Frames {
			if !f.OK || errors.Is(f.Err, ErrGhost) {
				continue
			}
			got[f.TagID] = f.Payload
		}
		ok := len(got) == len(active)
		for _, id := range active {
			if !bytes.Equal(got[id], payloads[id]) {
				ok = false
			}
		}
		if ok {
			exact++
		}
	}
	// Rare per-trial errors (copy-ghosts of CRC-failed frames) are a known
	// residual — see EXPERIMENTS.md; the bulk must decode exactly.
	if exact < trials-2 {
		t.Errorf("only %d/%d trials decoded the exact active set", exact, trials)
	}
}

func TestReceiveAtAnchorsLoneSparseTag(t *testing.T) {
	// A single 2NC tag is only identifiable with the reader timing hint:
	// its energy edge reveals its slot, not the frame start.
	set, err := pn.New2NCSet(10)
	if err != nil {
		t.Fatal(err)
	}
	const spc = 8
	const noise = 1e-10
	r, err := New(Config{Codes: set, SamplesPerChip: spc, NoiseFloorW: noise})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(4))
	for _, active := range []int{0, 3, 7, 9} {
		tg, err := tag.New(active, tag.Config{Code: set.Codes[active], SamplesPerChip: spc}, geom.Point{})
		if err != nil {
			t.Fatal(err)
		}
		payload := []byte{0xC0, 0xFF, 0xEE}
		w, err := tg.Waveform(payload)
		if err != nil {
			t.Fatal(err)
		}
		const lead = 2560
		buf := make([]complex128, lead+len(w)+300)
		amp := complex(math.Sqrt(noise*100), 0)
		for k, v := range w {
			buf[lead+k] += v * amp
		}
		channel.AWGN(rng, buf, noise)
		res, err := r.ReceiveAt(buf, lead)
		if err != nil {
			t.Fatal(err)
		}
		okIDs := res.AckIDs()
		if len(okIDs) != 1 || okIDs[0] != active {
			t.Errorf("active=%d: decoded IDs %v, want [%d]", active, okIDs, active)
		}
	}
}

func TestRefineEdgeFindsRise(t *testing.T) {
	set, _ := pn.NewGoldSet(5, 2)
	r, err := New(Config{Codes: set, SamplesPerChip: 4, NoiseFloorW: 1e-10})
	if err != nil {
		t.Fatal(err)
	}
	const n = 4000
	const noise = 1e-10
	power := make([]float64, n)
	rng := rand.New(rand.NewSource(5))
	for i := range power {
		power[i] = noise * rng.ExpFloat64()
	}
	const rise = 2000
	for i := rise; i < n; i++ {
		power[i] += noise * 50
	}
	edge := r.refineEdge(power, rise-100, noise)
	if edge < rise-2 || edge > rise+16 {
		t.Errorf("edge %d, want ≈%d", edge, rise)
	}
	// Zero noise estimate falls back to the coarse start.
	if got := r.refineEdge(power, 123, 0); got != 123 {
		t.Errorf("fallback edge %d, want 123", got)
	}
}
