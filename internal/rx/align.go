package rx

import (
	"math"

	"cbma/internal/dsp"
)

// This file is the receiver's fast timing-acquisition path: a prefix-sum
// edge refiner and a coarse-to-fine replacement for globalAlign's
// exhaustive lag×code scan. Config.ReferenceSync selects the original
// implementations in detect.go; the two paths make identical decisions on
// every covered scenario (TestSyncEquivalence*, TestRunSyncEquivalence),
// which is what lets campaigns keep bit-identical Metrics while the sync
// phase drops severalfold in cost.

// magnitudeWindowInto fills dst[lo:hi] with |x| — the same math.Hypot
// arithmetic as dsp.MagnitudeInto, so filled samples are bit-identical with
// a full fill — and zeroes the rest, keeping reused scratch deterministic.
//
//cbma:hotpath
func magnitudeWindowInto(dst []float64, x []complex128, lo, hi int) []float64 {
	if cap(dst) < len(x) {
		dst = make([]float64, len(x))
	}
	dst = dst[:len(x)]
	for i := 0; i < lo; i++ {
		dst[i] = 0
	}
	for i := lo; i < hi; i++ {
		dst[i] = math.Hypot(real(x[i]), imag(x[i]))
	}
	for i := hi; i < len(dst); i++ {
		dst[i] = 0
	}
	return dst
}

// refineEdgePrefix is refineEdge with the per-position 16-sample rescan
// replaced by an O(1) prefix-sum window (r.powerPrefix, built once per
// buffer by receive). Scan bounds, thresholds and the returned edge match
// the reference; only the window sum's floating-point association differs.
//
//cbma:hotpath
func (r *Receiver) refineEdgePrefix(power []float64, coarse int, noiseW float64) int {
	const win = 16
	lo := coarse - r.cfg.SamplesPerChip
	if lo < 0 {
		lo = 0
	}
	hi := coarse + r.shortWindow() + 2*r.cfg.SamplesPerChip
	if hi+win > len(power) {
		hi = len(power) - win
	}
	if noiseW <= 0 || hi < lo {
		return coarse
	}
	thresh := 3 * noiseW * win
	p := r.powerPrefix
	for j := lo; j <= hi; j++ {
		if p[j+win]-p[j] <= thresh {
			continue
		}
		for k := 0; k < win; k++ {
			if power[j+k] > 6*noiseW {
				return j + k
			}
		}
		return j + win/2
	}
	return coarse
}

// alignScoreAt is globalAlign's direct-path score at one lag — the summed
// positive-polarity preamble correlation across every code, weighted by the
// soft edge prior — with arithmetic identical to the reference scan
// (dsp.DotReal per code, then sum * (1/(1+d²))), so a lag evaluated by both
// paths scores bit-identically.
//
//cbma:hotpath
func (r *Receiver) alignScoreAt(env []float64, lag, edge int) float64 {
	tmplLen := len(r.preambleTmpl[0])
	var sum float64
	for id := range r.preambleTmpl {
		c, err := dsp.DotReal(env[lag:lag+tmplLen], r.preambleTmpl[id])
		if err != nil {
			return 0
		}
		if c > 0 {
			sum += c * c
		}
	}
	d := float64(lag-edge) / float64(4*r.cfg.SamplesPerChip)
	return sum * (1 / (1 + d*d))
}

// scanStride evaluates alignScoreAt on the strided lag grid anchored at
// gridLo, over the grid points falling inside [from, to], carrying the
// running best forward. Lags iterate ascending and ties keep the earlier
// lag (strict >), matching the reference scan's argmax semantics.
//
//cbma:hotpath
func (r *Receiver) scanStride(env []float64, gridLo, stride, from, to, edge, bestLag int, bestScore float64) (int, float64) {
	if from < gridLo {
		from = gridLo
	}
	if d := (from - gridLo) % stride; d != 0 {
		from += stride - d
	}
	for lag := from; lag <= to; lag += stride {
		if s := r.alignScoreAt(env, lag, edge); s > bestScore {
			bestLag, bestScore = lag, s
		}
	}
	return bestLag, bestScore
}

// refineSample is the reference path's final sample-resolution pass around
// the strided winner, shared by both alignment implementations.
//
//cbma:hotpath
func (r *Receiver) refineSample(env []float64, lo, hi, stride, edge, bestLag int, bestScore float64) (int, bool) {
	rlo, rhi := bestLag-stride+1, bestLag+stride-1
	if rlo < lo {
		rlo = lo
	}
	if rhi > hi {
		rhi = hi
	}
	for lag := rlo; lag <= rhi; lag++ {
		if s := r.alignScoreAt(env, lag, edge); s > bestScore {
			bestLag, bestScore = lag, s
		}
	}
	return bestLag, bestScore > 0
}

// alignCoarseFine is globalAlign's coarse-to-fine fast path. The insight is
// that the preamble templates are chip-constant — each sample template
// repeats one discriminant value SamplesPerChip times — so at chip-aligned
// lags the full correlation collapses to a chip-rate correlation of the
// envelope's per-chip block sums (integrate-and-dump) against templates
// SamplesPerChip times shorter. The coarse pass scores every chip-aligned
// lag at 1/spc² of the reference cost, and only the basins around the two
// best chip cells (plus the edge prior's cell, the absolute timing anchor)
// are rescored exactly on the reference's strided grid, followed by the
// same sample-resolution refinement. Because the fine stage's arithmetic is
// bit-identical to the reference scan, the result matches the reference
// whenever the reference winner's basin is among the candidates — which
// holds on every covered scenario: the correlation peak decays within one
// chip, so its cell (or a neighbour, also scanned) always dominates the
// chip-rate landscape.
//
// Windows too narrow to prune — or spc == 1, where chip rate is sample
// rate — simply run the reference scan, with identical results.
//
//cbma:hotpath
func (r *Receiver) alignCoarseFine(env []float64, power []float64, coarse int, noiseW float64, nominalStart int) (int, bool) {
	tmplLen := len(r.preambleTmpl[0])
	spc := r.cfg.SamplesPerChip
	slack := spc * 2
	lo := coarse - slack
	if lo < 0 {
		lo = 0
	}
	hi := coarse + r.shortWindow() + slack
	if hi+tmplLen > len(env) {
		hi = len(env) - tmplLen
	}
	if hi < lo {
		return 0, false
	}
	stride := spc / 2
	if stride < 1 {
		stride = 1
	}
	edge := nominalStart
	if edge < 0 {
		edge = r.refineEdgePrefix(power, coarse, noiseW)
	}
	if spc < 2 || hi-lo <= 4*spc {
		bestLag, bestScore := r.scanStride(env, lo, stride, lo, hi, edge, lo, -1.0)
		return r.refineSample(env, lo, hi, stride, edge, bestLag, bestScore)
	}

	// Coarse pass: decimate the alignment span to chip rate and correlate
	// against the chip-rate templates. Scores at chip-aligned lags equal
	// the exact scores there up to floating-point association.
	span := env[lo : hi+tmplLen]
	chips, err := dsp.DownsampleSumInto(r.envChips, span, spc)
	if err != nil {
		// Unreachable (spc ≥ 2), but degrade to the reference scan rather
		// than mis-align.
		bestLag, bestScore := r.scanStride(env, lo, stride, lo, hi, edge, lo, -1.0)
		return r.refineSample(env, lo, hi, stride, edge, bestLag, bestScore)
	}
	r.envChips = chips
	nChips := len(r.chipTmpl[0])
	cMax := (hi - lo) / spc
	if m := len(chips) - nChips; cMax > m {
		cMax = m
	}
	best1, best2 := -1, -1
	s1, s2 := 0.0, 0.0
	for c := 0; c <= cMax; c++ {
		var sum float64
		seg := chips[c:]
		for id := range r.chipTmpl {
			t := r.chipTmpl[id]
			var acc float64
			for k, v := range t {
				acc += seg[k] * v
			}
			if acc > 0 {
				sum += acc * acc
			}
		}
		if sum <= 0 {
			continue
		}
		d := float64(lo+c*spc-edge) / float64(4*spc)
		sum *= 1 / (1 + d*d)
		if best1 < 0 || sum > s1 {
			best1, best2 = c, best1
			s1, s2 = sum, s1
		} else if best2 < 0 || sum > s2 {
			best2, s2 = c, sum
		}
	}
	if best1 < 0 {
		// No chip cell carries positive-polarity correlation — essentially
		// a noise-only window, where a sample-grid peak could still hide
		// between cells. Fall back to the reference scan.
		bestLag, bestScore := r.scanStride(env, lo, stride, lo, hi, edge, lo, -1.0)
		return r.refineSample(env, lo, hi, stride, edge, bestLag, bestScore)
	}

	// Candidate basins: the two best chip cells plus the edge prior's cell,
	// each widened by one chip either side, rescored exactly on the
	// reference grid in ascending lag order (for reference-identical tie
	// breaks) without double-visiting overlap.
	ec := edge
	if ec < lo {
		ec = lo
	}
	if ec > hi {
		ec = hi
	}
	ec = (ec - lo) / spc
	if ec > cMax {
		ec = cMax
	}
	var cand [3]int
	nc := 0
	cand[nc] = best1
	nc++
	if best2 >= 0 && best2 != best1 {
		cand[nc] = best2
		nc++
	}
	if ec != best1 && ec != best2 {
		cand[nc] = ec
		nc++
	}
	// Insertion-sort the (≤3) cells ascending.
	for i := 1; i < nc; i++ {
		for j := i; j > 0 && cand[j] < cand[j-1]; j-- {
			cand[j], cand[j-1] = cand[j-1], cand[j]
		}
	}
	bestLag, bestScore := lo, -1.0
	covered := lo - 1
	for i := 0; i < nc; i++ {
		center := lo + cand[i]*spc
		from, to := center-spc, center+spc
		if from <= covered {
			from = covered + 1
		}
		if to > hi {
			to = hi
		}
		if from > to {
			continue
		}
		bestLag, bestScore = r.scanStride(env, lo, stride, from, to, edge, bestLag, bestScore)
		covered = to
	}
	return r.refineSample(env, lo, hi, stride, edge, bestLag, bestScore)
}
