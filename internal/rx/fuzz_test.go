package rx_test

import (
	"math"
	"testing"

	"cbma/internal/rx"
)

// FuzzFrameSync feeds EnergyDetect arbitrary I/Q prefixes (bytes decoded as
// interleaved int8 I/Q samples) and window/threshold parameters, asserting
// the detector never panics, never reports a start outside the buffer, and
// is deterministic. Window sizes are folded into a range proportional to
// the buffer so the fuzzer explores boundary geometry (windows longer than
// the buffer included) without just allocating gigantic delay lines.
//
// The prefix-sum detector (the receiver's default path) is run on every
// input and must agree exactly: the decoded powers are integers whose sums
// stay far below 2^53, so its prefix-difference window means are identical
// to the reference's streaming accumulator — not merely close.
func FuzzFrameSync(f *testing.F) {
	quiet := make([]byte, 256)
	burst := append(append([]byte{}, quiet...), bytesRamp(256)...)
	f.Add(quiet, 100, 6.0, 8)
	f.Add(burst, 64, 3.0, 16)
	f.Add([]byte{}, 0, 0.0, 0)
	f.Add([]byte{1, 2, 3}, -5, math.Inf(1), -7)
	// Boundary geometry: buffer shorter than the short window; a step
	// landing exactly on the first post-warmup comparator check (the
	// earliest possible fire, back-dating to start 1); short window larger
	// than the long window.
	f.Add(bytesRamp(40), 16, 3.0, 64)
	stepAtWarmup := append(make([]byte, 2*16), bytesRamp(128)...)
	f.Add(stepAtWarmup, 64, 3.0, 16)
	f.Add(stepAtWarmup, 4, 3.0, 100)
	f.Fuzz(func(t *testing.T, raw []byte, longWindow int, thresholdDB float64, shortWindow int) {
		if len(raw) > 1<<14 {
			raw = raw[:1<<14]
		}
		n := len(raw) / 2
		power := make([]float64, n)
		for i := 0; i < n; i++ {
			re := float64(int8(raw[2*i]))
			im := float64(int8(raw[2*i+1]))
			power[i] = re*re + im*im
		}
		longWindow = foldWindow(longWindow, n)
		shortWindow = foldWindow(shortWindow, n)

		start, found := rx.EnergyDetect(power, longWindow, thresholdDB, shortWindow)
		if found && (start < 0 || start >= len(power)) {
			t.Fatalf("EnergyDetect(len=%d, long=%d, th=%g, short=%d) start %d outside buffer",
				len(power), longWindow, thresholdDB, shortWindow, start)
		}
		if found && len(power) == 0 {
			t.Fatal("EnergyDetect found a frame in an empty buffer")
		}
		start2, found2 := rx.EnergyDetect(power, longWindow, thresholdDB, shortWindow)
		if start2 != start || found2 != found {
			t.Fatalf("EnergyDetect is not deterministic: (%d,%v) then (%d,%v)",
				start, found, start2, found2)
		}
		pstart, pfound := rx.EnergyDetectPrefix(power, longWindow, thresholdDB, shortWindow)
		if pstart != start || pfound != found {
			t.Fatalf("prefix detector diverges on integer powers: reference (%d,%v) vs prefix (%d,%v) (len=%d, long=%d, th=%g, short=%d)",
				start, found, pstart, pfound, len(power), longWindow, thresholdDB, shortWindow)
		}
	})
}

// foldWindow maps an arbitrary fuzzed int into [w_min, ~2n], keeping
// negative and oversized candidates in play at sane magnitudes.
func foldWindow(w, n int) int {
	span := 2*n + 8
	if w < 0 {
		w = -(w + 1) // avoids the minint negation overflow
	}
	return w%span - 4
}

// bytesRamp builds n bytes of growing amplitude: a crude frame burst.
func bytesRamp(n int) []byte {
	out := make([]byte, n)
	for i := range out {
		out[i] = byte(40 + i%80)
	}
	return out
}
