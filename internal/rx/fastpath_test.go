package rx

import (
	"bytes"
	"math"
	"reflect"
	"testing"

	"cbma/internal/dsp"
	"cbma/internal/pn"
)

func gold127Set(t testing.TB, n int) *pn.Set {
	t.Helper()
	s, err := pn.NewGoldSet(7, n)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// directReceiver builds a receiver whose filter bank can never clear the
// FFT cutover (an 8-tap dummy bank), pinning every code path to the direct
// per-lag loops. The bank is only consulted through ShouldUseFFT before any
// correlation, so the dummy templates are never actually correlated.
func directReceiver(t testing.TB, cfg Config) *Receiver {
	t.Helper()
	r, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	tiny, err := dsp.NewFilterBank([][]float64{make([]float64, 8)})
	if err != nil {
		t.Fatal(err)
	}
	r.bank = tiny
	return r
}

// TestEstimateSNRBoundedToFrame pins the estimator to a synthetic power
// profile with a known SNR: integrating only the frame extent must recover
// it exactly, while integrating through the post-frame noise tail (the old
// behaviour) biases the estimate low by the tail-to-frame duty ratio.
func TestEstimateSNRBoundedToFrame(t *testing.T) {
	set := goldSet(t, 1)
	r := newTestReceiver(t, set)
	const (
		noise = 1e-10
		snr   = 100.0 // 20 dB
		lag   = 1000
		frame = 2000
		tail  = 6000
	)
	power := make([]float64, lag+frame+tail)
	for i := range power {
		power[i] = noise
	}
	for i := lag; i < lag+frame; i++ {
		power[i] = noise * (1 + snr)
	}
	got := r.estimateSNR(power, lag, frame, noise)
	if math.Abs(got-20) > 1e-9 {
		t.Errorf("bounded estimate = %v dB, want 20", got)
	}
	// The pre-fix behaviour: integrate from lag to the end of the buffer.
	biased := r.estimateSNR(power, lag, len(power)-lag, noise)
	want := 10 * math.Log10(snr*frame/float64(frame+tail))
	if math.Abs(biased-want) > 1e-9 {
		t.Errorf("tail-integrated estimate = %v dB, want %v", biased, want)
	}
	if biased > got-5 {
		t.Errorf("tail integration must bias low: %v vs %v", biased, got)
	}
	if r.estimateSNR(power, len(power)+5, frame, noise) != 0 {
		t.Error("out-of-range lag must report 0")
	}
	if r.estimateSNR(power, lag, 0, noise) != 0 {
		t.Error("zero extent must report 0")
	}
}

// TestReceiveSNRUnbiasedByNoiseTail is the end-to-end form: a single
// 20 dB tag followed by a noise tail four times the frame length. The old
// estimator integrated the whole tail and reported ≈7 dB low.
func TestReceiveSNRUnbiasedByNoiseTail(t *testing.T) {
	set := goldSet(t, 1)
	payload := []byte("snr-check")
	r := newTestReceiver(t, set)
	extent := r.frameExtentSamples(len(payload))
	if extent <= 0 {
		t.Fatal("frame extent must be positive")
	}
	lead := 60 * testSPC
	buf := buildScenario(t, set, [][]byte{payload}, []complex128{amp(20)}, []int{0}, lead, 4*extent)
	res, err := r.Receive(buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Frames) != 1 || !res.Frames[0].OK {
		t.Fatal("frame not decoded")
	}
	// The tag is OOK, active on roughly half its chips, so the realized
	// in-frame SNR for a 20 dB amplitude is ≈17 dB. The old estimator's
	// 4×-frame tail dragged this below 11 dB.
	snr := res.Frames[0].SNRdB
	if snr < 15 || snr > 19 {
		t.Errorf("SNR estimate %v dB, want ≈17 despite the noise tail", snr)
	}
}

// TestEnergyDetectShorterThanWarmup drives buffers shorter than the warmup
// (short-term) window through the detector: no panic, no detection.
func TestEnergyDetectShorterThanWarmup(t *testing.T) {
	for _, n := range []int{1, 5, 32, 63} {
		power := make([]float64, n)
		for i := range power {
			power[i] = 1 // loud everywhere, but too short to warm up
		}
		if _, found := EnergyDetect(power, 100, 3, 64); found {
			t.Errorf("len %d buffer shorter than the warmup window must not detect", n)
		}
	}
}

func sameResult(t *testing.T, label string, a, b Result) {
	t.Helper()
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("%s: results differ:\n  a = %+v\n  b = %+v", label, a, b)
	}
}

// TestReceiveFFTPathMatchesDirect decodes a 127-chip four-tag collision with
// the stock receiver (whose alignment sweep clears the FFT cutover) and with
// a cutover-disabled twin, requiring identical results: the frequency-domain
// rows agree with the direct dot products to ~1e-12 relative, the scan
// pattern is shared, and the detection statistics are recomputed directly in
// both paths.
func TestReceiveFFTPathMatchesDirect(t *testing.T) {
	const nTags = 4
	set := gold127Set(t, nTags)
	cfg := Config{
		Codes:          set,
		SamplesPerChip: testSPC,
		NoiseFloorW:    testNoise,
		SearchChips:    1,
	}
	fast, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	direct := directReceiver(t, cfg)

	// Guard against the cutover silently regressing and making this test
	// vacuous: the stock receiver's alignment window must select the FFT.
	alignCount := fast.shortWindow() + 4*testSPC + 1
	if !fast.bank.ShouldUseFFT(alignCount, nTags, false) {
		t.Fatalf("alignment window (count=%d, codes=%d) no longer clears the FFT cutover", alignCount, nTags)
	}

	payloads := make([][]byte, nTags)
	gains := make([]complex128, nTags)
	offsets := make([]int, nTags)
	for i := range payloads {
		payloads[i] = []byte{byte(i), 0xA5, byte(40 + i), 0x3C}
		gains[i] = amp(18)
	}
	lead := 60 * testSPC
	buf := buildScenario(t, set, payloads, gains, offsets, lead, 200)

	fastRes, err := fast.Receive(buf)
	if err != nil {
		t.Fatal(err)
	}
	directRes, err := direct.Receive(buf)
	if err != nil {
		t.Fatal(err)
	}
	sameResult(t, "fft vs direct", fastRes, directRes)
	if len(fastRes.Frames) != nTags {
		t.Fatalf("decoded %d of %d tags", len(fastRes.Frames), nTags)
	}
	for i, f := range fastRes.Frames {
		if !f.OK || !bytes.Equal(f.Payload, payloads[f.TagID]) {
			t.Errorf("frame %d: OK=%v payload mismatch", i, f.OK)
		}
	}
}

// TestReceiveWorkersEquivalence runs the same collision through a serial
// receiver and a worker-pool receiver (with and without SIC) and requires
// byte-identical results — the pool only changes scheduling, never values
// or ordering.
func TestReceiveWorkersEquivalence(t *testing.T) {
	const nTags = 6
	set := goldSet(t, nTags)
	payloads := make([][]byte, nTags)
	gains := make([]complex128, nTags)
	offsets := make([]int, nTags)
	for i := range payloads {
		payloads[i] = []byte{byte(0x10 + i), byte(0x20 + i), 0x77}
		gains[i] = amp(16 + float64(2*i))
	}
	lead := 60 * testSPC
	buf := buildScenario(t, set, payloads, gains, offsets, lead, 150)

	for _, sic := range []bool{false, true} {
		cfg := Config{
			Codes:          set,
			SamplesPerChip: testSPC,
			NoiseFloorW:    testNoise,
			SearchChips:    1,
			SIC:            sic,
		}
		serial, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		cfg.Workers = 4
		pooled, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		want, err := serial.Receive(buf)
		if err != nil {
			t.Fatal(err)
		}
		got, err := pooled.Receive(buf)
		if err != nil {
			t.Fatal(err)
		}
		label := "workers"
		if sic {
			label = "workers+sic"
		}
		sameResult(t, label, want, got)
		// A second pass through the same (scratch-reusing) receivers must
		// reproduce the first exactly.
		again, err := pooled.Receive(buf)
		if err != nil {
			t.Fatal(err)
		}
		sameResult(t, label+" rerun", got, again)
	}
}

func TestConfigRejectsNegativeWorkers(t *testing.T) {
	set := goldSet(t, 2)
	if _, err := New(Config{Codes: set, Workers: -1}); err == nil {
		t.Fatal("negative Workers must be rejected")
	}
}

func benchmarkReceive(b *testing.B, set *pn.Set, nTags, workers int) {
	payloads := make([][]byte, nTags)
	gains := make([]complex128, nTags)
	offsets := make([]int, nTags)
	for i := range payloads {
		payloads[i] = []byte{byte(i), 0x5A, byte(90 - i), 0x0F, byte(i * 3), 0x42, 0x18, byte(200 - i)}
		// Distinct per-tag channel phases and a mild near-far spread, as a
		// fading channel would produce; with all phasors aligned the
		// coherent sum degenerates and nothing clears detection.
		phi := 2 * math.Pi * float64(i) / float64(nTags)
		gains[i] = amp(16+float64(i)) * complex(math.Cos(phi), math.Sin(phi))
	}
	lead := 60 * testSPC
	buf := buildScenario(b, set, payloads, gains, offsets, lead, 200)
	r, err := New(Config{
		Codes:          set,
		SamplesPerChip: testSPC,
		NoiseFloorW:    testNoise,
		SearchChips:    1,
		Workers:        workers,
	})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := r.Receive(buf)
		if err != nil {
			b.Fatal(err)
		}
		if len(res.Frames) == 0 {
			b.Fatal("no frames decoded")
		}
	}
}

// BenchmarkReceive31Gold10Tags is the paper's default configuration: ten
// colliding tags on 31-chip Gold codes at 4 samples per chip. The alignment
// sweep sits below the FFT cutover, so this measures the (bit-identical)
// direct path plus the buffer-reuse savings.
func BenchmarkReceive31Gold10Tags(b *testing.B) {
	set, err := pn.NewGoldSet(5, 10)
	if err != nil {
		b.Fatal(err)
	}
	benchmarkReceive(b, set, 10, 0)
}

// BenchmarkReceive127Gold10Tags is the long-code case where the alignment
// sweep clears the cutover and runs through the frequency-domain bank.
func BenchmarkReceive127Gold10Tags(b *testing.B) {
	set, err := pn.NewGoldSet(7, 10)
	if err != nil {
		b.Fatal(err)
	}
	benchmarkReceive(b, set, 10, 0)
}

// BenchmarkReceive127Gold10TagsWorkers4 adds the opt-in per-code fan-out.
func BenchmarkReceive127Gold10TagsWorkers4(b *testing.B) {
	set, err := pn.NewGoldSet(7, 10)
	if err != nil {
		b.Fatal(err)
	}
	benchmarkReceive(b, set, 10, 4)
}
