// Package rx implements the CBMA receiver chain of §III-B: energy-based
// frame synchronization with a moving-average filter and +3 dB comparator,
// correlation-based user detection against every PN code in the deployment,
// per-chip correlation decoding with per-user timing refinement (the
// "correlation-based detector" that tolerates asynchronous tags), CRC
// verification, and acknowledgement generation.
package rx

import (
	"errors"
	"fmt"

	"cbma/internal/dsp"
	"cbma/internal/frame"
	"cbma/internal/obs"
	"cbma/internal/pn"
)

// Errors returned by the receiver.
var (
	ErrNoCodes   = errors.New("rx: a code set is required")
	ErrShortRead = errors.New("rx: sample buffer ends inside the frame")
)

// Config parameterizes the receiver.
type Config struct {
	// Codes is the PN code set shared with the tag population.
	Codes *pn.Set
	// SamplesPerChip is the oversampling factor (receiver sample rate over
	// chip rate).
	SamplesPerChip int
	// Frame is the link-layer framing configuration.
	Frame frame.Config
	// SyncWindow is the moving-average window W_n (in samples) of the
	// energy detector. Zero selects four chip periods.
	SyncWindow int
	// SyncThresholdDB is the comparator margin over the filtered power
	// level (paper: 3 dB). Zero selects 3.
	SyncThresholdDB float64
	// DetectThreshold is the minimum normalized preamble correlation for a
	// user to be declared present (§III-B user detection). Zero selects
	// 0.15: noise-only correlations over the preamble templates sit at
	// ≈3σ–5σ below that, while a present user among up to ~10 equal-power
	// concurrent tags still clears it despite envelope-energy dilution.
	DetectThreshold float64
	// SearchChips bounds the per-user timing search around the global fine
	// alignment, in chips. Zero selects one chip each way — wide enough for
	// the sub-chip clock skew of excitation-synchronized tags, narrow
	// enough to stay inside the cyclic-ambiguity distance of
	// shift-structured code families (see globalAlign). Tags delayed
	// beyond this window lose frames, which is the behaviour Fig. 11
	// measures.
	SearchChips int
	// NoiseFloorW is the receiver's noise power estimate used for SNR
	// reporting when no pre-frame quiet region is available.
	NoiseFloorW float64
	// CFARThreshold is the constant-false-alarm detection threshold on the
	// preamble matched-filter statistic |Σ x·tmpl|² / (noise·‖tmpl‖²).
	// Under noise the statistic is Exp(1)-distributed, so the false-alarm
	// probability per examined lag is e^(−T). Unlike the normalized
	// correlation, the statistic grows with the integration (preamble)
	// length, which is what makes longer preambles detectable at lower
	// SNR — the Fig. 8(c) effect. Zero selects 16 (−e⁻¹⁶ ≈ 10⁻⁷ per lag).
	CFARThreshold float64
	// SIC enables successive interference cancellation: users are decoded
	// strongest-first and each verified frame's waveform is subtracted
	// before detecting the next (see receiveSIC for when to use it).
	SIC bool
	// PhaseTracking enables decision-directed carrier-phase tracking
	// during decoding: after each bit decision the user's phasor estimate
	// is steered toward the observed correlation. Required when tags have
	// carrier/subcarrier frequency offsets (cheap oscillators): the
	// preamble phase estimate goes stale within a fraction of a frame at
	// tens of ppm. Off by default to match the paper's receiver.
	PhaseTracking bool
	// Workers opts into fanning the per-code detection/decode sweep out
	// across this many goroutines within each Receive call. 0 or 1 keeps
	// the single-goroutine path. The pool never outlives the call, so a
	// Receiver stays safe for sequential reuse either way; results are
	// returned in code order and are identical to the serial path.
	Workers int
	// Obs, when non-nil, times the receiver phases (frame sync, user
	// detection, chip decode) into the observer's registry. Purely
	// observational: no receiver decision reads it, so decode results are
	// identical with or without it.
	Obs *obs.Observer
	// ReferenceSync selects the pre-optimization timing-acquisition path:
	// streaming moving-average energy detection, per-position window
	// rescans in refineEdge, the full-buffer envelope and the exhaustive
	// strided alignment scan over the whole uncertainty window. The
	// default fast path (prefix-sum detection, windowed envelope,
	// coarse-to-fine alignment — see align.go) reproduces the reference
	// decisions, and campaign Metrics are bit-identical across the two on
	// every covered scenario (TestRunSyncEquivalence); this knob keeps the
	// reference implementation live so that equivalence stays continuously
	// testable instead of frozen at a one-time measurement.
	ReferenceSync bool
	// ResyncFallback enables graceful re-synchronization on ReceiveAt
	// calls: when the energy detector or the fine alignment fails — deep
	// fades, mid-frame outages and interference bursts can bury the energy
	// rise — the receiver falls back to the reader's nominal reply timing
	// instead of abandoning the buffer, and still attempts user detection
	// anchored there. Result.Resynced reports the fallback fired. Off by
	// default: without faults a failed sync genuinely means no frame.
	ResyncFallback bool
}

func (c Config) withDefaults() (Config, error) {
	if c.Codes == nil || c.Codes.Size() == 0 {
		return c, ErrNoCodes
	}
	if err := c.Codes.Validate(); err != nil {
		return c, fmt.Errorf("rx: %w", err)
	}
	if c.SamplesPerChip == 0 {
		c.SamplesPerChip = 4
	}
	if c.SamplesPerChip < 1 {
		return c, errors.New("rx: samples per chip must be >= 1")
	}
	if c.SyncWindow == 0 {
		c.SyncWindow = 4 * c.Codes.ChipLength() * c.SamplesPerChip
	}
	if c.SyncThresholdDB == 0 {
		c.SyncThresholdDB = 3
	}
	if c.DetectThreshold == 0 {
		c.DetectThreshold = 0.15
	}
	if c.SearchChips == 0 {
		c.SearchChips = 1
	}
	if c.CFARThreshold == 0 {
		c.CFARThreshold = 16
	}
	if c.Workers < 0 {
		return c, errors.New("rx: workers must be >= 0")
	}
	if _, err := c.Frame.Preamble(); err != nil {
		return c, err
	}
	return c, nil
}

// Receiver decodes concurrent CBMA frames from a complex-baseband sample
// stream. Construct with New; a Receiver is safe for sequential reuse
// across buffers but not for concurrent use.
type Receiver struct {
	cfg Config
	// preambleTmpl[i] is code i's discriminant template for the whole
	// preamble at sample rate; bitTmpl[i] is the single-bit discriminant
	// template; sparse[i] marks PPM-style codes whose timing search uses
	// the envelope statistic (see detectUser).
	preambleTmpl [][]float64
	bitTmpl      [][]float64
	sparse       []bool
	anySparse    bool
	// chipTmpl[i] is code i's preamble discriminant at chip rate. The
	// sample templates are chip-constant (each discriminant value held for
	// SamplesPerChip samples), so the coarse alignment pass correlates
	// per-chip block sums of the envelope against these short templates
	// instead of sliding the full-rate template (see alignCoarseFine).
	chipTmpl [][]float64
	// bank holds the preamble templates with their frequency-domain images
	// precomputed, for the matched-filter fast path taken by globalAlign
	// and the detection sweep when the window is large enough (see
	// dsp.FilterBank.ShouldUseFFT).
	bank *dsp.FilterBank
	// Per-call scratch, reused across Receive calls (the reason a Receiver
	// is not safe for concurrent use): instantaneous power and envelope of
	// the buffer, per-code correlation rows for the alignment and
	// detection sweeps, and the SIC residual buffers.
	power     []float64
	env       []float64
	alignRows [][]float64
	envRows   [][]float64
	cohRows   [][]complex128
	sicWork   []complex128
	sicEnv    []float64
	// Fast sync-path scratch: the buffer's power prefix sums (every
	// moving-window statistic of the sync stage reads them in O(1)) and
	// the chip-rate decimated envelope of the alignment span.
	powerPrefix []float64
	envChips    []float64
	// Telemetry instruments, pre-resolved at construction (nil-safe no-ops
	// without Config.Obs). Clones share them: the histograms are atomic, so
	// parallel round workers aggregate into the same phase timings.
	obs          *obs.Observer
	hSync        *obs.Histogram
	hDetect      *obs.Histogram
	hDecode      *obs.Histogram
	cResync      *obs.Counter
	cFFTFallback *obs.Counter
}

// New builds a receiver and precomputes the per-code correlation templates.
func New(cfg Config) (*Receiver, error) {
	c, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	pre, err := c.Frame.Preamble()
	if err != nil {
		return nil, err
	}
	r := &Receiver{
		cfg:          c,
		obs:          c.Obs,
		hSync:        c.Obs.Histogram("rx.phase.sync_ns"),
		hDetect:      c.Obs.Histogram("rx.phase.detect_ns"),
		hDecode:      c.Obs.Histogram("rx.phase.decode_ns"),
		cResync:      c.Obs.Counter("rx.resyncs"),
		cFFTFallback: c.Obs.Counter("rx.fft_fallbacks"),
	}
	for _, code := range c.Codes.Codes {
		disc := code.Discriminant()
		bit := upsampleFloats(disc, c.SamplesPerChip)
		r.bitTmpl = append(r.bitTmpl, bit)
		// A code is "sparse" when its active chips are a small minority —
		// the PPM-style regime where envelope timing wins (detectUser).
		r.sparse = append(r.sparse, 4*code.OnesWeight() <= code.Length())
		tmpl := make([]float64, 0, len(pre)*len(bit))
		ct := make([]float64, 0, len(pre)*len(disc))
		for _, b := range pre {
			sign := 1.0
			if b == 0 {
				sign = -1
			}
			for _, v := range bit {
				tmpl = append(tmpl, sign*v)
			}
			for _, v := range disc {
				ct = append(ct, sign*v)
			}
		}
		r.preambleTmpl = append(r.preambleTmpl, tmpl)
		r.chipTmpl = append(r.chipTmpl, ct)
	}
	for _, sp := range r.sparse {
		if sp {
			r.anySparse = true
			break
		}
	}
	bank, err := dsp.NewFilterBank(r.preambleTmpl)
	if err != nil {
		return nil, fmt.Errorf("rx: %w", err)
	}
	r.bank = bank
	return r, nil
}

// Config returns the receiver's effective (defaulted) configuration.
func (r *Receiver) Config() Config { return r.cfg }

// Clone returns a receiver that shares r's immutable template tables but
// owns its own per-call scratch, so the clone and r (and further clones)
// may run Receive concurrently on different goroutines. The clone's filter
// bank shares r's precomputed frequency-domain template spectra (guarded
// inside the bank) with its own query scratch — parallel round workers no
// longer redo the forward transforms the original already paid for.
func (r *Receiver) Clone() *Receiver {
	return &Receiver{
		cfg:          r.cfg,
		preambleTmpl: r.preambleTmpl,
		bitTmpl:      r.bitTmpl,
		sparse:       r.sparse,
		anySparse:    r.anySparse,
		chipTmpl:     r.chipTmpl,
		bank:         r.bank.Clone(),
		obs:          r.obs,
		hSync:        r.hSync,
		hDetect:      r.hDetect,
		hDecode:      r.hDecode,
		cResync:      r.cResync,
		cFFTFallback: r.cFFTFallback,
	}
}

// DecodedFrame is the per-user outcome of one receive pass.
type DecodedFrame struct {
	// TagID is the code index of the detected user.
	TagID int
	// Payload holds the decoded payload when OK.
	Payload []byte
	// OK reports whether the frame passed CRC.
	OK bool
	// Err carries the decode failure when !OK.
	Err error
	// Corr is the normalized preamble correlation at detection.
	Corr float64
	// Lag is the user's frame start in samples within the buffer.
	Lag int
	// SNRdB is the estimated per-user SNR (realized signal power over the
	// noise estimate).
	SNRdB float64
}

// Result is the outcome of Receive on one buffer.
type Result struct {
	// FrameDetected reports whether the energy detector fired at all.
	FrameDetected bool
	// CoarseStart is the energy detector's frame-start estimate;
	// GlobalStart the fine common alignment the user searches anchor to.
	CoarseStart int
	GlobalStart int
	// NoiseW is the noise power estimated from the pre-frame region (or
	// the configured floor).
	NoiseW float64
	// Resynced reports the Config.ResyncFallback path anchored this result
	// at the reader's nominal timing after sync failed.
	Resynced bool
	// Frames holds one entry per detected user.
	Frames []DecodedFrame
}

// AckIDs returns the tag IDs whose frames decoded successfully — the
// content of the broadcast ACK message (§III-B acknowledgement).
func (res Result) AckIDs() []int {
	var ids []int
	for _, f := range res.Frames {
		if f.OK {
			ids = append(ids, f.TagID)
		}
	}
	return ids
}

// Receive runs the full §III-B pipeline over one sample buffer with no
// external timing reference: the frame-start anchor is estimated from the
// energy-rise edge. See ReceiveAt for when the reader knows the reply
// timing.
func (r *Receiver) Receive(samples []complex128) (Result, error) {
	return r.receive(samples, -1)
}

// ReceiveAt is Receive with a reader-side timing hint: nominalStart is the
// sample index where the excitation source expects tag replies to begin.
// In a deployed system the reader triggers the tags, so this reference is
// physically available (compare EPC Gen2's fixed T1 reply window), and it
// is what makes a *lone* sparse-code (2NC) tag identifiable at all — such
// a tag is silent before its own chip slot, so its energy edge reveals
// only the slot, not the frame start, and every slot shift is otherwise an
// equally valid alignment under a different identity.
func (r *Receiver) ReceiveAt(samples []complex128, nominalStart int) (Result, error) {
	return r.receive(samples, nominalStart)
}

func (r *Receiver) receive(samples []complex128, nominalStart int) (Result, error) {
	var res Result
	if len(samples) == 0 {
		return res, dsp.ErrEmptyInput
	}
	// The sync span covers the whole timing-acquisition phase: energy
	// detection, noise estimation and the fine global alignment.
	sp := r.obs.Start(r.hSync)
	r.power = dsp.MagSquaredInto(r.power, samples)
	power := r.power
	ref := r.cfg.ReferenceSync
	var start int
	var found bool
	if ref {
		start, found = EnergyDetect(power, r.cfg.SyncWindow, r.cfg.SyncThresholdDB, r.shortWindow())
	} else {
		r.powerPrefix = dsp.PrefixSumInto(r.powerPrefix, power)
		start, found = energyDetectPrefix(r.powerPrefix, r.cfg.SyncWindow, r.cfg.SyncThresholdDB, r.shortWindow())
	}
	resync := r.cfg.ResyncFallback && nominalStart >= 0 && nominalStart < len(samples)
	if !found {
		if !resync {
			sp.End()
			return res, nil
		}
		// Re-sync fallback: the energy rise is buried (fade, outage,
		// burst), but the reader triggered the reply window, so anchor the
		// coarse estimate at the nominal timing and press on.
		start = nominalStart
		res.Resynced = true
	}
	res.FrameDetected = found
	res.CoarseStart = start
	res.NoiseW = r.noiseEstimate(power, start)

	if ref || r.cfg.SIC {
		// The SIC loop re-derives the envelope over the whole buffer after
		// each cancellation, so a partial fill buys nothing there.
		r.env = dsp.MagnitudeInto(r.env, samples)
	} else {
		elo, ehi := r.envWindow(start, nominalStart, len(samples))
		r.env = magnitudeWindowInto(r.env, samples, elo, ehi)
	}
	env := r.env
	var globalStart int
	var ok bool
	if ref {
		globalStart, ok = r.globalAlign(env, power, start, res.NoiseW, nominalStart)
	} else {
		globalStart, ok = r.alignCoarseFine(env, power, start, res.NoiseW, nominalStart)
	}
	if !ok {
		if !resync {
			sp.End()
			return res, nil
		}
		globalStart = nominalStart
		res.Resynced = true
	}
	sp.End()
	if res.Resynced {
		r.cResync.Inc()
	}
	res.GlobalStart = globalStart
	if r.cfg.SIC {
		r.receiveSIC(samples, &res, env, globalStart)
	} else {
		res.Frames = r.detectAndDecodeAll(env, samples, globalStart, res.NoiseW)
	}
	for i := range res.Frames {
		f := &res.Frames[i]
		f.SNRdB = r.estimateSNR(power, f.Lag, r.frameExtentSamples(len(f.Payload)), res.NoiseW)
	}
	return res, nil
}

// shortWindow is the energy detector's short-term window: one bit duration,
// floored at 64 samples to keep the noise-only false-alarm rate negligible
// (see EnergyDetect).
func (r *Receiver) shortWindow() int {
	w := r.cfg.Codes.ChipLength() * r.cfg.SamplesPerChip
	if w < 64 {
		w = 64
	}
	return w
}

// envWindow bounds the envelope region the fast sync path actually reads:
// the alignment window around the coarse start widened by the user-detection
// search slack and one template length, extended to cover the reader's
// nominal window when the resync fallback may re-anchor there. Everything
// outside is zeroed, not computed — the per-sample math.Hypot over a mostly
// unread buffer was a top cost of the reference sync phase.
func (r *Receiver) envWindow(start, nominalStart, n int) (int, int) {
	tmplLen := len(r.preambleTmpl[0])
	slack := (2+r.cfg.SearchChips)*r.cfg.SamplesPerChip + r.shortWindow()
	lo := start - slack
	hi := start + slack + tmplLen
	if r.cfg.ResyncFallback && nominalStart >= 0 && nominalStart < n {
		if w := nominalStart - slack; w < lo {
			lo = w
		}
		if w := nominalStart + slack + tmplLen; w > hi {
			hi = w
		}
	}
	if lo < 0 {
		lo = 0
	}
	if hi > n {
		hi = n
	}
	if hi < lo {
		hi = lo
	}
	return lo, hi
}

// noiseEstimate averages the power of the quiet region before the frame,
// falling back to the configured floor when the frame starts immediately.
func (r *Receiver) noiseEstimate(power []float64, start int) float64 {
	quietEnd := start - r.cfg.SamplesPerChip
	if quietEnd > 16 {
		var acc float64
		for _, p := range power[:quietEnd] {
			acc += p
		}
		return acc / float64(quietEnd)
	}
	return r.cfg.NoiseFloorW
}

// estimateSNR reports the ratio of frame-region power above noise to noise.
// The integration window is bounded to the frame's own extent
// (frameSamples) instead of running to the end of the buffer: capture
// buffers carry a deliberate post-frame noise tail, and folding the tail
// into the average biased the estimate low by the tail-to-frame duty ratio.
func (r *Receiver) estimateSNR(power []float64, lag, frameSamples int, noiseW float64) float64 {
	if lag < 0 {
		lag = 0
	}
	if lag >= len(power) || frameSamples <= 0 {
		return 0
	}
	end := lag + frameSamples
	if end > len(power) {
		end = len(power)
	}
	var acc float64
	for _, p := range power[lag:end] {
		acc += p
	}
	total := acc / float64(end-lag)
	return dsp.SNRdB(total, noiseW)
}

// frameExtentSamples is the on-air extent, in samples, of a frame carrying
// payloadBytes of payload — the integration window estimateSNR uses. A
// failed decode reports no payload, so its estimate integrates the
// header+CRC extent only; that region is still frame-dominated, which is
// what matters for an unbiased ratio.
func (r *Receiver) frameExtentSamples(payloadBytes int) int {
	bits, err := r.cfg.Frame.BitLength(payloadBytes)
	if err != nil {
		return 0
	}
	return bits * r.cfg.Codes.ChipLength() * r.cfg.SamplesPerChip
}

// upsampleFloats repeats each value factor times.
func upsampleFloats(x []float64, factor int) []float64 {
	out := make([]float64, 0, len(x)*factor)
	for _, v := range x {
		for k := 0; k < factor; k++ {
			out = append(out, v)
		}
	}
	return out
}
