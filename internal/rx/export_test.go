package rx

import "cbma/internal/dsp"

// EnergyDetectPrefix exposes the prefix-sum detector to external test
// packages (the frame-sync fuzz target cross-checks it against
// EnergyDetect: on integer-valued power the two are exactly equal).
func EnergyDetectPrefix(power []float64, longWindow int, thresholdDB float64, shortWindow int) (int, bool) {
	return energyDetectPrefix(dsp.PrefixSumInto(nil, power), longWindow, thresholdDB, shortWindow)
}
