package channel

import (
	"math"
	"math/rand"
)

// AWGN adds circularly-symmetric complex Gaussian noise of total power
// powerW (per complex sample) to samples, in place.
func AWGN(rng *rand.Rand, samples []complex128, powerW float64) {
	if powerW <= 0 {
		return
	}
	sigma := math.Sqrt(powerW / 2)
	for i := range samples {
		samples[i] += complex(sigma*rng.NormFloat64(), sigma*rng.NormFloat64())
	}
}

// NoiseVector returns n samples of complex Gaussian noise with per-sample
// power powerW.
func NoiseVector(rng *rand.Rand, n int, powerW float64) []complex128 {
	out := make([]complex128, n)
	AWGN(rng, out, powerW)
	return out
}
