package channel

import (
	"errors"
	"math"
	"math/rand"
	"testing"

	"cbma/internal/dsp"
	"cbma/internal/geom"
)

func TestBackscatterRxPowerDistanceScaling(t *testing.T) {
	p := DefaultParams()
	p.ShadowSigmaDB = 0
	// Doubling d2 must cut power by exactly 4× (1/d2² in Eq. 1's third term).
	p1 := p.BackscatterRxPower(0.5, 1, 1)
	p2 := p.BackscatterRxPower(0.5, 2, 1)
	if math.Abs(p1/p2-4) > 1e-9 {
		t.Errorf("d2 scaling ratio %v, want 4", p1/p2)
	}
	// Same for d1.
	p3 := p.BackscatterRxPower(1, 1, 1)
	if math.Abs(p1/p3-4) > 1e-9 {
		t.Errorf("d1 scaling ratio %v, want 4", p1/p3)
	}
}

func TestBackscatterRxPowerGammaScaling(t *testing.T) {
	p := DefaultParams()
	// Halving |ΔΓ| must cut power 4× (|ΔΓ|² in Eq. 1).
	a := p.BackscatterRxPower(0.5, 1, 1.0)
	b := p.BackscatterRxPower(0.5, 1, 0.5)
	if math.Abs(a/b-4) > 1e-9 {
		t.Errorf("gamma scaling ratio %v, want 4", a/b)
	}
}

func TestBackscatterRxPowerTxLinearity(t *testing.T) {
	// Paper §VII-B: "backscatter power and the excitation source power are
	// linearly related to each other".
	p := DefaultParams()
	p.TxPowerDBm = 10
	a := p.BackscatterRxPower(0.5, 1, 1)
	p.TxPowerDBm = 20
	b := p.BackscatterRxPower(0.5, 1, 1)
	if math.Abs(b/a-10) > 1e-9 {
		t.Errorf("+10 dB Tx must give 10× Rx, got %v×", b/a)
	}
}

func TestBackscatterRxPowerDistanceFloor(t *testing.T) {
	p := DefaultParams()
	if p.BackscatterRxPower(0, 1, 1) != p.BackscatterRxPower(0.05, 1, 1) {
		t.Error("sub-10cm distances must clamp identically")
	}
	if math.IsInf(p.BackscatterRxPower(0, 0, 1), 0) {
		t.Error("zero distances must not blow up")
	}
}

func TestBackscatterRxPowerMagnitude(t *testing.T) {
	// Sanity: with defaults at d1=0.5m, d2=1m the received backscatter
	// should land in the -40..-70 dBm range typical of measured systems.
	p := DefaultParams()
	dbm := dsp.DBm(p.BackscatterRxPower(0.5, 1, 1))
	if dbm > -40 || dbm < -70 {
		t.Errorf("Rx power %v dBm outside plausible backscatter range", dbm)
	}
}

func TestDrawLinkGainMatchesPower(t *testing.T) {
	p := DefaultParams()
	p.ShadowSigmaDB = 0
	p.RicianK = math.Inf(1) // disable fading
	rng := rand.New(rand.NewSource(5))
	es := geom.Point{X: -0.5}
	rx := geom.Point{X: 0.5}
	tag := geom.Point{Y: 1}
	link := p.DrawLink(es, tag, rx, 1, rng)
	gotP := real(link.Gain)*real(link.Gain) + imag(link.Gain)*imag(link.Gain)
	if math.Abs(gotP-link.MeanRxPowerW) > 1e-15*link.MeanRxPowerW {
		t.Errorf("|gain|² = %v, mean power %v", gotP, link.MeanRxPowerW)
	}
	if math.IsNaN(link.SNRdB) {
		t.Error("SNR must be finite")
	}
}

func TestDrawLinkFadingIsUnitMeanPower(t *testing.T) {
	p := DefaultParams()
	p.ShadowSigmaDB = 0
	p.RicianK = 4
	rng := rand.New(rand.NewSource(6))
	es, rx, tag := geom.Point{X: -0.5}, geom.Point{X: 0.5}, geom.Point{Y: 1.5}
	mean := p.BackscatterRxPower(es.Distance(tag), tag.Distance(rx), 1)
	var acc float64
	const trials = 20000
	for i := 0; i < trials; i++ {
		l := p.DrawLink(es, tag, rx, 1, rng)
		acc += real(l.Gain)*real(l.Gain) + imag(l.Gain)*imag(l.Gain)
	}
	ratio := acc / trials / mean
	if ratio < 0.95 || ratio > 1.05 {
		t.Errorf("fading mean power ratio %v, want ≈1", ratio)
	}
}

func TestDrawLinkDeterministicWithSeed(t *testing.T) {
	p := DefaultParams()
	es, rx, tag := geom.Point{X: -0.5}, geom.Point{X: 0.5}, geom.Point{Y: 2}
	a := p.DrawLink(es, tag, rx, 0.8, rand.New(rand.NewSource(42)))
	b := p.DrawLink(es, tag, rx, 0.8, rand.New(rand.NewSource(42)))
	if a.Gain != b.Gain {
		t.Error("same seed must give identical links")
	}
}

func TestRicianCoeffRayleighLimit(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	var acc float64
	const n = 20000
	for i := 0; i < n; i++ {
		h := ricianCoeff(0, rng)
		acc += real(h)*real(h) + imag(h)*imag(h)
	}
	if m := acc / n; m < 0.95 || m > 1.05 {
		t.Errorf("Rayleigh mean power %v, want ≈1", m)
	}
	// Negative K clamps to Rayleigh rather than producing NaN.
	if h := ricianCoeff(-3, rng); math.IsNaN(real(h)) || math.IsNaN(imag(h)) {
		t.Error("negative K must not produce NaN")
	}
}

func TestFriisFieldShape(t *testing.T) {
	p := DefaultParams()
	d := geom.NewDeployment(0.5)
	field, err := p.FriisField(d, 1, 30, 20)
	if err != nil {
		t.Fatal(err)
	}
	if len(field) != 20 || len(field[0]) != 30 {
		t.Fatalf("grid %dx%d, want 20x30", len(field), len(field[0]))
	}
	// The cell nearest the midpoint between ES and RX must beat the room's
	// far corner (signal strength decays with both distances — Fig. 5).
	midJ, midI := 10, 15
	if field[midJ][midI] <= field[0][0] {
		t.Errorf("center %v dBm not stronger than corner %v dBm",
			field[midJ][midI], field[0][0])
	}
}

func TestFriisFieldBadGrid(t *testing.T) {
	p := DefaultParams()
	d := geom.NewDeployment(0.5)
	if _, err := p.FriisField(d, 1, 0, 5); !errors.Is(err, ErrBadGrid) {
		t.Fatalf("got %v, want ErrBadGrid", err)
	}
	if _, err := p.FriisField(d, 1, 5, -1); !errors.Is(err, ErrBadGrid) {
		t.Fatalf("got %v, want ErrBadGrid", err)
	}
}

func TestFriisFieldSingleCell(t *testing.T) {
	p := DefaultParams()
	d := geom.NewDeployment(0.5)
	field, err := p.FriisField(d, 1, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(field) != 1 || len(field[0]) != 1 {
		t.Fatal("1x1 grid must work")
	}
	if math.IsNaN(field[0][0]) {
		t.Error("NaN cell")
	}
}

func TestWavelengthAccessor(t *testing.T) {
	p := DefaultParams()
	if l := p.Wavelength(); math.Abs(l-0.15) > 0.001 {
		t.Errorf("wavelength %v, want ≈0.15 m at 2 GHz", l)
	}
}
