package channel

import (
	"math"
	"math/rand"

	"cbma/internal/dsp"
)

// Interferer adds an external interference waveform into a received sample
// buffer. Implementations are stateless across calls except through rng;
// each Apply covers one observation window at the given sample rate.
type Interferer interface {
	Apply(rng *rand.Rand, samples []complex128, sampleRateHz float64)
}

// WiFiInterferer models coexisting WiFi traffic: CSMA/CA bursts that occupy
// the channel for geometrically-distributed packet durations separated by
// idle backoff gaps, so "the channel is not always occupied" (§VII-C3). The
// in-band interference during a burst is modelled as band-limited Gaussian
// noise at PowerDBm, which is statistically what an OFDM WiFi packet looks
// like to a narrowband correlator.
type WiFiInterferer struct {
	// PowerDBm is the interference power at the receiver while a burst is
	// on the air.
	PowerDBm float64
	// DutyCycle is the long-run fraction of time the channel is busy
	// (0..1, default 0.3 when zero).
	DutyCycle float64
	// MeanBurstSec is the mean burst duration (default 1 ms — a long WiFi
	// aggregate).
	MeanBurstSec float64
}

var _ Interferer = (*WiFiInterferer)(nil)

// Apply implements Interferer.
func (w *WiFiInterferer) Apply(rng *rand.Rand, samples []complex128, sampleRateHz float64) {
	duty := w.DutyCycle
	if duty <= 0 {
		duty = 0.3
	}
	if duty > 1 {
		duty = 1
	}
	meanBurst := w.MeanBurstSec
	if meanBurst <= 0 {
		meanBurst = 1e-3
	}
	burstSamples := meanBurst * sampleRateHz
	if burstSamples < 1 {
		burstSamples = 1
	}
	idleSamples := burstSamples * (1 - duty) / duty
	power := dsp.FromDBm(w.PowerDBm)
	sigma := math.Sqrt(power / 2)
	if duty == 1 {
		for i := range samples {
			samples[i] += complex(sigma*rng.NormFloat64(), sigma*rng.NormFloat64())
		}
		return
	}
	i := 0
	// Random initial phase of the busy/idle cycle.
	busy := rng.Float64() < duty
	remaining := drawExp(rng, burstSamples)
	if !busy {
		remaining = drawExp(rng, idleSamples)
	}
	for i < len(samples) {
		if busy {
			samples[i] += complex(sigma*rng.NormFloat64(), sigma*rng.NormFloat64())
		}
		i++
		remaining--
		if remaining <= 0 {
			busy = !busy
			if busy {
				remaining = drawExp(rng, burstSamples)
			} else {
				remaining = drawExp(rng, idleSamples)
			}
		}
	}
}

// BluetoothInterferer models a frequency-hopping Bluetooth link: every
// HopPeriodSec the radio retunes uniformly over its 79 MHz band, so only a
// fraction of hops land inside the backscatter receiver's bandwidth
// (§VII-C3: "Bluetooth is based on frequency-hopping spread spectrum").
// In-band hops contribute a narrowband tone at a random sub-band offset.
type BluetoothInterferer struct {
	// PowerDBm is the in-band interference power during a colliding hop.
	PowerDBm float64
	// HopPeriodSec is the dwell time per hop (default 625 µs, the BT slot).
	HopPeriodSec float64
	// InBandProb is the probability a hop lands in the receiver band
	// (default 20 MHz / 79 MHz ≈ 0.25).
	InBandProb float64
}

var _ Interferer = (*BluetoothInterferer)(nil)

// Apply implements Interferer.
func (b *BluetoothInterferer) Apply(rng *rand.Rand, samples []complex128, sampleRateHz float64) {
	hop := b.HopPeriodSec
	if hop <= 0 {
		hop = 625e-6
	}
	prob := b.InBandProb
	if prob <= 0 {
		prob = 20.0 / 79.0
	}
	if prob > 1 {
		prob = 1
	}
	hopSamples := int(hop * sampleRateHz)
	if hopSamples < 1 {
		hopSamples = 1
	}
	amp := math.Sqrt(dsp.FromDBm(b.PowerDBm))
	for start := 0; start < len(samples); start += hopSamples {
		if rng.Float64() >= prob {
			continue // hop landed out of band
		}
		end := start + hopSamples
		if end > len(samples) {
			end = len(samples)
		}
		f := (rng.Float64() - 0.5) * 0.5 // normalized tone offset within band
		phase := rng.Float64() * 2 * math.Pi
		for i := start; i < end; i++ {
			theta := 2*math.Pi*f*float64(i-start) + phase
			samples[i] += complex(amp*math.Cos(theta), amp*math.Sin(theta))
		}
	}
}

// BurstInterferer models an impulsive in-band jammer: a single high-power
// wideband burst that lands at a uniformly random position inside the
// observation window and lasts an exponentially distributed duration. Unlike
// WiFiInterferer's steady duty-cycled traffic, a burst episode is the fault
// model of §VII-C3's worst case — a co-located radio keying up mid-frame —
// and is what the fault-injection layer (internal/fault) uses for its
// channel-layer burst episodes. Whether a given round suffers a burst at all
// is the caller's draw; Apply always injects exactly one burst.
type BurstInterferer struct {
	// PowerDBm is the burst power at the receiver while it is on the air.
	PowerDBm float64
	// MeanBurstSec is the mean burst duration (default 200 µs).
	MeanBurstSec float64
}

var _ Interferer = (*BurstInterferer)(nil)

// Apply implements Interferer: one wideband Gaussian burst at a random
// offset. Draws happen in a fixed order (start, then duration) so the
// consumed stream length is deterministic.
func (b *BurstInterferer) Apply(rng *rand.Rand, samples []complex128, sampleRateHz float64) {
	if len(samples) == 0 {
		return
	}
	meanBurst := b.MeanBurstSec
	if meanBurst <= 0 {
		meanBurst = 200e-6
	}
	start := int(rng.Float64() * float64(len(samples)))
	dur := int(drawExp(rng, meanBurst*sampleRateHz))
	end := start + dur
	if end > len(samples) {
		end = len(samples)
	}
	sigma := math.Sqrt(dsp.FromDBm(b.PowerDBm) / 2)
	for i := start; i < end; i++ {
		samples[i] += complex(sigma*rng.NormFloat64(), sigma*rng.NormFloat64())
	}
}

// drawExp draws an exponential variate with the given mean, floored at one
// sample so pathological parameters cannot stall the loop.
func drawExp(rng *rand.Rand, mean float64) float64 {
	v := rng.ExpFloat64() * mean
	if v < 1 {
		v = 1
	}
	return v
}

// ExcitationGate produces the on/off envelope of an intermittent excitation
// signal, e.g. OFDM WiFi packets used as the exciter (§VII-C3 case iv): ON
// runs of mean onSec separated by OFF gaps of mean offSec. Tags reflect only
// while the exciter transmits, but do not know its timing — multiplying this
// envelope into every tag's waveform reproduces the "tags do not know when
// there is signal they can reflect" degradation.
func ExcitationGate(rng *rand.Rand, n int, sampleRateHz, onSec, offSec float64) []float64 {
	if onSec <= 0 {
		onSec = 2e-3
	}
	if offSec <= 0 {
		offSec = 1e-3
	}
	out := make([]float64, n)
	on := rng.Float64() < onSec/(onSec+offSec)
	remaining := drawExp(rng, onSec*sampleRateHz)
	if !on {
		remaining = drawExp(rng, offSec*sampleRateHz)
	}
	for i := 0; i < n; i++ {
		if on {
			out[i] = 1
		}
		remaining--
		if remaining <= 0 {
			on = !on
			if on {
				remaining = drawExp(rng, onSec*sampleRateHz)
			} else {
				remaining = drawExp(rng, offSec*sampleRateHz)
			}
		}
	}
	return out
}
