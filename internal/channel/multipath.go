package channel

import (
	"math"
	"math/rand"

	"cbma/internal/dsp"
)

// Multipath is a tapped-delay-line multipath profile with exponentially
// decaying tap powers. At CBMA's microsecond chips an office's ~50 ns RMS
// delay spread is far below a chip, so flat (single-tap) fading dominates;
// this model exists for the "challenging indoor scenarios with rich
// multipath" stress runs where echoes stretch toward a chip period.
type Multipath struct {
	// Taps is the number of echoes including the direct path (≥1).
	Taps int
	// TapSpacingSec is the delay between consecutive taps.
	TapSpacingSec float64
	// DecayDB is the per-tap power decay.
	DecayDB float64
}

// DefaultMultipath returns a mild 3-tap office profile.
func DefaultMultipath() Multipath {
	return Multipath{Taps: 3, TapSpacingSec: 50e-9, DecayDB: 6}
}

// Realize draws complex tap coefficients (first tap deterministic unit,
// later taps Rayleigh with decaying power) and returns them with their
// integer sample delays at the given rate. Taps that round to the same
// sample delay merge implicitly when applied.
func (m Multipath) Realize(rng *rand.Rand, sampleRateHz float64) (coeffs []complex128, delays []int) {
	taps := m.Taps
	if taps < 1 {
		taps = 1
	}
	coeffs = make([]complex128, taps)
	delays = make([]int, taps)
	coeffs[0] = 1
	for k := 1; k < taps; k++ {
		p := dsp.FromDB(-m.DecayDB * float64(k))
		sigma := math.Sqrt(p / 2)
		coeffs[k] = complex(sigma*rng.NormFloat64(), sigma*rng.NormFloat64())
		delays[k] = int(math.Round(m.TapSpacingSec * float64(k) * sampleRateHz))
	}
	return coeffs, delays
}

// Apply convolves samples with a realized tap set, returning a new vector of
// the same length (echoes beyond the window are truncated). Total power is
// normalized so multipath redistributes rather than adds energy on average.
func (m Multipath) Apply(rng *rand.Rand, samples []complex128, sampleRateHz float64) []complex128 {
	coeffs, delays := m.Realize(rng, sampleRateHz)
	var norm float64
	for _, c := range coeffs {
		norm += real(c)*real(c) + imag(c)*imag(c)
	}
	if norm == 0 {
		norm = 1
	}
	scale := complex(1/math.Sqrt(norm), 0)
	out := make([]complex128, len(samples))
	for k, c := range coeffs {
		c *= scale
		d := delays[k]
		for i := d; i < len(samples); i++ {
			out[i] += samples[i-d] * c
		}
	}
	return out
}
