// Package channel models the RF propagation path of the CBMA system: the
// two-segment Friis backscatter link budget of Eq. 1 in the paper, additive
// white Gaussian receiver noise, Rician/Rayleigh block fading with log-normal
// shadowing, and the external interference sources of the Fig. 12 study
// (bursty WiFi, frequency-hopping Bluetooth, intermittent OFDM excitation).
//
// The hardware testbed this replaces (USRP RIO + office environment) is not
// available; DESIGN.md documents how these standard models preserve the
// error-rate behaviour the paper's evaluation depends on.
package channel

import (
	"errors"
	"math"
	"math/cmplx"
	"math/rand"

	"cbma/internal/dsp"
	"cbma/internal/geom"
)

// ErrBadGrid is returned by FriisField for a non-positive grid resolution.
var ErrBadGrid = errors.New("channel: grid resolution must be positive")

// Params holds the radio parameters of a deployment. The zero value is not
// meaningful; start from DefaultParams.
type Params struct {
	// CarrierHz is the excitation carrier frequency (paper: 2 GHz).
	CarrierHz float64
	// TxPowerDBm is the excitation source transmit power P_t.
	TxPowerDBm float64
	// TxGain, RxGain and TagGain are the linear antenna gains G_t, G_r and
	// G_tag of Eq. 1.
	TxGain, RxGain, TagGain float64
	// Alpha is the scattering efficiency α of Eq. 1.
	Alpha float64
	// NoiseFloorDBm is the effective receiver noise floor referred to the
	// backscatter band. It is deliberately far above thermal (−95 dBm at
	// 20 MHz): it lumps in residual excitation leakage after DC blocking,
	// phase noise and ADC quantization, which dominate real backscatter
	// receivers. The value is calibrated so a single tag at 4 m sits a few
	// dB above the floor, matching the FER-vs-distance shape of Fig. 8(a).
	NoiseFloorDBm float64
	// RicianK is the linear Rician K-factor of the fading on each
	// tag→receiver path. +Inf disables fading; 0 is pure Rayleigh.
	RicianK float64
	// ShadowSigmaDB is the log-normal shadowing standard deviation applied
	// once per link draw.
	ShadowSigmaDB float64
}

// DefaultParams returns parameters matching the paper's implementation
// (§VI: 2 GHz carrier; §VII: office environment) with calibrated loss terms.
func DefaultParams() Params {
	return Params{
		CarrierHz:     2e9,
		TxPowerDBm:    20,
		TxGain:        2.0, // ≈3 dBi
		RxGain:        2.0,
		TagGain:       1.6, // ≈2 dBi dipole
		Alpha:         0.3,
		NoiseFloorDBm: -68,
		RicianK:       8.0, // mild LOS office fading
		ShadowSigmaDB: 1.5,
	}
}

// Wavelength returns the carrier wavelength in meters.
func (p Params) Wavelength() float64 { return geom.Wavelength(p.CarrierHz) }

// NoiseFloorW returns the effective noise floor in watts.
func (p Params) NoiseFloorW() float64 { return dsp.FromDBm(p.NoiseFloorDBm) }

// BackscatterRxPower evaluates Eq. 1 of the paper:
//
//	P_r = (P_t·G_t / (4π·d1²)) · (λ²·G_tag²/(4π) · |ΔΓ|²/4 · α) · (1/(4π·d2²) · λ²·G_r/(4π))
//
// for excitation-source→tag distance d1 and tag→receiver distance d2, both
// in meters, and backscatter coefficient magnitude |ΔΓ| set by the tag's
// impedance state. Distances are floored at 10 cm to keep the far-field
// model out of its singularity.
func (p Params) BackscatterRxPower(d1, d2, deltaGamma float64) float64 {
	const minDist = 0.1
	if d1 < minDist {
		d1 = minDist
	}
	if d2 < minDist {
		d2 = minDist
	}
	lambda := p.Wavelength()
	pt := dsp.FromDBm(p.TxPowerDBm)
	term1 := pt * p.TxGain / (4 * math.Pi * d1 * d1)
	term2 := lambda * lambda * p.TagGain * p.TagGain / (4 * math.Pi) *
		(deltaGamma * deltaGamma / 4) * p.Alpha
	term3 := 1 / (4 * math.Pi * d2 * d2) * lambda * lambda * p.RxGain / (4 * math.Pi)
	return term1 * term2 * term3
}

// Link is a realized tag→receiver channel: the complex amplitude gain the
// waveform engine multiplies into the tag's unit-amplitude chip stream, and
// the book-keeping quantities the power-control and node-selection logic
// reads.
type Link struct {
	// Gain is the complex amplitude applied to the tag's waveform. Its
	// squared magnitude is the realized received power in watts.
	Gain complex128
	// MeanRxPowerW is the fading-free Eq. 1 received power.
	MeanRxPowerW float64
	// SNRdB is the realized per-chip SNR against the effective noise floor.
	SNRdB float64
}

// DrawLink realizes the channel from a tag at position tag to the receiver,
// excited from es, including deterministic path-length phase, log-normal
// shadowing and Rician block fading. deltaGamma is the tag's current
// backscatter coefficient magnitude. The draw consumes rng and is intended
// to be redrawn per frame (block fading).
func (p Params) DrawLink(es, tag, rx geom.Point, deltaGamma float64, rng *rand.Rand) Link {
	d1 := es.Distance(tag)
	d2 := tag.Distance(rx)
	mean := p.BackscatterRxPower(d1, d2, deltaGamma)
	// Log-normal shadowing.
	if p.ShadowSigmaDB > 0 {
		mean *= dsp.FromDB(rng.NormFloat64() * p.ShadowSigmaDB)
	}
	// Deterministic phase from total path length.
	lambda := p.Wavelength()
	phase := -2 * math.Pi * (d1 + d2) / lambda
	h := complex(1, 0)
	if !math.IsInf(p.RicianK, 1) {
		h = ricianCoeff(p.RicianK, rng)
	}
	amp := math.Sqrt(mean)
	gain := complex(amp, 0) * cmplx.Exp(complex(0, phase)) * h
	rx2 := real(gain)*real(gain) + imag(gain)*imag(gain)
	return Link{
		Gain:         gain,
		MeanRxPowerW: mean,
		SNRdB:        dsp.DB(rx2 / p.NoiseFloorW()),
	}
}

// DrawFading draws the combined multiplicative channel randomness — the
// log-normal shadowing and Rician fading of DrawLink — as one complex
// coefficient with E|c|² ≈ 1. Callers that model a static deployment draw
// it once per tag and reuse it across frames (Scenario.StaticChannel).
func (p Params) DrawFading(rng *rand.Rand) complex128 {
	c := complex(1, 0)
	if p.ShadowSigmaDB > 0 {
		c *= complex(math.Sqrt(dsp.FromDB(rng.NormFloat64()*p.ShadowSigmaDB)), 0)
	}
	if !math.IsInf(p.RicianK, 1) {
		c *= ricianCoeff(p.RicianK, rng)
	}
	return c
}

// LinkWithFading realizes the link deterministically given a fading
// coefficient (see DrawFading): Eq. 1 amplitude × path phase × fading.
func (p Params) LinkWithFading(es, tag, rx geom.Point, deltaGamma float64, fading complex128) Link {
	d1 := es.Distance(tag)
	d2 := tag.Distance(rx)
	mean := p.BackscatterRxPower(d1, d2, deltaGamma)
	lambda := p.Wavelength()
	phase := -2 * math.Pi * (d1 + d2) / lambda
	gain := complex(math.Sqrt(mean), 0) * cmplx.Exp(complex(0, phase)) * fading
	rx2 := real(gain)*real(gain) + imag(gain)*imag(gain)
	return Link{Gain: gain, MeanRxPowerW: mean, SNRdB: dsp.DB(rx2 / p.NoiseFloorW())}
}

// ricianCoeff draws a unit-mean-power Rician fading coefficient with linear
// K-factor k (k=0 degenerates to Rayleigh).
func ricianCoeff(k float64, rng *rand.Rand) complex128 {
	if k < 0 {
		k = 0
	}
	los := math.Sqrt(k / (k + 1))
	scatter := math.Sqrt(1 / (k + 1))
	re := los + scatter*rng.NormFloat64()/math.Sqrt2
	im := scatter * rng.NormFloat64() / math.Sqrt2
	return complex(re, im)
}

// FriisField evaluates the theoretical received signal strength (dBm) of
// Eq. 1 on an nx×ny grid over the room — the data behind Fig. 5 and the
// terrain the node-selection gradient walks. The tag's |ΔΓ| is fixed at
// deltaGamma. Row j corresponds to y from −Height/2 upward, column i to x
// from −Width/2 rightward.
func (p Params) FriisField(d geom.Deployment, deltaGamma float64, nx, ny int) ([][]float64, error) {
	if nx <= 0 || ny <= 0 {
		return nil, ErrBadGrid
	}
	out := make([][]float64, ny)
	for j := 0; j < ny; j++ {
		row := make([]float64, nx)
		for i := 0; i < nx; i++ {
			pt := geom.Point{
				X: (float64(i)/float64(nx-1+boolToInt(nx == 1)) - 0.5) * d.Room.Width,
				Y: (float64(j)/float64(ny-1+boolToInt(ny == 1)) - 0.5) * d.Room.Height,
			}
			pw := p.BackscatterRxPower(d.ES.Distance(pt), pt.Distance(d.RX), deltaGamma)
			row[i] = dsp.DBm(pw)
		}
		out[j] = row
	}
	return out, nil
}

func boolToInt(b bool) int {
	if b {
		return 1
	}
	return 0
}
