package channel

import (
	"math"
	"math/rand"
	"testing"

	"cbma/internal/dsp"
)

func TestAWGNPowerCalibration(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	const want = 2.5e-7
	x := make([]complex128, 200000)
	AWGN(rng, x, want)
	got := dsp.MeanPower(x)
	if got < want*0.97 || got > want*1.03 {
		t.Errorf("noise power %v, want ≈%v", got, want)
	}
}

func TestAWGNZeroPowerIsNoop(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	x := []complex128{1, 2, 3}
	AWGN(rng, x, 0)
	if x[0] != 1 || x[1] != 2 || x[2] != 3 {
		t.Error("zero power must not modify samples")
	}
	AWGN(rng, x, -1)
	if x[0] != 1 {
		t.Error("negative power must not modify samples")
	}
}

func TestNoiseVectorLength(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	x := NoiseVector(rng, 64, 1e-9)
	if len(x) != 64 {
		t.Fatalf("len %d", len(x))
	}
	if dsp.Energy(x) == 0 {
		t.Error("noise must be non-zero")
	}
}

func TestWiFiInterfererDutyCycle(t *testing.T) {
	w := &WiFiInterferer{PowerDBm: -40, DutyCycle: 0.3, MeanBurstSec: 1e-4}
	rng := rand.New(rand.NewSource(4))
	const n = 500000
	x := make([]complex128, n)
	w.Apply(rng, x, 10e6)
	// Count samples that received interference.
	busy := 0
	for _, v := range x {
		if v != 0 {
			busy++
		}
	}
	frac := float64(busy) / n
	if frac < 0.2 || frac > 0.4 {
		t.Errorf("busy fraction %v, want ≈0.3", frac)
	}
	// Power during busy periods should approximate PowerDBm.
	var acc float64
	for _, v := range x {
		if v != 0 {
			acc += real(v)*real(v) + imag(v)*imag(v)
		}
	}
	gotDBm := dsp.DBm(acc / float64(busy))
	if math.Abs(gotDBm-(-40)) > 1 {
		t.Errorf("busy-period power %v dBm, want ≈-40", gotDBm)
	}
}

func TestWiFiInterfererDefaultsClamp(t *testing.T) {
	w := &WiFiInterferer{PowerDBm: -50, DutyCycle: 5} // clamps to 1
	rng := rand.New(rand.NewSource(5))
	x := make([]complex128, 1000)
	w.Apply(rng, x, 1e6)
	busy := 0
	for _, v := range x {
		if v != 0 {
			busy++
		}
	}
	if busy != len(x) {
		t.Errorf("duty 1 must keep channel always busy, got %d/%d", busy, len(x))
	}
}

func TestBluetoothInterfererHitRate(t *testing.T) {
	b := &BluetoothInterferer{PowerDBm: -45, HopPeriodSec: 1e-4, InBandProb: 0.25}
	rng := rand.New(rand.NewSource(6))
	const n = 400000
	const fs = 10e6
	x := make([]complex128, n)
	b.Apply(rng, x, fs)
	hopSamples := int(1e-4 * fs)
	hops := n / hopSamples
	hit := 0
	for h := 0; h < hops; h++ {
		if x[h*hopSamples] != 0 || x[h*hopSamples+1] != 0 {
			hit++
		}
	}
	frac := float64(hit) / float64(hops)
	if frac < 0.15 || frac > 0.35 {
		t.Errorf("in-band hop fraction %v, want ≈0.25", frac)
	}
}

func TestBluetoothInterfererTonePower(t *testing.T) {
	b := &BluetoothInterferer{PowerDBm: -45, HopPeriodSec: 1, InBandProb: 1}
	rng := rand.New(rand.NewSource(7))
	x := make([]complex128, 10000)
	b.Apply(rng, x, 1e6)
	got := dsp.DBm(dsp.MeanPower(x))
	if math.Abs(got-(-45)) > 0.5 {
		t.Errorf("tone power %v dBm, want -45", got)
	}
}

func TestExcitationGateDuty(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	const n = 400000
	gate := ExcitationGate(rng, n, 10e6, 2e-3, 1e-3)
	var on float64
	for _, v := range gate {
		if v != 0 && v != 1 {
			t.Fatal("gate must be binary")
		}
		on += v
	}
	frac := on / n
	if frac < 0.55 || frac > 0.78 {
		t.Errorf("on fraction %v, want ≈2/3", frac)
	}
}

func TestExcitationGateDefaults(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	gate := ExcitationGate(rng, 1000, 1e6, 0, 0)
	if len(gate) != 1000 {
		t.Fatalf("len %d", len(gate))
	}
}

func TestMultipathPreservesAveragePower(t *testing.T) {
	m := DefaultMultipath()
	rng := rand.New(rand.NewSource(10))
	x := make([]complex128, 20000)
	for i := range x {
		x[i] = complex(rng.NormFloat64(), rng.NormFloat64())
	}
	inP := dsp.MeanPower(x)
	var acc float64
	const trials = 200
	for i := 0; i < trials; i++ {
		y := m.Apply(rng, x, 20e6)
		acc += dsp.MeanPower(y)
	}
	ratio := acc / trials / inP
	if ratio < 0.9 || ratio > 1.1 {
		t.Errorf("multipath power ratio %v, want ≈1", ratio)
	}
}

func TestMultipathSingleTapIsScaledIdentity(t *testing.T) {
	m := Multipath{Taps: 1}
	rng := rand.New(rand.NewSource(11))
	x := []complex128{1, 2i, -3}
	y := m.Apply(rng, x, 1e6)
	for i := range x {
		if y[i] != x[i] {
			t.Fatalf("single tap must be identity, sample %d: %v vs %v", i, y[i], x[i])
		}
	}
}

func TestMultipathZeroTapsClamps(t *testing.T) {
	m := Multipath{Taps: 0}
	rng := rand.New(rand.NewSource(12))
	coeffs, delays := m.Realize(rng, 1e6)
	if len(coeffs) != 1 || len(delays) != 1 {
		t.Fatalf("got %d taps, want 1", len(coeffs))
	}
}

func TestMultipathDelaysQuantize(t *testing.T) {
	m := Multipath{Taps: 3, TapSpacingSec: 1e-6, DecayDB: 3}
	rng := rand.New(rand.NewSource(13))
	_, delays := m.Realize(rng, 4e6)
	if delays[1] != 4 || delays[2] != 8 {
		t.Errorf("delays %v, want [0 4 8]", delays)
	}
}
