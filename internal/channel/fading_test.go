package channel

import (
	"math"
	"math/cmplx"
	"math/rand"
	"testing"

	"cbma/internal/geom"
)

func TestDrawFadingUnitMeanPower(t *testing.T) {
	p := DefaultParams()
	rng := rand.New(rand.NewSource(21))
	var acc float64
	const n = 30000
	for i := 0; i < n; i++ {
		c := p.DrawFading(rng)
		acc += real(c)*real(c) + imag(c)*imag(c)
	}
	if m := acc / n; m < 0.93 || m > 1.07 {
		t.Errorf("fading mean power %v, want ≈1", m)
	}
}

func TestDrawFadingDisabled(t *testing.T) {
	p := DefaultParams()
	p.ShadowSigmaDB = 0
	p.RicianK = math.Inf(1)
	rng := rand.New(rand.NewSource(22))
	if c := p.DrawFading(rng); c != 1 {
		t.Errorf("disabled fading must be exactly 1, got %v", c)
	}
}

func TestLinkWithFadingDeterministic(t *testing.T) {
	p := DefaultParams()
	es, tag, rx := geom.Point{X: -0.5}, geom.Point{Y: 1}, geom.Point{X: 0.5}
	fading := complex(0.8, 0.3)
	a := p.LinkWithFading(es, tag, rx, 0.75, fading)
	b := p.LinkWithFading(es, tag, rx, 0.75, fading)
	if a != b {
		t.Error("LinkWithFading must be a pure function")
	}
	// |gain|² = mean power × |fading|².
	want := a.MeanRxPowerW * (0.8*0.8 + 0.3*0.3)
	got := real(a.Gain)*real(a.Gain) + imag(a.Gain)*imag(a.Gain)
	if math.Abs(got-want) > 1e-18 {
		t.Errorf("|gain|² = %v, want %v", got, want)
	}
}

func TestLinkWithFadingMatchesDrawLinkStatistics(t *testing.T) {
	// Composing DrawFading with LinkWithFading must give the same mean
	// power as DrawLink.
	p := DefaultParams()
	es, tagPos, rx := geom.Point{X: -0.5}, geom.Point{Y: 1.2}, geom.Point{X: 0.5}
	rngA := rand.New(rand.NewSource(23))
	rngB := rand.New(rand.NewSource(23))
	var accA, accB float64
	const n = 20000
	for i := 0; i < n; i++ {
		la := p.DrawLink(es, tagPos, rx, 1, rngA)
		accA += real(la.Gain)*real(la.Gain) + imag(la.Gain)*imag(la.Gain)
		lb := p.LinkWithFading(es, tagPos, rx, 1, p.DrawFading(rngB))
		accB += real(lb.Gain)*real(lb.Gain) + imag(lb.Gain)*imag(lb.Gain)
	}
	if ratio := accA / accB; ratio < 0.9 || ratio > 1.1 {
		t.Errorf("mean-power ratio %v between the two paths, want ≈1", ratio)
	}
}

func TestLinkWithFadingPhaseFromPathLength(t *testing.T) {
	// With unit fading, the gain's phase must be exactly the path-length
	// phase −2π(d1+d2)/λ (mod 2π).
	p := DefaultParams()
	es, rx := geom.Point{X: -0.5}, geom.Point{X: 0.5}
	tagPos := geom.Point{X: 0.2, Y: 1.3}
	g := p.LinkWithFading(es, tagPos, rx, 1, 1)
	d := es.Distance(tagPos) + tagPos.Distance(rx)
	want := math.Mod(-2*math.Pi*d/p.Wavelength(), 2*math.Pi)
	got := cmplx.Phase(g.Gain)
	diff := math.Mod(got-want+3*2*math.Pi, 2*math.Pi)
	if diff > 1e-6 && diff < 2*math.Pi-1e-6 {
		t.Errorf("phase %v, want %v (mod 2π)", got, want)
	}
}
