// Package paperbench defines one runnable experiment per table and figure
// of the paper's evaluation (plus the DESIGN.md ablations), each printing
// the same rows/series the paper reports. cmd/cbmabench and the repository
// bench harness both dispatch through this registry so they emit identical
// output.
package paperbench

import (
	"fmt"
	"io"

	"cbma/internal/baseline"
	"cbma/internal/core"
	"cbma/internal/obs"
	"cbma/internal/pn"
	"cbma/internal/report"
	"cbma/internal/sim"
)

// Options scales the experiment workloads. DefaultOptions is the
// full-fidelity configuration used for EXPERIMENTS.md; Quick returns a
// configuration suitable for smoke runs.
type Options struct {
	// Seed drives all randomness.
	Seed int64
	// Packets per sweep point (paper: 1000 collided packets per point).
	Packets int
	// Groups of random placements for the macro benchmarks (paper: 50).
	Groups int
	// Trials for the user-detection experiment (paper: 1000).
	Trials int
	// PayloadBytes per frame.
	PayloadBytes int
	// Obs, when non-nil, is attached to every scenario the experiments
	// build, collecting stage timings, events and campaign progress.
	// Strictly observational (see sim.Scenario.Obs); excluded from JSON so
	// manifests hashing an Options value ignore it.
	Obs *obs.Observer `json:"-"`
}

// DefaultOptions returns the full-fidelity workload.
func DefaultOptions() Options {
	return Options{Seed: 1, Packets: 200, Groups: 25, Trials: 1000, PayloadBytes: 16}
}

// Quick returns a fast smoke-run workload.
func Quick() Options {
	return Options{Seed: 1, Packets: 30, Groups: 4, Trials: 60, PayloadBytes: 8}
}

// seedAblationSelect labels this package's per-group seed derivation in
// sim.DeriveSeed's label space. Kept clear of internal/sim's sweep labels
// (1–11) and internal/core's deployment labels (200s).
const seedAblationSelect uint64 = 301

// BaseScenario exposes the canonical scenario an option set implies — the
// identity experiments start from before per-figure modifications. cbmabench
// hashes it (sim.Scenario.Hash) into its run manifest so BENCH results are
// correlatable with cbmasim runs and cbmad cache entries.
func (o Options) BaseScenario() sim.Scenario { return o.base() }

// base builds the canonical scenario for an option set.
func (o Options) base() sim.Scenario {
	scn := sim.DefaultScenario()
	scn.Seed = o.Seed
	scn.Packets = o.Packets
	scn.PayloadBytes = o.PayloadBytes
	scn.Obs = o.Obs
	return scn
}

// Experiment is one registry entry.
type Experiment struct {
	// ID is the CLI name (e.g. "fig8a"); Title describes the paper
	// artifact it regenerates.
	ID, Title string
	// Run executes the experiment and writes its table to w.
	Run func(w io.Writer, o Options) error
}

// All returns the registry in presentation order.
func All() []Experiment {
	return []Experiment{
		{"table1", "Table I — summary of existing backscatter systems", Table1},
		{"table2", "Table II — error rate vs power difference between tags", Table2},
		{"fig5", "Fig. 5 — theoretical backscatter signal strength field", Fig5},
		{"fig8a", "Fig. 8(a) — frame detection error vs distance", Fig8a},
		{"fig8b", "Fig. 8(b) — frame detection error vs ES transmit power", Fig8b},
		{"fig8c", "Fig. 8(c) — frame detection error vs preamble length", Fig8c},
		{"fig9a", "Fig. 9(a) — error rate vs bitrate", Fig9a},
		{"fig9b", "Fig. 9(b) — error rate, Gold vs 2NC codes", Fig9b},
		{"fig9c", "Fig. 9(c) — error rate with/without power control", Fig9c},
		{"userdetect", "§VII-B2 — user detection accuracy (10 tags)", UserDetect},
		{"fig10", "Fig. 10 — CDFs of error rate (5 tags, macro deployment)", Fig10},
		{"fig11", "Fig. 11 — error rate under tag asynchrony", Fig11},
		{"fig12", "Fig. 12 — packet reception under working conditions", Fig12},
		{"headline", "Headline — 10-tag aggregate rate and gain vs TDMA", Headline},
		{"ablation-detector", "Ablation — plain correlation receiver vs SIC", AblationDetector},
		{"ablation-impedance", "Ablation — impedance ladder granularity", AblationImpedance},
		{"ablation-codes", "Ablation — Walsh (sync-CDMA bound) vs Gold vs 2NC", AblationCodes},
		{"ablation-select", "Ablation — greedy vs annealing node selection", AblationSelect},
		{"ext-cfo", "Extension — tag oscillator CFO vs phase tracking", ExtCFO},
		{"ext-ackloss", "Extension — power control under ACK downlink loss", ExtAckLoss},
	}
}

// Find returns the experiment with the given ID.
func Find(id string) (Experiment, bool) {
	for _, e := range All() {
		if e.ID == id {
			return e, true
		}
	}
	return Experiment{}, false
}

// Table1 prints the existing-systems summary plus the locally measured
// CBMA row.
func Table1(w io.Writer, o Options) error {
	scn := o.base()
	scn.NumTags = 10
	scn.Family = pn.Family2NC
	ms, err := sim.RunCampaign([]sim.Scenario{scn}, sim.CampaignOpts{What: "table1"})
	if err != nil {
		return err
	}
	rows := append(baseline.Table1(), baseline.CBMARow(ms[0].RawAggregateBps, 10, 5))
	fmt.Fprintf(w, "%-22s %12s %8s %10s\n", "technology", "data rate", "tags", "range(m)")
	for _, r := range rows {
		fmt.Fprintf(w, "%-22s %12s %8d %10.4g\n",
			r.Technology, baseline.FormatRate(r.DataRateBps), r.Tags, r.RangeMeters)
	}
	return nil
}

// Table2 prints two-tag power-difference cases.
func Table2(w io.Writer, o Options) error {
	rows, err := sim.PowerDifferenceTable(o.base(), 10)
	if err != nil {
		return err
	}
	_, err = io.WriteString(w, report.PowerDiffTable(rows))
	return err
}

// Fig5 prints the Friis field heat map.
func Fig5(w io.Writer, o Options) error {
	scn := o.base()
	field, err := scn.Channel.FriisField(scn.Deployment, 1, 60, 20)
	if err != nil {
		return err
	}
	_, err = io.WriteString(w, report.FieldHeatmap(field))
	return err
}

var microTagCounts = []int{2, 3, 4}

// Fig8a prints FER vs tag-to-RX distance.
func Fig8a(w io.Writer, o Options) error {
	distances := []float64{0.1, 0.5, 1.0, 1.5, 2.0, 2.5, 3.0, 3.5, 4.0}
	series, err := sim.SweepDistance(o.base(), distances, microTagCounts)
	if err != nil {
		return err
	}
	_, err = io.WriteString(w, report.SeriesTable("distance(m)", series, report.DetectionFER))
	return err
}

// Fig8b prints FER vs excitation transmit power.
func Fig8b(w io.Writer, o Options) error {
	base := o.base()
	base.TagLineDistance = 2.5 // power matters where links are marginal
	powers := []float64{-5, 0, 5, 10, 15, 20}
	series, err := sim.SweepTxPower(base, powers, microTagCounts)
	if err != nil {
		return err
	}
	_, err = io.WriteString(w, report.SeriesTable("ES power(dBm)", series, report.DetectionFER))
	return err
}

// Fig8c prints FER vs preamble length.
func Fig8c(w io.Writer, o Options) error {
	base := o.base()
	base.TagLineDistance = 3.0
	series, err := sim.SweepPreamble(base, []int{4, 8, 16, 32, 64}, microTagCounts)
	if err != nil {
		return err
	}
	_, err = io.WriteString(w, report.SeriesTable("preamble(bits)", series, report.DetectionFER))
	return err
}

// Fig9a prints FER vs bitrate.
func Fig9a(w io.Writer, o Options) error {
	rates := []float64{250e3, 500e3, 1e6, 2.5e6, 5e6, 10e6, 20e6}
	series, err := sim.SweepBitrate(o.base(), rates, microTagCounts)
	if err != nil {
		return err
	}
	_, err = io.WriteString(w, report.SeriesTable("bitrate(bps)", series, report.DetectionFER))
	return err
}

// Fig9b prints Gold vs 2NC error rates.
func Fig9b(w io.Writer, o Options) error {
	series, err := sim.SweepCodes(o.base(), []int{2, 3, 4, 5})
	if err != nil {
		return err
	}
	_, err = io.WriteString(w, report.SeriesTable("tags", series, report.FER))
	return err
}

// Fig9c prints error rate with and without power control.
func Fig9c(w io.Writer, o Options) error {
	series, err := sim.SweepPowerControl(o.base(), []int{2, 3, 4, 5}, o.Groups)
	if err != nil {
		return err
	}
	_, err = io.WriteString(w, report.SeriesTable("tags", series, report.FER))
	return err
}

// UserDetect prints the 10-tag user-detection accuracy.
func UserDetect(w io.Writer, o Options) error {
	res, err := sim.UserDetection(o.base(), 10, o.Trials)
	if err != nil {
		return err
	}
	_, err = io.WriteString(w, report.UserDetection(res))
	return err
}

// Fig10 prints the deployment-study CDF quantiles.
func Fig10(w io.Writer, o Options) error {
	base := o.base()
	base.NumTags = 5
	none, pc, pcns, err := core.DeploymentStudy(base, o.Groups)
	if err != nil {
		return err
	}
	out, err := report.CDFTable(
		[]string{"no control", "power control", "power control + selection"},
		[][]float64{none, pc, pcns})
	if err != nil {
		return err
	}
	_, err = io.WriteString(w, out)
	return err
}

// Fig11 prints error rate vs tag-2 delay.
func Fig11(w io.Writer, o Options) error {
	delays := []float64{0, 0.25, 0.5, 1, 1.5, 2, 3, 4, 5}
	s, err := sim.SweepAsync(o.base(), delays)
	if err != nil {
		return err
	}
	_, err = io.WriteString(w, report.SeriesTable("delay(chips)", []sim.Series{s}, report.FER))
	return err
}

// Fig12 prints packet reception under the four working conditions.
func Fig12(w io.Writer, o Options) error {
	base := o.base()
	base.NumTags = 3
	pts, err := sim.WorkingConditions(base)
	if err != nil {
		return err
	}
	_, err = io.WriteString(w, report.PointsTable(pts, report.PRR, "PRR"))
	return err
}

// Headline prints the 10-tag aggregate rate and the gain over TDMA.
func Headline(w io.Writer, o Options) error {
	scn := o.base()
	scn.NumTags = 10
	scn.Family = pn.Family2NC
	cb, err := baseline.CBMA(scn)
	if err != nil {
		return err
	}
	td, err := baseline.TDMA(scn, baseline.TDMAConfig{Rounds: scn.Packets})
	if err != nil {
		return err
	}
	ms, err := sim.RunCampaign([]sim.Scenario{scn}, sim.CampaignOpts{What: "headline"})
	if err != nil {
		return err
	}
	_, err = io.WriteString(w, report.Headline(cb.GoodputBps, td.GoodputBps, ms[0].RawAggregateBps, 10))
	return err
}

// AblationDetector compares the paper's plain correlation receiver against
// the SIC-enhanced receiver at five concurrent tags (DESIGN.md ablation 1).
// Both arms share the seed, so they decode the same collisions.
func AblationDetector(w io.Writer, o Options) error {
	points := make([]sim.Scenario, 2)
	for v, sic := range []bool{false, true} {
		scn := o.base()
		scn.NumTags = 5
		scn.SIC = sic
		points[v] = scn
	}
	ms, err := sim.RunCampaign(points, sim.CampaignOpts{What: "detector ablation"})
	if err != nil {
		return err
	}
	for v, name := range []string{"plain correlation", "with SIC"} {
		fmt.Fprintf(w, "%-20s FER %.4f  false frames %d\n", name, ms[v].FER, ms[v].FalseFrames)
	}
	return nil
}

// AblationImpedance sweeps the impedance-ladder granularity (ablation 2).
func AblationImpedance(w io.Writer, o Options) error {
	for _, states := range []int{2, 4, 8} {
		series, err := sim.SweepPowerControl(scnWithStates(o, states), []int{4}, o.Groups/2+1)
		if err != nil {
			return err
		}
		var withPC, withoutPC float64
		for _, s := range series {
			if s.Name == "with power control" {
				withPC = s.Points[0].Metrics.FER
			} else {
				withoutPC = s.Points[0].Metrics.FER
			}
		}
		fmt.Fprintf(w, "%d impedance states: FER %.4f with PC, %.4f without\n",
			states, withPC, withoutPC)
	}
	return nil
}

func scnWithStates(o Options, states int) sim.Scenario {
	scn := o.base()
	scn.ImpedanceStates = states
	return scn
}

// AblationCodes adds the synchronous-CDMA upper bound (Walsh) to the
// Fig. 9(b) comparison (ablation 4). The whole tags × family grid runs as
// one campaign; every cell keeps the base seed so families are paired.
func AblationCodes(w io.Writer, o Options) error {
	tagCounts := []int{2, 3, 4, 5}
	fams := []int{3 /*walsh*/, 1 /*gold*/, 2 /*2nc*/}
	var points []sim.Scenario
	for _, n := range tagCounts {
		for _, fam := range fams {
			scn := o.base()
			scn.NumTags = n
			scn.Family = famFromInt(fam)
			points = append(points, scn)
		}
	}
	ms, err := sim.RunCampaign(points, sim.CampaignOpts{What: "code ablation"})
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "%6s %10s %10s %10s\n", "tags", "walsh", "gold", "2nc")
	k := 0
	for _, n := range tagCounts {
		fmt.Fprintf(w, "%6d", n)
		for range fams {
			fmt.Fprintf(w, " %10.4f", ms[k].FER)
			k++
		}
		fmt.Fprintln(w)
	}
	return nil
}

// ExtCFO sweeps per-tag carrier-frequency offset with the receiver's
// decision-directed phase tracking on and off — the oscillator-tolerance
// question the paper's §VIII discussion raises and defers.
func ExtCFO(w io.Writer, o Options) error {
	ppms := []float64{0, 0.05, 0.1, 0.2, 0.5, 1.0}
	var points []sim.Scenario
	for _, ppm := range ppms {
		for _, tracking := range []bool{false, true} {
			scn := o.base()
			scn.NumTags = 2
			scn.CFOppm = ppm
			scn.PhaseTracking = tracking
			points = append(points, scn)
		}
	}
	ms, err := sim.RunCampaign(points, sim.CampaignOpts{What: "cfo extension"})
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "%10s %14s %14s\n", "CFO (ppm)", "plain FER", "tracking FER")
	for i, ppm := range ppms {
		fmt.Fprintf(w, "%10.2f %14.4f %14.4f\n", ppm, ms[2*i].FER, ms[2*i+1].FER)
	}
	return nil
}

// ExtAckLoss sweeps ACK downlink loss and reports how often Algorithm 1
// still converges — the control loop's robustness to an unreliable
// feedback channel.
func ExtAckLoss(w io.Writer, o Options) error {
	losses := []float64{0, 0.25, 0.5, 0.9}
	points := make([]sim.Scenario, len(losses))
	for i, loss := range losses {
		scn := o.base()
		scn.NumTags = 3
		scn.PowerControl = true
		scn.RandomInitialImpedance = true
		scn.AckLossProb = loss
		points[i] = scn
	}
	ms, err := sim.RunCampaign(points, sim.CampaignOpts{What: "ack loss extension"})
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "%10s %12s %12s %14s\n", "ACK loss", "FER", "PC rounds", "converged")
	for i, loss := range losses {
		fmt.Fprintf(w, "%10.2f %12.4f %12d %14v\n",
			loss, ms[i].FER, ms[i].PowerControlRounds, ms[i].PowerControlConverged)
	}
	return nil
}

// AblationSelect compares greedy against annealing node selection on bad
// deployments (ablation 3).
func AblationSelect(w io.Writer, o Options) error {
	for _, greedy := range []bool{true, false} {
		base := o.base()
		base.NumTags = 5
		base.PowerControl = true
		base.RandomInitialImpedance = true
		var sum float64
		groups := o.Groups/2 + 1
		for g := 0; g < groups; g++ {
			scn := base
			scn.Seed = sim.DeriveSeed(o.Seed, seedAblationSelect, uint64(g))
			sys, err := core.New(core.Config{
				Scenario:      scn,
				NodeSelection: true,
				NodeSelect:    nodeSelectCfg(greedy),
			})
			if err != nil {
				return err
			}
			rep, err := sys.Run()
			if err != nil {
				return err
			}
			sum += rep.Final.FER
		}
		name := "annealing"
		if greedy {
			name = "greedy"
		}
		fmt.Fprintf(w, "%-10s node selection: mean FER %.4f over %d groups\n",
			name, sum/float64(groups), groups)
	}
	return nil
}
