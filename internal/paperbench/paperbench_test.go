package paperbench

import (
	"bytes"
	"strings"
	"testing"
)

func TestRegistryComplete(t *testing.T) {
	// Every table/figure in DESIGN.md's per-experiment index must have a
	// registry entry.
	want := []string{
		"table1", "table2", "fig5", "fig8a", "fig8b", "fig8c",
		"fig9a", "fig9b", "fig9c", "userdetect", "fig10", "fig11",
		"fig12", "headline",
		"ablation-detector", "ablation-impedance", "ablation-codes", "ablation-select",
		"ext-cfo", "ext-ackloss",
	}
	all := All()
	if len(all) != len(want) {
		t.Fatalf("registry has %d entries, want %d", len(all), len(want))
	}
	for i, id := range want {
		if all[i].ID != id {
			t.Errorf("entry %d = %q, want %q", i, all[i].ID, id)
		}
		if all[i].Title == "" || all[i].Run == nil {
			t.Errorf("entry %q incomplete", all[i].ID)
		}
	}
}

func TestFind(t *testing.T) {
	if _, ok := Find("fig9b"); !ok {
		t.Error("fig9b not found")
	}
	if _, ok := Find("nope"); ok {
		t.Error("bogus ID found")
	}
}

func TestQuickRunAllExperiments(t *testing.T) {
	if testing.Short() {
		t.Skip("full registry smoke run is slow")
	}
	o := Quick()
	for _, e := range All() {
		e := e
		t.Run(e.ID, func(t *testing.T) {
			var buf bytes.Buffer
			if err := e.Run(&buf, o); err != nil {
				t.Fatalf("%s: %v", e.ID, err)
			}
			if strings.TrimSpace(buf.String()) == "" {
				t.Errorf("%s produced no output", e.ID)
			}
		})
	}
}

func TestOptionsDefaults(t *testing.T) {
	d := DefaultOptions()
	if d.Packets < 100 || d.Groups < 10 || d.Trials < 500 {
		t.Errorf("default options too small for fidelity: %+v", d)
	}
	q := Quick()
	if q.Packets >= d.Packets {
		t.Error("quick options must be smaller than defaults")
	}
}
