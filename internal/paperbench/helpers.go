package paperbench

import (
	"cbma/internal/mac"
	"cbma/internal/pn"
)

// famFromInt maps the small integers used in the registry tables to code
// families, keeping the experiment definitions terse.
func famFromInt(v int) pn.Family {
	switch v {
	case 2:
		return pn.Family2NC
	case 3:
		return pn.FamilyWalsh
	case 4:
		return pn.FamilyKasami
	default:
		return pn.FamilyGold
	}
}

// nodeSelectCfg builds the selector configuration for the greedy/annealing
// ablation.
func nodeSelectCfg(greedy bool) mac.NodeSelectConfig {
	return mac.NodeSelectConfig{Greedy: greedy}
}
