package core

import (
	"testing"

	"cbma/internal/leaktest"
)

// TestMain fails the package run if any test leaves a goroutine behind.
func TestMain(m *testing.M) {
	leaktest.Main(m)
}
