// Package core is the interface-driven heart of the campaign-serving
// stack: a Runner abstraction over the simulation engine, a content-keyed
// result Store (in-memory LRU and on-disk content-addressed backends), and
// a Service that composes the two so identical requests are answered from
// the cache instead of re-executed.
//
// Caching is sound — not an approximation — because the layers below
// guarantee that an identical request produces bit-identical Metrics:
// per-point seeds come from collision-free DeriveSeed labels, rounds draw
// from per-round RNG streams and commit in round order (worker-count
// invariant), and telemetry is provably off the result path. The cache key
// is Scenario.Hash(), the canonical golden-tested serialization of every
// result-relevant scenario field. See DESIGN.md, "Service architecture".
package core

import (
	"context"

	"cbma/internal/sim"
)

// Runner executes a slice of campaign points and returns their Metrics,
// indexed like the points. It is the seam between the serving stack and
// the simulation engine: the daemon runs campaigns through it, tests
// substitute counting or failing runners, and a future sharded executor
// (ROADMAP) slots in here without touching the cache or batch layers.
//
// Implementations must preserve sim.RunCampaignContext's contract: every
// point is attempted regardless of other points' failures, failed points
// hold the zero Metrics in their slot with the detail in a
// *sim.CampaignError, and cancellation returns partial, Interrupted
// metrics together with the context's error.
type Runner interface {
	Run(ctx context.Context, points []sim.Scenario, opts sim.CampaignOpts) ([]sim.Metrics, error)
}

// CampaignRunner is the production Runner: sim.RunCampaignContext.
type CampaignRunner struct{}

// Run implements Runner.
func (CampaignRunner) Run(ctx context.Context, points []sim.Scenario, opts sim.CampaignOpts) ([]sim.Metrics, error) {
	return sim.RunCampaignContext(ctx, points, opts)
}
