package core

import (
	"context"
	"errors"

	"cbma/internal/obs"
	"cbma/internal/sim"
)

// PointResult is the serving-layer result of one campaign point: the
// metrics, where they came from, and the content key they are (or would
// be) cached under. Err is the per-point failure, if any; failed points
// carry the zero Metrics, mirroring sim.RunCampaignContext.
type PointResult struct {
	Metrics      sim.Metrics `json:"metrics"`
	Cached       bool        `json:"cached"`
	ScenarioHash string      `json:"scenario_hash"`
	Err          string      `json:"error,omitempty"`
}

// Service answers campaign requests from the cache when it can and from
// the Runner when it must. It is the layer the batcher and the daemon sit
// on: pure request/response, no queueing, no transport.
type Service struct {
	// Runner executes cache misses. Required.
	Runner Runner
	// Store, when non-nil, is probed before and filled after execution.
	Store Store
	// Obs, when non-nil, counts cache traffic (serve.cache.hits,
	// serve.cache.misses, serve.cache.skipped) and point executions
	// (serve.points.executed, serve.points.failed).
	Obs *obs.Observer
}

// Run resolves every point — each either served from the store or
// executed through the Runner as one sub-campaign sharing opts' worker
// budget — and returns results indexed like points. Points whose hash
// cannot be computed (invalid scenarios) fail individually without
// blocking the rest.
//
// The aggregate error mirrors sim.RunCampaignContext: a *sim.CampaignError
// carrying every failed point (indexed into the REQUEST's points, not the
// executed subset), or the context's error when the run was cancelled.
// Results of failed, interrupted or cancelled points are never cached;
// cached results are only ever complete, healthy metrics.
func (s *Service) Run(ctx context.Context, points []sim.Scenario, opts sim.CampaignOpts) ([]PointResult, error) {
	out := make([]PointResult, len(points))
	var (
		missIdx []int          // request indices needing execution
		missPts []sim.Scenario // their scenarios, in order
	)
	for i, scn := range points {
		h, err := scn.Hash()
		if err != nil {
			out[i].Err = err.Error()
			s.Obs.Counter("serve.points.failed").Inc()
			continue
		}
		out[i].ScenarioHash = h
		k := Key{ScenarioHash: h, Seed: scn.Seed}
		if s.Store != nil {
			if e, ok := s.Store.Get(k); ok {
				out[i].Metrics = e.Metrics
				out[i].Cached = true
				s.Obs.Counter("serve.cache.hits").Inc()
				// Cache-served points never reach the engine, so they would
				// be invisible in the job's trace timeline; record them on
				// the point's own (per-job) observer.
				if po := scn.Obs; po.EmitsEvents() {
					po.Emit("point_cached", map[string]any{"point": i, "hash": h})
				}
				continue
			}
		}
		s.Obs.Counter("serve.cache.misses").Inc()
		missIdx = append(missIdx, i)
		missPts = append(missPts, scn)
	}

	var failed []*sim.PointError
	runErr := error(nil)
	if len(missPts) > 0 {
		ms, err := s.Runner.Run(ctx, missPts, opts)
		var cerr *sim.CampaignError
		switch {
		case errors.As(err, &cerr):
			// Re-index the per-point errors into the request's coordinates
			// and mark the failed slots before the caching loop below.
			for _, pe := range cerr.Points {
				reqIdx := missIdx[pe.Point]
				out[reqIdx].Err = pe.Err.Error()
				failed = append(failed, &sim.PointError{What: pe.What, Point: reqIdx, Err: pe.Err})
				s.Obs.Counter("serve.points.failed").Inc()
			}
		case err != nil:
			runErr = err
		}
		for j, reqIdx := range missIdx {
			if j >= len(ms) {
				break
			}
			out[reqIdx].Metrics = ms[j]
			if out[reqIdx].Err != "" {
				continue
			}
			s.Obs.Counter("serve.points.executed").Inc()
			if ms[j].Interrupted || ctx.Err() != nil {
				// A cancelled run leaves partial metrics; caching them would
				// serve truncated results as if complete.
				s.Obs.Counter("serve.cache.skipped").Inc()
				continue
			}
			if s.Store != nil {
				k := Key{ScenarioHash: out[reqIdx].ScenarioHash, Seed: missPts[j].Seed}
				s.Store.Put(k, Entry{Key: k, Metrics: ms[j]})
			}
		}
	}

	// Hash failures count as failed points too, so the aggregate error is
	// complete; collect them in request order for a stable report.
	for i := range out {
		if out[i].Err != "" && out[i].ScenarioHash == "" {
			failed = append(failed, &sim.PointError{What: opts.What, Point: i, Err: errors.New(out[i].Err)})
		}
	}
	if len(failed) > 0 {
		sortPointErrors(failed)
		return out, &sim.CampaignError{Points: failed}
	}
	if runErr != nil {
		return out, runErr
	}
	if err := ctx.Err(); err != nil {
		return out, err
	}
	return out, nil
}

// sortPointErrors orders a failure list by request index (insertion sort:
// the list is tiny and mostly ordered already).
func sortPointErrors(pes []*sim.PointError) {
	for i := 1; i < len(pes); i++ {
		for j := i; j > 0 && pes[j-1].Point > pes[j].Point; j-- {
			pes[j-1], pes[j] = pes[j], pes[j-1]
		}
	}
}
