package core

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"cbma/internal/obs"
	"cbma/internal/sim"
)

func testKey(n int64) Key {
	return Key{ScenarioHash: "deadbeef", Seed: n}
}

func testEntry(n int64) Entry {
	return Entry{Key: testKey(n), Metrics: sim.Metrics{NumTags: int(n), FramesSent: 100, FramesDelivered: 90, FER: 0.1}}
}

func TestMemoryStoreLRU(t *testing.T) {
	s := NewMemoryStore(2)
	s.Put(testKey(1), testEntry(1))
	s.Put(testKey(2), testEntry(2))
	if _, ok := s.Get(testKey(1)); !ok { // refresh 1 → 2 is now LRU
		t.Fatal("entry 1 missing before capacity reached")
	}
	s.Put(testKey(3), testEntry(3))
	if _, ok := s.Get(testKey(2)); ok {
		t.Error("entry 2 survived eviction, want LRU evicted")
	}
	if _, ok := s.Get(testKey(1)); !ok {
		t.Error("entry 1 evicted despite being recently used")
	}
	if _, ok := s.Get(testKey(3)); !ok {
		t.Error("entry 3 missing right after Put")
	}
	if got := s.Len(); got != 2 {
		t.Errorf("Len = %d, want 2", got)
	}
}

func TestMemoryStoreReplace(t *testing.T) {
	s := NewMemoryStore(2)
	s.Put(testKey(1), testEntry(1))
	e := testEntry(1)
	e.Metrics.FramesSent = 777
	s.Put(testKey(1), e)
	got, ok := s.Get(testKey(1))
	if !ok || got.Metrics.FramesSent != 777 {
		t.Errorf("replaced entry = %+v ok=%v, want FramesSent 777", got, ok)
	}
	if s.Len() != 1 {
		t.Errorf("Len = %d after replace, want 1", s.Len())
	}
}

func TestDiskStoreRoundTrip(t *testing.T) {
	s, err := NewDiskStore(t.TempDir(), nil)
	if err != nil {
		t.Fatal(err)
	}
	want := testEntry(5)
	s.Put(testKey(5), want)
	got, ok := s.Get(testKey(5))
	if !ok {
		t.Fatal("entry missing after Put")
	}
	wb, _ := json.Marshal(want.Metrics)
	gb, _ := json.Marshal(got.Metrics)
	if string(wb) != string(gb) {
		t.Errorf("round trip changed metrics: %s != %s", gb, wb)
	}
	if _, ok := s.Get(testKey(6)); ok {
		t.Error("Get of absent key reported a hit")
	}
}

// corrupt flips bytes in every entry file under dir.
func corrupt(t *testing.T, dir string, mutate func([]byte) []byte) {
	t.Helper()
	files, err := filepath.Glob(filepath.Join(dir, "*.json"))
	if err != nil || len(files) == 0 {
		t.Fatalf("no entry files to corrupt (err=%v)", err)
	}
	for _, f := range files {
		b, err := os.ReadFile(f)
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(f, mutate(b), 0o644); err != nil {
			t.Fatal(err)
		}
	}
}

// The satellite contract: a corrupted on-disk entry is detected, evicted
// and recomputed — across every damage mode a crash or bit rot can leave.
func TestDiskStoreCorruptionEvicted(t *testing.T) {
	damages := map[string]func([]byte) []byte{
		"bit-flip":  func(b []byte) []byte { b[len(b)/2] ^= 0x40; return b },
		"truncated": func(b []byte) []byte { return b[:len(b)/2] },
		"not-json":  func([]byte) []byte { return []byte("not json at all\n") },
		"renamed":   nil, // handled specially below
	}
	for name, mutate := range damages {
		t.Run(name, func(t *testing.T) {
			dir := t.TempDir()
			o := obs.New(obs.Config{})
			s, err := NewDiskStore(dir, o)
			if err != nil {
				t.Fatal(err)
			}
			s.Put(testKey(9), testEntry(9))
			if name == "renamed" {
				// A valid entry parked under the wrong key must not alias.
				files, _ := filepath.Glob(filepath.Join(dir, "*.json"))
				if err := os.Rename(files[0], s.path(testKey(10))); err != nil {
					t.Fatal(err)
				}
				if _, ok := s.Get(testKey(10)); ok {
					t.Fatal("renamed entry served under the wrong key")
				}
			} else {
				mutate := mutate
				corrupt(t, dir, mutate)
				if _, ok := s.Get(testKey(9)); ok {
					t.Fatal("corrupted entry served as a hit")
				}
			}
			// Detected damage must evict the file...
			if files, _ := filepath.Glob(filepath.Join(dir, "*.json")); len(files) != 0 {
				t.Errorf("damaged entry file still present: %v", files)
			}
			snap := o.Registry().Snapshot()
			if got := snapshotCounter(snap, "serve.cache.disk_corrupt"); got != 1 {
				t.Errorf("serve.cache.disk_corrupt = %d, want 1", got)
			}
			// ...and a recomputation (a fresh Put) must restore service.
			s.Put(testKey(9), testEntry(9))
			if _, ok := s.Get(testKey(9)); !ok {
				t.Error("entry missing after recompute-and-Put")
			}
		})
	}
}

func TestTieredBackfill(t *testing.T) {
	mem := NewMemoryStore(4)
	disk, err := NewDiskStore(t.TempDir(), nil)
	if err != nil {
		t.Fatal(err)
	}
	tiered := NewTiered(mem, disk)

	// Seed only the slow tier, as after a daemon restart.
	disk.Put(testKey(1), testEntry(1))
	if _, ok := tiered.Get(testKey(1)); !ok {
		t.Fatal("tiered Get missed an entry present on disk")
	}
	if _, ok := mem.Get(testKey(1)); !ok {
		t.Error("hit was not backfilled into the memory tier")
	}

	// Write-through: a Put lands in both tiers.
	tiered.Put(testKey(2), testEntry(2))
	if _, ok := mem.Get(testKey(2)); !ok {
		t.Error("Put missing from memory tier")
	}
	if _, ok := disk.Get(testKey(2)); !ok {
		t.Error("Put missing from disk tier")
	}
}

func TestKeyID(t *testing.T) {
	k := Key{ScenarioHash: "abc", Seed: -3}
	if got := k.ID(); got != "abc--3" {
		t.Errorf("ID = %q", got)
	}
	k.Options = "opt"
	if got := k.ID(); !strings.HasSuffix(got, "-opt") {
		t.Errorf("ID with options = %q, want -opt suffix", got)
	}
}

// snapshotCounter digs a counter value out of a registry snapshot.
func snapshotCounter(snap obs.Snapshot, name string) int64 {
	for _, c := range snap.Counters {
		if c.Name == name {
			return c.Value
		}
	}
	return 0
}
