package core

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"

	"cbma/internal/obs"
)

// DiskStore is a content-addressed on-disk Store: each entry lives in its
// own file named by Key.ID() (which embeds the scenario's content hash),
// as JSON carrying a SHA-256 checksum over the exact payload bytes. Get
// verifies the checksum and treats any damage — truncation, bit rot, a
// partial write that survived a crash, malformed JSON — as a miss,
// deleting the offending file so the key is recomputed and rewritten
// cleanly. Writes go through a temp file and rename, so concurrent readers
// never observe a half-written entry.
//
// A store opened with NewBoundedDiskStore additionally enforces
// DiskLimits, evicting least-recently-used entries (recency is the file
// modification time, which Get refreshes — an emulated atime, since real
// atime is unreliable across mount options) so the cache can run
// unattended without becoming a slow-motion disk-full outage.
type DiskStore struct {
	dir   string
	o     *obs.Observer
	lim   DiskLimits
	clock obs.Clock // stamps the emulated atime; only set when bounded

	// mu guards the approximate entry/byte accounting and serializes
	// eviction sweeps. Only counters are touched under it on the Put fast
	// path; the sweep's directory scan also runs under it, which at most
	// delays concurrent Puts (Gets never take it).
	mu      sync.Mutex
	entries int
	bytes   int64
}

// DiskLimits bounds a DiskStore. Zero fields are unlimited; the zero
// value disables eviction entirely.
type DiskLimits struct {
	// MaxEntries caps the number of cached results.
	MaxEntries int
	// MaxBytes caps the total size of entry files.
	MaxBytes int64
}

// bounded reports whether any limit is set.
func (l DiskLimits) bounded() bool { return l.MaxEntries > 0 || l.MaxBytes > 0 }

// diskEntry is the file format. Payload is the canonical JSON of the Entry
// and Sum its hex SHA-256; keeping the payload as raw bytes means the
// checksum covers exactly what is decoded, with no re-marshalling gap.
type diskEntry struct {
	Sum     string          `json:"sum"`
	Payload json.RawMessage `json:"payload"`
}

// NewDiskStore opens (creating if needed) a disk store rooted at dir. The
// observer, when non-nil, counts corruption evictions
// (serve.cache.disk_corrupt) and write failures (serve.cache.disk_errors).
func NewDiskStore(dir string, o *obs.Observer) (*DiskStore, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	return &DiskStore{dir: dir, o: o}, nil
}

// NewBoundedDiskStore opens a disk store that enforces lim by LRU
// eviction (serve.cache.disk_evicted counts removals). The clock stamps
// entry recency on every hit; nil means the system clock — tests inject
// obs.StepClock to make eviction order deterministic. Existing entries
// are scanned on open so a restarted daemon inherits an accurate count.
func NewBoundedDiskStore(dir string, lim DiskLimits, clock obs.Clock, o *obs.Observer) (*DiskStore, error) {
	s, err := NewDiskStore(dir, o)
	if err != nil {
		return nil, err
	}
	s.lim = lim
	s.clock = clock
	if s.clock == nil {
		s.clock = obs.SystemClock()
	}
	if lim.bounded() {
		files, total := s.scan()
		s.entries, s.bytes = len(files), total
		if s.overLimit(s.entries, s.bytes) {
			s.evict()
		}
	}
	return s, nil
}

// path maps a key to its entry file.
func (s *DiskStore) path(k Key) string {
	return filepath.Join(s.dir, k.ID()+".json")
}

// Get implements Store.
func (s *DiskStore) Get(k Key) (Entry, bool) {
	b, err := os.ReadFile(s.path(k))
	if err != nil {
		return Entry{}, false
	}
	var de diskEntry
	if err := json.Unmarshal(b, &de); err != nil {
		s.evictCorrupt(k)
		return Entry{}, false
	}
	sum := sha256.Sum256(de.Payload)
	if hex.EncodeToString(sum[:]) != de.Sum {
		s.evictCorrupt(k)
		return Entry{}, false
	}
	var e Entry
	if err := json.Unmarshal(de.Payload, &e); err != nil {
		s.evictCorrupt(k)
		return Entry{}, false
	}
	// A file renamed or copied under the wrong name must not alias: the
	// entry's own key is part of the checksummed payload.
	if e.Key != k {
		s.evictCorrupt(k)
		return Entry{}, false
	}
	if s.lim.bounded() {
		// Refresh recency (emulated atime): a hit entry moves to the back
		// of the eviction order. Best effort — a failed touch only ages
		// the entry early.
		now := s.clock()
		_ = os.Chtimes(s.path(k), now, now)
	}
	return e, true
}

// evictCorrupt removes a damaged entry file and counts the eviction; the
// next Put recreates it from a fresh computation.
func (s *DiskStore) evictCorrupt(k Key) {
	_ = os.Remove(s.path(k))
	s.o.Counter("serve.cache.disk_corrupt").Inc()
	if s.o.EmitsEvents() {
		s.o.Emit("cache_corrupt", map[string]any{"key": k.ID()})
	}
}

// Put implements Store. Failures are counted, not returned: a full or
// read-only disk degrades the cache, never the request.
func (s *DiskStore) Put(k Key, e Entry) {
	payload, err := json.Marshal(e)
	if err != nil {
		s.o.Counter("serve.cache.disk_errors").Inc()
		return
	}
	sum := sha256.Sum256(payload)
	var buf bytes.Buffer
	if err := json.NewEncoder(&buf).Encode(diskEntry{
		Sum:     hex.EncodeToString(sum[:]),
		Payload: payload,
	}); err != nil {
		s.o.Counter("serve.cache.disk_errors").Inc()
		return
	}
	tmp, err := os.CreateTemp(s.dir, "put-*.tmp")
	if err != nil {
		s.o.Counter("serve.cache.disk_errors").Inc()
		return
	}
	_, werr := tmp.Write(buf.Bytes())
	cerr := tmp.Close()
	if werr != nil || cerr != nil {
		_ = os.Remove(tmp.Name())
		s.o.Counter("serve.cache.disk_errors").Inc()
		return
	}
	var oldSize int64 = -1
	if s.lim.bounded() {
		// A replacement swaps bytes rather than adding an entry; learn the
		// old size before the rename destroys it.
		if fi, err := os.Stat(s.path(k)); err == nil {
			oldSize = fi.Size()
		}
	}
	if err := os.Rename(tmp.Name(), s.path(k)); err != nil {
		_ = os.Remove(tmp.Name())
		s.o.Counter("serve.cache.disk_errors").Inc()
		return
	}
	if s.lim.bounded() {
		written := int64(buf.Len())
		s.mu.Lock()
		if oldSize >= 0 {
			s.bytes += written - oldSize
		} else {
			s.entries++
			s.bytes += written
		}
		over := s.overLimit(s.entries, s.bytes)
		s.mu.Unlock()
		if over {
			s.evict()
		}
	}
}

// diskFile is one entry file as seen by a directory scan.
type diskFile struct {
	name  string
	size  int64
	mtime time.Time
}

// scan lists the store's entry files with their sizes and recency stamps.
// Temp files and anything non-entry are ignored; a file that vanishes
// mid-scan (concurrent eviction, corruption cleanup) is simply skipped.
func (s *DiskStore) scan() ([]diskFile, int64) {
	des, err := os.ReadDir(s.dir)
	if err != nil {
		return nil, 0
	}
	var files []diskFile
	var total int64
	for _, de := range des {
		if de.IsDir() || !strings.HasSuffix(de.Name(), ".json") {
			continue
		}
		fi, err := de.Info()
		if err != nil {
			continue
		}
		files = append(files, diskFile{name: de.Name(), size: fi.Size(), mtime: fi.ModTime()})
		total += fi.Size()
	}
	return files, total
}

// overLimit reports whether n entries totalling b bytes exceed the limits.
func (s *DiskStore) overLimit(n int, b int64) bool {
	return (s.lim.MaxEntries > 0 && n > s.lim.MaxEntries) ||
		(s.lim.MaxBytes > 0 && b > s.lim.MaxBytes)
}

// evict sweeps least-recently-used entries until the store is within its
// limits. The sweep rescans the directory rather than trusting the fast
// counters, so drift from corruption cleanup or external deletion
// self-heals on every sweep.
func (s *DiskStore) evict() {
	var removed int
	s.mu.Lock()
	files, total := s.scan()
	sort.Slice(files, func(i, j int) bool { return files[i].mtime.Before(files[j].mtime) })
	n := len(files)
	for _, f := range files {
		if !s.overLimit(n, total) {
			break
		}
		if err := os.Remove(filepath.Join(s.dir, f.name)); err != nil {
			continue
		}
		n--
		total -= f.size
		removed++
	}
	s.entries, s.bytes = n, total
	s.mu.Unlock()
	if removed > 0 {
		s.o.Counter("serve.cache.disk_evicted").Add(int64(removed))
		if s.o.EmitsEvents() {
			s.o.Emit("cache_evict", map[string]any{"removed": removed})
		}
	}
}
