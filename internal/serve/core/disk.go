package core

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"os"
	"path/filepath"

	"cbma/internal/obs"
)

// DiskStore is a content-addressed on-disk Store: each entry lives in its
// own file named by Key.ID() (which embeds the scenario's content hash),
// as JSON carrying a SHA-256 checksum over the exact payload bytes. Get
// verifies the checksum and treats any damage — truncation, bit rot, a
// partial write that survived a crash, malformed JSON — as a miss,
// deleting the offending file so the key is recomputed and rewritten
// cleanly. Writes go through a temp file and rename, so concurrent readers
// never observe a half-written entry.
type DiskStore struct {
	dir string
	o   *obs.Observer
}

// diskEntry is the file format. Payload is the canonical JSON of the Entry
// and Sum its hex SHA-256; keeping the payload as raw bytes means the
// checksum covers exactly what is decoded, with no re-marshalling gap.
type diskEntry struct {
	Sum     string          `json:"sum"`
	Payload json.RawMessage `json:"payload"`
}

// NewDiskStore opens (creating if needed) a disk store rooted at dir. The
// observer, when non-nil, counts corruption evictions
// (serve.cache.disk_corrupt) and write failures (serve.cache.disk_errors).
func NewDiskStore(dir string, o *obs.Observer) (*DiskStore, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	return &DiskStore{dir: dir, o: o}, nil
}

// path maps a key to its entry file.
func (s *DiskStore) path(k Key) string {
	return filepath.Join(s.dir, k.ID()+".json")
}

// Get implements Store.
func (s *DiskStore) Get(k Key) (Entry, bool) {
	b, err := os.ReadFile(s.path(k))
	if err != nil {
		return Entry{}, false
	}
	var de diskEntry
	if err := json.Unmarshal(b, &de); err != nil {
		s.evictCorrupt(k)
		return Entry{}, false
	}
	sum := sha256.Sum256(de.Payload)
	if hex.EncodeToString(sum[:]) != de.Sum {
		s.evictCorrupt(k)
		return Entry{}, false
	}
	var e Entry
	if err := json.Unmarshal(de.Payload, &e); err != nil {
		s.evictCorrupt(k)
		return Entry{}, false
	}
	// A file renamed or copied under the wrong name must not alias: the
	// entry's own key is part of the checksummed payload.
	if e.Key != k {
		s.evictCorrupt(k)
		return Entry{}, false
	}
	return e, true
}

// evictCorrupt removes a damaged entry file and counts the eviction; the
// next Put recreates it from a fresh computation.
func (s *DiskStore) evictCorrupt(k Key) {
	_ = os.Remove(s.path(k))
	s.o.Counter("serve.cache.disk_corrupt").Inc()
	if s.o.EmitsEvents() {
		s.o.Emit("cache_corrupt", map[string]any{"key": k.ID()})
	}
}

// Put implements Store. Failures are counted, not returned: a full or
// read-only disk degrades the cache, never the request.
func (s *DiskStore) Put(k Key, e Entry) {
	payload, err := json.Marshal(e)
	if err != nil {
		s.o.Counter("serve.cache.disk_errors").Inc()
		return
	}
	sum := sha256.Sum256(payload)
	var buf bytes.Buffer
	if err := json.NewEncoder(&buf).Encode(diskEntry{
		Sum:     hex.EncodeToString(sum[:]),
		Payload: payload,
	}); err != nil {
		s.o.Counter("serve.cache.disk_errors").Inc()
		return
	}
	tmp, err := os.CreateTemp(s.dir, "put-*.tmp")
	if err != nil {
		s.o.Counter("serve.cache.disk_errors").Inc()
		return
	}
	_, werr := tmp.Write(buf.Bytes())
	cerr := tmp.Close()
	if werr != nil || cerr != nil {
		_ = os.Remove(tmp.Name())
		s.o.Counter("serve.cache.disk_errors").Inc()
		return
	}
	if err := os.Rename(tmp.Name(), s.path(k)); err != nil {
		_ = os.Remove(tmp.Name())
		s.o.Counter("serve.cache.disk_errors").Inc()
	}
}
