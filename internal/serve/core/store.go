package core

import (
	"container/list"
	"fmt"
	"sync"

	"cbma/internal/sim"
)

// Key identifies one cached campaign-point result. ScenarioHash is
// Scenario.Hash() — it already covers the scenario's seed, but Seed is
// carried explicitly so operators can shard or expire cache contents by
// seed without parsing scenarios back out of digests. Options fingerprints
// any future execution option that changes results; today no campaign
// option does (worker budgets and labels are result-neutral), so it is
// empty and exists to keep the key shape stable when that changes.
type Key struct {
	ScenarioHash string `json:"scenario_hash"`
	Seed         int64  `json:"seed"`
	Options      string `json:"options,omitempty"`
}

// ID renders the key as a single filename-safe token — the content address
// of the on-disk backend.
func (k Key) ID() string {
	if k.Options == "" {
		return fmt.Sprintf("%s-%d", k.ScenarioHash, k.Seed)
	}
	return fmt.Sprintf("%s-%d-%s", k.ScenarioHash, k.Seed, k.Options)
}

// Entry is one stored result.
type Entry struct {
	Key     Key         `json:"key"`
	Metrics sim.Metrics `json:"metrics"`
}

// Store is a result cache keyed by Key. A store is an optimization, never
// an authority: Get reporting a miss (for any reason, including a detected
// corruption) simply costs a recomputation, so implementations surface no
// errors — a broken backend degrades to a smaller cache, not a broken
// service. Implementations must be safe for concurrent use.
type Store interface {
	// Get returns the entry stored under k, if any.
	Get(k Key) (Entry, bool)
	// Put stores e under k, replacing any previous entry.
	Put(k Key, e Entry)
}

// MemoryStore is an in-memory LRU Store: Put beyond the capacity evicts
// the least-recently-used entry (Get refreshes recency).
type MemoryStore struct {
	mu    sync.Mutex
	cap   int
	order *list.List // front = most recent; values are *memEntry
	items map[string]*list.Element
}

type memEntry struct {
	id string
	e  Entry
}

// DefaultMemoryEntries bounds MemoryStore when NewMemoryStore is given a
// non-positive capacity. Metrics are small (a few hundred bytes), so the
// default is sized for hit rate, not memory pressure.
const DefaultMemoryEntries = 4096

// NewMemoryStore returns an LRU store holding at most capacity entries.
func NewMemoryStore(capacity int) *MemoryStore {
	if capacity <= 0 {
		capacity = DefaultMemoryEntries
	}
	return &MemoryStore{
		cap:   capacity,
		order: list.New(),
		items: make(map[string]*list.Element),
	}
}

// Get implements Store.
func (s *MemoryStore) Get(k Key) (Entry, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	el, ok := s.items[k.ID()]
	if !ok {
		return Entry{}, false
	}
	s.order.MoveToFront(el)
	return el.Value.(*memEntry).e, true
}

// Put implements Store.
func (s *MemoryStore) Put(k Key, e Entry) {
	id := k.ID()
	s.mu.Lock()
	defer s.mu.Unlock()
	if el, ok := s.items[id]; ok {
		el.Value.(*memEntry).e = e
		s.order.MoveToFront(el)
		return
	}
	s.items[id] = s.order.PushFront(&memEntry{id: id, e: e})
	for s.order.Len() > s.cap {
		last := s.order.Back()
		s.order.Remove(last)
		delete(s.items, last.Value.(*memEntry).id)
	}
}

// Len reports the number of resident entries.
func (s *MemoryStore) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.order.Len()
}

// Tiered composes stores fastest-first: Get probes in order and backfills
// every faster tier on a hit; Put writes through to all tiers. The daemon
// runs a MemoryStore in front of a DiskStore so hot keys never touch the
// filesystem while the full result set survives restarts.
type Tiered struct {
	tiers []Store
}

// NewTiered builds a tiered store; nil tiers are dropped.
func NewTiered(tiers ...Store) *Tiered {
	t := &Tiered{}
	for _, s := range tiers {
		if s != nil {
			t.tiers = append(t.tiers, s)
		}
	}
	return t
}

// Get implements Store.
func (t *Tiered) Get(k Key) (Entry, bool) {
	for i, s := range t.tiers {
		if e, ok := s.Get(k); ok {
			for _, faster := range t.tiers[:i] {
				faster.Put(k, e)
			}
			return e, true
		}
	}
	return Entry{}, false
}

// Put implements Store.
func (t *Tiered) Put(k Key, e Entry) {
	for _, s := range t.tiers {
		s.Put(k, e)
	}
}
