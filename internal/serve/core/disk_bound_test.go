package core

import (
	"os"
	"testing"
	"time"

	"cbma/internal/obs"
)

// touch pins an entry file's recency stamp so eviction order is
// deterministic regardless of filesystem timestamp granularity.
func touch(t *testing.T, s *DiskStore, k Key, at time.Time) {
	t.Helper()
	if err := os.Chtimes(s.path(k), at, at); err != nil {
		t.Fatal(err)
	}
}

var boundEpoch = time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)

func TestBoundedDiskStoreMaxEntries(t *testing.T) {
	o := obs.New(obs.Config{})
	s, err := NewBoundedDiskStore(t.TempDir(), DiskLimits{MaxEntries: 2}, obs.StepClock(boundEpoch, time.Second), o)
	if err != nil {
		t.Fatal(err)
	}
	s.Put(testKey(1), testEntry(1))
	touch(t, s, testKey(1), boundEpoch.Add(-3*time.Hour))
	s.Put(testKey(2), testEntry(2))
	touch(t, s, testKey(2), boundEpoch.Add(-2*time.Hour))
	s.Put(testKey(3), testEntry(3)) // over: LRU (entry 1) must go
	if _, ok := s.Get(testKey(1)); ok {
		t.Error("entry 1 survived eviction, want LRU evicted")
	}
	if _, ok := s.Get(testKey(2)); !ok {
		t.Error("entry 2 evicted despite being newer")
	}
	if _, ok := s.Get(testKey(3)); !ok {
		t.Error("entry 3 missing right after Put")
	}
	if n := o.Counter("serve.cache.disk_evicted").Value(); n != 1 {
		t.Errorf("disk_evicted = %d, want 1", n)
	}
}

func TestBoundedDiskStoreMaxBytes(t *testing.T) {
	// Measure one entry's on-disk size with an unbounded probe store;
	// entries 1..3 serialize to the same length (same key and digit widths).
	probe, err := NewDiskStore(t.TempDir(), nil)
	if err != nil {
		t.Fatal(err)
	}
	probe.Put(testKey(1), testEntry(1))
	fi, err := os.Stat(probe.path(testKey(1)))
	if err != nil {
		t.Fatal(err)
	}
	sz := fi.Size()

	o := obs.New(obs.Config{})
	s, err := NewBoundedDiskStore(t.TempDir(), DiskLimits{MaxBytes: 2 * sz}, obs.StepClock(boundEpoch, time.Second), o)
	if err != nil {
		t.Fatal(err)
	}
	s.Put(testKey(1), testEntry(1))
	touch(t, s, testKey(1), boundEpoch.Add(-3*time.Hour))
	s.Put(testKey(2), testEntry(2))
	touch(t, s, testKey(2), boundEpoch.Add(-2*time.Hour))
	s.Put(testKey(3), testEntry(3)) // 3*sz > 2*sz: oldest goes
	if _, ok := s.Get(testKey(1)); ok {
		t.Error("entry 1 survived byte-limit eviction")
	}
	if _, ok := s.Get(testKey(2)); !ok {
		t.Error("entry 2 evicted, want only the LRU entry removed")
	}
	if _, ok := s.Get(testKey(3)); !ok {
		t.Error("entry 3 missing right after Put")
	}
}

// TestBoundedDiskStoreGetRefreshesRecency: a Get moves an entry to the
// back of the eviction order (the emulated atime), so a hot old entry
// outlives a cold newer one.
func TestBoundedDiskStoreGetRefreshesRecency(t *testing.T) {
	s, err := NewBoundedDiskStore(t.TempDir(), DiskLimits{MaxEntries: 2}, obs.StepClock(boundEpoch, time.Second), nil)
	if err != nil {
		t.Fatal(err)
	}
	s.Put(testKey(1), testEntry(1))
	touch(t, s, testKey(1), boundEpoch.Add(-3*time.Hour))
	s.Put(testKey(2), testEntry(2))
	touch(t, s, testKey(2), boundEpoch.Add(-2*time.Hour))
	if _, ok := s.Get(testKey(1)); !ok { // refresh: 1 is now the newest
		t.Fatal("entry 1 missing before capacity reached")
	}
	s.Put(testKey(3), testEntry(3)) // over: entry 2 is now the LRU
	if _, ok := s.Get(testKey(2)); ok {
		t.Error("entry 2 survived eviction, want LRU evicted")
	}
	if _, ok := s.Get(testKey(1)); !ok {
		t.Error("entry 1 evicted despite Get refresh")
	}
}

// TestBoundedDiskStoreRescanOnOpen: a restarted daemon inherits the
// previous process's cache contents and immediately enforces its limits.
func TestBoundedDiskStoreRescanOnOpen(t *testing.T) {
	dir := t.TempDir()
	prev, err := NewDiskStore(dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	for n := int64(1); n <= 3; n++ {
		prev.Put(testKey(n), testEntry(n))
		touch(t, prev, testKey(n), boundEpoch.Add(time.Duration(n-10)*time.Hour))
	}

	o := obs.New(obs.Config{})
	s, err := NewBoundedDiskStore(dir, DiskLimits{MaxEntries: 2}, obs.StepClock(boundEpoch, time.Second), o)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := s.Get(testKey(1)); ok {
		t.Error("oldest inherited entry survived open-time eviction")
	}
	for n := int64(2); n <= 3; n++ {
		if _, ok := s.Get(testKey(n)); !ok {
			t.Errorf("inherited entry %d evicted, want kept", n)
		}
	}
	if n := o.Counter("serve.cache.disk_evicted").Value(); n != 1 {
		t.Errorf("disk_evicted = %d, want 1", n)
	}
}

// TestBoundedDiskStoreReplaceNotDoubleCounted: replacing an entry swaps
// bytes instead of adding a phantom entry, so a workload that rewrites the
// same keys never triggers eviction.
func TestBoundedDiskStoreReplaceNotDoubleCounted(t *testing.T) {
	o := obs.New(obs.Config{})
	s, err := NewBoundedDiskStore(t.TempDir(), DiskLimits{MaxEntries: 2}, obs.StepClock(boundEpoch, time.Second), o)
	if err != nil {
		t.Fatal(err)
	}
	s.Put(testKey(1), testEntry(1))
	s.Put(testKey(1), testEntry(1))
	s.Put(testKey(1), testEntry(1))
	s.Put(testKey(2), testEntry(2))
	for n := int64(1); n <= 2; n++ {
		if _, ok := s.Get(testKey(n)); !ok {
			t.Errorf("entry %d missing; replacement must not count as growth", n)
		}
	}
	if n := o.Counter("serve.cache.disk_evicted").Value(); n != 0 {
		t.Errorf("disk_evicted = %d, want 0", n)
	}
}

// TestUnboundedDiskStoreNeverEvicts: the plain constructor keeps the old
// contract — no limits, no recency touches, no sweeps.
func TestUnboundedDiskStoreNeverEvicts(t *testing.T) {
	s, err := NewDiskStore(t.TempDir(), nil)
	if err != nil {
		t.Fatal(err)
	}
	for n := int64(1); n <= 50; n++ {
		s.Put(testKey(n), testEntry(n))
	}
	for n := int64(1); n <= 50; n++ {
		if _, ok := s.Get(testKey(n)); !ok {
			t.Fatalf("entry %d missing from unbounded store", n)
		}
	}
}
