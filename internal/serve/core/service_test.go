package core

import (
	"context"
	"encoding/json"
	"errors"
	"sync/atomic"
	"testing"

	"cbma/internal/fault"
	"cbma/internal/obs"
	"cbma/internal/sim"
)

// countingRunner wraps a Runner and counts executed points, so tests can
// prove a cache hit really skipped execution.
type countingRunner struct {
	inner  Runner
	points atomic.Int64
	calls  atomic.Int64
}

func (c *countingRunner) Run(ctx context.Context, points []sim.Scenario, opts sim.CampaignOpts) ([]sim.Metrics, error) {
	c.calls.Add(1)
	c.points.Add(int64(len(points)))
	return c.inner.Run(ctx, points, opts)
}

func quickScenario(seed int64) sim.Scenario {
	scn := sim.DefaultScenario()
	scn.Seed = seed
	scn.Packets = 20
	return scn
}

func metricsEqual(t *testing.T, a, b sim.Metrics) bool {
	t.Helper()
	ab, err := json.Marshal(a)
	if err != nil {
		t.Fatal(err)
	}
	bb, err := json.Marshal(b)
	if err != nil {
		t.Fatal(err)
	}
	return string(ab) == string(bb)
}

// The serving contract end to end at the core layer: a first run executes
// and caches, a second identical run is served entirely from the store
// (zero executed points) with bit-identical metrics, and the cache-hit
// counter records it.
func TestServiceCachesResults(t *testing.T) {
	runner := &countingRunner{inner: CampaignRunner{}}
	o := obs.New(obs.Config{})
	svc := &Service{Runner: runner, Store: NewMemoryStore(0), Obs: o}
	points := []sim.Scenario{quickScenario(1), quickScenario(2)}

	first, err := svc.Run(context.Background(), points, sim.CampaignOpts{What: "test"})
	if err != nil {
		t.Fatal(err)
	}
	if got := runner.points.Load(); got != 2 {
		t.Fatalf("first run executed %d points, want 2", got)
	}
	for i, r := range first {
		if r.Cached {
			t.Errorf("point %d cached on first run", i)
		}
		if r.ScenarioHash == "" {
			t.Errorf("point %d missing scenario hash", i)
		}
	}

	second, err := svc.Run(context.Background(), points, sim.CampaignOpts{What: "test"})
	if err != nil {
		t.Fatal(err)
	}
	if got := runner.points.Load(); got != 2 {
		t.Errorf("second run executed %d more points, want 0 (cache hit)", got-2)
	}
	for i := range second {
		if !second[i].Cached {
			t.Errorf("point %d not served from cache", i)
		}
		if !metricsEqual(t, first[i].Metrics, second[i].Metrics) {
			t.Errorf("point %d cached metrics differ from computed", i)
		}
	}
	snap := o.Registry().Snapshot()
	if hits := snapshotCounter(snap, "serve.cache.hits"); hits != 2 {
		t.Errorf("serve.cache.hits = %d, want 2", hits)
	}
	if misses := snapshotCounter(snap, "serve.cache.misses"); misses != 2 {
		t.Errorf("serve.cache.misses = %d, want 2", misses)
	}
}

// Cache soundness through the disk backend, against the real engine and
// with an active fault profile: corrupting the stored entry forces a
// recomputation whose metrics are bit-identical to the original, and the
// repaired entry then serves hits again.
func TestServiceDiskCorruptionRecomputed(t *testing.T) {
	dir := t.TempDir()
	o := obs.New(obs.Config{})
	disk, err := NewDiskStore(dir, o)
	if err != nil {
		t.Fatal(err)
	}
	runner := &countingRunner{inner: CampaignRunner{}}
	svc := &Service{Runner: runner, Store: disk, Obs: o}

	scn := quickScenario(7)
	scn.PowerControl = true
	scn.RandomInitialImpedance = true
	scn.Fault = &fault.Profile{AckLossProb: 0.2, EnergyOutageProb: 0.1, MaxRoundRetries: 2}
	points := []sim.Scenario{scn}

	first, err := svc.Run(context.Background(), points, sim.CampaignOpts{})
	if err != nil {
		t.Fatal(err)
	}
	corrupt(t, dir, func(b []byte) []byte { b[len(b)/2] ^= 0x01; return b })

	recomputed, err := svc.Run(context.Background(), points, sim.CampaignOpts{})
	if err != nil {
		t.Fatal(err)
	}
	if recomputed[0].Cached {
		t.Error("corrupted entry served as a cache hit")
	}
	if got := runner.points.Load(); got != 2 {
		t.Errorf("executed %d points, want 2 (original + recompute)", got)
	}
	if !metricsEqual(t, first[0].Metrics, recomputed[0].Metrics) {
		t.Error("recomputed metrics differ from the original — cache soundness violated")
	}
	// The repaired entry serves.
	third, err := svc.Run(context.Background(), points, sim.CampaignOpts{})
	if err != nil {
		t.Fatal(err)
	}
	if !third[0].Cached {
		t.Error("repaired entry missed")
	}
	if got := snapshotCounter(o.Registry().Snapshot(), "serve.cache.disk_corrupt"); got != 1 {
		t.Errorf("serve.cache.disk_corrupt = %d, want 1", got)
	}
}

// Failed points must fail in the request's own indexing, healthy points
// must still be served and cached, and zero-metric failures must never be
// cached.
func TestServicePartialFailure(t *testing.T) {
	runner := &countingRunner{inner: CampaignRunner{}}
	store := NewMemoryStore(0)
	svc := &Service{Runner: runner, Store: store, Obs: obs.New(obs.Config{})}

	bad := quickScenario(3)
	bad.GoldDegree = 13 // unsupported degree: engine construction fails
	points := []sim.Scenario{quickScenario(1), bad, quickScenario(2)}

	res, err := svc.Run(context.Background(), points, sim.CampaignOpts{What: "partial"})
	var cerr *sim.CampaignError
	if !errors.As(err, &cerr) {
		t.Fatalf("err = %v, want *sim.CampaignError", err)
	}
	if len(cerr.Points) != 1 || cerr.Points[0].Point != 1 {
		t.Fatalf("campaign error = %+v, want exactly point 1", cerr.Points)
	}
	if res[1].Err == "" {
		t.Error("failed point carries no error")
	}
	if res[0].Err != "" || res[2].Err != "" {
		t.Errorf("healthy points carry errors: %q, %q", res[0].Err, res[2].Err)
	}
	if store.Len() != 2 {
		t.Errorf("store holds %d entries, want 2 (failed point not cached)", store.Len())
	}

	// Resubmission: healthy points hit, only the broken one re-executes.
	runner.points.Store(0)
	res2, err := svc.Run(context.Background(), points, sim.CampaignOpts{What: "partial"})
	if !errors.As(err, &cerr) {
		t.Fatalf("second err = %v, want *sim.CampaignError", err)
	}
	if !res2[0].Cached || !res2[2].Cached {
		t.Error("healthy points not served from cache on resubmission")
	}
	if got := runner.points.Load(); got != 1 {
		t.Errorf("resubmission executed %d points, want 1", got)
	}
}

// An unhashable point fails alone; the rest of the request is served.
func TestServiceUnhashablePoint(t *testing.T) {
	svc := &Service{Runner: CampaignRunner{}, Store: NewMemoryStore(0), Obs: obs.New(obs.Config{})}
	invalid := sim.Scenario{} // zero value: validation fails
	res, err := svc.Run(context.Background(), []sim.Scenario{quickScenario(1), invalid}, sim.CampaignOpts{})
	var cerr *sim.CampaignError
	if !errors.As(err, &cerr) {
		t.Fatalf("err = %v, want *sim.CampaignError", err)
	}
	if cerr.Points[0].Point != 1 {
		t.Errorf("failed point index = %d, want 1", cerr.Points[0].Point)
	}
	if res[0].Err != "" || res[0].Metrics.FramesSent == 0 {
		t.Error("healthy point was not served alongside the unhashable one")
	}
}

// Interrupted partial metrics must not be cached: a later identical
// request must recompute, not serve the truncated run.
func TestServiceInterruptedNotCached(t *testing.T) {
	store := NewMemoryStore(0)
	svc := &Service{
		Runner: runnerFunc(func(ctx context.Context, points []sim.Scenario, opts sim.CampaignOpts) ([]sim.Metrics, error) {
			ms := make([]sim.Metrics, len(points))
			for i := range ms {
				ms[i] = sim.Metrics{NumTags: 2, FramesSent: 5, Interrupted: true}
			}
			return ms, context.Canceled
		}),
		Store: store,
		Obs:   obs.New(obs.Config{}),
	}
	res, err := svc.Run(context.Background(), []sim.Scenario{quickScenario(1)}, sim.CampaignOpts{})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if res[0].Metrics.FramesSent != 5 {
		t.Error("partial metrics not surfaced")
	}
	if store.Len() != 0 {
		t.Errorf("store holds %d entries, want 0 (interrupted run cached)", store.Len())
	}
}

// runnerFunc adapts a function to Runner.
type runnerFunc func(ctx context.Context, points []sim.Scenario, opts sim.CampaignOpts) ([]sim.Metrics, error)

func (f runnerFunc) Run(ctx context.Context, points []sim.Scenario, opts sim.CampaignOpts) ([]sim.Metrics, error) {
	return f(ctx, points, opts)
}
