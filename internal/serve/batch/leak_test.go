package batch

import (
	"testing"

	"cbma/internal/leaktest"
)

// TestMain fails the package run if any test leaves a goroutine behind —
// every runBatch executor and max-wait timer callback must be collected
// by Close's drain.
func TestMain(m *testing.M) {
	leaktest.Main(m)
}
