package batch

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"cbma/internal/leaktest"
	"cbma/internal/obs"
	"cbma/internal/serve/core"
	"cbma/internal/sim"
)

// fakeRunner returns canned per-point metrics instantly, recording each
// call's point count so tests can assert coalescing.
type fakeRunner struct {
	mu     sync.Mutex
	calls  [][]int // per call: seeds of the executed points
	block  chan struct{}
	failAt map[int64]bool // seeds that fail
}

func (f *fakeRunner) Run(ctx context.Context, points []sim.Scenario, opts sim.CampaignOpts) ([]sim.Metrics, error) {
	if f.block != nil {
		select {
		case <-f.block:
		case <-ctx.Done():
		}
	}
	seeds := make([]int, len(points))
	ms := make([]sim.Metrics, len(points))
	var failed []*sim.PointError
	for i, p := range points {
		seeds[i] = int(p.Seed)
		if f.failAt[p.Seed] {
			failed = append(failed, &sim.PointError{What: opts.What, Point: i, Err: errors.New("injected")})
			continue
		}
		ms[i] = sim.Metrics{NumTags: p.NumTags, FramesSent: int(p.Seed)}
	}
	f.mu.Lock()
	f.calls = append(f.calls, seeds)
	f.mu.Unlock()
	if len(failed) > 0 {
		return ms, &sim.CampaignError{Points: failed}
	}
	if err := ctx.Err(); err != nil {
		for i := range ms {
			ms[i].Interrupted = true
		}
		return ms, err
	}
	return ms, nil
}

func (f *fakeRunner) callCount() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return len(f.calls)
}

func point(seed int64) sim.Scenario {
	scn := sim.DefaultScenario()
	scn.Seed = seed
	scn.Packets = 10
	return scn
}

func newBatcher(t *testing.T, runner core.Runner, cfg Config) *Batcher {
	t.Helper()
	if cfg.Service == nil {
		cfg.Service = &core.Service{Runner: runner, Obs: obs.New(obs.Config{})}
	}
	b := New(cfg)
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		_ = b.Close(ctx)
	})
	return b
}

// Submissions below MaxBatch ride the max-wait timer into one shared
// batch: one Runner call, results split back per job.
func TestBatcherCoalescesByTimer(t *testing.T) {
	runner := &fakeRunner{}
	b := newBatcher(t, runner, Config{MaxBatch: 100, MaxWait: 30 * time.Millisecond})

	j1, err := b.Submit(context.Background(), Request{Points: []sim.Scenario{point(1), point(2)}})
	if err != nil {
		t.Fatal(err)
	}
	j2, err := b.Submit(context.Background(), Request{Points: []sim.Scenario{point(3)}})
	if err != nil {
		t.Fatal(err)
	}
	r1, err1 := j1.Results()
	r2, err2 := j2.Results()
	if err1 != nil || err2 != nil {
		t.Fatalf("job errors: %v, %v", err1, err2)
	}
	if len(r1) != 2 || len(r2) != 1 {
		t.Fatalf("result sizes %d, %d; want 2, 1", len(r1), len(r2))
	}
	if r1[0].Metrics.FramesSent != 1 || r1[1].Metrics.FramesSent != 2 || r2[0].Metrics.FramesSent != 3 {
		t.Errorf("results misrouted: %+v / %+v", r1, r2)
	}
	if got := runner.callCount(); got != 1 {
		t.Errorf("runner ran %d times, want 1 (coalesced batch)", got)
	}
	if j1.Batch() != j2.Batch() || j1.Batch() == 0 {
		t.Errorf("jobs ran in batches %d and %d, want the same non-zero batch", j1.Batch(), j2.Batch())
	}
}

// Reaching MaxBatch flushes immediately, without waiting for the timer.
func TestBatcherFlushesOnSize(t *testing.T) {
	runner := &fakeRunner{}
	o := obs.New(obs.Config{})
	b := newBatcher(t, runner, Config{
		Service:  &core.Service{Runner: runner, Obs: o},
		MaxBatch: 3,
		MaxWait:  time.Hour, // the timer must not be what flushes
		Obs:      o,
	})
	var jobs []*Job
	for seed := int64(1); seed <= 3; seed++ {
		j, err := b.Submit(context.Background(), Request{Points: []sim.Scenario{point(seed)}})
		if err != nil {
			t.Fatal(err)
		}
		jobs = append(jobs, j)
	}
	for _, j := range jobs {
		if _, err := j.Results(); err != nil {
			t.Fatal(err)
		}
	}
	if got := runner.callCount(); got != 1 {
		t.Errorf("runner ran %d times, want 1", got)
	}
	snap := o.Registry().Snapshot()
	if got := counterValue(snap, "serve.batch.flush.size"); got != 1 {
		t.Errorf("size flushes = %d, want 1", got)
	}
	if got := counterValue(snap, "serve.batch.flush.timer"); got != 0 {
		t.Errorf("timer flushes = %d, want 0", got)
	}
}

// Different classes never share a batch.
func TestBatcherClassesPartition(t *testing.T) {
	runner := &fakeRunner{}
	b := newBatcher(t, runner, Config{MaxWait: 20 * time.Millisecond})
	ja, _ := b.Submit(context.Background(), Request{Class: "a", Points: []sim.Scenario{point(1)}})
	jb, _ := b.Submit(context.Background(), Request{Class: "b", Points: []sim.Scenario{point(2)}})
	if _, err := ja.Results(); err != nil {
		t.Fatal(err)
	}
	if _, err := jb.Results(); err != nil {
		t.Fatal(err)
	}
	if got := runner.callCount(); got != 2 {
		t.Errorf("runner ran %d times, want 2 (one per class)", got)
	}
	if ja.Batch() == jb.Batch() {
		t.Errorf("different classes shared batch %d", ja.Batch())
	}
}

// One job's failing point must not contaminate its batch-mates: the
// healthy job completes clean, the failing one gets a job-local
// CampaignError with job-local indices.
func TestBatcherIsolatesJobFailures(t *testing.T) {
	runner := &fakeRunner{failAt: map[int64]bool{30: true}}
	b := newBatcher(t, runner, Config{MaxBatch: 100, MaxWait: 20 * time.Millisecond})

	healthy, _ := b.Submit(context.Background(), Request{What: "healthy", Points: []sim.Scenario{point(1), point(2)}})
	failing, _ := b.Submit(context.Background(), Request{What: "failing", Points: []sim.Scenario{point(20), point(30)}})

	if _, err := healthy.Results(); err != nil {
		t.Errorf("healthy job failed: %v", err)
	}
	res, err := failing.Results()
	var cerr *sim.CampaignError
	if !errors.As(err, &cerr) {
		t.Fatalf("failing job err = %v, want *sim.CampaignError", err)
	}
	if len(cerr.Points) != 1 || cerr.Points[0].Point != 1 {
		t.Errorf("failure = %+v, want job-local point 1", cerr.Points)
	}
	if res[0].Err != "" || res[1].Err == "" {
		t.Errorf("per-point errors misrouted: %+v", res)
	}
}

// A job cancelled while queued never executes; its batch-mates do.
func TestBatcherCancelledJobSkipped(t *testing.T) {
	release := make(chan struct{})
	runner := &fakeRunner{block: release}
	b := newBatcher(t, runner, Config{MaxBatch: 1, MaxWait: time.Hour, Parallel: 1})

	// Occupy the single executor slot so the next batch stays queued.
	blocker, err := b.Submit(context.Background(), Request{Points: []sim.Scenario{point(1)}})
	if err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithCancel(context.Background())
	doomed, err := b.Submit(ctx, Request{Points: []sim.Scenario{point(2)}})
	if err != nil {
		t.Fatal(err)
	}
	cancel()
	close(release)

	if _, err := blocker.Results(); err != nil {
		t.Errorf("blocker failed: %v", err)
	}
	if _, err := doomed.Results(); !errors.Is(err, context.Canceled) {
		t.Errorf("cancelled job err = %v, want context.Canceled", err)
	}
	// Only the blocker's point may have executed.
	for _, call := range runner.calls {
		for _, seed := range call {
			if seed == 2 {
				t.Error("cancelled job's point executed anyway")
			}
		}
	}
}

// Close drains: pending work flushes and completes, then submissions are
// refused.
func TestBatcherCloseDrains(t *testing.T) {
	runner := &fakeRunner{}
	o := obs.New(obs.Config{})
	b := New(Config{
		Service:  &core.Service{Runner: runner, Obs: o},
		MaxBatch: 100,
		MaxWait:  time.Hour, // drain, not the timer, must flush
		Obs:      o,
	})
	j, err := b.Submit(context.Background(), Request{Points: []sim.Scenario{point(1)}})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := b.Close(ctx); err != nil {
		t.Fatal(err)
	}
	select {
	case <-j.Done():
	default:
		t.Fatal("Close returned before the drained job completed")
	}
	if _, err := j.Results(); err != nil {
		t.Errorf("drained job failed: %v", err)
	}
	if _, err := b.Submit(context.Background(), Request{Points: []sim.Scenario{point(2)}}); !errors.Is(err, ErrClosed) {
		t.Errorf("Submit after Close = %v, want ErrClosed", err)
	}
	if got := counterValue(o.Registry().Snapshot(), "serve.batch.flush.drain"); got != 1 {
		t.Errorf("drain flushes = %d, want 1", got)
	}
}

// A drain that overruns its deadline cancels in-flight work and still
// unwinds: jobs complete (with the cancellation surfaced), Close reports
// ErrDrainTime.
func TestBatcherCloseDeadline(t *testing.T) {
	release := make(chan struct{})
	defer close(release)
	runner := &fakeRunner{block: release}
	b := New(Config{
		Service: &core.Service{Runner: runner, Obs: obs.New(obs.Config{})},
		MaxWait: time.Millisecond,
	})
	j, err := b.Submit(context.Background(), Request{Points: []sim.Scenario{point(1)}})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	if err := b.Close(ctx); !errors.Is(err, ErrDrainTime) {
		t.Fatalf("Close = %v, want ErrDrainTime", err)
	}
	if _, err := j.Results(); !errors.Is(err, context.Canceled) {
		t.Errorf("job err after deadline drain = %v, want context.Canceled", err)
	}
}

// An empty submission is refused up front.
func TestBatcherRejectsEmpty(t *testing.T) {
	b := newBatcher(t, &fakeRunner{}, Config{})
	if _, err := b.Submit(context.Background(), Request{}); !errors.Is(err, ErrNoPoints) {
		t.Errorf("Submit(no points) = %v, want ErrNoPoints", err)
	}
}

// Concurrent submitters all complete with their own results — the
// routing survives the race detector.
func TestBatcherConcurrentSubmitters(t *testing.T) {
	runner := &fakeRunner{}
	b := newBatcher(t, runner, Config{MaxBatch: 8, MaxWait: 5 * time.Millisecond, Parallel: 2})
	var wg sync.WaitGroup
	var bad atomic.Int64
	for seed := int64(1); seed <= 40; seed++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			j, err := b.Submit(context.Background(), Request{Points: []sim.Scenario{point(seed)}})
			if err != nil {
				bad.Add(1)
				return
			}
			res, err := j.Results()
			if err != nil || len(res) != 1 || res[0].Metrics.FramesSent != int(seed) {
				bad.Add(1)
			}
		}(seed)
	}
	wg.Wait()
	if n := bad.Load(); n != 0 {
		t.Errorf("%d submitters got wrong results", n)
	}
}

// counterValue digs a counter out of a registry snapshot.
func counterValue(snap obs.Snapshot, name string) int64 {
	for _, c := range snap.Counters {
		if c.Name == name {
			return c.Value
		}
	}
	return 0
}

// A max-wait timer armed for one pending generation must never flush the
// next generation of the same class: Stop is advisory (the callback may
// already be scheduled when the size flush calls it), so timerFlush's
// identity check is what protects the younger batch's coalescing window.
func TestBatcherStaleTimerHarmless(t *testing.T) {
	runner := &fakeRunner{}
	o := obs.New(obs.Config{})
	b := newBatcher(t, runner, Config{MaxBatch: 2, MaxWait: time.Hour, Obs: o})

	j1, err := b.Submit(context.Background(), Request{Points: []sim.Scenario{point(1)}})
	if err != nil {
		t.Fatal(err)
	}
	b.mu.Lock()
	gen1 := b.classes[""]
	b.mu.Unlock()
	if gen1 == nil || gen1.timer == nil {
		t.Fatal("first submission did not arm the max-wait timer")
	}
	j2, err := b.Submit(context.Background(), Request{Points: []sim.Scenario{point(2)}}) // size flush
	if err != nil {
		t.Fatal(err)
	}
	j3, err := b.Submit(context.Background(), Request{Points: []sim.Scenario{point(3)}}) // next generation
	if err != nil {
		t.Fatal(err)
	}
	b.mu.Lock()
	gen2 := b.classes[""]
	b.mu.Unlock()
	if gen2 == nil || gen2 == gen1 {
		t.Fatalf("expected a fresh pending generation after the size flush (gen1=%p gen2=%p)", gen1, gen2)
	}

	// The stale callback fires after its batch is long gone: it must not
	// touch gen2.
	b.timerFlush("", gen1)
	if got := o.Counter("serve.batch.flush.timer").Value(); got != 0 {
		t.Fatalf("stale timer flushed a batch (flush.timer = %d)", got)
	}
	b.mu.Lock()
	intact := b.classes[""] == gen2 && len(gen2.jobs) == 1
	b.mu.Unlock()
	if !intact {
		t.Fatal("stale timer callback disturbed the younger pending batch")
	}

	// The live generation's own callback still flushes it.
	b.timerFlush("", gen2)
	if _, err := j3.Results(); err != nil {
		t.Fatal(err)
	}
	if got := o.Counter("serve.batch.flush.timer").Value(); got != 1 {
		t.Errorf("flush.timer = %d, want 1", got)
	}
	if _, err := j1.Results(); err != nil {
		t.Fatal(err)
	}
	if _, err := j2.Results(); err != nil {
		t.Fatal(err)
	}
}

// A size-triggered flush stops the armed max-wait timer outright: after
// the wait window passes, no timer callback has fired and no timer
// goroutine is left running.
func TestBatcherSizeFlushStopsTimer(t *testing.T) {
	runner := &fakeRunner{}
	o := obs.New(obs.Config{})
	b := newBatcher(t, runner, Config{MaxBatch: 2, MaxWait: 30 * time.Millisecond, Obs: o})

	j1, err := b.Submit(context.Background(), Request{Points: []sim.Scenario{point(1)}})
	if err != nil {
		t.Fatal(err)
	}
	j2, err := b.Submit(context.Background(), Request{Points: []sim.Scenario{point(2)}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := j1.Results(); err != nil {
		t.Fatal(err)
	}
	if _, err := j2.Results(); err != nil {
		t.Fatal(err)
	}

	time.Sleep(3 * b.cfg.MaxWait) // well past the window the timer was armed for
	if got := o.Counter("serve.batch.flush.timer").Value(); got != 0 {
		t.Errorf("stopped timer still flushed (flush.timer = %d)", got)
	}
	if n := leaktest.Count("cbma/internal/serve/batch.(*Batcher).timerFlush"); n != 0 {
		t.Errorf("%d timer callback goroutines still running", n)
	}
	if got := o.Counter("serve.batch.flush.size").Value(); got != 1 {
		t.Errorf("flush.size = %d, want 1", got)
	}
}
