// Package batch turns individual campaign submissions into batched
// executions: compatible sweep-point submissions are coalesced into one
// campaign run sharing a worker budget, flushed when the batch fills
// (size) or ages out (max-wait timer), with cooperative cancellation per
// job and a graceful drain on shutdown.
//
// Batching is what makes "campaigns as requests" scale: N clients each
// submitting a handful of sweep points become one RunCampaignContext call
// whose points share the engine's worker pool, instead of N processes
// fighting over cores. Results are unaffected by batching — each point's
// metrics depend only on its own scenario (per-point DeriveSeed streams),
// which is also what lets the core layer cache them.
package batch

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"cbma/internal/obs"
	"cbma/internal/serve/core"
	"cbma/internal/sim"
)

// Errors returned by Submit and Close.
var (
	ErrClosed    = errors.New("batch: batcher is closed")
	ErrNoPoints  = errors.New("batch: submission has no points")
	ErrDrainTime = errors.New("batch: drain deadline exceeded")
)

// Config parameterizes New.
type Config struct {
	// Service executes flushed batches (cache probe + campaign run).
	// Required.
	Service *core.Service
	// MaxBatch flushes a class's pending queue when it reaches this many
	// points. Zero selects 64.
	MaxBatch int
	// MaxWait flushes a non-empty pending queue this long after its first
	// point arrived, bounding the latency a lone submission pays for
	// batching. Zero selects 150 ms.
	MaxWait time.Duration
	// Workers is the engine worker budget each executing batch spreads
	// over its points (sim.CampaignOpts.Workers). Zero selects GOMAXPROCS.
	Workers int
	// Parallel bounds concurrently executing batches. Zero selects 1: one
	// batch owns the worker budget at a time, which keeps throughput work-
	// conserving instead of oversubscribing cores across batches.
	Parallel int
	// Obs, when non-nil, receives batch telemetry: flush counters by
	// trigger (serve.batch.flush.size/timer/drain), per-batch point-count
	// histogram (serve.batch.points), queue gauge (serve.batch.pending)
	// and job/batch lifecycle events.
	Obs *obs.Observer
}

// Request is one submission: a set of campaign points that must complete
// together.
type Request struct {
	// What labels the submission in errors and telemetry.
	What string
	// Class is the compatibility class. Only submissions of the same class
	// coalesce into a batch; classes partition the queue so callers can
	// keep incompatible work (different priorities, different downstream
	// handling) from sharing a flush. The empty class is a class.
	Class string
	// Points are the campaign points to run.
	Points []sim.Scenario
}

// Job is an accepted submission making its way through the batcher.
type Job struct {
	id    string
	what  string
	class string
	// ctx travels with the queued submission so a job cancelled while
	// still pending never executes; it is consumed once by runBatch.
	ctx    context.Context //cbma:allow ctxflow queued-submission seam, audited
	points []sim.Scenario

	done    chan struct{}
	results []core.PointResult
	err     error
	batch   int // sequence number of the executing batch
}

// ID returns the batcher-assigned job identifier.
func (j *Job) ID() string { return j.id }

// Done is closed when the job's results are ready (or its context was
// cancelled before execution).
func (j *Job) Done() <-chan struct{} { return j.done }

// Results blocks until the job completes and returns its per-point
// results. The error mirrors core.Service.Run, re-indexed to the job's own
// points; a job cancelled before execution returns its context's error.
func (j *Job) Results() ([]core.PointResult, error) {
	<-j.done
	return j.results, j.err
}

// Batch reports the sequence number of the batch that executed the job
// (zero until done) — observability for tests and the daemon's status API.
func (j *Job) Batch() int {
	select {
	case <-j.done:
		return j.batch
	default:
		return 0
	}
}

// pending is one class's accumulating batch.
type pending struct {
	jobs   []*Job
	points int
	timer  *time.Timer
}

// Batcher coalesces submissions and executes them through a core.Service.
type Batcher struct {
	cfg Config
	// base bounds every batch execution to the batcher's lifetime; Close
	// cancels it to cut off in-flight campaigns at the drain deadline.
	base context.Context //cbma:allow ctxflow batcher-lifetime root, audited seam
	stop context.CancelFunc

	mu      sync.Mutex
	classes map[string]*pending
	nextJob int
	nextBat int
	closed  bool

	sem chan struct{} // bounds concurrently executing batches
	wg  sync.WaitGroup
}

// New starts a batcher. Close must be called to drain it.
func New(cfg Config) *Batcher {
	if cfg.MaxBatch <= 0 {
		cfg.MaxBatch = 64
	}
	if cfg.MaxWait <= 0 {
		cfg.MaxWait = 150 * time.Millisecond
	}
	if cfg.Parallel <= 0 {
		cfg.Parallel = 1
	}
	//cbma:allow ctxflow batcher-lifetime root: New has no caller ctx by design, Close bounds the drain
	base, stop := context.WithCancel(context.Background())
	return &Batcher{
		cfg:     cfg,
		base:    base,
		stop:    stop,
		classes: make(map[string]*pending),
		sem:     make(chan struct{}, cfg.Parallel),
	}
}

// Submit enqueues a request. The returned Job completes asynchronously;
// ctx cancels the job (a job cancelled while still queued never executes;
// one already executing runs to completion and reports the cancellation).
// Submission never blocks on execution — backpressure is the semaphore
// inside the executors, not the intake.
func (b *Batcher) Submit(ctx context.Context, req Request) (*Job, error) {
	if len(req.Points) == 0 {
		return nil, ErrNoPoints
	}
	if ctx == nil {
		ctx = context.Background() //cbma:allow ctxflow nil-ctx default for tests; real callers pass one
	}
	b.mu.Lock()
	if b.closed {
		b.mu.Unlock()
		return nil, ErrClosed
	}
	b.nextJob++
	j := &Job{
		id:     fmt.Sprintf("job-%d", b.nextJob),
		what:   req.What,
		class:  req.Class,
		ctx:    ctx,
		points: req.Points,
		done:   make(chan struct{}),
	}
	p := b.classes[req.Class]
	if p == nil {
		p = &pending{}
		b.classes[req.Class] = p
	}
	wasEmpty := len(p.jobs) == 0
	p.jobs = append(p.jobs, j)
	p.points += len(j.points)
	b.cfg.Obs.Gauge("serve.batch.pending").Add(int64(len(j.points)))
	full := p.points >= b.cfg.MaxBatch
	if full {
		b.flushLocked(req.Class, "size")
	} else if wasEmpty {
		class := req.Class
		p.timer = time.AfterFunc(b.cfg.MaxWait, func() { b.timerFlush(class, p) })
	}
	b.mu.Unlock()
	if b.cfg.Obs.EmitsEvents() {
		b.cfg.Obs.Emit("job_submitted", map[string]any{
			"job": j.id, "class": j.class, "points": len(j.points),
		})
	}
	return j, nil
}

// timerFlush is the max-wait timer callback for one pending generation.
// The identity check against the armed *pending is what makes a stale
// timer harmless: Stop is advisory (the callback may already be running
// when flushLocked calls it), and without the comparison a timer armed for
// an already-flushed batch would prematurely flush the NEXT batch of the
// same class, silently halving its coalescing window.
func (b *Batcher) timerFlush(class string, p *pending) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if cur := b.classes[class]; cur == p && len(cur.jobs) > 0 {
		b.flushLocked(class, "timer")
	}
}

// flushLocked detaches the class's pending batch and hands it to an
// executor goroutine. Caller holds b.mu.
func (b *Batcher) flushLocked(class, why string) {
	p := b.classes[class]
	if p == nil || len(p.jobs) == 0 {
		return
	}
	if p.timer != nil {
		p.timer.Stop()
	}
	jobs, points := p.jobs, p.points
	delete(b.classes, class)
	b.nextBat++
	seq := b.nextBat
	b.cfg.Obs.Counter("serve.batch.flush." + why).Inc()
	b.cfg.Obs.Gauge("serve.batch.pending").Add(int64(-points))
	b.cfg.Obs.Histogram("serve.batch.points").Observe(int64(points))
	if b.cfg.Obs.EmitsEvents() {
		b.cfg.Obs.Emit("batch_flush", map[string]any{
			"batch": seq, "class": class, "why": why,
			"jobs": len(jobs), "points": points,
		})
	}
	b.wg.Add(1)
	go b.runBatch(seq, class, jobs)
}

// runBatch executes one flushed batch: cancelled jobs are completed
// without running, the rest run as a single campaign sharing the worker
// budget, and results are split back per job.
func (b *Batcher) runBatch(seq int, class string, jobs []*Job) {
	defer b.wg.Done()
	b.sem <- struct{}{}
	defer func() { <-b.sem }()

	live := jobs[:0:0]
	var points []sim.Scenario
	for _, j := range jobs {
		if err := j.ctx.Err(); err != nil {
			j.finish(seq, nil, err, b.cfg.Obs)
			continue
		}
		live = append(live, j)
		points = append(points, j.points...)
	}
	if len(live) == 0 {
		return
	}
	what := class
	if what == "" {
		what = fmt.Sprintf("batch %d", seq)
	}
	results, err := b.cfg.Service.Run(b.base, points, sim.CampaignOpts{
		Workers: b.cfg.Workers,
		What:    what,
		Obs:     b.cfg.Obs,
	})
	off := 0
	for _, j := range live {
		part := results[off : off+len(j.points)]
		off += len(j.points)
		j.finish(seq, part, jobError(j, part, err), b.cfg.Obs)
	}
}

// jobError derives one job's error from its slice of the batch results
// and the batch-wide error: per-point failures become a job-local
// *sim.CampaignError; a batch-wide cancellation (or the job's own) passes
// through when the job had no point failures of its own.
func jobError(j *Job, part []core.PointResult, batchErr error) error {
	var pes []*sim.PointError
	for i, r := range part {
		if r.Err != "" {
			pes = append(pes, &sim.PointError{What: j.what, Point: i, Err: errors.New(r.Err)})
		}
	}
	if len(pes) > 0 {
		return &sim.CampaignError{Points: pes}
	}
	var cerr *sim.CampaignError
	if errors.As(batchErr, &cerr) {
		return nil // other jobs' failures are not this job's
	}
	if batchErr != nil {
		return batchErr
	}
	return j.ctx.Err()
}

// finish publishes a job's outcome exactly once.
func (j *Job) finish(seq int, results []core.PointResult, err error, o *obs.Observer) {
	j.batch = seq
	j.results = results
	j.err = err
	close(j.done)
	if o.EmitsEvents() {
		f := map[string]any{"job": j.id, "batch": seq}
		if err != nil {
			f["error"] = err.Error()
		}
		cached := 0
		for _, r := range results {
			if r.Cached {
				cached++
			}
		}
		f["cached"] = cached
		o.Emit("job_done", f)
	}
}

// Close drains the batcher: no new submissions are accepted, every pending
// batch flushes immediately, and Close waits — up to ctx — for in-flight
// batches to finish. Jobs still queued behind the semaphore execute during
// the drain; only the deadline cuts them off (they then complete with the
// batcher's cancelled context, surfacing partial metrics the way SIGINT
// does for the CLI).
func (b *Batcher) Close(ctx context.Context) error {
	b.mu.Lock()
	if !b.closed {
		b.closed = true
		for class := range b.classes {
			b.flushLocked(class, "drain")
		}
	}
	b.mu.Unlock()

	done := make(chan struct{})
	go func() {
		b.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		b.stop()
		return nil
	case <-ctx.Done():
		// Cancel in-flight campaigns and wait for them to unwind; they
		// finish promptly with Interrupted partials.
		b.stop()
		<-done
		return ErrDrainTime
	}
}
