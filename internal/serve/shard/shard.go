package shard

import (
	"context"
	"errors"
	"fmt"
	"path/filepath"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"cbma/internal/fault"
	"cbma/internal/obs"
	"cbma/internal/sim"
)

// Coordinator errors, distinguishable with errors.Is. They surface wrapped
// inside *sim.PointError/*sim.CampaignError so callers see the same error
// shapes as single-process campaigns.
var (
	// ErrCorruptReply marks a worker reply naming a point outside its
	// assignment (or one already delivered) — detected coordinator-side,
	// the attempt fails and the range redispatches.
	ErrCorruptReply = errors.New("shard: corrupt worker reply")
	// ErrStalled marks an attempt cancelled by the heartbeat monitor.
	ErrStalled = errors.New("shard: worker heartbeat timeout")
	// ErrQuarantined marks points abandoned after a range exhausted its
	// zero-progress retry budget — the campaign-level mirror of the
	// engine's round quarantine: the rest of the campaign completes.
	ErrQuarantined = errors.New("shard: point range quarantined after repeated worker failures")
)

// Config assembles a Coordinator. The zero value is usable: one shard,
// in-process transport, 10s heartbeat timeout, 3 retries with 50ms-base
// exponential backoff, no journal.
type Config struct {
	// Shards is the number of contiguous point ranges the campaign is cut
	// into (clamped to the point count); it is the unit of dispatch,
	// retry and reassignment. Zero or negative means 1.
	Shards int
	// Parallel bounds concurrently in-flight attempts. Zero means Shards.
	Parallel int
	// Transport executes assignments. Nil means Local{} (in-process).
	Transport Transport
	// HeartbeatTimeout cancels an attempt whose worker stops streaming
	// (no result and no beat) for this long. Zero means 10s; negative
	// disables the monitor.
	HeartbeatTimeout time.Duration
	// MaxAttempts is the consecutive zero-progress failures a range
	// tolerates before its remaining points are quarantined. An attempt
	// that commits at least one point resets the count — a worker that
	// crashes on every dispatch but always makes progress still converges.
	// Zero means 3.
	MaxAttempts int
	// Backoff is the delay before redispatching a failed range, doubling
	// per consecutive failure up to MaxBackoff. Zeros mean 50ms and 1s.
	Backoff    time.Duration
	MaxBackoff time.Duration
	// JournalDir, when set, journals committed points there and resumes
	// from any committed points already present (the directory must hold
	// this campaign's journal or none — see ErrJournalMismatch).
	JournalDir string
	// JournalRoot, when set (and JournalDir is not), derives a per-
	// campaign journal directory under it from the campaign hash, so one
	// root can journal many campaigns without collision.
	JournalRoot string
	// WorkerFaults, when non-nil and enabled, wraps the transport in the
	// chaos decorator (FaultyTransport) injecting worker crashes, stalls
	// and corrupt replies on the schedule fault.NewWorkerInjector derives.
	WorkerFaults *fault.WorkerProfile
	// Obs receives coordinator telemetry (shard.* counters, dispatch
	// events, attempt timings, campaign progress, the per-shard breakdown)
	// when neither the campaign's opts nor its points carry an observer.
	// Telemetry never changes results.
	Obs *obs.Observer
}

// Coordinator executes campaigns by sharding them over a Transport. It
// implements core.Runner, preserving sim.RunCampaignContext's contract:
// results indexed like points and bit-identical to a single-process run,
// failed points holding zero Metrics with detail in a *sim.CampaignError,
// cancellation returning the committed prefix with the context's error.
type Coordinator struct {
	cfg Config
}

// New builds a Coordinator, applying Config defaults.
func New(cfg Config) *Coordinator {
	if cfg.Shards <= 0 {
		cfg.Shards = 1
	}
	if cfg.Parallel <= 0 {
		cfg.Parallel = cfg.Shards
	}
	if cfg.Transport == nil {
		cfg.Transport = Local{}
	}
	if cfg.HeartbeatTimeout == 0 {
		cfg.HeartbeatTimeout = 10 * time.Second
	}
	if cfg.MaxAttempts <= 0 {
		cfg.MaxAttempts = 3
	}
	if cfg.Backoff <= 0 {
		cfg.Backoff = 50 * time.Millisecond
	}
	if cfg.MaxBackoff <= 0 {
		cfg.MaxBackoff = time.Second
	}
	if cfg.WorkerFaults != nil && cfg.WorkerFaults.Enabled() {
		cfg.Transport = &FaultyTransport{
			Inner:    cfg.Transport,
			Injector: fault.NewWorkerInjector(*cfg.WorkerFaults),
		}
	}
	return &Coordinator{cfg: cfg}
}

// task is one point range moving through dispatch. It is owned by exactly
// one dispatch goroutine at a time; ownership transfers through the task
// queue, which provides the happens-before edges for its mutable fields.
type task struct {
	shard     int
	dispatch  int   // total dispatch attempts (Assignment.Attempt)
	failures  int   // consecutive zero-progress failures (backoff, quarantine)
	pending   []int // uncommitted campaign point indices, ascending
	lastError error
}

// Run implements core.Runner.
func (c *Coordinator) Run(ctx context.Context, points []sim.Scenario, opts sim.CampaignOpts) ([]sim.Metrics, error) {
	if len(points) == 0 {
		return nil, nil
	}
	what := opts.What
	if what == "" {
		what = "sharded campaign"
	}
	o := opts.Obs
	if o == nil {
		// The daemon's batch layer attaches per-job observers to the points,
		// not the opts (mirroring sim.RunCampaignContext's fallback): route
		// shard telemetry into the job's own pipeline when present.
		o = points[0].Obs
	}
	if o == nil {
		o = c.cfg.Obs
	}
	// One trace ID covers the whole distributed campaign: every coordinator
	// event carries it, it rides the wire to workers, and the manifest
	// records it.
	o.EnsureTrace()
	out := make([]sim.Metrics, len(points))
	perr := make([]*sim.PointError, len(points))
	hashes := make([]string, len(points))
	var runnable []int
	for i := range points {
		h, err := points[i].Hash()
		if err != nil {
			perr[i] = &sim.PointError{What: what, Point: i, Err: err}
			continue
		}
		hashes[i] = h
		runnable = append(runnable, i)
	}

	journal, err := c.openJournal(what, hashes, o)
	if err != nil {
		return nil, err
	}

	// Resume: points already committed in the journal are restored, not
	// re-executed — the zero-re-execution half of the resume contract.
	var pending []int
	restored := 0
	for _, i := range runnable {
		if journal != nil {
			if m, ok := journal.Committed(i, hashes[i], points[i].Seed); ok {
				out[i] = m
				restored++
				continue
			}
		}
		pending = append(pending, i)
	}
	o.CampaignStart(what, len(points))
	o.Counter("shard.points.restored").Add(int64(restored))
	// Invalid + restored points are already resolved: they advance the
	// progress line as done but stay out of the ETA's pace sample, so a
	// resumed campaign projects from actually-executed points only.
	o.CampaignRestored(what, len(points)-len(pending))
	if len(pending) > 0 {
		c.dispatch(ctx, points, hashes, pending, opts, o, journal, what, out, perr)
	}
	o.CampaignEnd(what)

	var failed []*sim.PointError
	for _, pe := range perr {
		if pe != nil {
			failed = append(failed, pe)
		}
	}
	if len(failed) > 0 {
		return out, &sim.CampaignError{Points: failed}
	}
	if err := ctx.Err(); err != nil {
		return out, err
	}
	return out, nil
}

// openJournal resolves the configured journal location, deriving a per-
// campaign directory under JournalRoot when no explicit dir is given.
func (c *Coordinator) openJournal(what string, hashes []string, o *obs.Observer) (*Journal, error) {
	dir := c.cfg.JournalDir
	if dir == "" && c.cfg.JournalRoot != "" {
		dir = filepath.Join(c.cfg.JournalRoot, CampaignHash(hashes)[:16])
	}
	if dir == "" {
		return nil, nil
	}
	return OpenJournal(dir, what, hashes, o)
}

// dispatch cuts the pending points into ranges and drains them through the
// transport with retries, reassignment and quarantine. It returns once
// every range is resolved (committed, failed, quarantined) or the context
// is cancelled.
func (c *Coordinator) dispatch(ctx context.Context, points []sim.Scenario, hashes []string, pending []int, opts sim.CampaignOpts, o *obs.Observer, journal *Journal, what string, out []sim.Metrics, perr []*sim.PointError) {
	ranges := partition(pending, c.cfg.Shards)
	o.Counter("shard.ranges").Add(int64(len(ranges)))
	// The queue is the reassignment mechanism: a failed range is re-
	// enqueued and picked up by whichever dispatch goroutine frees first
	// — an orphaned range never belongs to the worker that lost it. The
	// buffer holds every live task, so re-enqueue never blocks.
	queue := make(chan *task, len(ranges))
	var outstanding atomic.Int64
	outstanding.Store(int64(len(ranges)))
	for s, idxs := range ranges {
		queue <- &task{shard: s, pending: idxs}
	}
	// finish retires one range; the last retirement closes the queue and
	// releases every dispatch goroutine.
	finish := func() {
		if outstanding.Add(-1) == 0 {
			close(queue)
		}
	}
	workers := c.cfg.Parallel
	if workers > len(ranges) {
		workers = len(ranges)
	}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for t := range queue {
				if ctx.Err() != nil {
					finish() // cancelled: leave the range unresolved, like undispatched points
					continue
				}
				if t.failures > 0 && !sleepCtx(ctx, c.backoff(t.failures)) {
					finish()
					continue
				}
				assigned := len(t.pending)
				progressed, err := c.attempt(ctx, t, points, hashes, opts, o, journal, what, out, perr)
				if err == nil && len(t.pending) > 0 {
					err = fmt.Errorf("%w: %d of %d undelivered", ErrShortReply, len(t.pending), assigned)
				}
				if err == nil || ctx.Err() != nil {
					finish()
					continue
				}
				t.lastError = err
				if progressed {
					t.failures = 1 // progress resets the quarantine clock, not the backoff
				} else {
					t.failures++
				}
				if t.failures >= c.cfg.MaxAttempts {
					c.quarantine(t, o, what, perr)
					finish()
					continue
				}
				o.Counter("shard.retries").Inc()
				if o.EmitsEvents() {
					o.Emit("shard_retry", map[string]any{
						"what": what, "shard": t.shard, "attempt": t.dispatch,
						"span_id": rangeSpan(o, t.shard),
						"pending": len(t.pending), "error": err.Error(),
					})
				}
				queue <- t // reassign: any free dispatch goroutine takes it
			}
		}()
	}
	wg.Wait()
}

// attempt dispatches one range once, streaming results through a sink that
// commits each point as it lands. It reports whether the attempt resolved
// at least one point and the transport's error, folding a heartbeat stall
// into ErrStalled.
func (c *Coordinator) attempt(ctx context.Context, t *task, points []sim.Scenario, hashes []string, opts sim.CampaignOpts, o *obs.Observer, journal *Journal, what string, out []sim.Metrics, perr []*sim.PointError) (bool, error) {
	a := Assignment{
		Shard:   t.shard,
		Attempt: t.dispatch,
		Indices: append([]int(nil), t.pending...),
		What:    what,
		Workers: opts.Workers,
		// Trace context and telemetry asks: workers relay their events only
		// when a sink exists to merge them into, and ship their registry
		// snapshot whenever any observer will fold it into the breakdown.
		TraceID:      o.TraceID(),
		RelayEvents:  o.EmitsEvents(),
		WantSnapshot: o != nil,
	}
	t.dispatch++
	for _, i := range a.Indices {
		scn := points[i]
		scn.Obs = nil // telemetry stays coordinator-side (and off the wire)
		scn.Workers = 0
		a.Points = append(a.Points, scn)
		a.Hashes = append(a.Hashes, hashes[i])
	}
	if c.cfg.HeartbeatTimeout > 0 {
		a.HeartbeatMS = int(c.cfg.HeartbeatTimeout.Milliseconds() / 3)
		if a.HeartbeatMS < 1 {
			a.HeartbeatMS = 1
		}
	}
	actx, cancel := context.WithCancel(ctx)
	defer cancel()
	span := rangeSpan(o, a.Shard)
	sink := &attemptSink{
		expected: make(map[int]bool, len(a.Indices)),
		beats:    make(chan struct{}, 1),
		points:   points, hashes: hashes, journal: journal,
		o: o, what: what, out: out, perr: perr,
		shard: a.Shard, attempt: a.Attempt, span: span,
	}
	for _, i := range a.Indices {
		sink.expected[i] = true
	}
	var stalled atomic.Bool
	var mwg sync.WaitGroup
	if c.cfg.HeartbeatTimeout > 0 {
		mwg.Add(1)
		go func() {
			defer mwg.Done()
			c.monitor(actx, cancel, sink.beats, &stalled, o)
		}()
	}
	o.Counter("shard.dispatches").Inc()
	o.Shards().AddAttempt(a.Shard)
	if o.EmitsEvents() {
		o.Emit("shard_dispatch", map[string]any{
			"what": what, "shard": a.Shard, "attempt": a.Attempt,
			"span_id": span, "points": len(a.Indices),
		})
	}
	sp := o.Start(o.Histogram("shard.attempt_ns"))
	err := c.cfg.Transport.Execute(actx, a, sink)
	ns := sp.End()
	cancel()
	mwg.Wait()
	// Remove resolved points from the range; what is left redispatches.
	var remaining []int
	for _, i := range t.pending {
		if !sink.resolved[i] {
			remaining = append(remaining, i)
		}
	}
	t.pending = remaining
	if stalled.Load() && (err != nil || len(t.pending) > 0) {
		err = fmt.Errorf("%w after %v", ErrStalled, c.cfg.HeartbeatTimeout)
	}
	if err != nil && len(t.pending) == 0 {
		// Every point landed before the failure — the attempt did its job.
		err = nil
	}
	if o.EmitsEvents() {
		f := map[string]any{
			"what": what, "shard": a.Shard, "attempt": a.Attempt,
			"span_id": span, "delivered": len(sink.resolved),
			"pending": len(t.pending), "ns": ns,
		}
		if err != nil {
			f["error"] = err.Error()
		}
		o.Emit("shard_attempt_done", f)
	}
	return len(sink.resolved) > 0, err
}

// rangeSpan derives the stable span ID for a shard's point range: the same
// campaign trace and shard always yield the same ID, which is what lets
// cbmaobs join a range's dispatch, retry and commit events across attempts.
func rangeSpan(o *obs.Observer, shard int) string {
	return obs.SpanID(o.TraceID(), "shard", strconv.Itoa(shard))
}

// quarantine abandons a range's remaining points, mirroring the engine's
// round quarantine at campaign scale: each point fails with a
// *sim.PointError wrapping ErrQuarantined and the campaign moves on.
func (c *Coordinator) quarantine(t *task, o *obs.Observer, what string, perr []*sim.PointError) {
	cause := t.lastError
	if cause == nil {
		cause = errors.New("unknown failure")
	}
	for _, i := range t.pending {
		perr[i] = &sim.PointError{What: what, Point: i,
			Err: fmt.Errorf("%w (shard %d, %d attempts): %v", ErrQuarantined, t.shard, t.dispatch, cause)}
		o.CampaignPoint()
	}
	o.Counter("shard.points.quarantined").Add(int64(len(t.pending)))
	if o.EmitsEvents() {
		o.Emit("shard_quarantine", map[string]any{
			"what": what, "shard": t.shard, "attempts": t.dispatch,
			"span_id": rangeSpan(o, t.shard),
			"points":  len(t.pending), "error": cause.Error(),
		})
	}
}

// monitor watches one attempt's liveness: every delivery or beat re-arms
// the timer; silence for the full timeout marks the attempt stalled and
// cancels it. The timer is stopped-and-drained before every Reset, and
// only this goroutine touches it.
func (c *Coordinator) monitor(ctx context.Context, cancel context.CancelFunc, beats <-chan struct{}, stalled *atomic.Bool, o *obs.Observer) {
	hb := time.NewTimer(c.cfg.HeartbeatTimeout)
	defer hb.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-beats:
			if !hb.Stop() {
				select {
				case <-hb.C:
				default:
				}
			}
			hb.Reset(c.cfg.HeartbeatTimeout)
		case <-hb.C:
			stalled.Store(true)
			o.Counter("shard.heartbeat_timeouts").Inc()
			cancel()
			return
		}
	}
}

// backoff returns the capped-exponential redispatch delay for the n-th
// consecutive failure (n >= 1).
func (c *Coordinator) backoff(n int) time.Duration {
	d := c.cfg.Backoff
	for i := 1; i < n; i++ {
		d *= 2
		if d >= c.cfg.MaxBackoff {
			return c.cfg.MaxBackoff
		}
	}
	if d > c.cfg.MaxBackoff {
		d = c.cfg.MaxBackoff
	}
	return d
}

// sleepCtx sleeps for d unless ctx is cancelled first; it reports whether
// the full sleep elapsed.
func sleepCtx(ctx context.Context, d time.Duration) bool {
	if d <= 0 {
		return ctx.Err() == nil
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return false
	case <-t.C:
		return true
	}
}

// partition cuts the pending indices into at most shards contiguous,
// near-equal ranges — deterministic, so a resumed campaign re-partitions
// identically and fault schedules (keyed by shard) replay.
func partition(pending []int, shards int) [][]int {
	if shards > len(pending) {
		shards = len(pending)
	}
	out := make([][]int, 0, shards)
	for s := 0; s < shards; s++ {
		lo := s * len(pending) / shards
		hi := (s + 1) * len(pending) / shards
		out = append(out, pending[lo:hi])
	}
	return out
}

// attemptSink commits an attempt's streamed results: validation (only
// assigned, not-yet-delivered points are accepted), journaling, telemetry
// and progress. Beat/Deliver are called only from the attempt's dispatch
// goroutine; Event/Telemetry may also arrive from a transport relay
// goroutine and touch only concurrency-safe state (the observer and the
// per-shard collector), never the expected/resolved maps.
type attemptSink struct {
	expected map[int]bool // assigned and not yet delivered this attempt
	resolved map[int]bool // delivered this attempt (result or point error)
	beats    chan struct{}

	points  []sim.Scenario
	hashes  []string
	journal *Journal
	o       *obs.Observer
	what    string
	out     []sim.Metrics
	perr    []*sim.PointError

	shard   int
	attempt int
	span    string // the range's span ID (see rangeSpan)
}

// Beat implements Sink; it never blocks (the monitor drains the buffered
// channel, and a beat arriving while one is pending is redundant).
func (s *attemptSink) Beat() {
	s.o.Shards().AddBeat(s.shard)
	select {
	case s.beats <- struct{}{}:
	default:
	}
}

// Event implements Sink: a relayed worker event re-emits into the campaign
// stream tagged with its origin and trace context. The worker's own
// timestamp (ns since the worker's run epoch) is preserved as worker_t_ns;
// the merged stream's t_ns is the coordinator's. Relayed events also count
// as liveness — a worker busy inside a long point still streams telemetry.
func (s *attemptSink) Event(ev obs.Event) {
	s.Beat()
	s.o.Counter("shard.events.relayed").Inc()
	if !s.o.EmitsEvents() {
		return
	}
	f := ev.Fields
	if f == nil {
		f = make(map[string]any, 4)
	}
	f["shard"] = s.shard
	f["attempt"] = s.attempt
	f["span_id"] = s.span
	f["worker_t_ns"] = ev.T
	s.o.Emit(ev.Type, f)
}

// Telemetry implements Sink: the worker's registry snapshot merges into
// the campaign's per-shard breakdown (a reassigned range merges every
// attempt's snapshot).
func (s *attemptSink) Telemetry(snap obs.Snapshot) {
	s.o.Shards().MergeRegistry(s.shard, snap)
}

// Deliver implements Sink.
func (s *attemptSink) Deliver(r PointResult) error {
	s.Beat()
	if !s.expected[r.Index] {
		s.o.Counter("shard.corrupt_replies").Inc()
		return fmt.Errorf("%w: point %d is not in the assignment (or already delivered)", ErrCorruptReply, r.Index)
	}
	delete(s.expected, r.Index)
	if s.resolved == nil {
		s.resolved = make(map[int]bool)
	}
	s.resolved[r.Index] = true
	failed := r.Err != ""
	if failed {
		s.perr[r.Index] = &sim.PointError{What: s.what, Point: r.Index, Err: errors.New(r.Err)}
		s.o.Counter("shard.points.failed").Inc()
	} else {
		s.out[r.Index] = r.Metrics
		if s.journal != nil {
			s.journal.Commit(r.Index, s.hashes[r.Index], s.points[r.Index].Seed, r.Metrics)
		}
		s.o.Counter("shard.points.committed").Inc()
	}
	s.o.Shards().AddPoint(s.shard, failed)
	if s.o.EmitsEvents() {
		f := map[string]any{
			"what": s.what, "shard": s.shard, "attempt": s.attempt, "point": r.Index,
			"span_id": obs.SpanID(s.o.TraceID(), "point", strconv.Itoa(r.Index)),
		}
		if failed {
			f["failed"] = true
		}
		if r.ElapsedNs > 0 {
			f["ns"] = r.ElapsedNs
		}
		s.o.Emit("shard_point", f)
	}
	s.o.CampaignPoint()
	return nil
}
