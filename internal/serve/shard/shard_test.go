package shard

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"reflect"
	"sync"
	"testing"
	"time"

	"cbma/internal/fault"
	"cbma/internal/obs"
	"cbma/internal/serve/core"
	"cbma/internal/sim"
)

// campaignPoints builds the reference campaign: quick scenarios varying
// tag count and seed, including a fault-injected profile (the faulted
// equivalence case) and one invalid point (isolation case).
func campaignPoints(t *testing.T, withInvalid bool) []sim.Scenario {
	t.Helper()
	var points []sim.Scenario
	for i := 0; i < 5; i++ {
		scn := sim.DefaultScenario()
		scn.Seed = sim.DeriveSeed(1, 9999, uint64(i))
		scn.NumTags = 2 + i%2
		scn.Packets = 16
		scn.PayloadBytes = 8
		if i == 3 {
			scn.Fault = &fault.Profile{PanicProb: 0.2, TransientErrProb: 0.2, AckLossProb: 0.3}
		}
		points = append(points, scn)
	}
	if withInvalid {
		bad := sim.DefaultScenario()
		bad.NumTags = -1
		points = append(points, bad)
	}
	return points
}

// metricsEqualJSON is the bit-identity check: the canonical serialized
// form (what the cache, the journal and the wire all carry) must match
// byte for byte.
func metricsEqualJSON(t *testing.T, want, got []sim.Metrics) {
	t.Helper()
	if len(want) != len(got) {
		t.Fatalf("length mismatch: want %d, got %d", len(want), len(got))
	}
	for i := range want {
		wb, err := json.Marshal(want[i])
		if err != nil {
			t.Fatal(err)
		}
		gb, err := json.Marshal(got[i])
		if err != nil {
			t.Fatal(err)
		}
		if string(wb) != string(gb) {
			t.Errorf("point %d metrics differ:\nwant %s\ngot  %s", i, wb, gb)
		}
	}
}

// failedPoints extracts the failing indices from a campaign error.
func failedPoints(t *testing.T, err error) map[int]bool {
	t.Helper()
	out := map[int]bool{}
	if err == nil {
		return out
	}
	var ce *sim.CampaignError
	if !errors.As(err, &ce) {
		t.Fatalf("error is not a *sim.CampaignError: %v", err)
	}
	for _, pe := range ce.Points {
		out[pe.Point] = true
	}
	return out
}

// indexCountingRunner counts executions per scenario hash, so resume tests
// can prove a committed point never re-executes.
type indexCountingRunner struct {
	inner core.Runner

	mu     sync.Mutex
	counts map[string]int
}

func newIndexCountingRunner() *indexCountingRunner {
	return &indexCountingRunner{inner: core.CampaignRunner{}, counts: map[string]int{}}
}

func (r *indexCountingRunner) Run(ctx context.Context, points []sim.Scenario, opts sim.CampaignOpts) ([]sim.Metrics, error) {
	for i := range points {
		h, err := points[i].Hash()
		if err != nil {
			h = "invalid"
		}
		r.mu.Lock()
		r.counts[h]++
		r.mu.Unlock()
	}
	return r.inner.Run(ctx, points, opts)
}

func (r *indexCountingRunner) total() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	n := 0
	for _, c := range r.counts {
		n += c
	}
	return n
}

// TestCampaignShardedEquivalence is the tentpole contract: the sharded
// coordinator's Metrics are bit-identical to single-process
// sim.RunCampaign at 1, 2 and 4 shard workers — including a fault-
// injected profile point and a failing point — and the error shape
// (failing indices) matches too.
func TestCampaignShardedEquivalence(t *testing.T) {
	points := campaignPoints(t, true)
	want, wantErr := sim.RunCampaign(points, sim.CampaignOpts{Workers: 2, What: "reference"})
	wantFailed := failedPoints(t, wantErr)

	for _, shards := range []int{1, 2, 4} {
		c := New(Config{Shards: shards, Backoff: time.Millisecond})
		got, gotErr := c.Run(context.Background(), points, sim.CampaignOpts{Workers: 2, What: "reference"})
		metricsEqualJSON(t, want, got)
		// In-process sharding never serializes results, so the stronger
		// structural identity must hold as well.
		for i := range want {
			if !reflect.DeepEqual(want[i], got[i]) {
				t.Errorf("shards=%d point %d: DeepEqual mismatch", shards, i)
			}
		}
		if gotFailed := failedPoints(t, gotErr); !reflect.DeepEqual(wantFailed, gotFailed) {
			t.Errorf("shards=%d failed points %v, want %v", shards, gotFailed, wantFailed)
		}

		// Telemetry must be provably off the result path: the same run with
		// a full observer (ticking clock, event sink, trace propagation,
		// per-shard stats) produces byte-identical metrics and failures.
		var events bytes.Buffer
		snk := obs.NewSink(&events, 0)
		o := obs.New(obs.Config{Clock: obs.SystemClock(), Sink: snk})
		co := New(Config{Shards: shards, Backoff: time.Millisecond, Obs: o})
		got2, gotErr2 := co.Run(context.Background(), points, sim.CampaignOpts{Workers: 2, What: "reference"})
		if err := snk.Close(); err != nil {
			t.Fatal(err)
		}
		metricsEqualJSON(t, want, got2)
		if gotFailed := failedPoints(t, gotErr2); !reflect.DeepEqual(wantFailed, gotFailed) {
			t.Errorf("shards=%d telemetry-on failed points %v, want %v", shards, gotFailed, wantFailed)
		}
		if o.TraceID() == "" {
			t.Errorf("shards=%d: coordinator did not mint a trace ID", shards)
		}
		if events.Len() == 0 {
			t.Errorf("shards=%d: telemetry-on run emitted no events; the equivalence check is vacuous", shards)
		}
	}
}

// TestShardBreakdownSumsToCommitted pins the manifest invariant the CI
// smoke asserts with jq: per-shard telemetry point counts sum exactly to
// this run's committed-point counter, on a fresh run and on a journal
// resume (restored points never count toward any shard's row).
func TestShardBreakdownSumsToCommitted(t *testing.T) {
	points := campaignPoints(t, false)
	dir := t.TempDir()
	const interruptAfter = 2

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	o1 := obs.New(obs.Config{Clock: obs.SystemClock()})
	c1 := New(Config{
		Shards:     2,
		Parallel:   1,
		Transport:  &cancelAfterTransport{inner: Local{}, after: interruptAfter, cancel: cancel},
		JournalDir: dir,
		Backoff:    time.Millisecond,
		Obs:        o1,
	})
	if _, err := c1.Run(ctx, points, sim.CampaignOpts{Workers: 2}); !errors.Is(err, context.Canceled) {
		t.Fatalf("interrupted run returned %v, want context.Canceled", err)
	}
	checkBreakdown(t, "interrupted", o1)

	o2 := obs.New(obs.Config{Clock: obs.SystemClock()})
	c2 := New(Config{Shards: 2, Transport: Local{}, JournalDir: dir, Backoff: time.Millisecond, Obs: o2})
	if _, err := c2.Run(context.Background(), points, sim.CampaignOpts{Workers: 2}); err != nil {
		t.Fatal(err)
	}
	checkBreakdown(t, "resumed", o2)
	sum := int64(0)
	for _, row := range o2.Shards().Breakdown() {
		sum += row.Points
	}
	if want := int64(len(points) - interruptAfter); sum != want {
		t.Errorf("resumed run breakdown sums to %d, want %d (restored points must not count)", sum, want)
	}
	man := o2.Manifest("test")
	if man.TraceID == "" {
		t.Error("manifest missing trace_id")
	}
	if len(man.ShardBreakdown) == 0 || man.WorkerRegistry == nil {
		t.Errorf("manifest missing shard breakdown (%d rows) or worker registry (%v)",
			len(man.ShardBreakdown), man.WorkerRegistry)
	}
}

// checkBreakdown asserts sum(breakdown points) == shard.points.committed.
func checkBreakdown(t *testing.T, label string, o *obs.Observer) {
	t.Helper()
	var sum int64
	for _, row := range o.Shards().Breakdown() {
		sum += row.Points
	}
	if committed := o.Counter("shard.points.committed").Value(); sum != committed {
		t.Errorf("%s: breakdown sums to %d, committed counter = %d", label, sum, committed)
	}
}

// TestCampaignShardedEquivalenceChaos: with the worker-fault chaos
// profile injecting crashes, stalls and corrupt replies, the campaign
// still completes with bit-identical metrics — degraded (retries,
// timeouts) but correct, mirroring the engine's round-quarantine
// contract at campaign scale.
func TestCampaignShardedEquivalenceChaos(t *testing.T) {
	points := campaignPoints(t, false)
	want, err := sim.RunCampaign(points, sim.CampaignOpts{Workers: 2, What: "chaos"})
	if err != nil {
		t.Fatal(err)
	}

	// Full telemetry (ticking clock + event sink): chaos-degraded execution
	// with the observer on must still match the single-process reference.
	var events bytes.Buffer
	snk := obs.NewSink(&events, 0)
	t.Cleanup(func() { _ = snk.Close() })
	o := obs.New(obs.Config{Clock: obs.SystemClock(), Sink: snk})
	c := New(Config{
		Shards:           4,
		Transport:        Local{},
		WorkerFaults:     &fault.WorkerProfile{Seed: 42, CrashProb: 0.5, StallProb: 0.3, CorruptProb: 0.3},
		HeartbeatTimeout: time.Second,
		Backoff:          time.Millisecond,
		MaxAttempts:      10,
		Obs:              o,
	})
	got, gotErr := c.Run(context.Background(), points, sim.CampaignOpts{Workers: 2, What: "chaos"})
	if gotErr != nil {
		t.Fatalf("chaos campaign failed: %v", gotErr)
	}
	metricsEqualJSON(t, want, got)
	faults := o.Counter("shard.retries").Value() + o.Counter("shard.heartbeat_timeouts").Value() +
		o.Counter("shard.corrupt_replies").Value()
	if faults == 0 {
		t.Error("chaos profile injected nothing (retries+timeouts+corruptions all zero); the test is vacuous")
	}
	t.Logf("chaos: retries=%d timeouts=%d corrupt=%d",
		o.Counter("shard.retries").Value(), o.Counter("shard.heartbeat_timeouts").Value(),
		o.Counter("shard.corrupt_replies").Value())
}

// TestShardedStallReassignment: a range whose worker stalls on its first
// attempt is cancelled by the heartbeat monitor and reassigned; the
// campaign completes with identical results.
func TestShardedStallReassignment(t *testing.T) {
	points := campaignPoints(t, false)
	want, err := sim.RunCampaign(points, sim.CampaignOpts{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	// Pick a fault seed whose schedule stalls shard 0 attempt 0 and
	// nothing else — deterministic, since plans are pure functions.
	profile := fault.WorkerProfile{StallProb: 0.45}
	seed := int64(-1)
	for s := int64(0); s < 512; s++ {
		p := profile
		p.Seed = s
		in := fault.NewWorkerInjector(p)
		// Only three pairs are ever dispatched under this schedule:
		// shard 0 stalls once then succeeds, shard 1 succeeds first try.
		if in.Plan(0, 0).Stall && !in.Plan(0, 1).Fires() && !in.Plan(1, 0).Fires() {
			seed = s
			break
		}
	}
	if seed < 0 {
		t.Fatal("no fault seed produces the stall-once schedule")
	}
	profile.Seed = seed

	o := obs.New(obs.Config{})
	c := New(Config{
		Shards:           2,
		WorkerFaults:     &profile,
		HeartbeatTimeout: time.Second,
		Backoff:          time.Millisecond,
		Obs:              o,
	})
	got, gotErr := c.Run(context.Background(), points, sim.CampaignOpts{Workers: 2})
	if gotErr != nil {
		t.Fatal(gotErr)
	}
	metricsEqualJSON(t, want, got)
	if n := o.Counter("shard.heartbeat_timeouts").Value(); n != 1 {
		t.Errorf("heartbeat timeouts = %d, want 1", n)
	}
	if n := o.Counter("shard.retries").Value(); n != 1 {
		t.Errorf("retries = %d, want 1", n)
	}
}

// TestShardedQuarantine: a transport that always fails without progress
// exhausts the retry budget; the affected points fail with ErrQuarantined
// (typed, campaign completes) rather than hanging or crashing.
func TestShardedQuarantine(t *testing.T) {
	points := campaignPoints(t, false)
	o := obs.New(obs.Config{})
	c := New(Config{
		Shards:      2,
		Transport:   failingTransport{},
		Backoff:     time.Millisecond,
		MaxAttempts: 3,
		Obs:         o,
	})
	got, err := c.Run(context.Background(), points, sim.CampaignOpts{})
	if !errors.Is(err, ErrQuarantined) {
		t.Fatalf("error %v, want ErrQuarantined", err)
	}
	failed := failedPoints(t, err)
	if len(failed) != len(points) {
		t.Errorf("%d failed points, want all %d", len(failed), len(points))
	}
	for i := range got {
		if !reflect.DeepEqual(got[i], sim.Metrics{}) {
			t.Errorf("quarantined point %d has non-zero metrics", i)
		}
	}
	if n := o.Counter("shard.points.quarantined").Value(); n != int64(len(points)) {
		t.Errorf("quarantined counter = %d, want %d", n, len(points))
	}
}

type failingTransport struct{}

func (failingTransport) Execute(ctx context.Context, a Assignment, sink Sink) error {
	return errors.New("boom")
}

// TestShardedResumeAfterInterrupt is the resume contract end to end: a
// campaign interrupted after k committed points resumes from its journal
// and finishes with bit-identical metrics, executing each point EXACTLY
// once across both runs (the journal prevents committed-point
// re-execution, proven by per-point execution counters) — and a third,
// fully-resumed run executes nothing at all (double-resume idempotence).
func TestShardedResumeAfterInterrupt(t *testing.T) {
	points := campaignPoints(t, false)
	want, err := sim.RunCampaign(points, sim.CampaignOpts{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	const interruptAfter = 2

	// Run 1: cancel the campaign right after the k-th point commits.
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	run1 := newIndexCountingRunner()
	c1 := New(Config{
		Shards:     2,
		Parallel:   1, // sequential dispatch: the interrupt point is exact
		Transport:  &cancelAfterTransport{inner: Local{Runner: run1}, after: interruptAfter, cancel: cancel},
		JournalDir: dir,
		Backoff:    time.Millisecond,
	})
	_, err1 := c1.Run(ctx, points, sim.CampaignOpts{Workers: 2})
	if !errors.Is(err1, context.Canceled) {
		t.Fatalf("interrupted run returned %v, want context.Canceled", err1)
	}
	if got := run1.total(); got != interruptAfter {
		t.Fatalf("run 1 executed %d points, want exactly %d", got, interruptAfter)
	}

	// Run 2: a fresh coordinator (simulating a process restart) resumes.
	o2 := obs.New(obs.Config{})
	run2 := newIndexCountingRunner()
	c2 := New(Config{
		Shards:     2,
		Transport:  Local{Runner: run2},
		JournalDir: dir,
		Backoff:    time.Millisecond,
		Obs:        o2,
	})
	got, err2 := c2.Run(context.Background(), points, sim.CampaignOpts{Workers: 2})
	if err2 != nil {
		t.Fatal(err2)
	}
	metricsEqualJSON(t, want, got)
	if n := o2.Counter("shard.points.restored").Value(); n != interruptAfter {
		t.Errorf("run 2 restored %d points from the journal, want %d", n, interruptAfter)
	}
	if gotN := run2.total(); gotN != len(points)-interruptAfter {
		t.Errorf("run 2 executed %d points, want %d", gotN, len(points)-interruptAfter)
	}
	// The heart of the criterion: no point executed twice across runs.
	seen := map[string]int{}
	for h, n := range run1.counts {
		seen[h] += n
	}
	for h, n := range run2.counts {
		seen[h] += n
	}
	for h, n := range seen {
		if n != 1 {
			t.Errorf("point %s executed %d times across interrupt+resume, want 1", h, n)
		}
	}

	// Run 3: double resume — everything restored, nothing executed.
	run3 := newIndexCountingRunner()
	c3 := New(Config{Shards: 4, Transport: Local{Runner: run3}, JournalDir: dir})
	again, err3 := c3.Run(context.Background(), points, sim.CampaignOpts{Workers: 2})
	if err3 != nil {
		t.Fatal(err3)
	}
	metricsEqualJSON(t, want, again)
	if n := run3.total(); n != 0 {
		t.Errorf("double resume executed %d points, want 0", n)
	}
}

// cancelAfterTransport cancels the campaign context immediately after the
// n-th successful delivery — a deterministic SIGINT.
type cancelAfterTransport struct {
	inner  Transport
	after  int
	cancel context.CancelFunc

	mu        sync.Mutex
	delivered int
}

func (ct *cancelAfterTransport) Execute(ctx context.Context, a Assignment, sink Sink) error {
	return ct.inner.Execute(ctx, a, &cancelAfterSink{Sink: sink, ct: ct})
}

type cancelAfterSink struct {
	Sink
	ct *cancelAfterTransport
}

func (s *cancelAfterSink) Deliver(r PointResult) error {
	err := s.Sink.Deliver(r)
	s.ct.mu.Lock()
	s.ct.delivered++
	hit := s.ct.delivered == s.ct.after
	s.ct.mu.Unlock()
	if hit {
		s.ct.cancel()
	}
	return err
}

// TestPartitionDeterministic: the range cut is stable (resume
// re-partitions identically) and covers every index exactly once.
func TestPartitionDeterministic(t *testing.T) {
	pending := []int{0, 1, 2, 4, 7, 8, 9}
	for _, shards := range []int{1, 2, 3, 7, 12} {
		a := partition(pending, shards)
		b := partition(pending, shards)
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("partition(%d) unstable", shards)
		}
		var flat []int
		for _, r := range a {
			if len(r) == 0 {
				t.Errorf("partition(%d) produced an empty range", shards)
			}
			flat = append(flat, r...)
		}
		if !reflect.DeepEqual(flat, pending) {
			t.Errorf("partition(%d) = %v, does not cover %v in order", shards, a, pending)
		}
	}
}

// TestCoordinatorIsRunner pins the seam: the coordinator must keep
// satisfying core.Runner so cbmad can slot it in for CampaignRunner.
func TestCoordinatorIsRunner(t *testing.T) {
	var _ core.Runner = New(Config{})
}
