package shard

import (
	"context"

	"cbma/internal/fault"
)

// FaultyTransport is the coordinator's chaos harness: it wraps a real
// Transport and injects worker-level execution faults on the
// deterministic per-(shard, attempt) schedule a fault.WorkerInjector
// derives — mirroring how the engine's fault layer wraps the simulation.
// Injected faults are NEVER wrong results: a crash delivers a correct
// prefix then dies, a stall delivers nothing until the heartbeat monitor
// cancels it, and a corruption mangles a reply's point index so the
// coordinator's validation catches it. Degraded-but-correct completion is
// therefore testable: the final Metrics must be bit-identical to a
// fault-free run.
type FaultyTransport struct {
	Inner    Transport
	Injector *fault.WorkerInjector
}

// Execute implements Transport.
func (t *FaultyTransport) Execute(ctx context.Context, a Assignment, sink Sink) error {
	f := t.Injector.Plan(a.Shard, a.Attempt)
	switch {
	case f.Stall:
		// Silence until the coordinator gives up on us.
		<-ctx.Done()
		return ctx.Err()
	case f.Crash:
		cs := &crashSink{Sink: sink, budget: int(f.CrashFrac * float64(len(a.Indices)))}
		err := t.Inner.Execute(ctx, a, cs)
		if cs.tripped {
			return fault.ErrWorkerCrash
		}
		return err
	case f.Corrupt:
		return t.Inner.Execute(ctx, a, &corruptSink{Sink: sink})
	default:
		return t.Inner.Execute(ctx, a, sink)
	}
}

// crashSink forwards the first budget deliveries, then reports the
// injected death. The inner transport sees the delivery error and aborts
// — exactly like a worker process dying between two results.
type crashSink struct {
	Sink
	budget  int
	seen    int
	tripped bool
}

func (s *crashSink) Deliver(r PointResult) error {
	if s.seen >= s.budget {
		s.tripped = true
		return fault.ErrWorkerCrash
	}
	s.seen++
	return s.Sink.Deliver(r)
}

// corruptSink mangles the first delivery's point index into one outside
// any possible assignment. The coordinator's validation must refuse it
// (ErrCorruptReply) — the fault is detectable, like a checksum failure,
// never a silently wrong result.
type corruptSink struct {
	Sink
	fired bool
}

func (s *corruptSink) Deliver(r PointResult) error {
	if !s.fired {
		s.fired = true
		r.Index = -1 - r.Index
	}
	return s.Sink.Deliver(r)
}
