package shard

import (
	"bufio"
	"bytes"
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"os/exec"

	"cbma/internal/obs"
	"cbma/internal/sim"
)

// The subprocess wire protocol. One request travels to the worker's stdin
// as a single JSON document; the worker streams newline-delimited JSON
// messages back on stdout:
//
//	{"type":"beat"}                        liveness (heartbeat interval)
//	{"type":"result","sum":h,"payload":p}  one completed point; sum is the
//	                                       hex SHA-256 of the exact payload
//	                                       bytes (a PointResult)
//	{"type":"event","payload":e}           one relayed telemetry event (an
//	                                       obs.Event; sent only when the
//	                                       request set relay_events)
//	{"type":"done","results":n,            clean end of stream; snapshot is
//	       "snapshot":s}                   the worker's registry (only when
//	                                       the request set want_snapshot)
//	{"type":"error","error":msg}           worker-side fatal error
//
// Results are checksummed individually so a reply torn by a mid-write
// kill -9 is detected at the message boundary: everything before it is
// committed, the attempt fails, and only the remainder redispatches.
// Telemetry is best-effort by design: a malformed event payload is
// dropped, never fatal, and a crashed worker loses only its registry
// snapshot (its events were streamed live). Unknown message types are
// ignored for forward compatibility.

// wireVersion is the protocol version; a worker refuses any other.
const wireVersion = 1

// ErrNotWireable marks an assignment whose scenarios do not survive the
// JSON round trip with their content hash intact — e.g. interferer
// implementations, which are not representable over JSON today. Such
// campaigns must run on the in-process transport.
var ErrNotWireable = errors.New("shard: scenario does not survive the wire (run in-process)")

// wireRequest is the worker's stdin document.
type wireRequest struct {
	Version      int            `json:"version"`
	Shard        int            `json:"shard"`
	Attempt      int            `json:"attempt"`
	What         string         `json:"what,omitempty"`
	Workers      int            `json:"workers,omitempty"`
	HeartbeatMS  int            `json:"heartbeat_ms,omitempty"`
	TraceID      string         `json:"trace_id,omitempty"`
	RelayEvents  bool           `json:"relay_events,omitempty"`
	WantSnapshot bool           `json:"want_snapshot,omitempty"`
	Indices      []int          `json:"indices"`
	Hashes       []string       `json:"hashes"`
	Points       []sim.Scenario `json:"points"`
}

// wireMsg is one stdout line.
type wireMsg struct {
	Type     string          `json:"type"`
	Sum      string          `json:"sum,omitempty"`
	Payload  json.RawMessage `json:"payload,omitempty"`
	Results  int             `json:"results,omitempty"`
	Snapshot *obs.Snapshot   `json:"snapshot,omitempty"`
	Error    string          `json:"error,omitempty"`
}

// SubprocessConfig assembles a Subprocess transport.
type SubprocessConfig struct {
	// Argv is the worker command line. Empty means re-exec this binary
	// with -shard-worker appended — both CLIs implement that mode.
	Argv []string
	// Env entries are appended to the inherited environment (used by the
	// chaos harness to plant deterministic worker deaths).
	Env []string
	// Stderr receives worker stderr; nil means this process's stderr.
	Stderr io.Writer
}

// Subprocess executes assignments in a worker process: request on stdin,
// streamed JSONL results on stdout. A worker that dies mid-range (kill
// -9, crash, OOM) costs only its undelivered points — every delivered,
// checksum-verified result is already committed coordinator-side.
type Subprocess struct {
	cfg SubprocessConfig
}

// NewSubprocess builds the transport, resolving the default worker argv.
func NewSubprocess(cfg SubprocessConfig) (*Subprocess, error) {
	if len(cfg.Argv) == 0 {
		exe, err := os.Executable()
		if err != nil {
			return nil, fmt.Errorf("shard: resolving worker binary: %w", err)
		}
		cfg.Argv = []string{exe, "-shard-worker"}
	}
	if cfg.Stderr == nil {
		cfg.Stderr = os.Stderr
	}
	return &Subprocess{cfg: cfg}, nil
}

// Execute implements Transport.
func (s *Subprocess) Execute(ctx context.Context, a Assignment, sink Sink) error {
	req := wireRequest{
		Version: wireVersion, Shard: a.Shard, Attempt: a.Attempt,
		What: a.What, Workers: a.Workers, HeartbeatMS: a.HeartbeatMS,
		TraceID: a.TraceID, RelayEvents: a.RelayEvents, WantSnapshot: a.WantSnapshot,
		Indices: a.Indices, Hashes: a.Hashes, Points: a.Points,
	}
	body, err := json.Marshal(req)
	if err != nil {
		return fmt.Errorf("%w: %v", ErrNotWireable, err)
	}
	// Pre-flight wire-fidelity check: the scenarios must decode back to
	// the same content hash, or the worker would run (or refuse) the
	// wrong computation. Catching it here turns a latent wrong-result
	// hazard into an immediate, typed error.
	var echo wireRequest
	if err := json.Unmarshal(body, &echo); err != nil {
		return fmt.Errorf("%w: %v", ErrNotWireable, err)
	}
	for j := range echo.Points {
		echo.Points[j].Obs = nil
		echo.Points[j].Workers = 0
		h, err := echo.Points[j].Hash()
		if err != nil || h != a.Hashes[j] {
			return fmt.Errorf("%w: point %d hash mismatch after round trip", ErrNotWireable, a.Indices[j])
		}
	}

	cmd := exec.CommandContext(ctx, s.cfg.Argv[0], s.cfg.Argv[1:]...)
	cmd.Env = append(os.Environ(), s.cfg.Env...)
	cmd.Stdin = bytes.NewReader(body)
	cmd.Stderr = s.cfg.Stderr
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		return err
	}
	if err := cmd.Start(); err != nil {
		return fmt.Errorf("shard: starting worker: %w", err)
	}
	done, streamErr := readStream(stdout, sink)
	if streamErr != nil {
		// Stop a worker we will no longer listen to before reaping it.
		_ = cmd.Process.Kill()
	}
	waitErr := cmd.Wait()
	if streamErr != nil {
		return streamErr
	}
	if err := ctx.Err(); err != nil {
		return err
	}
	if waitErr != nil {
		return fmt.Errorf("shard: worker exited: %w", waitErr)
	}
	if !done {
		return fmt.Errorf("shard: worker stream ended without done marker")
	}
	return nil
}

// readStream consumes the worker's stdout until EOF, a protocol error, or
// a rejected delivery. It reports whether the clean done marker arrived.
func readStream(r io.Reader, sink Sink) (done bool, err error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 8<<20)
	for sc.Scan() {
		line := sc.Bytes()
		if len(bytes.TrimSpace(line)) == 0 {
			continue
		}
		var msg wireMsg
		if err := json.Unmarshal(line, &msg); err != nil {
			return done, fmt.Errorf("%w: undecodable message: %v", ErrCorruptReply, err)
		}
		switch msg.Type {
		case "beat":
			sink.Beat()
		case "result":
			sum := sha256.Sum256(msg.Payload)
			if hex.EncodeToString(sum[:]) != msg.Sum {
				return done, fmt.Errorf("%w: payload checksum mismatch", ErrCorruptReply)
			}
			var pr PointResult
			if err := json.Unmarshal(msg.Payload, &pr); err != nil {
				return done, fmt.Errorf("%w: undecodable payload: %v", ErrCorruptReply, err)
			}
			if err := sink.Deliver(pr); err != nil {
				return done, err
			}
		case "event":
			// Relayed worker telemetry: best-effort, so a malformed payload
			// is dropped rather than failing the attempt.
			var ev obs.Event
			if err := json.Unmarshal(msg.Payload, &ev); err == nil {
				sink.Event(ev)
			}
		case "done":
			done = true
			if msg.Snapshot != nil {
				sink.Telemetry(*msg.Snapshot)
			}
		case "error":
			return done, fmt.Errorf("shard: worker error: %s", msg.Error)
		}
	}
	if serr := sc.Err(); serr != nil {
		return done, fmt.Errorf("shard: reading worker stream: %w", serr)
	}
	return done, nil
}
