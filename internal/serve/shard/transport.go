// Package shard is the distributed campaign executor: a coordinator that
// deterministically partitions a campaign's points into contiguous ranges,
// dispatches them to workers behind a Transport seam, and merges the
// streamed per-point results into a slice bit-identical to single-process
// sim.RunCampaign. Determinism makes that merge trivial — each point's
// Metrics depend only on its scenario (per-point DeriveSeed, worker-count
// invariant rounds, telemetry off the result path) — so the coordinator's
// whole job is fault tolerance: heartbeat timeouts, capped-exponential
// retries, reassignment of orphaned ranges, and a journal of committed
// results so an interrupted campaign resumes with zero re-execution.
// See DESIGN.md, "Distributed execution & resume".
package shard

import (
	"context"
	"errors"

	"cbma/internal/obs"
	"cbma/internal/serve/core"
	"cbma/internal/sim"
)

// Assignment is one dispatch attempt: a range of campaign points for a
// worker to execute. Indices are campaign point indices (ascending);
// Points and Hashes are indexed like Indices. A retried range carries only
// its still-uncommitted points, which is what guarantees a committed point
// never re-executes.
type Assignment struct {
	// Shard is the range's stable identity within the campaign (fault
	// schedules and telemetry key off it); Attempt counts dispatches of
	// this range, from zero.
	Shard   int
	Attempt int
	// Indices are the campaign point indices in this attempt.
	Indices []int
	// Points are the scenarios, indexed like Indices. Obs and Workers are
	// stripped: telemetry stays coordinator-side and the engine budget
	// travels in Workers below.
	Points []sim.Scenario
	// Hashes are the points' Scenario.Hash() identities, indexed like
	// Indices; workers re-derive and verify them (wire-fidelity check).
	Hashes []string
	// What labels the campaign in errors and events.
	What string
	// Workers is the engine worker budget for the executing worker.
	Workers int
	// HeartbeatMS asks the worker to emit liveness beats this often; zero
	// means the transport's default.
	HeartbeatMS int
	// TraceID is the campaign's trace identifier; it rides the wire so
	// worker-side telemetry can reference the campaign that dispatched it.
	TraceID string
	// RelayEvents asks the worker to stream its telemetry events (round
	// lifecycle, faults, per-point timings) back for the coordinator to
	// merge into the campaign's event stream.
	RelayEvents bool
	// WantSnapshot asks the worker to ship its registry snapshot with the
	// done marker so the coordinator can build the per-shard breakdown.
	WantSnapshot bool
}

// PointResult is one completed point streamed back from a worker. Err, when
// non-empty, is a point-level failure (engine config error or point panic)
// — the point is resolved, not retried, mirroring sim.PointError semantics.
type PointResult struct {
	Index   int         `json:"index"`
	Metrics sim.Metrics `json:"metrics"`
	Err     string      `json:"error,omitempty"`
	// ElapsedNs is the worker-side execution time of this point — telemetry
	// riding along with the result, never entering the journal or Metrics.
	ElapsedNs int64 `json:"elapsed_ns,omitempty"`
}

// Sink receives a shard attempt's streamed output on the coordinator side.
// Beat and Deliver are only ever called from the goroutine running
// Transport.Execute; Event and Telemetry may additionally arrive from a
// transport-owned relay goroutine, so implementations must allow them to
// run concurrently with Beat/Deliver.
type Sink interface {
	// Beat signals liveness without delivering a result; Deliver implies
	// a beat.
	Beat()
	// Deliver hands one completed point to the coordinator. A non-nil
	// error (e.g. ErrCorruptReply for an out-of-assignment index) tells
	// the transport to abandon the attempt and return it.
	Deliver(PointResult) error
	// Event hands over one worker telemetry event (sent only when the
	// assignment set RelayEvents). Best-effort: events never affect
	// results and a lost event is not an error.
	Event(ev obs.Event)
	// Telemetry hands over the worker's registry snapshot (sent with the
	// done marker when the assignment set WantSnapshot).
	Telemetry(snap obs.Snapshot)
}

// Transport executes one assignment, streaming results into the sink.
// Execute returns nil only if every assigned point was delivered; the
// coordinator treats any error — or a short reply — as a failed attempt
// and redispatches the range's uncommitted remainder. Implementations
// must stop promptly when ctx is cancelled (the heartbeat monitor cancels
// it on a stall).
type Transport interface {
	Execute(ctx context.Context, a Assignment, sink Sink) error
}

// ErrShortReply marks an attempt whose transport returned success without
// delivering every assigned point — a protocol violation treated like a
// worker failure.
var ErrShortReply = errors.New("shard: worker reply missing assigned points")

// Local is the in-process Transport: points run through a core.Runner one
// at a time, delivering each as it completes. It is the coordinator's
// default, the reference implementation the subprocess transport is tested
// against, and the seam chaos tests wrap.
type Local struct {
	// Runner executes single-point campaigns; nil means the production
	// engine (core.CampaignRunner).
	Runner core.Runner
	// Clock times worker-side telemetry (point durations, event stamps)
	// when the assignment requests it. Nil is fine — spans read as zero —
	// so tests stay deterministic; binaries are expected to run sharded
	// campaigns over Subprocess, which always uses the system clock.
	Clock obs.Clock
}

// Execute implements Transport.
func (l Local) Execute(ctx context.Context, a Assignment, sink Sink) error {
	runner := l.Runner
	if runner == nil {
		runner = core.CampaignRunner{}
	}
	// The "worker side" of the in-process transport mirrors a subprocess
	// worker: its own observer whose events relay straight into the sink
	// and whose registry ships as the attempt's snapshot.
	var (
		wo    *obs.Observer
		relay *obs.Sink
	)
	if a.RelayEvents || a.WantSnapshot {
		if a.RelayEvents {
			relay = obs.NewRelaySink(sink.Event, 0)
		}
		wo = obs.New(obs.Config{Clock: l.Clock, Sink: relay})
	}
	// Drain the relay on every return so no relayed event outlives the
	// attempt and the relay goroutine is always joined.
	defer func() { _ = relay.Close() }()
	for j := range a.Points {
		if err := ctx.Err(); err != nil {
			return err
		}
		res, err := runPoint(ctx, runner, a.Points[j], a.What, a.Workers, wo)
		if err != nil {
			return err
		}
		res.Index = a.Indices[j]
		if err := sink.Deliver(res); err != nil {
			return err
		}
	}
	if a.WantSnapshot {
		sink.Telemetry(wo.Registry().Snapshot())
	}
	return nil
}

// runPoint executes one point as a single-point campaign, folding the
// campaign-level error shapes into the wire result: a point-level failure
// becomes PointResult.Err (resolved, not retried), cancellation propagates
// as an error (partial Interrupted metrics must never be committed). The
// observer, when non-nil, instruments the engine and times the point
// (shard.point_ns) — telemetry only; Metrics are bit-identical either way.
func runPoint(ctx context.Context, runner core.Runner, scn sim.Scenario, what string, workers int, o *obs.Observer) (PointResult, error) {
	sp := o.Start(o.Histogram("shard.point_ns"))
	ms, err := runner.Run(ctx, []sim.Scenario{scn}, sim.CampaignOpts{Workers: workers, What: what, Obs: o})
	ns := sp.End()
	if cerr := ctx.Err(); cerr != nil {
		return PointResult{}, cerr
	}
	if err != nil {
		var ce *sim.CampaignError
		if errors.As(err, &ce) {
			return PointResult{Err: ce.Points[0].Err.Error(), ElapsedNs: ns}, nil
		}
		return PointResult{}, err
	}
	if len(ms) != 1 {
		return PointResult{}, ErrShortReply
	}
	if ms[0].Interrupted {
		// Belt and braces: an Interrupted result without a ctx error would
		// poison the journal with a partial computation.
		return PointResult{}, context.Canceled
	}
	return PointResult{Metrics: ms[0], ElapsedNs: ns}, nil
}
