package shard

import (
	"context"
	"errors"
	"os"
	"path/filepath"
	"testing"
	"time"

	"cbma/internal/sim"
)

func journalHashes(t *testing.T, points []sim.Scenario) []string {
	t.Helper()
	hashes := make([]string, len(points))
	for i := range points {
		h, err := points[i].Hash()
		if err != nil {
			t.Fatal(err)
		}
		hashes[i] = h
	}
	return hashes
}

// TestJournalRoundTrip: commit, reopen, read back — the committed set
// survives a coordinator restart byte-identically.
func TestJournalRoundTrip(t *testing.T) {
	points := campaignPoints(t, false)
	hashes := journalHashes(t, points)
	dir := t.TempDir()

	j, err := OpenJournal(dir, "rt", hashes, nil)
	if err != nil {
		t.Fatal(err)
	}
	m := sim.Metrics{FramesSent: 7, FramesDelivered: 5, FER: 0.25}
	j.Commit(2, hashes[2], points[2].Seed, m)

	j2, err := OpenJournal(dir, "rt", hashes, nil)
	if err != nil {
		t.Fatal(err)
	}
	got, ok := j2.Committed(2, hashes[2], points[2].Seed)
	if !ok {
		t.Fatal("committed point lost across reopen")
	}
	metricsEqualJSON(t, []sim.Metrics{m}, []sim.Metrics{got})
	if _, ok := j2.Committed(1, hashes[1], points[1].Seed); ok {
		t.Fatal("uncommitted point reported as committed")
	}
	// The same scenario hash under a different campaign index is a
	// different journal slot: index is part of the address.
	if _, ok := j2.Committed(3, hashes[2], points[2].Seed); ok {
		t.Fatal("index not part of the journal address")
	}
}

// TestJournalMismatchRefused (satellite: resume semantics): a journal
// directory holding a different campaign — different points, order or
// count — is refused with the typed ErrJournalMismatch, both at the
// journal layer and through the coordinator.
func TestJournalMismatchRefused(t *testing.T) {
	points := campaignPoints(t, false)
	hashes := journalHashes(t, points)
	dir := t.TempDir()
	if _, err := OpenJournal(dir, "a", hashes, nil); err != nil {
		t.Fatal(err)
	}

	other := campaignPoints(t, false)
	other[0].Seed++
	otherHashes := journalHashes(t, other)
	if _, err := OpenJournal(dir, "a", otherHashes, nil); !errors.Is(err, ErrJournalMismatch) {
		t.Fatalf("different campaign: err = %v, want ErrJournalMismatch", err)
	}
	// Reordering the same points is also a different campaign: results
	// are stored by campaign index.
	reordered := append([]string(nil), hashes...)
	reordered[0], reordered[1] = reordered[1], reordered[0]
	if _, err := OpenJournal(dir, "a", reordered, nil); !errors.Is(err, ErrJournalMismatch) {
		t.Fatalf("reordered campaign: err = %v, want ErrJournalMismatch", err)
	}
	// And through the coordinator, so CLI -resume with a stale directory
	// fails loudly instead of serving the wrong campaign's results.
	c := New(Config{JournalDir: dir})
	if _, err := c.Run(context.Background(), other, sim.CampaignOpts{}); !errors.Is(err, ErrJournalMismatch) {
		t.Fatalf("coordinator resume: err = %v, want ErrJournalMismatch", err)
	}
}

// TestJournalTornWriteRecovers (satellite: resume semantics): a torn
// final write — an entry truncated mid-byte by a crash, plus a stranded
// temp file — reads as a miss on resume, so exactly that point
// re-executes; nothing is lost and nothing wrong is served.
func TestJournalTornWriteRecovers(t *testing.T) {
	points := campaignPoints(t, false)
	want, err := sim.RunCampaign(points, sim.CampaignOpts{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()

	run1 := newIndexCountingRunner()
	c1 := New(Config{Shards: 2, Transport: Local{Runner: run1}, JournalDir: dir, Backoff: time.Millisecond})
	if _, err := c1.Run(context.Background(), points, sim.CampaignOpts{Workers: 2}); err != nil {
		t.Fatal(err)
	}

	// Tear one committed entry the way a crash mid-write would have (the
	// rename is atomic, so a REAL torn write can only be a stranded temp
	// file — but belt and braces, damage the final file too).
	entries, err := filepath.Glob(filepath.Join(dir, "points", "*.json"))
	if err != nil || len(entries) != len(points) {
		t.Fatalf("journal holds %d entries (err %v), want %d", len(entries), err, len(points))
	}
	b, err := os.ReadFile(entries[0])
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(entries[0], b[:len(b)/2], 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "points", "put-stranded.tmp"), []byte("partial"), 0o644); err != nil {
		t.Fatal(err)
	}

	run2 := newIndexCountingRunner()
	c2 := New(Config{Shards: 2, Transport: Local{Runner: run2}, JournalDir: dir, Backoff: time.Millisecond})
	got, err := c2.Run(context.Background(), points, sim.CampaignOpts{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	metricsEqualJSON(t, want, got)
	if n := run2.total(); n != 1 {
		t.Errorf("resume after torn write executed %d points, want exactly 1 (the damaged entry)", n)
	}
}

// TestJournalRootDerivesPerCampaignDir: with JournalRoot, two different
// campaigns journal side by side without colliding.
func TestJournalRootDerivesPerCampaignDir(t *testing.T) {
	root := t.TempDir()
	a := campaignPoints(t, false)[:2]
	b := campaignPoints(t, false)[2:4]

	ca := New(Config{JournalRoot: root, Backoff: time.Millisecond})
	if _, err := ca.Run(context.Background(), a, sim.CampaignOpts{Workers: 2}); err != nil {
		t.Fatal(err)
	}
	cb := New(Config{JournalRoot: root, Backoff: time.Millisecond})
	if _, err := cb.Run(context.Background(), b, sim.CampaignOpts{Workers: 2}); err != nil {
		t.Fatal(err)
	}
	dirs, err := os.ReadDir(root)
	if err != nil {
		t.Fatal(err)
	}
	if len(dirs) != 2 {
		t.Fatalf("journal root holds %d campaign dirs, want 2", len(dirs))
	}
	// Resuming campaign a under the same root restores everything.
	run := newIndexCountingRunner()
	ca2 := New(Config{JournalRoot: root, Transport: Local{Runner: run}})
	if _, err := ca2.Run(context.Background(), a, sim.CampaignOpts{Workers: 2}); err != nil {
		t.Fatal(err)
	}
	if n := run.total(); n != 0 {
		t.Errorf("resume under JournalRoot executed %d points, want 0", n)
	}
}
