package shard

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strconv"

	"cbma/internal/obs"
	"cbma/internal/serve/core"
	"cbma/internal/sim"
)

// The journal is the coordinator's checkpoint: every committed point
// result is written to disk as it completes, so a campaign interrupted by
// SIGINT, a worker kill -9 or a coordinator restart resumes from the
// committed set with zero re-execution. It reuses the serve/core content-
// addressed DiskStore for the per-point entries — the same checksummed,
// temp-file-then-rename format as the result cache, so a torn final write
// surfaces as a checksum miss on resume and costs exactly one point's
// recomputation, never a wrong result.
//
// Layout under the journal directory:
//
//	journal.json   campaign identity: schema, campaign hash, point count
//	points/        one DiskStore entry per committed point, keyed by
//	               (Scenario.Hash(), seed, "p<index>")
//
// The campaign hash binds the journal to the exact ordered point set; a
// journal left over from a different campaign is refused with
// ErrJournalMismatch rather than silently serving wrong results.

// journalSchema versions the meta file format.
const journalSchema = "cbma/shard-journal/v1"

// ErrJournalMismatch is returned (wrapped, with detail) when an existing
// journal directory belongs to a different campaign — different points,
// order, or count. Detect it with errors.Is.
var ErrJournalMismatch = errors.New("shard: journal belongs to a different campaign")

// journalMeta is the journal.json body.
type journalMeta struct {
	Schema       string `json:"schema"`
	CampaignHash string `json:"campaign_hash"`
	Points       int    `json:"points"`
	What         string `json:"what,omitempty"`
}

// CampaignHash derives the campaign's identity from its ordered per-point
// scenario hashes: SHA-256 over the schema tag and the hash list. Point
// order matters — the journal stores results by campaign index, so a
// reordered campaign is a different campaign.
func CampaignHash(hashes []string) string {
	h := sha256.New()
	h.Write([]byte(journalSchema))
	for _, ph := range hashes {
		h.Write([]byte{'\n'})
		h.Write([]byte(ph))
	}
	return hex.EncodeToString(h.Sum(nil))
}

// Journal persists committed point results for one campaign.
type Journal struct {
	dir   string
	store core.Store
}

// OpenJournal opens (creating if needed) the journal at dir for the
// campaign identified by the ordered point hashes. An existing journal for
// a different campaign returns ErrJournalMismatch; a fresh directory is
// initialized with the campaign's identity (written atomically, so a crash
// mid-open leaves either no journal or a complete one).
func OpenJournal(dir, what string, hashes []string, o *obs.Observer) (*Journal, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	want := journalMeta{Schema: journalSchema, CampaignHash: CampaignHash(hashes), Points: len(hashes), What: what}
	metaPath := filepath.Join(dir, "journal.json")
	if b, err := os.ReadFile(metaPath); err == nil {
		var got journalMeta
		if err := json.Unmarshal(b, &got); err != nil {
			return nil, fmt.Errorf("shard: journal %s: unreadable meta: %v", dir, err)
		}
		if got.Schema != want.Schema || got.CampaignHash != want.CampaignHash || got.Points != want.Points {
			return nil, fmt.Errorf("%w: %s holds %q (%d points), campaign is %q (%d points)",
				ErrJournalMismatch, dir, got.CampaignHash, got.Points, want.CampaignHash, want.Points)
		}
	} else {
		b, err := json.MarshalIndent(want, "", "  ")
		if err != nil {
			return nil, err
		}
		tmp, err := os.CreateTemp(dir, "meta-*.tmp")
		if err != nil {
			return nil, err
		}
		_, werr := tmp.Write(append(b, '\n'))
		cerr := tmp.Close()
		if werr == nil {
			werr = cerr
		}
		if werr == nil {
			werr = os.Rename(tmp.Name(), metaPath)
		}
		if werr != nil {
			_ = os.Remove(tmp.Name())
			return nil, werr
		}
	}
	store, err := core.NewDiskStore(filepath.Join(dir, "points"), o)
	if err != nil {
		return nil, err
	}
	return &Journal{dir: dir, store: store}, nil
}

// Dir returns the journal directory.
func (j *Journal) Dir() string { return j.dir }

// pointKey addresses one committed point: content hash plus campaign index
// (the index disambiguates a campaign that legitimately repeats a point).
func pointKey(idx int, hash string, seed int64) core.Key {
	return core.Key{ScenarioHash: hash, Seed: seed, Options: "p" + strconv.Itoa(idx)}
}

// Committed returns the journaled result for point idx, if one exists.
// DiskStore's checksum and key-match verification make this safe against
// torn writes and renamed files: damage reads as a miss (the point simply
// re-executes), never as a wrong result.
func (j *Journal) Committed(idx int, hash string, seed int64) (sim.Metrics, bool) {
	e, ok := j.store.Get(pointKey(idx, hash, seed))
	if !ok {
		return sim.Metrics{}, false
	}
	return e.Metrics, true
}

// Commit journals one completed point. Write failures degrade resume (the
// point would re-execute) but never the running campaign — DiskStore
// counts them and moves on, matching the cache's "store is an
// optimization, never an authority" contract.
func (j *Journal) Commit(idx int, hash string, seed int64, m sim.Metrics) {
	k := pointKey(idx, hash, seed)
	j.store.Put(k, core.Entry{Key: k, Metrics: m})
}
