package shard

import (
	"os"
	"testing"

	"cbma/internal/leaktest"
)

// TestMain fails the package run if any test leaves a goroutine behind —
// the coordinator's dispatch workers and heartbeat monitors must all be
// joined on every exit path. It also hosts the subprocess tests' worker
// mode: when re-exec'd with the worker env var set, the test binary acts
// as a shard worker instead of running tests.
func TestMain(m *testing.M) {
	if os.Getenv(workerModeEnv) == "1" {
		os.Exit(workerMain())
	}
	leaktest.Main(m)
}
