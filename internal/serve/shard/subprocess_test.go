package shard

import (
	"bytes"
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"strings"
	"testing"
	"time"

	"cbma/internal/obs"
	"cbma/internal/sim"
)

// workerModeEnv flips the re-exec'd test binary into shard-worker mode
// (see TestMain in leak_test.go) — the same pattern the real CLIs use
// with their -shard-worker flag.
const workerModeEnv = "CBMA_SHARD_WORKER_TEST"

// workerMain is the worker mode's entry point.
func workerMain() int {
	if err := ServeWorker(context.Background(), os.Stdin, os.Stdout, nil); err != nil {
		fmt.Fprintln(os.Stderr, "shard worker:", err)
		return 1
	}
	return 0
}

// testSubprocess builds a transport that re-execs this test binary as the
// worker, with optional extra environment (chaos knobs).
func testSubprocess(t *testing.T, env ...string) *Subprocess {
	t.Helper()
	tr, err := NewSubprocess(SubprocessConfig{
		Argv: []string{os.Args[0]},
		Env:  append([]string{workerModeEnv + "=1"}, env...),
	})
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

// TestSubprocessShardedEquivalence: the full wire path — coordinator →
// exec'd worker process → JSONL results back — produces metrics
// bit-identical (serialized form) to single-process sim.RunCampaign,
// including the faulted profile point.
func TestSubprocessShardedEquivalence(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns worker processes")
	}
	points := campaignPoints(t, false)
	want, err := sim.RunCampaign(points, sim.CampaignOpts{Workers: 2, What: "wire"})
	if err != nil {
		t.Fatal(err)
	}
	c := New(Config{Shards: 2, Transport: testSubprocess(t), Backoff: time.Millisecond})
	got, gotErr := c.Run(context.Background(), points, sim.CampaignOpts{Workers: 2, What: "wire"})
	if gotErr != nil {
		t.Fatal(gotErr)
	}
	metricsEqualJSON(t, want, got)
}

// TestSubprocessWorkerKillResume is the kill -9 half of the resume
// contract: every worker process dies abruptly after its first result
// (ExitAfterEnv, no done marker), so finishing the campaign takes one
// dispatch per point — progress-per-attempt keeps it out of quarantine —
// and the journaled result set stays bit-identical to an uninterrupted
// run. A second campaign over the same journal then restores everything
// without spawning a single worker.
func TestSubprocessWorkerKillResume(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns worker processes")
	}
	points := campaignPoints(t, false)
	want, err := sim.RunCampaign(points, sim.CampaignOpts{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	o := obs.New(obs.Config{})
	c := New(Config{
		Shards:      2,
		Transport:   testSubprocess(t, ExitAfterEnv+"=1"),
		JournalDir:  dir,
		Backoff:     time.Millisecond,
		MaxAttempts: 3,
		Obs:         o,
	})
	got, gotErr := c.Run(context.Background(), points, sim.CampaignOpts{Workers: 2})
	if gotErr != nil {
		t.Fatal(gotErr)
	}
	metricsEqualJSON(t, want, got)
	if n := o.Counter("shard.retries").Value(); n < int64(len(points)-2) {
		t.Errorf("retries = %d; with every worker dying after one result, expected at least %d", n, len(points)-2)
	}

	// Resume: everything is journaled; no worker process runs at all
	// (the transport would fail loudly if one did).
	c2 := New(Config{
		Shards:     2,
		Transport:  mustNotRunTransport{t},
		JournalDir: dir,
	})
	again, err2 := c2.Run(context.Background(), points, sim.CampaignOpts{Workers: 2})
	if err2 != nil {
		t.Fatal(err2)
	}
	metricsEqualJSON(t, want, again)
}

type mustNotRunTransport struct{ t *testing.T }

func (m mustNotRunTransport) Execute(ctx context.Context, a Assignment, sink Sink) error {
	m.t.Errorf("transport executed shard %d (%d points) on a fully-journaled campaign", a.Shard, len(a.Indices))
	return errors.New("must not run")
}

// TestSubprocessNotWireable: a scenario that cannot round-trip JSON with
// its hash intact (interferer implementations) is refused before any
// worker spawns, with the typed ErrNotWireable.
func TestSubprocessNotWireable(t *testing.T) {
	scn := sim.DefaultScenario()
	scn.Packets = 4
	h, err := scn.Hash()
	if err != nil {
		t.Fatal(err)
	}
	tr := testSubprocess(t)
	a := Assignment{
		Indices: []int{0},
		Points:  []sim.Scenario{scn},
		Hashes:  []string{h + "tampered"},
	}
	err = tr.Execute(context.Background(), a, discardSink{})
	if !errors.Is(err, ErrNotWireable) {
		t.Fatalf("err = %v, want ErrNotWireable", err)
	}
}

type discardSink struct{}

func (discardSink) Beat()                     {}
func (discardSink) Deliver(PointResult) error { return nil }
func (discardSink) Event(obs.Event)           {}
func (discardSink) Telemetry(obs.Snapshot)    {}

// TestServeWorkerRefusesHashMismatch: the worker re-derives every
// scenario hash and refuses an assignment whose content does not match —
// the wire-fidelity check on the far side.
func TestServeWorkerRefusesHashMismatch(t *testing.T) {
	scn := sim.DefaultScenario()
	scn.Packets = 4
	h, err := scn.Hash()
	if err != nil {
		t.Fatal(err)
	}
	tampered := scn
	tampered.Seed++
	req := wireRequest{
		Version: wireVersion,
		Indices: []int{0},
		Hashes:  []string{h},
		Points:  []sim.Scenario{tampered},
	}
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	err = ServeWorker(context.Background(), bytes.NewReader(body), &out, nil)
	if err == nil || !strings.Contains(err.Error(), "hash mismatch") {
		t.Fatalf("err = %v, want hash mismatch", err)
	}
	if !strings.Contains(out.String(), `"type":"error"`) {
		t.Fatalf("worker did not report the error on the wire: %q", out.String())
	}
}

// TestServeWorkerRoundTrip drives the worker in-process through the wire
// format: results stream back checksummed, in assignment order, ending
// with the done marker.
func TestServeWorkerRoundTrip(t *testing.T) {
	points := campaignPoints(t, false)[:2]
	hashes := journalHashes(t, points)
	req := wireRequest{
		Version: wireVersion,
		Indices: []int{4, 9},
		Hashes:  hashes,
		Points:  points,
		Workers: 2,
	}
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	if err := ServeWorker(context.Background(), bytes.NewReader(body), &out, nil); err != nil {
		t.Fatal(err)
	}
	var results []PointResult
	done := false
	for _, line := range bytes.Split(out.Bytes(), []byte{'\n'}) {
		if len(bytes.TrimSpace(line)) == 0 {
			continue
		}
		var msg wireMsg
		if err := json.Unmarshal(line, &msg); err != nil {
			t.Fatalf("undecodable line %q: %v", line, err)
		}
		switch msg.Type {
		case "result":
			sum := sha256.Sum256(msg.Payload)
			if hex.EncodeToString(sum[:]) != msg.Sum {
				t.Fatal("result checksum mismatch")
			}
			var pr PointResult
			if err := json.Unmarshal(msg.Payload, &pr); err != nil {
				t.Fatal(err)
			}
			results = append(results, pr)
		case "done":
			done = true
			if msg.Results != 2 {
				t.Errorf("done reports %d results, want 2", msg.Results)
			}
		}
	}
	if !done {
		t.Fatal("no done marker")
	}
	if len(results) != 2 || results[0].Index != 4 || results[1].Index != 9 {
		t.Fatalf("results carry wrong indices: %+v", results)
	}
	want, err := sim.RunCampaign(points, sim.CampaignOpts{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	metricsEqualJSON(t, want, []sim.Metrics{results[0].Metrics, results[1].Metrics})
}

// TestServeWorkerRelaysTelemetry drives the worker with trace propagation,
// event relay and snapshot shipping all on: every relayed event line
// decodes and carries the coordinator's trace ID, the done marker carries a
// registry snapshot of the worker's execution, and the results themselves
// stay bit-identical to a telemetry-off reference.
func TestServeWorkerRelaysTelemetry(t *testing.T) {
	points := campaignPoints(t, false)[:2]
	hashes := journalHashes(t, points)
	req := wireRequest{
		Version:      wireVersion,
		Indices:      []int{0, 1},
		Hashes:       hashes,
		Points:       points,
		Workers:      2,
		TraceID:      "feedc0de12345678",
		RelayEvents:  true,
		WantSnapshot: true,
	}
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	if err := ServeWorker(context.Background(), bytes.NewReader(body), &out, nil); err != nil {
		t.Fatal(err)
	}
	var (
		results  []PointResult
		events   []obs.Event
		snapshot *obs.Snapshot
	)
	for _, line := range bytes.Split(out.Bytes(), []byte{'\n'}) {
		if len(bytes.TrimSpace(line)) == 0 {
			continue
		}
		var msg wireMsg
		if err := json.Unmarshal(line, &msg); err != nil {
			t.Fatalf("undecodable line %q: %v", line, err)
		}
		switch msg.Type {
		case "result":
			var pr PointResult
			if err := json.Unmarshal(msg.Payload, &pr); err != nil {
				t.Fatal(err)
			}
			results = append(results, pr)
		case "event":
			var ev obs.Event
			if err := json.Unmarshal(msg.Payload, &ev); err != nil {
				t.Fatalf("undecodable event payload %q: %v", msg.Payload, err)
			}
			events = append(events, ev)
		case "done":
			snapshot = msg.Snapshot
		}
	}
	if len(events) == 0 {
		t.Fatal("worker relayed no events with RelayEvents set")
	}
	for _, ev := range events {
		if got, _ := ev.Fields["trace_id"].(string); got != req.TraceID {
			t.Fatalf("event %q carries trace_id %q, want %q", ev.Type, got, req.TraceID)
		}
	}
	if snapshot == nil {
		t.Fatal("done marker carries no snapshot with WantSnapshot set")
	}
	rounds := int64(0)
	for _, c := range snapshot.Counters {
		if c.Name == "sim.rounds.executed" {
			rounds = c.Value
		}
	}
	if rounds == 0 {
		t.Error("snapshot missing sim.rounds.executed — worker registry not captured")
	}
	pointNs := false
	for _, h := range snapshot.Histograms {
		if h.Name == "campaign.point_ns" && h.Count == int64(len(points)) {
			pointNs = true
		}
	}
	if !pointNs {
		t.Errorf("snapshot missing campaign.point_ns with count %d: %+v", len(points), snapshot.Histograms)
	}
	for i, r := range results {
		if r.ElapsedNs <= 0 {
			t.Errorf("result %d missing elapsed_ns", i)
		}
	}
	want, err := sim.RunCampaign(points, sim.CampaignOpts{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	metricsEqualJSON(t, want, []sim.Metrics{results[0].Metrics, results[1].Metrics})
}

// TestReadStreamRejectsBadChecksum: a result whose payload does not match
// its checksum is a corrupt reply, detected at the message boundary.
func TestReadStreamRejectsBadChecksum(t *testing.T) {
	payload, _ := json.Marshal(PointResult{Index: 0})
	good := sha256.Sum256(payload)
	_ = good
	line, _ := json.Marshal(wireMsg{Type: "result", Sum: "deadbeef", Payload: payload})
	_, err := readStream(bytes.NewReader(append(line, '\n')), discardSink{})
	if !errors.Is(err, ErrCorruptReply) {
		t.Fatalf("err = %v, want ErrCorruptReply", err)
	}
}
