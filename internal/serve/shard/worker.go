package shard

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"strconv"
	"sync"
	"time"

	"cbma/internal/obs"
	"cbma/internal/serve/core"
)

// ExitAfterEnv is the chaos hook for worker-death tests: when set to n,
// the worker process exits abruptly (os.Exit, no done marker — the moral
// equivalent of kill -9) immediately after its n-th result line reaches
// the wire. The coordinator must absorb the death, keep the n committed
// points, and redispatch the rest. Unset or invalid values disable the
// hook; production workers never set it.
const ExitAfterEnv = "CBMA_SHARD_EXIT_AFTER"

// defaultHeartbeatMS paces liveness beats when the request does not.
const defaultHeartbeatMS = 500

// ServeWorker runs the worker side of the subprocess protocol: decode one
// wireRequest from r, verify each scenario's content hash survived the
// wire, execute the points one at a time (streaming each result as it
// completes, with heartbeats in between), and finish with the done
// marker. runner nil means the production engine. The error return is for
// the worker process's exit status; protocol-level failures are also
// reported to the coordinator as an error message when possible.
func ServeWorker(ctx context.Context, r io.Reader, w io.Writer, runner core.Runner) error {
	var req wireRequest
	if err := json.NewDecoder(r).Decode(&req); err != nil {
		return writeFatal(w, fmt.Errorf("decoding request: %w", err))
	}
	if req.Version != wireVersion {
		return writeFatal(w, fmt.Errorf("unsupported wire version %d (want %d)", req.Version, wireVersion))
	}
	if len(req.Points) != len(req.Indices) || len(req.Hashes) != len(req.Indices) {
		return writeFatal(w, fmt.Errorf("malformed assignment: %d points, %d indices, %d hashes",
			len(req.Points), len(req.Indices), len(req.Hashes)))
	}
	// Re-derive every content hash: a scenario mangled in flight (or one
	// that cannot round-trip JSON) must be refused, never silently run as
	// a different computation. The JSON decoder can materialize an empty
	// Observer behind Scenario.Obs; scrub it — telemetry is coordinator-
	// side, and Hash() excludes Obs/Workers anyway.
	for j := range req.Points {
		req.Points[j].Obs = nil
		req.Points[j].Workers = 0
		h, err := req.Points[j].Hash()
		if err != nil {
			return writeFatal(w, fmt.Errorf("point %d: %v", req.Indices[j], err))
		}
		if h != req.Hashes[j] {
			return writeFatal(w, fmt.Errorf("point %d: scenario hash mismatch (got %s, assignment says %s)",
				req.Indices[j], h, req.Hashes[j]))
		}
	}

	exitAfter := -1
	if v := os.Getenv(ExitAfterEnv); v != "" {
		if n, err := strconv.Atoi(v); err == nil && n >= 0 {
			exitAfter = n
		}
	}

	// All output funnels through one writer goroutine so result lines and
	// heartbeat lines never interleave mid-line. The writer also owns the
	// chaos exit hook: dying right after the n-th result hits the wire is
	// what makes worker-death tests deterministic.
	lines := make(chan wireLine, 4)
	werr := make(chan error, 1)
	go func() { // exits when lines closes below
		var err error
		results := 0
		for l := range lines {
			if err == nil {
				_, err = w.Write(l.b)
			}
			if l.result && err == nil {
				results++
				if exitAfter >= 0 && results >= exitAfter {
					os.Exit(3) // chaos hook: simulated kill -9, no done marker
				}
			}
		}
		werr <- err
	}()

	hbInterval := time.Duration(req.HeartbeatMS) * time.Millisecond
	if hbInterval <= 0 {
		hbInterval = defaultHeartbeatMS * time.Millisecond
	}
	hbDone := make(chan struct{})
	var hbWg sync.WaitGroup
	hbWg.Add(1)
	go func() {
		defer hbWg.Done()
		tick := time.NewTicker(hbInterval)
		defer tick.Stop()
		beat, _ := json.Marshal(wireMsg{Type: "beat"})
		beat = append(beat, '\n')
		for {
			select {
			case <-hbDone:
				return
			case <-tick.C:
				select {
				case lines <- wireLine{b: beat}:
				case <-hbDone:
					return
				}
			}
		}
	}()
	// The worker's own telemetry, when the coordinator asked for it: an
	// observer on the system clock whose events (if relaying) encode as
	// wire messages through the same single-writer line channel, so
	// telemetry and results never interleave mid-line. The relay sink never
	// blocks the run — a full ring drops events, same as everywhere else.
	var (
		wo    *obs.Observer
		relay *obs.Sink
	)
	if req.RelayEvents || req.WantSnapshot {
		if req.RelayEvents {
			relay = obs.NewRelaySink(func(ev obs.Event) {
				payload, err := json.Marshal(ev)
				if err != nil {
					return
				}
				line, err := json.Marshal(wireMsg{Type: "event", Payload: payload})
				if err != nil {
					return
				}
				lines <- wireLine{b: append(line, '\n')}
			}, 0)
		}
		wo = obs.New(obs.Config{Clock: obs.SystemClock(), Sink: relay})
		wo.SetTrace(req.TraceID)
	}

	// Orderly shutdown on every path: stop the heartbeat, drain the event
	// relay (it feeds the line channel, so it must close first), then close
	// the line stream and collect the writer's error.
	finish := func() error {
		close(hbDone)
		hbWg.Wait()
		if relay != nil {
			_ = relay.Close()
		}
		close(lines)
		return <-werr
	}

	if runner == nil {
		runner = core.CampaignRunner{}
	}
	sent := 0
	for j := range req.Points {
		if err := ctx.Err(); err != nil {
			_ = finish()
			return err
		}
		res, err := runPoint(ctx, runner, req.Points[j], req.What, req.Workers, wo)
		if err != nil {
			ferr := finish()
			_ = writeFatal(w, err) // the stream is closed; write the error marker directly
			if ferr != nil {
				return ferr
			}
			return err
		}
		res.Index = req.Indices[j]
		payload, err := json.Marshal(res)
		if err != nil {
			_ = finish()
			return writeFatal(w, fmt.Errorf("encoding result: %w", err))
		}
		sum := sha256.Sum256(payload)
		line, err := json.Marshal(wireMsg{Type: "result", Sum: hex.EncodeToString(sum[:]), Payload: payload})
		if err != nil {
			_ = finish()
			return writeFatal(w, fmt.Errorf("encoding message: %w", err))
		}
		lines <- wireLine{b: append(line, '\n'), result: true}
		sent++
	}
	doneMsg := wireMsg{Type: "done", Results: sent}
	if req.WantSnapshot && wo != nil {
		snap := wo.Registry().Snapshot()
		doneMsg.Snapshot = &snap
	}
	doneLine, _ := json.Marshal(doneMsg)
	lines <- wireLine{b: append(doneLine, '\n')}
	return finish()
}

// wireLine is one queued stdout line; result marks lines that count
// toward the chaos exit hook.
type wireLine struct {
	b      []byte
	result bool
}

// writeFatal reports a worker-side fatal error on the protocol stream (so
// the coordinator logs a cause, not just an exit status) and returns it
// for the process's own exit path.
func writeFatal(w io.Writer, err error) error {
	line, merr := json.Marshal(wireMsg{Type: "error", Error: err.Error()})
	if merr == nil {
		_, _ = w.Write(append(line, '\n'))
	}
	return err
}
