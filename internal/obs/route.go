package obs

import (
	"io"
	"sync"
)

// Broadcaster is an io.Writer that routes a JSONL event stream to many
// consumers: everything written is retained (up to HistoryLimit) so a
// late subscriber replays the stream from the start, and live subscribers
// receive subsequent writes as they happen. It is the per-request event
// routing behind the daemon's streaming endpoint: a Sink writes into a
// Broadcaster instead of a file, and each HTTP reader subscribes.
//
// Writes never block on consumers: a subscriber that falls behind its
// channel buffer is dropped (its channel closes early) rather than
// stalling the sink's writer goroutine — the same never-block-the-run
// discipline as Sink.Emit.
type Broadcaster struct {
	mu        sync.Mutex
	history   []byte
	truncated int64
	subDrops  int64
	subs      map[chan []byte]struct{}
	closed    bool
	limit     int
}

// HistoryLimit bounds a Broadcaster's retained bytes (1 MiB). Beyond it,
// new writes still reach live subscribers but are not replayed to late
// ones; Truncated counts what replay lost.
const HistoryLimit = 1 << 20

// subscriberBuffer is each subscriber's pending-chunk capacity.
const subscriberBuffer = 256

// NewBroadcaster returns a broadcaster retaining up to limit history
// bytes (non-positive selects HistoryLimit).
func NewBroadcaster(limit int) *Broadcaster {
	if limit <= 0 {
		limit = HistoryLimit
	}
	return &Broadcaster{subs: make(map[chan []byte]struct{}), limit: limit}
}

// Write implements io.Writer. It always reports full success: event
// delivery is best-effort by design and must never fail the producer.
func (b *Broadcaster) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.closed {
		return len(p), nil
	}
	if len(b.history) < b.limit {
		keep := p
		if room := b.limit - len(b.history); len(keep) > room {
			keep = keep[:room]
			b.truncated += int64(len(p) - room)
		}
		b.history = append(b.history, keep...)
	} else {
		b.truncated += int64(len(p))
	}
	if len(b.subs) > 0 {
		// Subscriber channels escape the lock, so hand each its own copy.
		chunk := make([]byte, len(p))
		copy(chunk, p)
		for ch := range b.subs {
			select {
			case ch <- chunk:
			default:
				// Slow consumer: cut it loose instead of blocking the sink.
				delete(b.subs, ch)
				close(ch)
				b.subDrops++
			}
		}
	}
	return len(p), nil
}

// Subscribe returns the retained history and a channel of subsequent
// chunks. The channel closes when the broadcaster closes or the subscriber
// falls too far behind; the caller must eventually call the returned
// cancel function (idempotent, safe after close).
func (b *Broadcaster) Subscribe() (history []byte, live <-chan []byte, cancel func()) {
	b.mu.Lock()
	defer b.mu.Unlock()
	history = make([]byte, len(b.history))
	copy(history, b.history)
	ch := make(chan []byte, subscriberBuffer)
	if b.closed {
		close(ch)
		return history, ch, func() {}
	}
	b.subs[ch] = struct{}{}
	return history, ch, func() {
		b.mu.Lock()
		defer b.mu.Unlock()
		if _, ok := b.subs[ch]; ok {
			delete(b.subs, ch)
			close(ch)
		}
	}
}

// Close ends the stream: live subscriber channels close after everything
// already written, and the history stays available to later Subscribe
// calls (a finished job's events remain replayable). Implements io.Closer
// so a Sink over a Broadcaster closes it on drain.
func (b *Broadcaster) Close() error {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.closed {
		return nil
	}
	b.closed = true
	for ch := range b.subs {
		close(ch)
	}
	b.subs = nil
	return nil
}

// SubscribersDropped reports how many subscribers were cut loose for
// falling behind — the event-loss ledger the daemon surfaces per job.
func (b *Broadcaster) SubscribersDropped() int64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.subDrops
}

// Truncated reports bytes dropped from replay history by the limit.
func (b *Broadcaster) Truncated() int64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.truncated
}

var _ io.WriteCloser = (*Broadcaster)(nil)
