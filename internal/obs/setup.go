package obs

// This file is the binaries' composition root for telemetry: the -obs-out
// directory layout and the -pprof debug endpoint. Everything here is still
// stdlib-only; net/http/pprof and expvar hang their handlers on the default
// serve mux.

import (
	"expvar"
	"net"
	"net/http"
	_ "net/http/pprof" // registers /debug/pprof/* on the default mux
	"os"
	"path/filepath"
	"sync"
)

// File names inside an -obs-out directory.
const (
	// EventsFile holds the run's JSONL event stream.
	EventsFile = "events.jsonl"
	// ManifestFile holds the machine-readable run manifest.
	ManifestFile = "manifest.json"
)

// FileSink creates dir (if needed) and opens dir/events.jsonl as the run's
// event sink. Closing the sink flushes and closes the file.
func FileSink(dir string) (*Sink, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	f, err := os.Create(filepath.Join(dir, EventsFile))
	if err != nil {
		return nil, err
	}
	return NewSink(f, DefaultSinkBuffer), nil
}

// debugReg is the registry the expvar "cbma" variable reads through. An
// indirection (rather than a closure over one registry) keeps repeated
// ServeDebug calls — e.g. a command's run function invoked twice in tests —
// from hitting expvar.Publish's duplicate-name panic.
var (
	debugMu      sync.Mutex
	debugReg     *Registry
	debugPublish sync.Once
)

// DebugHandler exposes r as the expvar variable "cbma" and returns the
// handler carrying the net/http/pprof and expvar endpoints (the default
// mux, where pprof registers itself). Servers that already own a listener
// — cbmad mounts this under /debug/ — use the handler directly; ServeDebug
// wraps it with its own listener for the CLI tools.
func DebugHandler(r *Registry) http.Handler {
	debugMu.Lock()
	debugReg = r
	debugMu.Unlock()
	debugPublish.Do(func() {
		expvar.Publish("cbma", expvar.Func(func() any {
			debugMu.Lock()
			reg := debugReg
			debugMu.Unlock()
			return reg.Snapshot()
		}))
		// Prometheus exposition rides the same indirection so -pprof serves
		// /metrics without a second registration path.
		http.Handle("/metrics", PrometheusHandler(func() Snapshot {
			debugMu.Lock()
			reg := debugReg
			debugMu.Unlock()
			return reg.Snapshot()
		}))
	})
	return http.DefaultServeMux
}

// ServeDebug exposes the registry as the expvar variable "cbma" and serves
// the net/http/pprof and expvar endpoints on addr from a background
// goroutine, returning the bound address (addr may use port 0). Listen
// errors surface synchronously; the serve loop itself is best-effort and
// runs for the process lifetime.
func ServeDebug(addr string, r *Registry) (string, error) {
	h := DebugHandler(r)
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", err
	}
	//cbma:fireforget process-lifetime debug listener by contract (see doc comment); closing ln would race live scrapes
	go func() { _ = http.Serve(ln, h) }()
	return ln.Addr().String(), nil
}
