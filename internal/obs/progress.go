package obs

import (
	"fmt"
	"io"
	"sync"
	"time"
)

// Progress renders a single live line ("\r"-rewritten) tracking campaign
// points done, percent, elapsed time, and an ETA extrapolated from the
// average point duration — all read from the injected clock, so tests drive
// it deterministically. Intended for stderr; every write is best-effort.
type Progress struct {
	w     io.Writer
	clock Clock

	mu     sync.Mutex
	label  string
	total  int
	done   int
	base   int // points primed as already-done; excluded from the ETA pace
	start  time.Time
	active bool
}

// NewProgress builds a progress line writing to w on the given clock. A nil
// clock renders without elapsed/ETA figures.
func NewProgress(w io.Writer, clock Clock) *Progress {
	if clock == nil {
		clock = func() time.Time { return time.Time{} }
	}
	return &Progress{w: w, clock: clock}
}

// Start begins a new segment of total points, resetting the line.
//
// The clock read and the write to p.w happen outside the critical section
// (lockscope): only the counter mutation is serialized, so a slow stderr
// never stalls concurrent Step callers.
func (p *Progress) Start(label string, total int) {
	if p == nil {
		return
	}
	now := p.clock()
	p.mu.Lock()
	p.label = label
	p.total = total
	p.done = 0
	p.base = 0
	p.start = now
	p.active = true
	line := p.line(now)
	p.mu.Unlock()
	fmt.Fprint(p.w, line)
}

// Prime marks n points complete before timed execution begins — journal
// restores on a resumed campaign. They advance the count and percentage
// but are excluded from the per-point pace the ETA extrapolates from, so a
// resume that restores 90% of its points doesn't project a wildly
// optimistic finish for the rest.
func (p *Progress) Prime(n int) {
	if p == nil || n <= 0 {
		return
	}
	now := p.clock()
	p.mu.Lock()
	if !p.active {
		p.mu.Unlock()
		return
	}
	p.done += n
	p.base += n
	line := p.line(now)
	p.mu.Unlock()
	fmt.Fprint(p.w, line)
}

// Step marks one point complete and redraws the line.
func (p *Progress) Step() {
	if p == nil {
		return
	}
	now := p.clock()
	p.mu.Lock()
	if !p.active {
		p.mu.Unlock()
		return
	}
	p.done++
	line := p.line(now)
	p.mu.Unlock()
	fmt.Fprint(p.w, line)
}

// Finish terminates the line with a newline so subsequent output starts
// clean. Idempotent.
func (p *Progress) Finish() {
	if p == nil {
		return
	}
	now := p.clock()
	p.mu.Lock()
	if !p.active {
		p.mu.Unlock()
		return
	}
	p.active = false
	line := p.line(now)
	p.mu.Unlock()
	fmt.Fprint(p.w, line+"\n")
}

// line formats the current progress; callers hold p.mu.
func (p *Progress) line(now time.Time) string {
	elapsed := now.Sub(p.start)
	pct := 0.0
	if p.total > 0 {
		pct = 100 * float64(p.done) / float64(p.total)
	}
	line := fmt.Sprintf("\r%s: %d/%d points (%3.0f%%)", p.label, p.done, p.total, pct)
	if elapsed > 0 {
		line += fmt.Sprintf(" elapsed %s", roundDuration(elapsed))
		if timed := p.done - p.base; timed > 0 && p.done < p.total {
			eta := time.Duration(float64(elapsed) / float64(timed) * float64(p.total-p.done))
			line += fmt.Sprintf(" eta %s", roundDuration(eta))
		}
	}
	return line
}

// roundDuration trims sub-perceptual precision so the line stays short.
func roundDuration(d time.Duration) time.Duration {
	switch {
	case d >= time.Minute:
		return d.Round(time.Second)
	case d >= time.Second:
		return d.Round(10 * time.Millisecond)
	default:
		return d.Round(time.Millisecond)
	}
}
