package obs

import (
	"testing"

	"cbma/internal/leaktest"
)

// TestMain fails the package run if any test leaves a goroutine behind —
// sink writers, broadcaster subscribers, progress renderers must all be
// collected by their Close/cancel paths.
func TestMain(m *testing.M) {
	leaktest.Main(m)
}
