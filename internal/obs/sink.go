package obs

import (
	"bufio"
	"encoding/json"
	"io"
	"sync"
	"sync/atomic"
)

// Event is one structured telemetry record. T is nanoseconds since the
// observer's run epoch (its construction time on the injected clock), so
// event timing is reproducible under a deterministic clock. Fields marshal
// with sorted keys (encoding/json map behavior), keeping the JSONL output
// stable for a given run.
type Event struct {
	T      int64          `json:"t_ns"`
	Type   string         `json:"type"`
	Fields map[string]any `json:"fields,omitempty"`
}

// Sink writes events as JSON Lines through a bounded ring: Emit never blocks
// the simulation — when the buffer is full the event is dropped and counted
// instead. A single writer goroutine owns the encoder, and Close drains and
// flushes everything buffered, which is what makes the SIGINT path safe: the
// interrupt handler closes the sink before writing the manifest.
type Sink struct {
	w       io.Writer
	relay   func(Event) // when set, events go to relay instead of the encoder
	events  chan Event
	done    chan struct{}
	written atomic.Int64
	dropped atomic.Int64

	mu     sync.Mutex
	closed bool
	err    error
}

// DefaultSinkBuffer is the event ring capacity used when NewSink is given a
// non-positive one.
const DefaultSinkBuffer = 4096

// NewSink starts a sink writing to w with the given ring capacity.
func NewSink(w io.Writer, capacity int) *Sink {
	if capacity <= 0 {
		capacity = DefaultSinkBuffer
	}
	s := &Sink{
		w:      w,
		events: make(chan Event, capacity),
		done:   make(chan struct{}),
	}
	go s.run()
	return s
}

// NewRelaySink starts a sink that hands each event to fn (from the sink's
// single writer goroutine) instead of encoding JSONL — the in-process
// bridge the shard transports use to forward worker telemetry onto the
// wire. The Emit/Close semantics match NewSink exactly: Emit never blocks
// (full ring drops and counts) and Close drains everything buffered before
// returning, after which fn is never called again.
func NewRelaySink(fn func(Event), capacity int) *Sink {
	if capacity <= 0 {
		capacity = DefaultSinkBuffer
	}
	s := &Sink{
		relay:  fn,
		events: make(chan Event, capacity),
		done:   make(chan struct{}),
	}
	go s.run()
	return s
}

func (s *Sink) run() {
	if s.relay != nil {
		for ev := range s.events {
			s.relay(ev)
			s.written.Add(1)
		}
		close(s.done)
		return
	}
	bw := bufio.NewWriter(s.w)
	enc := json.NewEncoder(bw)
	var err error
	for ev := range s.events {
		if err == nil {
			if err = enc.Encode(ev); err == nil {
				s.written.Add(1)
			}
		}
		// Flush whenever the ring runs dry so a live consumer (the daemon's
		// event-streaming endpoint) sees events as they happen instead of at
		// Close; under sustained load the buffer still amortizes writes.
		if len(s.events) == 0 && err == nil {
			err = bw.Flush()
		}
	}
	if ferr := bw.Flush(); err == nil {
		err = ferr
	}
	// A sink over an owned file (see FileSink) closes it after the flush so
	// Close really is "everything durably written".
	if c, ok := s.w.(io.Closer); ok {
		if cerr := c.Close(); err == nil {
			err = cerr
		}
	}
	s.mu.Lock()
	s.err = err
	s.mu.Unlock()
	close(s.done)
}

// Emit enqueues an event without blocking; if the ring is full or the sink
// is closed the event is dropped and counted.
func (s *Sink) Emit(ev Event) {
	if s == nil {
		return
	}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		s.dropped.Add(1)
		return
	}
	select {
	case s.events <- ev:
	default:
		s.dropped.Add(1)
	}
	s.mu.Unlock()
}

// Close drains the ring, flushes the writer and returns the first write
// error, if any. Safe to call more than once; Emit after Close drops.
func (s *Sink) Close() error {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	if !s.closed {
		s.closed = true
		close(s.events)
	}
	s.mu.Unlock()
	<-s.done
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.err
}

// Written is the number of events successfully encoded so far.
func (s *Sink) Written() int64 {
	if s == nil {
		return 0
	}
	return s.written.Load()
}

// Dropped is the number of events discarded because the ring was full (or
// the sink closed).
func (s *Sink) Dropped() int64 {
	if s == nil {
		return 0
	}
	return s.dropped.Load()
}
