package obs

// Prometheus text-format exposition (version 0.0.4) for registry snapshots,
// written by hand against the format spec — the repo stays zero-dependency.
// Counters and gauges map directly; the log2 histograms map onto Prometheus
// cumulative buckets exactly: bucket i covers the integer range
// [2^(i-1), 2^i-1], so its upper bound is representable as the precise
// integer `le` label 2^i-1 (no float rounding, since every observation is
// an integer nanosecond count).

import (
	"fmt"
	"io"
	"net/http"
	"strings"
)

// MetricName maps a registry instrument name into the Prometheus namespace:
// a "cbma_" prefix is applied and every rune outside [a-zA-Z0-9_] becomes
// an underscore, so "shard.points.committed" serves as
// "cbma_shard_points_committed".
func MetricName(name string) string {
	var b strings.Builder
	b.Grow(len(name) + 5)
	b.WriteString("cbma_")
	for _, r := range name {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '_':
			b.WriteRune(r)
		default:
			b.WriteByte('_')
		}
	}
	return b.String()
}

// bucketHigh returns the inclusive upper bound of the log2 bucket whose
// lower bound is low (0 for the non-positive bucket).
func bucketHigh(low int64) int64 {
	if low <= 0 {
		return 0
	}
	return 2*low - 1
}

// WritePrometheus renders the snapshot in the Prometheus text exposition
// format. Histogram buckets are cumulative with exact integer `le` bounds,
// followed by the +Inf bucket, _sum and _count series.
func WritePrometheus(w io.Writer, s Snapshot) error {
	var err error
	pf := func(format string, args ...any) {
		if err == nil {
			_, err = fmt.Fprintf(w, format, args...)
		}
	}
	for _, c := range s.Counters {
		n := MetricName(c.Name)
		pf("# TYPE %s counter\n%s %d\n", n, n, c.Value)
	}
	for _, g := range s.Gauges {
		n := MetricName(g.Name)
		pf("# TYPE %s gauge\n%s %d\n", n, n, g.Value)
	}
	for _, h := range s.Histograms {
		n := MetricName(h.Name)
		pf("# TYPE %s histogram\n", n)
		var cum int64
		for _, b := range h.Buckets {
			cum += b.Count
			pf("%s_bucket{le=\"%d\"} %d\n", n, bucketHigh(b.Low), cum)
		}
		pf("%s_bucket{le=\"+Inf\"} %d\n", n, h.Count)
		pf("%s_sum %d\n%s_count %d\n", n, h.Sum, n, h.Count)
	}
	return err
}

// PrometheusHandler serves snap() in the Prometheus text format — the
// /metrics endpoint for cbmad and the -pprof debug mux. The snapshot is
// taken per scrape, so the endpoint always reflects live registry state.
func PrometheusHandler(snap func() Snapshot) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = WritePrometheus(w, snap())
	})
}
