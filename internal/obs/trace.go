package obs

// Trace context for distributed campaigns. A sharded run spans several
// processes (coordinator + shard workers), each with its own Observer; the
// trace ID is the thread that stitches their telemetry back together. The
// coordinator mints one trace ID per campaign, tags every event it emits
// (and every event relayed from a worker) with it, carries it in the run
// manifest, and sends it over the shard wire so worker-side logs can
// reference it too. Span IDs are deterministic digests of the trace ID plus
// a path (shard index, point index), so the same campaign replayed under
// the same trace yields the same span identifiers — `cbmaobs` relies on
// this to join dispatch, retry and commit events for one range.
//
// Trace IDs are telemetry, not simulation state: NewTraceID reads only the
// injected Clock (obsclock-compliant) and a process-scoped sequence number,
// and nothing result-bearing ever consumes a trace or span ID.

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"sync/atomic"
)

// traceSeq disambiguates trace IDs minted at the same clock reading (e.g.
// under a zero or frozen test clock).
var traceSeq atomic.Uint64

// NewTraceID mints a 16-hex-digit campaign trace identifier from the given
// clock reading and a process-wide sequence number. A nil clock is allowed
// (the sequence number alone keeps IDs unique within the process).
func NewTraceID(clock Clock) string {
	var t int64
	if clock != nil {
		t = clock().UnixNano()
	}
	var buf [16]byte
	binary.LittleEndian.PutUint64(buf[:8], uint64(t))
	binary.LittleEndian.PutUint64(buf[8:], traceSeq.Add(1))
	sum := sha256.Sum256(buf[:])
	return hex.EncodeToString(sum[:8])
}

// SpanID derives a deterministic 16-hex-digit span identifier from its
// parts — conventionally the trace ID followed by a path like
// ("shard", "2") or ("point", "17"). Equal parts always yield equal IDs.
func SpanID(parts ...string) string {
	h := sha256.New()
	for _, p := range parts {
		h.Write([]byte(p))
		h.Write([]byte{0})
	}
	return hex.EncodeToString(h.Sum(nil)[:8])
}

// SetTrace attaches a trace ID to the observer: every subsequent Emit is
// tagged with a "trace_id" field and Manifest records it. Concurrency-safe;
// no-op on a nil observer.
func (o *Observer) SetTrace(id string) {
	if o == nil || id == "" {
		return
	}
	o.trace.Store(id)
}

// TraceID returns the observer's trace ID, or "" if none is set.
func (o *Observer) TraceID() string {
	if o == nil {
		return ""
	}
	id, _ := o.trace.Load().(string)
	return id
}

// EnsureTrace returns the observer's trace ID, minting and attaching a
// fresh one if none is set yet. Returns "" only for a nil observer.
func (o *Observer) EnsureTrace() string {
	if o == nil {
		return ""
	}
	o.mu.Lock()
	defer o.mu.Unlock()
	if id, _ := o.trace.Load().(string); id != "" {
		return id
	}
	id := NewTraceID(o.clock)
	o.trace.Store(id)
	return id
}
