package obs

// Per-shard telemetry accumulation for distributed campaigns. The shard
// coordinator records attempts, liveness beats and point commits per shard
// and merges each worker's registry snapshot (shipped over the wire with
// the attempt's done marker) into its row; Manifest folds the collector
// into the run manifest as a per-shard breakdown plus merged worker
// totals. Everything here is observational — the collector is fed from the
// telemetry path only, so a run's Metrics are bit-identical with or
// without it (the shard equivalence tests prove this).

import (
	"sort"
	"sync"
)

// ShardTelemetry is one shard's row in a sharded run's manifest breakdown.
// Points/Failed count results committed during this run (journal-restored
// points belong to the run that executed them), so summing Points across
// the breakdown always equals the run's shard.points.committed counter.
type ShardTelemetry struct {
	Shard    int      `json:"shard"`
	Points   int64    `json:"points"`
	Failed   int64    `json:"failed,omitempty"`
	Attempts int64    `json:"attempts"`
	Beats    int64    `json:"beats,omitempty"`
	Registry Snapshot `json:"registry"`
}

// ShardStats accumulates per-shard telemetry for one sharded campaign. All
// methods are concurrency-safe and nil-receiver-safe.
type ShardStats struct {
	mu   sync.Mutex
	rows map[int]*ShardTelemetry
}

// row returns the shard's row, creating it on first use; callers hold s.mu.
func (s *ShardStats) row(shard int) *ShardTelemetry {
	if s.rows == nil {
		s.rows = make(map[int]*ShardTelemetry)
	}
	r, ok := s.rows[shard]
	if !ok {
		r = &ShardTelemetry{Shard: shard}
		s.rows[shard] = r
	}
	return r
}

// AddAttempt records one dispatch attempt for the shard.
func (s *ShardStats) AddAttempt(shard int) {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.row(shard).Attempts++
	s.mu.Unlock()
}

// AddBeat records one liveness signal (heartbeat, relayed event, or
// delivered result) observed from the shard.
func (s *ShardStats) AddBeat(shard int) {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.row(shard).Beats++
	s.mu.Unlock()
}

// AddPoint records one point committed by the shard; failed marks a point
// that resolved as a failure.
func (s *ShardStats) AddPoint(shard int, failed bool) {
	if s == nil {
		return
	}
	s.mu.Lock()
	r := s.row(shard)
	r.Points++
	if failed {
		r.Failed++
	}
	s.mu.Unlock()
}

// MergeRegistry folds a worker registry snapshot into the shard's row. A
// reassigned shard merges every attempt's snapshot (counts add, gauges
// take the max — the same semantics as Snapshot.Merge everywhere else).
func (s *ShardStats) MergeRegistry(shard int, snap Snapshot) {
	if s == nil {
		return
	}
	s.mu.Lock()
	r := s.row(shard)
	r.Registry = r.Registry.Merge(snap)
	s.mu.Unlock()
}

// Breakdown returns the per-shard rows sorted by shard index.
func (s *ShardStats) Breakdown() []ShardTelemetry {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]ShardTelemetry, 0, len(s.rows))
	for _, r := range s.rows {
		out = append(out, *r)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Shard < out[j].Shard })
	return out
}

// Merged folds every shard's worker registry into one snapshot — the
// campaign-wide worker-side totals.
func (s *ShardStats) Merged() Snapshot {
	if s == nil {
		return Snapshot{}
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	var out Snapshot
	shards := make([]int, 0, len(s.rows))
	for shard := range s.rows {
		shards = append(shards, shard)
	}
	sort.Ints(shards)
	for _, shard := range shards {
		out = out.Merge(s.rows[shard].Registry)
	}
	return out
}

// Shards returns the observer's per-shard telemetry collector, creating it
// on first use. The shard coordinator feeds it; Manifest folds it into the
// run manifest. Nil for a nil observer (and the collector's methods are
// nil-safe, so callers never branch).
func (o *Observer) Shards() *ShardStats {
	if o == nil {
		return nil
	}
	o.mu.Lock()
	defer o.mu.Unlock()
	if o.shards == nil {
		o.shards = &ShardStats{}
	}
	return o.shards
}

// shardStats returns the collector without creating it; nil when the run
// never recorded shard telemetry.
func (o *Observer) shardStats() *ShardStats {
	if o == nil {
		return nil
	}
	o.mu.Lock()
	defer o.mu.Unlock()
	return o.shards
}
