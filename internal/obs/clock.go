package obs

import (
	"sync/atomic"
	"time"
)

// Clock supplies timestamps to the telemetry layer. Everything in obs that
// reads time reads it through a Clock, which is the seam that keeps the
// determinism contract intact: binaries inject SystemClock(), tests inject a
// StepClock, and the simulation result path never sees either.
type Clock func() time.Time

// SystemClock returns the wall clock, for use by cmd/ binaries only. This is
// the single place in library code where time.Now is referenced; the
// obsclock analyzer forbids capturing it anywhere else.
func SystemClock() Clock {
	return time.Now //cbma:allow obsclock the one sanctioned wall-clock capture; binaries inject it
}

// StepClock returns a deterministic clock that starts at start and advances
// by step on every read. Concurrent reads observe distinct, monotonically
// increasing times, which makes span durations and ETAs reproducible in
// tests.
func StepClock(start time.Time, step time.Duration) Clock {
	var n atomic.Int64
	return func() time.Time {
		return start.Add(time.Duration(n.Add(1)-1) * step)
	}
}
