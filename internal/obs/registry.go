package obs

import (
	"expvar"
	"sort"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing atomic counter. Nil-receiver-safe.
type Counter struct {
	v atomic.Int64
}

// Inc adds one.
func (c *Counter) Inc() {
	if c != nil {
		c.v.Add(1)
	}
}

// Add adds delta.
func (c *Counter) Add(delta int64) {
	if c != nil {
		c.v.Add(delta)
	}
}

// Value reads the current count.
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a last-write-wins atomic value. Nil-receiver-safe.
type Gauge struct {
	v atomic.Int64
}

// Set stores v.
func (g *Gauge) Set(v int64) {
	if g != nil {
		g.v.Store(v)
	}
}

// Add shifts the value by delta — the level-tracking use of a gauge (queue
// depths, in-flight counts), where concurrent writers adjust rather than
// overwrite.
func (g *Gauge) Add(delta int64) {
	if g != nil {
		g.v.Add(delta)
	}
}

// Value reads the current value.
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// Registry is a get-or-create store of named instruments. Lookup takes a
// mutex, so instrumented code resolves its instruments once up front (see
// sim.engineObs) and the hot path touches only the returned atomics.
type Registry struct {
	mu         sync.Mutex
	counters   map[string]*Counter
	gauges     map[string]*Gauge
	histograms map[string]*Histogram
}

// NewRegistry builds an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters:   map[string]*Counter{},
		gauges:     map[string]*Gauge{},
		histograms: map[string]*Histogram{},
	}
}

// Counter returns the named counter, creating it on first use.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c := r.counters[name]
	if c == nil {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	g := r.gauges[name]
	if g == nil {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it on first use.
func (r *Registry) Histogram(name string) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h := r.histograms[name]
	if h == nil {
		h = &Histogram{}
		r.histograms[name] = h
	}
	return h
}

// Value is one named scalar (counter or gauge) in a snapshot.
type Value struct {
	Name  string `json:"name"`
	Value int64  `json:"value"`
}

// Snapshot is an immutable capture of a registry, with every section sorted
// by name so identical registries marshal to identical JSON. Snapshots merge
// like sim.Metrics: associatively and commutatively over any partition of
// the underlying observations (counters and histograms add; gauges keep the
// maximum, the only merge of last-write-wins values that is order-free).
type Snapshot struct {
	Counters   []Value             `json:"counters,omitempty"`
	Gauges     []Value             `json:"gauges,omitempty"`
	Histograms []HistogramSnapshot `json:"histograms,omitempty"`
}

// Snapshot captures the registry's current state.
func (r *Registry) Snapshot() Snapshot {
	if r == nil {
		return Snapshot{}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	var s Snapshot
	for name, c := range r.counters {
		s.Counters = append(s.Counters, Value{Name: name, Value: c.Value()})
	}
	for name, g := range r.gauges {
		s.Gauges = append(s.Gauges, Value{Name: name, Value: g.Value()})
	}
	for name, h := range r.histograms {
		s.Histograms = append(s.Histograms, h.snapshot(name))
	}
	sortValues(s.Counters)
	sortValues(s.Gauges)
	sort.Slice(s.Histograms, func(i, j int) bool { return s.Histograms[i].Name < s.Histograms[j].Name })
	return s
}

// Merge combines two snapshots into a new one: counters and histogram
// contents add, gauges take the maximum. Like Metrics.Merge it is
// associative and commutative (see TestSnapshotMergeProperties), so per-shard
// registries can be folded in any order.
func (s Snapshot) Merge(o Snapshot) Snapshot {
	return Snapshot{
		Counters:   mergeValues(s.Counters, o.Counters, func(a, b int64) int64 { return a + b }),
		Gauges:     mergeValues(s.Gauges, o.Gauges, func(a, b int64) int64 { return max(a, b) }),
		Histograms: mergeHistograms(s.Histograms, o.Histograms),
	}
}

func mergeValues(a, b []Value, combine func(x, y int64) int64) []Value {
	if len(a) == 0 && len(b) == 0 {
		return nil
	}
	byName := map[string]int64{}
	seen := map[string]bool{}
	for _, v := range a {
		byName[v.Name] = v.Value
		seen[v.Name] = true
	}
	for _, v := range b {
		if seen[v.Name] {
			byName[v.Name] = combine(byName[v.Name], v.Value)
		} else {
			byName[v.Name] = v.Value
			seen[v.Name] = true
		}
	}
	out := make([]Value, 0, len(byName))
	for name, v := range byName {
		out = append(out, Value{Name: name, Value: v})
	}
	sortValues(out)
	return out
}

func mergeHistograms(a, b []HistogramSnapshot) []HistogramSnapshot {
	if len(a) == 0 && len(b) == 0 {
		return nil
	}
	byName := map[string]HistogramSnapshot{}
	for _, h := range a {
		byName[h.Name] = h
	}
	for _, h := range b {
		if prev, ok := byName[h.Name]; ok {
			byName[h.Name] = prev.merge(h)
		} else {
			byName[h.Name] = h
		}
	}
	names := make([]string, 0, len(byName))
	for name := range byName {
		names = append(names, name)
	}
	sort.Strings(names)
	out := make([]HistogramSnapshot, 0, len(names))
	for _, name := range names {
		out = append(out, byName[name])
	}
	return out
}

func sortValues(vs []Value) {
	sort.Slice(vs, func(i, j int) bool { return vs[i].Name < vs[j].Name })
}

func sortInt64s(vs []int64) {
	sort.Slice(vs, func(i, j int) bool { return vs[i] < vs[j] })
}

// PublishExpvar exposes the registry under the given expvar name, so the
// -pprof debug endpoint serves live instrument values at /debug/vars.
// Publishing a name twice panics (expvar semantics), so binaries call this
// once at startup.
func PublishExpvar(name string, r *Registry) {
	expvar.Publish(name, expvar.Func(func() any { return r.Snapshot() }))
}
