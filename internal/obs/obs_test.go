package obs

import (
	"bytes"
	"encoding/json"
	"math/rand"
	"os"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestNilSafety(t *testing.T) {
	// Every instrument must no-op on nil so instrumented code carries no
	// enablement branches.
	var o *Observer
	o.Counter("c").Inc()
	o.Gauge("g").Set(7)
	o.Histogram("h").Observe(42)
	o.Start(o.Histogram("h")).End()
	o.Emit("x", nil)
	o.CampaignStart("sweep", 3)
	o.CampaignPoint()
	o.CampaignEnd("sweep")
	if o.EmitsEvents() {
		t.Fatal("nil observer claims to emit events")
	}
	if got := o.Registry().Snapshot(); !reflect.DeepEqual(got, Snapshot{}) {
		t.Fatalf("nil registry snapshot = %+v", got)
	}
	var s *Sink
	s.Emit(Event{})
	if err := s.Close(); err != nil {
		t.Fatalf("nil sink Close: %v", err)
	}
	var p *Progress
	p.Start("x", 1)
	p.Step()
	p.Finish()
}

func TestCounterGaugeHistogram(t *testing.T) {
	o := New(Config{})
	c := o.Counter("sim.rounds")
	c.Inc()
	c.Add(4)
	if got := c.Value(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	if c2 := o.Counter("sim.rounds"); c2 != c {
		t.Fatal("registry did not return the same counter instance")
	}
	g := o.Gauge("workers")
	g.Set(8)
	if got := g.Value(); got != 8 {
		t.Fatalf("gauge = %d, want 8", got)
	}
	h := o.Histogram("stage_ns")
	for _, v := range []int64{1, 2, 3, 1024, -5} {
		h.Observe(v)
	}
	if got := h.Count(); got != 5 {
		t.Fatalf("histogram count = %d, want 5", got)
	}
	if got := h.Sum(); got != 1025 {
		t.Fatalf("histogram sum = %d, want 1025", got)
	}
	snap := o.Registry().Snapshot()
	if len(snap.Histograms) != 1 {
		t.Fatalf("got %d histograms", len(snap.Histograms))
	}
	hs := snap.Histograms[0]
	if hs.Min != -5 || hs.Max != 1024 {
		t.Fatalf("min/max = %d/%d, want -5/1024", hs.Min, hs.Max)
	}
	// Buckets: -5→low 0; 1→[1,2); 2,3→[2,4); 1024→[1024,2048).
	want := []Bucket{{0, 1}, {1, 1}, {2, 2}, {1024, 1}}
	if !reflect.DeepEqual(hs.Buckets, want) {
		t.Fatalf("buckets = %+v, want %+v", hs.Buckets, want)
	}
}

func TestHistogramConcurrent(t *testing.T) {
	var h Histogram
	const workers, per = 8, 1000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				h.Observe(int64(w*per + i + 1))
			}
		}(w)
	}
	wg.Wait()
	if got := h.Count(); got != workers*per {
		t.Fatalf("count = %d, want %d", got, workers*per)
	}
	s := h.snapshot("x")
	if s.Min != 1 || s.Max != workers*per {
		t.Fatalf("min/max = %d/%d, want 1/%d", s.Min, s.Max, workers*per)
	}
	var n int64
	for _, b := range s.Buckets {
		n += b.Count
	}
	if n != workers*per {
		t.Fatalf("bucket total = %d, want %d", n, workers*per)
	}
}

// randomSnapshot builds a snapshot from a bounded pool of instrument names so
// merges genuinely overlap.
func randomSnapshot(rng *rand.Rand) Snapshot {
	r := NewRegistry()
	names := []string{"a", "b", "c_ns", "d_ns"}
	for i, n := 0, rng.Intn(20); i < n; i++ {
		switch rng.Intn(3) {
		case 0:
			r.Counter(names[rng.Intn(len(names))]).Add(int64(rng.Intn(100)))
		case 1:
			r.Gauge(names[rng.Intn(len(names))]).Set(int64(rng.Intn(100)))
		default:
			r.Histogram(names[rng.Intn(len(names))]).Observe(int64(rng.Intn(1 << 20)))
		}
	}
	return r.Snapshot()
}

// TestSnapshotMergeProperties is the registry analogue of the sim package's
// TestMetricsMergeProperties: snapshot merge must be commutative and
// associative so per-shard registries fold identically in any order.
func TestSnapshotMergeProperties(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 200; trial++ {
		a, b, c := randomSnapshot(rng), randomSnapshot(rng), randomSnapshot(rng)
		ab, ba := a.Merge(b), b.Merge(a)
		if !reflect.DeepEqual(ab, ba) {
			t.Fatalf("trial %d: merge not commutative:\na.b=%+v\nb.a=%+v", trial, ab, ba)
		}
		left, right := a.Merge(b).Merge(c), a.Merge(b.Merge(c))
		if !reflect.DeepEqual(left, right) {
			t.Fatalf("trial %d: merge not associative:\n(ab)c=%+v\na(bc)=%+v", trial, left, right)
		}
		if !reflect.DeepEqual(a.Merge(Snapshot{}), a) {
			t.Fatalf("trial %d: empty snapshot is not an identity", trial)
		}
	}
}

// TestSnapshotMergeEqualsSingleRegistry checks the partition property: the
// merge of per-shard snapshots equals the snapshot of one registry that saw
// every observation.
func TestSnapshotMergeEqualsSingleRegistry(t *testing.T) {
	whole := NewRegistry()
	shards := []*Registry{NewRegistry(), NewRegistry(), NewRegistry()}
	rng := rand.New(rand.NewSource(9))
	for i := 0; i < 500; i++ {
		shard := shards[rng.Intn(len(shards))]
		v := int64(rng.Intn(1 << 16))
		switch rng.Intn(2) {
		case 0:
			shard.Counter("n").Add(v)
			whole.Counter("n").Add(v)
		default:
			shard.Histogram("t_ns").Observe(v)
			whole.Histogram("t_ns").Observe(v)
		}
	}
	merged := Snapshot{}
	for _, s := range shards {
		merged = merged.Merge(s.Snapshot())
	}
	if want := whole.Snapshot(); !reflect.DeepEqual(merged, want) {
		t.Fatalf("merged shards != whole registry:\nmerged=%+v\nwhole=%+v", merged, want)
	}
}

func TestSpanTiming(t *testing.T) {
	epoch := time.Unix(1000, 0)
	o := New(Config{Clock: StepClock(epoch, time.Millisecond)})
	h := o.Histogram("stage_ns")
	sp := o.Start(h)
	sp.End() // exactly one clock tick apart
	if got := h.Sum(); got != int64(time.Millisecond) {
		t.Fatalf("span recorded %d ns, want %d", got, int64(time.Millisecond))
	}
}

func TestSinkWritesJSONLAndCounts(t *testing.T) {
	var buf bytes.Buffer
	s := NewSink(&buf, 16)
	s.Emit(Event{T: 5, Type: "round", Fields: map[string]any{"round": 1, "acked": 2}})
	s.Emit(Event{T: 9, Type: "campaign_end"})
	if err := s.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if s.Written() != 2 || s.Dropped() != 0 {
		t.Fatalf("written/dropped = %d/%d, want 2/0", s.Written(), s.Dropped())
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("got %d lines: %q", len(lines), buf.String())
	}
	var ev Event
	if err := json.Unmarshal([]byte(lines[0]), &ev); err != nil {
		t.Fatalf("line 0 not JSON: %v", err)
	}
	if ev.T != 5 || ev.Type != "round" || ev.Fields["round"] != float64(1) {
		t.Fatalf("decoded event = %+v", ev)
	}
	// Emit after close must drop, not panic.
	s.Emit(Event{Type: "late"})
	if s.Dropped() != 1 {
		t.Fatalf("dropped after close = %d, want 1", s.Dropped())
	}
}

// blockingWriter blocks writes until released, letting the test fill the ring.
type blockingWriter struct{ release chan struct{} }

func (w *blockingWriter) Write(p []byte) (int, error) {
	<-w.release
	return len(p), nil
}

func TestSinkDropsWhenFull(t *testing.T) {
	w := &blockingWriter{release: make(chan struct{})}
	s := NewSink(w, 2)
	// Events larger than bufio's buffer force a Write per event, so the
	// consumer blocks on the first one and the ring (capacity 2) must drop.
	payload := strings.Repeat("x", 8192)
	for i := 0; i < 10; i++ {
		s.Emit(Event{T: int64(i), Fields: map[string]any{"pad": payload}})
	}
	if s.Dropped() == 0 {
		t.Fatal("expected drops with a full ring")
	}
	close(w.release)
	if err := s.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if got := s.Written() + s.Dropped(); got != 10 {
		t.Fatalf("written+dropped = %d, want 10", got)
	}
}

func TestProgressLine(t *testing.T) {
	var buf bytes.Buffer
	clock := StepClock(time.Unix(0, 0), time.Second)
	p := NewProgress(&buf, clock)
	p.Start("fig8a", 4)
	p.Step()
	p.Step()
	p.Finish()
	out := buf.String()
	if !strings.Contains(out, "fig8a: 2/4 points ( 50%)") {
		t.Fatalf("progress output missing done/total: %q", out)
	}
	if !strings.Contains(out, "eta") {
		t.Fatalf("progress output missing ETA: %q", out)
	}
	if !strings.HasSuffix(out, "\n") {
		t.Fatalf("Finish did not terminate the line: %q", out)
	}
	// Finish twice must not print twice.
	n := len(buf.String())
	p.Finish()
	if buf.Len() != n {
		t.Fatal("second Finish wrote output")
	}
}

func TestObserverEmitUsesRunEpoch(t *testing.T) {
	var buf bytes.Buffer
	sink := NewSink(&buf, 8)
	clock := StepClock(time.Unix(100, 0), time.Second)
	o := New(Config{Clock: clock, Sink: sink})
	o.Emit("tick", nil) // one tick after construction
	if err := sink.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	var ev Event
	if err := json.Unmarshal(bytes.TrimSpace(buf.Bytes()), &ev); err != nil {
		t.Fatalf("decode: %v", err)
	}
	if ev.T != int64(time.Second) {
		t.Fatalf("event t_ns = %d, want %d (relative to run epoch)", ev.T, int64(time.Second))
	}
}

func TestManifestBreakdownAndHash(t *testing.T) {
	clock := StepClock(time.Unix(0, 0), time.Millisecond)
	o := New(Config{Clock: clock})
	h := o.Histogram("sim.stage.decode_ns")
	h.Observe(100)
	h.Observe(300)
	o.Counter("sim.rounds.committed").Add(2)
	m := o.Manifest("cbmasim")
	if m.Tool != "cbmasim" || m.GoVersion == "" || m.Version == "" {
		t.Fatalf("manifest env fields incomplete: %+v", m)
	}
	if len(m.Stages) != 1 {
		t.Fatalf("stages = %+v, want one decode row", m.Stages)
	}
	st := m.Stages[0]
	if st.Name != "sim.stage.decode" || st.Count != 2 || st.TotalNs != 400 || st.MeanNs != 200 || st.MaxNs != 300 {
		t.Fatalf("stage row = %+v", st)
	}
	if m.WallNs <= 0 {
		t.Fatal("manifest wall time not positive under stepping clock")
	}

	h1, err := HashJSON(map[string]any{"tags": 8, "seed": 1})
	if err != nil {
		t.Fatal(err)
	}
	h2, err := HashJSON(map[string]any{"seed": 1, "tags": 8})
	if err != nil {
		t.Fatal(err)
	}
	if h1 != h2 {
		t.Fatalf("hash not key-order independent: %s vs %s", h1, h2)
	}
	h3, _ := HashJSON(map[string]any{"tags": 9, "seed": 1})
	if h1 == h3 {
		t.Fatal("different configs hashed equally")
	}
}

func TestWriteManifestRoundTrips(t *testing.T) {
	path := t.TempDir() + "/manifest.json"
	o := New(Config{})
	m := o.Manifest("cbmabench")
	m.Seed = 42
	m.Workers = 4
	if err := WriteManifest(path, m); err != nil {
		t.Fatalf("WriteManifest: %v", err)
	}
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var got Manifest
	if err := json.Unmarshal(b, &got); err != nil {
		t.Fatalf("manifest not valid JSON: %v", err)
	}
	if got.Seed != 42 || got.Workers != 4 || got.Tool != "cbmabench" {
		t.Fatalf("round-trip lost fields: %+v", got)
	}
}
