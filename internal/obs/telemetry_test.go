package obs

// Tests for the distributed-telemetry layer: trace/span identity, exposition
// in the Prometheus text format, interpolated histogram quantiles, resumed-
// campaign progress priming, and the randomized-partition merge property the
// shard-merged registry depends on.

import (
	"bytes"
	"math/rand"
	"net/http/httptest"
	"reflect"
	"strings"
	"testing"
	"time"
)

func TestNewTraceIDShapeAndUniqueness(t *testing.T) {
	clock := StepClock(time.Unix(1000, 0), time.Nanosecond)
	seen := map[string]bool{}
	for i := 0; i < 1000; i++ {
		id := NewTraceID(clock)
		if len(id) != 16 {
			t.Fatalf("trace ID %q has length %d, want 16", id, len(id))
		}
		for _, r := range id {
			if !strings.ContainsRune("0123456789abcdef", r) {
				t.Fatalf("trace ID %q is not lowercase hex", id)
			}
		}
		if seen[id] {
			t.Fatalf("duplicate trace ID %q after %d draws", id, i)
		}
		seen[id] = true
	}
	// Even a frozen (nil) clock yields distinct IDs: the process-wide
	// sequence number alone differentiates them.
	if NewTraceID(nil) == NewTraceID(nil) {
		t.Fatal("nil-clock trace IDs collide")
	}
}

func TestSpanIDDeterministic(t *testing.T) {
	a := SpanID("trace1", "shard", "3")
	if b := SpanID("trace1", "shard", "3"); a != b {
		t.Fatalf("SpanID not deterministic: %q vs %q", a, b)
	}
	if len(a) != 16 {
		t.Fatalf("span ID %q has length %d, want 16", a, len(a))
	}
	if a == SpanID("trace1", "shard", "4") || a == SpanID("trace2", "shard", "3") {
		t.Fatal("distinct inputs produced colliding span IDs")
	}
	// The NUL separator keeps part boundaries unambiguous.
	if SpanID("ab", "c") == SpanID("a", "bc") {
		t.Fatal("span ID ignores part boundaries")
	}
}

func TestObserverTraceLifecycle(t *testing.T) {
	var nilObs *Observer
	if got := nilObs.TraceID(); got != "" {
		t.Fatalf("nil observer TraceID = %q", got)
	}
	if got := nilObs.EnsureTrace(); got != "" {
		t.Fatalf("nil observer EnsureTrace = %q", got)
	}
	nilObs.SetTrace("x") // must not panic

	o := New(Config{Clock: StepClock(time.Unix(1000, 0), time.Millisecond)})
	if got := o.TraceID(); got != "" {
		t.Fatalf("fresh observer TraceID = %q, want empty", got)
	}
	minted := o.EnsureTrace()
	if minted == "" {
		t.Fatal("EnsureTrace minted nothing")
	}
	if again := o.EnsureTrace(); again != minted {
		t.Fatalf("EnsureTrace re-minted: %q then %q", minted, again)
	}
	o.SetTrace("feedc0de12345678")
	if got := o.TraceID(); got != "feedc0de12345678" {
		t.Fatalf("TraceID after SetTrace = %q", got)
	}
}

func TestEmitTagsTraceID(t *testing.T) {
	var buf bytes.Buffer
	s := NewSink(&buf, 8)
	o := New(Config{Clock: StepClock(time.Unix(1000, 0), time.Millisecond), Sink: s})
	o.SetTrace("aa00aa00aa00aa00")
	o.Emit("plain", map[string]any{"k": 1})
	o.Emit("no_fields", nil)
	// A relayed event already carrying its origin's trace ID keeps it.
	o.Emit("relayed", map[string]any{"trace_id": "bb11bb11bb11bb11"})
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 3 {
		t.Fatalf("got %d lines: %q", len(lines), out)
	}
	for i, want := range []string{"aa00aa00aa00aa00", "aa00aa00aa00aa00", "bb11bb11bb11bb11"} {
		if !strings.Contains(lines[i], `"trace_id":"`+want+`"`) {
			t.Errorf("line %d missing trace_id %q: %s", i, want, lines[i])
		}
	}
}

func TestWritePrometheusFormat(t *testing.T) {
	r := NewRegistry()
	r.Counter("shard.points.committed").Add(7)
	r.Gauge("campaign.points.total").Set(12)
	h := r.Histogram("point_ns")
	h.Observe(1) // bucket [1,1]
	h.Observe(3) // bucket [2,3]
	h.Observe(3)
	var buf bytes.Buffer
	if err := WritePrometheus(&buf, r.Snapshot()); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"# TYPE cbma_shard_points_committed counter\ncbma_shard_points_committed 7\n",
		"# TYPE cbma_campaign_points_total gauge\ncbma_campaign_points_total 12\n",
		"# TYPE cbma_point_ns histogram\n",
		`cbma_point_ns_bucket{le="1"} 1`,
		`cbma_point_ns_bucket{le="3"} 3`,
		`cbma_point_ns_bucket{le="+Inf"} 3`,
		"cbma_point_ns_sum 7\n",
		"cbma_point_ns_count 3\n",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
}

func TestPrometheusHandler(t *testing.T) {
	r := NewRegistry()
	r.Counter("hits").Add(2)
	srv := httptest.NewServer(PrometheusHandler(r.Snapshot))
	defer srv.Close()
	resp, err := srv.Client().Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/plain; version=0.0.4; charset=utf-8" {
		t.Errorf("Content-Type = %q", ct)
	}
	var body bytes.Buffer
	if _, err := body.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(body.String(), "cbma_hits 2") {
		t.Errorf("scrape missing counter:\n%s", body.String())
	}
	// The counter ticks between scrapes: the snapshot is taken per request.
	r.Counter("hits").Inc()
	resp2, err := srv.Client().Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	body.Reset()
	if _, err := body.ReadFrom(resp2.Body); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(body.String(), "cbma_hits 3") {
		t.Errorf("second scrape not live:\n%s", body.String())
	}
}

func TestHistogramQuantile(t *testing.T) {
	if got := (HistogramSnapshot{}).Quantile(0.5); got != 0 {
		t.Fatalf("empty quantile = %d, want 0", got)
	}
	h := NewRegistry().Histogram("x")
	for v := int64(1); v <= 1000; v++ {
		h.Observe(v)
	}
	s := h.snapshot("x")
	if got := s.Quantile(0); got != 1 {
		t.Errorf("q=0 → %d, want Min=1", got)
	}
	if got := s.Quantile(1); got != 1000 {
		t.Errorf("q=1 → %d, want Max=1000", got)
	}
	// Log2 buckets bound the interpolation error: the estimate must land
	// within the true quantile's bucket, and monotonically increase in q.
	prev := int64(0)
	for _, tc := range []struct {
		q     float64
		true_ int64
	}{{0.25, 250}, {0.50, 500}, {0.95, 950}, {0.99, 990}} {
		got := s.Quantile(tc.q)
		if got < prev {
			t.Errorf("quantile not monotonic: q=%v → %d < %d", tc.q, got, prev)
		}
		prev = got
		lo, hi := tc.true_/2, tc.true_*2
		if got < lo || got > hi {
			t.Errorf("q=%v → %d, true %d (outside log2 bound [%d,%d])", tc.q, got, tc.true_, lo, hi)
		}
	}
	// A single observation answers every quantile with itself.
	one := NewRegistry().Histogram("y")
	one.Observe(42)
	for _, q := range []float64{0, 0.5, 0.99, 1} {
		if got := one.snapshot("y").Quantile(q); got != 42 {
			t.Errorf("single-value q=%v → %d, want 42", q, got)
		}
	}
}

func TestProgressPrimeExcludedFromETA(t *testing.T) {
	epoch := time.Unix(1000, 0)
	var buf bytes.Buffer
	// Each clock() call advances one second.
	p := NewProgress(&buf, StepClock(epoch, time.Second))
	p.Start("resume", 10)
	p.Prime(8)
	last := func() string {
		frames := strings.Split(buf.String(), "\r")
		return frames[len(frames)-1]
	}
	// Primed points advance the count but not the pace; with no timed
	// points yet there is no ETA to extrapolate.
	if l := last(); !strings.Contains(l, "8/10") || strings.Contains(l, "eta") {
		t.Fatalf("post-prime line %q: want 8/10 and no eta", l)
	}
	p.Step()
	// 9/10 done, but only 1 timed point over the elapsed time: the ETA must
	// reflect the single-point pace, not (elapsed/9)*(1 remaining).
	l := last()
	if !strings.Contains(l, "9/10") || !strings.Contains(l, "eta") {
		t.Fatalf("post-step line %q: want 9/10 with eta", l)
	}
	// The clock ticks once per call: Start at t0, Prime at t0+1s, Step at
	// t0+2s. Elapsed = 2s over 1 timed point; eta = 2s × 1 remaining = 2s.
	// The un-primed calculation would give 2s/9 × 1 ≈ 222ms.
	if !strings.Contains(l, "eta 2s") {
		t.Fatalf("line %q: want eta 2s (pace from timed points only)", l)
	}
	p.Finish()
	if !p.clockOK() {
		t.Fatal("clock sanity")
	}
}

// clockOK keeps the test honest if Progress's internals change shape.
func (p *Progress) clockOK() bool { return p != nil && p.clock != nil }

// TestSnapshotMergeRandomPartitions is the randomized-partition property
// behind shard-merged telemetry: however a stream of observations is split
// across shard registries, and in whatever order the shards' snapshots fold
// back together, the merge equals the one registry that saw everything.
func TestSnapshotMergeRandomPartitions(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	names := []string{"shard.points.committed", "rounds", "point_ns", "decode_ns"}
	for trial := 0; trial < 50; trial++ {
		shards := 1 + rng.Intn(8)
		regs := make([]*Registry, shards)
		for i := range regs {
			regs[i] = NewRegistry()
		}
		whole := NewRegistry()
		for i, n := 0, 100+rng.Intn(400); i < n; i++ {
			r := regs[rng.Intn(shards)]
			name := names[rng.Intn(len(names))]
			v := int64(rng.Intn(1 << 24))
			switch rng.Intn(3) {
			case 0:
				r.Counter(name).Add(v)
				whole.Counter(name).Add(v)
			case 1:
				// Gauges merge by max of each shard's FINAL value, so only
				// monotone sets keep the partition property comparable to a
				// single registry (matching real usage: points.total,
				// high-water marks).
				if g := r.Gauge(name); g.Value() < v {
					g.Set(v)
				}
				if g := whole.Gauge(name); g.Value() < v {
					g.Set(v)
				}
			default:
				r.Histogram(name).Observe(v)
				whole.Histogram(name).Observe(v)
			}
		}
		// Fold in a random shard order.
		order := rng.Perm(shards)
		merged := Snapshot{}
		for _, i := range order {
			merged = merged.Merge(regs[i].Snapshot())
		}
		if want := whole.Snapshot(); !reflect.DeepEqual(merged, want) {
			t.Fatalf("trial %d (%d shards, order %v): merged != whole\nmerged=%+v\nwhole=%+v",
				trial, shards, order, merged, want)
		}
	}
}
