package obs

import (
	"encoding/json"
	"fmt"
	"hash/fnv"
	"os"
	"runtime"
	"runtime/debug"
	"time"
)

// StageTime is one row of the manifest's per-stage time breakdown, derived
// from every "*_ns" histogram in the registry.
type StageTime struct {
	Name    string `json:"name"`
	Count   int64  `json:"count"`
	TotalNs int64  `json:"total_ns"`
	MeanNs  int64  `json:"mean_ns"`
	P50Ns   int64  `json:"p50_ns,omitempty"`
	P95Ns   int64  `json:"p95_ns,omitempty"`
	P99Ns   int64  `json:"p99_ns,omitempty"`
	MaxNs   int64  `json:"max_ns"`
}

// EventStats is the manifest's event-loss ledger: sink throughput plus, for
// daemon jobs streaming through a Broadcaster, subscribers dropped for
// lagging and replay-history bytes lost to the retention limit.
type EventStats struct {
	Written            int64 `json:"written"`
	Dropped            int64 `json:"dropped"`
	SubscribersDropped int64 `json:"subscribers_dropped,omitempty"`
	ReplayTruncated    int64 `json:"replay_truncated_bytes,omitempty"`
}

// Manifest is the machine-readable record written next to a run's results so
// BENCH_*.json entries are reproducible artifacts: it pins the binary
// version, Go toolchain, seed, worker count and a hash of the scenario, and
// carries the per-stage time breakdown plus the full registry snapshot.
type Manifest struct {
	Tool         string      `json:"tool"`
	Version      string      `json:"version"`
	GoVersion    string      `json:"go_version"`
	OS           string      `json:"os"`
	Arch         string      `json:"arch"`
	StartedAt    time.Time   `json:"started_at"`
	WallNs       int64       `json:"wall_ns"`
	Seed         int64       `json:"seed,omitempty"`
	Workers      int         `json:"workers,omitempty"`
	Shards       int         `json:"shards,omitempty"`
	Resumed      int         `json:"resumed,omitempty"` // points restored from a journal, not re-executed
	TraceID      string      `json:"trace_id,omitempty"`
	ScenarioHash string      `json:"scenario_hash,omitempty"`
	Config       any         `json:"config,omitempty"`
	Interrupted  bool        `json:"interrupted,omitempty"`
	Stages       []StageTime `json:"stages,omitempty"`
	Result       any         `json:"result,omitempty"`
	Events       EventStats  `json:"events"`
	Registry     Snapshot    `json:"registry"`
	// Sharded runs: per-shard telemetry rows (point counts sum to this
	// run's shard.points.committed counter) and the merged worker-side
	// registry totals.
	ShardBreakdown []ShardTelemetry `json:"shard_breakdown,omitempty"`
	WorkerRegistry *Snapshot        `json:"worker_registry,omitempty"`
}

// Manifest assembles the environment, timing and registry portions of a run
// manifest; the caller fills in Seed, Workers, ScenarioHash, Config, Result
// and Interrupted before writing it out.
func (o *Observer) Manifest(tool string) Manifest {
	m := Manifest{
		Tool:      tool,
		Version:   Version(),
		GoVersion: runtime.Version(),
		OS:        runtime.GOOS,
		Arch:      runtime.GOARCH,
	}
	if o != nil {
		m.StartedAt = o.start
		m.WallNs = int64(o.clock().Sub(o.start))
		m.TraceID = o.TraceID()
		snap := o.reg.Snapshot()
		m.Registry = snap
		m.Stages = stageBreakdown(snap)
		if o.sink != nil {
			m.Events = EventStats{Written: o.sink.Written(), Dropped: o.sink.Dropped()}
		}
		if ss := o.shardStats(); ss != nil {
			m.ShardBreakdown = ss.Breakdown()
			merged := ss.Merged()
			m.WorkerRegistry = &merged
		}
	}
	return m
}

// stageBreakdown extracts the per-stage time table from every nanosecond
// histogram in the snapshot (registry convention: timing histograms end in
// "_ns").
func stageBreakdown(s Snapshot) []StageTime {
	var out []StageTime
	for _, h := range s.Histograms {
		if len(h.Name) < 3 || h.Name[len(h.Name)-3:] != "_ns" {
			continue
		}
		out = append(out, StageTime{
			Name:    h.Name[:len(h.Name)-3],
			Count:   h.Count,
			TotalNs: h.Sum,
			MeanNs:  h.Mean(),
			P50Ns:   h.Quantile(0.50),
			P95Ns:   h.Quantile(0.95),
			P99Ns:   h.Quantile(0.99),
			MaxNs:   h.Max,
		})
	}
	return out
}

// Version reports a git-describe-style identifier for the running binary:
// the embedded VCS revision (truncated, "+dirty" when the tree was modified)
// when built from a checkout, else the module version, else "unknown".
func Version() string {
	bi, ok := debug.ReadBuildInfo()
	if !ok {
		return "unknown"
	}
	var rev string
	dirty := false
	for _, s := range bi.Settings {
		switch s.Key {
		case "vcs.revision":
			rev = s.Value
		case "vcs.modified":
			dirty = s.Value == "true"
		}
	}
	if rev != "" {
		if len(rev) > 12 {
			rev = rev[:12]
		}
		if dirty {
			rev += "+dirty"
		}
		return rev
	}
	if v := bi.Main.Version; v != "" && v != "(devel)" {
		return v
	}
	return "devel"
}

// HashJSON returns a short stable fingerprint of v's JSON encoding, used to
// hash scenarios into manifests (encoding/json sorts map keys and struct
// fields are ordered, so equal configurations hash equally).
func HashJSON(v any) (string, error) {
	b, err := json.Marshal(v)
	if err != nil {
		return "", err
	}
	h := fnv.New64a()
	h.Write(b)
	return fmt.Sprintf("%016x", h.Sum64()), nil
}

// WriteManifest writes m as indented JSON to path.
func WriteManifest(path string, m Manifest) error {
	b, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(b, '\n'), 0o644)
}
