package obs

import (
	"bytes"
	"fmt"
	"runtime"
	"strings"
	"sync"
	"testing"

	"cbma/internal/leaktest"
)

func TestBroadcasterReplayAndLive(t *testing.T) {
	b := NewBroadcaster(0)
	if _, err := b.Write([]byte("one\n")); err != nil {
		t.Fatal(err)
	}

	history, live, cancel := b.Subscribe()
	defer cancel()
	if string(history) != "one\n" {
		t.Errorf("history = %q, want earlier write replayed", history)
	}
	if _, err := b.Write([]byte("two\n")); err != nil {
		t.Fatal(err)
	}
	if got := string(<-live); got != "two\n" {
		t.Errorf("live chunk = %q, want %q", got, "two\n")
	}

	if err := b.Close(); err != nil {
		t.Fatal(err)
	}
	if _, open := <-live; open {
		t.Error("live channel still open after Close")
	}
	// History survives close so finished streams stay replayable.
	history, live2, cancel2 := b.Subscribe()
	defer cancel2()
	if string(history) != "one\ntwo\n" {
		t.Errorf("post-close history = %q", history)
	}
	if _, open := <-live2; open {
		t.Error("post-close subscription delivered live data")
	}
}

func TestBroadcasterSlowSubscriberDropped(t *testing.T) {
	b := NewBroadcaster(0)
	_, live, cancel := b.Subscribe()
	defer cancel()
	for i := 0; i < subscriberBuffer+8; i++ {
		if _, err := b.Write([]byte("x\n")); err != nil {
			t.Fatal(err)
		}
	}
	// The channel was closed once its buffer overran; drain to the close.
	n := 0
	for range live {
		n++
	}
	if n != subscriberBuffer {
		t.Errorf("received %d chunks before drop, want %d", n, subscriberBuffer)
	}
	// The producer is unaffected.
	if _, err := b.Write([]byte("y\n")); err != nil {
		t.Fatal(err)
	}
}

func TestBroadcasterHistoryLimit(t *testing.T) {
	b := NewBroadcaster(8)
	if _, err := b.Write([]byte(strings.Repeat("a", 6))); err != nil {
		t.Fatal(err)
	}
	if _, err := b.Write([]byte(strings.Repeat("b", 6))); err != nil {
		t.Fatal(err)
	}
	history, _, cancel := b.Subscribe()
	cancel()
	if len(history) != 8 {
		t.Errorf("history length = %d, want capped at 8", len(history))
	}
	if got := b.Truncated(); got != 4 {
		t.Errorf("Truncated = %d, want 4", got)
	}
}

func TestBroadcasterSinkIntegration(t *testing.T) {
	b := NewBroadcaster(0)
	s := NewSink(b, 16)
	s.Emit(Event{Type: "hello"})
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	history, live, cancel := b.Subscribe()
	defer cancel()
	if !strings.Contains(string(history), `"type":"hello"`) {
		t.Errorf("history = %q, want the emitted event", history)
	}
	if _, open := <-live; open {
		t.Error("broadcaster not closed by sink drain")
	}
}

// TestBroadcasterChurn races subscribe/replay/unsubscribe cycles against a
// publisher and the final Close. Invariants under churn: every byte
// sequence a subscriber assembles (history + live chunks, in order) is a
// contiguous prefix of the published stream — replay never skips or
// reorders — and the post-Close history replays the whole stream. Run
// under -race; the package TestMain then checks no goroutine leaked.
func TestBroadcasterChurn(t *testing.T) {
	leaktest.Check(t)
	b := NewBroadcaster(0)

	const writes = 400
	var full bytes.Buffer
	for i := 0; i < writes; i++ {
		fmt.Fprintf(&full, "event-%04d\n", i)
	}

	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < writes; i++ {
			if _, err := fmt.Fprintf(b, "event-%04d\n", i); err != nil {
				t.Errorf("write %d: %v", i, err)
				return
			}
			if i%64 == 0 {
				runtime.Gosched() // let churners interleave
			}
		}
		if err := b.Close(); err != nil {
			t.Errorf("close: %v", err)
		}
	}()

	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for iter := 0; ; iter++ {
				history, live, cancel := b.Subscribe()
				got := append([]byte(nil), history...)
				closed := false
				// Odd iterations follow to the end; even ones bail early,
				// exercising cancel while the publisher is mid-stream.
				limit := len(got) + (iter%2)*full.Len()
				for chunk := range live {
					got = append(got, chunk...)
					if len(got) > limit {
						break
					}
				}
				if len(got) == full.Len() {
					closed = true
				}
				cancel()
				if !bytes.HasPrefix(full.Bytes(), got) {
					t.Errorf("churner %d iter %d: stream is not a prefix of the published bytes (len %d)", g, iter, len(got))
					return
				}
				if closed && iter > 2 {
					return
				}
			}
		}(g)
	}
	wg.Wait()

	// A finished stream stays fully replayable: no event dropped.
	history, live, cancel := b.Subscribe()
	defer cancel()
	if !bytes.Equal(history, full.Bytes()) {
		t.Errorf("post-close replay lost events: got %d bytes, want %d", len(history), full.Len())
	}
	if _, open := <-live; open {
		t.Error("post-close subscription delivered live data")
	}
	if b.Truncated() != 0 {
		t.Errorf("Truncated() = %d, want 0", b.Truncated())
	}
}
