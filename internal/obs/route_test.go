package obs

import (
	"strings"
	"testing"
)

func TestBroadcasterReplayAndLive(t *testing.T) {
	b := NewBroadcaster(0)
	if _, err := b.Write([]byte("one\n")); err != nil {
		t.Fatal(err)
	}

	history, live, cancel := b.Subscribe()
	defer cancel()
	if string(history) != "one\n" {
		t.Errorf("history = %q, want earlier write replayed", history)
	}
	if _, err := b.Write([]byte("two\n")); err != nil {
		t.Fatal(err)
	}
	if got := string(<-live); got != "two\n" {
		t.Errorf("live chunk = %q, want %q", got, "two\n")
	}

	if err := b.Close(); err != nil {
		t.Fatal(err)
	}
	if _, open := <-live; open {
		t.Error("live channel still open after Close")
	}
	// History survives close so finished streams stay replayable.
	history, live2, cancel2 := b.Subscribe()
	defer cancel2()
	if string(history) != "one\ntwo\n" {
		t.Errorf("post-close history = %q", history)
	}
	if _, open := <-live2; open {
		t.Error("post-close subscription delivered live data")
	}
}

func TestBroadcasterSlowSubscriberDropped(t *testing.T) {
	b := NewBroadcaster(0)
	_, live, cancel := b.Subscribe()
	defer cancel()
	for i := 0; i < subscriberBuffer+8; i++ {
		if _, err := b.Write([]byte("x\n")); err != nil {
			t.Fatal(err)
		}
	}
	// The channel was closed once its buffer overran; drain to the close.
	n := 0
	for range live {
		n++
	}
	if n != subscriberBuffer {
		t.Errorf("received %d chunks before drop, want %d", n, subscriberBuffer)
	}
	// The producer is unaffected.
	if _, err := b.Write([]byte("y\n")); err != nil {
		t.Fatal(err)
	}
}

func TestBroadcasterHistoryLimit(t *testing.T) {
	b := NewBroadcaster(8)
	if _, err := b.Write([]byte(strings.Repeat("a", 6))); err != nil {
		t.Fatal(err)
	}
	if _, err := b.Write([]byte(strings.Repeat("b", 6))); err != nil {
		t.Fatal(err)
	}
	history, _, cancel := b.Subscribe()
	cancel()
	if len(history) != 8 {
		t.Errorf("history length = %d, want capped at 8", len(history))
	}
	if got := b.Truncated(); got != 4 {
		t.Errorf("Truncated = %d, want 4", got)
	}
}

func TestBroadcasterSinkIntegration(t *testing.T) {
	b := NewBroadcaster(0)
	s := NewSink(b, 16)
	s.Emit(Event{Type: "hello"})
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	history, live, cancel := b.Subscribe()
	defer cancel()
	if !strings.Contains(string(history), `"type":"hello"`) {
		t.Errorf("history = %q, want the emitted event", history)
	}
	if _, open := <-live; open {
		t.Error("broadcaster not closed by sink drain")
	}
}
