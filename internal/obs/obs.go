// Package obs is the simulator's zero-dependency telemetry layer: an atomic
// counter/gauge/histogram registry with mergeable snapshots, lightweight
// spans for timing pipeline stages, a ring-buffered JSONL event sink, a live
// campaign progress line, and a machine-readable run-manifest writer.
//
// Telemetry is strictly observational and lives on the opposite side of the
// determinism contract from results (DESIGN.md, "Observability"): telemetry
// may read time — through an injected Clock, never the wall clock directly —
// while results may not. Nothing in this package consumes simulation
// randomness or feeds sim.Metrics, so a run's Metrics are bit-identical with
// an Observer attached or absent, at any worker count (enforced by
// sim.TestRunObsEquivalence and the nodeterm/obsclock analyzers).
//
// Every instrument is nil-safe: a nil *Observer, *Counter, *Gauge or
// *Histogram turns the corresponding call into a no-op, so instrumented code
// carries no "is telemetry on" branches of its own.
package obs

import (
	"sync"
	"sync/atomic"
	"time"
)

// Config parameterizes New.
type Config struct {
	// Clock supplies every timestamp the observer reads. Nil selects the
	// zero clock (all spans and ETAs read as zero); binaries pass
	// SystemClock(), tests pass StepClock for reproducible timings.
	Clock Clock
	// Sink, when non-nil, receives the structured events (round lifecycle,
	// fault firings, power-control decisions, node-selection moves).
	Sink *Sink
	// Progress, when non-nil, renders the live campaign progress line.
	Progress *Progress
}

// Observer bundles the registry, clock, event sink and progress line that
// instrumented code reports into. A single Observer is shared by every
// goroutine of a run (engines, round workers, campaign points); all its
// instruments are concurrency-safe.
type Observer struct {
	clock Clock
	start time.Time
	reg   *Registry
	sink  *Sink
	prog  *Progress

	trace atomic.Value // string; campaign trace ID (see trace.go)

	mu     sync.Mutex
	shards *ShardStats // per-shard telemetry, created on first use (see shardstats.go)
}

// New builds an observer with a fresh registry.
func New(cfg Config) *Observer {
	clock := cfg.Clock
	if clock == nil {
		clock = func() time.Time { return time.Time{} }
	}
	return &Observer{
		clock: clock,
		start: clock(),
		reg:   NewRegistry(),
		sink:  cfg.Sink,
		prog:  cfg.Progress,
	}
}

// Registry exposes the observer's metric registry (nil for a nil observer).
func (o *Observer) Registry() *Registry {
	if o == nil {
		return nil
	}
	return o.reg
}

// Sink exposes the observer's event sink, if any.
func (o *Observer) Sink() *Sink {
	if o == nil {
		return nil
	}
	return o.sink
}

// Now reads the injected clock (zero time for a nil observer).
func (o *Observer) Now() time.Time {
	if o == nil {
		return time.Time{}
	}
	return o.clock()
}

// Started is the observer's construction time on its own clock — the run
// epoch that event timestamps are relative to.
func (o *Observer) Started() time.Time {
	if o == nil {
		return time.Time{}
	}
	return o.start
}

// Counter returns the named registry counter (nil for a nil observer).
func (o *Observer) Counter(name string) *Counter {
	if o == nil {
		return nil
	}
	return o.reg.Counter(name)
}

// Gauge returns the named registry gauge (nil for a nil observer).
func (o *Observer) Gauge(name string) *Gauge {
	if o == nil {
		return nil
	}
	return o.reg.Gauge(name)
}

// Histogram returns the named registry histogram (nil for a nil observer).
func (o *Observer) Histogram(name string) *Histogram {
	if o == nil {
		return nil
	}
	return o.reg.Histogram(name)
}

// Span is an in-flight timing measurement. It is a plain value — starting
// and ending a span allocates nothing, which keeps spans admissible inside
// //cbma:hotpath functions.
type Span struct {
	clock Clock
	h     *Histogram
	start time.Time
}

// Start opens a span that records its duration (in nanoseconds) into h when
// ended. A nil observer or histogram yields an inert span.
func (o *Observer) Start(h *Histogram) Span {
	if o == nil || h == nil {
		return Span{}
	}
	return Span{clock: o.clock, h: h, start: o.clock()}
}

// End closes the span, observing and returning the elapsed nanoseconds
// (zero for an inert span) — the return value lets emitters attach the
// duration to an event without a second clock read.
func (s Span) End() int64 {
	if s.h == nil {
		return 0
	}
	ns := int64(s.clock().Sub(s.start))
	s.h.Observe(ns)
	return ns
}

// EmitsEvents reports whether Emit will actually deliver — callers use it to
// skip building event field maps when no sink is attached.
func (o *Observer) EmitsEvents() bool {
	return o != nil && o.sink != nil
}

// Emit timestamps an event against the run epoch and hands it to the sink.
// When the observer carries a trace ID the event is tagged with a
// "trace_id" field (callers pass fresh field maps, so adding the tag never
// aliases shared state). No-op without a sink; never blocks (see
// Sink.Emit).
func (o *Observer) Emit(typ string, fields map[string]any) {
	if o == nil || o.sink == nil {
		return
	}
	if id := o.TraceID(); id != "" {
		if fields == nil {
			fields = make(map[string]any, 1)
		}
		if _, ok := fields["trace_id"]; !ok {
			fields["trace_id"] = id
		}
	}
	o.sink.Emit(Event{T: int64(o.clock().Sub(o.start)), Type: typ, Fields: fields})
}

// CampaignStart begins a progress segment of total points and emits the
// campaign_start event. Campaigns are sequential per observer; the progress
// line resets for each.
func (o *Observer) CampaignStart(what string, total int) {
	if o == nil {
		return
	}
	if o.EmitsEvents() {
		o.Emit("campaign_start", map[string]any{"what": what, "points": total})
	}
	if o.prog != nil {
		o.prog.Start(what, total)
	}
}

// CampaignRestored accounts n points that were resolved before execution
// began — journal restores and pre-failed points. They advance the
// progress line as already-done but are excluded from the per-point pace
// the ETA extrapolates from (see Progress.Prime), and a campaign_restored
// event records them in the stream.
func (o *Observer) CampaignRestored(what string, n int) {
	if o == nil || n <= 0 {
		return
	}
	if o.EmitsEvents() {
		o.Emit("campaign_restored", map[string]any{"what": what, "points": n})
	}
	if o.prog != nil {
		o.prog.Prime(n)
	}
}

// CampaignPoint advances the progress line by one completed point.
func (o *Observer) CampaignPoint() {
	if o == nil || o.prog == nil {
		return
	}
	o.prog.Step()
}

// CampaignEnd closes the progress segment and emits the campaign_end event.
func (o *Observer) CampaignEnd(what string) {
	if o == nil {
		return
	}
	if o.prog != nil {
		o.prog.Finish()
	}
	if o.EmitsEvents() {
		o.Emit("campaign_end", map[string]any{"what": what})
	}
}
