package obs

import (
	"math/bits"
	"sync/atomic"
)

// numBuckets is the fixed bucket count: bucket 0 holds non-positive values,
// bucket i (1..64) holds values in [2^(i-1), 2^i). Log-spaced buckets cover
// the full int64 range (nanoseconds from 1ns to ~292y) with no configuration
// and make snapshots from different runs mergeable by construction.
const numBuckets = 65

// Histogram is a lock-free log2-bucketed histogram. Observe is a few atomic
// adds — safe to call from every round worker concurrently — and all methods
// are nil-receiver-safe no-ops so instrumented code needs no enablement
// branches.
type Histogram struct {
	count   atomic.Int64
	sum     atomic.Int64
	min     atomic.Int64 // valid only when count > 0
	max     atomic.Int64
	buckets [numBuckets]atomic.Int64
}

// bucketIndex maps a value to its log2 bucket.
func bucketIndex(v int64) int {
	if v <= 0 {
		return 0
	}
	return bits.Len64(uint64(v))
}

// BucketLow returns the inclusive lower bound of bucket i (0 for the
// non-positive bucket).
func BucketLow(i int) int64 {
	if i <= 0 {
		return 0
	}
	return 1 << (i - 1)
}

// Observe records one value.
func (h *Histogram) Observe(v int64) {
	if h == nil {
		return
	}
	h.buckets[bucketIndex(v)].Add(1)
	h.sum.Add(v)
	if h.count.Add(1) == 1 {
		// First observation seeds min/max; racing observers fix up below.
		h.min.Store(v)
		h.max.Store(v)
		return
	}
	for {
		cur := h.min.Load()
		if v >= cur || h.min.CompareAndSwap(cur, v) {
			break
		}
	}
	for {
		cur := h.max.Load()
		if v <= cur || h.max.CompareAndSwap(cur, v) {
			break
		}
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the running total of observed values.
func (h *Histogram) Sum() int64 {
	if h == nil {
		return 0
	}
	return h.sum.Load()
}

// snapshot captures the histogram into a mergeable value.
func (h *Histogram) snapshot(name string) HistogramSnapshot {
	s := HistogramSnapshot{
		Name:  name,
		Count: h.count.Load(),
		Sum:   h.sum.Load(),
	}
	if s.Count > 0 {
		s.Min = h.min.Load()
		s.Max = h.max.Load()
	}
	for i := range h.buckets {
		if n := h.buckets[i].Load(); n != 0 {
			s.Buckets = append(s.Buckets, Bucket{Low: BucketLow(i), Count: n})
		}
	}
	return s
}

// Bucket is one populated histogram bucket in a snapshot: Count observations
// at values >= Low (and below the next bucket's Low).
type Bucket struct {
	Low   int64 `json:"low"`
	Count int64 `json:"count"`
}

// HistogramSnapshot is an immutable, mergeable capture of a Histogram.
type HistogramSnapshot struct {
	Name    string   `json:"name"`
	Count   int64    `json:"count"`
	Sum     int64    `json:"sum"`
	Min     int64    `json:"min,omitempty"`
	Max     int64    `json:"max,omitempty"`
	Buckets []Bucket `json:"buckets,omitempty"`
}

// Mean returns the average observed value, or 0 with no observations.
func (s HistogramSnapshot) Mean() int64 {
	if s.Count == 0 {
		return 0
	}
	return s.Sum / s.Count
}

// Quantile estimates the q-quantile (0..1) of the observed values by
// linear interpolation within the log2 bucket containing the target rank,
// clamped to the observed min/max — so p50/p95/p99 are exact to within one
// bucket's width (a factor of 2) and exact at the extremes. Returns 0 with
// no observations.
func (s HistogramSnapshot) Quantile(q float64) int64 {
	if s.Count == 0 {
		return 0
	}
	if q <= 0 {
		return s.Min
	}
	if q >= 1 {
		return s.Max
	}
	rank := q * float64(s.Count)
	var seen float64
	for _, b := range s.Buckets {
		prev := seen
		seen += float64(b.Count)
		if seen < rank {
			continue
		}
		lo, hi := b.Low, bucketHigh(b.Low)
		if lo < s.Min {
			lo = s.Min
		}
		if hi > s.Max {
			hi = s.Max
		}
		if hi <= lo {
			return lo
		}
		frac := (rank - prev) / float64(b.Count)
		return lo + int64(frac*float64(hi-lo))
	}
	return s.Max
}

// merge combines two snapshots of the same histogram name.
func (s HistogramSnapshot) merge(o HistogramSnapshot) HistogramSnapshot {
	if s.Count == 0 {
		return o
	}
	if o.Count == 0 {
		return s
	}
	out := HistogramSnapshot{
		Name:  s.Name,
		Count: s.Count + o.Count,
		Sum:   s.Sum + o.Sum,
		Min:   min(s.Min, o.Min),
		Max:   max(s.Max, o.Max),
	}
	byLow := map[int64]int64{}
	for _, b := range s.Buckets {
		byLow[b.Low] += b.Count
	}
	for _, b := range o.Buckets {
		byLow[b.Low] += b.Count
	}
	lows := make([]int64, 0, len(byLow))
	for low := range byLow {
		lows = append(lows, low)
	}
	sortInt64s(lows)
	for _, low := range lows {
		out.Buckets = append(out.Buckets, Bucket{Low: low, Count: byLow[low]})
	}
	return out
}
