package dsp

import "math"

// DB converts a linear power ratio to decibels. Non-positive ratios map to
// -Inf, matching the mathematical limit.
func DB(ratio float64) float64 {
	if ratio <= 0 {
		return math.Inf(-1)
	}
	return 10 * math.Log10(ratio)
}

// FromDB converts decibels to a linear power ratio.
func FromDB(db float64) float64 {
	return math.Pow(10, db/10)
}

// DBm converts a power in watts to dBm.
func DBm(watts float64) float64 {
	return DB(watts) + 30
}

// FromDBm converts dBm to watts.
func FromDBm(dbm float64) float64 {
	return FromDB(dbm - 30)
}

// AmplitudeForPower returns the real amplitude a such that a constant
// complex-baseband signal of magnitude a carries per-sample power p.
func AmplitudeForPower(p float64) float64 {
	if p <= 0 {
		return 0
	}
	return math.Sqrt(p)
}

// SNRdB estimates the signal-to-noise ratio in dB given a measured total
// power (signal+noise) and a known noise power. When the measured power does
// not exceed the noise floor the function returns -Inf; this takes priority
// over a vanishing noise estimate, so a zero-power measurement is -Inf
// rather than +Inf even when the noise power is also zero.
func SNRdB(totalPower, noisePower float64) float64 {
	sig := totalPower - noisePower
	if sig <= 0 {
		return math.Inf(-1)
	}
	if noisePower <= 0 {
		return math.Inf(1)
	}
	return DB(sig / noisePower)
}

// NoisePowerFromDensity returns the in-band noise power for a one-sided
// noise power spectral density n0 (W/Hz) observed over bandwidth bw (Hz).
func NoisePowerFromDensity(n0, bw float64) float64 {
	if n0 < 0 || bw < 0 {
		return 0
	}
	return n0 * bw
}

// ThermalNoiseDBm returns the thermal noise floor in dBm for the given
// bandwidth in Hz at a receiver noise figure nfDB, using kT = -174 dBm/Hz at
// room temperature.
func ThermalNoiseDBm(bwHz, nfDB float64) float64 {
	if bwHz <= 0 {
		return math.Inf(-1)
	}
	return -174 + 10*math.Log10(bwHz) + nfDB
}
