package dsp

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestMovingAverageWindowOne(t *testing.T) {
	x := []float64{3, 1, 4, 1, 5}
	got := MovingAverage(x, 1)
	for i := range x {
		if got[i] != x[i] {
			t.Fatalf("w=1 must be identity; sample %d = %v", i, got[i])
		}
	}
}

func TestMovingAverageKnown(t *testing.T) {
	x := []float64{2, 4, 6, 8}
	got := MovingAverage(x, 2)
	want := []float64{2, 3, 5, 7}
	for i := range want {
		if !almostEqual(got[i], want[i], floatTol) {
			t.Errorf("sample %d = %v, want %v", i, got[i], want[i])
		}
	}
}

func TestMovingAverageConstantInput(t *testing.T) {
	x := make([]float64, 50)
	for i := range x {
		x[i] = 7.5
	}
	got := MovingAverage(x, 8)
	for i, v := range got {
		if !almostEqual(v, 7.5, floatTol) {
			t.Fatalf("constant input must stay constant; sample %d = %v", i, v)
		}
	}
}

func TestMovingAverageSmoothsStep(t *testing.T) {
	// A step from 0 to 1 should ramp over exactly w samples.
	x := make([]float64, 40)
	for i := 20; i < 40; i++ {
		x[i] = 1
	}
	const w = 10
	got := MovingAverage(x, w)
	if got[19] != 0 {
		t.Errorf("before step: %v, want 0", got[19])
	}
	if !almostEqual(got[20], 1.0/w, floatTol) {
		t.Errorf("first step sample: %v, want %v", got[20], 1.0/w)
	}
	if !almostEqual(got[29], 1, floatTol) {
		t.Errorf("after w samples: %v, want 1", got[29])
	}
}

func TestMovingAveragerMatchesBatch(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + r.Intn(100)
		w := 1 + r.Intn(12)
		x := make([]float64, n)
		for i := range x {
			x[i] = r.NormFloat64()
		}
		batch := MovingAverage(x, w)
		m := NewMovingAverager(w)
		for i, v := range x {
			if got := m.Push(v); !almostEqual(got, batch[i], 1e-9) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestMovingAveragerReset(t *testing.T) {
	m := NewMovingAverager(4)
	m.Push(100)
	m.Push(200)
	m.Reset()
	if got := m.Push(6); got != 6 {
		t.Errorf("after Reset first Push = %v, want 6", got)
	}
}

func TestNewMovingAveragerClampsWindow(t *testing.T) {
	m := NewMovingAverager(0)
	if got := m.Push(3); got != 3 {
		t.Errorf("clamped window: got %v, want 3", got)
	}
}

func TestFIRIdentity(t *testing.T) {
	r := rand.New(rand.NewSource(31))
	x := randomVector(r, 32)
	got := FIR(x, []float64{1})
	for i := range x {
		if got[i] != x[i] {
			t.Fatalf("identity FIR changed sample %d", i)
		}
	}
}

func TestFIRDelay(t *testing.T) {
	x := []complex128{1, 2, 3, 4}
	got := FIR(x, []float64{0, 1}) // one-sample delay
	want := []complex128{0, 1, 2, 3}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("sample %d = %v, want %v", i, got[i], want[i])
		}
	}
}

func TestBoxcarTapsSumToOne(t *testing.T) {
	for _, n := range []int{1, 3, 10, 0, -2} {
		taps := BoxcarTaps(n)
		var sum float64
		for _, h := range taps {
			sum += h
		}
		if !almostEqual(sum, 1, floatTol) {
			t.Errorf("n=%d: taps sum %v, want 1", n, sum)
		}
	}
}

func TestDCBlockRemovesMean(t *testing.T) {
	r := rand.New(rand.NewSource(32))
	x := randomVector(r, 64)
	for i := range x {
		x[i] += 5 + 2i // strong DC leakage
	}
	y := DCBlock(x)
	var mean complex128
	for _, v := range y {
		mean += v
	}
	mean /= complex(float64(len(y)), 0)
	if !complexAlmostEqual(mean, 0, 1e-9) {
		t.Errorf("residual mean %v, want 0", mean)
	}
}

func TestDCBlockEmpty(t *testing.T) {
	if got := DCBlock(nil); got != nil {
		t.Errorf("DCBlock(nil) = %v, want nil", got)
	}
}
