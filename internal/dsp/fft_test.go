package dsp

import (
	"math"
	"math/cmplx"
	"math/rand"
	"testing"
)

func TestIsPowerOfTwo(t *testing.T) {
	tests := []struct {
		n    int
		want bool
	}{
		{0, false}, {1, true}, {2, true}, {3, false}, {4, true},
		{1023, false}, {1024, true}, {-4, false},
	}
	for _, tc := range tests {
		if got := IsPowerOfTwo(tc.n); got != tc.want {
			t.Errorf("IsPowerOfTwo(%d) = %v, want %v", tc.n, got, tc.want)
		}
	}
}

func TestNextPowerOfTwo(t *testing.T) {
	tests := []struct{ n, want int }{
		{0, 1}, {1, 1}, {2, 2}, {3, 4}, {4, 4}, {5, 8}, {1000, 1024},
	}
	for _, tc := range tests {
		if got := NextPowerOfTwo(tc.n); got != tc.want {
			t.Errorf("NextPowerOfTwo(%d) = %d, want %d", tc.n, got, tc.want)
		}
	}
}

func TestFFTRejectsNonPowerOfTwo(t *testing.T) {
	if _, err := FFT(make([]complex128, 3)); err != ErrNotPowerOfTwo {
		t.Fatalf("got err %v, want ErrNotPowerOfTwo", err)
	}
}

func TestFFTImpulse(t *testing.T) {
	// FFT of a unit impulse is all-ones.
	x := make([]complex128, 8)
	x[0] = 1
	f, err := FFT(x)
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range f {
		if !complexAlmostEqual(v, 1, 1e-12) {
			t.Errorf("bin %d = %v, want 1", i, v)
		}
	}
}

func TestFFTSingleTone(t *testing.T) {
	// A tone at bin k concentrates all energy in that bin.
	const n, k = 64, 5
	x := Tone(n, float64(k)/n, 0)
	f, err := FFT(x)
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range f {
		mag := cmplx.Abs(v)
		if i == k {
			if !almostEqual(mag, n, 1e-9) {
				t.Errorf("bin %d magnitude %v, want %d", i, mag, n)
			}
		} else if mag > 1e-9 {
			t.Errorf("bin %d magnitude %v, want ~0", i, mag)
		}
	}
}

func TestFFTRoundTrip(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	for _, n := range []int{1, 2, 4, 16, 128, 1024} {
		x := randomVector(r, n)
		f, err := FFT(x)
		if err != nil {
			t.Fatal(err)
		}
		back, err := IFFT(f)
		if err != nil {
			t.Fatal(err)
		}
		for i := range x {
			if !complexAlmostEqual(back[i], x[i], 1e-9) {
				t.Fatalf("n=%d sample %d: %v != %v", n, i, back[i], x[i])
			}
		}
	}
}

func TestFFTParseval(t *testing.T) {
	r := rand.New(rand.NewSource(12))
	x := randomVector(r, 256)
	f, err := FFT(x)
	if err != nil {
		t.Fatal(err)
	}
	// Parseval: Σ|x|² = (1/N) Σ|X|².
	if !almostEqual(Energy(x), Energy(f)/256, 1e-6) {
		t.Errorf("Parseval violated: time %v vs freq %v", Energy(x), Energy(f)/256)
	}
}

func TestFFTLinearity(t *testing.T) {
	r := rand.New(rand.NewSource(13))
	a := randomVector(r, 64)
	b := randomVector(r, 64)
	sum, err := Add(a, b)
	if err != nil {
		t.Fatal(err)
	}
	fa, _ := FFT(a)
	fb, _ := FFT(b)
	fsum, _ := FFT(sum)
	for i := range fsum {
		if !complexAlmostEqual(fsum[i], fa[i]+fb[i], 1e-9) {
			t.Fatalf("bin %d: FFT not linear", i)
		}
	}
}

func TestFFTCorrelateMatchesDirect(t *testing.T) {
	r := rand.New(rand.NewSource(14))
	x := randomVector(r, 200)
	tmpl := randomVector(r, 31)
	direct := CrossCorrelate(x, tmpl)
	viaFFT, err := FFTCorrelate(x, tmpl)
	if err != nil {
		t.Fatal(err)
	}
	if len(direct) != len(viaFFT) {
		t.Fatalf("length %d vs %d", len(direct), len(viaFFT))
	}
	for i := range direct {
		if !complexAlmostEqual(direct[i], viaFFT[i], 1e-6) {
			t.Fatalf("lag %d: direct %v vs fft %v", i, direct[i], viaFFT[i])
		}
	}
}

func TestFFTCorrelateBadInput(t *testing.T) {
	if _, err := FFTCorrelate(make([]complex128, 4), make([]complex128, 8)); err == nil {
		t.Fatal("template longer than input must fail")
	}
	if _, err := FFTCorrelate(make([]complex128, 4), nil); err == nil {
		t.Fatal("empty template must fail")
	}
}

func TestPowerSpectrumTone(t *testing.T) {
	const n, k = 32, 3
	x := Tone(n, float64(k)/n, 0.7)
	ps, err := PowerSpectrum(x)
	if err != nil {
		t.Fatal(err)
	}
	peak, _, err := ArgMaxFloat(ps)
	if err != nil {
		t.Fatal(err)
	}
	if peak != k {
		t.Errorf("spectrum peak at bin %d, want %d", peak, k)
	}
	var total float64
	for _, p := range ps {
		total += p
	}
	if !almostEqual(total, ps[k], 1e-9) {
		t.Errorf("tone energy should concentrate in one bin: total %v, peak %v", total, ps[k])
	}
}

func BenchmarkFFT1024(b *testing.B) {
	r := rand.New(rand.NewSource(99))
	x := randomVector(r, 1024)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := FFT(x); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCrossCorrelateDirect(b *testing.B) {
	r := rand.New(rand.NewSource(98))
	x := randomVector(r, 4096)
	tmpl := randomVector(r, 64)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		CrossCorrelate(x, tmpl)
	}
}

func BenchmarkFFTCorrelate(b *testing.B) {
	r := rand.New(rand.NewSource(97))
	x := randomVector(r, 4096)
	tmpl := randomVector(r, 64)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := FFTCorrelate(x, tmpl); err != nil {
			b.Fatal(err)
		}
	}
}

func TestGoertzelMatchesFFTBin(t *testing.T) {
	r := rand.New(rand.NewSource(15))
	const n = 64
	x := make([]float64, n)
	for i := range x {
		x[i] = r.NormFloat64() + math.Sin(2*math.Pi*0.125*float64(i))
	}
	cx := make([]complex128, n)
	for i := range x {
		cx[i] = complex(x[i], 0)
	}
	f, err := FFT(cx)
	if err != nil {
		t.Fatal(err)
	}
	k := 8 // 0.125 * 64
	want := real(f[k])*real(f[k]) + imag(f[k])*imag(f[k])
	got := Goertzel(x, float64(k)/n)
	if !almostEqual(got, want, 1e-6*want) {
		t.Errorf("Goertzel = %v, FFT bin power = %v", got, want)
	}
}
