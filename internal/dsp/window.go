package dsp

import (
	"errors"
	"math"
)

// ErrBadWindow is returned for non-positive window lengths or invalid
// filter specifications.
var ErrBadWindow = errors.New("dsp: invalid window or filter specification")

// WindowFn names a taper shape.
type WindowFn int

// Supported window shapes.
const (
	WindowRect WindowFn = iota + 1
	WindowHann
	WindowHamming
	WindowBlackman
)

// Window returns n samples of the requested taper. For n == 1 the window
// is the single value 1.
func Window(fn WindowFn, n int) ([]float64, error) {
	if n <= 0 {
		return nil, ErrBadWindow
	}
	out := make([]float64, n)
	if n == 1 {
		out[0] = 1
		return out, nil
	}
	den := float64(n - 1)
	for i := range out {
		x := float64(i) / den
		switch fn {
		case WindowRect:
			out[i] = 1
		case WindowHann:
			out[i] = 0.5 - 0.5*math.Cos(2*math.Pi*x)
		case WindowHamming:
			out[i] = 0.54 - 0.46*math.Cos(2*math.Pi*x)
		case WindowBlackman:
			out[i] = 0.42 - 0.5*math.Cos(2*math.Pi*x) + 0.08*math.Cos(4*math.Pi*x)
		default:
			return nil, ErrBadWindow
		}
	}
	return out, nil
}

// LowpassTaps designs a linear-phase FIR low-pass filter by the windowed-
// sinc method: cutoff is the normalized cutoff frequency (cycles per
// sample, 0 < cutoff < 0.5), taps the filter length (made odd internally so
// the filter has a symmetric center), and win the taper that controls
// stop-band rejection (Hamming ≈ −53 dB, Blackman ≈ −74 dB). The taps are
// normalized to unit DC gain. Pulse-shaping experiments band-limit the
// tag's rectangular chips with this.
func LowpassTaps(cutoff float64, taps int, win WindowFn) ([]float64, error) {
	if cutoff <= 0 || cutoff >= 0.5 || taps <= 0 {
		return nil, ErrBadWindow
	}
	if taps%2 == 0 {
		taps++
	}
	w, err := Window(win, taps)
	if err != nil {
		return nil, err
	}
	mid := taps / 2
	h := make([]float64, taps)
	var sum float64
	for i := range h {
		m := float64(i - mid)
		var s float64
		if m == 0 {
			s = 2 * cutoff
		} else {
			s = math.Sin(2*math.Pi*cutoff*m) / (math.Pi * m)
		}
		h[i] = s * w[i]
		sum += h[i]
	}
	if sum == 0 {
		return nil, ErrBadWindow
	}
	for i := range h {
		h[i] /= sum
	}
	return h, nil
}

// FrequencyResponseDB evaluates the magnitude response of a real FIR filter
// at normalized frequency f (cycles per sample), in dB.
func FrequencyResponseDB(h []float64, f float64) float64 {
	var re, im float64
	for n, tap := range h {
		theta := -2 * math.Pi * f * float64(n)
		re += tap * math.Cos(theta)
		im += tap * math.Sin(theta)
	}
	return DB(re*re + im*im)
}
