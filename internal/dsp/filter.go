package dsp

// MovingAverage filters x with a length-w rectangular window, returning one
// output per input sample. Output sample i is the mean of the w most recent
// inputs (fewer at the start, where the window has not yet filled). This is
// the filter the CBMA receiver applies to the received energy level before
// frame detection (§III-B of the paper).
func MovingAverage(x []float64, w int) []float64 {
	if w <= 1 || len(x) == 0 {
		out := make([]float64, len(x))
		copy(out, x)
		return out
	}
	out := make([]float64, len(x))
	var acc float64
	for i := range x {
		acc += x[i]
		if i >= w {
			acc -= x[i-w]
		}
		n := i + 1
		if n > w {
			n = w
		}
		out[i] = acc / float64(n)
	}
	return out
}

// MovingAverager is the streaming form of MovingAverage. Its zero value is
// not usable; construct with NewMovingAverager.
type MovingAverager struct {
	buf  []float64
	head int
	n    int
	acc  float64
}

// NewMovingAverager returns a streaming moving-average filter with window
// size w (clamped to a minimum of 1).
func NewMovingAverager(w int) *MovingAverager {
	if w < 1 {
		w = 1
	}
	return &MovingAverager{buf: make([]float64, w)}
}

// Push feeds one sample and returns the current windowed mean.
func (m *MovingAverager) Push(v float64) float64 {
	if m.n == len(m.buf) {
		m.acc -= m.buf[m.head]
	} else {
		m.n++
	}
	m.buf[m.head] = v
	m.acc += v
	m.head = (m.head + 1) % len(m.buf)
	return m.acc / float64(m.n)
}

// Reset clears the filter state.
func (m *MovingAverager) Reset() {
	for i := range m.buf {
		m.buf[i] = 0
	}
	m.head, m.n, m.acc = 0, 0, 0
}

// FIR filters x with the real coefficient vector h (direct-form convolution,
// "same" alignment: output i uses taps ending at input i). The complex input
// is filtered component-wise.
func FIR(x []complex128, h []float64) []complex128 {
	out := make([]complex128, len(x))
	for i := range x {
		var acc complex128
		for k := range h {
			j := i - k
			if j < 0 {
				break
			}
			acc += x[j] * complex(h[k], 0)
		}
		out[i] = acc
	}
	return out
}

// BoxcarTaps returns n equal taps summing to one — a simple low-pass used to
// band-limit chip transitions.
func BoxcarTaps(n int) []float64 {
	if n < 1 {
		n = 1
	}
	h := make([]float64, n)
	for i := range h {
		h[i] = 1 / float64(n)
	}
	return h
}

// DCBlock removes the mean of x, returning a zero-mean copy. Backscatter
// receivers apply this to suppress the strong excitation-source leakage at
// DC after downconversion.
func DCBlock(x []complex128) []complex128 {
	if len(x) == 0 {
		return nil
	}
	var mean complex128
	for i := range x {
		mean += x[i]
	}
	mean /= complex(float64(len(x)), 0)
	out := make([]complex128, len(x))
	for i := range x {
		out[i] = x[i] - mean
	}
	return out
}
