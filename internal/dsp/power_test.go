package dsp

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDBKnownValues(t *testing.T) {
	tests := []struct {
		ratio float64
		want  float64
	}{
		{1, 0}, {10, 10}, {100, 20}, {0.1, -10}, {2, 3.0102999566},
	}
	for _, tc := range tests {
		if got := DB(tc.ratio); !almostEqual(got, tc.want, 1e-6) {
			t.Errorf("DB(%v) = %v, want %v", tc.ratio, got, tc.want)
		}
	}
}

func TestDBNonPositive(t *testing.T) {
	if got := DB(0); !math.IsInf(got, -1) {
		t.Errorf("DB(0) = %v, want -Inf", got)
	}
	if got := DB(-5); !math.IsInf(got, -1) {
		t.Errorf("DB(-5) = %v, want -Inf", got)
	}
}

func TestDBRoundTrip(t *testing.T) {
	f := func(db float64) bool {
		if math.IsNaN(db) || math.IsInf(db, 0) {
			return true
		}
		db = math.Mod(db, 200) // keep within float range
		return almostEqual(DB(FromDB(db)), db, 1e-9)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestDBmRoundTrip(t *testing.T) {
	for _, dbm := range []float64{-90, -30, 0, 20} {
		w := FromDBm(dbm)
		if got := DBm(w); !almostEqual(got, dbm, 1e-9) {
			t.Errorf("DBm(FromDBm(%v)) = %v", dbm, got)
		}
	}
	// 0 dBm is one milliwatt.
	if got := FromDBm(0); !almostEqual(got, 1e-3, 1e-12) {
		t.Errorf("FromDBm(0) = %v, want 1e-3", got)
	}
}

func TestAmplitudeForPower(t *testing.T) {
	if got := AmplitudeForPower(4); !almostEqual(got, 2, floatTol) {
		t.Errorf("AmplitudeForPower(4) = %v, want 2", got)
	}
	if got := AmplitudeForPower(-1); got != 0 {
		t.Errorf("AmplitudeForPower(-1) = %v, want 0", got)
	}
}

func TestSNRdB(t *testing.T) {
	// total = signal + noise; with signal = 9·noise, SNR ≈ 9.54 dB.
	got := SNRdB(10, 1)
	if !almostEqual(got, DB(9), 1e-9) {
		t.Errorf("SNRdB(10,1) = %v, want %v", got, DB(9))
	}
	if got := SNRdB(0.5, 1); !math.IsInf(got, -1) {
		t.Errorf("below noise floor: %v, want -Inf", got)
	}
	if got := SNRdB(1, 0); !math.IsInf(got, 1) {
		t.Errorf("zero noise: %v, want +Inf", got)
	}
}

// TestSNRdBQuadrants pins the guard order over the sign quadrants of
// (totalPower, noisePower). The no-signal check must win: SNRdB(0, 0) is
// -Inf (nothing measured), not +Inf from the zero-noise short-circuit.
func TestSNRdBQuadrants(t *testing.T) {
	negInf, posInf := math.Inf(-1), math.Inf(1)
	tests := []struct {
		name         string
		total, noise float64
		want         float64
	}{
		{"zero measurement, zero noise", 0, 0, negInf},
		{"positive signal, zero noise", 1, 0, posInf},
		{"positive signal, negative noise estimate", 1, -0.5, posInf},
		{"zero measurement, positive noise", 0, 1, negInf},
		{"at the noise floor", 1, 1, negInf},
		{"below the noise floor", 0.5, 1, negInf},
		{"negative measurement, zero noise", -1, 0, negInf},
		{"negative measurement, negative noise, no excess", -2, -1, negInf},
		{"above a positive floor", 10, 1, DB(9)},
	}
	for _, tc := range tests {
		got := SNRdB(tc.total, tc.noise)
		if math.IsInf(tc.want, -1) && !math.IsInf(got, -1) {
			t.Errorf("%s: SNRdB(%v, %v) = %v, want -Inf", tc.name, tc.total, tc.noise, got)
			continue
		}
		if math.IsInf(tc.want, 1) && !math.IsInf(got, 1) {
			t.Errorf("%s: SNRdB(%v, %v) = %v, want +Inf", tc.name, tc.total, tc.noise, got)
			continue
		}
		if !math.IsInf(tc.want, 0) && !almostEqual(got, tc.want, 1e-9) {
			t.Errorf("%s: SNRdB(%v, %v) = %v, want %v", tc.name, tc.total, tc.noise, got, tc.want)
		}
	}
}

func TestNoisePowerFromDensity(t *testing.T) {
	if got := NoisePowerFromDensity(2e-21, 1e6); !almostEqual(got, 2e-15, 1e-27) {
		t.Errorf("got %v", got)
	}
	if got := NoisePowerFromDensity(-1, 10); got != 0 {
		t.Errorf("negative density: %v, want 0", got)
	}
}

func TestThermalNoiseDBm(t *testing.T) {
	// 1 Hz, 0 dB NF → -174 dBm.
	if got := ThermalNoiseDBm(1, 0); !almostEqual(got, -174, 1e-9) {
		t.Errorf("1 Hz floor = %v, want -174", got)
	}
	// 20 MHz WiFi channel, 6 dB NF → ≈ -95 dBm.
	got := ThermalNoiseDBm(20e6, 6)
	if !almostEqual(got, -94.99, 0.02) {
		t.Errorf("20 MHz floor = %v, want ≈ -95", got)
	}
	if got := ThermalNoiseDBm(0, 0); !math.IsInf(got, -1) {
		t.Errorf("zero bandwidth: %v, want -Inf", got)
	}
}
