package dsp

// PrefixSumInto writes the running sums of x into dst: dst[0] = 0 and
// dst[i+1] = dst[i] + x[i], so any window sum x[lo:hi) is the O(1)
// difference dst[hi] − dst[lo] (see WindowSum). dst is grown only when its
// capacity is short and the filled slice is returned, following the
// hot-path Into convention — the receiver builds one prefix array per
// buffer and answers every moving-window query of the sync stage from it.
//
// The windowed sums differ from a freshly accumulated loop only in
// floating-point association order; on integer-valued inputs (and any sums
// below 2^53) they are exact.
//
//cbma:hotpath
func PrefixSumInto(dst, x []float64) []float64 {
	n := len(x) + 1
	if cap(dst) < n {
		dst = make([]float64, n)
	}
	dst = dst[:n]
	dst[0] = 0
	var acc float64
	for i, v := range x {
		acc += v
		dst[i+1] = acc
	}
	return dst
}

// WindowSum returns the sum of x[lo:hi) given p = PrefixSumInto(_, x).
// Bounds are the caller's responsibility: 0 ≤ lo ≤ hi ≤ len(x).
//
//cbma:hotpath
func WindowSum(p []float64, lo, hi int) float64 {
	return p[hi] - p[lo]
}
