package dsp

import (
	"math/bits"
	"sync"
)

// FilterBank is a matched-filter bank: a set of equal-length real templates
// whose sliding correlations against a shared input are evaluated together.
// It implements the frequency-domain fast path of the CBMA receiver — the
// frequency-domain templates are precomputed once, the input block is
// transformed once and shared by every template, long inputs stream through
// bounded overlap-add blocks, and all scratch buffers are reused across
// queries. Correlate[Real]All fall back to the direct time-domain loops when
// the cost model says the FFT does not pay (ShouldUseFFT), so small queries
// stay bit-identical with the naive implementation.
//
// A FilterBank is not safe for concurrent use: queries share the scratch
// buffers. The precomputed spectra live in a lock-guarded cache that Clone
// shares across banks, so a family of clones computes each template's
// forward transform once per size and still runs queries in parallel.
type FilterBank struct {
	m     int
	tmpls [][]float64
	// spectra is the frequency-domain template cache, shared with every
	// clone of this bank.
	spectra *bankSpectra
	// in holds the chunk spectrum, prod the per-template product/IFFT, and
	// rspan the complex embedding of real-input spans.
	in, prod, rspan []complex128
}

// bankSpectra caches freq[size][id] = conj(FFT(template id zero-padded to
// size)), built lazily per transform size (queries of different lag counts
// prefer different block sizes). Each spectrum slice is immutable once
// published, so readers share them freely; the lock only guards the map.
type bankSpectra struct {
	mu   sync.RWMutex
	freq map[int][][]complex128
}

// NewFilterBank builds a bank over the given templates, which must all have
// the same non-zero length. The template slices are retained (not copied)
// for the direct path; callers must not mutate them afterwards.
func NewFilterBank(templates [][]float64) (*FilterBank, error) {
	if len(templates) == 0 || len(templates[0]) == 0 {
		return nil, ErrEmptyInput
	}
	m := len(templates[0])
	for _, t := range templates {
		if len(t) != m {
			return nil, ErrLengthMismatch
		}
	}
	return &FilterBank{
		m:       m,
		tmpls:   templates,
		spectra: &bankSpectra{freq: make(map[int][][]complex128)},
	}, nil
}

// Clone returns a bank over fb's templates that shares the precomputed
// frequency-domain spectra but owns fresh scratch buffers, so the clone and
// fb (and further clones) may run queries concurrently. Cloning is O(1) —
// no template validation or transform work is repeated.
func (fb *FilterBank) Clone() *FilterBank {
	return &FilterBank{m: fb.m, tmpls: fb.tmpls, spectra: fb.spectra}
}

// NumTemplates returns the number of templates in the bank.
func (fb *FilterBank) NumTemplates() int { return len(fb.tmpls) }

// TemplateLen returns the shared template length.
func (fb *FilterBank) TemplateLen() int { return fb.m }

// blocking picks the FFT size and block count for a query of count lags:
// a single transform when the whole span fits in a block no larger than the
// streaming size, otherwise overlap-add blocks of ~4× the template length.
func (fb *FilterBank) blocking(count int) (size, blocks int) {
	span := count + fb.m - 1
	size = NextPowerOfTwo(4 * fb.m)
	if s := NextPowerOfTwo(span); s < size {
		size = s
	}
	step := size - fb.m + 1
	blocks = (span + step - 1) / step
	return size, blocks
}

// ShouldUseFFT reports whether the frequency-domain path is expected to beat
// the direct loops for a query of count lags over nTemplates templates.
// complexInput doubles the direct cost (complex samples against a real
// template cost two multiply-adds per tap).
//
// The model counts direct work as count·m·nTemplates inner steps and FFT
// work as, per block, one shared forward transform plus one product+inverse
// transform per template, with a butterfly weighted at ~3 inner steps. It is
// intentionally conservative: near the crossover the direct path wins ties,
// keeping small default configurations on the bit-identical loop.
func (fb *FilterBank) ShouldUseFFT(count, nTemplates int, complexInput bool) bool {
	if count <= 0 || nTemplates <= 0 || fb.m < 64 {
		return false
	}
	direct := float64(count) * float64(fb.m) * float64(nTemplates)
	if complexInput {
		direct *= 2
	}
	size, blocks := fb.blocking(count)
	logSize := float64(bits.Len(uint(size - 1)))
	fftCost := float64(blocks) * float64(size) *
		(float64(1+nTemplates)*logSize*3 + float64(nTemplates))
	return direct > fftCost
}

// spectraFor returns the per-template conjugated spectra at the given
// transform size, computing and caching them on first use. The cache is
// shared across clones: concurrent first uses of the same size may both
// compute it, but the results are identical and publication is atomic under
// the lock, so every reader observes a complete spectrum set.
func (fb *FilterBank) spectraFor(size int) [][]complex128 {
	fb.spectra.mu.RLock()
	s, ok := fb.spectra.freq[size]
	fb.spectra.mu.RUnlock()
	if ok {
		return s
	}
	p := planFor(size)
	specs := make([][]complex128, len(fb.tmpls))
	for id, t := range fb.tmpls {
		s := make([]complex128, size)
		for i, v := range t {
			s[i] = complex(v, 0)
		}
		p.forwardInPlace(s)
		for i := range s {
			s[i] = complex(real(s[i]), -imag(s[i]))
		}
		specs[id] = s
	}
	fb.spectra.mu.Lock()
	if prev, ok := fb.spectra.freq[size]; ok {
		specs = prev // another clone won the race; keep one canonical set
	} else {
		fb.spectra.freq[size] = specs
	}
	fb.spectra.mu.Unlock()
	return specs
}

// scratch resizes the shared chunk buffers to the given transform size.
func (fb *FilterBank) scratch(size int) (in, prod []complex128) {
	if cap(fb.in) < size {
		fb.in = make([]complex128, size)
		fb.prod = make([]complex128, size)
	}
	return fb.in[:size], fb.prod[:size]
}

// allIDs is the identity selection used when callers pass ids == nil.
func (fb *FilterBank) allIDs() []int {
	ids := make([]int, len(fb.tmpls))
	for i := range ids {
		ids[i] = i
	}
	return ids
}

// CorrelateAll computes rows[j][k] = Σ_i x[lo+k+i] · t_{ids[j]}[i] for every
// lag k in 0 … count-1 — the sliding correlation of complex samples against
// each selected real template. ids == nil selects every template; rows must
// hold len(ids) slices of length ≥ count (they are overwritten, and rows[j]
// beyond count is untouched). The span x[lo : lo+count+m-1] must be in
// range.
//
//cbma:hotpath
func (fb *FilterBank) CorrelateAll(x []complex128, lo, count int, ids []int, rows [][]complex128) error {
	if ids == nil {
		ids = fb.allIDs()
	}
	if err := fb.checkQuery(len(x), lo, count, len(ids), len(rows)); err != nil {
		return err
	}
	if !fb.ShouldUseFFT(count, len(ids), true) {
		for j, id := range ids {
			t := fb.tmpls[id]
			row := rows[j]
			for k := 0; k < count; k++ {
				var re, im float64
				win := x[lo+k : lo+k+fb.m]
				for i, v := range t {
					re += real(win[i]) * v
					im += imag(win[i]) * v
				}
				row[k] = complex(re, im)
			}
		}
		return nil
	}
	fb.overlapAdd(x[lo:lo+count+fb.m-1], count, ids, nil, rows)
	return nil
}

// CorrelateRealAll is CorrelateAll for a real input vector (the receiver's
// magnitude envelope): rows[j][k] = Σ_i x[lo+k+i] · t_{ids[j]}[i].
//
//cbma:hotpath
func (fb *FilterBank) CorrelateRealAll(x []float64, lo, count int, ids []int, rows [][]float64) error {
	if ids == nil {
		ids = fb.allIDs()
	}
	if err := fb.checkQuery(len(x), lo, count, len(ids), len(rows)); err != nil {
		return err
	}
	if !fb.ShouldUseFFT(count, len(ids), false) {
		for j, id := range ids {
			t := fb.tmpls[id]
			row := rows[j]
			for k := 0; k < count; k++ {
				var acc float64
				win := x[lo+k : lo+k+fb.m]
				for i, v := range t {
					acc += win[i] * v
				}
				row[k] = acc
			}
		}
		return nil
	}
	// Embed the real span into the complex chunk path; the imaginary parts
	// stay zero so the rows' real parts carry the answer.
	span := x[lo : lo+count+fb.m-1]
	if cap(fb.rspan) < len(span) {
		fb.rspan = make([]complex128, len(span))
	}
	cspan := fb.rspan[:len(span)]
	for i, v := range span {
		cspan[i] = complex(v, 0)
	}
	fb.overlapAdd(cspan, count, ids, rows, nil)
	return nil
}

func (fb *FilterBank) checkQuery(n, lo, count, nids, nrows int) error {
	if count <= 0 {
		return ErrEmptyInput
	}
	if lo < 0 || lo+count+fb.m-1 > n {
		return ErrLengthMismatch
	}
	if nrows < nids {
		return ErrLengthMismatch
	}
	return nil
}

// overlapAdd streams the span through bounded FFT blocks, transforming each
// block once and reusing that spectrum for every selected template
// (overlap-add: each block's circular correlation contributes its valid
// positive lags in place and its negative lags into the preceding rows'
// tail, so block boundaries sum exactly to the linear correlation). Exactly
// one of outR/outC receives the rows, which are fully overwritten.
//
//cbma:hotpath
func (fb *FilterBank) overlapAdd(span []complex128, count int, ids []int, outR [][]float64, outC [][]complex128) {
	m := fb.m
	size, _ := fb.blocking(count)
	step := size - m + 1
	specs := fb.spectraFor(size)
	in, prod := fb.scratch(size)
	p := planFor(size)
	for j := range ids {
		if outR != nil {
			row := outR[j][:count]
			for k := range row {
				row[k] = 0
			}
		} else {
			row := outC[j][:count]
			for k := range row {
				row[k] = 0
			}
		}
	}
	for s := 0; s < len(span); s += step {
		chunkLen := len(span) - s
		if chunkLen > step {
			chunkLen = step
		}
		copy(in[:chunkLen], span[s:s+chunkLen])
		for i := chunkLen; i < size; i++ {
			in[i] = 0
		}
		p.forwardInPlace(in)
		for j, id := range ids {
			spec := specs[id]
			for i := range prod {
				prod[i] = in[i] * spec[i]
			}
			p.inverseInPlace(prod)
			// Circular index k holds linear lag k for k < chunkLen and
			// linear lag k-size for k ≥ size-(m-1).
			lo, hi := -(m - 1), chunkLen-1
			if s+lo < 0 {
				lo = -s
			}
			if g := count - 1 - s; hi > g {
				hi = g
			}
			if outR != nil {
				row := outR[j]
				for k := lo; k <= hi; k++ {
					idx := k
					if idx < 0 {
						idx += size
					}
					row[s+k] += real(prod[idx])
				}
			} else {
				row := outC[j]
				for k := lo; k <= hi; k++ {
					idx := k
					if idx < 0 {
						idx += size
					}
					row[s+k] += prod[idx]
				}
			}
		}
	}
}

// CrossCorrelateFFT computes the same result as CrossCorrelate(x, t) through
// the frequency domain, streaming long inputs through bounded overlap-add
// blocks so the transform size tracks the template rather than the buffer.
// Like CrossCorrelate it returns nil when the template is empty or longer
// than the input. Outputs match the direct loop to floating-point rounding
// (well within 1e-9 relative), not bit-identically.
func CrossCorrelateFFT(x, t []complex128) []complex128 {
	n, m := len(x), len(t)
	if m == 0 || m > n {
		return nil
	}
	count := n - m + 1
	size := NextPowerOfTwo(4 * m)
	if s := NextPowerOfTwo(n); s < size {
		size = s
	}
	step := size - m + 1
	p := planFor(size)
	spec := make([]complex128, size)
	copy(spec, t)
	p.forwardInPlace(spec)
	for i := range spec {
		spec[i] = complex(real(spec[i]), -imag(spec[i]))
	}
	out := make([]complex128, count)
	in := make([]complex128, size)
	for s := 0; s < n; s += step {
		chunkLen := n - s
		if chunkLen > step {
			chunkLen = step
		}
		copy(in[:chunkLen], x[s:s+chunkLen])
		for i := chunkLen; i < size; i++ {
			in[i] = 0
		}
		p.forwardInPlace(in)
		for i := range in {
			in[i] *= spec[i]
		}
		p.inverseInPlace(in)
		lo, hi := -(m - 1), chunkLen-1
		if s+lo < 0 {
			lo = -s
		}
		if g := count - 1 - s; hi > g {
			hi = g
		}
		for k := lo; k <= hi; k++ {
			idx := k
			if idx < 0 {
				idx += size
			}
			out[s+k] += in[idx]
		}
	}
	return out
}

// CrossCorrelateRealFFT is CrossCorrelateFFT for real vectors, matching
// CrossCorrelateReal(x, t) within floating-point rounding.
func CrossCorrelateRealFFT(x, t []float64) []float64 {
	n, m := len(x), len(t)
	if m == 0 || m > n {
		return nil
	}
	cx := make([]complex128, n)
	for i, v := range x {
		cx[i] = complex(v, 0)
	}
	ct := make([]complex128, m)
	for i, v := range t {
		ct[i] = complex(v, 0)
	}
	corr := CrossCorrelateFFT(cx, ct)
	out := make([]float64, len(corr))
	for i, v := range corr {
		out[i] = real(v)
	}
	return out
}

// correlateCutover decides the standalone Auto variants: the FFT path pays
// once the template is long enough and there are enough lags to amortize
// the transforms. The thresholds mirror FilterBank.ShouldUseFFT with a
// single template.
func correlateCutover(n, m int) bool {
	if m < 64 {
		return false
	}
	count := n - m + 1
	size := NextPowerOfTwo(4 * m)
	if s := NextPowerOfTwo(n); s < size {
		size = s
	}
	step := size - m + 1
	blocks := (n + step - 1) / step
	logSize := float64(bits.Len(uint(size - 1)))
	direct := float64(count) * float64(m)
	fftCost := float64(blocks) * float64(size) * (2*logSize*3 + 1)
	return direct > fftCost
}

// CrossCorrelateAuto computes CrossCorrelate(x, t), selecting the
// frequency-domain fast path automatically when the template and lag count
// are large enough for it to win. The direct path is bit-identical with
// CrossCorrelate; the FFT path matches it within floating-point rounding.
func CrossCorrelateAuto(x, t []complex128) []complex128 {
	if correlateCutover(len(x), len(t)) {
		return CrossCorrelateFFT(x, t)
	}
	return CrossCorrelate(x, t)
}

// CrossCorrelateRealAuto is CrossCorrelateAuto for real vectors.
func CrossCorrelateRealAuto(x, t []float64) []float64 {
	if correlateCutover(len(x), len(t)) {
		return CrossCorrelateRealFFT(x, t)
	}
	return CrossCorrelateReal(x, t)
}
