package dsp

import (
	"math"
	"testing"
)

func TestWindowValidation(t *testing.T) {
	if _, err := Window(WindowHann, 0); err != ErrBadWindow {
		t.Fatalf("got %v, want ErrBadWindow", err)
	}
	if _, err := Window(WindowFn(99), 8); err != ErrBadWindow {
		t.Fatalf("unknown window: got %v", err)
	}
	w, err := Window(WindowHamming, 1)
	if err != nil || w[0] != 1 {
		t.Fatalf("n=1 window: %v %v", w, err)
	}
}

func TestWindowShapes(t *testing.T) {
	for _, fn := range []WindowFn{WindowRect, WindowHann, WindowHamming, WindowBlackman} {
		w, err := Window(fn, 33)
		if err != nil {
			t.Fatal(err)
		}
		// Symmetry.
		for i := range w {
			if !almostEqual(w[i], w[len(w)-1-i], 1e-12) {
				t.Fatalf("window %d not symmetric at %d", fn, i)
			}
		}
		// Peak at the center, bounded by 1.
		mid := len(w) / 2
		for i, v := range w {
			if v > w[mid]+1e-12 || v < -1e-12 {
				t.Fatalf("window %d sample %d = %v out of range", fn, i, v)
			}
		}
	}
	// Hann endpoints are zero; Hamming endpoints are 0.08.
	hann, _ := Window(WindowHann, 17)
	if !almostEqual(hann[0], 0, 1e-12) {
		t.Errorf("Hann endpoint %v", hann[0])
	}
	hamming, _ := Window(WindowHamming, 17)
	if !almostEqual(hamming[0], 0.08, 1e-12) {
		t.Errorf("Hamming endpoint %v", hamming[0])
	}
}

func TestLowpassTapsValidation(t *testing.T) {
	for _, tc := range []struct {
		c float64
		n int
	}{{0, 11}, {0.5, 11}, {0.2, 0}} {
		if _, err := LowpassTaps(tc.c, tc.n, WindowHamming); err != ErrBadWindow {
			t.Errorf("cutoff=%v taps=%d: got %v", tc.c, tc.n, err)
		}
	}
}

func TestLowpassTapsUnitDCGain(t *testing.T) {
	h, err := LowpassTaps(0.1, 41, WindowHamming)
	if err != nil {
		t.Fatal(err)
	}
	var sum float64
	for _, tap := range h {
		sum += tap
	}
	if !almostEqual(sum, 1, 1e-12) {
		t.Errorf("DC gain %v, want 1", sum)
	}
	if got := FrequencyResponseDB(h, 0); !almostEqual(got, 0, 1e-9) {
		t.Errorf("response at DC %v dB, want 0", got)
	}
}

func TestLowpassTapsEvenLengthRoundsUp(t *testing.T) {
	h, err := LowpassTaps(0.1, 40, WindowHann)
	if err != nil {
		t.Fatal(err)
	}
	if len(h)%2 != 1 {
		t.Errorf("tap count %d, want odd", len(h))
	}
}

func TestLowpassStopbandRejection(t *testing.T) {
	// A 63-tap Hamming-windowed design at cutoff 0.1 must pass 0.05 nearly
	// untouched and crush 0.25 by at least 40 dB.
	h, err := LowpassTaps(0.1, 63, WindowHamming)
	if err != nil {
		t.Fatal(err)
	}
	pass := FrequencyResponseDB(h, 0.05)
	stop := FrequencyResponseDB(h, 0.25)
	if math.Abs(pass) > 1 {
		t.Errorf("passband ripple %v dB", pass)
	}
	if stop > -40 {
		t.Errorf("stopband rejection only %v dB", stop)
	}
}

func TestBlackmanBeatsHammingInStopband(t *testing.T) {
	hHam, _ := LowpassTaps(0.1, 63, WindowHamming)
	hBlk, _ := LowpassTaps(0.1, 63, WindowBlackman)
	if FrequencyResponseDB(hBlk, 0.3) >= FrequencyResponseDB(hHam, 0.3) {
		t.Error("Blackman window should reject the deep stopband harder")
	}
}
