package dsp

import (
	"math/rand"
	"testing"
)

func TestPrefixSumInto(t *testing.T) {
	x := []float64{2, -1, 3, 0.5}
	p := PrefixSumInto(nil, x)
	want := []float64{0, 2, 1, 4, 4.5}
	if len(p) != len(want) {
		t.Fatalf("len = %d, want %d", len(p), len(want))
	}
	for i := range want {
		if p[i] != want[i] {
			t.Errorf("p[%d] = %v, want %v", i, p[i], want[i])
		}
	}
	// Empty input still yields the leading zero.
	if p := PrefixSumInto(nil, nil); len(p) != 1 || p[0] != 0 {
		t.Errorf("empty input: %v, want [0]", p)
	}
	// Scratch reuse: adequate capacity is resliced in place.
	scratch := make([]float64, 16)
	p = PrefixSumInto(scratch, x)
	if &p[0] != &scratch[0] {
		t.Error("adequate scratch was reallocated")
	}
}

// TestWindowSumMatchesDirect checks every window of a random buffer against
// the direct loop. On integer-valued inputs the prefix difference is exact,
// which is the property the frame-sync fuzz target leans on.
func TestWindowSumMatchesDirect(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	x := make([]float64, 64)
	for i := range x {
		x[i] = float64(rng.Intn(1 << 16))
	}
	p := PrefixSumInto(nil, x)
	for lo := 0; lo <= len(x); lo++ {
		for hi := lo; hi <= len(x); hi++ {
			var want float64
			for _, v := range x[lo:hi] {
				want += v
			}
			if got := WindowSum(p, lo, hi); got != want {
				t.Fatalf("WindowSum(%d,%d) = %v, want %v", lo, hi, got, want)
			}
		}
	}
}
