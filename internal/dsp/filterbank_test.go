package dsp

import (
	"math"
	"math/cmplx"
	"math/rand"
	"sync"
	"testing"
)

// equivTol is the acceptance tolerance between the direct and FFT
// correlation paths, relative to the largest output magnitude.
const equivTol = 1e-9

func randComplex(rng *rand.Rand, n int) []complex128 {
	out := make([]complex128, n)
	for i := range out {
		// Random amplitude and phase so the FFT path is exercised off the
		// real axis.
		a := rng.Float64() * 2
		phi := rng.Float64() * 2 * math.Pi
		out[i] = complex(a*math.Cos(phi), a*math.Sin(phi))
	}
	return out
}

func randReal(rng *rand.Rand, n int) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = rng.Float64()*4 - 2
	}
	return out
}

func maxMagC(x []complex128) float64 {
	var m float64
	for _, v := range x {
		if a := cmplx.Abs(v); a > m {
			m = a
		}
	}
	return m
}

// TestCrossCorrelateFFTEquivalenceProperty drives random lengths and phases
// through the complex direct and FFT paths and requires agreement within
// 1e-9 of the output scale, including template lengths straddling the block
// and cutover boundaries.
func TestCrossCorrelateFFTEquivalenceProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 60; trial++ {
		m := 1 + rng.Intn(300)
		n := m + rng.Intn(2000)
		x := randComplex(rng, n)
		tmpl := randComplex(rng, m)
		want := CrossCorrelate(x, tmpl)
		got := CrossCorrelateFFT(x, tmpl)
		if len(got) != len(want) {
			t.Fatalf("trial %d: len %d want %d (n=%d m=%d)", trial, len(got), len(want), n, m)
		}
		scale := maxMagC(want)
		if scale == 0 {
			scale = 1
		}
		for k := range want {
			if d := cmplx.Abs(got[k] - want[k]); d > equivTol*scale {
				t.Fatalf("trial %d (n=%d m=%d): lag %d differs by %g (scale %g)", trial, n, m, k, d, scale)
			}
		}
		// The Auto variant must agree with the direct loop regardless of
		// which path it selects.
		auto := CrossCorrelateAuto(x, tmpl)
		for k := range want {
			if d := cmplx.Abs(auto[k] - want[k]); d > equivTol*scale {
				t.Fatalf("trial %d: Auto lag %d differs by %g", trial, k, d)
			}
		}
	}
}

// TestCrossCorrelateRealFFTEquivalenceProperty is the real-vector analogue.
func TestCrossCorrelateRealFFTEquivalenceProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	for trial := 0; trial < 60; trial++ {
		m := 1 + rng.Intn(300)
		n := m + rng.Intn(2000)
		x := randReal(rng, n)
		tmpl := randReal(rng, m)
		want := CrossCorrelateReal(x, tmpl)
		got := CrossCorrelateRealFFT(x, tmpl)
		if len(got) != len(want) {
			t.Fatalf("trial %d: len %d want %d", trial, len(got), len(want))
		}
		var scale float64
		for _, v := range want {
			if a := math.Abs(v); a > scale {
				scale = a
			}
		}
		if scale == 0 {
			scale = 1
		}
		for k := range want {
			if d := math.Abs(got[k] - want[k]); d > equivTol*scale {
				t.Fatalf("trial %d (n=%d m=%d): lag %d differs by %g", trial, n, m, k, d)
			}
		}
		auto := CrossCorrelateRealAuto(x, tmpl)
		for k := range want {
			if d := math.Abs(auto[k] - want[k]); d > equivTol*scale {
				t.Fatalf("trial %d: Auto lag %d differs by %g", trial, k, d)
			}
		}
	}
}

// TestCrossCorrelateFFTDegenerate mirrors CrossCorrelate's nil returns.
func TestCrossCorrelateFFTDegenerate(t *testing.T) {
	if CrossCorrelateFFT(make([]complex128, 3), nil) != nil {
		t.Error("empty template must return nil")
	}
	if CrossCorrelateFFT(make([]complex128, 3), make([]complex128, 5)) != nil {
		t.Error("template longer than input must return nil")
	}
	if CrossCorrelateRealFFT(make([]float64, 3), nil) != nil {
		t.Error("empty real template must return nil")
	}
	if CrossCorrelateRealFFT(make([]float64, 3), make([]float64, 5)) != nil {
		t.Error("real template longer than input must return nil")
	}
}

// TestFilterBankMatchesDirectLoops checks every bank query shape — complex
// and real input, template subsets, windowed spans, both sides of the
// cutover — against the naive sliding loops.
func TestFilterBankMatchesDirectLoops(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 25; trial++ {
		m := 32 + rng.Intn(400)
		nt := 1 + rng.Intn(6)
		tmpls := make([][]float64, nt)
		for i := range tmpls {
			tmpls[i] = randReal(rng, m)
		}
		fb, err := NewFilterBank(tmpls)
		if err != nil {
			t.Fatal(err)
		}
		count := 1 + rng.Intn(900)
		lo := rng.Intn(50)
		n := lo + count + m - 1 + rng.Intn(20)
		x := randComplex(rng, n)
		env := randReal(rng, n)

		ids := []int{}
		for id := 0; id < nt; id++ {
			if rng.Intn(2) == 0 {
				ids = append(ids, id)
			}
		}
		if len(ids) == 0 {
			ids = nil
		}
		sel := ids
		if sel == nil {
			sel = fb.allIDs()
		}

		crows := make([][]complex128, len(sel))
		rrows := make([][]float64, len(sel))
		for j := range sel {
			crows[j] = make([]complex128, count)
			rrows[j] = make([]float64, count)
		}
		if err := fb.CorrelateAll(x, lo, count, ids, crows); err != nil {
			t.Fatal(err)
		}
		if err := fb.CorrelateRealAll(env, lo, count, ids, rrows); err != nil {
			t.Fatal(err)
		}
		for j, id := range sel {
			for k := 0; k < count; k++ {
				var re, im, rr float64
				for i, v := range tmpls[id] {
					re += real(x[lo+k+i]) * v
					im += imag(x[lo+k+i]) * v
					rr += env[lo+k+i] * v
				}
				scale := cmplx.Abs(complex(re, im)) + 1
				if d := cmplx.Abs(crows[j][k] - complex(re, im)); d > equivTol*scale {
					t.Fatalf("trial %d: complex row %d lag %d differs by %g", trial, id, k, d)
				}
				rscale := math.Abs(rr) + 1
				if d := math.Abs(rrows[j][k] - rr); d > equivTol*rscale {
					t.Fatalf("trial %d: real row %d lag %d differs by %g", trial, id, k, d)
				}
			}
		}
	}
}

// TestFilterBankValidation exercises the constructor and query guards.
func TestFilterBankValidation(t *testing.T) {
	if _, err := NewFilterBank(nil); err == nil {
		t.Error("empty bank must fail")
	}
	if _, err := NewFilterBank([][]float64{{1, 2}, {1}}); err == nil {
		t.Error("unequal template lengths must fail")
	}
	fb, err := NewFilterBank([][]float64{{1, 2, 3, 4}})
	if err != nil {
		t.Fatal(err)
	}
	rows := [][]float64{make([]float64, 4)}
	if err := fb.CorrelateRealAll(make([]float64, 10), 0, 0, nil, rows); err == nil {
		t.Error("zero-count query must fail")
	}
	if err := fb.CorrelateRealAll(make([]float64, 10), 8, 4, nil, rows); err == nil {
		t.Error("out-of-range span must fail")
	}
	if err := fb.CorrelateRealAll(make([]float64, 10), 0, 4, nil, nil); err == nil {
		t.Error("missing rows must fail")
	}
	if fb.NumTemplates() != 1 || fb.TemplateLen() != 4 {
		t.Errorf("bank shape: %d templates × %d", fb.NumTemplates(), fb.TemplateLen())
	}
}

// TestShouldUseFFTMonotone sanity-checks the cutover: tiny queries stay on
// the direct loop, large matched-filter sweeps move to the FFT.
func TestShouldUseFFTMonotone(t *testing.T) {
	long := make([][]float64, 8)
	for i := range long {
		long[i] = make([]float64, 4096)
	}
	fb, err := NewFilterBank(long)
	if err != nil {
		t.Fatal(err)
	}
	if fb.ShouldUseFFT(4, 1, false) {
		t.Error("4-lag single-template query must stay direct")
	}
	if !fb.ShouldUseFFT(2048, 8, true) {
		t.Error("2048-lag 8-template complex query must use the FFT")
	}
	short := [][]float64{make([]float64, 8)}
	fbs, err := NewFilterBank(short)
	if err != nil {
		t.Fatal(err)
	}
	if fbs.ShouldUseFFT(1<<20, 1, true) {
		t.Error("8-tap template must never take the FFT path")
	}
}

// TestFilterBankCloneSharesSpectra pins the clone contract: clones share the
// lazily built frequency-domain template cache (the same backing slices, so
// forward transforms are paid once per family) while owning private query
// scratch, and concurrent queries from many clones agree with the original.
func TestFilterBankCloneSharesSpectra(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	tmpls := make([][]float64, 6)
	for i := range tmpls {
		tmpls[i] = randReal(rng, 256)
	}
	fb, err := NewFilterBank(tmpls)
	if err != nil {
		t.Fatal(err)
	}
	count := 2048
	n := count + fb.TemplateLen() - 1
	env := randReal(rng, n)
	if !fb.ShouldUseFFT(count, len(tmpls), false) {
		t.Fatal("test query must take the FFT path")
	}
	rows := func() [][]float64 {
		r := make([][]float64, len(tmpls))
		for j := range r {
			r[j] = make([]float64, count)
		}
		return r
	}
	want := rows()
	if err := fb.CorrelateRealAll(env, 0, count, nil, want); err != nil {
		t.Fatal(err)
	}
	size, _ := fb.blocking(count)
	spec := fb.spectraFor(size)

	var wg sync.WaitGroup
	got := make([][][]float64, 8)
	clones := make([]*FilterBank, 8)
	for w := range clones {
		clones[w] = fb.Clone()
		got[w] = rows()
	}
	for w := range clones {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			if err := clones[w].CorrelateRealAll(env, 0, count, nil, got[w]); err != nil {
				t.Error(err)
			}
		}(w)
	}
	wg.Wait()
	for w := range clones {
		cs := clones[w].spectraFor(size)
		if &cs[0][0] != &spec[0][0] {
			t.Errorf("clone %d rebuilt spectra instead of sharing the cache", w)
		}
		for j := range want {
			for k := range want[j] {
				if got[w][j][k] != want[j][k] {
					t.Fatalf("clone %d row %d lag %d: %v != %v", w, j, k, got[w][j][k], want[j][k])
				}
			}
		}
	}
}
