// Package dsp provides the complex-baseband digital signal processing
// substrate used throughout the CBMA simulator: I/Q vector arithmetic,
// filtering, correlation, a radix-2 FFT, resampling and tone detection.
//
// All routines operate on []complex128 sample vectors. The package has no
// internal state and no global configuration; every function is a pure
// transformation so callers can compose them freely and deterministically.
package dsp

import (
	"errors"
	"math"
	"math/cmplx"
)

// ErrEmptyInput is returned by routines that cannot operate on a zero-length
// sample vector.
var ErrEmptyInput = errors.New("dsp: empty input")

// ErrLengthMismatch is returned when two vectors that must have equal length
// do not.
var ErrLengthMismatch = errors.New("dsp: length mismatch")

// Add returns the element-wise sum a + b. Both inputs must have the same
// length.
func Add(a, b []complex128) ([]complex128, error) {
	if len(a) != len(b) {
		return nil, ErrLengthMismatch
	}
	out := make([]complex128, len(a))
	for i := range a {
		out[i] = a[i] + b[i]
	}
	return out, nil
}

// AccumulateInto adds src into dst element-wise, in place. dst and src must
// have equal length. It is the hot path used by the simulation engine when
// summing per-tag waveforms, so it avoids allocation.
//
//cbma:hotpath
func AccumulateInto(dst, src []complex128) error {
	if len(dst) != len(src) {
		return ErrLengthMismatch
	}
	for i := range src {
		dst[i] += src[i]
	}
	return nil
}

// Scale returns a copy of x with every sample multiplied by the complex
// gain g.
func Scale(x []complex128, g complex128) []complex128 {
	out := make([]complex128, len(x))
	for i := range x {
		out[i] = x[i] * g
	}
	return out
}

// ScaleInto multiplies every sample of x by g in place.
//
//cbma:hotpath
func ScaleInto(x []complex128, g complex128) {
	for i := range x {
		x[i] *= g
	}
}

// Conj returns the element-wise complex conjugate of x.
func Conj(x []complex128) []complex128 {
	out := make([]complex128, len(x))
	for i := range x {
		out[i] = cmplx.Conj(x[i])
	}
	return out
}

// Magnitude returns |x[i]| for every sample.
func Magnitude(x []complex128) []float64 {
	out := make([]float64, len(x))
	for i := range x {
		out[i] = cmplx.Abs(x[i])
	}
	return out
}

// MagSquared returns |x[i]|² for every sample. It avoids the square root of
// Magnitude and is the preferred instantaneous-power estimate.
func MagSquared(x []complex128) []float64 {
	out := make([]float64, len(x))
	for i := range x {
		re, im := real(x[i]), imag(x[i])
		out[i] = re*re + im*im
	}
	return out
}

// MagnitudeInto writes |x[i]| into dst, growing it as needed, and returns
// the filled slice. Receivers reuse one buffer across calls through this.
//
//cbma:hotpath
func MagnitudeInto(dst []float64, x []complex128) []float64 {
	if cap(dst) < len(x) {
		dst = make([]float64, len(x))
	}
	dst = dst[:len(x)]
	for i := range x {
		// math.Hypot matches cmplx.Abs bit-for-bit, so a receiver switching
		// from Magnitude to this in-place form sees identical envelopes.
		dst[i] = math.Hypot(real(x[i]), imag(x[i]))
	}
	return dst
}

// MagSquaredInto is MagnitudeInto for instantaneous power |x[i]|².
//
//cbma:hotpath
func MagSquaredInto(dst []float64, x []complex128) []float64 {
	if cap(dst) < len(x) {
		dst = make([]float64, len(x))
	}
	dst = dst[:len(x)]
	for i := range x {
		re, im := real(x[i]), imag(x[i])
		dst[i] = re*re + im*im
	}
	return dst
}

// DotConj returns the inner product Σ a[i]·conj(b[i]). It is the core
// primitive of correlation-based detection.
func DotConj(a, b []complex128) (complex128, error) {
	if len(a) != len(b) {
		return 0, ErrLengthMismatch
	}
	var acc complex128
	for i := range a {
		acc += a[i] * cmplx.Conj(b[i])
	}
	return acc, nil
}

// DotReal returns the real-valued inner product Σ a[i]·b[i] of two real
// vectors.
func DotReal(a, b []float64) (float64, error) {
	if len(a) != len(b) {
		return 0, ErrLengthMismatch
	}
	var acc float64
	for i := range a {
		acc += a[i] * b[i]
	}
	return acc, nil
}

// Energy returns the total energy Σ |x[i]|² of the vector.
func Energy(x []complex128) float64 {
	var acc float64
	for i := range x {
		re, im := real(x[i]), imag(x[i])
		acc += re*re + im*im
	}
	return acc
}

// MeanPower returns the average per-sample power of x, or 0 for an empty
// vector.
func MeanPower(x []complex128) float64 {
	if len(x) == 0 {
		return 0
	}
	return Energy(x) / float64(len(x))
}

// RMS returns the root-mean-square amplitude of x.
func RMS(x []complex128) float64 {
	return math.Sqrt(MeanPower(x))
}

// Normalize returns a copy of x scaled to unit RMS. A zero vector is
// returned unchanged.
func Normalize(x []complex128) []complex128 {
	r := RMS(x)
	if r == 0 {
		out := make([]complex128, len(x))
		copy(out, x)
		return out
	}
	return Scale(x, complex(1/r, 0))
}

// Rotate returns x multiplied by the unit phasor e^{jθ}.
func Rotate(x []complex128, theta float64) []complex128 {
	return Scale(x, cmplx.Exp(complex(0, theta)))
}

// MixTone multiplies x by a complex exponential of normalized frequency
// f (cycles per sample) and initial phase phase, i.e. a digital
// down/up-conversion by f.
func MixTone(x []complex128, f, phase float64) []complex128 {
	out := make([]complex128, len(x))
	for i := range x {
		out[i] = x[i] * cmplx.Exp(complex(0, 2*math.Pi*f*float64(i)+phase))
	}
	return out
}

// Tone synthesizes n samples of a unit-amplitude complex exponential at
// normalized frequency f (cycles per sample) with initial phase phase.
func Tone(n int, f, phase float64) []complex128 {
	out := make([]complex128, n)
	for i := range out {
		out[i] = cmplx.Exp(complex(0, 2*math.Pi*f*float64(i)+phase))
	}
	return out
}

// ArgMaxFloat returns the index of the maximum element of x, and that
// maximum. It returns an error for empty input.
func ArgMaxFloat(x []float64) (int, float64, error) {
	if len(x) == 0 {
		return 0, 0, ErrEmptyInput
	}
	best, bestV := 0, x[0]
	for i, v := range x[1:] {
		if v > bestV {
			best, bestV = i+1, v
		}
	}
	return best, bestV, nil
}

// MaxAbs returns the largest |x[i]| of the vector, or 0 for empty input.
func MaxAbs(x []complex128) float64 {
	var m float64
	for i := range x {
		if a := cmplx.Abs(x[i]); a > m {
			m = a
		}
	}
	return m
}
