package dsp

import (
	"errors"
	"math"
	"math/bits"
	"math/cmplx"
)

// ErrNotPowerOfTwo is returned by FFT when the input length is not a power
// of two.
var ErrNotPowerOfTwo = errors.New("dsp: FFT length must be a power of two")

// IsPowerOfTwo reports whether n is a positive power of two.
func IsPowerOfTwo(n int) bool {
	return n > 0 && n&(n-1) == 0
}

// NextPowerOfTwo returns the smallest power of two ≥ n (minimum 1).
func NextPowerOfTwo(n int) int {
	if n <= 1 {
		return 1
	}
	return 1 << bits.Len(uint(n-1))
}

// FFT computes the in-order decimation-in-time radix-2 FFT of x. The input
// length must be a power of two; the input is not modified.
func FFT(x []complex128) ([]complex128, error) {
	return fft(x, false)
}

// IFFT computes the inverse FFT of x (including the 1/N scaling).
func IFFT(x []complex128) ([]complex128, error) {
	return fft(x, true)
}

func fft(x []complex128, inverse bool) ([]complex128, error) {
	n := len(x)
	if !IsPowerOfTwo(n) {
		return nil, ErrNotPowerOfTwo
	}
	out := make([]complex128, n)
	// Bit-reversal permutation.
	shift := 64 - uint(bits.Len(uint(n-1)))
	if n == 1 {
		out[0] = x[0]
		return out, nil
	}
	for i := 0; i < n; i++ {
		out[bits.Reverse64(uint64(i))>>shift] = x[i]
	}
	sign := -1.0
	if inverse {
		sign = 1.0
	}
	for size := 2; size <= n; size <<= 1 {
		half := size / 2
		step := 2 * math.Pi / float64(size) * sign
		for start := 0; start < n; start += size {
			for k := 0; k < half; k++ {
				w := cmplx.Exp(complex(0, step*float64(k)))
				a := out[start+k]
				b := out[start+k+half] * w
				out[start+k] = a + b
				out[start+k+half] = a - b
			}
		}
	}
	if inverse {
		inv := complex(1/float64(n), 0)
		for i := range out {
			out[i] *= inv
		}
	}
	return out, nil
}

// FFTCorrelate computes the same result as CrossCorrelate(x, t) using the
// frequency domain, which is asymptotically faster for long templates. It
// zero-pads both operands to a power of two ≥ len(x)+len(t)-1.
func FFTCorrelate(x, t []complex128) ([]complex128, error) {
	n, m := len(x), len(t)
	if m == 0 || m > n {
		return nil, ErrEmptyInput
	}
	size := NextPowerOfTwo(n + m - 1)
	xp := make([]complex128, size)
	copy(xp, x)
	tp := make([]complex128, size)
	copy(tp, t)
	xf, err := FFT(xp)
	if err != nil {
		return nil, err
	}
	tf, err := FFT(tp)
	if err != nil {
		return nil, err
	}
	for i := range xf {
		xf[i] *= cmplx.Conj(tf[i])
	}
	prod, err := IFFT(xf)
	if err != nil {
		return nil, err
	}
	// Correlation at lag k is the k-th element of the circular result;
	// valid lags are 0 … n-m.
	out := make([]complex128, n-m+1)
	copy(out, prod[:n-m+1])
	return out, nil
}

// PowerSpectrum returns |FFT(x)|² normalized by the vector length, a
// convenience for the spectrum-inspection tooling.
func PowerSpectrum(x []complex128) ([]float64, error) {
	f, err := FFT(x)
	if err != nil {
		return nil, err
	}
	out := make([]float64, len(f))
	inv := 1 / float64(len(f))
	for i := range f {
		re, im := real(f[i]), imag(f[i])
		out[i] = (re*re + im*im) * inv
	}
	return out, nil
}
