package dsp

import (
	"errors"
	"math"
	"math/bits"
	"sync"
)

// ErrNotPowerOfTwo is returned by FFT when the input length is not a power
// of two.
var ErrNotPowerOfTwo = errors.New("dsp: FFT length must be a power of two")

// IsPowerOfTwo reports whether n is a positive power of two.
func IsPowerOfTwo(n int) bool {
	return n > 0 && n&(n-1) == 0
}

// NextPowerOfTwo returns the smallest power of two ≥ n (minimum 1).
func NextPowerOfTwo(n int) int {
	if n <= 1 {
		return 1
	}
	return 1 << bits.Len(uint(n-1))
}

// fftPlan caches the bit-reversal shift and twiddle table for one transform
// size. Plans are immutable after construction and shared process-wide, so
// concurrent transforms of the same size are safe.
type fftPlan struct {
	n     int
	shift uint
	// w[k] = exp(-2πi·k/n) for k < n/2; stage `size` butterflies index it
	// at stride n/size. The inverse transform conjugates on the fly.
	w []complex128
}

// fftPlans maps transform size → *fftPlan.
var fftPlans sync.Map

func planFor(n int) *fftPlan {
	if p, ok := fftPlans.Load(n); ok {
		return p.(*fftPlan)
	}
	p := &fftPlan{n: n, shift: 64 - uint(bits.Len(uint(n-1)))}
	p.w = make([]complex128, n/2)
	for k := range p.w {
		theta := -2 * math.Pi * float64(k) / float64(n)
		p.w[k] = complex(math.Cos(theta), math.Sin(theta))
	}
	actual, _ := fftPlans.LoadOrStore(n, p)
	return actual.(*fftPlan)
}

// bitReverseInPlace permutes buf into bit-reversed order.
//
//cbma:hotpath
func (p *fftPlan) bitReverseInPlace(buf []complex128) {
	for i := range buf {
		j := int(bits.Reverse64(uint64(i)) >> p.shift)
		if j > i {
			buf[i], buf[j] = buf[j], buf[i]
		}
	}
}

// butterflies runs the radix-2 stages in place; buf must already be in
// bit-reversed order.
//
//cbma:hotpath
func (p *fftPlan) butterflies(buf []complex128, inverse bool) {
	n := p.n
	for size := 2; size <= n; size <<= 1 {
		half := size >> 1
		stride := n / size
		for start := 0; start < n; start += size {
			if inverse {
				for k := 0; k < half; k++ {
					w := p.w[k*stride]
					w = complex(real(w), -imag(w))
					a := buf[start+k]
					b := buf[start+k+half] * w
					buf[start+k] = a + b
					buf[start+k+half] = a - b
				}
			} else {
				for k := 0; k < half; k++ {
					w := p.w[k*stride]
					a := buf[start+k]
					b := buf[start+k+half] * w
					buf[start+k] = a + b
					buf[start+k+half] = a - b
				}
			}
		}
	}
	if inverse {
		inv := complex(1/float64(n), 0)
		for i := range buf {
			buf[i] *= inv
		}
	}
}

// forwardInPlace / inverseInPlace transform buf (length p.n) in place. The
// inverse includes the 1/N scaling.
//
//cbma:hotpath
func (p *fftPlan) forwardInPlace(buf []complex128) {
	p.bitReverseInPlace(buf)
	p.butterflies(buf, false)
}

//cbma:hotpath
func (p *fftPlan) inverseInPlace(buf []complex128) {
	p.bitReverseInPlace(buf)
	p.butterflies(buf, true)
}

// FFT computes the in-order decimation-in-time radix-2 FFT of x. The input
// length must be a power of two; the input is not modified.
func FFT(x []complex128) ([]complex128, error) {
	return fft(x, false)
}

// IFFT computes the inverse FFT of x (including the 1/N scaling).
func IFFT(x []complex128) ([]complex128, error) {
	return fft(x, true)
}

func fft(x []complex128, inverse bool) ([]complex128, error) {
	n := len(x)
	if !IsPowerOfTwo(n) {
		return nil, ErrNotPowerOfTwo
	}
	out := make([]complex128, n)
	copy(out, x)
	p := planFor(n)
	p.bitReverseInPlace(out)
	p.butterflies(out, inverse)
	return out, nil
}

// FFTCorrelate computes the same result as CrossCorrelate(x, t) using the
// frequency domain, which is asymptotically faster for long templates. It
// zero-pads both operands to a power of two ≥ len(x)+len(t)-1. See
// CrossCorrelateFFT for the block-streaming (overlap-add) variant that
// bounds the transform size for very long inputs.
func FFTCorrelate(x, t []complex128) ([]complex128, error) {
	n, m := len(x), len(t)
	if m == 0 || m > n {
		return nil, ErrEmptyInput
	}
	size := NextPowerOfTwo(n + m - 1)
	xp := make([]complex128, size)
	copy(xp, x)
	tp := make([]complex128, size)
	copy(tp, t)
	p := planFor(size)
	p.forwardInPlace(xp)
	p.forwardInPlace(tp)
	for i := range xp {
		tr, ti := real(tp[i]), -imag(tp[i])
		xp[i] *= complex(tr, ti)
	}
	p.inverseInPlace(xp)
	// Correlation at lag k is the k-th element of the circular result;
	// valid lags are 0 … n-m.
	out := make([]complex128, n-m+1)
	copy(out, xp[:n-m+1])
	return out, nil
}

// PowerSpectrum returns |FFT(x)|² normalized by the vector length, a
// convenience for the spectrum-inspection tooling.
func PowerSpectrum(x []complex128) ([]float64, error) {
	f, err := FFT(x)
	if err != nil {
		return nil, err
	}
	out := make([]float64, len(f))
	inv := 1 / float64(len(f))
	for i := range f {
		re, im := real(f[i]), imag(f[i])
		out[i] = (re*re + im*im) * inv
	}
	return out, nil
}
