package dsp

import "math"

// CrossCorrelate computes the sliding cross-correlation of x against the
// template t for every lag where the template fits entirely inside x:
//
//	out[k] = Σ_i x[k+i] · conj(t[i]),  k = 0 … len(x)-len(t)
//
// It returns nil when the template is longer than the input. This is the
// primitive behind both user detection (preamble vs. PN code) and chip
// decoding in the CBMA receiver.
func CrossCorrelate(x, t []complex128) []complex128 {
	n, m := len(x), len(t)
	if m == 0 || m > n {
		return nil
	}
	out := make([]complex128, n-m+1)
	for k := range out {
		var acc complex128
		for i := 0; i < m; i++ {
			s := t[i]
			acc += x[k+i] * complex(real(s), -imag(s))
		}
		out[k] = acc
	}
	return out
}

// CrossCorrelateReal is CrossCorrelate for real-valued vectors. PN chip
// templates are real (±1 or 0/1), so the decoder's inner loops use this
// cheaper form against the received magnitude envelope.
func CrossCorrelateReal(x, t []float64) []float64 {
	n, m := len(x), len(t)
	if m == 0 || m > n {
		return nil
	}
	out := make([]float64, n-m+1)
	for k := range out {
		var acc float64
		for i := 0; i < m; i++ {
			acc += x[k+i] * t[i]
		}
		out[k] = acc
	}
	return out
}

// NormalizedCorrelation returns the normalized correlation coefficient
// |Σ x·conj(t)| / (‖x‖·‖t‖) between equal-length vectors, in [0, 1].
// A zero vector on either side yields 0.
func NormalizedCorrelation(x, t []complex128) (float64, error) {
	if len(x) != len(t) {
		return 0, ErrLengthMismatch
	}
	dot, err := DotConj(x, t)
	if err != nil {
		return 0, err
	}
	ex, et := Energy(x), Energy(t)
	if ex == 0 || et == 0 {
		return 0, nil
	}
	mag := math.Hypot(real(dot), imag(dot))
	return mag / math.Sqrt(ex*et), nil
}

// NormalizedCorrelationReal is NormalizedCorrelation for real vectors, in
// [-1, 1] (sign preserved).
func NormalizedCorrelationReal(x, t []float64) (float64, error) {
	if len(x) != len(t) {
		return 0, ErrLengthMismatch
	}
	dot, err := DotReal(x, t)
	if err != nil {
		return 0, err
	}
	var ex, et float64
	for i := range x {
		ex += x[i] * x[i]
		et += t[i] * t[i]
	}
	if ex == 0 || et == 0 {
		return 0, nil
	}
	return dot / math.Sqrt(ex*et), nil
}

// PeakLag slides template t across x and returns the lag with the largest
// correlation magnitude together with that magnitude. It is used for frame
// alignment refinement after coarse energy detection.
func PeakLag(x, t []complex128) (lag int, peak float64, err error) {
	corr := CrossCorrelate(x, t)
	if corr == nil {
		return 0, 0, ErrEmptyInput
	}
	mags := Magnitude(corr)
	lag, peak, err = ArgMaxFloat(mags)
	return lag, peak, err
}

// PeakLagReal is PeakLag over real vectors, comparing absolute correlation.
func PeakLagReal(x, t []float64) (lag int, peak float64, err error) {
	corr := CrossCorrelateReal(x, t)
	if corr == nil {
		return 0, 0, ErrEmptyInput
	}
	abs := make([]float64, len(corr))
	for i, v := range corr {
		abs[i] = math.Abs(v)
	}
	lag, peak, err = ArgMaxFloat(abs)
	return lag, peak, err
}

// AutoCorrelation returns the circular autocorrelation of the real sequence
// x at every lag 0 … len(x)-1:
//
//	out[k] = Σ_i x[i]·x[(i+k) mod n]
//
// PN-sequence quality analysis relies on this.
func AutoCorrelation(x []float64) []float64 {
	n := len(x)
	out := make([]float64, n)
	for k := 0; k < n; k++ {
		var acc float64
		for i := 0; i < n; i++ {
			j := i + k
			if j >= n {
				j -= n
			}
			acc += x[i] * x[j]
		}
		out[k] = acc
	}
	return out
}

// CircularCrossCorrelation returns the circular cross-correlation of two
// equal-length real sequences at every lag.
func CircularCrossCorrelation(a, b []float64) ([]float64, error) {
	if len(a) != len(b) {
		return nil, ErrLengthMismatch
	}
	n := len(a)
	out := make([]float64, n)
	for k := 0; k < n; k++ {
		var acc float64
		for i := 0; i < n; i++ {
			j := i + k
			if j >= n {
				j -= n
			}
			acc += a[i] * b[j]
		}
		out[k] = acc
	}
	return out, nil
}
