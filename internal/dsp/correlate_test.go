package dsp

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestCrossCorrelateKnown(t *testing.T) {
	x := []complex128{0, 0, 1, 1, 0}
	tmpl := []complex128{1, 1}
	got := CrossCorrelate(x, tmpl)
	want := []complex128{0, 1, 2, 1}
	if len(got) != len(want) {
		t.Fatalf("len = %d, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("lag %d: %v, want %v", i, got[i], want[i])
		}
	}
}

func TestCrossCorrelateTemplateTooLong(t *testing.T) {
	if got := CrossCorrelate(make([]complex128, 2), make([]complex128, 3)); got != nil {
		t.Fatal("want nil for template longer than input")
	}
	if got := CrossCorrelate(make([]complex128, 2), nil); got != nil {
		t.Fatal("want nil for empty template")
	}
}

func TestCrossCorrelateRealMatchesComplex(t *testing.T) {
	r := rand.New(rand.NewSource(21))
	xr := make([]float64, 100)
	tr := make([]float64, 16)
	for i := range xr {
		xr[i] = r.NormFloat64()
	}
	for i := range tr {
		tr[i] = r.NormFloat64()
	}
	xc := make([]complex128, len(xr))
	tc := make([]complex128, len(tr))
	for i := range xr {
		xc[i] = complex(xr[i], 0)
	}
	for i := range tr {
		tc[i] = complex(tr[i], 0)
	}
	gr := CrossCorrelateReal(xr, tr)
	gc := CrossCorrelate(xc, tc)
	for i := range gr {
		if !almostEqual(gr[i], real(gc[i]), 1e-9) {
			t.Fatalf("lag %d: real %v vs complex %v", i, gr[i], gc[i])
		}
	}
}

func TestNormalizedCorrelationSelf(t *testing.T) {
	r := rand.New(rand.NewSource(22))
	x := randomVector(r, 50)
	c, err := NormalizedCorrelation(x, x)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(c, 1, 1e-9) {
		t.Errorf("self-correlation = %v, want 1", c)
	}
}

func TestNormalizedCorrelationScaleInvariant(t *testing.T) {
	r := rand.New(rand.NewSource(23))
	x := randomVector(r, 50)
	y := Scale(x, 3.7i)
	c, err := NormalizedCorrelation(x, y)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(c, 1, 1e-9) {
		t.Errorf("scaled copy correlation = %v, want 1", c)
	}
}

func TestNormalizedCorrelationOrthogonal(t *testing.T) {
	x := []complex128{1, 1, 1, 1}
	y := []complex128{1, -1, 1, -1}
	c, err := NormalizedCorrelation(x, y)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(c, 0, 1e-12) {
		t.Errorf("orthogonal correlation = %v, want 0", c)
	}
}

func TestNormalizedCorrelationZeroVector(t *testing.T) {
	z := make([]complex128, 4)
	x := []complex128{1, 2, 3, 4}
	c, err := NormalizedCorrelation(x, z)
	if err != nil {
		t.Fatal(err)
	}
	if c != 0 {
		t.Errorf("zero-vector correlation = %v, want 0", c)
	}
}

func TestNormalizedCorrelationRealBounds(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 4 + r.Intn(60)
		a := make([]float64, n)
		b := make([]float64, n)
		for i := range a {
			a[i] = r.NormFloat64()
			b[i] = r.NormFloat64()
		}
		c, err := NormalizedCorrelationReal(a, b)
		if err != nil {
			return false
		}
		return c >= -1-1e-9 && c <= 1+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPeakLagFindsEmbeddedTemplate(t *testing.T) {
	r := rand.New(rand.NewSource(24))
	tmpl := randomVector(r, 31)
	x := make([]complex128, 200)
	for i := range x {
		x[i] = complex(0.05*r.NormFloat64(), 0.05*r.NormFloat64())
	}
	const at = 77
	for i, v := range tmpl {
		x[at+i] += v
	}
	lag, peak, err := PeakLag(x, tmpl)
	if err != nil {
		t.Fatal(err)
	}
	if lag != at {
		t.Errorf("PeakLag = %d, want %d", lag, at)
	}
	if peak <= 0 {
		t.Errorf("peak = %v, want > 0", peak)
	}
}

func TestPeakLagRealFindsNegativeTemplate(t *testing.T) {
	// PeakLagReal compares |corr|, so an inverted template still aligns.
	tmpl := []float64{1, -1, 1, 1, -1}
	x := make([]float64, 40)
	const at = 13
	for i, v := range tmpl {
		x[at+i] = -v
	}
	lag, _, err := PeakLagReal(x, tmpl)
	if err != nil {
		t.Fatal(err)
	}
	if lag != at {
		t.Errorf("PeakLagReal = %d, want %d", lag, at)
	}
}

func TestPeakLagEmpty(t *testing.T) {
	if _, _, err := PeakLag(nil, []complex128{1}); err == nil {
		t.Fatal("want error on empty input")
	}
}

func TestAutoCorrelationZeroLagIsEnergy(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 2 + r.Intn(40)
		x := make([]float64, n)
		var energy float64
		for i := range x {
			x[i] = r.NormFloat64()
			energy += x[i] * x[i]
		}
		ac := AutoCorrelation(x)
		return almostEqual(ac[0], energy, 1e-9*(1+energy))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestAutoCorrelationSymmetry(t *testing.T) {
	// Circular autocorrelation of a real sequence satisfies ac[k] == ac[n-k].
	r := rand.New(rand.NewSource(25))
	x := make([]float64, 17)
	for i := range x {
		x[i] = r.NormFloat64()
	}
	ac := AutoCorrelation(x)
	for k := 1; k < len(x); k++ {
		if !almostEqual(ac[k], ac[len(x)-k], 1e-9) {
			t.Fatalf("ac[%d]=%v != ac[%d]=%v", k, ac[k], len(x)-k, ac[len(x)-k])
		}
	}
}

func TestCircularCrossCorrelation(t *testing.T) {
	a := []float64{1, 0, 0, 0}
	b := []float64{0, 1, 0, 0}
	got, err := CircularCrossCorrelation(a, b)
	if err != nil {
		t.Fatal(err)
	}
	// a correlates with b at lag 1: Σ a[i]·b[i+1] peaks when shift aligns.
	want := []float64{0, 1, 0, 0}
	for i := range want {
		if !almostEqual(got[i], want[i], 1e-12) {
			t.Errorf("lag %d: %v, want %v", i, got[i], want[i])
		}
	}
	if _, err := CircularCrossCorrelation(a, b[:2]); err != ErrLengthMismatch {
		t.Errorf("got err %v, want ErrLengthMismatch", err)
	}
}

func TestCrossCorrelateShiftProperty(t *testing.T) {
	// Correlating a shifted copy of the template peaks exactly at the shift.
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		m := 8 + r.Intn(24)
		shift := r.Intn(50)
		tmpl := randomVector(r, m)
		x := make([]complex128, shift+m+20)
		for i, v := range tmpl {
			x[shift+i] = v
		}
		lag, _, err := PeakLag(x, tmpl)
		return err == nil && lag == shift
	}
	cfg := &quick.Config{MaxCount: 30}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func TestGoertzelZeroInput(t *testing.T) {
	if got := Goertzel(nil, 0.1); got != 0 {
		t.Errorf("Goertzel(nil) = %v", got)
	}
	if got := GoertzelComplex(nil, 0.1); got != 0 {
		t.Errorf("GoertzelComplex(nil) = %v", got)
	}
}

func TestToneSNRDetectsTone(t *testing.T) {
	x := Tone(256, 0.125, 0)
	snr := ToneSNR(x, 0.125, []float64{0.3, 0.4, 0.45})
	if snr < 20 {
		t.Errorf("ToneSNR = %v dB, want strong detection (>20 dB)", snr)
	}
	if got := ToneSNR(x, 0.125, nil); !math.IsInf(got, 1) {
		t.Errorf("no probes should yield +Inf, got %v", got)
	}
}
